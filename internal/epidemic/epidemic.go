// Package epidemic implements the spreading processes cited in §6 of
// the paper as future work: SIS and SIR epidemics (Pastor-Satorras &
// Vespignani, refs [16, 17]), the independent-cascade model and the
// linear-threshold model (Galstyan & Cohen, ref [5]).
//
// The ext1 experiment sweeps the SIS spreading rate on scale-free vs.
// Erdős–Rényi graphs to reproduce the vanishing-epidemic-threshold
// contrast; ext2 runs independent cascades on modular vs. homogeneous
// graphs to show community structure trapping cascades.
package epidemic

import (
	"errors"

	"diggsim/internal/graph"
	"diggsim/internal/rng"
)

// SISConfig parameterizes an SIS (susceptible-infected-susceptible)
// simulation on the undirected projection of the graph.
type SISConfig struct {
	// Lambda is the per-step infection probability along each edge from
	// an infected node to a susceptible neighbor.
	Lambda float64
	// Recovery is the per-step probability an infected node recovers
	// (returns to susceptible).
	Recovery float64
	// Steps is the number of synchronous update rounds.
	Steps int
	// InitialInfected is the number of seed infections (>= 1).
	InitialInfected int
}

// Validate reports configuration errors.
func (c SISConfig) Validate() error {
	switch {
	case c.Lambda < 0 || c.Lambda > 1:
		return errors.New("epidemic: Lambda must be in [0, 1]")
	case c.Recovery <= 0 || c.Recovery > 1:
		return errors.New("epidemic: Recovery must be in (0, 1]")
	case c.Steps < 1:
		return errors.New("epidemic: Steps must be >= 1")
	case c.InitialInfected < 1:
		return errors.New("epidemic: InitialInfected must be >= 1")
	}
	return nil
}

// SISResult reports the endemic state of an SIS run.
type SISResult struct {
	// Prevalence is the fraction of infected nodes averaged over the
	// final quarter of the run (the endemic density).
	Prevalence float64
	// PeakInfected is the maximum simultaneous infections seen.
	PeakInfected int
}

// SIS runs the epidemic and returns its endemic statistics.
func SIS(g *graph.Graph, cfg SISConfig, r *rng.RNG) (SISResult, error) {
	if err := cfg.Validate(); err != nil {
		return SISResult{}, err
	}
	n := g.NumNodes()
	if n == 0 {
		return SISResult{}, nil
	}
	infected := make([]bool, n)
	seeds := cfg.InitialInfected
	if seeds > n {
		seeds = n
	}
	for _, idx := range r.SampleWithoutReplacement(n, seeds) {
		infected[idx] = true
	}
	next := make([]bool, n)
	peak, tailSum, tailCount := seeds, 0.0, 0
	tailStart := cfg.Steps * 3 / 4
	for step := 0; step < cfg.Steps; step++ {
		copy(next, infected)
		for u := 0; u < n; u++ {
			if infected[u] {
				if r.Bool(cfg.Recovery) {
					next[u] = false
				}
				continue
			}
			// Infection attempts from infected neighbors (undirected).
			for _, v := range g.Friends(graph.NodeID(u)) {
				if infected[v] && r.Bool(cfg.Lambda) {
					next[u] = true
					break
				}
			}
			if !next[u] {
				for _, v := range g.Fans(graph.NodeID(u)) {
					if infected[v] && r.Bool(cfg.Lambda) {
						next[u] = true
						break
					}
				}
			}
		}
		infected, next = next, infected
		count := 0
		for _, inf := range infected {
			if inf {
				count++
			}
		}
		if count > peak {
			peak = count
		}
		if step >= tailStart {
			tailSum += float64(count)
			tailCount++
		}
		if count == 0 {
			// Absorbed: prevalence is zero for the remaining tail.
			remaining := cfg.Steps - step - 1
			if step+1 >= tailStart {
				tailCount += remaining
			} else {
				tailCount += cfg.Steps - tailStart
			}
			break
		}
	}
	res := SISResult{PeakInfected: peak}
	if tailCount > 0 {
		res.Prevalence = tailSum / float64(tailCount) / float64(n)
	}
	return res, nil
}

// ThresholdSweep runs SIS at each lambda and returns the endemic
// prevalences; on scale-free graphs prevalence stays positive down to
// tiny lambda while on ER graphs it vanishes below ~Recovery/<k>.
func ThresholdSweep(g *graph.Graph, lambdas []float64, base SISConfig, r *rng.RNG) ([]float64, error) {
	out := make([]float64, len(lambdas))
	for i, l := range lambdas {
		cfg := base
		cfg.Lambda = l
		res, err := SIS(g, cfg, r.Split())
		if err != nil {
			return nil, err
		}
		out[i] = res.Prevalence
	}
	return out, nil
}

// SIRResult reports the outcome of an SIR (susceptible-infected-
// removed) run.
type SIRResult struct {
	// FinalSize is the fraction of nodes ever infected.
	FinalSize float64
	// Duration is the number of steps until no infections remained.
	Duration int
}

// SIR runs a susceptible-infected-removed epidemic with the same
// parameters as SIS (Recovery moves nodes to the removed state).
func SIR(g *graph.Graph, cfg SISConfig, r *rng.RNG) (SIRResult, error) {
	if err := cfg.Validate(); err != nil {
		return SIRResult{}, err
	}
	n := g.NumNodes()
	if n == 0 {
		return SIRResult{}, nil
	}
	const (
		susceptible = iota
		infectedState
		removed
	)
	state := make([]int, n)
	seeds := cfg.InitialInfected
	if seeds > n {
		seeds = n
	}
	for _, idx := range r.SampleWithoutReplacement(n, seeds) {
		state[idx] = infectedState
	}
	everInfected := seeds
	duration := 0
	for step := 0; step < cfg.Steps; step++ {
		var newInfections []int
		var recoveries []int
		active := false
		for u := 0; u < n; u++ {
			if state[u] != infectedState {
				continue
			}
			active = true
			infect := func(v graph.NodeID) {
				if state[v] == susceptible && r.Bool(cfg.Lambda) {
					newInfections = append(newInfections, int(v))
				}
			}
			for _, v := range g.Friends(graph.NodeID(u)) {
				infect(v)
			}
			for _, v := range g.Fans(graph.NodeID(u)) {
				infect(v)
			}
			if r.Bool(cfg.Recovery) {
				recoveries = append(recoveries, u)
			}
		}
		if !active {
			break
		}
		duration = step + 1
		for _, u := range newInfections {
			if state[u] == susceptible {
				state[u] = infectedState
				everInfected++
			}
		}
		for _, u := range recoveries {
			state[u] = removed
		}
	}
	return SIRResult{
		FinalSize: float64(everInfected) / float64(n),
		Duration:  duration,
	}, nil
}

// IndependentCascade runs the independent-cascade model: each newly
// activated node gets one chance to activate each of its fans with
// probability p (activation flows from a voter to the users watching
// them, matching the Friends-interface direction). It returns the set
// of activated nodes in activation order.
func IndependentCascade(g *graph.Graph, seeds []graph.NodeID, p float64, r *rng.RNG) []graph.NodeID {
	active := make(map[graph.NodeID]bool, len(seeds))
	var order, frontier []graph.NodeID
	for _, s := range seeds {
		if s < 0 || int(s) >= g.NumNodes() || active[s] {
			continue
		}
		active[s] = true
		order = append(order, s)
		frontier = append(frontier, s)
	}
	for len(frontier) > 0 {
		var next []graph.NodeID
		for _, u := range frontier {
			for _, fan := range g.Fans(u) {
				if !active[fan] && r.Bool(p) {
					active[fan] = true
					order = append(order, fan)
					next = append(next, fan)
				}
			}
		}
		frontier = next
	}
	return order
}

// LinearThreshold runs the linear-threshold model: node v activates
// when the fraction of its watched users (friends) that are active
// reaches its threshold. Thresholds are drawn uniformly per node. It
// returns the activated nodes in activation order.
func LinearThreshold(g *graph.Graph, seeds []graph.NodeID, r *rng.RNG) []graph.NodeID {
	n := g.NumNodes()
	threshold := make([]float64, n)
	for i := range threshold {
		threshold[i] = r.Float64()
	}
	active := make([]bool, n)
	var order []graph.NodeID
	for _, s := range seeds {
		if s < 0 || int(s) >= n || active[s] {
			continue
		}
		active[s] = true
		order = append(order, s)
	}
	for changed := true; changed; {
		changed = false
		for u := 0; u < n; u++ {
			if active[u] {
				continue
			}
			friends := g.Friends(graph.NodeID(u))
			if len(friends) == 0 {
				continue
			}
			act := 0
			for _, v := range friends {
				if active[v] {
					act++
				}
			}
			if float64(act)/float64(len(friends)) >= threshold[u] {
				active[u] = true
				order = append(order, graph.NodeID(u))
				changed = true
			}
		}
	}
	return order
}
