package epidemic

import (
	"testing"

	"diggsim/internal/graph"
	"diggsim/internal/rng"
)

func TestSISValidate(t *testing.T) {
	good := SISConfig{Lambda: 0.1, Recovery: 0.2, Steps: 10, InitialInfected: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []SISConfig{
		{Lambda: -0.1, Recovery: 0.2, Steps: 10, InitialInfected: 1},
		{Lambda: 1.1, Recovery: 0.2, Steps: 10, InitialInfected: 1},
		{Lambda: 0.1, Recovery: 0, Steps: 10, InitialInfected: 1},
		{Lambda: 0.1, Recovery: 0.2, Steps: 0, InitialInfected: 1},
		{Lambda: 0.1, Recovery: 0.2, Steps: 10, InitialInfected: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSISZeroLambdaDiesOut(t *testing.T) {
	r := rng.New(1)
	g, err := graph.ErdosRenyi(r, 300, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SIS(g, SISConfig{Lambda: 0, Recovery: 0.5, Steps: 200, InitialInfected: 10}, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Prevalence > 0.001 {
		t.Errorf("prevalence = %v with no transmission", res.Prevalence)
	}
	if res.PeakInfected < 10 {
		t.Errorf("peak %d below seed count", res.PeakInfected)
	}
}

func TestSISHighLambdaEndemic(t *testing.T) {
	r := rng.New(2)
	g, err := graph.ErdosRenyi(r, 300, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SIS(g, SISConfig{Lambda: 0.8, Recovery: 0.1, Steps: 200, InitialInfected: 5}, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Prevalence < 0.5 {
		t.Errorf("prevalence = %v; should be endemic", res.Prevalence)
	}
}

func TestSISEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0).Build()
	res, err := SIS(g, SISConfig{Lambda: 0.5, Recovery: 0.5, Steps: 5, InitialInfected: 1}, rng.New(3))
	if err != nil || res.Prevalence != 0 {
		t.Errorf("empty graph: %+v, %v", res, err)
	}
}

func TestThresholdSweepMonotoneish(t *testing.T) {
	r := rng.New(4)
	g, err := graph.ErdosRenyi(r, 400, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	lambdas := []float64{0.01, 0.2, 0.8}
	prev, err := ThresholdSweep(g, lambdas,
		SISConfig{Recovery: 0.2, Steps: 150, InitialInfected: 5}, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(prev) != 3 {
		t.Fatalf("results = %v", prev)
	}
	if prev[2] <= prev[0] {
		t.Errorf("prevalence not increasing with lambda: %v", prev)
	}
}

func TestScaleFreeLowerThresholdThanER(t *testing.T) {
	// The §6 contrast: at a small lambda, the scale-free graph sustains
	// the epidemic while the ER graph of equal mean degree does not.
	r := rng.New(5)
	sf, err := graph.PreferentialAttachment(r, 3000, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	meanDeg := float64(sf.NumEdges()) / float64(sf.NumNodes())
	er, err := graph.ErdosRenyi(r, 3000, meanDeg/float64(3000-1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := SISConfig{Lambda: 0.04, Recovery: 0.25, Steps: 250, InitialInfected: 30}
	resSF, err := SIS(sf, cfg, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	resER, err := SIS(er, cfg, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	if resSF.Prevalence <= resER.Prevalence {
		t.Errorf("scale-free prevalence %v <= ER prevalence %v at sub-threshold lambda",
			resSF.Prevalence, resER.Prevalence)
	}
}

func TestSIRFinalSize(t *testing.T) {
	r := rng.New(6)
	g, err := graph.ErdosRenyi(r, 500, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	big, err := SIR(g, SISConfig{Lambda: 0.5, Recovery: 0.3, Steps: 500, InitialInfected: 5}, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	small, err := SIR(g, SISConfig{Lambda: 0.01, Recovery: 0.5, Steps: 500, InitialInfected: 5}, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	if big.FinalSize < 0.5 {
		t.Errorf("supercritical SIR final size = %v", big.FinalSize)
	}
	if small.FinalSize > 0.2 {
		t.Errorf("subcritical SIR final size = %v", small.FinalSize)
	}
	if big.FinalSize > 1 || small.FinalSize <= 0 {
		t.Errorf("final sizes out of range: %v %v", big.FinalSize, small.FinalSize)
	}
	if big.Duration < 1 {
		t.Error("active epidemic ended instantly")
	}
}

func TestIndependentCascade(t *testing.T) {
	// Star: center 0 is watched by 1..9 (they are fans of 0).
	b := graph.NewBuilder(10)
	for i := 1; i < 10; i++ {
		b.AddEdge(graph.NodeID(i), 0)
	}
	g := b.Build()
	r := rng.New(7)
	// p=1: all fans activate.
	order := IndependentCascade(g, []graph.NodeID{0}, 1, r)
	if len(order) != 10 || order[0] != 0 {
		t.Errorf("full cascade = %v", order)
	}
	// p=0: only the seed.
	order = IndependentCascade(g, []graph.NodeID{0}, 0, r)
	if len(order) != 1 {
		t.Errorf("zero-p cascade = %v", order)
	}
	// Invalid and duplicate seeds are skipped.
	order = IndependentCascade(g, []graph.NodeID{0, 0, -1, 99}, 0, r)
	if len(order) != 1 {
		t.Errorf("seed handling = %v", order)
	}
}

func TestIndependentCascadeDepth(t *testing.T) {
	// Chain: i+1 is a fan of i, so activation travels down the chain.
	b := graph.NewBuilder(6)
	for i := 0; i < 5; i++ {
		b.AddEdge(graph.NodeID(i+1), graph.NodeID(i))
	}
	g := b.Build()
	order := IndependentCascade(g, []graph.NodeID{0}, 1, rng.New(8))
	if len(order) != 6 {
		t.Errorf("chain cascade = %v", order)
	}
	for i, u := range order {
		if int(u) != i {
			t.Errorf("activation order = %v", order)
		}
	}
}

func TestLinearThreshold(t *testing.T) {
	// Node 3 watches 0, 1, 2 (its friends); when all are active its
	// activation fraction is 1 >= any threshold.
	g, err := graph.FromEdgeList(4, [][2]graph.NodeID{{3, 0}, {3, 1}, {3, 2}})
	if err != nil {
		t.Fatal(err)
	}
	order := LinearThreshold(g, []graph.NodeID{0, 1, 2}, rng.New(9))
	if len(order) != 4 {
		t.Errorf("order = %v; node 3 should activate", order)
	}
	// No seeds: nothing activates.
	if got := LinearThreshold(g, nil, rng.New(10)); len(got) != 0 {
		t.Errorf("no-seed activation = %v", got)
	}
}

func BenchmarkSIS(b *testing.B) {
	r := rng.New(11)
	g, _ := graph.PreferentialAttachment(r, 2000, 3, 0)
	cfg := SISConfig{Lambda: 0.1, Recovery: 0.2, Steps: 50, InitialInfected: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SIS(g, cfg, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
