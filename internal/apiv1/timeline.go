package apiv1

// timeline.go defines the wire shapes of GET /debug/timeline: the
// metrics timeline (periodic registry snapshots reduced to per-step
// deltas, rates and interval quantiles) plus the burn-rate evaluation
// of every configured SLO. Like /debug/obs this is a debugging
// surface, so durations are milliseconds and window widths seconds.

// TimelineDump is the GET /debug/timeline response.
type TimelineDump struct {
	// WindowSeconds and StepSeconds echo the (clamped) query
	// parameters the dump was derived with.
	WindowSeconds float64 `json:"window_seconds"`
	StepSeconds   float64 `json:"step_seconds"`
	// IntervalSeconds is the capture cadence — the finest step the
	// timeline can resolve.
	IntervalSeconds float64 `json:"interval_seconds"`
	// Series is every instrument's trend over the window, sorted by
	// family then labels.
	Series []TimelineSeries `json:"series"`
	// Burn is the multi-window burn-rate evaluation of each SLO,
	// always over the evaluator's own windows (not the query's).
	Burn []BurnStatus `json:"burn,omitempty"`
}

// TimelineSeries is one instrument's trend: a point per step.
type TimelineSeries struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	// Kind is "counter", "gauge" or "histogram" and selects which
	// point fields are meaningful.
	Kind   string          `json:"kind"`
	Points []TimelinePoint `json:"points"`
}

// TimelinePoint is one derived step of a series.
type TimelinePoint struct {
	// AtUnixMillis is the wall-clock end of the step.
	AtUnixMillis int64 `json:"at_unix_ms"`
	// IntervalSeconds is the wall time the step actually covers.
	IntervalSeconds float64 `json:"interval_seconds"`
	// Value is a gauge's raw value at the step's end.
	Value uint64 `json:"value,omitempty"`
	// Delta is a counter's increase (histograms: observation count)
	// over the step; Rate is Delta per second.
	Delta uint64  `json:"delta,omitempty"`
	Rate  float64 `json:"rate,omitempty"`
	// P50Millis/P99Millis are a histogram's interval quantiles —
	// quantiles of only the observations that landed in this step.
	P50Millis float64 `json:"p50_ms,omitempty"`
	P99Millis float64 `json:"p99_ms,omitempty"`
	// SumMillis is the histogram time observed in the step.
	SumMillis float64 `json:"sum_ms,omitempty"`
}

// BurnStatus is one SLO's multi-window burn-rate evaluation.
type BurnStatus struct {
	// Name is the SLO's stable identifier (e.g. "frontpage_freshness");
	// Family is the histogram family it evaluates.
	Name   string `json:"name"`
	Family string `json:"family"`
	// Objective is the good fraction promised (e.g. 0.99);
	// ThresholdMillis is the latency below which an observation is good.
	Objective       float64 `json:"objective"`
	ThresholdMillis float64 `json:"threshold_ms"`
	// Short and Long are the fast- and slow-window measurements;
	// Degraded is set when both burn at or above the alert factor.
	Short    BurnWindow `json:"short"`
	Long     BurnWindow `json:"long"`
	Degraded bool       `json:"degraded"`
}

// BurnWindow is one window's burn measurement.
type BurnWindow struct {
	// WindowSeconds is the requested width; CoveredSeconds is the wall
	// time the retained snapshots actually span (shorter after boot).
	WindowSeconds  float64 `json:"window_seconds"`
	CoveredSeconds float64 `json:"covered_seconds"`
	// Total counts observations in the window, Bad those at or above
	// the threshold. Burn is the bad fraction divided by the error
	// budget (1 - objective): 1.0 means burning budget exactly at the
	// sustainable rate.
	Total uint64  `json:"total"`
	Bad   uint64  `json:"bad"`
	Burn  float64 `json:"burn"`
}
