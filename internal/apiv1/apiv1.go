// Package apiv1 is the frozen, transport-agnostic contract for the v1
// HTTP API. It defines every request and response shape the /v1/*
// surface speaks, the machine-readable error envelope with its stable
// error codes, and the opaque generation-stamped cursors that paginate
// every list endpoint.
//
// The package deliberately contains no HTTP server or client code:
// internal/httpapi mounts these types under /v1/* and the typed client
// SDK decodes into them, but any other transport (a future gRPC
// gateway, a replay harness, golden-fixture tests) can speak the same
// contract. The only dependencies are the domain identifier types from
// internal/digg.
//
// Compatibility contract: shapes in this package are append-only.
// Fields may be added (with omitempty semantics where they are
// optional); existing fields, their JSON names, and the error code
// strings never change meaning. The golden fixtures under testdata/
// pin the wire format, and CI refuses fixture changes that are not
// accompanied by a version note in docs/api.md.
package apiv1

import "diggsim/internal/digg"

// MaxBatch is the largest number of items accepted by the batch write
// endpoints (POST /v1/diggs:batch and POST /v1/stories:batch). Larger
// requests are rejected whole with CodeInvalidArgument.
const MaxBatch = 1000

// MaxPageSize caps the limit parameter of every v1 list endpoint.
// Requests asking for more are clamped, not rejected.
const MaxPageSize = 1000

// StorySummary is the list-view representation of a story (front page,
// upcoming queue, and story listings).
type StorySummary struct {
	ID          digg.StoryID `json:"id"`
	Title       string       `json:"title"`
	Submitter   digg.UserID  `json:"submitter"`
	SubmittedAt int64        `json:"submitted_at"`
	Promoted    bool         `json:"promoted"`
	PromotedAt  int64        `json:"promoted_at,omitempty"`
	Votes       int          `json:"votes"`
}

// VoteRecord is one vote in a story detail response, in chronological
// order with the submitter first — exactly the structure the paper
// scraped.
type VoteRecord struct {
	Voter digg.UserID `json:"voter"`
	At    int64       `json:"at"`
}

// StoryDetail is the full story view including its vote list.
type StoryDetail struct {
	StorySummary
	VoteList []VoteRecord `json:"vote_list"`
}

// StoriesPage is one cursor page of a story listing (/v1/stories,
// /v1/frontpage, /v1/upcoming). NextCursor is empty on the final page.
// Total is the number of stories in the listing as of the generation
// the page was served from (for /v1/upcoming it counts all unpromoted
// stories, including ones not yet visible at the serving clock).
type StoriesPage struct {
	Stories    []StorySummary `json:"stories"`
	Total      int            `json:"total"`
	NextCursor Cursor         `json:"next_cursor,omitempty"`
}

// UserInfo describes a user: fan/friend counts and reputation rank
// (0 when unranked).
type UserInfo struct {
	ID      digg.UserID `json:"id"`
	Fans    int         `json:"fans"`
	Friends int         `json:"friends"`
	Rank    int         `json:"rank"`
}

// UserLinksPage is one cursor page of a user's fans or friends.
type UserLinksPage struct {
	ID         digg.UserID   `json:"id"`
	Users      []digg.UserID `json:"users"`
	Total      int           `json:"total"`
	NextCursor Cursor        `json:"next_cursor,omitempty"`
}

// TopUsersPage is one cursor page of the reputation ranking, best
// first.
type TopUsersPage struct {
	Users      []digg.UserID `json:"users"`
	Total      int           `json:"total"`
	NextCursor Cursor        `json:"next_cursor,omitempty"`
}

// SubmitRequest creates a story (POST /v1/stories). A zero At defaults
// to the server's current simulation minute.
type SubmitRequest struct {
	Submitter digg.UserID `json:"submitter"`
	Title     string      `json:"title"`
	Interest  float64     `json:"interest"`
	At        int64       `json:"at"`
}

// DiggRequest casts a vote on a story named in the URL path
// (POST /v1/stories/{id}/digg). A zero At defaults to the server's
// current simulation minute.
type DiggRequest struct {
	Voter digg.UserID `json:"voter"`
	At    int64       `json:"at"`
}

// DiggResponse reports the outcome of a vote.
type DiggResponse struct {
	InNetwork bool `json:"in_network"`
	Promoted  bool `json:"promoted"`
	Votes     int  `json:"votes"`
}

// BatchDiggItem is one vote inside a batch write; unlike DiggRequest
// it names its story explicitly.
type BatchDiggItem struct {
	Story digg.StoryID `json:"story"`
	Voter digg.UserID  `json:"voter"`
	At    int64        `json:"at,omitempty"`
}

// BatchDiggRequest casts up to MaxBatch votes in one write transaction
// (POST /v1/diggs:batch): one lock acquisition and one snapshot
// republish for the whole batch.
type BatchDiggRequest struct {
	Diggs []BatchDiggItem `json:"diggs"`
}

// BatchDiggResult is the per-item outcome of a batch digg. Exactly one
// of the vote fields or Error is meaningful: a failed item carries its
// own error envelope and does not abort the rest of the batch.
type BatchDiggResult struct {
	InNetwork bool   `json:"in_network"`
	Promoted  bool   `json:"promoted"`
	Votes     int    `json:"votes"`
	Error     *Error `json:"error,omitempty"`
}

// BatchDiggResponse reports per-item outcomes in request order.
type BatchDiggResponse struct {
	Results []BatchDiggResult `json:"results"`
}

// BatchSubmitRequest creates up to MaxBatch stories in one write
// transaction (POST /v1/stories:batch).
type BatchSubmitRequest struct {
	Stories []SubmitRequest `json:"stories"`
}

// BatchSubmitResult is the per-item outcome of a batch submit.
type BatchSubmitResult struct {
	Story *StorySummary `json:"story,omitempty"`
	Error *Error        `json:"error,omitempty"`
}

// BatchSubmitResponse reports per-item outcomes in request order.
type BatchSubmitResponse struct {
	Results []BatchSubmitResult `json:"results"`
}
