package apiv1

import "fmt"

// Stable machine-readable error codes. Clients dispatch on these, not
// on message text; the set is append-only.
const (
	// CodeInvalidArgument: a malformed request — bad JSON, a negative
	// or overflowing limit, a bad path id, an oversized batch.
	CodeInvalidArgument = "invalid_argument"
	// CodeInvalidCursor: a pagination cursor that failed to decode,
	// was tampered with, or belongs to a different endpoint.
	CodeInvalidCursor = "invalid_cursor"
	// CodeNotFound: the named story or user does not exist.
	CodeNotFound = "not_found"
	// CodeUnknownUser: a write named a user outside the social graph.
	CodeUnknownUser = "unknown_user"
	// CodeAlreadyVoted: the voter already dugg this story.
	CodeAlreadyVoted = "already_voted"
	// CodeStoryGone: the story's live state was compacted; it can no
	// longer accept votes.
	CodeStoryGone = "story_gone"
	// CodeRateLimited: the request was shed by the rate limiter; honor
	// RetryAfter before retrying.
	CodeRateLimited = "rate_limited"
	// CodeInternal: an unexpected server-side failure.
	CodeInternal = "internal"
)

// Error is the v1 API error: the body of the machine-readable envelope
// and, on the client side, the typed error returned from every SDK
// call (retrieve it with errors.As).
type Error struct {
	// StatusCode is the HTTP status the error travelled with. It is
	// transport metadata, not part of the JSON body.
	StatusCode int `json:"-"`
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is human-readable detail; its text is not part of the
	// compatibility contract.
	Message string `json:"message"`
	// RetryAfter, when non-zero, is the number of seconds the client
	// should wait before retrying (set on rate_limited errors,
	// mirroring the Retry-After header).
	RetryAfter int `json:"retry_after,omitempty"`
	// TraceID is the request's trace ID (16 hex digits, matching the
	// X-Trace-Id header), filled in by the client SDK so a failed call
	// can be joined to server-side traces. Not part of the JSON body
	// servers send — the header is authoritative.
	TraceID string `json:"trace_id,omitempty"`
}

func (e *Error) Error() string {
	if e.StatusCode != 0 {
		return fmt.Sprintf("apiv1: %s: %s (http %d)", e.Code, e.Message, e.StatusCode)
	}
	return fmt.Sprintf("apiv1: %s: %s", e.Code, e.Message)
}

// ErrorEnvelope is the JSON error wrapper every non-2xx v1 response
// carries: {"error": {"code": ..., "message": ..., "retry_after": ...}}.
type ErrorEnvelope struct {
	Error *Error `json:"error"`
}
