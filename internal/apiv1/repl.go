package apiv1

// repl.go is the replication block of the v1 contract (v1.3): the
// error code a fenced follower rejects writes with, and the stats
// shapes describing a node's replication position.

// CodeReadOnlyReplica: the write reached a follower. Followers serve
// the full read surface but fence every write with 503 + this code;
// clients should retry against the primary (or after a failover
// promotes this node).
const CodeReadOnlyReplica = "read_only_replica"

// ReplStats is the replication section of the /v1/stats envelope,
// present when the serving node participates in replication.
type ReplStats struct {
	// Role is "primary" or "follower".
	Role string `json:"role"`
	// Primary is the upstream base URL a follower tails (empty on a
	// primary).
	Primary string `json:"primary,omitempty"`
	// StalenessSeconds is the age of the oldest shard's last heartbeat —
	// an upper bound on how far behind the primary reads may be. It is
	// -1 until the first heartbeat arrives, and omitted on a primary.
	StalenessSeconds float64 `json:"staleness_seconds,omitempty"`
	// Shards is each WAL stream's position.
	Shards []ReplShardStats `json:"shards,omitempty"`
}

// ReplShardStats is one shard's replication position.
type ReplShardStats struct {
	Shard int `json:"shard"`
	// AppliedLSN is this node's log position.
	AppliedLSN uint64 `json:"applied_lsn"`
	// ShippedLSN is the primary's head per its last heartbeat.
	ShippedLSN uint64 `json:"shipped_lsn"`
	// LagSeconds is the age of the last heartbeat (-1 before the first).
	LagSeconds float64 `json:"lag_seconds"`
	// LastContactAgeSeconds is how long ago any frame arrived on this
	// shard's stream (-1 before the first).
	LastContactAgeSeconds float64 `json:"last_contact_age_seconds"`
	// CommitTraceID is the trace ID of the newest primary write this
	// follower has confirmed applied and republished (16 hex digits,
	// v1.4) — the join key between a client's X-Trace-Id and follower
	// visibility. Omitted on primaries and before the first stamped
	// commit.
	CommitTraceID string `json:"commit_trace_id,omitempty"`
}
