package apiv1

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"diggsim/internal/digg"
)

var update = flag.Bool("update", false, "rewrite golden contract fixtures")

// contractCases enumerates one canonical instance of every v1 wire
// shape. The golden files under testdata/ pin the JSON rendering: a
// diff in any fixture is a wire-format change and requires a version
// note in docs/api.md (enforced by the contract-guard CI job).
func contractCases() map[string]any {
	cursor := CursorPayload{Kind: CursorStories, Gen: 7, Pos: 100, Ver: 3}.Encode()
	summary := StorySummary{
		ID: 42, Title: "breaking: cursors are opaque \"tokens\"", Submitter: 7,
		SubmittedAt: 1440, Promoted: true, PromotedAt: 1500, Votes: 58,
	}
	unpromoted := StorySummary{
		ID: 43, Title: "still upcoming", Submitter: 9, SubmittedAt: 1450, Votes: 4,
	}
	return map[string]any{
		"story_summary": summary,
		"story_detail": StoryDetail{
			StorySummary: summary,
			VoteList:     []VoteRecord{{Voter: 7, At: 1440}, {Voter: 12, At: 1447}},
		},
		"stories_page": StoriesPage{
			Stories: []StorySummary{summary, unpromoted}, Total: 923, NextCursor: cursor,
		},
		"stories_page_last": StoriesPage{
			Stories: []StorySummary{unpromoted}, Total: 2,
		},
		"user_info": UserInfo{ID: 7, Fans: 120, Friends: 14, Rank: 3},
		"user_links_page": UserLinksPage{
			ID: 7, Users: []digg.UserID{1, 5, 9}, Total: 120,
			NextCursor: CursorPayload{Kind: CursorLinks, Pos: 3}.Encode(),
		},
		"topusers_page": TopUsersPage{
			Users: []digg.UserID{7, 1, 12}, Total: 1020,
			NextCursor: CursorPayload{Kind: CursorTopUsers, Gen: 7, Pos: 3}.Encode(),
		},
		"submit_request": SubmitRequest{Submitter: 7, Title: "a story", Interest: 0.8, At: 1440},
		"digg_request":   DiggRequest{Voter: 12, At: 1447},
		"digg_response":  DiggResponse{InNetwork: true, Promoted: false, Votes: 5},
		"batch_digg_request": BatchDiggRequest{Diggs: []BatchDiggItem{
			{Story: 42, Voter: 12, At: 1447},
			{Story: 42, Voter: 13},
		}},
		"batch_digg_response": BatchDiggResponse{Results: []BatchDiggResult{
			{InNetwork: true, Promoted: false, Votes: 5},
			{Error: &Error{Code: CodeAlreadyVoted, Message: "digg: user already voted on story"}},
		}},
		"batch_submit_request": BatchSubmitRequest{Stories: []SubmitRequest{
			{Submitter: 7, Title: "a story", Interest: 0.8, At: 1440},
		}},
		"batch_submit_response": BatchSubmitResponse{Results: []BatchSubmitResult{
			{Story: &unpromoted},
			{Error: &Error{Code: CodeUnknownUser, Message: "digg: user outside social graph"}},
		}},
		"error_not_found": ErrorEnvelope{Error: &Error{
			Code: CodeNotFound, Message: "digg: no story 999",
		}},
		"error_rate_limited": ErrorEnvelope{Error: &Error{
			Code: CodeRateLimited, Message: "rate limit exceeded", RetryAfter: 2,
		}},
		"error_invalid_cursor": ErrorEnvelope{Error: &Error{
			Code: CodeInvalidCursor, Message: "cursor is malformed or was issued by a different endpoint",
		}},
		"error_invalid_argument": ErrorEnvelope{Error: &Error{
			Code: CodeInvalidArgument, Message: "limit must be a non-negative integer",
		}},
		"error_read_only_replica": ErrorEnvelope{Error: &Error{
			Code: CodeReadOnlyReplica, Message: "this node is a read-only follower; write to the primary",
		}},
		"repl_stats": ReplStats{
			Role: "follower", Primary: "http://primary:8080",
			StalenessSeconds: 0.254,
			Shards: []ReplShardStats{
				{Shard: 0, AppliedLSN: 48122, ShippedLSN: 48123, LagSeconds: 0.254, LastContactAgeSeconds: 0.004, CommitTraceID: "4f2a9c01d3e87b65"},
				{Shard: 1, AppliedLSN: 47990, ShippedLSN: 47990, LagSeconds: 0.121, LastContactAgeSeconds: 0.004},
			},
		},
		"error_with_trace": ErrorEnvelope{Error: &Error{
			Code: CodeInternal, Message: "wal: append failed",
			TraceID: "4f2a9c01d3e87b65",
		}},
		"timeline": TimelineDump{
			WindowSeconds: 300, StepSeconds: 10, IntervalSeconds: 1,
			Series: []TimelineSeries{
				{
					Name:   "diggsim_freshness_write_to_frontpage_visible_seconds",
					Labels: `source="http"`, Kind: "histogram",
					Points: []TimelinePoint{
						{AtUnixMillis: 1151712000000, IntervalSeconds: 10, Delta: 412,
							Rate: 41.2, P50Millis: 1.8, P99Millis: 14.5, SumMillis: 980.4},
						{AtUnixMillis: 1151712010000, IntervalSeconds: 10, Delta: 398,
							Rate: 39.8, P50Millis: 1.9, P99Millis: 16.2, SumMillis: 1004.1},
					},
				},
				{
					Name: "diggsim_http_requests_total", Kind: "counter",
					Points: []TimelinePoint{
						{AtUnixMillis: 1151712000000, IntervalSeconds: 10, Delta: 120410, Rate: 12041},
					},
				},
				{
					Name: "diggsim_snapshot_view_generation", Kind: "gauge",
					Points: []TimelinePoint{
						{AtUnixMillis: 1151712000000, IntervalSeconds: 10, Value: 48122},
					},
				},
			},
			Burn: []BurnStatus{{
				Name:      "frontpage_freshness",
				Family:    "diggsim_freshness_write_to_frontpage_visible_seconds",
				Objective: 0.99, ThresholdMillis: 250,
				Short:    BurnWindow{WindowSeconds: 300, CoveredSeconds: 300, Total: 12400, Bad: 31, Burn: 0.25},
				Long:     BurnWindow{WindowSeconds: 3600, CoveredSeconds: 900, Total: 36100, Bad: 40, Burn: 0.1108},
				Degraded: false,
			}},
		},
		"obs_dump": ObsDump{
			Instruments: []ObsInstrument{
				{
					Name: "diggsim_http_request_seconds", Labels: `route="frontpage"`,
					Count: 120000, TotalMillis: 54000,
					P50Millis: 0.00042, P90Millis: 0.00061, P99Millis: 0.0014,
					P999Millis: 0.21, MaxMillis: 0.26,
				},
				{
					Name:  "diggsim_wal_fsync_seconds",
					Count: 480, TotalMillis: 1920,
					P50Millis: 3.6, P90Millis: 5.1, P99Millis: 9.8,
					P999Millis: 14, MaxMillis: 16,
				},
			},
			SlowTotal: 3,
			SlowTraces: []ObsTrace{{
				ID: "4f2a9c01d3e87b65", Method: "POST", Path: "/v1/diggs:batch",
				Status: 200, StartUnixMillis: 1151712000000, DurationMillis: 312.5,
				Spans: []ObsSpan{
					{Name: "decode", OffsetMillis: 0.01, DurationMillis: 1.2},
					{Name: "apply", OffsetMillis: 1.3, DurationMillis: 298.4},
					{Name: "republish", OffsetMillis: 299.8, DurationMillis: 12.6},
				},
			}},
		},
	}
}

// TestContractGoldenFixtures pins every v1 shape to its golden JSON:
// marshalling the canonical value must reproduce the fixture
// byte-for-byte, and unmarshalling the fixture must reproduce the
// value (a full round trip, so both directions of the wire format are
// frozen). Regenerate intentionally with: go test ./internal/apiv1
// -run Golden -update
func TestContractGoldenFixtures(t *testing.T) {
	for name, v := range contractCases() {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join("testdata", name+".golden.json")
			got, err := json.MarshalIndent(v, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden fixture (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("wire format drifted from golden fixture %s:\n got: %s\nwant: %s\n"+
					"If this change is intentional, regenerate with -update AND add a version note to docs/api.md.",
					path, got, want)
			}
			// Reverse direction: the fixture must decode back into the
			// canonical value.
			back := reflect.New(reflect.TypeOf(v))
			if err := json.Unmarshal(want, back.Interface()); err != nil {
				t.Fatalf("fixture does not decode: %v", err)
			}
			if !reflect.DeepEqual(back.Elem().Interface(), v) {
				t.Errorf("fixture round trip mismatch:\n got %+v\nwant %+v", back.Elem().Interface(), v)
			}
		})
	}
}
