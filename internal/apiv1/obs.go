package apiv1

// obs.go defines the wire shapes of GET /debug/obs: a JSON dump of
// every latency instrument's summary plus the ring of recent slow
// traces. The dump is a debugging surface, so durations are rendered
// in milliseconds (the natural unit of request latency) rather than
// the exposition format's seconds.

// ObsDump is the GET /debug/obs response.
type ObsDump struct {
	// Instruments summarizes every histogram series in registration
	// order: observation count, total time, and interpolated quantiles.
	Instruments []ObsInstrument `json:"instruments"`
	// SlowTotal counts slow requests ever recorded (the ring retains
	// only the most recent).
	SlowTotal uint64 `json:"slow_traces_total"`
	// SlowTraces are the retained slow requests, newest first.
	SlowTraces []ObsTrace `json:"slow_traces"`
}

// ObsInstrument is one latency histogram's cold-side summary.
type ObsInstrument struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	Count  uint64 `json:"count"`
	// TotalMillis is the sum of all observations in milliseconds.
	TotalMillis float64 `json:"total_ms"`
	// Quantiles are interpolated estimates in milliseconds; their
	// relative error is bounded by the histogram's bucket width (<=25%).
	P50Millis  float64 `json:"p50_ms"`
	P90Millis  float64 `json:"p90_ms"`
	P99Millis  float64 `json:"p99_ms"`
	P999Millis float64 `json:"p999_ms"`
	// MaxMillis is an upper estimate of the largest observation.
	MaxMillis float64 `json:"max_ms"`
}

// ObsTrace is one retained slow request with its recorded spans.
type ObsTrace struct {
	// ID is the request's trace ID (16 hex digits), matching the
	// X-Trace-Id response header and slow-request log lines.
	ID     string `json:"id"`
	Method string `json:"method"`
	Path   string `json:"path"`
	Status int    `json:"status"`
	// StartUnixMillis is the request's arrival time.
	StartUnixMillis int64     `json:"start_unix_ms"`
	DurationMillis  float64   `json:"duration_ms"`
	Spans           []ObsSpan `json:"spans,omitempty"`
}

// ObsSpan is one named stage within a slow trace.
type ObsSpan struct {
	Name string `json:"name"`
	// OffsetMillis is the stage's start relative to the request start.
	OffsetMillis   float64 `json:"offset_ms"`
	DurationMillis float64 `json:"duration_ms"`
}
