package apiv1

import (
	"encoding/base64"
	"encoding/binary"
	"errors"
	"hash/fnv"
)

// Cursor is an opaque pagination token. Clients treat it as a black
// box: pass back exactly what the previous page returned. The encoding
// carries an endpoint-specific position chosen to stay stable across
// platform generations (see the CursorKind constants), which is what
// makes iteration exact against the live writer, plus two provenance
// stamps — the platform generation the issuing page was served from
// and the last-served story's version — recorded for diagnostics and
// future drift-aware serving optimizations; the resume logic itself
// needs only the position.
type Cursor string

// CursorKind namespaces cursors per endpoint family, so a cursor
// minted by one listing cannot be replayed against another.
type CursorKind byte

const (
	// CursorStories paginates /v1/stories; Pos is the next story index
	// in submission order (ascending, append-only, hence stable).
	CursorStories CursorKind = 's'
	// CursorFrontPage paginates /v1/frontpage; Pos is the next
	// promotion-order index to serve, descending. The promotion list is
	// append-only, so the index identifies the same story forever.
	CursorFrontPage CursorKind = 'f'
	// CursorUpcoming paginates /v1/upcoming; Pos is the story id of the
	// last entry served — the next page holds only older (smaller-id)
	// unpromoted stories, so promotions between pages can never
	// duplicate or skip an entry.
	CursorUpcoming CursorKind = 'u'
	// CursorTopUsers paginates /v1/topusers; Pos is the next rank
	// index (exact within a generation; ranks may shift across
	// promotions).
	CursorTopUsers CursorKind = 't'
	// CursorLinks paginates /v1/users/{id}/fans and /friends; Pos is
	// the next index into the (immutable) link list.
	CursorLinks CursorKind = 'l'
)

// ErrInvalidCursor reports a cursor that failed to decode, failed its
// checksum (tampering), or was minted for a different endpoint. The
// server surfaces it as CodeInvalidCursor.
var ErrInvalidCursor = errors.New("apiv1: invalid cursor")

// CursorPayload is the decoded content of a Cursor.
type CursorPayload struct {
	Kind CursorKind
	// Gen is the platform generation the issuing page was served from.
	// Against a sharded store this is the composite generation (the sum
	// of the shard generations).
	Gen uint64
	// Pos is the endpoint-specific position or boundary key (see the
	// CursorKind constants).
	Pos int64
	// Ver is the version counter of the last story served, when the
	// listing is story-shaped (0 otherwise).
	Ver uint64
	// ShardGens is the per-shard generation vector the issuing page was
	// served from — empty against an unsharded store. Like Gen and Ver
	// it is a provenance stamp: resume needs only Pos, but the server
	// rejects a cursor whose vector length disagrees with the serving
	// store's shard count, since positions minted under one shard
	// layout are not meaningful under another.
	ShardGens []uint64
}

// Encode renders the payload as an opaque URL-safe token with an
// integrity checksum.
func (p CursorPayload) Encode() Cursor {
	b := make([]byte, 0, 1+(4+len(p.ShardGens))*binary.MaxVarintLen64+4)
	b = append(b, byte(p.Kind))
	b = binary.AppendUvarint(b, p.Gen)
	b = binary.AppendVarint(b, p.Pos)
	b = binary.AppendUvarint(b, p.Ver)
	b = binary.AppendUvarint(b, uint64(len(p.ShardGens)))
	for _, g := range p.ShardGens {
		b = binary.AppendUvarint(b, g)
	}
	h := fnv.New32a()
	h.Write(b)
	b = binary.BigEndian.AppendUint32(b, h.Sum32())
	return Cursor(base64.RawURLEncoding.EncodeToString(b))
}

// Decode parses and verifies a cursor for the given endpoint family,
// returning ErrInvalidCursor on any malformation, checksum mismatch,
// or kind mismatch.
func (c Cursor) Decode(kind CursorKind) (CursorPayload, error) {
	raw, err := base64.RawURLEncoding.DecodeString(string(c))
	if err != nil || len(raw) < 1+4 {
		return CursorPayload{}, ErrInvalidCursor
	}
	body, sum := raw[:len(raw)-4], raw[len(raw)-4:]
	h := fnv.New32a()
	h.Write(body)
	if binary.BigEndian.Uint32(sum) != h.Sum32() {
		return CursorPayload{}, ErrInvalidCursor
	}
	p := CursorPayload{Kind: CursorKind(body[0])}
	if p.Kind != kind {
		return CursorPayload{}, ErrInvalidCursor
	}
	rest := body[1:]
	var n int
	if p.Gen, n = binary.Uvarint(rest); n <= 0 {
		return CursorPayload{}, ErrInvalidCursor
	}
	rest = rest[n:]
	if p.Pos, n = binary.Varint(rest); n <= 0 {
		return CursorPayload{}, ErrInvalidCursor
	}
	rest = rest[n:]
	if p.Ver, n = binary.Uvarint(rest); n <= 0 {
		return CursorPayload{}, ErrInvalidCursor
	}
	rest = rest[n:]
	nShards, n := binary.Uvarint(rest)
	if n <= 0 {
		return CursorPayload{}, ErrInvalidCursor
	}
	rest = rest[n:]
	// Each shard generation is at least one byte; a corrupt count can
	// never drive a huge allocation past this bound.
	if nShards > uint64(len(rest)) {
		return CursorPayload{}, ErrInvalidCursor
	}
	if nShards > 0 {
		p.ShardGens = make([]uint64, nShards)
		for i := range p.ShardGens {
			if p.ShardGens[i], n = binary.Uvarint(rest); n <= 0 {
				return CursorPayload{}, ErrInvalidCursor
			}
			rest = rest[n:]
		}
	}
	if len(rest) != 0 {
		return CursorPayload{}, ErrInvalidCursor
	}
	return p, nil
}
