package apiv1

import (
	"encoding/base64"
	"errors"
	"testing"
)

func TestCursorRoundTrip(t *testing.T) {
	cases := []CursorPayload{
		{Kind: CursorStories, Gen: 0, Pos: 0, Ver: 0},
		{Kind: CursorStories, Gen: 42, Pos: 17, Ver: 3},
		{Kind: CursorFrontPage, Gen: 1<<63 + 5, Pos: 1<<40 + 1, Ver: 9},
		{Kind: CursorUpcoming, Gen: 7, Pos: -1, Ver: 1},
		{Kind: CursorTopUsers, Gen: 1, Pos: 1023},
		{Kind: CursorLinks, Pos: 500},
	}
	for _, want := range cases {
		c := want.Encode()
		got, err := c.Decode(want.Kind)
		if err != nil {
			t.Fatalf("Decode(%+v): %v", want, err)
		}
		if got != want {
			t.Errorf("round trip: got %+v want %+v", got, want)
		}
	}
}

func TestCursorKindMismatch(t *testing.T) {
	c := CursorPayload{Kind: CursorStories, Gen: 3, Pos: 9}.Encode()
	if _, err := c.Decode(CursorUpcoming); !errors.Is(err, ErrInvalidCursor) {
		t.Errorf("cross-endpoint replay accepted: %v", err)
	}
}

// TestCursorTamperDetected flips every byte of a valid token in turn;
// each corruption must be rejected (the checksum covers kind and all
// varint fields).
func TestCursorTamperDetected(t *testing.T) {
	c := CursorPayload{Kind: CursorStories, Gen: 99, Pos: 1234, Ver: 56}.Encode()
	raw, err := base64.RawURLEncoding.DecodeString(string(c))
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw {
		for _, delta := range []byte{1, 0x80} {
			mut := append([]byte(nil), raw...)
			mut[i] ^= delta
			tampered := Cursor(base64.RawURLEncoding.EncodeToString(mut))
			if p, err := tampered.Decode(CursorStories); err == nil {
				t.Errorf("tampered byte %d (^%#x) accepted as %+v", i, delta, p)
			}
		}
	}
}

func TestCursorGarbageRejected(t *testing.T) {
	for _, c := range []Cursor{"", "x", "not base64 !!!", "AAAA", Cursor(base64.RawURLEncoding.EncodeToString([]byte("short")))} {
		if _, err := c.Decode(CursorStories); !errors.Is(err, ErrInvalidCursor) {
			t.Errorf("garbage cursor %q accepted (err=%v)", c, err)
		}
	}
}
