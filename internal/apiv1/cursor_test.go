package apiv1

import (
	"encoding/base64"
	"encoding/binary"
	"errors"
	"hash/fnv"
	"reflect"
	"testing"
)

func TestCursorRoundTrip(t *testing.T) {
	cases := []CursorPayload{
		{Kind: CursorStories, Gen: 0, Pos: 0, Ver: 0},
		{Kind: CursorStories, Gen: 42, Pos: 17, Ver: 3},
		{Kind: CursorFrontPage, Gen: 1<<63 + 5, Pos: 1<<40 + 1, Ver: 9},
		{Kind: CursorUpcoming, Gen: 7, Pos: -1, Ver: 1},
		{Kind: CursorTopUsers, Gen: 1, Pos: 1023},
		{Kind: CursorLinks, Pos: 500},
		{Kind: CursorStories, Gen: 10, Pos: 4, Ver: 2, ShardGens: []uint64{3, 0, 7, 1 << 50}},
		{Kind: CursorFrontPage, Gen: 1, Pos: 1, ShardGens: []uint64{1}},
	}
	for _, want := range cases {
		c := want.Encode()
		got, err := c.Decode(want.Kind)
		if err != nil {
			t.Fatalf("Decode(%+v): %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip: got %+v want %+v", got, want)
		}
	}
}

// TestCursorShardVectorBounded exercises the allocation guard: a
// forged count far beyond the remaining bytes must be rejected (not
// drive a huge make).
func TestCursorShardVectorBounded(t *testing.T) {
	// Build a structurally valid body with an absurd shard count and a
	// correct checksum, bypassing Encode.
	p := CursorPayload{Kind: CursorStories, Gen: 1, Pos: 2, Ver: 3}
	c := p.Encode()
	raw, err := base64.RawURLEncoding.DecodeString(string(c))
	if err != nil {
		t.Fatal(err)
	}
	body := raw[:len(raw)-4]
	// The count field of a vector-free cursor is the final 0 byte;
	// replace it with a giant varint count and re-checksum.
	body = body[:len(body)-1]
	body = append(body, 0xff, 0xff, 0xff, 0xff, 0x0f) // ~64 GiB worth of entries
	forged := appendChecksum(body)
	if _, err := forged.Decode(CursorStories); !errors.Is(err, ErrInvalidCursor) {
		t.Errorf("oversized shard count accepted (err=%v)", err)
	}
}

// appendChecksum seals a hand-built cursor body the way Encode does.
func appendChecksum(body []byte) Cursor {
	h := fnv.New32a()
	h.Write(body)
	sealed := binary.BigEndian.AppendUint32(append([]byte(nil), body...), h.Sum32())
	return Cursor(base64.RawURLEncoding.EncodeToString(sealed))
}

func TestCursorKindMismatch(t *testing.T) {
	c := CursorPayload{Kind: CursorStories, Gen: 3, Pos: 9}.Encode()
	if _, err := c.Decode(CursorUpcoming); !errors.Is(err, ErrInvalidCursor) {
		t.Errorf("cross-endpoint replay accepted: %v", err)
	}
}

// TestCursorTamperDetected flips every byte of a valid token in turn;
// each corruption must be rejected (the checksum covers kind and all
// varint fields).
func TestCursorTamperDetected(t *testing.T) {
	c := CursorPayload{Kind: CursorStories, Gen: 99, Pos: 1234, Ver: 56}.Encode()
	raw, err := base64.RawURLEncoding.DecodeString(string(c))
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw {
		for _, delta := range []byte{1, 0x80} {
			mut := append([]byte(nil), raw...)
			mut[i] ^= delta
			tampered := Cursor(base64.RawURLEncoding.EncodeToString(mut))
			if p, err := tampered.Decode(CursorStories); err == nil {
				t.Errorf("tampered byte %d (^%#x) accepted as %+v", i, delta, p)
			}
		}
	}
}

func TestCursorGarbageRejected(t *testing.T) {
	for _, c := range []Cursor{"", "x", "not base64 !!!", "AAAA", Cursor(base64.RawURLEncoding.EncodeToString([]byte("short")))} {
		if _, err := c.Decode(CursorStories); !errors.Is(err, ErrInvalidCursor) {
			t.Errorf("garbage cursor %q accepted (err=%v)", c, err)
		}
	}
}
