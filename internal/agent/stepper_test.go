package agent

import (
	"testing"

	"diggsim/internal/digg"
	"diggsim/internal/graph"
	"diggsim/internal/rng"
)

func stepperFixture(t *testing.T, seed uint64) (*digg.Platform, *Stepper) {
	t.Helper()
	g, err := graph.PreferentialAttachment(rng.New(7), 2000, 4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	p := digg.NewPlatform(g, &digg.ClassicPromotion{VoteThreshold: 8, Window: digg.Day})
	cfg := NewConfig()
	cfg.QueueDiscoveryRate = 0.3
	st, err := NewStepper(p, cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return p, st
}

// TestStepperStepSizeInvariance is the live subsystem's core
// determinism contract: advancing a story's lifetime in many small
// slices must produce bit-identical votes to advancing it in one jump,
// because stopping at a step deadline consumes no randomness.
func TestStepperStepSizeInvariance(t *testing.T) {
	const seed = 42
	run := func(step digg.Minutes) []*digg.Story {
		p, st := stepperFixture(t, seed)
		subs := []digg.UserID{3, 40, 700}
		for i, u := range subs {
			if _, err := st.StartStory(u, "s", 0.9, digg.Minutes(i*30)); err != nil {
				t.Fatal(err)
			}
		}
		horizon := digg.Minutes(len(subs)*30) + NewConfig().Horizon
		for now := digg.Minutes(0); now <= horizon; now += step {
			if err := st.Advance(now, nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Advance(horizon, nil); err != nil {
			t.Fatal(err)
		}
		if st.Active() != 0 {
			t.Fatalf("step %d: %d stories still active past the horizon", step, st.Active())
		}
		return p.Stories()
	}

	oneShot := run(10 * digg.Day)
	sliced := run(7) // awkward 7-minute slices
	if len(oneShot) != len(sliced) {
		t.Fatalf("story counts differ: %d vs %d", len(oneShot), len(sliced))
	}
	for i := range oneShot {
		a, b := oneShot[i], sliced[i]
		if a.Promoted != b.Promoted || a.PromotedAt != b.PromotedAt {
			t.Errorf("story %d: promotion differs: (%v,%d) vs (%v,%d)",
				i, a.Promoted, a.PromotedAt, b.Promoted, b.PromotedAt)
		}
		if len(a.Votes) != len(b.Votes) {
			t.Fatalf("story %d: vote counts differ: %d vs %d", i, len(a.Votes), len(b.Votes))
		}
		for j := range a.Votes {
			if a.Votes[j] != b.Votes[j] {
				t.Fatalf("story %d vote %d differs: %+v vs %+v", i, j, a.Votes[j], b.Votes[j])
			}
		}
	}
}

// TestStepperEventsAndRetirement checks that Advance reports votes and
// promotions as they land, never re-reports them, and compacts retired
// stories.
func TestStepperEventsAndRetirement(t *testing.T) {
	p, st := stepperFixture(t, 1)
	story, err := st.StartStory(5, "live", 1.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var all []VoteEvent
	horizon := NewConfig().Horizon
	for now := digg.Minutes(0); now <= horizon && st.Active() > 0; now += 60 {
		before := len(all)
		if err := st.Advance(now, &all); err != nil {
			t.Fatal(err)
		}
		for _, ev := range all[before:] {
			if ev.At > now {
				t.Fatalf("event at %d delivered at deadline %d", ev.At, now)
			}
		}
	}
	if st.Active() != 0 {
		t.Fatalf("story still active after horizon")
	}
	// One event per non-submitter vote, in chronological order.
	if want := story.VoteCount() - 1; len(all) != want {
		t.Fatalf("got %d events, want %d", len(all), want)
	}
	promotions := 0
	for i, ev := range all {
		if i > 0 && ev.At < all[i-1].At {
			t.Fatalf("events out of order at %d", i)
		}
		if ev.Promoted {
			promotions++
		}
	}
	if !story.Promoted {
		t.Fatal("interest-1.0 story with threshold 8 did not promote")
	}
	if promotions != 1 {
		t.Fatalf("promotion reported %d times", promotions)
	}
	// Retired stories are compacted: further diggs are rejected.
	if _, err := p.Digg(story.ID, 1999, horizon); err != digg.ErrStoryCompacted {
		t.Fatalf("digg on retired story: err = %v, want ErrStoryCompacted", err)
	}
}

// TestStepperToleratesExternalVotes interleaves manual platform diggs
// (the HTTP write path) with stepping: the engine must absorb the
// already-voted conflicts instead of erroring out.
func TestStepperToleratesExternalVotes(t *testing.T) {
	p, st := stepperFixture(t, 3)
	story, err := st.StartStory(5, "live", 1.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	horizon := NewConfig().Horizon
	ext := 0
	for now := digg.Minutes(0); now <= horizon && st.Active() > 0; now += 120 {
		// External votes from a band of users the discovery sampler is
		// also likely to pick.
		for u := digg.UserID(ext % 50); ext < 200; u += 1 {
			if _, err := p.Digg(story.ID, u, now); err == nil {
				ext++
			}
			break
		}
		if err := st.Advance(now, nil); err != nil {
			t.Fatal(err)
		}
	}
	if !story.Promoted {
		t.Fatal("story did not promote despite external help")
	}
	// Vote list must stay chronological and duplicate-free.
	seen := make(map[digg.UserID]bool, story.VoteCount())
	for i, v := range story.Votes {
		if seen[v.Voter] {
			t.Fatalf("duplicate voter %d", v.Voter)
		}
		seen[v.Voter] = true
		if i > 0 && v.At < story.Votes[i-1].At {
			t.Fatalf("votes out of order at %d", i)
		}
	}
}
