package agent

import (
	"errors"

	"diggsim/internal/digg"
	"diggsim/internal/graph"
	"diggsim/internal/rng"
)

// Runner simulates story lifetimes against the bare social graph and a
// promotion policy, with no digg.Platform behind it. It produces
// exactly the votes, in-network flags and promotion decisions that the
// platform-backed Simulator would (the Friends-interface audience is
// the fans of the submitter and of every prior voter in both), but
// skips all shared-platform bookkeeping — which makes it safe and
// cheap to run one Runner per worker when generating a corpus in
// parallel.
//
// Stories produced by a Runner are statistically independent given the
// graph; the promotion policy sees only the story being simulated (the
// PromotionPolicy interface takes nothing else), so per-story runs
// cannot observe each other. A Runner is not safe for concurrent use;
// its scratch buffers are reused across sequential Run calls.
type Runner struct {
	eng    *engine
	policy digg.PromotionPolicy
}

// NewRunner creates a runner over the graph using the supplied
// promotion policy (ClassicPromotion with default settings if nil). It
// returns an error if the configuration is invalid.
func NewRunner(g *graph.Graph, cfg Config, policy digg.PromotionPolicy) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if policy == nil {
		policy = digg.NewClassicPromotion()
	}
	return &Runner{eng: newEngine(g, cfg, nil), policy: policy}, nil
}

// localSink appends votes directly to the story and applies the
// promotion policy, mirroring Platform.Digg for a single story.
type localSink struct {
	eng    *engine
	st     *digg.Story
	policy digg.PromotionPolicy
}

func (ls localSink) castVote(u digg.UserID, t digg.Minutes) (digg.DiggResult, error) {
	// In-network iff u is in the Friends-interface audience (a fan of
	// the submitter or of a prior voter) at voting time; u's own fans
	// join the audience afterwards, in the engine's absorbFans.
	res := digg.DiggResult{InNetwork: ls.eng.inAudience(u)}
	ls.st.Votes = append(ls.st.Votes, digg.Vote{Voter: u, At: t, InNetwork: res.InNetwork})
	res.Votes = len(ls.st.Votes)
	if !ls.st.Promoted && ls.policy.ShouldPromote(ls.st, t) {
		ls.st.Promoted = true
		ls.st.PromotedAt = t
		res.Promoted = true
	}
	return res, nil
}

// Run simulates one story's full lifetime using r as its dedicated
// random stream (derive one per story with rng.Substream for
// order-independent determinism). The returned story carries the vote
// history, in-network flags and promotion outcome; id is stamped as-is.
func (rn *Runner) Run(r *rng.RNG, id digg.StoryID, submitter digg.UserID, title string, interest float64, submitTime digg.Minutes) (*digg.Story, error) {
	if interest < 0 || interest > 1 {
		return nil, errors.New("agent: interest must be in [0, 1]")
	}
	if submitter < 0 || int(submitter) >= rn.eng.g.NumNodes() {
		return nil, digg.ErrUnknownUser
	}
	st := &digg.Story{
		ID:          id,
		Title:       title,
		Submitter:   submitter,
		SubmittedAt: submitTime,
		Interest:    interest,
		Votes:       []digg.Vote{{Voter: submitter, At: submitTime, InNetwork: false}},
	}
	rn.eng.rng = r
	if err := rn.eng.run(st, localSink{eng: rn.eng, st: st, policy: rn.policy}, interest, nil); err != nil {
		return nil, err
	}
	return st, nil
}
