package agent

import (
	"testing"
	"testing/quick"

	"diggsim/internal/digg"
	"diggsim/internal/graph"
	"diggsim/internal/rng"
)

// TestQuickStoryInvariants checks, across random seeds and parameters,
// the structural invariants every simulated story must satisfy:
// chronological votes, unique voters, submitter first, the platform's
// in-network flags consistent with the event log, and unpromoted
// stories frozen at the queue deadline.
func TestQuickStoryInvariants(t *testing.T) {
	f := func(seed uint64, interestRaw uint8, submitterRaw uint16) bool {
		r := rng.New(seed)
		g, err := graph.PreferentialAttachment(r, 3000, 4, 0.3)
		if err != nil {
			return false
		}
		cfg := NewConfig()
		cfg.Horizon = 2 * digg.Day
		sim, err := NewSimulator(digg.NewPlatform(g, nil), cfg, r.Split())
		if err != nil {
			return false
		}
		interest := float64(interestRaw) / 255
		submitter := digg.UserID(int(submitterRaw) % 3000)
		st, events, err := sim.RunStory(submitter, "prop", interest, 0)
		if err != nil {
			return false
		}
		if len(events) != st.VoteCount() {
			return false
		}
		if events[0].Voter != submitter || events[0].Mechanism != MechanismSubmit {
			return false
		}
		seen := map[digg.UserID]bool{}
		for i, ev := range events {
			if seen[ev.Voter] {
				return false
			}
			seen[ev.Voter] = true
			if i > 0 && ev.At < events[i-1].At {
				return false
			}
			if ev.InNetwork != st.Votes[i].InNetwork {
				return false
			}
		}
		// Unpromoted stories must not receive votes after the queue
		// lifetime (the 42-vote ceiling of text1 depends on this).
		if !st.Promoted {
			if st.VoteCount() > 42 {
				return false
			}
			last := st.Votes[len(st.Votes)-1].At
			if last > st.SubmittedAt+cfg.QueueLifetime {
				return false
			}
		} else if st.VoteCount() < 43 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestQuickFanVoteProbBounds checks the fan-vote probability stays a
// probability for every configuration and interest.
func TestQuickFanVoteProbBounds(t *testing.T) {
	f := func(scaleRaw, floorRaw, interestRaw uint8) bool {
		cfg := NewConfig()
		cfg.FanVoteScale = float64(scaleRaw) / 255
		cfg.FanInterestFloor = float64(floorRaw) / 255
		p := cfg.FanVoteProb(float64(interestRaw) / 255)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQueueLifetimeShorterThanHorizon confirms the freeze boundary
// moves with the configuration, not a constant.
func TestQueueLifetimeShorterThanHorizon(t *testing.T) {
	r := rng.New(5)
	g, err := graph.PreferentialAttachment(r, 5000, 4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := NewConfig()
	cfg.QueueLifetime = 6 * 60 // six hours
	cfg.Horizon = 2 * digg.Day
	sim, err := NewSimulator(digg.NewPlatform(g, digg.NeverPromote{}), cfg, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := sim.RunStory(0, "short-queue", 0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range st.Votes {
		if v.At > st.SubmittedAt+cfg.QueueLifetime {
			t.Fatalf("vote at %d beyond queue lifetime %d", v.At, cfg.QueueLifetime)
		}
	}
}
