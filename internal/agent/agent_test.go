package agent

import (
	"testing"

	"diggsim/internal/digg"
	"diggsim/internal/graph"
	"diggsim/internal/rng"
)

func newTestSim(t *testing.T, cfg Config, seed uint64, policy digg.PromotionPolicy) *Simulator {
	t.Helper()
	// The behaviour model's default rates are calibrated for a Digg-sized
	// population (the paper saw 16.6k distinct voters); a small graph
	// saturates and hides interest effects.
	r := rng.New(seed)
	g, err := graph.PreferentialAttachment(r, 20000, 4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(digg.NewPlatform(g, policy), cfg, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestConfigValidation(t *testing.T) {
	base := NewConfig()
	if err := base.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.ExposureDelayMean = 0 },
		func(c *Config) { c.FanVoteScale = -1 },
		func(c *Config) { c.FanVoteScale = 2 },
		func(c *Config) { c.FanInterestFloor = 1.5 },
		func(c *Config) { c.QueueDiscoveryRate = -0.1 },
		func(c *Config) { c.FrontPageRate = -1 },
		func(c *Config) { c.NoveltyHalfLife = 0 },
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.MaxVotes = -1 },
	}
	for i, mutate := range bad {
		c := base
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestNewSimulatorRejectsBadConfig(t *testing.T) {
	g, _ := graph.FromEdgeList(2, nil)
	cfg := NewConfig()
	cfg.Horizon = 0
	if _, err := NewSimulator(digg.NewPlatform(g, nil), cfg, rng.New(1)); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestRunStoryBasics(t *testing.T) {
	cfg := NewConfig()
	cfg.Horizon = 2 * digg.Day
	sim := newTestSim(t, cfg, 1, nil)
	st, events, err := sim.RunStory(0, "test", 0.8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != st.VoteCount() {
		t.Errorf("events %d != votes %d", len(events), st.VoteCount())
	}
	if events[0].Mechanism != MechanismSubmit || events[0].Voter != 0 {
		t.Errorf("first event = %+v", events[0])
	}
	// Chronological order.
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatal("events out of order")
		}
	}
	// No duplicate voters.
	seen := map[digg.UserID]bool{}
	for _, ev := range events {
		if seen[ev.Voter] {
			t.Fatalf("voter %d voted twice", ev.Voter)
		}
		seen[ev.Voter] = true
	}
}

func TestInterestValidation(t *testing.T) {
	sim := newTestSim(t, NewConfig(), 2, nil)
	if _, _, err := sim.RunStory(0, "x", -0.1, 0); err == nil {
		t.Error("negative interest accepted")
	}
	if _, _, err := sim.RunStory(0, "x", 1.1, 0); err == nil {
		t.Error("interest > 1 accepted")
	}
}

func TestInterestDrivesFinalVotes(t *testing.T) {
	cfg := NewConfig()
	cfg.Horizon = 3 * digg.Day
	const trials = 3
	var lowSum, highSum int
	for i := 0; i < trials; i++ {
		// Submitter 0 is a well-connected seed node, so even the low-
		// interest story reaches the front page through its fans — the
		// paper's "top user" scenario. Final counts must still separate.
		simLow := newTestSim(t, cfg, uint64(10+i), nil)
		stLow, _, err := simLow.RunStory(0, "low", 0.1, 0)
		if err != nil {
			t.Fatal(err)
		}
		lowSum += stLow.VoteCount()
		simHigh := newTestSim(t, cfg, uint64(20+i), nil)
		stHigh, _, err := simHigh.RunStory(0, "high", 0.9, 0)
		if err != nil {
			t.Fatal(err)
		}
		highSum += stHigh.VoteCount()
	}
	if highSum <= 2*lowSum {
		t.Errorf("interest effect too weak: high=%d low=%d", highSum, lowSum)
	}
}

func TestPromotionAcceleratesVoting(t *testing.T) {
	cfg := NewConfig()
	cfg.Horizon = 2 * digg.Day
	sim := newTestSim(t, cfg, 3, nil)
	// A poorly connected submitter (late preferential-attachment node):
	// the queue phase is slow, so the front-page acceleration of Fig. 1
	// is clearly visible.
	st, _, err := sim.RunStory(19999, "hot", 0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Promoted {
		t.Skip("story did not promote under this seed; covered by dataset tests")
	}
	// Votes per minute before promotion vs. the day right after.
	window := st.PromotedAt - st.SubmittedAt
	if window == 0 {
		t.Skip("instant promotion; rate comparison meaningless")
	}
	pre := st.VotedAtOrBefore(st.PromotedAt)
	preRate := float64(pre) / float64(window)
	post := st.VotedAtOrBefore(st.PromotedAt+digg.Day) - pre
	postRate := float64(post) / float64(digg.Day)
	if postRate < 2*preRate {
		t.Errorf("promotion did not accelerate: %.3f votes/min in queue, %.3f after", preRate, postRate)
	}
}

func TestNoveltyDecaySaturates(t *testing.T) {
	cfg := NewConfig()
	cfg.Horizon = 5 * digg.Day
	sim := newTestSim(t, cfg, 4, nil)
	st, _, err := sim.RunStory(0, "sat", 0.8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Promoted {
		t.Skip("story did not promote under this seed")
	}
	// Votes in day 1 after promotion should exceed votes in day 4.
	day1 := st.VotedAtOrBefore(st.PromotedAt+digg.Day) - st.VotedAtOrBefore(st.PromotedAt)
	day4 := st.VotedAtOrBefore(st.PromotedAt+4*digg.Day) - st.VotedAtOrBefore(st.PromotedAt+3*digg.Day)
	if day1 <= 2*day4 {
		t.Errorf("no saturation: day1=%d day4=%d", day1, day4)
	}
}

func TestNetworkMechanismProducesInNetworkVotes(t *testing.T) {
	// A star submitter with many fans and moderate interest: most early
	// votes should be network votes.
	r := rng.New(5)
	b := graph.NewBuilder(500)
	for i := 1; i < 400; i++ {
		b.AddEdge(graph.NodeID(i), 0) // everyone watches user 0
	}
	g := b.Build()
	cfg := NewConfig()
	cfg.Horizon = digg.Day
	cfg.QueueDiscoveryRate = 0 // isolate the network channel
	sim, err := NewSimulator(digg.NewPlatform(g, digg.NeverPromote{}), cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	st, events, err := sim.RunStory(0, "star", 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.VoteCount() < 10 {
		t.Fatalf("expected many fan votes, got %d", st.VoteCount())
	}
	for _, ev := range events[1:] {
		if ev.Mechanism != MechanismNetwork {
			t.Fatalf("unexpected mechanism %v with discovery disabled", ev.Mechanism)
		}
		if !ev.InNetwork {
			t.Errorf("network-mechanism vote by %d not flagged in-network", ev.Voter)
		}
	}
}

func TestZeroRatesProduceNoVotes(t *testing.T) {
	cfg := NewConfig()
	cfg.FanVoteScale = 0
	cfg.QueueDiscoveryRate = 0
	cfg.FrontPageRate = 0
	cfg.Horizon = digg.Day
	sim := newTestSim(t, cfg, 6, digg.NeverPromote{})
	st, events, err := sim.RunStory(0, "dead", 1.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.VoteCount() != 1 || len(events) != 1 {
		t.Errorf("votes = %d events = %d; want only the submitter", st.VoteCount(), len(events))
	}
}

func TestMaxVotesCap(t *testing.T) {
	cfg := NewConfig()
	cfg.MaxVotes = 25
	cfg.Horizon = 5 * digg.Day
	sim := newTestSim(t, cfg, 7, nil)
	st, _, err := sim.RunStory(0, "capped", 1.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The cap is checked per minute, so a small overshoot within one
	// minute is possible; it must stay bounded.
	if st.VoteCount() > 25+50 {
		t.Errorf("cap ignored: %d votes", st.VoteCount())
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() int {
		cfg := NewConfig()
		cfg.Horizon = digg.Day
		r := rng.New(99)
		g, err := graph.PreferentialAttachment(r, 1000, 4, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := NewSimulator(digg.NewPlatform(g, nil), cfg, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		st, _, err := sim.RunStory(0, "d", 0.7, 0)
		if err != nil {
			t.Fatal(err)
		}
		return st.VoteCount()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed, different outcomes: %d vs %d", a, b)
	}
}

func TestMechanismString(t *testing.T) {
	cases := map[Mechanism]string{
		MechanismSubmit:    "submit",
		MechanismNetwork:   "network",
		MechanismQueue:     "queue",
		MechanismFrontPage: "frontpage",
		Mechanism(9):       "mechanism(9)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q want %q", m, got, want)
		}
	}
}

func TestEventInNetworkMatchesStoryVotes(t *testing.T) {
	cfg := NewConfig()
	cfg.Horizon = digg.Day
	sim := newTestSim(t, cfg, 8, nil)
	st, events, err := sim.RunStory(0, "x", 0.6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(st.Votes) {
		t.Fatalf("events %d != stored votes %d", len(events), len(st.Votes))
	}
	for i, ev := range events {
		v := st.Votes[i]
		if ev.Voter != v.Voter || ev.At != v.At || ev.InNetwork != v.InNetwork {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, ev, v)
		}
	}
}
