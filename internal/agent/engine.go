package agent

// engine.go implements the event-driven scheduler behind both the
// platform-backed Simulator and the standalone Runner. Instead of
// stepping every story minute-by-minute across the horizon, the engine
// jumps directly between the only two kinds of events the behaviour
// model produces:
//
//   - pending Friends-interface exposures, kept in a minute-bucketed
//     timing wheel with a bitmap index over occupied slots, and
//   - interest-based discovery votes, drawn by sampling exponential
//     inter-arrival gaps (with thinning against the decaying front-page
//     rate, so the arrival intensity matches the per-minute Poisson
//     model it replaces).
//
// Per-story voter and audience membership live in epoch-stamped dense
// sets (internal/dense) reused across stories: beginStory bumps the
// epoch instead of clearing or reallocating, so simulating a story
// performs no per-story map work at all.

import (
	"errors"
	"math"
	"math/bits"

	"diggsim/internal/dense"
	"diggsim/internal/digg"
	"diggsim/internal/graph"
	"diggsim/internal/rng"
)

// voteSink records a vote produced by the engine. Implementations
// append the vote to the story (directly or through the platform),
// apply the promotion policy, and report whether the vote was
// in-network and whether it triggered promotion.
type voteSink interface {
	castVote(u digg.UserID, t digg.Minutes) (digg.DiggResult, error)
}

// engine holds the scheduler state and the scratch buffers reused
// across stories. It is not safe for concurrent use; each worker owns
// one engine.
type engine struct {
	cfg Config
	g   *graph.Graph
	rng *rng.RNG

	// Epoch-stamped membership sets over UserIDs; beginStory empties
	// both in O(1), so stories allocate no per-story membership state.
	voted dense.Set
	aud   dense.Set

	// Timing wheel for one-shot Friends-interface exposures: one bucket
	// per minute offset from the story's submission, with a bitmap over
	// occupied slots so the next event is found by word scanning.
	wheelBase digg.Minutes
	wheel     [][]digg.UserID
	occupied  []uint64
	scanPos   int // lowest offset that may hold a pending exposure
	pending   int

	// Resume state for incremental stepping, valid between begin and
	// the stepUntil call that reports the story done. Keeping it on the
	// engine lets a live Stepper advance a story's lifetime in slices
	// (one engine per live story) while run replays the exact same
	// draw sequence in a single call.
	interest      float64
	pVote         float64
	nextDisc      float64
	queueDeadline digg.Minutes
	deadline      digg.Minutes
}

func newEngine(g *graph.Graph, cfg Config, r *rng.RNG) *engine {
	return &engine{cfg: cfg, g: g, rng: r}
}

// beginStory prepares the scratch buffers for a story submitted at base
// whose events all land in [base, base+span].
func (e *engine) beginStory(base digg.Minutes, span int) {
	n := e.g.NumNodes()
	e.voted.Reset(n)
	e.aud.Reset(n)

	slots := span + 1
	if len(e.wheel) < slots {
		old := len(e.wheel)
		e.wheel = append(e.wheel, make([][]digg.UserID, slots-old)...)
		words := (slots + 63) / 64
		if len(e.occupied) < words {
			e.occupied = append(e.occupied, make([]uint64, words-len(e.occupied))...)
		}
	}
	e.wheelBase = base
	e.scanPos = 0
	e.pending = 0
}

// endStory releases per-story wheel state, leaving the buffers empty
// for the next story. Only occupied slots are visited.
func (e *engine) endStory() {
	if e.pending == 0 {
		return
	}
	for w, word := range e.occupied {
		for word != 0 {
			off := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			e.wheel[off] = e.wheel[off][:0]
		}
		e.occupied[w] = 0
	}
	e.pending = 0
}

func (e *engine) isVoted(u digg.UserID) bool { return e.voted.Contains(int(u)) }

func (e *engine) markVoted(u digg.UserID) { e.voted.Add(int(u)) }

func (e *engine) inAudience(u digg.UserID) bool { return e.aud.Contains(int(u)) }

// scheduleExposure queues u's one-shot exposure at minute at.
func (e *engine) scheduleExposure(u digg.UserID, at digg.Minutes) {
	off := int(at - e.wheelBase)
	e.wheel[off] = append(e.wheel[off], u)
	e.occupied[off>>6] |= 1 << (off & 63)
	e.pending++
	if off < e.scanPos {
		e.scanPos = off
	}
}

// nextExposure peeks the earliest pending exposure minute.
func (e *engine) nextExposure() (digg.Minutes, bool) {
	if e.pending == 0 {
		return 0, false
	}
	w := e.scanPos >> 6
	rem := e.scanPos & 63
	for ; w < len(e.occupied); w++ {
		word := e.occupied[w]
		if rem > 0 {
			word &= ^uint64(0) << rem
			rem = 0
		}
		if word != 0 {
			off := w<<6 + bits.TrailingZeros64(word)
			e.scanPos = off
			return e.wheelBase + digg.Minutes(off), true
		}
	}
	return 0, false
}

// takeBucket removes and returns the bucket at minute at. The returned
// slice aliases the wheel slot's backing array, which is safe to walk
// while processing: exposures scheduled during processing always land
// in strictly later slots, so the array cannot be clobbered before the
// walk finishes.
func (e *engine) takeBucket(at digg.Minutes) []digg.UserID {
	off := int(at - e.wheelBase)
	due := e.wheel[off]
	e.wheel[off] = due[:0] // keep capacity for reuse by later stories
	e.occupied[off>>6] &^= 1 << (off & 63)
	e.pending -= len(due)
	e.scanPos = off + 1
	return due
}

// absorbFans schedules exposures for the fans of voter that have not
// been in the audience before. Exposures that would land beyond the
// deadline never happen.
func (e *engine) absorbFans(voter digg.UserID, now, deadline digg.Minutes) {
	for _, fan := range e.g.Fans(voter) {
		if e.inAudience(fan) {
			continue
		}
		e.aud.Add(int(fan))
		if e.isVoted(fan) {
			continue
		}
		delay := digg.Minutes(e.rng.ExpFloat64()*e.cfg.ExposureDelayMean) + 1
		at := now + delay
		if at > deadline {
			continue // never browses in time
		}
		e.scheduleExposure(fan, at)
	}
}

// exposureDeadline bounds newly scheduled exposures given the story's
// promotion state: the queue deadline while unpromoted, the horizon
// afterwards.
func exposureDeadline(st *digg.Story, queueDeadline, horizonDeadline digg.Minutes) digg.Minutes {
	if st.Promoted {
		return horizonDeadline
	}
	return queueDeadline
}

// frontPageRate is the decaying front-page vote intensity at continuous
// time t for a story promoted at promotedAt.
func (e *engine) frontPageRate(interest float64, promotedAt digg.Minutes, t float64) float64 {
	age := t - float64(promotedAt)
	return e.cfg.FrontPageRate * interest * math.Exp2(-age/float64(e.cfg.NoveltyHalfLife))
}

// nextDiscovery advances the discovery-arrival sampler from continuous
// time tCur and returns the next arrival. While the story sits in the
// queue the process is homogeneous with the quadratic-interest rate;
// after promotion the decaying front-page rate is sampled by thinning:
// propose a gap from the rate at the current time (an upper envelope,
// since the rate only decays) and accept with the ratio of the true
// rate at the candidate to the envelope. Returns +Inf when no further
// arrival can land before limit.
func (e *engine) nextDiscovery(st *digg.Story, interest, tCur, limit float64) float64 {
	if !st.Promoted {
		rate := e.cfg.QueueDiscoveryRate * interest * interest
		return tCur + e.rng.ExpGap(rate)
	}
	hl := float64(e.cfg.NoveltyHalfLife)
	for {
		env := e.frontPageRate(interest, st.PromotedAt, tCur)
		if env <= 0 {
			return math.Inf(1)
		}
		gap := e.rng.ExpGap(env)
		tCur += gap
		if tCur > limit {
			return math.Inf(1)
		}
		// Acceptance ratio rate(tCur)/env collapses to 2^(-gap/hl).
		if e.rng.Float64() < math.Exp2(-gap/hl) {
			return tCur
		}
	}
}

// randomNonVoter picks a uniformly random user who has not voted on the
// story, giving up after a bounded number of rejections (which only
// happens when nearly everyone voted).
func (e *engine) randomNonVoter(n int) (digg.UserID, bool) {
	if n <= 0 || e.voted.Len() >= n {
		return 0, false
	}
	for tries := 0; tries < 64; tries++ {
		u := digg.UserID(e.rng.Intn(n))
		if !e.isVoted(u) {
			return u, true
		}
	}
	return 0, false
}

// begin prepares the engine to simulate st: scratch buffers are reset,
// the submitter's fans are exposed, and the first discovery arrival is
// sampled. The submitter's implicit vote must already be recorded on
// st. After begin, stepUntil advances the lifetime; call endStory when
// the story is done or abandoned.
func (e *engine) begin(st *digg.Story, interest float64) {
	submitTime := st.SubmittedAt
	e.deadline = submitTime + e.cfg.Horizon
	e.queueDeadline = submitTime + e.cfg.QueueLifetime
	if e.queueDeadline > e.deadline {
		e.queueDeadline = e.deadline
	}

	e.beginStory(submitTime, int(e.deadline-submitTime))
	e.markVoted(st.Submitter)
	e.absorbFans(st.Submitter, submitTime, exposureDeadline(st, e.queueDeadline, e.deadline))

	e.interest = interest
	e.pVote = e.cfg.FanVoteProb(interest)
	e.nextDisc = e.nextDiscovery(st, interest, float64(submitTime), float64(e.deadline))
}

// stepUntil processes every pending event at or before until, in event
// order, and reports whether the story's lifetime is complete (no
// further event can ever produce a vote). Stopping at until consumes no
// randomness: the next exposure is a peek and the next discovery
// arrival is already sampled, so advancing to the horizon in one call
// or in many slices yields the identical vote history.
func (e *engine) stepUntil(st *digg.Story, sink voteSink, until digg.Minutes, events *[]VoteEvent) (bool, error) {
	n := e.g.NumNodes()
	limit := float64(e.deadline)
	for {
		if e.cfg.MaxVotes > 0 && st.VoteCount() >= e.cfg.MaxVotes {
			return true, nil
		}
		if e.voted.Len() >= n {
			return true, nil // population exhausted: no event can produce a vote
		}
		// Unpromoted stories freeze at the queue deadline; promoted ones
		// run to the horizon.
		phaseEnd := exposureDeadline(st, e.queueDeadline, e.deadline)
		expAt, hasExp := e.nextExposure()
		// An arrival during minute interval (m-1, m] is stamped m, the
		// minute boundary where the per-minute model counted it. The
		// float comparison also rejects +Inf and arrivals too large to
		// stamp (conversion would overflow); only in-range arrivals are
		// converted. floor(t)+1 <= phaseEnd is exactly t < phaseEnd.
		var discAt digg.Minutes
		hasDisc := e.nextDisc < float64(phaseEnd)
		if hasDisc {
			discAt = digg.Minutes(e.nextDisc) + 1
		}
		if !hasExp && !hasDisc {
			return true, nil
		}

		if hasExp && (!hasDisc || expAt <= discAt) {
			if expAt > until {
				return false, nil
			}
			// Network-based spread: the due one-shot exposures.
			wasPromoted := st.Promoted
			for _, u := range e.takeBucket(expAt) {
				if e.isVoted(u) || !e.rng.Bool(e.pVote) {
					continue
				}
				if err := e.deliverVote(st, sink, u, expAt, MechanismNetwork, events); err != nil {
					return false, err
				}
			}
			if !wasPromoted && st.Promoted {
				// Promotion mid-bucket: restart the arrival sampler on
				// the front-page rate from the promotion minute.
				e.nextDisc = e.nextDiscovery(st, e.interest, float64(expAt), limit)
			}
			continue
		}

		if discAt > until {
			return false, nil
		}
		// Interest-based spread: one sampled discovery arrival.
		u, ok := e.randomNonVoter(n)
		if ok {
			mech := MechanismQueue
			if st.Promoted {
				mech = MechanismFrontPage
			}
			if err := e.deliverVote(st, sink, u, discAt, mech, events); err != nil {
				return false, err
			}
		}
		// Advance the sampler. If this vote just triggered promotion,
		// nextDiscovery already sees st.Promoted and resamples on the
		// front-page rate from the same continuous time.
		e.nextDisc = e.nextDiscovery(st, e.interest, e.nextDisc, limit)
	}
}

// run simulates st's whole lifetime with the next-event loop. The
// submitter's implicit vote must already be recorded on st; events,
// when non-nil, receives one VoteEvent per additional vote.
func (e *engine) run(st *digg.Story, sink voteSink, interest float64, events *[]VoteEvent) error {
	e.begin(st, interest)
	defer e.endStory()
	// Every schedulable event lands at or before the horizon deadline,
	// so a single stepUntil(deadline) drains the lifetime.
	_, err := e.stepUntil(st, sink, e.deadline, events)
	return err
}

// deliverVote records a vote through the sink and updates engine state.
// The exposure deadline for the voter's fans is computed after the sink
// call so that the vote that triggers promotion already exposes fans
// under the longer post-promotion deadline. A sink rejection with
// digg.ErrAlreadyVoted is tolerated: in live mode an external HTTP digg
// can beat the engine to a voter, in which case the engine just records
// the user as voted and moves on.
func (e *engine) deliverVote(st *digg.Story, sink voteSink, u digg.UserID, at digg.Minutes, mech Mechanism, events *[]VoteEvent) error {
	res, err := sink.castVote(u, at)
	if err != nil {
		if errors.Is(err, digg.ErrAlreadyVoted) {
			e.markVoted(u)
			return nil
		}
		return err
	}
	e.markVoted(u)
	e.absorbFans(u, at, exposureDeadline(st, e.queueDeadline, e.deadline))
	if events != nil {
		*events = append(*events, VoteEvent{
			Story: st.ID, Voter: u, At: at, Mechanism: mech,
			InNetwork: res.InNetwork, Promoted: res.Promoted, VoteCount: res.Votes,
		})
	}
	return nil
}
