// Package agent implements the stochastic user-behaviour model that
// drives the simulated Digg platform.
//
// Section 5.1 of the paper proposes two mechanisms for the spread of
// interest in a story:
//
//   - network-based: fans of the submitter and of prior voters see the
//     story through the Friends interface and vote on it;
//   - interest-based: users unconnected to prior voters independently
//     discover the story (upcoming queue, front page, external links)
//     with a probability that grows with how interesting the story is.
//
// The network channel is modeled as a one-shot exposure: when a user
// enters a story's Friends-interface audience they browse the interface
// once after a random delay and either vote or move on. This keeps the
// social cascade a (sub)critical branching process, matching the small
// cascade sizes of Fig. 3(b), instead of letting every fan vote with
// probability one given enough time.
//
// The simulator advances stories minute by minute. While a story sits
// in the upcoming queue it gathers votes slowly; once promoted to the
// front page it is exposed to the whole audience and gathers votes
// quickly, with the rate decaying with a half-life of about a day
// following Wu & Huberman's novelty decay — reproducing the vote time
// series of Fig. 1.
package agent

import (
	"errors"
	"fmt"
	"math"

	"diggsim/internal/digg"
	"diggsim/internal/rng"
)

// Mechanism tags which behavioural channel produced a vote. Analysis
// code must not use it (the paper infers spread from the graph alone);
// it exists for tests and ablations.
type Mechanism uint8

const (
	// MechanismSubmit marks the submitter's implicit vote.
	MechanismSubmit Mechanism = iota
	// MechanismNetwork marks votes by Friends-interface audience members.
	MechanismNetwork
	// MechanismQueue marks independent discoveries in the upcoming queue.
	MechanismQueue
	// MechanismFrontPage marks votes from front-page browsing.
	MechanismFrontPage
)

// String returns the mechanism name.
func (m Mechanism) String() string {
	switch m {
	case MechanismSubmit:
		return "submit"
	case MechanismNetwork:
		return "network"
	case MechanismQueue:
		return "queue"
	case MechanismFrontPage:
		return "frontpage"
	default:
		return fmt.Sprintf("mechanism(%d)", uint8(m))
	}
}

// VoteEvent is one simulated vote with its generating mechanism.
type VoteEvent struct {
	Story     digg.StoryID
	Voter     digg.UserID
	At        digg.Minutes
	Mechanism Mechanism
	InNetwork bool
}

// Config holds the behaviour-model parameters. All rates are per
// minute. NewConfig returns the calibrated defaults used throughout the
// reproduction.
type Config struct {
	// ExposureDelayMean is the mean delay (minutes) between a user
	// entering a story's Friends-interface audience and browsing the
	// interface. Delays are exponential; exposures that would land
	// beyond the horizon never happen (users stop seeing old activity
	// after Digg's 48-hour window anyway).
	ExposureDelayMean float64
	// FanVoteScale is the overall probability scale of a fan voting
	// when they see a friend's story. Together with the mean fan count
	// it sets the branching factor of the social cascade and must keep
	// it subcritical.
	FanVoteScale float64
	// FanInterestFloor is the interest-independent component of a fan's
	// vote decision: an exposed fan votes with probability
	// FanVoteScale * (FanInterestFloor + (1-FanInterestFloor)*interest).
	// A high floor encodes the paper's observation that fans vote on
	// friends' stories largely out of social courtesy — which is
	// exactly what makes in-network votes a weak quality signal.
	FanInterestFloor float64
	// QueueDiscoveryRate scales independent discovery while the story
	// is in the upcoming queue: votes/minute = QueueDiscoveryRate *
	// interest^2. The quadratic makes independent early votes a strong
	// quality signal, per §5.1.
	QueueDiscoveryRate float64
	// FrontPageRate scales front-page voting immediately after
	// promotion: votes/minute = FrontPageRate * interest at the moment
	// of promotion.
	FrontPageRate float64
	// QueueLifetime is how long a story stays discoverable in the
	// upcoming queue. Digg's promotion algorithm examines the first 24
	// hours; stories not promoted by then scroll out of the queue and
	// stop gathering votes, which is why the paper saw no upcoming
	// story with more than 42 votes.
	QueueLifetime digg.Minutes
	// NoveltyHalfLife is the decay half-life of the front-page rate
	// (Wu & Huberman measured about a day).
	NoveltyHalfLife digg.Minutes
	// Horizon is how long each story is simulated after submission.
	Horizon digg.Minutes
	// MaxVotes stops a story early once it has this many votes
	// (0 = unlimited); a safety valve for extreme parameter choices.
	MaxVotes int
}

// NewConfig returns parameters calibrated so that the synthetic corpus
// matches the marginals reported in the paper (see internal/dataset).
func NewConfig() Config {
	// With a mean fan count around 5 (the generated 20k-user graph),
	// FanVoteScale 0.1 keeps the social cascade's branching factor in
	// the subcritical 0.25-0.5 range, matching the small cascades of
	// Fig. 3(b) while still letting a vote by a heavily fanned user
	// trigger a visible in-network burst (the paper's kevinrose
	// anecdote).
	return Config{
		ExposureDelayMean:  240,
		FanVoteScale:       0.1,
		FanInterestFloor:   0.5,
		QueueDiscoveryRate: 0.08,
		FrontPageRate:      0.8,
		QueueLifetime:      digg.Day,
		NoveltyHalfLife:    digg.Day,
		Horizon:            5 * digg.Day,
		MaxVotes:           6000,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.ExposureDelayMean <= 0:
		return errors.New("agent: ExposureDelayMean must be > 0")
	case c.FanVoteScale < 0 || c.FanVoteScale > 1:
		return errors.New("agent: FanVoteScale must be in [0, 1]")
	case c.FanInterestFloor < 0 || c.FanInterestFloor > 1:
		return errors.New("agent: FanInterestFloor must be in [0, 1]")
	case c.QueueDiscoveryRate < 0:
		return errors.New("agent: QueueDiscoveryRate must be >= 0")
	case c.FrontPageRate < 0:
		return errors.New("agent: FrontPageRate must be >= 0")
	case c.QueueLifetime <= 0:
		return errors.New("agent: QueueLifetime must be > 0")
	case c.NoveltyHalfLife <= 0:
		return errors.New("agent: NoveltyHalfLife must be > 0")
	case c.Horizon <= 0:
		return errors.New("agent: Horizon must be > 0")
	case c.MaxVotes < 0:
		return errors.New("agent: MaxVotes must be >= 0")
	}
	return nil
}

// FanVoteProb returns the probability that an exposed fan votes on a
// story with the given intrinsic interest.
func (c Config) FanVoteProb(interest float64) float64 {
	return c.FanVoteScale * (c.FanInterestFloor + (1-c.FanInterestFloor)*interest)
}

// Simulator drives one Platform with the behaviour model.
type Simulator struct {
	cfg      Config
	platform *digg.Platform
	rng      *rng.RNG
}

// NewSimulator creates a simulator over the platform. It returns an
// error if the configuration is invalid.
func NewSimulator(p *digg.Platform, cfg Config, r *rng.RNG) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{cfg: cfg, platform: p, rng: r}, nil
}

// Platform returns the platform the simulator drives.
func (s *Simulator) Platform() *digg.Platform { return s.platform }

// Config returns the simulator's behaviour parameters.
func (s *Simulator) Config() Config { return s.cfg }

// storyState tracks the per-story bookkeeping the behaviour model needs
// beyond what the platform stores.
type storyState struct {
	id digg.StoryID
	// pending maps a minute offset to audience members whose one-shot
	// Friends-interface exposure fires at that minute.
	pending map[digg.Minutes][]digg.UserID
	inAud   map[digg.UserID]bool // ever added to the audience
	voted   map[digg.UserID]bool
	// queueDeadline bounds exposures while the story is unpromoted;
	// horizonDeadline bounds them afterwards.
	queueDeadline   digg.Minutes
	horizonDeadline digg.Minutes
}

// exposureDeadline returns the latest time a newly scheduled exposure
// may fire given the story's promotion state.
func (ss *storyState) exposureDeadline(st *digg.Story) digg.Minutes {
	if st.Promoted {
		return ss.horizonDeadline
	}
	return ss.queueDeadline
}

// absorbFans schedules exposures for the fans of voter that have not
// been in the audience before.
func (s *Simulator) absorbFans(ss *storyState, voter digg.UserID, now, deadline digg.Minutes) {
	for _, fan := range s.platform.Graph.Fans(voter) {
		if ss.inAud[fan] {
			continue
		}
		ss.inAud[fan] = true
		if ss.voted[fan] {
			continue
		}
		delay := digg.Minutes(s.rng.ExpFloat64()*s.cfg.ExposureDelayMean) + 1
		at := now + delay
		if at > deadline {
			continue // never browses in time
		}
		ss.pending[at] = append(ss.pending[at], fan)
	}
}

// RunStory submits one story by submitter at submitTime with the given
// intrinsic interest and simulates its lifetime. It returns the story
// and the full event log (the submitter's implicit vote is event 0).
func (s *Simulator) RunStory(submitter digg.UserID, title string, interest float64, submitTime digg.Minutes) (*digg.Story, []VoteEvent, error) {
	if interest < 0 || interest > 1 {
		return nil, nil, errors.New("agent: interest must be in [0, 1]")
	}
	st, err := s.platform.Submit(submitter, title, interest, submitTime)
	if err != nil {
		return nil, nil, err
	}
	ss := &storyState{
		id:      st.ID,
		pending: make(map[digg.Minutes][]digg.UserID),
		inAud:   make(map[digg.UserID]bool),
		voted:   map[digg.UserID]bool{submitter: true},
	}
	deadline := submitTime + s.cfg.Horizon
	queueDeadline := submitTime + s.cfg.QueueLifetime
	if queueDeadline > deadline {
		queueDeadline = deadline
	}
	// Until the story is promoted its audience can only act while the
	// story is still in the queue; once it scrolls out, unpromoted
	// stories are frozen (this is what bounds upcoming stories at 42
	// votes in the paper's data).
	ss.queueDeadline = queueDeadline
	ss.horizonDeadline = deadline
	s.absorbFans(ss, submitter, submitTime, ss.exposureDeadline(st))
	events := []VoteEvent{{
		Story: st.ID, Voter: submitter, At: submitTime,
		Mechanism: MechanismSubmit, InNetwork: false,
	}}

	pVote := s.cfg.FanVoteProb(interest)
	queueRate := s.cfg.QueueDiscoveryRate * interest * interest
	n := s.platform.Graph.NumNodes()

	for now := submitTime + 1; now <= deadline; now++ {
		if s.cfg.MaxVotes > 0 && st.VoteCount() >= s.cfg.MaxVotes {
			break
		}
		if !st.Promoted && now > queueDeadline {
			break // scrolled out of the queue unpromoted: frozen
		}
		// Network-based spread: due one-shot exposures.
		if due := ss.pending[now]; len(due) > 0 {
			delete(ss.pending, now)
			for _, u := range due {
				if ss.voted[u] || !s.rng.Bool(pVote) {
					continue
				}
				ev, err := s.vote(st, ss, u, now, MechanismNetwork)
				if err != nil {
					return nil, nil, err
				}
				events = append(events, ev)
			}
		}
		// Interest-based spread.
		var rate float64
		var mech Mechanism
		if st.Promoted {
			age := float64(now - st.PromotedAt)
			rate = s.cfg.FrontPageRate * interest * math.Exp2(-age/float64(s.cfg.NoveltyHalfLife))
			mech = MechanismFrontPage
		} else {
			rate = queueRate
			mech = MechanismQueue
		}
		for k := s.rng.Poisson(rate); k > 0; k-- {
			u, ok := s.randomNonVoter(ss, n)
			if !ok {
				break
			}
			ev, err := s.vote(st, ss, u, now, mech)
			if err != nil {
				return nil, nil, err
			}
			events = append(events, ev)
		}
	}
	return st, events, nil
}

// vote records a vote through the platform and updates local state. The
// exposure deadline for the voter's fans is computed after the platform
// call so that the vote that triggers promotion already exposes fans
// under the longer post-promotion deadline.
func (s *Simulator) vote(st *digg.Story, ss *storyState, u digg.UserID, now digg.Minutes, mech Mechanism) (VoteEvent, error) {
	res, err := s.platform.Digg(st.ID, u, now)
	if err != nil {
		return VoteEvent{}, fmt.Errorf("agent: vote by %d on story %d: %w", u, st.ID, err)
	}
	ss.voted[u] = true
	s.absorbFans(ss, u, now, ss.exposureDeadline(st))
	return VoteEvent{
		Story: st.ID, Voter: u, At: now, Mechanism: mech, InNetwork: res.InNetwork,
	}, nil
}

// randomNonVoter picks a uniformly random user who has not voted on the
// story, giving up after a bounded number of rejections (which only
// happens when nearly everyone voted).
func (s *Simulator) randomNonVoter(ss *storyState, n int) (digg.UserID, bool) {
	if n <= 0 || len(ss.voted) >= n {
		return 0, false
	}
	for tries := 0; tries < 64; tries++ {
		u := digg.UserID(s.rng.Intn(n))
		if !ss.voted[u] {
			return u, true
		}
	}
	return 0, false
}
