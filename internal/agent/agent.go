// Package agent implements the stochastic user-behaviour model that
// drives the simulated Digg platform.
//
// Section 5.1 of the paper proposes two mechanisms for the spread of
// interest in a story:
//
//   - network-based: fans of the submitter and of prior voters see the
//     story through the Friends interface and vote on it;
//   - interest-based: users unconnected to prior voters independently
//     discover the story (upcoming queue, front page, external links)
//     with a probability that grows with how interesting the story is.
//
// The network channel is modeled as a one-shot exposure: when a user
// enters a story's Friends-interface audience they browse the interface
// once after a random delay and either vote or move on. This keeps the
// social cascade a (sub)critical branching process, matching the small
// cascade sizes of Fig. 3(b), instead of letting every fan vote with
// probability one given enough time.
//
// While a story sits in the upcoming queue it gathers votes slowly;
// once promoted to the front page it is exposed to the whole audience
// and gathers votes quickly, with the rate decaying with a half-life of
// about a day following Wu & Huberman's novelty decay — reproducing the
// vote time series of Fig. 1.
//
// # Event-driven scheduler
//
// The simulator is event-driven rather than time-stepped: instead of
// visiting every minute of the multi-day horizon it jumps directly
// between the events that can change a story's state. Pending
// Friends-interface exposures sit in a minute-bucketed timing wheel
// (one bucket per minute offset from submission, with a bitmap over
// occupied slots), and interest-based discovery votes are drawn by
// sampling exponential inter-arrival gaps — a homogeneous process with
// the quadratic-interest rate while the story is in the queue, and a
// thinned process against the decaying novelty envelope after
// promotion. Both match the arrival intensity of the per-minute
// Poisson model they replace. Per-story voter and audience sets are
// epoch-stamped dense buffers reused across stories (see engine.go),
// so simulating a story allocates no per-story maps.
//
// Two front-ends share the engine: Simulator drives a digg.Platform
// (votes flow through Platform.Digg, so promotion and visibility stay
// authoritative), while Runner simulates a story against the bare
// graph and a promotion policy with no platform at all — the
// allocation-free path that corpus generation fans out across workers
// (see internal/dataset).
package agent

import (
	"errors"
	"fmt"

	"diggsim/internal/digg"
	"diggsim/internal/rng"
)

// Mechanism tags which behavioural channel produced a vote. Analysis
// code must not use it (the paper infers spread from the graph alone);
// it exists for tests and ablations.
type Mechanism uint8

const (
	// MechanismSubmit marks the submitter's implicit vote.
	MechanismSubmit Mechanism = iota
	// MechanismNetwork marks votes by Friends-interface audience members.
	MechanismNetwork
	// MechanismQueue marks independent discoveries in the upcoming queue.
	MechanismQueue
	// MechanismFrontPage marks votes from front-page browsing.
	MechanismFrontPage
)

// String returns the mechanism name.
func (m Mechanism) String() string {
	switch m {
	case MechanismSubmit:
		return "submit"
	case MechanismNetwork:
		return "network"
	case MechanismQueue:
		return "queue"
	case MechanismFrontPage:
		return "frontpage"
	default:
		return fmt.Sprintf("mechanism(%d)", uint8(m))
	}
}

// VoteEvent is one simulated vote with its generating mechanism.
type VoteEvent struct {
	Story     digg.StoryID
	Voter     digg.UserID
	At        digg.Minutes
	Mechanism Mechanism
	InNetwork bool
	// Promoted records whether this vote triggered the story's
	// promotion to the front page.
	Promoted bool
	// VoteCount is the story's vote count including this vote — the
	// authoritative running count even when an external live vote
	// interleaves with the engine's.
	VoteCount int
}

// Config holds the behaviour-model parameters. All rates are per
// minute. NewConfig returns the calibrated defaults used throughout the
// reproduction.
type Config struct {
	// ExposureDelayMean is the mean delay (minutes) between a user
	// entering a story's Friends-interface audience and browsing the
	// interface. Delays are exponential; exposures that would land
	// beyond the horizon never happen (users stop seeing old activity
	// after Digg's 48-hour window anyway).
	ExposureDelayMean float64
	// FanVoteScale is the overall probability scale of a fan voting
	// when they see a friend's story. Together with the mean fan count
	// it sets the branching factor of the social cascade and must keep
	// it subcritical.
	FanVoteScale float64
	// FanInterestFloor is the interest-independent component of a fan's
	// vote decision: an exposed fan votes with probability
	// FanVoteScale * (FanInterestFloor + (1-FanInterestFloor)*interest).
	// A high floor encodes the paper's observation that fans vote on
	// friends' stories largely out of social courtesy — which is
	// exactly what makes in-network votes a weak quality signal.
	FanInterestFloor float64
	// QueueDiscoveryRate scales independent discovery while the story
	// is in the upcoming queue: votes/minute = QueueDiscoveryRate *
	// interest^2. The quadratic makes independent early votes a strong
	// quality signal, per §5.1.
	QueueDiscoveryRate float64
	// FrontPageRate scales front-page voting immediately after
	// promotion: votes/minute = FrontPageRate * interest at the moment
	// of promotion.
	FrontPageRate float64
	// QueueLifetime is how long a story stays discoverable in the
	// upcoming queue. Digg's promotion algorithm examines the first 24
	// hours; stories not promoted by then scroll out of the queue and
	// stop gathering votes, which is why the paper saw no upcoming
	// story with more than 42 votes.
	QueueLifetime digg.Minutes
	// NoveltyHalfLife is the decay half-life of the front-page rate
	// (Wu & Huberman measured about a day).
	NoveltyHalfLife digg.Minutes
	// Horizon is how long each story is simulated after submission.
	Horizon digg.Minutes
	// MaxVotes stops a story early once it has this many votes
	// (0 = unlimited); a safety valve for extreme parameter choices.
	MaxVotes int
}

// NewConfig returns parameters calibrated so that the synthetic corpus
// matches the marginals reported in the paper (see internal/dataset).
func NewConfig() Config {
	// With a mean fan count around 5 (the generated 20k-user graph),
	// FanVoteScale 0.1 keeps the social cascade's branching factor in
	// the subcritical 0.25-0.5 range, matching the small cascades of
	// Fig. 3(b) while still letting a vote by a heavily fanned user
	// trigger a visible in-network burst (the paper's kevinrose
	// anecdote).
	return Config{
		ExposureDelayMean:  240,
		FanVoteScale:       0.1,
		FanInterestFloor:   0.5,
		QueueDiscoveryRate: 0.08,
		FrontPageRate:      0.8,
		QueueLifetime:      digg.Day,
		NoveltyHalfLife:    digg.Day,
		Horizon:            5 * digg.Day,
		MaxVotes:           6000,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.ExposureDelayMean <= 0:
		return errors.New("agent: ExposureDelayMean must be > 0")
	case c.FanVoteScale < 0 || c.FanVoteScale > 1:
		return errors.New("agent: FanVoteScale must be in [0, 1]")
	case c.FanInterestFloor < 0 || c.FanInterestFloor > 1:
		return errors.New("agent: FanInterestFloor must be in [0, 1]")
	case c.QueueDiscoveryRate < 0:
		return errors.New("agent: QueueDiscoveryRate must be >= 0")
	case c.FrontPageRate < 0:
		return errors.New("agent: FrontPageRate must be >= 0")
	case c.QueueLifetime <= 0:
		return errors.New("agent: QueueLifetime must be > 0")
	case c.NoveltyHalfLife <= 0:
		return errors.New("agent: NoveltyHalfLife must be > 0")
	case c.Horizon <= 0:
		return errors.New("agent: Horizon must be > 0")
	case c.MaxVotes < 0:
		return errors.New("agent: MaxVotes must be >= 0")
	}
	return nil
}

// FanVoteProb returns the probability that an exposed fan votes on a
// story with the given intrinsic interest.
func (c Config) FanVoteProb(interest float64) float64 {
	return c.FanVoteScale * (c.FanInterestFloor + (1-c.FanInterestFloor)*interest)
}

// Simulator drives one Platform with the behaviour model.
type Simulator struct {
	cfg      Config
	platform *digg.Platform
	eng      *engine
}

// NewSimulator creates a simulator over the platform. It returns an
// error if the configuration is invalid.
func NewSimulator(p *digg.Platform, cfg Config, r *rng.RNG) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{cfg: cfg, platform: p, eng: newEngine(p.Graph, cfg, r)}, nil
}

// Platform returns the platform the simulator drives.
func (s *Simulator) Platform() *digg.Platform { return s.platform }

// Config returns the simulator's behaviour parameters.
func (s *Simulator) Config() Config { return s.cfg }

// platformSink routes engine votes through Store.Digg, keeping the
// platform's visibility and promotion state authoritative.
type platformSink struct {
	p  digg.Store
	st *digg.Story
}

func (ps platformSink) castVote(u digg.UserID, t digg.Minutes) (digg.DiggResult, error) {
	res, err := ps.p.Digg(ps.st.ID, u, t)
	if err != nil {
		return digg.DiggResult{}, fmt.Errorf("agent: vote by %d on story %d: %w", u, ps.st.ID, err)
	}
	return res, nil
}

// RunStory submits one story by submitter at submitTime with the given
// intrinsic interest and simulates its lifetime with the event-driven
// scheduler. It returns the story and the full event log (the
// submitter's implicit vote is event 0).
func (s *Simulator) RunStory(submitter digg.UserID, title string, interest float64, submitTime digg.Minutes) (*digg.Story, []VoteEvent, error) {
	if interest < 0 || interest > 1 {
		return nil, nil, errors.New("agent: interest must be in [0, 1]")
	}
	st, err := s.platform.Submit(submitter, title, interest, submitTime)
	if err != nil {
		return nil, nil, err
	}
	events := []VoteEvent{{
		Story: st.ID, Voter: submitter, At: submitTime,
		Mechanism: MechanismSubmit, InNetwork: false,
	}}
	if err := s.eng.run(st, platformSink{p: s.platform, st: st}, interest, &events); err != nil {
		return nil, nil, err
	}
	return st, events, nil
}
