package agent

// stepper.go is the live-mode front-end to the event engine. Where
// Simulator.RunStory simulates a story's whole lifetime in one call,
// a Stepper keeps many stories live at once and advances each of them
// only up to a sim-time deadline, so a real-time service can interleave
// simulated activity with wall-clock ticks and concurrent HTTP traffic
// (under the service's lock).

import (
	"errors"

	"diggsim/internal/digg"
	"diggsim/internal/rng"
)

// Stepper drives multiple concurrently-live stories against a shared
// digg.Platform, advancing pending exposures and discovery votes up to
// a deadline. Votes flow through Platform.Digg, so promotion and
// visibility stay authoritative, and external votes (e.g. HTTP POSTs
// against the same platform) interleave safely between Advance calls.
//
// Each live story owns a dedicated engine (scratch buffers plus an RNG
// stream split off the stepper's), so stepping one story never
// perturbs another. A Stepper is not safe for concurrent use; the live
// service serializes access with the lock it shares with the HTTP
// read path.
type Stepper struct {
	cfg      Config
	platform digg.Store
	rng      *rng.RNG
	runs     []*stepRun
	// free pools retired engines for reuse: a live engine's scratch is
	// O(users + horizon) (dense sets, timing wheel), so at a steady
	// submission rate pooling removes per-story allocation churn the
	// same way the corpus path reuses one engine per worker. The RNG
	// stream is NOT pooled — every story splits a fresh stream in
	// StartStory order, so which pooled buffers a story lands on can
	// never change its vote history.
	free []*engine
}

// stepRun is one live story's stepping state.
type stepRun struct {
	eng *engine
	st  *digg.Story
	// promotedSeen mirrors st.Promoted as of the end of the last
	// Advance, so promotions caused by external votes between steps can
	// be detected and the discovery sampler rebased onto the front-page
	// rate.
	promotedSeen bool
}

// NewStepper creates a stepper over any digg.Store (in practice the
// in-memory *digg.Platform; the interface is the seam future backends
// plug into). It returns an error if the configuration is invalid.
func NewStepper(p digg.Store, cfg Config, r *rng.RNG) (*Stepper, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if r == nil {
		return nil, errors.New("agent: Stepper requires an RNG")
	}
	return &Stepper{cfg: cfg, platform: p, rng: r}, nil
}

// StartStory submits a story through the platform at time at and
// registers it for live stepping. The submitter's implicit vote is
// recorded immediately; subsequent votes land on later Advance calls.
func (s *Stepper) StartStory(submitter digg.UserID, title string, interest float64, at digg.Minutes) (*digg.Story, error) {
	if interest < 0 || interest > 1 {
		return nil, errors.New("agent: interest must be in [0, 1]")
	}
	st, err := s.platform.Submit(submitter, title, interest, at)
	if err != nil {
		return nil, err
	}
	var eng *engine
	if k := len(s.free); k > 0 {
		eng = s.free[k-1]
		s.free[k-1] = nil
		s.free = s.free[:k-1]
		eng.rng = s.rng.Split()
	} else {
		eng = newEngine(s.platform.SocialGraph(), s.cfg, s.rng.Split())
	}
	eng.begin(st, interest)
	s.runs = append(s.runs, &stepRun{eng: eng, st: st})
	return st, nil
}

// Advance processes every pending event at or before now, appending
// one VoteEvent per vote to events when non-nil. Stories are advanced
// one at a time in submission order, each in strict per-story event
// order; promotions of different stories landing inside the same
// Advance window may therefore enter the front page slightly out of
// global time order (bounded by the step size). Stories whose
// lifetimes complete are retired and their live platform bookkeeping
// compacted — exactly like corpus generation — so long-running live
// services hold per-story state only for stories still in play.
func (s *Stepper) Advance(now digg.Minutes, events *[]VoteEvent) error {
	kept := s.runs[:0]
	var firstErr error
	for _, run := range s.runs {
		if firstErr != nil {
			kept = append(kept, run)
			continue
		}
		if run.st.Promoted && !run.promotedSeen {
			// An external vote promoted the story since the last step:
			// rebase the discovery sampler onto the decaying front-page
			// rate from the promotion minute.
			run.eng.nextDisc = run.eng.nextDiscovery(run.st, run.eng.interest,
				float64(run.st.PromotedAt), float64(run.eng.deadline))
		}
		done, err := run.eng.stepUntil(run.st, platformSink{p: s.platform, st: run.st}, now, events)
		if err != nil {
			firstErr = err
			kept = append(kept, run)
			continue
		}
		run.promotedSeen = run.st.Promoted
		if done {
			run.eng.endStory()
			s.free = append(s.free, run.eng)
			// Compaction keeps live memory bounded; later HTTP diggs on
			// the retired story report ErrStoryCompacted (410 over the
			// API), like a story scrolled out of play.
			if err := s.platform.CompactStory(run.st.ID); err != nil {
				firstErr = err
			}
			continue
		}
		kept = append(kept, run)
	}
	// Zero the tail so retired runs do not pin their engines.
	for i := len(kept); i < len(s.runs); i++ {
		s.runs[i] = nil
	}
	s.runs = kept
	return firstErr
}

// Active returns the number of stories still being stepped.
func (s *Stepper) Active() int { return len(s.runs) }
