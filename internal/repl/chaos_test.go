package repl

// chaos_test.go drives replication through injected faults: frames
// dropped, duplicated and cut mid-byte; network partitions; follower
// kill/restart with no shutdown hook; primary failover with a diverged
// ex-primary rejoining. Every scenario ends with a byte-exact (or, for
// sharded stores, content-exact) comparison against the primary. The
// CI replication job runs this file under -race.

import (
	"context"
	"os"
	"testing"
	"time"

	"diggsim/internal/durable"
)

func TestChaosFaultyTransport(t *testing.T) {
	pr := startPrimary(t, 1)
	mutate(t, pr.store(), 201, 200)

	ft := &FaultTransport{Inner: pr.transport(), DropEvery: 7, DupEvery: 5, TruncateEvery: 11}
	fdir := t.TempDir()
	node, f := startFollower(t, ft, fdir)
	defer node.Close()
	defer f.Stop()

	// Keep writing while the stream is being mangled.
	for round := 0; round < 6; round++ {
		mutate(t, pr.store(), 202+uint64(round), 150)
		time.Sleep(5 * time.Millisecond)
	}
	waitCaughtUp(t, f, pr.heads())
	underRLock(f, func() { compareStores(t, pr.store(), node.Store()) })
	if err := f.Err(); err != nil {
		t.Fatalf("faults must be survivable, got fatal: %v", err)
	}
}

func TestChaosFollowerKillRestart(t *testing.T) {
	pr := startPrimary(t, 1)
	mutate(t, pr.store(), 211, 300)

	fdir := t.TempDir()
	node, f := startFollower(t, pr.transport(), fdir)
	waitCaughtUp(t, f, pr.heads())

	// Hard-kill the follower: tailers die, no checkpoint, no store
	// close, no WAL sync — the directory is whatever recovery finds.
	f.Stop()
	_ = node // leaked like a killed process's open files

	// The primary moves on while the follower is dead.
	mutate(t, pr.store(), 212, 400)

	// Restart from disk: recovery replays the follower's own WAL, the
	// stream resumes from its applied LSN, and the follower converges
	// to the primary's exact state.
	node2, f2 := startFollower(t, pr.transport(), fdir)
	defer node2.Close()
	defer f2.Stop()
	waitCaughtUp(t, f2, pr.heads())
	underRLock(f2, func() { compareStores(t, pr.store(), node2.Store()) })
}

func TestChaosPartition(t *testing.T) {
	pr := startPrimary(t, 1)
	mutate(t, pr.store(), 221, 200)

	ft := &FaultTransport{Inner: pr.transport()}
	fdir := t.TempDir()
	node, f := startFollower(t, ft, fdir)
	defer node.Close()
	defer f.Stop()
	waitCaughtUp(t, f, pr.heads())

	// Cut the network. The primary keeps writing; the follower keeps
	// serving its applied state and its staleness grows.
	ft.Partitioned.Store(true)
	frozen := pr.heads()[0]
	mutate(t, pr.store(), 222, 200)
	time.Sleep(50 * time.Millisecond)
	if got := f.target.AppliedLSN(0); got > frozen {
		t.Fatalf("follower advanced to %d during the partition", got)
	}
	underRLock(f, func() {
		if node.Store().NumStories() == 0 {
			t.Fatal("follower stopped serving reads during the partition")
		}
	})
	if err := f.Err(); err != nil {
		t.Fatalf("a partition must not be fatal: %v", err)
	}

	// Heal. The follower reconnects from its applied LSN and converges.
	ft.Partitioned.Store(false)
	waitCaughtUp(t, f, pr.heads())
	underRLock(f, func() { compareStores(t, pr.store(), node.Store()) })
	if lagged := f.Staleness(); lagged > 10*time.Second {
		t.Fatalf("staleness did not recover after heal: %v", lagged)
	}
}

func TestChaosFailoverAndRejoin(t *testing.T) {
	prA := startPrimary(t, 1)
	mutate(t, prA.store(), 231, 250)

	// Follower B replicates A and serves its own repl endpoints.
	ftB := &FaultTransport{Inner: prA.transport()}
	dirB := t.TempDir()
	nodeB, fB, tsB := electableFollower(t, ftB, dirB)
	defer nodeB.Close()
	fB.Start()
	waitCaughtUp(t, fB, prA.heads())

	// Partition B, then let A take writes B will never see: those
	// records exist only in A's log.
	ftB.Partitioned.Store(true)
	mutate(t, prA.store(), 232, 120)
	aOnlyHead := prA.heads()[0]

	// A dies. Failover: B is promoted and starts taking writes.
	prA.stopServe()
	if err := prA.durable.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fB.Promote(); err != nil {
		t.Fatal(err)
	}
	if fB.ReadOnly() {
		t.Fatal("promoted follower still fenced")
	}
	mutate(t, nodeB.Store(), 233, 120)

	// A comes back and rejoins as a follower of B. Its log is ahead of
	// B's shared history (the partition-era records), so bootstrap
	// detects divergence, wipes, and re-seeds from B.
	trA := &HTTPTransport{Base: tsB.URL}
	nodeA2, err := Bootstrap(context.Background(), trA, prA.dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA2.Close()
	if got := nodeA2.Target.AppliedLSN(0); got > aOnlyHead && got <= nodeB.Target.AppliedLSN(0) {
		// fine: seeded from B's checkpoint somewhere at or below B's head
	} else if got > nodeB.Target.AppliedLSN(0) {
		t.Fatalf("rejoined A still ahead of B: %d > %d", got, nodeB.Target.AppliedLSN(0))
	}
	fA2 := NewFollower(nodeA2.Target, trA, followerOptions(prA.dir))
	fA2.Start()
	defer fA2.Stop()
	waitCaughtUp(t, fA2, []uint64{nodeB.Target.AppliedLSN(0)})
	underRLock(fA2, func() {
		underRLock(fB, func() { compareStores(t, nodeB.Store(), nodeA2.Store()) })
	})

	// The demoted node is fenced; the promoted one is not.
	fA2readOnly := fA2.ReadOnly()
	if !fA2readOnly {
		t.Fatal("rejoined ex-primary must be a fenced follower")
	}
}

func TestChaosShardedFaultsAndKill(t *testing.T) {
	pr := startPrimary(t, 3)
	mutate(t, pr.store(), 241, 300)

	ft := &FaultTransport{Inner: pr.transport(), DropEvery: 13, DupEvery: 9, TruncateEvery: 17}
	fdir := t.TempDir()
	node, f := startFollower(t, ft, fdir)

	mutate(t, pr.store(), 242, 300)
	waitCaughtUp(t, f, pr.heads())

	// Kill with no shutdown hook, write more, restart, converge.
	f.Stop()
	_ = node
	mutate(t, pr.store(), 243, 300)
	node2, f2 := startFollower(t, ft, fdir)
	defer node2.Close()
	defer f2.Stop()
	mutate(t, pr.store(), 244, 200)
	waitCaughtUp(t, f2, pr.heads())
	underRLock(f2, func() { compareStoresSharded(t, pr.store(), node2.Store()) })
	if err := f2.Err(); err != nil {
		t.Fatalf("fatal after sharded chaos: %v", err)
	}
}

// TestChaosFollowerCheckpointsIndependently exercises the follower's
// own durability maintenance: with automatic checkpoints enabled it
// prunes its WAL on its own schedule, and a restart replays only its
// tail while the stream resumes cleanly.
func TestChaosFollowerCheckpointsIndependently(t *testing.T) {
	pr := startPrimary(t, 1)
	mutate(t, pr.store(), 251, 300)

	fdir := t.TempDir()
	opts := testOpts()
	opts.CheckpointEvery = time.Nanosecond // checkpoint on every write burst
	node, err := Bootstrap(context.Background(), pr.transport(), fdir, opts)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFollower(node.Target, pr.transport(), followerOptions(fdir))
	f.Start()
	mutate(t, pr.store(), 252, 300)
	waitCaughtUp(t, f, pr.heads())
	underRLock(f, func() { compareStores(t, pr.store(), node.Store()) })

	f.Stop()
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}
	// The follower's directory recovers standalone — checkpoints are
	// real checkpoints.
	s, err := durable.Open(fdir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	compareStores(t, pr.store(), s)
}

func TestChaosStateFileSurvivesKill(t *testing.T) {
	pr := startPrimary(t, 1)
	mutate(t, pr.store(), 261, 200)

	fdir := t.TempDir()
	node, f := startFollower(t, pr.transport(), fdir)
	waitCaughtUp(t, f, pr.heads())
	// Wait out the state-write throttle so at least one snapshot lands.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(fdir + "/" + StateFileName); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("repl-state.json never written")
		}
		time.Sleep(5 * time.Millisecond)
	}
	f.Stop()
	_ = node

	st, err := ReadState(fdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != 1 || !st.ReadOnly {
		t.Fatalf("state = %+v", st)
	}
	if st.Shards[0].AppliedLSN == 0 {
		t.Fatal("state file recorded no progress")
	}
}
