package repl

// fault.go is the chaos harness's seam: a Transport wrapper that
// decodes the real stream and re-emits it with injected faults — frames
// dropped, duplicated, or cut off mid-byte — plus a partition switch
// that severs every call. The follower cannot tell these from real
// network misbehavior, which is the point: the chaos tests assert that
// dedup, gap detection and reconnect-from-applied-LSN recover the exact
// primary state through all of them.

import (
	"context"
	"errors"
	"io"
	"sync/atomic"
)

// ErrPartitioned is what a partitioned FaultTransport's calls fail
// with. It looks like any other transport error to the follower:
// retryable.
var ErrPartitioned = errors.New("repl: fault injection: partitioned")

// FaultTransport wraps a Transport with deterministic frame-level
// fault injection. Every Nth frame across the transport's lifetime is
// affected; zero disables that fault. The zero intervals make it a
// transparent pass-through.
type FaultTransport struct {
	Inner Transport

	// DropEvery drops every Nth frame from tail streams.
	DropEvery int
	// DupEvery emits every Nth frame twice.
	DupEvery int
	// TruncateEvery cuts the stream off halfway through every Nth
	// frame's bytes, then ends it — the shape of a connection dying
	// mid-send.
	TruncateEvery int

	// Partitioned, while true, fails every call (including reads on
	// already-open streams). Flip it back to heal the partition.
	Partitioned atomic.Bool

	frames atomic.Uint64
}

// Status implements Transport.
func (t *FaultTransport) Status(ctx context.Context) (Status, error) {
	if t.Partitioned.Load() {
		return Status{}, ErrPartitioned
	}
	return t.Inner.Status(ctx)
}

// Graph implements Transport.
func (t *FaultTransport) Graph(ctx context.Context, shard int) ([]byte, error) {
	if t.Partitioned.Load() {
		return nil, ErrPartitioned
	}
	return t.Inner.Graph(ctx, shard)
}

// Checkpoint implements Transport.
func (t *FaultTransport) Checkpoint(ctx context.Context, shard int) ([]byte, uint64, error) {
	if t.Partitioned.Load() {
		return nil, 0, ErrPartitioned
	}
	return t.Inner.Checkpoint(ctx, shard)
}

// Promote implements Transport.
func (t *FaultTransport) Promote(ctx context.Context) error {
	if t.Partitioned.Load() {
		return ErrPartitioned
	}
	return t.Inner.Promote(ctx)
}

// Tail implements Transport, wrapping the inner stream in the fault
// injector.
func (t *FaultTransport) Tail(ctx context.Context, shard int, from uint64) (io.ReadCloser, error) {
	if t.Partitioned.Load() {
		return nil, ErrPartitioned
	}
	rc, err := t.Inner.Tail(ctx, shard, from)
	if err != nil {
		return nil, err
	}
	return &faultStream{t: t, inner: rc, fr: NewFrameReader(rc)}, nil
}

// faultStream re-frames an inner stream with faults applied.
type faultStream struct {
	t     *FaultTransport
	inner io.ReadCloser
	fr    *FrameReader
	out   []byte
	cut   bool
}

func (f *faultStream) Read(p []byte) (int, error) {
	for len(f.out) == 0 {
		if f.cut {
			return 0, io.ErrUnexpectedEOF
		}
		if f.t.Partitioned.Load() {
			return 0, ErrPartitioned
		}
		frame, err := f.fr.Next()
		if err != nil {
			return 0, err
		}
		// Re-check after the (blocking) read: a frame produced while the
		// partition was raised must not slip through.
		if f.t.Partitioned.Load() {
			return 0, ErrPartitioned
		}
		n := int(f.t.frames.Add(1))
		if f.t.DropEvery > 0 && n%f.t.DropEvery == 0 {
			continue
		}
		encoded := encodeFrame(nil, frame)
		if f.t.TruncateEvery > 0 && n%f.t.TruncateEvery == 0 {
			f.out = append(f.out, encoded[:len(encoded)/2]...)
			f.cut = true
			break
		}
		f.out = append(f.out, encoded...)
		if f.t.DupEvery > 0 && n%f.t.DupEvery == 0 {
			f.out = append(f.out, encoded...)
		}
	}
	n := copy(p, f.out)
	f.out = f.out[n:]
	return n, nil
}

func (f *faultStream) Close() error { return f.inner.Close() }

// encodeFrame re-encodes a decoded frame byte-for-byte.
func encodeFrame(dst []byte, fr Frame) []byte {
	switch fr.Kind {
	case FrameRecord:
		return AppendRecordFrame(dst, fr.LSN, fr.RecType, fr.Payload)
	case FrameHeartbeat:
		return AppendHeartbeatFrame(dst, fr.Head, fr.ShipUnixNano)
	case FrameError:
		return AppendErrorFrame(dst, fr.Code, fr.Msg)
	}
	return dst
}
