package repl

// frame.go is the replication wire format: the framing a primary uses
// to ship WAL records to followers over an HTTP chunked stream.
//
// Each frame is self-delimiting and self-checking, mirroring the WAL's
// own record layout so the two formats fail the same way:
//
//	kind    byte    frame kind (record, heartbeat, error)
//	length  uint32  body length, little-endian
//	crc     uint32  CRC32-C over kind, length and body, little-endian
//	body    []byte
//
// Bodies by kind:
//
//	record     lsn uint64 LE · recType byte · payload
//	heartbeat  head uint64 LE · shipUnixNano int64 LE
//	           [· commitLSN uint64 LE · commitUnixNano int64 LE · traceID uint64 LE]
//	error      code byte · utf-8 message (stream-terminating)
//
// A record frame carries one WAL record verbatim — same LSN, same type
// byte, same payload bytes — so a follower can append it to its own log
// unchanged. Heartbeats flow even while a stream is catching up; they
// carry the primary's head LSN and ship wall-clock time, which is all a
// follower needs to measure its lag. The optional 24-byte heartbeat
// extension carries the primary's newest commit stamp — the commit's
// LSN, its wall-clock instant and the trace ID of the write that
// produced it — so a follower can measure commit→visible freshness end
// to end and join its apply to the originating request's trace. A
// 16-byte heartbeat (pre-extension sources) still decodes; any other
// length is corrupt. An error frame is the primary's last word on a
// stream (log truncated under the reader, corruption); the connection
// closes after it.
//
// The decoder never trusts the wire: oversized lengths, bad CRCs and
// unknown kinds are ErrFrameCorrupt, and a frame cut off mid-body is
// io.ErrUnexpectedEOF — the normal way a dropped connection presents.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"diggsim/internal/wal"
)

// Frame kinds.
const (
	FrameRecord    byte = 1 // one WAL record
	FrameHeartbeat byte = 2 // head position + ship time, no state change
	FrameError     byte = 3 // stream-terminating error from the source
)

// Error-frame codes.
const (
	ErrCodeGone     byte = 1 // requested LSN no longer retained; re-bootstrap
	ErrCodeCorrupt  byte = 2 // source's log is corrupt past this point
	ErrCodeInternal byte = 3 // unspecified source-side failure; retry
)

const (
	frameHeaderSize = 9
	// maxFrameBody bounds a frame body: the largest WAL record payload
	// plus the record frame's own lsn+type prefix.
	maxFrameBody = wal.MaxRecordSize + 9
)

// ErrFrameCorrupt reports a frame that is well-delimited but wrong:
// bad checksum, unknown kind, impossible length, or a body that does
// not parse for its kind.
var ErrFrameCorrupt = errors.New("repl: corrupt frame")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Frame is one decoded replication frame. Kind selects which of the
// remaining fields are meaningful.
type Frame struct {
	Kind byte

	// FrameRecord: one WAL record, verbatim. Payload aliases the
	// reader's internal buffer and is valid only until the next call.
	LSN     uint64
	RecType byte
	Payload []byte

	// FrameHeartbeat: the source's head LSN and the wall-clock
	// nanoseconds at which it shipped the frame.
	Head         uint64
	ShipUnixNano int64
	// FrameHeartbeat extension: the source's newest commit stamp.
	// All zero on 16-byte heartbeats from pre-extension sources and on
	// nodes that have taken no local writes (pure followers).
	CommitLSN      uint64
	CommitUnixNano int64
	TraceID        uint64

	// FrameError: why the source is ending the stream.
	Code byte
	Msg  string
}

// appendFrame appends a framed body to dst.
func appendFrame(dst []byte, kind byte, body []byte) []byte {
	start := len(dst)
	dst = append(dst, kind)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(body)))
	dst = binary.LittleEndian.AppendUint32(dst, 0) // crc placeholder
	dst = append(dst, body...)
	crc := crc32.Checksum(dst[start:start+5], castagnoli)
	crc = crc32.Update(crc, castagnoli, body)
	binary.LittleEndian.PutUint32(dst[start+5:start+9], crc)
	return dst
}

// AppendRecordFrame appends a record frame carrying one WAL record.
func AppendRecordFrame(dst []byte, lsn uint64, recType byte, payload []byte) []byte {
	body := make([]byte, 0, 9+len(payload))
	body = binary.LittleEndian.AppendUint64(body, lsn)
	body = append(body, recType)
	body = append(body, payload...)
	return appendFrame(dst, FrameRecord, body)
}

// AppendHeartbeatFrame appends a heartbeat frame in the legacy
// 16-byte form (no commit stamp).
func AppendHeartbeatFrame(dst []byte, head uint64, shipUnixNano int64) []byte {
	var body [16]byte
	binary.LittleEndian.PutUint64(body[0:8], head)
	binary.LittleEndian.PutUint64(body[8:16], uint64(shipUnixNano))
	return appendFrame(dst, FrameHeartbeat, body[:])
}

// AppendHeartbeatCommitFrame appends a heartbeat frame carrying the
// source's newest commit stamp in the 24-byte extension.
func AppendHeartbeatCommitFrame(dst []byte, head uint64, shipUnixNano int64, commitLSN uint64, commitUnixNano int64, traceID uint64) []byte {
	var body [40]byte
	binary.LittleEndian.PutUint64(body[0:8], head)
	binary.LittleEndian.PutUint64(body[8:16], uint64(shipUnixNano))
	binary.LittleEndian.PutUint64(body[16:24], commitLSN)
	binary.LittleEndian.PutUint64(body[24:32], uint64(commitUnixNano))
	binary.LittleEndian.PutUint64(body[32:40], traceID)
	return appendFrame(dst, FrameHeartbeat, body[:])
}

// AppendErrorFrame appends a stream-terminating error frame.
func AppendErrorFrame(dst []byte, code byte, msg string) []byte {
	body := make([]byte, 0, 1+len(msg))
	body = append(body, code)
	body = append(body, msg...)
	return appendFrame(dst, FrameError, body)
}

// FrameReader decodes a stream of frames. It is not safe for
// concurrent use.
type FrameReader struct {
	br  *bufio.Reader
	buf []byte
}

// NewFrameReader wraps r in a frame decoder.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{br: bufio.NewReaderSize(r, 64<<10)}
}

// Next returns the next frame. io.EOF means the stream ended cleanly
// on a frame boundary; io.ErrUnexpectedEOF means it was cut off inside
// a frame (the usual shape of a dropped connection); ErrFrameCorrupt
// means the bytes themselves are wrong. The returned frame's Payload
// and Msg alias an internal buffer valid until the next call.
func (fr *FrameReader) Next() (Frame, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(fr.br, hdr[:1]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.EOF
		}
		return Frame{}, err // EOF here is a clean boundary
	}
	if _, err := io.ReadFull(fr.br, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	kind := hdr[0]
	length := binary.LittleEndian.Uint32(hdr[1:5])
	want := binary.LittleEndian.Uint32(hdr[5:9])
	if kind < FrameRecord || kind > FrameError {
		return Frame{}, fmt.Errorf("%w: unknown kind %d", ErrFrameCorrupt, kind)
	}
	if length > maxFrameBody {
		return Frame{}, fmt.Errorf("%w: body length %d exceeds limit", ErrFrameCorrupt, length)
	}
	if cap(fr.buf) < int(length) {
		fr.buf = make([]byte, length)
	}
	body := fr.buf[:length]
	if _, err := io.ReadFull(fr.br, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	crc := crc32.Checksum(hdr[:5], castagnoli)
	crc = crc32.Update(crc, castagnoli, body)
	if crc != want {
		return Frame{}, fmt.Errorf("%w: checksum mismatch", ErrFrameCorrupt)
	}
	return decodeBody(kind, body)
}

// decodeBody parses a checksum-verified body for its kind.
func decodeBody(kind byte, body []byte) (Frame, error) {
	f := Frame{Kind: kind}
	switch kind {
	case FrameRecord:
		if len(body) < 9 {
			return Frame{}, fmt.Errorf("%w: record frame body too short", ErrFrameCorrupt)
		}
		f.LSN = binary.LittleEndian.Uint64(body[0:8])
		f.RecType = body[8]
		f.Payload = body[9:]
	case FrameHeartbeat:
		if len(body) != 16 && len(body) != 40 {
			return Frame{}, fmt.Errorf("%w: heartbeat frame body must be 16 or 40 bytes", ErrFrameCorrupt)
		}
		f.Head = binary.LittleEndian.Uint64(body[0:8])
		f.ShipUnixNano = int64(binary.LittleEndian.Uint64(body[8:16]))
		if len(body) == 40 {
			f.CommitLSN = binary.LittleEndian.Uint64(body[16:24])
			f.CommitUnixNano = int64(binary.LittleEndian.Uint64(body[24:32]))
			f.TraceID = binary.LittleEndian.Uint64(body[32:40])
		}
	case FrameError:
		if len(body) < 1 {
			return Frame{}, fmt.Errorf("%w: error frame body too short", ErrFrameCorrupt)
		}
		f.Code = body[0]
		f.Msg = string(body[1:])
	}
	return f, nil
}
