package repl

// follower.go is the receiving side of replication. A Follower owns
// one tailer goroutine per shard; each tailer streams frames from the
// primary, deduplicates and orders them by LSN, and applies contiguous
// batches to the target store under the follower's write lock — the
// same lock the HTTP serving layer adopts (Locker), so the lock-free
// snapshot read path works over a follower exactly as it does over a
// live primary.
//
// Failure handling is two-tiered:
//
//   - Transient (connection refused, stream cut, torn frame, LSN gap
//     from a dropped frame): reconnect from the applied LSN with
//     jittered exponential backoff. The follower keeps serving reads
//     the whole time; only its staleness grows.
//   - Fatal (requested LSN pruned → ErrSnapshotGone; local log ahead
//     of the source → ErrDiverged; a replicated record failing to
//     apply): the tailers stop and Err() reports why. Reads continue
//     from the last applied state; the operator (or cmd/diggd's boot
//     path, next start) wipes and re-bootstraps.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"diggsim/internal/durable"
	"diggsim/internal/obs"
	"diggsim/internal/shard"
	"diggsim/internal/wal"
)

// Target is the store surface a follower applies a replication stream
// into. Both durable.Store (one shard) and shard.Store (N shards)
// adapt to it.
type Target interface {
	// ShardCount is the number of independent WAL streams.
	ShardCount() int
	// AppliedLSN returns a shard's log position. Must be race-safe
	// without the follower lock (the WAL writer has its own mutex).
	AppliedLSN(shard int) uint64
	// ApplyReplicated appends and applies a contiguous run of records
	// starting at lsn. Called under the follower's write lock.
	ApplyReplicated(shard int, lsn uint64, entries []wal.Entry) error
	// Absorb folds applied per-shard advances into the merged read
	// views. Called under the follower's write lock, after every
	// successful ApplyReplicated.
	Absorb()
	// Promote converts the store into a writable primary. Called under
	// the follower's write lock, after the tailers have stopped.
	Promote() error
}

// NewDurableTarget adapts an unsharded durable store.
func NewDurableTarget(s *durable.Store) Target { return durableTarget{s} }

type durableTarget struct{ s *durable.Store }

func (t durableTarget) ShardCount() int       { return 1 }
func (t durableTarget) AppliedLSN(int) uint64 { return t.s.AppliedLSN() }
func (t durableTarget) Absorb()               {}
func (t durableTarget) Promote() error        { return nil }
func (t durableTarget) ApplyReplicated(_ int, lsn uint64, entries []wal.Entry) error {
	return t.s.ApplyReplicated(lsn, entries)
}

// NewShardTarget adapts a sharded store (opened with
// shard.OpenFollower).
func NewShardTarget(s *shard.Store) Target { return shardTarget{s} }

type shardTarget struct{ s *shard.Store }

func (t shardTarget) ShardCount() int         { return t.s.ShardCount() }
func (t shardTarget) AppliedLSN(i int) uint64 { return t.s.ShardAppliedLSN(i) }
func (t shardTarget) Absorb()                 { t.s.AbsorbReplicated() }
func (t shardTarget) Promote() error {
	_, err := t.s.PromoteToPrimary()
	return err
}
func (t shardTarget) ApplyReplicated(i int, lsn uint64, entries []wal.Entry) error {
	return t.s.ApplyReplicated(i, lsn, entries)
}

// Options tunes a Follower. The zero value gets production defaults;
// tests tighten the timings.
type Options struct {
	// BackoffMin/BackoffMax bound the jittered exponential reconnect
	// backoff (defaults 50ms and 2s).
	BackoffMin time.Duration
	BackoffMax time.Duration
	// BatchMax caps records per locked apply during catch-up
	// (default 256).
	BatchMax int
	// StateDir, when set, receives a repl-state.json snapshot of the
	// replication position about once a second (read offline by
	// diggstats -wal).
	StateDir string
	// Primary labels the upstream (a URL) in state and status output.
	Primary string
}

func (o Options) withDefaults() Options {
	if o.BackoffMin <= 0 {
		o.BackoffMin = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.BatchMax <= 0 {
		o.BatchMax = 256
	}
	return o
}

// histFreshFollower measures primary commit→follower visible: the gap
// between a write committing on the primary (durable.CommitStamp) and
// the heartbeat at which this follower confirms it has applied — and,
// via afterApply, republished — that LSN. Registered unlabeled at
// package load so the family exports from every node, followers or not.
var histFreshFollower = obs.Default.Histogram(obs.FreshnessFollowerFamily, "",
	"Primary commit to follower applied and republished, confirmed at heartbeat receipt.")

// followerShard is one shard's replication position, all atomics so
// status, metrics and headers read them without the store lock.
type followerShard struct {
	applied     atomic.Uint64 // our log position
	shipped     atomic.Uint64 // primary head per the last heartbeat
	lastShip    atomic.Int64  // ship wall-clock of the last heartbeat (unix nanos)
	lastContact atomic.Int64  // local wall-clock of the last frame (unix nanos)
	// commitSeen dedups freshness observations: the newest primary
	// commit LSN already measured, so heartbeats repeating a stamp
	// (idle primary) observe it once. commitTrace is the trace ID of
	// that commit's originating write — the cross-process join signal.
	commitSeen  atomic.Uint64
	commitTrace atomic.Uint64
}

// ShardStatus is one shard's replication position as reported by
// ShardStatuses.
type ShardStatus struct {
	Shard       int     `json:"shard"`
	AppliedLSN  uint64  `json:"applied_lsn"`
	ShippedLSN  uint64  `json:"shipped_lsn"`
	LagSeconds  float64 `json:"lag_seconds"`
	LastContact float64 `json:"last_contact_age_seconds"`
	// CommitTraceID is the trace ID of the newest primary write this
	// follower has confirmed applied — the join key between a primary
	// request trace and this follower's replication stream.
	CommitTraceID string `json:"commit_trace_id,omitempty"`
}

// Follower replicates a primary into a local target store.
type Follower struct {
	target Target
	tr     Transport
	opts   Options

	// mu is the store's write lock: tailers take it to apply, the
	// serving layer adopts it (Locker) for fallback reads and snapshot
	// rebuilds.
	mu         sync.RWMutex
	afterApply func()
	readOnly   atomic.Bool

	shards []followerShard

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	fatalMu sync.Mutex
	fatal   error

	stateStamp atomic.Int64

	ctrReconnects *obs.Counter
	ctrApplied    *obs.Counter
	histLag       []*obs.Histogram
}

// NewFollower wires a follower around an opened target store and a
// transport to its primary. Call Start to begin tailing.
func NewFollower(target Target, tr Transport, opts Options) *Follower {
	f := &Follower{
		target: target,
		tr:     tr,
		opts:   opts.withDefaults(),
		shards: make([]followerShard, target.ShardCount()),
	}
	f.readOnly.Store(true)
	f.ctrReconnects = obs.Default.Counter("diggsim_repl_reconnects_total",
		"Replication stream reconnect attempts.")
	f.ctrApplied = obs.Default.Counter("diggsim_repl_records_applied_total",
		"WAL records applied from replication streams.")
	f.histLag = make([]*obs.Histogram, target.ShardCount())
	for i := range f.histLag {
		f.histLag[i] = obs.Default.Histogram("diggsim_repl_lag_seconds",
			fmt.Sprintf("shard=%q", fmt.Sprint(i)),
			"Replication lag observed at each heartbeat.")
	}
	for i := range f.shards {
		f.shards[i].applied.Store(target.AppliedLSN(i))
	}
	return f
}

// Locker exposes the store lock for the serving layer, mirroring
// live.Service.Locker.
func (f *Follower) Locker() *sync.RWMutex { return &f.mu }

// SetAfterApply registers a hook invoked after every locked apply,
// once the lock is released — the serving layer republishes its read
// snapshot through it. Call before Start.
func (f *Follower) SetAfterApply(fn func()) { f.afterApply = fn }

// ReadOnly reports whether writes should be fenced (true until
// Promote succeeds).
func (f *Follower) ReadOnly() bool { return f.readOnly.Load() }

// Err returns the fatal replication error, if any. ErrSnapshotGone
// and ErrDiverged mean the data directory must be wiped and
// re-bootstrapped.
func (f *Follower) Err() error {
	f.fatalMu.Lock()
	defer f.fatalMu.Unlock()
	return f.fatal
}

// Start launches one tailer per shard. Call at most once.
func (f *Follower) Start() {
	f.ctx, f.cancel = context.WithCancel(context.Background())
	for i := range f.shards {
		f.wg.Add(1)
		go f.tailLoop(f.ctx, i)
	}
}

// Stop halts the tailers and waits for them. The follower keeps
// serving reads from its last applied state.
func (f *Follower) Stop() {
	if f.cancel != nil {
		f.cancel()
	}
	f.wg.Wait()
}

// Promote stops the tailers, converts the target into a writable
// primary, and lifts the write fence. The caller (election, operator)
// has decided this node wins; Promote does not check peers.
func (f *Follower) Promote() error {
	f.Stop()
	f.mu.Lock()
	err := f.target.Promote()
	f.mu.Unlock()
	if err != nil {
		return err
	}
	f.readOnly.Store(false)
	if f.afterApply != nil {
		f.afterApply()
	}
	f.writeState(time.Now())
	return nil
}

// Staleness is how far behind the primary this follower may be: the
// age of the oldest shard's last heartbeat. A healthy, connected
// follower's staleness hovers around the source's heartbeat interval.
// Returns a large value if a shard has never heard from the primary.
func (f *Follower) Staleness() time.Duration {
	now := time.Now().UnixNano()
	var worst int64
	for i := range f.shards {
		ship := f.shards[i].lastShip.Load()
		if ship == 0 {
			return time.Duration(1<<62 - 1)
		}
		if age := now - ship; age > worst {
			worst = age
		}
	}
	return time.Duration(worst)
}

// ShardStatuses reports every shard's replication position.
func (f *Follower) ShardStatuses() []ShardStatus {
	now := time.Now().UnixNano()
	out := make([]ShardStatus, len(f.shards))
	for i := range f.shards {
		fs := &f.shards[i]
		st := ShardStatus{
			Shard:      i,
			AppliedLSN: fs.applied.Load(),
			ShippedLSN: fs.shipped.Load(),
		}
		if ship := fs.lastShip.Load(); ship > 0 {
			st.LagSeconds = float64(now-ship) / 1e9
		} else {
			st.LagSeconds = -1
		}
		if c := fs.lastContact.Load(); c > 0 {
			st.LastContact = float64(now-c) / 1e9
		} else {
			st.LastContact = -1
		}
		if id := fs.commitTrace.Load(); id != 0 {
			st.CommitTraceID = fmt.Sprintf("%016x", id)
		}
		out[i] = st
	}
	return out
}

// Primary returns the upstream label from Options.
func (f *Follower) Primary() string { return f.opts.Primary }

func (f *Follower) setFatal(err error) {
	f.fatalMu.Lock()
	if f.fatal == nil {
		f.fatal = err
	}
	f.fatalMu.Unlock()
	if f.cancel != nil {
		f.cancel() // one shard's fatal grounds the whole node
	}
}

// errApply marks a replicated batch that failed to apply — fatal,
// since retrying the same bytes cannot succeed.
var errApply = errors.New("repl: replicated batch failed to apply")

func fatalStream(err error) bool {
	return errors.Is(err, ErrSnapshotGone) || errors.Is(err, ErrDiverged) || errors.Is(err, errApply)
}

func (f *Follower) tailLoop(ctx context.Context, shard int) {
	defer f.wg.Done()
	backoff := f.opts.BackoffMin
	for ctx.Err() == nil {
		from := f.target.AppliedLSN(shard)
		rc, err := f.tr.Tail(ctx, shard, from)
		if err != nil {
			if fatalStream(err) {
				f.setFatal(err)
				return
			}
			if ctx.Err() != nil {
				return
			}
			f.ctrReconnects.Add(1)
			backoff = f.sleepBackoff(ctx, backoff)
			continue
		}
		applied, err := f.consume(ctx, shard, rc)
		rc.Close()
		if fatalStream(err) {
			f.setFatal(err)
			return
		}
		if ctx.Err() != nil {
			return
		}
		if applied > 0 {
			backoff = f.opts.BackoffMin
		}
		f.ctrReconnects.Add(1)
		backoff = f.sleepBackoff(ctx, backoff)
	}
}

// sleepBackoff sleeps a jittered backoff (half fixed, half random) and
// returns the next, doubled backoff capped at BackoffMax.
func (f *Follower) sleepBackoff(ctx context.Context, d time.Duration) time.Duration {
	wait := d/2 + rand.N(d/2+1)
	select {
	case <-ctx.Done():
	case <-time.After(wait):
	}
	if d *= 2; d > f.opts.BackoffMax {
		d = f.opts.BackoffMax
	}
	return d
}

// consume drains one stream: dedup by LSN, batch contiguous records,
// apply under the write lock, track heartbeats. Returns how many
// records it applied and why the stream ended.
func (f *Follower) consume(ctx context.Context, shard int, rc io.Reader) (int, error) {
	fs := &f.shards[shard]
	fr := NewFrameReader(rc)
	next := f.target.AppliedLSN(shard)
	batchStart := next
	var batch []wal.Entry
	total := 0

	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		f.mu.Lock()
		err := f.target.ApplyReplicated(shard, batchStart, batch)
		if err == nil {
			f.target.Absorb()
		}
		f.mu.Unlock()
		if err != nil {
			return fmt.Errorf("%w: %w", errApply, err)
		}
		fs.applied.Store(next)
		f.ctrApplied.Add(uint64(len(batch)))
		total += len(batch)
		if f.afterApply != nil {
			f.afterApply()
		}
		batch = batch[:0]
		batchStart = next
		return nil
	}

	for ctx.Err() == nil {
		frame, err := fr.Next()
		if err != nil {
			// Clean EOF, torn frame, corrupt frame, dead connection:
			// apply what we have and reconnect from the applied LSN.
			if ferr := flush(); ferr != nil {
				return total, ferr
			}
			return total, err
		}
		fs.lastContact.Store(time.Now().UnixNano())
		switch frame.Kind {
		case FrameRecord:
			if frame.LSN < next {
				continue // duplicate of an applied or batched record
			}
			if frame.LSN > next {
				// A dropped frame left a gap; the batch before it is
				// still good. Reconnect to re-request the gap.
				if ferr := flush(); ferr != nil {
					return total, ferr
				}
				return total, fmt.Errorf("repl: stream gap: want lsn %d, got %d", next, frame.LSN)
			}
			batch = append(batch, wal.Entry{
				Type:    frame.RecType,
				Payload: append([]byte(nil), frame.Payload...),
			})
			next++
			if len(batch) >= f.opts.BatchMax {
				if err := flush(); err != nil {
					return total, err
				}
			}
		case FrameHeartbeat:
			if err := flush(); err != nil {
				return total, err
			}
			fs.shipped.Store(frame.Head)
			fs.lastShip.Store(frame.ShipUnixNano)
			now := time.Now()
			if lag := now.UnixNano() - frame.ShipUnixNano; lag > 0 {
				f.histLag[shard].Observe(time.Duration(lag))
			} else {
				f.histLag[shard].Observe(0)
			}
			// Commit→visible freshness: the flush above guarantees that
			// everything this stream delivered is applied and (through
			// afterApply) republished, so once our applied LSN covers
			// the stamped commit, that write is visible here. Observe
			// each primary commit once, at the first heartbeat that
			// confirms it.
			if frame.CommitLSN > 0 && frame.CommitLSN <= fs.applied.Load() &&
				frame.CommitLSN > fs.commitSeen.Load() {
				fs.commitSeen.Store(frame.CommitLSN)
				fs.commitTrace.Store(frame.TraceID)
				if d := now.UnixNano() - frame.CommitUnixNano; d > 0 {
					histFreshFollower.Observe(time.Duration(d))
				} else {
					histFreshFollower.Observe(0)
				}
			}
			f.maybeWriteState(now)
		case FrameError:
			if ferr := flush(); ferr != nil {
				return total, ferr
			}
			switch frame.Code {
			case ErrCodeGone:
				return total, fmt.Errorf("%w: %s", ErrSnapshotGone, frame.Msg)
			case ErrCodeCorrupt:
				// The source cannot re-serve these LSNs; only a fresh
				// bootstrap can get past them.
				return total, fmt.Errorf("%w: source log corrupt: %s", ErrSnapshotGone, frame.Msg)
			default:
				return total, fmt.Errorf("repl: source error: %s", frame.Msg)
			}
		}
	}
	if ferr := flush(); ferr != nil {
		return total, ferr
	}
	return total, ctx.Err()
}
