package repl

// bootstrap.go turns an empty (or stale, or diverged) data directory
// into a caught-up follower store:
//
//  1. Ask the primary's /status for its shard count.
//  2. For each shard with no local store, fetch the primary's graph
//     and newest checkpoint and seed a normal durable data directory
//     from them (durable.SeedReplica).
//  3. Open the store exactly as a restarting primary would —
//     durable.Open or shard.OpenFollower — so a follower restart and a
//     fresh bootstrap are the same code path.
//
// A directory that already holds a store is simply reopened (the
// stream resumes from its applied LSN) — unless some shard's log is
// AHEAD of the primary's, which means this node's history diverged
// (e.g. a demoted primary with unreplicated tail records rejoining).
// Divergence wipes the directory and re-seeds from scratch; the
// primary is the only truth.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"

	"diggsim/internal/digg"
	"diggsim/internal/durable"
	"diggsim/internal/shard"
	"diggsim/internal/wal"
)

// Node is a bootstrapped follower store: exactly one of Durable or
// Sharded is set.
type Node struct {
	// Durable is the store when the primary is unsharded.
	Durable *durable.Store
	// Sharded is the store when the primary runs N shards.
	Sharded *shard.Store
	// Target is the store's replication-apply adapter.
	Target Target
	// Shards is the stream count.
	Shards int
}

// Store returns the node's read/serve surface.
func (n *Node) Store() digg.Store {
	if n.Sharded != nil {
		return n.Sharded
	}
	return n.Durable
}

// Close closes the underlying store.
func (n *Node) Close() error {
	if n.Sharded != nil {
		return n.Sharded.Close()
	}
	return n.Durable.Close()
}

// Checkpoint checkpoints the underlying store.
func (n *Node) Checkpoint() error {
	if n.Sharded != nil {
		return n.Sharded.Checkpoint()
	}
	return n.Durable.Checkpoint()
}

// SourceShards returns the node's own streaming surface, so a
// follower can itself serve the replication endpoints (election reads
// status from them; a promoted follower starts streaming to the
// others without a restart).
func (n *Node) SourceShards() []SourceShard {
	out := make([]SourceShard, n.Shards)
	for i := 0; i < n.Shards; i++ {
		var ds *durable.Store
		if n.Sharded != nil {
			ds = n.Sharded.DurableShard(i)
		} else {
			ds = n.Durable
		}
		out[i] = SourceShard{Dir: ds.Dir(), Head: ds.AppliedLSN, LastCommit: ds.LastCommit}
	}
	return out
}

// Bootstrap prepares dir as a follower of the primary behind tr and
// opens it. See the file comment for the resume/seed/wipe decision.
func Bootstrap(ctx context.Context, tr Transport, dir string, opts durable.Options) (*Node, error) {
	st, err := tr.Status(ctx)
	if err != nil {
		return nil, fmt.Errorf("repl: reading primary status: %w", err)
	}
	if st.Shards < 1 {
		return nil, fmt.Errorf("repl: primary reports %d shards", st.Shards)
	}
	n, err := openOrSeed(ctx, tr, dir, st, opts)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n.Shards && i < len(st.Applied); i++ {
		applied := n.Target.AppliedLSN(i)
		diverged := applied > st.Applied[i] // records the primary never had
		if !diverged {
			// An LSN comparison cannot see divergence once the primary
			// has written PAST our head (a new primary taking writes
			// after a failover). Log matching can: our newest applied
			// record must be byte-identical to the primary's record at
			// the same LSN.
			diverged = probeDiverged(ctx, tr, i, n.SourceShards()[i].Dir, applied)
		}
		if !diverged {
			continue
		}
		// Our log holds records the primary never had: diverged.
		// Wipe and take the primary's history.
		n.Close()
		if err := os.RemoveAll(dir); err != nil {
			return nil, fmt.Errorf("repl: wiping diverged data directory: %w", err)
		}
		return openOrSeed(ctx, tr, dir, st, opts)
	}
	return n, nil
}

// probeDiverged runs the log-matching check for one shard: fetch the
// primary's record at our newest applied LSN and compare bytes with
// our own copy. Only a definitive mismatch reports divergence —
// anything inconclusive (either side pruned the record, the stream
// died, a chaos transport mangled it) reports false and lets the
// normal tail path sort it out.
func probeDiverged(ctx context.Context, tr Transport, shard int, dir string, applied uint64) bool {
	if applied == 0 {
		return false
	}
	lsn := applied - 1
	local, ok := readLocalRecord(dir, lsn)
	if !ok {
		return false
	}
	rc, err := tr.Tail(ctx, shard, lsn)
	if errors.Is(err, ErrDiverged) {
		return true
	}
	if err != nil {
		return false
	}
	defer rc.Close()
	fr := NewFrameReader(rc)
	for {
		frame, err := fr.Next()
		if err != nil {
			return false
		}
		switch frame.Kind {
		case FrameRecord:
			if frame.LSN < lsn {
				continue
			}
			if frame.LSN > lsn {
				return false // our record skipped over: inconclusive
			}
			return frame.RecType != local.Type || !bytes.Equal(frame.Payload, local.Payload)
		case FrameError:
			return false
		}
	}
}

// readLocalRecord reads one record from a local shard directory's own
// log, reporting ok=false when it is not retained.
func readLocalRecord(dir string, lsn uint64) (wal.Entry, bool) {
	r, err := wal.OpenTailReader(dir, lsn)
	if err != nil {
		return wal.Entry{}, false
	}
	defer r.Close()
	rec, err := r.Next()
	if err != nil || rec.LSN != lsn {
		return wal.Entry{}, false
	}
	return wal.Entry{Type: rec.Type, Payload: append([]byte(nil), rec.Payload...)}, true
}

func openOrSeed(ctx context.Context, tr Transport, dir string, st Status, opts durable.Options) (*Node, error) {
	if st.Shards == 1 {
		if !durable.Exists(dir) {
			if err := seedShard(ctx, tr, 0, dir); err != nil {
				return nil, err
			}
		}
		ds, err := durable.Open(dir, opts)
		if err != nil {
			return nil, err
		}
		return &Node{Durable: ds, Target: NewDurableTarget(ds), Shards: 1}, nil
	}
	for i := 0; i < st.Shards; i++ {
		sd := shard.ShardDirPath(dir, i)
		if durable.Exists(sd) {
			continue
		}
		if err := seedShard(ctx, tr, i, sd); err != nil {
			return nil, err
		}
	}
	ss, err := shard.OpenFollower(dir, opts)
	if err != nil {
		return nil, err
	}
	return &Node{Sharded: ss, Target: NewShardTarget(ss), Shards: st.Shards}, nil
}

// seedShard fetches one shard's graph and checkpoint blobs and seeds
// its data directory.
func seedShard(ctx context.Context, tr Transport, i int, dir string) error {
	graphData, err := tr.Graph(ctx, i)
	if err != nil {
		return fmt.Errorf("repl: fetching shard %d graph: %w", i, err)
	}
	ckptData, _, err := tr.Checkpoint(ctx, i)
	if err != nil {
		return fmt.Errorf("repl: fetching shard %d checkpoint: %w", i, err)
	}
	if err := durable.SeedReplica(dir, graphData, ckptData); err != nil {
		return fmt.Errorf("repl: seeding shard %d: %w", i, err)
	}
	return nil
}

// ElectAndPromote runs a static-peer failover election: it asks every
// peer for its status, and promotes the reachable follower with the
// highest total applied LSN (ties break toward the earlier peer). If
// some peer already reports itself primary, that peer wins without a
// promotion. Returns the winner's base URL.
func ElectAndPromote(ctx context.Context, peers []string) (string, error) {
	best := -1
	var bestApplied uint64
	for i, p := range peers {
		st, err := (&HTTPTransport{Base: p}).Status(ctx)
		if err != nil {
			continue
		}
		if st.Role == "primary" {
			return p, nil
		}
		if best < 0 || st.TotalApplied() > bestApplied {
			best, bestApplied = i, st.TotalApplied()
		}
	}
	if best < 0 {
		return "", fmt.Errorf("repl: no reachable peers among %d", len(peers))
	}
	winner := peers[best]
	if err := (&HTTPTransport{Base: winner}).Promote(ctx); err != nil {
		return "", fmt.Errorf("repl: promoting %s: %w", winner, err)
	}
	return winner, nil
}
