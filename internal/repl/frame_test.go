package repl

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf []byte
	buf = AppendRecordFrame(buf, 42, 3, []byte("payload-bytes"))
	buf = AppendHeartbeatFrame(buf, 99, 123456789)
	buf = AppendRecordFrame(buf, 43, 4, nil)
	buf = AppendErrorFrame(buf, ErrCodeGone, "pruned")

	fr := NewFrameReader(bytes.NewReader(buf))

	f, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != FrameRecord || f.LSN != 42 || f.RecType != 3 || string(f.Payload) != "payload-bytes" {
		t.Fatalf("frame 1 = %+v", f)
	}
	f, err = fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != FrameHeartbeat || f.Head != 99 || f.ShipUnixNano != 123456789 {
		t.Fatalf("frame 2 = %+v", f)
	}
	f, err = fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != FrameRecord || f.LSN != 43 || f.RecType != 4 || len(f.Payload) != 0 {
		t.Fatalf("frame 3 = %+v", f)
	}
	f, err = fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != FrameError || f.Code != ErrCodeGone || f.Msg != "pruned" {
		t.Fatalf("frame 4 = %+v", f)
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}
}

func TestFrameHeartbeatCommitRoundTrip(t *testing.T) {
	var buf []byte
	buf = AppendHeartbeatCommitFrame(buf, 99, 123456789, 97, 111222333, 0xdeadbeefcafe0123)
	buf = AppendHeartbeatFrame(buf, 100, 223456789)

	fr := NewFrameReader(bytes.NewReader(buf))
	f, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != FrameHeartbeat || f.Head != 99 || f.ShipUnixNano != 123456789 ||
		f.CommitLSN != 97 || f.CommitUnixNano != 111222333 || f.TraceID != 0xdeadbeefcafe0123 {
		t.Fatalf("extended heartbeat = %+v", f)
	}
	// A legacy heartbeat after an extended one must decode with all
	// commit fields zero — the reader's buffer is reused between calls.
	f, err = fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != FrameHeartbeat || f.Head != 100 || f.ShipUnixNano != 223456789 ||
		f.CommitLSN != 0 || f.CommitUnixNano != 0 || f.TraceID != 0 {
		t.Fatalf("legacy heartbeat = %+v", f)
	}
}

func TestFrameHeartbeatBadLength(t *testing.T) {
	// A heartbeat body of any length other than 16 or 40 is corrupt.
	for _, n := range []int{0, 15, 17, 24, 39, 41} {
		full := appendFrame(nil, FrameHeartbeat, make([]byte, n))
		fr := NewFrameReader(bytes.NewReader(full))
		if _, err := fr.Next(); !errors.Is(err, ErrFrameCorrupt) {
			t.Fatalf("heartbeat body len %d: %v, want ErrFrameCorrupt", n, err)
		}
	}
}

func TestFrameTornStream(t *testing.T) {
	full := AppendRecordFrame(nil, 7, 2, []byte("some-payload"))
	// Every proper prefix of a frame must decode as an unexpected EOF,
	// never as EOF, corruption, or a bogus frame.
	for cut := 1; cut < len(full); cut++ {
		fr := NewFrameReader(bytes.NewReader(full[:cut]))
		if _, err := fr.Next(); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d: err = %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestFrameCorruption(t *testing.T) {
	full := AppendRecordFrame(nil, 7, 2, []byte("some-payload"))
	// Flipping any single byte must surface as corruption (or as a
	// frame decode error), never as a silently different frame.
	for i := range full {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x40
		fr := NewFrameReader(bytes.NewReader(mut))
		f, err := fr.Next()
		if err == nil && (f.LSN != 7 || f.RecType != 2 || string(f.Payload) != "some-payload") {
			t.Fatalf("flip at %d: decoded altered frame %+v without error", i, f)
		}
		if err == nil {
			t.Fatalf("flip at %d: decoded successfully", i)
		}
		if !errors.Is(err, ErrFrameCorrupt) && err != io.ErrUnexpectedEOF && err != io.EOF {
			t.Fatalf("flip at %d: unexpected error %v", i, err)
		}
	}
}

func TestFrameOversizedLength(t *testing.T) {
	full := AppendRecordFrame(nil, 1, 2, []byte("x"))
	full[1] = 0xff
	full[2] = 0xff
	full[3] = 0xff
	full[4] = 0xff
	fr := NewFrameReader(bytes.NewReader(full))
	if _, err := fr.Next(); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("oversized length: %v, want ErrFrameCorrupt", err)
	}
}
