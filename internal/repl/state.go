package repl

// state.go persists a follower's replication position to
// repl-state.json in its data directory, about once a second. The file
// is advisory — replication correctness never reads it — but it lets
// offline tooling (diggstats -wal) report applied-vs-shipped LSNs and
// last-contact age for a node that is down or unreachable over HTTP.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"time"
)

// StateFileName is the follower position file within a data directory.
const StateFileName = "repl-state.json"

// StateShard is one shard's position in a State file.
type StateShard struct {
	Shard       int    `json:"shard"`
	AppliedLSN  uint64 `json:"applied_lsn"`
	ShippedLSN  uint64 `json:"shipped_lsn"`
	LastContact int64  `json:"last_contact_unix_nano"`
}

// State is the on-disk repl-state.json document.
type State struct {
	// Primary is the upstream's URL.
	Primary string `json:"primary"`
	// UpdatedUnixNano is when the file was written.
	UpdatedUnixNano int64 `json:"updated_unix_nano"`
	// ReadOnly reports whether the node was still write-fenced.
	ReadOnly bool `json:"read_only"`
	// Shards holds each stream's position.
	Shards []StateShard `json:"shards"`
}

// ReadState loads dir's repl-state.json. os.IsNotExist errors mean the
// node never ran as a follower (or predates replication).
func ReadState(dir string) (State, error) {
	data, err := os.ReadFile(filepath.Join(dir, StateFileName))
	if err != nil {
		return State{}, err
	}
	var st State
	if err := json.Unmarshal(data, &st); err != nil {
		return State{}, err
	}
	return st, nil
}

// maybeWriteState persists the position if a second has passed since
// the last write. Tailers race here; the stamp swap picks one winner.
func (f *Follower) maybeWriteState(now time.Time) {
	if f.opts.StateDir == "" {
		return
	}
	last := f.stateStamp.Load()
	if now.UnixNano()-last < int64(time.Second) {
		return
	}
	if !f.stateStamp.CompareAndSwap(last, now.UnixNano()) {
		return
	}
	f.writeState(now)
}

// writeState persists the position unconditionally (used at promote
// time for a final stamp). Failures are ignored: the file is advisory
// and the next heartbeat retries.
func (f *Follower) writeState(now time.Time) {
	if f.opts.StateDir == "" {
		return
	}
	st := State{
		Primary:         f.opts.Primary,
		UpdatedUnixNano: now.UnixNano(),
		ReadOnly:        f.ReadOnly(),
		Shards:          make([]StateShard, len(f.shards)),
	}
	for i := range f.shards {
		fs := &f.shards[i]
		st.Shards[i] = StateShard{
			Shard:       i,
			AppliedLSN:  fs.applied.Load(),
			ShippedLSN:  fs.shipped.Load(),
			LastContact: fs.lastContact.Load(),
		}
	}
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return
	}
	tmp := filepath.Join(f.opts.StateDir, ".tmp-repl-state")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	os.Rename(tmp, filepath.Join(f.opts.StateDir, StateFileName))
}
