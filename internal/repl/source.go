package repl

// source.go is the primary side of replication: an http.Handler that
// serves a node's bootstrap artifacts (graph, newest checkpoint) and
// streams its WAL tail as frames, one independent stream per shard.
//
// Streaming never takes the store lock. A shard's WAL directory is
// append-only files (wal.TailReader reads them safely beside the live
// writer) and the head position comes through a race-safe closure, so
// a firehose of followers costs the primary file I/O and nothing on
// its write path.
//
// Stream protocol: the client asks for /repl/v1/wal/{shard}?from=N.
//
//   - N below the oldest retained record → 410 Gone. The log was
//     checkpointed and pruned past N; the follower must re-bootstrap.
//   - N past the head → 409 Conflict. The follower's log holds records
//     this source never wrote — it diverged and must wipe.
//   - otherwise → 200 and an unbounded chunked body of frames: every
//     record from N on, with heartbeats interleaved (even mid-catch-up)
//     so the follower can always measure lag. If the log is truncated
//     or found corrupt mid-stream the source says so with a terminal
//     error frame rather than silently closing.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"diggsim/internal/durable"
	"diggsim/internal/wal"
)

// SourceShard is one shard's streaming surface: its WAL directory and
// a race-safe reader of its applied LSN.
type SourceShard struct {
	// Dir is the shard's data directory (its WAL segments live here).
	Dir string
	// Head returns the shard's applied LSN. It is called without any
	// store lock and must be safe for concurrent use
	// (durable.Store.AppliedLSN is).
	Head func() uint64
	// LastCommit, when non-nil, returns the shard's newest locally
	// originated commit stamp; heartbeats then carry it so followers can
	// measure commit→visible freshness. It is called without any store
	// lock and must be safe for concurrent use
	// (durable.Store.LastCommit is).
	LastCommit func() durable.CommitStamp
}

// appendBeat appends a heartbeat for sh: the extended commit-stamp form
// when the shard exposes one, the legacy 16-byte form otherwise.
func appendBeat(buf []byte, sh SourceShard, now time.Time) []byte {
	if sh.LastCommit != nil {
		if c := sh.LastCommit(); c.LSN > 0 {
			return AppendHeartbeatCommitFrame(buf, sh.Head(), now.UnixNano(), c.LSN, c.UnixNano, c.TraceID)
		}
	}
	return AppendHeartbeatFrame(buf, sh.Head(), now.UnixNano())
}

// Source serves a node's replication endpoints. Zero-value durations
// get defaults; Role, Generation and Promote may be nil.
type Source struct {
	// Shards lists the node's shards in order.
	Shards []SourceShard
	// Role reports "primary" or "follower" for /status. Nil means
	// "primary".
	Role func() string
	// Generation returns the store generation for /status. It must be
	// race-safe (read from a published snapshot or under a lock). Nil
	// reports zero.
	Generation func() uint64
	// Promote, when non-nil, promotes this node to primary on
	// POST /repl/v1/promote.
	Promote func() error
	// Heartbeat is the cadence of heartbeat frames (default 250ms).
	Heartbeat time.Duration
	// Poll is how often a caught-up stream re-checks the log for new
	// records (default 5ms).
	Poll time.Duration

	initOnce  sync.Once
	closeOnce sync.Once
	closed    chan struct{}
}

// closedCh lazily initializes the shutdown channel so the zero-ish
// literal construction keeps working.
func (s *Source) closedCh() chan struct{} {
	s.initOnce.Do(func() { s.closed = make(chan struct{}) })
	return s.closed
}

// Close ends every active WAL stream (with a terminal retryable error
// frame) and makes future streams end immediately. An HTTP server
// whose graceful shutdown waits for in-flight requests needs this —
// a healthy stream otherwise never completes.
func (s *Source) Close() {
	ch := s.closedCh()
	s.closeOnce.Do(func() { close(ch) })
}

func (s *Source) heartbeat() time.Duration {
	if s.Heartbeat > 0 {
		return s.Heartbeat
	}
	return 250 * time.Millisecond
}

func (s *Source) poll() time.Duration {
	if s.Poll > 0 {
		return s.Poll
	}
	return 5 * time.Millisecond
}

// Handler returns the replication endpoints as a handler expecting
// paths relative to /repl/v1 (mount with http.StripPrefix).
func (s *Source) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /status", s.handleStatus)
	mux.HandleFunc("GET /graph/{shard}", s.handleGraph)
	mux.HandleFunc("GET /checkpoint/{shard}", s.handleCheckpoint)
	mux.HandleFunc("GET /wal/{shard}", s.handleWAL)
	mux.HandleFunc("POST /promote", s.handlePromote)
	return mux
}

// shardFrom parses and bounds-checks the {shard} path value, writing
// the error response itself when it fails.
func (s *Source) shardFrom(w http.ResponseWriter, r *http.Request) (int, bool) {
	i, err := strconv.Atoi(r.PathValue("shard"))
	if err != nil || i < 0 || i >= len(s.Shards) {
		http.Error(w, fmt.Sprintf("no shard %q (have %d)", r.PathValue("shard"), len(s.Shards)), http.StatusNotFound)
		return 0, false
	}
	return i, true
}

func (s *Source) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := Status{Role: "primary", Shards: len(s.Shards), Applied: make([]uint64, len(s.Shards))}
	if s.Role != nil {
		st.Role = s.Role()
	}
	if s.Generation != nil {
		st.Generation = s.Generation()
	}
	for i, sh := range s.Shards {
		st.Applied[i] = sh.Head()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

func (s *Source) handleGraph(w http.ResponseWriter, r *http.Request) {
	i, ok := s.shardFrom(w, r)
	if !ok {
		return
	}
	data, err := durable.ReadGraphRaw(s.Shards[i].Dir)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

func (s *Source) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	i, ok := s.shardFrom(w, r)
	if !ok {
		return
	}
	data, lsn, err := durable.ReadNewestCheckpointRaw(s.Shards[i].Dir)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Checkpoint-Lsn", strconv.FormatUint(lsn, 10))
	w.Write(data)
}

func (s *Source) handlePromote(w http.ResponseWriter, r *http.Request) {
	if s.Promote == nil {
		http.Error(w, "this node cannot be promoted", http.StatusNotImplemented)
		return
	}
	if err := s.Promote(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write([]byte("ok\n"))
}

func (s *Source) handleWAL(w http.ResponseWriter, r *http.Request) {
	i, ok := s.shardFrom(w, r)
	if !ok {
		return
	}
	sh := s.Shards[i]
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		http.Error(w, "from must be a decimal lsn", http.StatusBadRequest)
		return
	}
	head := sh.Head()
	oldest, retained, err := wal.OldestRetained(sh.Dir)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if !retained {
		// No segments at all: everything below the head was pruned.
		oldest = head
	}
	if from < oldest {
		http.Error(w, fmt.Sprintf("lsn %d below oldest retained %d; re-bootstrap from a checkpoint", from, oldest), http.StatusGone)
		return
	}
	if from > head {
		http.Error(w, fmt.Sprintf("lsn %d past head %d; this log has diverged from yours", from, head), http.StatusConflict)
		return
	}

	tr, err := wal.OpenTailReader(sh.Dir, from)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer tr.Close()

	w.Header().Set("Content-Type", "application/x-diggsim-repl")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func(buf []byte) bool {
		if len(buf) == 0 {
			return true
		}
		if _, err := w.Write(buf); err != nil {
			return false // client went away
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	ctx := r.Context()
	closed := s.closedCh()
	hb, poll := s.heartbeat(), s.poll()
	buf := make([]byte, 0, 64<<10)
	lastBeat := time.Now()
	for ctx.Err() == nil {
		select {
		case <-closed:
			buf = AppendErrorFrame(buf, ErrCodeInternal, "source shutting down")
			flush(buf)
			return
		default:
		}
		rec, err := tr.Next()
		switch {
		case err == nil:
			buf = AppendRecordFrame(buf, rec.LSN, rec.Type, rec.Payload)
			if time.Since(lastBeat) >= hb {
				lastBeat = time.Now()
				buf = appendBeat(buf, sh, lastBeat)
			}
			if len(buf) >= 256<<10 {
				if !flush(buf) {
					return
				}
				buf = buf[:0]
			}
		case errors.Is(err, wal.ErrCaughtUp):
			if time.Since(lastBeat) >= hb {
				lastBeat = time.Now()
				buf = appendBeat(buf, sh, lastBeat)
			}
			if !flush(buf) {
				return
			}
			buf = buf[:0]
			select {
			case <-ctx.Done():
				return
			case <-closed:
			case <-time.After(poll):
			}
		case errors.Is(err, wal.ErrTruncated):
			// Checkpointed and pruned under this reader: the stream
			// cannot continue from here.
			buf = AppendErrorFrame(buf, ErrCodeGone, "log truncated under the stream; re-bootstrap")
			flush(buf)
			return
		default:
			buf = AppendErrorFrame(buf, ErrCodeCorrupt, err.Error())
			flush(buf)
			return
		}
	}
}
