package repl

// repl_test.go is the end-to-end replication suite: a real primary
// store behind a real HTTP source, a follower bootstrapped over the
// wire, and assertions that the follower converges to the primary's
// exact state through catch-up, reconnects, truncation, divergence,
// and promotion. chaos_test.go layers fault injection and kill/restart
// on the same harness.

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"diggsim/internal/digg"
	"diggsim/internal/durable"
	"diggsim/internal/graph"
	"diggsim/internal/rng"
	"diggsim/internal/shard"
	"diggsim/internal/wal"
)

func testPolicy() digg.PromotionPolicy {
	return &digg.ClassicPromotion{VoteThreshold: 5, Window: digg.Day}
}

func testOpts() durable.Options {
	return durable.Options{Policy: testPolicy(), Sync: wal.SyncOS, CheckpointEvery: -1}
}

// newTestPlatform builds a small deterministic platform with some
// pre-replication history.
func newTestPlatform(t testing.TB) *digg.Platform {
	t.Helper()
	g, err := graph.PreferentialAttachment(rng.New(11), 400, 3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	p := digg.NewPlatform(g, testPolicy())
	r := rng.New(12)
	for i := 0; i < 8; i++ {
		st, err := p.Submit(digg.UserID(r.Intn(400)), "seed-story", 0.4, digg.Minutes(i*5))
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < 2+r.Intn(6); v++ {
			_, _ = p.Digg(st.ID, digg.UserID(r.Intn(400)), digg.Minutes(i*5+v+1))
		}
	}
	return p
}

// mutate drives n mixed commands through a store: submissions, votes
// (including rejected duplicates), occasional compactions.
func mutate(t testing.TB, s digg.Store, seed uint64, n int) {
	t.Helper()
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		switch r.Intn(10) {
		case 0:
			if _, err := s.Submit(digg.UserID(r.Intn(400)), "live-story", 0.6, digg.Minutes(100+i)); err != nil {
				t.Fatalf("submit: %v", err)
			}
		case 1:
			_, _ = s.Digg(0, mustStory(t, s, 0).Submitter, digg.Minutes(100+i))
		case 2:
			if err := s.CompactStory(digg.StoryID(r.Intn(s.NumStories()))); err != nil {
				t.Fatalf("compact: %v", err)
			}
		default:
			_, _ = s.Digg(digg.StoryID(r.Intn(s.NumStories())), digg.UserID(r.Intn(400)), digg.Minutes(100+i))
		}
	}
}

func mustStory(t testing.TB, s digg.Store, id digg.StoryID) *digg.Story {
	t.Helper()
	st, err := s.Story(id)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// compareStores asserts two stores are observably identical, including
// promotion order (exact for LSN-ordered unsharded replication).
func compareStores(t testing.TB, want, got digg.Store) {
	t.Helper()
	compareStoresBase(t, want, got)
	if !reflect.DeepEqual(want.PromotedIDs(), got.PromotedIDs()) {
		t.Fatalf("promotion order differs: got %v, want %v", got.PromotedIDs(), want.PromotedIDs())
	}
	wantFP, gotFP := want.FrontPage(0), got.FrontPage(0)
	if len(wantFP) != len(gotFP) {
		t.Fatalf("front page length: got %d, want %d", len(gotFP), len(wantFP))
	}
	for i := range wantFP {
		if wantFP[i].ID != gotFP[i].ID {
			t.Fatalf("front page entry %d: got %d, want %d", i, gotFP[i].ID, wantFP[i].ID)
		}
	}
}

// compareStoresSharded asserts equality for sharded replication, where
// per-shard streams progress independently: promotion CONTENT must
// match but cross-shard promotion ties may release in (PromotedAt, ID)
// order rather than live order — the same latitude crash recovery has.
func compareStoresSharded(t testing.TB, want, got digg.Store) {
	t.Helper()
	compareStoresBase(t, want, got)
	wp := append([]digg.StoryID(nil), want.PromotedIDs()...)
	gp := append([]digg.StoryID(nil), got.PromotedIDs()...)
	sort.Slice(wp, func(i, j int) bool { return wp[i] < wp[j] })
	sort.Slice(gp, func(i, j int) bool { return gp[i] < gp[j] })
	if !reflect.DeepEqual(wp, gp) {
		t.Fatalf("promoted sets differ: got %v, want %v", gp, wp)
	}
}

func compareStoresBase(t testing.TB, want, got digg.Store) {
	t.Helper()
	if want.Generation() != got.Generation() {
		t.Fatalf("generation: got %d, want %d", got.Generation(), want.Generation())
	}
	if want.NumStories() != got.NumStories() {
		t.Fatalf("stories: got %d, want %d", got.NumStories(), want.NumStories())
	}
	for i := 0; i < want.NumStories(); i++ {
		id := digg.StoryID(i)
		if !reflect.DeepEqual(mustStory(t, want, id), mustStory(t, got, id)) {
			t.Fatalf("story %d differs", i)
		}
		if want.StoryVersion(id) != got.StoryVersion(id) {
			t.Fatalf("story %d version: got %d, want %d", i, got.StoryVersion(id), want.StoryVersion(id))
		}
	}
	if !reflect.DeepEqual(want.TopUsers(100), got.TopUsers(100)) {
		t.Fatal("top users differ")
	}
	if !reflect.DeepEqual(want.Ranks(), got.Ranks()) {
		t.Fatal("ranks differ")
	}
}

// testPrimary is a primary store serving replication over a real HTTP
// listener.
type testPrimary struct {
	t       testing.TB
	dir     string
	durable *durable.Store
	sharded *shard.Store
	src     *Source
	ts      *httptest.Server
}

func (p *testPrimary) store() digg.Store {
	if p.sharded != nil {
		return p.sharded
	}
	return p.durable
}

func (p *testPrimary) heads() []uint64 {
	if p.sharded == nil {
		return []uint64{p.durable.AppliedLSN()}
	}
	out := make([]uint64, p.sharded.ShardCount())
	for i := range out {
		out[i] = p.sharded.ShardAppliedLSN(i)
	}
	return out
}

func (p *testPrimary) sourceShards() []SourceShard {
	if p.sharded == nil {
		return []SourceShard{{Dir: p.durable.Dir(), Head: p.durable.AppliedLSN}}
	}
	out := make([]SourceShard, p.sharded.ShardCount())
	for i := range out {
		ds := p.sharded.DurableShard(i)
		out[i] = SourceShard{Dir: ds.Dir(), Head: ds.AppliedLSN}
	}
	return out
}

// serve (re)publishes the primary's replication endpoints on a fresh
// listener.
func (p *testPrimary) serve() {
	p.src = &Source{
		Shards:    p.sourceShards(),
		Heartbeat: 5 * time.Millisecond,
		Poll:      time.Millisecond,
	}
	mux := http.NewServeMux()
	mux.Handle("/repl/v1/", http.StripPrefix("/repl/v1", p.src.Handler()))
	p.ts = httptest.NewServer(mux)
	src, ts := p.src, p.ts
	p.t.Cleanup(func() {
		src.Close()
		ts.Close()
	})
}

// stopServe simulates the primary's listener dying: streams end, the
// port stops answering.
func (p *testPrimary) stopServe() {
	p.src.Close()
	p.ts.Close()
}

func startPrimary(t testing.TB, shards int) *testPrimary {
	t.Helper()
	p := &testPrimary{t: t, dir: t.TempDir()}
	plat := newTestPlatform(t)
	var err error
	if shards <= 1 {
		p.durable, err = durable.Create(p.dir, plat, []byte(`{"repl":"test"}`), testOpts())
	} else {
		p.sharded, err = shard.Create(p.dir, plat, shards, []byte(`{"repl":"test"}`), testOpts())
	}
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if p.sharded != nil {
			p.sharded.Close()
		} else {
			p.durable.Close()
		}
	})
	p.serve()
	return p
}

func (p *testPrimary) transport() *HTTPTransport { return &HTTPTransport{Base: p.ts.URL} }

func followerOptions(dir string) Options {
	return Options{
		BackoffMin: 5 * time.Millisecond,
		BackoffMax: 50 * time.Millisecond,
		BatchMax:   64,
		StateDir:   dir,
		Primary:    "test-primary",
	}
}

// startFollower bootstraps dir from tr and starts tailing.
func startFollower(t testing.TB, tr Transport, dir string) (*Node, *Follower) {
	t.Helper()
	node, err := Bootstrap(context.Background(), tr, dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	f := NewFollower(node.Target, tr, followerOptions(dir))
	f.Start()
	return node, f
}

// waitCaughtUp blocks until the follower's applied LSNs reach heads.
func waitCaughtUp(t testing.TB, f *Follower, heads []uint64) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		ok := true
		for i, h := range heads {
			if f.target.AppliedLSN(i) < h {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			got := make([]uint64, len(heads))
			for i := range heads {
				got[i] = f.target.AppliedLSN(i)
			}
			t.Fatalf("follower never caught up: applied %v, want %v (err: %v)", got, heads, f.Err())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// underRLock runs fn holding the follower's read lock, so comparisons
// cannot race a concurrent apply.
func underRLock(f *Follower, fn func()) {
	f.Locker().RLock()
	defer f.Locker().RUnlock()
	fn()
}

func TestFollowerReplicatesDurable(t *testing.T) {
	pr := startPrimary(t, 1)
	mutate(t, pr.store(), 21, 300)

	fdir := t.TempDir()
	node, f := startFollower(t, pr.transport(), fdir)

	mutate(t, pr.store(), 22, 300)
	waitCaughtUp(t, f, pr.heads())
	underRLock(f, func() { compareStores(t, pr.store(), node.Store()) })

	if !f.ReadOnly() {
		t.Fatal("follower must be read-only before promotion")
	}
	if err := f.Err(); err != nil {
		t.Fatalf("follower error: %v", err)
	}

	// The follower keeps up with further writes.
	mutate(t, pr.store(), 23, 200)
	waitCaughtUp(t, f, pr.heads())
	underRLock(f, func() { compareStores(t, pr.store(), node.Store()) })

	// Staleness reflects recent heartbeats on a healthy stream.
	time.Sleep(30 * time.Millisecond)
	if lag := f.Staleness(); lag > 5*time.Second {
		t.Fatalf("staleness = %v on a healthy stream", lag)
	}

	// A clean restart resumes from the follower's own disk — no
	// re-seed, no divergence, same converged state.
	f.Stop()
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}
	mutate(t, pr.store(), 24, 150)
	node2, f2 := startFollower(t, pr.transport(), fdir)
	defer node2.Close()
	defer f2.Stop()
	waitCaughtUp(t, f2, pr.heads())
	underRLock(f2, func() { compareStores(t, pr.store(), node2.Store()) })

	// The position file was maintained for offline tooling.
	st, err := ReadState(fdir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Primary != "test-primary" || len(st.Shards) != 1 {
		t.Fatalf("state file: %+v", st)
	}
}

func TestFollowerReplicatesSharded(t *testing.T) {
	pr := startPrimary(t, 4)
	mutate(t, pr.store(), 31, 300)

	fdir := t.TempDir()
	node, f := startFollower(t, pr.transport(), fdir)
	if node.Shards != 4 {
		t.Fatalf("follower bootstrapped %d shards, want 4", node.Shards)
	}

	mutate(t, pr.store(), 32, 400)
	waitCaughtUp(t, f, pr.heads())
	underRLock(f, func() { compareStoresSharded(t, pr.store(), node.Store()) })

	// Restart and keep replicating.
	f.Stop()
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}
	mutate(t, pr.store(), 33, 200)
	node2, f2 := startFollower(t, pr.transport(), fdir)
	defer node2.Close()
	defer f2.Stop()
	waitCaughtUp(t, f2, pr.heads())
	underRLock(f2, func() { compareStoresSharded(t, pr.store(), node2.Store()) })
}

// rebindTransport lets a test swap the upstream URL, simulating a
// primary that restarts on a new listener.
type rebindTransport struct {
	mu    sync.Mutex
	inner Transport
}

func (r *rebindTransport) rebind(tr Transport) {
	r.mu.Lock()
	r.inner = tr
	r.mu.Unlock()
}

func (r *rebindTransport) cur() Transport {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inner
}

func (r *rebindTransport) Status(ctx context.Context) (Status, error) { return r.cur().Status(ctx) }
func (r *rebindTransport) Graph(ctx context.Context, s int) ([]byte, error) {
	return r.cur().Graph(ctx, s)
}
func (r *rebindTransport) Checkpoint(ctx context.Context, s int) ([]byte, uint64, error) {
	return r.cur().Checkpoint(ctx, s)
}
func (r *rebindTransport) Tail(ctx context.Context, s int, from uint64) (io.ReadCloser, error) {
	return r.cur().Tail(ctx, s, from)
}
func (r *rebindTransport) Promote(ctx context.Context) error { return r.cur().Promote(ctx) }

func TestFollowerSurvivesPrimaryRestart(t *testing.T) {
	pr := startPrimary(t, 1)
	mutate(t, pr.store(), 41, 200)

	tr := &rebindTransport{inner: pr.transport()}
	fdir := t.TempDir()
	node, f := startFollower(t, tr, fdir)
	defer node.Close()
	defer f.Stop()
	waitCaughtUp(t, f, pr.heads())

	// Primary "crashes": listener gone, store closed mid-flight. The
	// follower keeps serving its applied state and retries with
	// backoff.
	pr.stopServe()
	if err := pr.durable.Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	underRLock(f, func() {
		if node.Store().NumStories() == 0 {
			t.Fatal("follower lost its state during the outage")
		}
	})

	// Primary restarts from its own disk on a new port; the follower's
	// next retry resumes the stream from its applied LSN.
	var err error
	pr.durable, err = durable.Open(pr.dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	pr.serve()
	tr.rebind(pr.transport())
	mutate(t, pr.store(), 42, 200)
	waitCaughtUp(t, f, pr.heads())
	underRLock(f, func() { compareStores(t, pr.store(), node.Store()) })
	if err := f.Err(); err != nil {
		t.Fatalf("restart must not be fatal: %v", err)
	}
}

func TestTailBelowRetentionIsGone(t *testing.T) {
	pr := startPrimary(t, 1)
	mutate(t, pr.store(), 51, 300)
	// Checkpoint prunes the log below the head; LSN 0 is gone.
	if err := pr.durable.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	_, err := pr.transport().Tail(context.Background(), 0, 0)
	if !errors.Is(err, ErrSnapshotGone) {
		t.Fatalf("tail from 0 after prune: %v, want ErrSnapshotGone", err)
	}
	// A fresh bootstrap is unaffected: it seeds from the checkpoint and
	// tails from there.
	fdir := t.TempDir()
	node, f := startFollower(t, pr.transport(), fdir)
	defer node.Close()
	defer f.Stop()
	waitCaughtUp(t, f, pr.heads())
	underRLock(f, func() { compareStores(t, pr.store(), node.Store()) })
}

func TestStaleFollowerMustRebootstrap(t *testing.T) {
	pr := startPrimary(t, 1)
	mutate(t, pr.store(), 61, 200)

	fdir := t.TempDir()
	node, f := startFollower(t, pr.transport(), fdir)
	waitCaughtUp(t, f, pr.heads())
	f.Stop()
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}

	// While the follower is down the primary moves on AND prunes its
	// log past the follower's position.
	mutate(t, pr.store(), 62, 300)
	if err := pr.durable.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// The resumed follower's tail is below retention: fatal, surfaced
	// through Err. Reads keep working off the stale state.
	node2, f2 := startFollower(t, pr.transport(), fdir)
	deadline := time.Now().Add(10 * time.Second)
	for f2.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("follower never reported the fatal gap")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !errors.Is(f2.Err(), ErrSnapshotGone) {
		t.Fatalf("err = %v, want ErrSnapshotGone", f2.Err())
	}
	f2.Stop()
	if err := node2.Close(); err != nil {
		t.Fatal(err)
	}

	// The runbook: wipe and re-bootstrap.
	if err := os.RemoveAll(fdir); err != nil {
		t.Fatal(err)
	}
	node3, f3 := startFollower(t, pr.transport(), fdir)
	defer node3.Close()
	defer f3.Stop()
	waitCaughtUp(t, f3, pr.heads())
	underRLock(f3, func() { compareStores(t, pr.store(), node3.Store()) })
}

func TestDivergedFollowerIsWipedOnBootstrap(t *testing.T) {
	pr := startPrimary(t, 1)
	mutate(t, pr.store(), 71, 200)

	fdir := t.TempDir()
	node, f := startFollower(t, pr.transport(), fdir)
	waitCaughtUp(t, f, pr.heads())
	f.Stop()
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}

	// The ex-follower takes writes of its own (a split brain, a botched
	// manual promotion): its log is now ahead of the primary's.
	rogue, err := durable.Open(fdir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	mutate(t, rogue, 72, 50)
	if err := rogue.Close(); err != nil {
		t.Fatal(err)
	}

	// Asking the primary to tail past its head is a divergence error...
	_, err = pr.transport().Tail(context.Background(), 0, pr.heads()[0]+10)
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("tail past head: %v, want ErrDiverged", err)
	}

	// ...and Bootstrap detects it, wipes, and re-seeds from the
	// primary: the rogue history is gone, the primary's is authority.
	node2, f2 := startFollower(t, pr.transport(), fdir)
	defer node2.Close()
	defer f2.Stop()
	waitCaughtUp(t, f2, pr.heads())
	underRLock(f2, func() { compareStores(t, pr.store(), node2.Store()) })
}

func TestPromoteLiftsFenceAndAcceptsWrites(t *testing.T) {
	pr := startPrimary(t, 1)
	mutate(t, pr.store(), 81, 200)

	fdir := t.TempDir()
	node, f := startFollower(t, pr.transport(), fdir)
	waitCaughtUp(t, f, pr.heads())

	if err := f.Promote(); err != nil {
		t.Fatal(err)
	}
	if f.ReadOnly() {
		t.Fatal("promoted follower must not be read-only")
	}
	// The promoted node takes writes directly.
	before := node.Store().NumStories()
	if _, err := node.Store().Submit(5, "first-post-failover", 0.5, 999); err != nil {
		t.Fatal(err)
	}
	if got := node.Store().NumStories(); got != before+1 {
		t.Fatalf("stories after failover write: %d, want %d", got, before+1)
	}
	// And survives a restart as a normal primary store.
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := durable.Open(fdir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if got := reopened.NumStories(); got != before+1 {
		t.Fatalf("stories after reopen: %d, want %d", got, before+1)
	}
}

func TestPromoteSharded(t *testing.T) {
	pr := startPrimary(t, 3)
	mutate(t, pr.store(), 91, 300)

	fdir := t.TempDir()
	node, f := startFollower(t, pr.transport(), fdir)
	defer node.Close()
	waitCaughtUp(t, f, pr.heads())

	if err := f.Promote(); err != nil {
		t.Fatal(err)
	}
	underRLock(f, func() { compareStoresSharded(t, pr.store(), node.Store()) })
	if _, err := node.Store().Submit(5, "post-failover", 0.5, 999); err != nil {
		t.Fatal(err)
	}
}

// electableFollower runs a follower that also serves its own repl
// endpoints, so ElectAndPromote can rank and promote it.
func electableFollower(t testing.TB, tr Transport, dir string) (*Node, *Follower, *httptest.Server) {
	t.Helper()
	node, err := Bootstrap(context.Background(), tr, dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	f := NewFollower(node.Target, tr, followerOptions(dir))
	src := &Source{
		Shards: node.SourceShards(),
		Role: func() string {
			if f.ReadOnly() {
				return "follower"
			}
			return "primary"
		},
		Promote: f.Promote,
	}
	mux := http.NewServeMux()
	mux.Handle("/repl/v1/", http.StripPrefix("/repl/v1", src.Handler()))
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return node, f, ts
}

func TestElectAndPromotePicksHighestLSN(t *testing.T) {
	pr := startPrimary(t, 1)
	mutate(t, pr.store(), 101, 150)

	// Follower A bootstraps early and never tails: it is frozen at the
	// checkpoint LSN. Follower B replicates to the head.
	dirA, dirB := t.TempDir(), t.TempDir()
	nodeA, fA, tsA := electableFollower(t, pr.transport(), dirA)
	defer nodeA.Close()
	defer fA.Stop()

	mutate(t, pr.store(), 102, 200)
	nodeB, fB, tsB := electableFollower(t, pr.transport(), dirB)
	defer nodeB.Close()
	defer fB.Stop()
	fB.Start()
	waitCaughtUp(t, fB, pr.heads())

	if nodeA.Target.AppliedLSN(0) >= nodeB.Target.AppliedLSN(0) {
		t.Fatalf("test setup: A (%d) should be behind B (%d)",
			nodeA.Target.AppliedLSN(0), nodeB.Target.AppliedLSN(0))
	}

	winner, err := ElectAndPromote(context.Background(), []string{tsA.URL, tsB.URL})
	if err != nil {
		t.Fatal(err)
	}
	if winner != tsB.URL {
		t.Fatalf("elected %s, want %s (the higher LSN)", winner, tsB.URL)
	}
	if fB.ReadOnly() {
		t.Fatal("winner was not promoted")
	}
	if !fA.ReadOnly() {
		t.Fatal("loser must stay fenced")
	}

	// A second election is idempotent: the standing primary wins.
	winner2, err := ElectAndPromote(context.Background(), []string{tsA.URL, tsB.URL})
	if err != nil {
		t.Fatal(err)
	}
	if winner2 != tsB.URL {
		t.Fatalf("re-election picked %s, want %s", winner2, tsB.URL)
	}
}

func TestSourceStatusEndpoint(t *testing.T) {
	pr := startPrimary(t, 2)
	st, err := pr.transport().Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != "primary" || st.Shards != 2 || len(st.Applied) != 2 {
		t.Fatalf("status = %+v", st)
	}
	if got, want := st.Applied, pr.heads(); !reflect.DeepEqual(got, want) {
		t.Fatalf("applied = %v, want %v", got, want)
	}
	if st.TotalApplied() != st.Applied[0]+st.Applied[1] {
		t.Fatalf("total applied = %d", st.TotalApplied())
	}
}

func TestSeedReplicaRefusesExisting(t *testing.T) {
	pr := startPrimary(t, 1)
	ctx := context.Background()
	g, err := pr.transport().Graph(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	ck, _, err := pr.transport().Checkpoint(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "seed")
	if err := durable.SeedReplica(dir, g, ck); err != nil {
		t.Fatal(err)
	}
	if err := durable.SeedReplica(dir, g, ck); err == nil {
		t.Fatal("re-seeding an existing store must refuse")
	}
	// The seeded directory opens like any data directory.
	s, err := durable.Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.NumStories() != pr.store().NumStories() {
		t.Fatalf("seeded stories = %d, want %d", s.NumStories(), pr.store().NumStories())
	}
}
