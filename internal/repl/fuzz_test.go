package repl

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReplFrameDecode feeds arbitrary bytes through the frame decoder.
// The invariant under test: Next never panics, never fabricates a
// frame from damaged bytes (the CRC covers everything), and classifies
// every input as frames + clean EOF, a torn tail, or corruption.
func FuzzReplFrameDecode(f *testing.F) {
	valid := AppendRecordFrame(nil, 12, 2, []byte("hello repl"))
	valid = AppendHeartbeatFrame(valid, 13, 1_700_000_000_000_000_000)
	valid = AppendErrorFrame(valid, ErrCodeInternal, "boom")
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	f.Add(valid[:frameHeaderSize])
	flipped := append([]byte(nil), valid...)
	flipped[2] ^= 0xff // length corruption
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		frames := 0
		for {
			frame, err := fr.Next()
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return
			}
			if errors.Is(err, ErrFrameCorrupt) {
				return
			}
			if err != nil {
				t.Fatalf("unexpected error class: %v", err)
			}
			if frame.Kind < FrameRecord || frame.Kind > FrameError {
				t.Fatalf("decoded frame with kind %d", frame.Kind)
			}
			if frames++; frames > len(data)/frameHeaderSize+1 {
				t.Fatalf("decoded %d frames from %d bytes", frames, len(data))
			}
		}
	})
}
