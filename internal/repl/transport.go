package repl

// transport.go is how a follower reaches its primary: a small
// interface over the five replication endpoints, its production HTTP
// implementation, and the sentinel errors that drive the follower's
// reconnect-vs-rebootstrap decisions. The interface exists so the
// chaos harness can wedge a fault injector between follower and
// primary without either side knowing.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
)

// Status is the replication source's self-description, served at
// GET /repl/v1/status.
type Status struct {
	// Role is "primary" or "follower".
	Role string `json:"role"`
	// Shards is the store's shard count (1 for an unsharded store).
	Shards int `json:"shards"`
	// Applied holds each shard's applied LSN — the stream head.
	Applied []uint64 `json:"applied_lsns"`
	// Generation is the store's generation at the time of the call.
	Generation uint64 `json:"generation"`
}

// TotalApplied sums the per-shard applied LSNs — the comparison key
// failover elections rank candidates by.
func (st Status) TotalApplied() uint64 {
	var sum uint64
	for _, l := range st.Applied {
		sum += l
	}
	return sum
}

// ErrSnapshotGone reports that the LSN a tail asked for is below the
// source's oldest retained log record: the stream cannot resume and
// the follower must re-bootstrap from a fresh checkpoint.
var ErrSnapshotGone = errors.New("repl: requested lsn below the source's retained log")

// ErrDiverged reports that the local log is ahead of the source's —
// the node replicated from a primary whose history this source never
// had (typically a demoted primary with unreplicated tail records).
// The local directory must be wiped and re-bootstrapped.
var ErrDiverged = errors.New("repl: local log is ahead of the source (diverged)")

// Transport reaches a replication source.
type Transport interface {
	// Status fetches the source's role, shard count and head LSNs.
	Status(ctx context.Context) (Status, error)
	// Graph fetches shard i's raw social-graph blob.
	Graph(ctx context.Context, shard int) ([]byte, error)
	// Checkpoint fetches shard i's newest checkpoint blob and its LSN.
	Checkpoint(ctx context.Context, shard int) ([]byte, uint64, error)
	// Tail opens shard i's frame stream from LSN from. The stream ends
	// when the source closes it or ctx is canceled. Returns
	// ErrSnapshotGone if from is below the retained log and
	// ErrDiverged if from is past the source's head.
	Tail(ctx context.Context, shard int, from uint64) (io.ReadCloser, error)
	// Promote asks the source's node to promote itself to primary.
	Promote(ctx context.Context) error
}

// HTTPTransport is the production Transport: plain HTTP against a
// node's replication endpoints.
type HTTPTransport struct {
	// Base is the node's base URL, e.g. "http://10.0.0.2:8080".
	Base string
	// Client serves the short control calls (status, graph,
	// checkpoint, promote). Defaults to http.DefaultClient.
	Client *http.Client
	// StreamClient serves Tail. It must not carry an overall timeout —
	// a healthy stream is open forever. Defaults to a timeout-free
	// client.
	StreamClient *http.Client
}

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

var streamClient = &http.Client{}

func (t *HTTPTransport) streamer() *http.Client {
	if t.StreamClient != nil {
		return t.StreamClient
	}
	return streamClient
}

func (t *HTTPTransport) url(path string) string {
	return strings.TrimSuffix(t.Base, "/") + path
}

// get issues a GET and returns the response body on 200, translating
// everything else into an error.
func (t *HTTPTransport) get(ctx context.Context, path string) ([]byte, http.Header, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.url(path), nil)
	if err != nil {
		return nil, nil, err
	}
	resp, err := t.client().Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil, httpStatusErr(resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	return data, resp.Header, nil
}

func httpStatusErr(resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	switch resp.StatusCode {
	case http.StatusGone:
		return fmt.Errorf("%w: %s", ErrSnapshotGone, strings.TrimSpace(string(msg)))
	case http.StatusConflict:
		return fmt.Errorf("%w: %s", ErrDiverged, strings.TrimSpace(string(msg)))
	}
	return fmt.Errorf("repl: source returned %s: %s", resp.Status, strings.TrimSpace(string(msg)))
}

// Status implements Transport.
func (t *HTTPTransport) Status(ctx context.Context) (Status, error) {
	data, _, err := t.get(ctx, "/repl/v1/status")
	if err != nil {
		return Status{}, err
	}
	var st Status
	if err := json.Unmarshal(data, &st); err != nil {
		return Status{}, fmt.Errorf("repl: decoding status: %w", err)
	}
	return st, nil
}

// Graph implements Transport.
func (t *HTTPTransport) Graph(ctx context.Context, shard int) ([]byte, error) {
	data, _, err := t.get(ctx, "/repl/v1/graph/"+strconv.Itoa(shard))
	return data, err
}

// Checkpoint implements Transport.
func (t *HTTPTransport) Checkpoint(ctx context.Context, shard int) ([]byte, uint64, error) {
	data, hdr, err := t.get(ctx, "/repl/v1/checkpoint/"+strconv.Itoa(shard))
	if err != nil {
		return nil, 0, err
	}
	lsn, err := strconv.ParseUint(hdr.Get("X-Checkpoint-Lsn"), 10, 64)
	if err != nil {
		return nil, 0, fmt.Errorf("repl: checkpoint response missing X-Checkpoint-Lsn: %w", err)
	}
	return data, lsn, nil
}

// Tail implements Transport.
func (t *HTTPTransport) Tail(ctx context.Context, shard int, from uint64) (io.ReadCloser, error) {
	q := url.Values{"from": {strconv.FormatUint(from, 10)}}
	path := "/repl/v1/wal/" + strconv.Itoa(shard) + "?" + q.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.url(path), nil)
	if err != nil {
		return nil, err
	}
	resp, err := t.streamer().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, httpStatusErr(resp)
	}
	return resp.Body, nil
}

// Promote implements Transport.
func (t *HTTPTransport) Promote(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.url("/repl/v1/promote"), nil)
	if err != nil {
		return err
	}
	resp, err := t.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpStatusErr(resp)
	}
	return nil
}
