package live

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"diggsim/internal/agent"
	"diggsim/internal/dataset"
	"diggsim/internal/digg"
	"diggsim/internal/graph"
	"diggsim/internal/obs"
	"diggsim/internal/rng"
)

// histStep times each state-changing StepTo: the whole write-locked
// section plus the snapshot republish — the window during which the
// serving layer's locked fallbacks queue behind the writer. A tick
// whose step duration approaches the tick interval is the simulation
// falling behind.
var histStep = obs.Default.Histogram("diggsim_live_step_seconds", "",
	"Live simulation step duration (write-locked apply plus snapshot republish).")

// histStepFresh is the simulation's write→front-page-visible span:
// from the step's first write beginning to the rebuilt snapshot being
// published (afterStep). Together with source="http" (external
// writes) it makes every write path on the node answer "how stale is
// the front page?" with one family.
var histStepFresh = obs.Default.Histogram(obs.FreshnessFrontpageFamily, `source="step"`,
	"Write accepted to republished front-page snapshot visible, by write source.")

// Config parameterizes a live service. The zero value of every field
// falls back to a sensible default in NewService.
type Config struct {
	// Speedup is how many simulation minutes elapse per wall-clock
	// minute (default 600: a sim-day every 2.4 wall-minutes).
	Speedup float64
	// SubmissionsPerHour is the mean Poisson rate of new story
	// submissions per simulation hour (default 60).
	SubmissionsPerHour float64
	// Tick is the wall-clock stepping interval (default 200ms). Each
	// tick advances the simulation to the clock-mapped sim time.
	Tick time.Duration
	// Seed drives submitter/interest draws and every live story's vote
	// stream (default 1).
	Seed uint64
	// StartAt is the simulation minute the service starts from —
	// typically the pregenerated corpus's snapshot instant so the live
	// run continues the corpus's timeline.
	StartAt digg.Minutes
	// Agent is the behaviour model (agent.NewConfig() when zero).
	Agent agent.Config
	// SubmitterZipfS is the Zipf exponent of submitter activity over
	// users ranked by fan count (default 0.7, the corpus calibration).
	SubmitterZipfS float64
	// InterestExponent shapes intrinsic interest, U(0,1)^exponent
	// (default 3, the corpus calibration).
	InterestExponent float64
	// SubscriberBuffer is the capacity of the shared broadcast ring
	// events fan out through (DefaultBusCapacity when zero): how far
	// the slowest subscriber may fall behind before it loses events.
	SubscriberBuffer int
	// TopUserListSize bounds the reputation list in exported datasets
	// (default 1020, the paper's snapshot size).
	TopUserListSize int
}

func (c Config) withDefaults() Config {
	if c.Speedup <= 0 {
		c.Speedup = 600
	}
	if c.SubmissionsPerHour <= 0 {
		c.SubmissionsPerHour = 60
	}
	if c.Tick <= 0 {
		c.Tick = 200 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Agent == (agent.Config{}) {
		c.Agent = agent.NewConfig()
	}
	if c.SubmitterZipfS <= 0 {
		c.SubmitterZipfS = 0.7
	}
	if c.InterestExponent <= 0 {
		c.InterestExponent = 3
	}
	if c.TopUserListSize <= 0 {
		c.TopUserListSize = 1020
	}
	return c
}

// Service drives a digg.Platform in real time: wall-clock ticks map to
// simulation minutes through a Clock, due story submissions arrive as
// a Poisson process over the calibrated submitter mix, and an
// agent.Stepper advances every live story's pending votes up to the
// current sim minute. All platform mutation happens under the
// service's RWMutex, which the HTTP serving layer shares (read
// handlers take the read lock), so heavy concurrent scraping proceeds
// against a site that is genuinely changing underneath it.
type Service struct {
	cfg Config
	bus *Bus

	// mu guards the platform, stepper and submission sampler. HTTP
	// read handlers share it through Locker().
	mu       sync.RWMutex
	platform digg.Store
	// batcher is the store's optional batch-grouping capability: when
	// present (a durable store), each step's whole command burst —
	// submissions, votes, compactions — commits as one write-ahead
	// append and one fsync instead of one per command.
	batcher digg.Batcher
	stepper *agent.Stepper
	rng     *rng.RNG
	zipf    *rng.Zipf
	byFans  []digg.UserID
	// nextArrival is the continuous sim-time of the next scheduled
	// submission.
	nextArrival float64
	// scratch collects engine vote events each step, reused across
	// steps.
	scratch []agent.VoteEvent

	simNow     atomic.Int64
	submits    atomic.Uint64
	diggs      atomic.Uint64
	promotions atomic.Uint64
	// Atomic mirrors of the platform/stepper gauges, refreshed at the
	// end of every step so Stats never needs the platform lock.
	totalStories    atomic.Int64
	promotedStories atomic.Int64
	activeStories   atomic.Int64

	// afterStep, when set, runs after every state-changing StepTo with
	// the platform lock released — the serving layer's hook for
	// republishing its lock-free read snapshot.
	afterStep func()
}

// NewService wraps a digg.Store (typically a *digg.Platform carrying a
// pregenerated corpus) in a live service. The store must not be
// mutated by anyone else except through the service's lock.
func NewService(p digg.Store, cfg Config) (*Service, error) {
	if p == nil {
		return nil, errors.New("live: nil platform")
	}
	cfg = cfg.withDefaults()
	if err := cfg.Agent.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)
	stepper, err := agent.NewStepper(p, cfg.Agent, r.Split())
	if err != nil {
		return nil, err
	}
	s := &Service{
		cfg:      cfg,
		bus:      NewBus(cfg.SubscriberBuffer),
		platform: p,
		stepper:  stepper,
		rng:      r,
		byFans:   graph.TopByInDegree(p.SocialGraph(), p.SocialGraph().NumNodes()),
	}
	s.batcher, _ = p.(digg.Batcher)
	s.zipf = rng.NewZipf(r, len(s.byFans), cfg.SubmitterZipfS)
	s.nextArrival = float64(cfg.StartAt) + r.ExpGap(cfg.SubmissionsPerHour/60)
	s.simNow.Store(int64(cfg.StartAt))
	s.totalStories.Store(int64(p.NumStories()))
	s.promotedStories.Store(int64(p.PromotedCount()))
	s.activeStories.Store(int64(stepper.Active()))
	return s, nil
}

// SetAfterStep registers a hook invoked after every state-changing
// StepTo, once the platform lock has been released. The serving layer
// uses it to republish its read snapshot. Call before Run.
func (s *Service) SetAfterStep(fn func()) { s.afterStep = fn }

// Locker exposes the platform lock so the HTTP serving layer can
// interleave read handlers (read lock) with the simulation writer
// (write lock).
func (s *Service) Locker() *sync.RWMutex { return &s.mu }

// Bus returns the event bus for subscribing to the live stream.
func (s *Service) Bus() *Bus { return s.bus }

// Now returns the current simulation minute. It is lock-free, so
// handlers may call it while holding either side of the lock.
func (s *Service) Now() digg.Minutes { return digg.Minutes(s.simNow.Load()) }

// Run drives the service until ctx is cancelled, anchoring the sim
// clock at the current wall time, then stepping on the configured
// tick. It returns nil on cancellation and the first stepping error
// otherwise.
func (s *Service) Run(ctx context.Context) error {
	clock := NewClock(time.Now(), s.cfg.StartAt, s.cfg.Speedup)
	ticker := time.NewTicker(s.cfg.Tick)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case now := <-ticker.C:
			if err := s.StepTo(clock.Now(now)); err != nil {
				return err
			}
		}
	}
}

// StepTo advances the simulation to simNow: due submissions are
// injected (Poisson arrivals over the Zipf submitter mix), then every
// pending engine event at or before simNow lands on the platform.
// Events are published to the bus after the platform lock is released,
// so subscribers never delay readers or the writer. StepTo is the
// deterministic test seam — Run merely calls it on a ticker — and is
// a no-op when simNow is not ahead of the current sim time.
//
// When the store supports batch grouping (digg.Batcher — the durable
// store does), the step's whole command burst is bracketed in one
// batch, so a tick costs one write-ahead append and one fsync no
// matter how many votes land in it.
func (s *Service) StepTo(simNow digg.Minutes) error {
	if simNow <= s.Now() {
		return nil
	}
	var out []Event

	stepStart := time.Now()
	s.mu.Lock()
	if s.batcher != nil {
		s.batcher.BeginBatch()
	}
	err := s.stepLocked(simNow, &out)
	if s.batcher != nil {
		if berr := s.batcher.EndBatch(); err == nil {
			err = berr
		}
	}
	s.mu.Unlock()

	if s.afterStep != nil {
		s.afterStep()
		// Only a republishing step makes writes visible; without
		// afterStep there is no front page to be fresh on.
		if len(out) > 0 {
			histStepFresh.Observe(time.Since(stepStart))
		}
	}
	histStep.Observe(time.Since(stepStart))
	for _, ev := range out {
		s.bus.Publish(ev)
	}
	return err
}

// stepLocked is StepTo's body; the caller holds the write lock (and
// the durability batch, if any) around it.
func (s *Service) stepLocked(simNow digg.Minutes, outp *[]Event) error {
	out := *outp
	defer func() { *outp = out }()
	rate := s.cfg.SubmissionsPerHour / 60
	for s.nextArrival <= float64(simNow) {
		at := digg.Minutes(s.nextArrival)
		submitter := s.byFans[s.zipf.Draw()-1]
		interest := math.Pow(s.rng.Float64(), s.cfg.InterestExponent)
		title := fmt.Sprintf("live-story-%d", s.platform.NumStories())
		st, err := s.stepper.StartStory(submitter, title, interest, at)
		if err != nil {
			return err
		}
		s.submits.Add(1)
		out = append(out, Event{
			Type: EventSubmit, At: int64(at), Story: st.ID,
			User: submitter, Title: st.Title, Votes: 1,
		})
		s.nextArrival += s.rng.ExpGap(rate)
	}

	s.scratch = s.scratch[:0]
	err := s.stepper.Advance(simNow, &s.scratch)
	for _, ve := range s.scratch {
		s.diggs.Add(1)
		out = append(out, Event{
			Type: EventDigg, At: int64(ve.At), Story: ve.Story,
			User: ve.Voter, InNetwork: ve.InNetwork, Votes: ve.VoteCount,
		})
		if !ve.Promoted {
			continue
		}
		s.promotions.Add(1)
		st, stErr := s.platform.Story(ve.Story)
		if stErr != nil {
			continue // unreachable: the vote just landed on it
		}
		out = append(out, Event{
			Type: EventPromote, At: int64(ve.At), Story: st.ID,
			User: st.Submitter, Title: st.Title, Votes: ve.VoteCount,
		})
		out = append(out, Event{
			Type: EventRankChange, At: int64(ve.At), Story: st.ID,
			User: st.Submitter, Rank: s.platform.UserRank(st.Submitter),
		})
	}
	s.simNow.Store(int64(simNow))
	s.totalStories.Store(int64(s.platform.NumStories()))
	s.promotedStories.Store(int64(s.platform.PromotedCount()))
	s.activeStories.Store(int64(s.stepper.Active()))
	return err
}

// Stats snapshots the service counters. It is entirely lock-free: the
// platform gauges are atomic mirrors refreshed each step, so /api/stats
// scrapes never contend with the simulation writer or readers.
func (s *Service) Stats() Stats {
	bs := s.bus.Stats()
	return Stats{
		SimNow:             s.simNow.Load(),
		Speedup:            s.cfg.Speedup,
		ActiveStories:      int(s.activeStories.Load()),
		TotalStories:       int(s.totalStories.Load()),
		PromotedStories:    int(s.promotedStories.Load()),
		Submits:            s.submits.Load(),
		Diggs:              s.diggs.Load(),
		Promotions:         s.promotions.Load(),
		Subscribers:        bs.Subscribers,
		EventsPublished:    bs.Published,
		EventsDropped:      bs.Dropped,
		MaxSubscriberQueue: bs.MaxQueued,
	}
}

// Export flushes the live run to an analyzable dataset, snapshotting
// the front-page and upcoming-queue samples as of the current sim
// minute — the graceful-shutdown hook that turns a live session into
// the same artifact a batch generation or a scrape produces.
func (s *Service) Export() *dataset.Dataset {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return dataset.FromPlatform(s.platform, s.Now(), s.cfg.TopUserListSize)
}
