// Package live turns the simulated Digg platform into a running
// service: a real-time clock maps wall time to simulation minutes with
// a configurable speedup, a Poisson submission schedule keeps new
// stories arriving over the calibrated submitter mix, and the
// event-driven engine (agent.Stepper) advances every live story's
// pending exposures and discovery votes each tick — so the site
// evolves while it is being read, the defining property of the
// platform Lerman & Galstyan scraped. Typed events (submit, digg,
// promote, rank-change) fan out through a bounded Bus that slow
// subscribers cannot stall, and the whole run can be flushed to a
// dataset.Dataset on shutdown.
package live

import "diggsim/internal/digg"

// EventType tags a platform occurrence on the event stream.
type EventType string

const (
	// EventSubmit is a new story entering the upcoming queue.
	EventSubmit EventType = "submit"
	// EventDigg is one vote landing on a story.
	EventDigg EventType = "digg"
	// EventPromote is a story moving to the front page.
	EventPromote EventType = "promote"
	// EventRankChange is a submitter's reputation rank changing because
	// one of their stories was promoted.
	EventRankChange EventType = "rank_change"
	// EventLag is synthesized per-subscriber (never published on the
	// bus) when ring-buffer overflow dropped events for that
	// subscriber; Dropped carries how many.
	EventLag EventType = "lag"
)

// Event is one typed occurrence on a live platform. Seq is a bus-wide
// monotone sequence number assigned at publish time; At is the
// simulation minute the occurrence is stamped with.
type Event struct {
	Seq   uint64       `json:"seq,omitempty"`
	Type  EventType    `json:"type"`
	At    int64        `json:"at"`
	Story digg.StoryID `json:"story,omitempty"`
	User  digg.UserID  `json:"user,omitempty"`
	// Title is set on submit and promote events.
	Title string `json:"title,omitempty"`
	// Votes is the story's running vote count including this event's
	// vote: 1 on submit, the promoting vote's count on promote.
	Votes int `json:"votes,omitempty"`
	// InNetwork marks digg events that arrived through the Friends
	// interface.
	InNetwork bool `json:"in_network,omitempty"`
	// Rank is the submitter's new 1-based reputation rank on
	// rank_change events.
	Rank int `json:"rank,omitempty"`
	// Dropped is the number of events lost to ring-buffer overflow on
	// lag events.
	Dropped uint64 `json:"dropped,omitempty"`
	// PubNano is the monotonic instant (obs.Now) Bus.Publish stamped
	// the event at — the start of the publish→SSE-delivered freshness
	// span. Process-local, so it never goes on the wire.
	PubNano int64 `json:"-"`
}

// Stats is a point-in-time snapshot of a live service, served by the
// HTTP API's /api/stats endpoint.
type Stats struct {
	// SimNow is the current simulation minute.
	SimNow int64 `json:"sim_now"`
	// Speedup is the configured sim-minutes-per-wall-minute factor.
	Speedup float64 `json:"speedup"`
	// ActiveStories is the number of stories still being stepped.
	ActiveStories int `json:"active_stories"`
	// TotalStories counts every story on the platform, including the
	// pregenerated corpus.
	TotalStories int `json:"total_stories"`
	// PromotedStories counts front-page stories platform-wide.
	PromotedStories int `json:"promoted_stories"`
	// Submits/Diggs/Promotions count live activity since the service
	// started (the pregenerated corpus is excluded).
	Submits    uint64 `json:"submits"`
	Diggs      uint64 `json:"diggs"`
	Promotions uint64 `json:"promotions"`
	// Subscribers is the number of open event-stream subscriptions;
	// EventsPublished and EventsDropped are bus-lifetime totals, and
	// MaxSubscriberQueue is the deepest per-subscriber backlog right
	// now (lag accounting).
	Subscribers        int    `json:"subscribers"`
	EventsPublished    uint64 `json:"events_published"`
	EventsDropped      uint64 `json:"events_dropped"`
	MaxSubscriberQueue int    `json:"max_subscriber_queue"`
}
