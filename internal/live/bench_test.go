package live

import (
	"testing"

	"diggsim/internal/agent"
	"diggsim/internal/digg"
	"diggsim/internal/graph"
	"diggsim/internal/rng"
)

// BenchmarkLiveStep measures the steady-state cost of advancing the
// live simulation by one sim-minute with a realistic set of stories in
// flight (Poisson submissions, every engine peeked each step, due
// votes landing on the shared platform). This is the writer-side
// budget of a live server: everything here happens under the write
// lock that HTTP readers wait behind.
func BenchmarkLiveStep(b *testing.B) {
	g, err := graph.PreferentialAttachment(rng.New(1), 3000, 4, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	p := digg.NewPlatform(g, &digg.ClassicPromotion{VoteThreshold: 20, Window: digg.Day})
	ac := agent.NewConfig()
	ac.Horizon = 12 * 60 // bound the in-flight story set
	ac.QueueLifetime = 12 * 60
	svc, err := NewService(p, Config{
		Seed:               2,
		SubmissionsPerHour: 60,
		StartAt:            0,
		Agent:              ac,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Warm up to a steady in-flight population (one horizon's worth).
	now := digg.Minutes(0)
	for ; now < 12*60; now++ {
		if err := svc.StepTo(now); err != nil {
			b.Fatal(err)
		}
	}
	warmupDiggs := svc.Stats().Diggs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now++
		if err := svc.StepTo(now); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := svc.Stats()
	b.ReportMetric(float64(st.Diggs-warmupDiggs)/float64(b.N), "votes/op")
	b.ReportMetric(float64(st.ActiveStories), "live-stories")
}
