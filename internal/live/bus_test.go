package live

import (
	"sync"
	"testing"
)

func TestBusFanOut(t *testing.T) {
	b := NewBus()
	a := b.Subscribe(8)
	c := b.Subscribe(8)
	defer a.Close()
	defer c.Close()

	for i := 0; i < 3; i++ {
		b.Publish(Event{Type: EventDigg, At: int64(i)})
	}
	for name, sub := range map[string]*Subscriber{"a": a, "c": c} {
		evs, dropped := sub.Drain()
		if dropped != 0 {
			t.Errorf("%s: dropped = %d", name, dropped)
		}
		if len(evs) != 3 {
			t.Fatalf("%s: got %d events", name, len(evs))
		}
		for i, ev := range evs {
			if ev.Seq != uint64(i+1) || ev.At != int64(i) {
				t.Errorf("%s: event %d = %+v", name, i, ev)
			}
		}
	}
}

func TestBusDropOldestAndLag(t *testing.T) {
	b := NewBus()
	s := b.Subscribe(4)
	defer s.Close()

	for i := 0; i < 10; i++ {
		b.Publish(Event{At: int64(i)})
	}
	evs, dropped := s.Drain()
	if dropped != 6 {
		t.Errorf("dropped = %d, want 6", dropped)
	}
	if len(evs) != 4 {
		t.Fatalf("buffered = %d, want 4", len(evs))
	}
	// Drop-oldest: the survivors are the newest four, in order.
	for i, ev := range evs {
		if ev.At != int64(6+i) {
			t.Errorf("event %d At = %d, want %d", i, ev.At, 6+i)
		}
	}
	if s.Lag() != 6 {
		t.Errorf("Lag() = %d, want 6", s.Lag())
	}
	// Drain resets the per-drain drop counter but not lifetime lag.
	if _, d := s.Drain(); d != 0 {
		t.Errorf("second drain dropped = %d", d)
	}
	st := b.Stats()
	if st.Subscribers != 1 || st.Published != 10 || st.Dropped != 6 {
		t.Errorf("bus stats = %+v", st)
	}
}

func TestBusCloseStopsDelivery(t *testing.T) {
	b := NewBus()
	s := b.Subscribe(4)
	b.Publish(Event{At: 1})
	s.Close()
	b.Publish(Event{At: 2})
	evs, _ := s.Drain()
	if len(evs) != 1 || evs[0].At != 1 {
		t.Errorf("post-close events = %+v", evs)
	}
	if n := b.Stats().Subscribers; n != 0 {
		t.Errorf("subscribers after close = %d", n)
	}
	s.Close() // idempotent
}

// TestBusConcurrent hammers publish/drain/subscribe/close from many
// goroutines; run under -race this is the bus's memory-safety test.
func TestBusConcurrent(t *testing.T) {
	b := NewBus()
	const publishers, events = 4, 500
	// Subscribe before any publish so every subscriber is guaranteed to
	// observe traffic (possibly with drops, which is fine).
	subs := make([]*Subscriber, 3)
	for i := range subs {
		subs[i] = b.Subscribe(32)
	}
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < events; i++ {
				b.Publish(Event{Type: EventDigg, At: int64(i)})
			}
		}()
	}
	var seen int
	var mu sync.Mutex
	for _, s := range subs {
		wg.Add(1)
		go func(s *Subscriber) {
			defer wg.Done()
			defer s.Close()
			for {
				evs, _ := s.Drain()
				mu.Lock()
				seen += len(evs)
				mu.Unlock()
				if b.Stats().Published == publishers*events && len(evs) == 0 {
					return
				}
			}
		}(s)
	}
	wg.Wait()
	if got := b.Stats().Published; got != publishers*events {
		t.Errorf("published = %d, want %d", got, publishers*events)
	}
	if seen == 0 {
		t.Error("no events observed by any subscriber")
	}
}
