package live

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBusFanOut(t *testing.T) {
	b := NewBus(8)
	a := b.Subscribe()
	c := b.Subscribe()
	defer a.Close()
	defer c.Close()

	for i := 0; i < 3; i++ {
		b.Publish(Event{Type: EventDigg, At: int64(i)})
	}
	for name, sub := range map[string]*Subscriber{"a": a, "c": c} {
		evs, dropped := sub.Drain()
		if dropped != 0 {
			t.Errorf("%s: dropped = %d", name, dropped)
		}
		if len(evs) != 3 {
			t.Fatalf("%s: got %d events", name, len(evs))
		}
		for i, ev := range evs {
			if ev.Seq != uint64(i+1) || ev.At != int64(i) {
				t.Errorf("%s: event %d = %+v", name, i, ev)
			}
		}
	}
}

func TestBusDropOldestAndLag(t *testing.T) {
	b := NewBus(4)
	s := b.Subscribe()
	defer s.Close()

	for i := 0; i < 10; i++ {
		b.Publish(Event{At: int64(i)})
	}
	evs, dropped := s.Drain()
	if dropped != 6 {
		t.Errorf("dropped = %d, want 6", dropped)
	}
	if len(evs) != 4 {
		t.Fatalf("buffered = %d, want 4", len(evs))
	}
	// Drop-oldest: the survivors are the newest four, in order.
	for i, ev := range evs {
		if ev.At != int64(6+i) {
			t.Errorf("event %d At = %d, want %d", i, ev.At, 6+i)
		}
	}
	if s.Lag() != 6 {
		t.Errorf("Lag() = %d, want 6", s.Lag())
	}
	// Drain reports drops once; a second drain has nothing new.
	if _, d := s.Drain(); d != 0 {
		t.Errorf("second drain dropped = %d", d)
	}
	st := b.Stats()
	if st.Subscribers != 1 || st.Published != 10 || st.Dropped != 6 {
		t.Errorf("bus stats = %+v", st)
	}
}

// TestBusStatsCountsUnobservedLag checks Stats accounts backlog beyond
// the ring as dropped even before the lagging subscriber drains.
func TestBusStatsCountsUnobservedLag(t *testing.T) {
	b := NewBus(4)
	s := b.Subscribe()
	defer s.Close()
	for i := 0; i < 7; i++ {
		b.Publish(Event{At: int64(i)})
	}
	st := b.Stats()
	if st.Dropped != 3 {
		t.Errorf("Stats Dropped = %d, want 3 (unobserved lag)", st.Dropped)
	}
	if st.MaxQueued != 4 {
		t.Errorf("MaxQueued = %d, want 4 (capped at ring capacity)", st.MaxQueued)
	}
}

func TestBusCloseStopsDelivery(t *testing.T) {
	b := NewBus(4)
	s := b.Subscribe()
	b.Publish(Event{At: 1})
	s.Close()
	b.Publish(Event{At: 2})
	evs, _ := s.Drain()
	if len(evs) != 1 || evs[0].At != 1 {
		t.Errorf("post-close events = %+v", evs)
	}
	if n := b.Stats().Subscribers; n != 0 {
		t.Errorf("subscribers after close = %d", n)
	}
	s.Close() // idempotent
}

func TestBusSubscribeFrom(t *testing.T) {
	b := NewBus(8)
	for i := 0; i < 5; i++ {
		b.Publish(Event{At: int64(i)})
	}
	// Resume from the middle: events 3..5 replay from the ring.
	s := b.SubscribeFrom(2)
	evs, dropped := s.Drain()
	if dropped != 0 || len(evs) != 3 || evs[0].Seq != 3 {
		t.Fatalf("resume drain = %d events, %d dropped (%+v)", len(evs), dropped, evs)
	}
	s.Close()

	// Resume from before the ring's retention: the gap is exact lag.
	for i := 5; i < 20; i++ {
		b.Publish(Event{At: int64(i)})
	}
	s = b.SubscribeFrom(2)
	evs, dropped = s.Drain()
	if dropped != 10 { // events 3..12 overwritten (head 20, cap 8)
		t.Errorf("overwritten resume dropped = %d, want 10", dropped)
	}
	if len(evs) != 8 || evs[0].Seq != 13 {
		t.Errorf("overwritten resume delivered %d events from seq %d", len(evs), evs[0].Seq)
	}
	s.Close()

	// Resuming from the future clamps to the head: nothing replays.
	s = b.SubscribeFrom(999)
	if evs, _ := s.Drain(); len(evs) != 0 {
		t.Errorf("future resume delivered %d events", len(evs))
	}
	s.Close()
}

// TestBusReadyWakesSubscriber checks the drain-then-wait loop sees a
// publish that lands at any point relative to Ready.
func TestBusReadyWakesSubscriber(t *testing.T) {
	b := NewBus(8)
	s := b.Subscribe()
	defer s.Close()

	// Publish racing ahead of Ready: the returned channel must already
	// be (or promptly become) selectable.
	b.Publish(Event{At: 1})
	select {
	case <-s.Ready():
	case <-time.After(5 * time.Second):
		t.Fatal("Ready did not fire for a pre-existing event")
	}
	if evs, _ := s.Drain(); len(evs) != 1 {
		t.Fatalf("drained %d events", len(evs))
	}

	// Publish after the subscriber parks.
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-s.Ready():
		case <-time.After(5 * time.Second):
			t.Error("Ready did not fire for a later publish")
		}
	}()
	time.Sleep(10 * time.Millisecond)
	b.Publish(Event{At: 2})
	<-done
}

// TestBusStressNoDupNoSkip is the broadcast ring's -race gate: one
// publisher vs. many draining subscribers plus a churn of
// subscribe/close, asserting per-subscriber that sequence numbers are
// strictly increasing (no dup, no reorder) and that delivered + lagged
// exactly covers the published range (no silent skip).
func TestBusStressNoDupNoSkip(t *testing.T) {
	const (
		events   = 20000
		stable   = 8
		churners = 1000
	)
	b := NewBus(64) // small ring so overwrite/lag paths are exercised hard

	var wg sync.WaitGroup

	// Stable subscribers: subscribe before publishing starts, so
	// delivered + lag must equal the full published count.
	for i := 0; i < stable; i++ {
		s := b.Subscribe()
		wg.Add(1)
		go func(s *Subscriber) {
			defer wg.Done()
			defer s.Close()
			var last uint64
			var delivered uint64
			for {
				evs, _ := s.Drain()
				for _, ev := range evs {
					if ev.Seq <= last {
						t.Errorf("sequence regressed: %d after %d", ev.Seq, last)
						return
					}
					last = ev.Seq
					delivered++
				}
				if delivered+s.Lag() == uint64(events) {
					return
				}
				select {
				case <-s.Ready():
				case <-time.After(10 * time.Second):
					t.Errorf("stable subscriber stalled at seq %d (delivered %d, lag %d)",
						last, delivered, s.Lag())
					return
				}
			}
		}(s)
	}

	// Churners: subscribe, drain once, close — the registry and
	// close-freeze paths under load.
	var churned atomic.Int64
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < churners/4; n++ {
				s := b.Subscribe()
				evs, _ := s.Drain()
				var last uint64
				for _, ev := range evs {
					if ev.Seq <= last {
						t.Errorf("churner: sequence regressed: %d after %d", ev.Seq, last)
					}
					last = ev.Seq
				}
				s.Close()
				churned.Add(1)
			}
		}()
	}

	for i := 1; i <= events; i++ {
		b.Publish(Event{Type: EventDigg, At: int64(i)})
	}
	wg.Wait()

	st := b.Stats()
	if st.Published != events {
		t.Errorf("published = %d, want %d", st.Published, events)
	}
	if churned.Load() != churners {
		t.Errorf("churned = %d, want %d", churned.Load(), churners)
	}
}

// TestBusConcurrent hammers publish/drain/subscribe/close from many
// goroutines; run under -race this is the bus's memory-safety test.
func TestBusConcurrent(t *testing.T) {
	b := NewBus(32)
	const publishers, events = 4, 500
	subs := make([]*Subscriber, 3)
	for i := range subs {
		subs[i] = b.Subscribe()
	}
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < events; i++ {
				b.Publish(Event{Type: EventDigg, At: int64(i)})
			}
		}()
	}
	var seen int
	var mu sync.Mutex
	for _, s := range subs {
		wg.Add(1)
		go func(s *Subscriber) {
			defer wg.Done()
			defer s.Close()
			for {
				evs, _ := s.Drain()
				mu.Lock()
				seen += len(evs)
				mu.Unlock()
				if b.Stats().Published == publishers*events && len(evs) == 0 {
					return
				}
			}
		}(s)
	}
	wg.Wait()
	if got := b.Stats().Published; got != publishers*events {
		t.Errorf("published = %d, want %d", got, publishers*events)
	}
	if seen == 0 {
		t.Error("no events observed by any subscriber")
	}
}

// BenchmarkBusPublish pins the tentpole property: publish cost must be
// independent of the subscriber count. Each case registers N
// subscribers (idle, as a fan-out of slow SSE clients would be) and
// measures the publisher alone; ns/op flat from 100 to 100k
// subscribers is the acceptance bar for the 100k-stream fan-out.
func BenchmarkBusPublish(b *testing.B) {
	for _, n := range []int{100, 10_000, 100_000} {
		b.Run(fmt.Sprintf("subs=%d", n), func(b *testing.B) {
			bus := NewBus(4096)
			subs := make([]*Subscriber, n)
			for i := range subs {
				subs[i] = bus.Subscribe()
			}
			defer func() {
				for _, s := range subs {
					s.Close()
				}
			}()
			ev := Event{Type: EventDigg, At: 1, Story: 7, User: 42, Votes: 3}
			// Clear the GC debt from allocating N subscribers so the
			// measured window prices publish, not setup.
			runtime.GC()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bus.Publish(ev)
			}
		})
	}
}
