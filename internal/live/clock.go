package live

import (
	"time"

	"diggsim/internal/digg"
)

// Clock maps wall-clock time to simulation minutes: Speedup simulation
// minutes elapse per wall-clock minute, starting from base sim-time at
// the wall start instant. The paper's corpus evolved over days of real
// time; a speedup of 600 replays a sim-day in 2.4 wall-minutes, fast
// enough to watch stories climb out of the upcoming queue during a
// single scraping session.
//
// A Clock is immutable and safe for concurrent use.
type Clock struct {
	start   time.Time
	base    digg.Minutes
	speedup float64
}

// NewClock anchors sim-time base at wall instant start, advancing at
// speedup sim-minutes per wall-minute (values <= 0 fall back to 1).
func NewClock(start time.Time, base digg.Minutes, speedup float64) *Clock {
	if speedup <= 0 {
		speedup = 1
	}
	return &Clock{start: start, base: base, speedup: speedup}
}

// Now returns the simulation minute corresponding to wall. Instants
// before the anchor clamp to the base, so the sim clock never runs
// backwards.
func (c *Clock) Now(wall time.Time) digg.Minutes {
	if !wall.After(c.start) {
		return c.base
	}
	return c.base + digg.Minutes(wall.Sub(c.start).Minutes()*c.speedup)
}

// Speedup returns the sim-minutes-per-wall-minute factor.
func (c *Clock) Speedup() float64 { return c.speedup }
