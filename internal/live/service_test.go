package live

import (
	"context"
	"testing"
	"time"

	"diggsim/internal/digg"
	"diggsim/internal/graph"
	"diggsim/internal/rng"
)

func testPlatform(t *testing.T) *digg.Platform {
	t.Helper()
	g, err := graph.PreferentialAttachment(rng.New(11), 2000, 4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	return digg.NewPlatform(g, &digg.ClassicPromotion{VoteThreshold: 8, Window: digg.Day})
}

func testService(t *testing.T, p *digg.Platform) *Service {
	t.Helper()
	svc, err := NewService(p, Config{
		Seed:               5,
		SubmissionsPerHour: 30,
		StartAt:            100,
	})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// TestServiceStepTo drives the service deterministically through the
// test seam and checks the full event pipeline: Poisson submissions
// arrive, votes land, promotions fire, and every event reaches a bus
// subscriber in sequence order with consistent payloads.
func TestServiceStepTo(t *testing.T) {
	p := testPlatform(t)
	svc := testService(t, p)
	sub := svc.Bus().Subscribe()
	defer sub.Close()

	var events []Event
	for now := digg.Minutes(100); now <= 100+2*digg.Day; now += 15 {
		if err := svc.StepTo(now); err != nil {
			t.Fatal(err)
		}
		evs, dropped := sub.Drain()
		if dropped != 0 {
			t.Fatalf("subscriber lagged: %d", dropped)
		}
		events = append(events, evs...)
	}

	st := svc.Stats()
	if st.Submits == 0 || st.Diggs == 0 {
		t.Fatalf("no live activity: %+v", st)
	}
	if st.Promotions == 0 {
		t.Fatalf("no promotions after two sim-days at threshold 8: %+v", st)
	}
	if st.SimNow != int64(100+2*digg.Day) {
		t.Errorf("SimNow = %d", st.SimNow)
	}
	if svc.Now() != digg.Minutes(st.SimNow) {
		t.Errorf("Now() = %d disagrees with stats %d", svc.Now(), st.SimNow)
	}

	var submits, diggs, promotes, ranks int
	var lastSeq uint64
	for _, ev := range events {
		if ev.Seq <= lastSeq {
			t.Fatalf("sequence not increasing at %d", ev.Seq)
		}
		lastSeq = ev.Seq
		switch ev.Type {
		case EventSubmit:
			submits++
			if ev.Title == "" || ev.Votes != 1 {
				t.Errorf("submit event = %+v", ev)
			}
		case EventDigg:
			diggs++
		case EventPromote:
			promotes++
			if ev.Votes < 8 {
				t.Errorf("promote event below threshold: %+v", ev)
			}
			story, err := p.Story(ev.Story)
			if err != nil || !story.Promoted {
				t.Errorf("promote event for unpromoted story %d", ev.Story)
			}
		case EventRankChange:
			ranks++
			if ev.Rank < 1 {
				t.Errorf("rank_change without rank: %+v", ev)
			}
		default:
			t.Errorf("unexpected event type %q", ev.Type)
		}
	}
	if uint64(submits) != st.Submits || uint64(diggs) != st.Diggs || uint64(promotes) != st.Promotions {
		t.Errorf("event counts (%d,%d,%d) disagree with stats %+v", submits, diggs, promotes, st)
	}
	if ranks != promotes {
		t.Errorf("rank_change count %d != promote count %d", ranks, promotes)
	}

	// StepTo is monotone: stepping backwards is a no-op.
	if err := svc.StepTo(50); err != nil {
		t.Fatal(err)
	}
	if svc.Now() != digg.Minutes(st.SimNow) {
		t.Error("StepTo moved the clock backwards")
	}
}

// TestServiceDeterminism: same platform seed + service config => the
// same live history, regardless of step slicing.
func TestServiceDeterminism(t *testing.T) {
	run := func(step digg.Minutes) []*digg.Story {
		p := testPlatform(t)
		svc := testService(t, p)
		for now := digg.Minutes(100); now <= 100+digg.Day; now += step {
			if err := svc.StepTo(now); err != nil {
				t.Fatal(err)
			}
		}
		if err := svc.StepTo(100 + digg.Day); err != nil {
			t.Fatal(err)
		}
		return p.Stories()
	}
	a, b := run(13), run(240)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("story counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i].Votes) != len(b[i].Votes) || a[i].Submitter != b[i].Submitter {
			t.Fatalf("story %d diverged: %d/%d votes", i, len(a[i].Votes), len(b[i].Votes))
		}
		for j := range a[i].Votes {
			if a[i].Votes[j] != b[i].Votes[j] {
				t.Fatalf("story %d vote %d differs", i, j)
			}
		}
	}
}

// TestServiceExport flushes a live run to a dataset and checks the
// snapshot samples.
func TestServiceExport(t *testing.T) {
	p := testPlatform(t)
	svc := testService(t, p)
	if err := svc.StepTo(100 + 2*digg.Day); err != nil {
		t.Fatal(err)
	}
	ds := svc.Export()
	if len(ds.Stories) != p.NumStories() {
		t.Fatalf("exported %d stories, platform has %d", len(ds.Stories), p.NumStories())
	}
	if len(ds.FrontPage) == 0 {
		t.Fatal("export has no front-page sample")
	}
	for _, s := range ds.FrontPage {
		if !s.Promoted {
			t.Errorf("unpromoted story %d in front-page sample", s.ID)
		}
	}
	if ds.Graph != p.Graph {
		t.Error("export did not carry the platform graph")
	}
	// Save/Load round-trip keeps the export usable offline.
	dir := t.TempDir()
	if err := ds.Save(dir); err != nil {
		t.Fatal(err)
	}
}

// TestServiceRunWallClock exercises the real ticker loop briefly: at an
// extreme speedup the service must generate activity within wall
// milliseconds and stop cleanly on cancel.
func TestServiceRunWallClock(t *testing.T) {
	p := testPlatform(t)
	svc, err := NewService(p, Config{
		Seed:               9,
		Speedup:            60000, // 1 wall-ms = 1 sim-minute
		SubmissionsPerHour: 60,
		Tick:               2 * time.Millisecond,
		StartAt:            100,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if err := svc.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if svc.Stats().Submits == 0 {
		t.Error("no submissions after 300ms at 60000x speedup")
	}
	if svc.Now() <= 100 {
		t.Error("sim clock did not advance")
	}
}
