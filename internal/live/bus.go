package live

import (
	"sync"
	"sync/atomic"

	"diggsim/internal/obs"
)

// DefaultBusCapacity is the broadcast ring size used when NewBus is
// called with a non-positive capacity. It bounds how far a slow
// subscriber may fall behind before it starts losing events.
const DefaultBusCapacity = 4096

// DefaultSubscriberBuffer is retained for callers of the pre-ring API;
// it now aliases the shared ring default.
//
// Deprecated: the bus keeps one shared ring, not per-subscriber
// buffers. Use DefaultBusCapacity.
const DefaultSubscriberBuffer = DefaultBusCapacity

// busEntry is one published event paired with its sequence number. The
// pair is immutable once stored, so a reader that loaded the pointer
// can never observe a torn event — overwrite replaces the pointer, not
// the bytes.
type busEntry struct {
	seq uint64
	ev  Event
}

// Bus fans events out to subscribers through one shared append-only
// broadcast ring. Publish stamps the event with the next sequence
// number, writes it into its ring slot, and advances the head — O(1)
// work no matter how many subscribers exist, which is what makes a
// 100k-stream SSE fan-out feasible (the old design walked every
// subscriber's private ring under one mutex, so publish cost grew
// linearly with subscribers).
//
// Subscribers track their own cursor into the shared ring and read
// lock-free. A slow subscriber is never waited for: when the ring laps
// its cursor the overwritten events are counted as lag on its next
// Drain — the same drop-oldest semantics the per-subscriber rings had,
// now detected by the reader instead of enforced by the writer.
//
// Wake-ups are coalesced off the publish path: Publish kicks a single
// waker goroutine, which swaps and closes a broadcast channel all idle
// subscribers park on. The publisher therefore pays a non-blocking
// channel send, not an O(waiters) wake.
type Bus struct {
	capacity uint64 // ring size, power of two
	mask     uint64
	slots    []atomic.Pointer[busEntry]
	head     atomic.Uint64 // last published sequence number (0 = none)

	// pubMu serializes publishers: sequence assignment, the slot store
	// and the head advance happen under it. Readers never take it.
	pubMu sync.Mutex

	// dropped counts events whose overwrite a subscriber has detected.
	// Stats adds the not-yet-detected backlog lag on top, so the total
	// matches the old eager accounting.
	dropped atomic.Uint64

	// notify is the broadcast channel idle subscribers wait on; the
	// waker goroutine closes and replaces it after new publishes. kick
	// (capacity 1) is the publisher's O(1) handoff to the waker.
	// parked is set by Ready and cleared by the waker, so publishes
	// skip the handoff entirely while no subscriber is waiting.
	notify atomic.Pointer[chan struct{}]
	kick   chan struct{}
	parked atomic.Bool

	// subMu guards the subscriber registry, touched only on
	// Subscribe/Close/Stats — never on the publish or read path.
	subMu sync.Mutex
	subs  map[*Subscriber]struct{}
}

// NewBus returns a bus with the given ring capacity, rounded up to a
// power of two (DefaultBusCapacity when capacity <= 0).
func NewBus(capacity int) *Bus {
	if capacity <= 0 {
		capacity = DefaultBusCapacity
	}
	size := uint64(1)
	for size < uint64(capacity) {
		size <<= 1
	}
	b := &Bus{
		capacity: size,
		mask:     size - 1,
		slots:    make([]atomic.Pointer[busEntry], size),
		kick:     make(chan struct{}, 1),
		subs:     make(map[*Subscriber]struct{}),
	}
	ch := make(chan struct{})
	b.notify.Store(&ch)
	go b.waker()
	return b
}

// Capacity returns the ring size: the number of most-recent events a
// subscriber can be behind by before it starts losing them.
func (b *Bus) Capacity() int { return int(b.capacity) }

// Publish stamps ev with the next sequence number, stores it in the
// ring and returns the assigned sequence. Cost is independent of the
// subscriber count: one small allocation, two atomic stores and a
// non-blocking wake handoff.
func (b *Bus) Publish(ev Event) uint64 {
	b.pubMu.Lock()
	seq := b.head.Load() + 1
	ev.Seq = seq
	ev.PubNano = obs.Now()
	b.slots[(seq-1)&b.mask].Store(&busEntry{seq: seq, ev: ev})
	b.head.Store(seq)
	b.pubMu.Unlock()
	// Hand the O(waiters) wake to the waker goroutine, but only when
	// someone is parked — an idle bus publishes for the ring alone. A
	// pending kick is guaranteed to be consumed after this head
	// advance, so its close covers this publish too.
	if b.parked.Load() {
		select {
		case b.kick <- struct{}{}:
		default:
		}
	}
	return seq
}

// waker turns publish kicks into broadcast wake-ups: swap in a fresh
// notify channel and close the old one, waking every parked
// subscriber. Runs for the life of the bus.
func (b *Bus) waker() {
	for range b.kick {
		// Clear parked before swapping: a Ready that re-parks on the
		// fresh channel after this point re-sets it, so the next
		// publish kicks again.
		b.parked.Store(false)
		ch := make(chan struct{})
		old := b.notify.Swap(&ch)
		close(*old)
	}
}

// notifyChan returns the channel the next publish wake-up will close.
// Callers must load it BEFORE re-checking the head: if the head has
// not moved after the load, any later publish is guaranteed to close
// the loaded channel (or a successor the caller will re-load).
func (b *Bus) notifyChan() <-chan struct{} { return *b.notify.Load() }

// Subscribe registers a subscriber that observes every event published
// after the call, minus any lost to ring overwrite. Callers must Close
// the subscriber when done.
func (b *Bus) Subscribe() *Subscriber {
	return b.SubscribeFrom(b.head.Load())
}

// SubscribeFrom registers a subscriber whose cursor starts just after
// sequence number after: the first event it observes is after+1. An
// after beyond the current head clamps to the head (nothing is
// replayed from the future); an after older than the ring retains is
// honored and surfaces as lag on the first Drain — callers replaying
// an SSE Last-Event-ID see exactly which events they missed.
func (b *Bus) SubscribeFrom(after uint64) *Subscriber {
	if head := b.head.Load(); after > head {
		after = head
	}
	s := &Subscriber{bus: b}
	s.cursor.Store(after)
	b.subMu.Lock()
	b.subs[s] = struct{}{}
	b.subMu.Unlock()
	return s
}

// BusStats are bus-lifetime counters plus current subscriber state.
type BusStats struct {
	Subscribers int
	Published   uint64
	// Dropped is the total number of events lost to ring overwrite
	// across all subscribers, including since-closed ones and lag not
	// yet observed by its subscriber.
	Dropped uint64
	// MaxQueued is the deepest current per-subscriber backlog, capped
	// at the ring capacity (deeper backlogs are lag, not queue).
	MaxQueued int
}

// Stats snapshots the bus counters.
func (b *Bus) Stats() BusStats {
	b.subMu.Lock()
	defer b.subMu.Unlock()
	head := b.head.Load()
	st := BusStats{
		Subscribers: len(b.subs),
		Published:   head,
		Dropped:     b.dropped.Load(),
	}
	for s := range b.subs {
		behind := head - s.cursor.Load()
		if behind > b.capacity {
			// Backlog beyond the ring is already lost; count it as
			// dropped now so Stats matches the old eager accounting,
			// and as queue depth report only what remains deliverable.
			st.Dropped += behind - b.capacity
			behind = b.capacity
		}
		if int(behind) > st.MaxQueued {
			st.MaxQueued = int(behind)
		}
	}
	return st
}

// Subscriber is one cursor into the bus's shared ring. Drain and Close
// may be called from any goroutine; Drain is serialized internally.
type Subscriber struct {
	bus *Bus

	mu     sync.Mutex    // serializes Drain, and Close against Drain
	cursor atomic.Uint64 // last consumed sequence number
	closed bool
	// limit freezes delivery at the head observed when Close ran, so a
	// closed subscriber never sees later publishes.
	limit        uint64
	totalDropped atomic.Uint64
}

// Drain returns all events published since the previous Drain, in
// sequence order, plus the number of events lost to ring overwrite in
// that window. The invariant len(events)+dropped == head-cursor makes
// lag accounting exact: every sequence number is either delivered or
// counted.
func (s *Subscriber) Drain() ([]Event, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.bus
	head := b.head.Load()
	if s.closed && s.limit < head {
		head = s.limit
	}
	cur := s.cursor.Load()
	if head <= cur {
		return nil, 0
	}
	var dropped uint64
	if head-cur > b.capacity {
		// The ring has lapped this cursor: everything up to head-cap
		// is unrecoverable.
		dropped = head - b.capacity - cur
		cur = head - b.capacity
	}
	out := make([]Event, 0, head-cur)
	for seq := cur + 1; seq <= head; seq++ {
		e := b.slots[(seq-1)&b.mask].Load()
		if e == nil || e.seq != seq {
			// Overwritten between the head load and this read (a
			// publisher lapped us mid-drain); later slots may still
			// hold their original events, so keep going.
			dropped++
			continue
		}
		out = append(out, e.ev)
	}
	s.cursor.Store(head)
	if dropped > 0 {
		s.totalDropped.Add(dropped)
		b.dropped.Add(dropped)
	}
	return out, dropped
}

// Ready returns a channel that is closed when events beyond the
// subscriber's cursor may be available; pair it with Drain in a select
// loop. Unlike a per-subscriber notification there is no sticky
// signal: callers must Drain first and only wait when it returned
// nothing (Drain-then-wait), which the SSE handler's loop does.
func (s *Subscriber) Ready() <-chan struct{} {
	b := s.bus
	ch := b.notifyChan()
	// Mark a waiter BEFORE the head re-check: a publish that lands
	// after the check below either sees parked and kicks the waker
	// (closing ch), or advanced the head early enough for the check
	// to catch it.
	b.parked.Store(true)
	if b.head.Load() > s.cursor.Load() {
		// New events raced our channel load; hand back an
		// already-closed channel so the caller's select fires now.
		closed := make(chan struct{})
		close(closed)
		return closed
	}
	return ch
}

// Lag returns the subscriber-lifetime count of events lost to ring
// overwrite, as observed by its Drains.
func (s *Subscriber) Lag() uint64 { return s.totalDropped.Load() }

// Cursor returns the sequence number of the last event consumed (or
// skipped as lag) by Drain.
func (s *Subscriber) Cursor() uint64 { return s.cursor.Load() }

// Close unregisters the subscriber. Events published before Close
// remain drainable; later ones are not delivered. Close is idempotent.
func (s *Subscriber) Close() {
	b := s.bus
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.limit = b.head.Load()
	}
	s.mu.Unlock()
	b.subMu.Lock()
	delete(b.subs, s)
	b.subMu.Unlock()
}
