package live

import "sync"

// DefaultSubscriberBuffer is the per-subscriber ring capacity used when
// Subscribe is called with a non-positive buffer size.
const DefaultSubscriberBuffer = 256

// Bus fans events out to subscribers through bounded per-subscriber
// ring buffers. A slow subscriber loses its oldest undelivered events
// (drop-oldest, tracked as lag) instead of blocking the publisher or
// growing memory without bound — the simulation writer must never
// stall behind a stuck HTTP stream.
//
// Publish is O(subscribers) with constant work per subscriber, so it is
// cheap enough to call from the simulation tick while holding no
// platform lock.
type Bus struct {
	mu        sync.Mutex
	subs      map[*Subscriber]struct{}
	nextSeq   uint64
	published uint64
	dropped   uint64
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{subs: make(map[*Subscriber]struct{})}
}

// Subscribe registers a new subscriber with the given ring capacity
// (DefaultSubscriberBuffer when buffer <= 0). The subscriber observes
// every event published after the call, minus any dropped to overflow.
// Callers must Close the subscriber when done.
func (b *Bus) Subscribe(buffer int) *Subscriber {
	if buffer <= 0 {
		buffer = DefaultSubscriberBuffer
	}
	s := &Subscriber{
		bus:    b,
		ring:   make([]Event, buffer),
		notify: make(chan struct{}, 1),
	}
	b.mu.Lock()
	b.subs[s] = struct{}{}
	b.mu.Unlock()
	return s
}

// Publish stamps ev with the next sequence number and delivers it to
// every subscriber, returning the assigned sequence.
func (b *Bus) Publish(ev Event) uint64 {
	b.mu.Lock()
	b.nextSeq++
	ev.Seq = b.nextSeq
	b.published++
	for s := range b.subs {
		if s.push(ev) {
			b.dropped++
		}
	}
	b.mu.Unlock()
	return ev.Seq
}

// BusStats are bus-lifetime counters plus current subscriber state.
type BusStats struct {
	Subscribers int
	Published   uint64
	// Dropped is the total number of events lost to ring overflow
	// across all subscribers, including since-closed ones.
	Dropped uint64
	// MaxQueued is the deepest current per-subscriber backlog.
	MaxQueued int
}

// Stats snapshots the bus counters.
func (b *Bus) Stats() BusStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := BusStats{Subscribers: len(b.subs), Published: b.published, Dropped: b.dropped}
	for s := range b.subs {
		if q := s.queued(); q > st.MaxQueued {
			st.MaxQueued = q
		}
	}
	return st
}

// Subscriber is one bounded view of the bus. Drain and Close may be
// called from any goroutine.
type Subscriber struct {
	bus    *Bus
	notify chan struct{}

	mu           sync.Mutex
	ring         []Event
	start, count int
	dropped      uint64 // since the last Drain
	totalDropped uint64
	closed       bool
}

// push appends ev, evicting the oldest buffered event when the ring is
// full, and reports whether an eviction happened. Called by the bus
// with the bus lock held; lock order is always bus.mu before sub.mu.
func (s *Subscriber) push(ev Event) (evicted bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	if s.count == len(s.ring) {
		s.start = (s.start + 1) % len(s.ring)
		s.count--
		s.dropped++
		s.totalDropped++
		evicted = true
	}
	s.ring[(s.start+s.count)%len(s.ring)] = ev
	s.count++
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
	return evicted
}

// Drain removes and returns all buffered events in publish order, plus
// the number of events dropped to ring overflow since the previous
// Drain.
func (s *Subscriber) Drain() ([]Event, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.dropped
	s.dropped = 0
	if s.count == 0 {
		return nil, d
	}
	out := make([]Event, s.count)
	for i := range out {
		out[i] = s.ring[(s.start+i)%len(s.ring)]
	}
	s.start, s.count = 0, 0
	return out, d
}

// Ready returns a channel that receives a signal whenever new events
// are buffered; pair it with Drain in a select loop.
func (s *Subscriber) Ready() <-chan struct{} { return s.notify }

// Lag returns the subscriber-lifetime count of events lost to ring
// overflow.
func (s *Subscriber) Lag() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totalDropped
}

func (s *Subscriber) queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Close unregisters the subscriber; further published events are not
// delivered to it. Close is idempotent.
func (s *Subscriber) Close() {
	b := s.bus
	b.mu.Lock()
	delete(b.subs, s)
	b.mu.Unlock()
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}
