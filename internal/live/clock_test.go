package live

import (
	"testing"
	"time"

	"diggsim/internal/digg"
)

func TestClockMapping(t *testing.T) {
	start := time.Unix(1000, 0)
	c := NewClock(start, 4320, 600)
	cases := []struct {
		wall time.Time
		want digg.Minutes
	}{
		{start, 4320},
		{start.Add(-time.Hour), 4320}, // never runs backwards
		{start.Add(time.Second), 4330},
		{start.Add(time.Minute), 4920},
		{start.Add(2 * time.Minute), 5520},
	}
	for _, tc := range cases {
		if got := c.Now(tc.wall); got != tc.want {
			t.Errorf("Now(%v) = %d, want %d", tc.wall.Sub(start), got, tc.want)
		}
	}
	if c.Speedup() != 600 {
		t.Errorf("Speedup() = %v", c.Speedup())
	}
}

func TestClockDefaultSpeedup(t *testing.T) {
	c := NewClock(time.Unix(0, 0), 0, -5)
	if c.Speedup() != 1 {
		t.Errorf("fallback speedup = %v, want 1", c.Speedup())
	}
	if got := c.Now(time.Unix(60, 0)); got != 1 {
		t.Errorf("1 wall-minute at 1x = %d sim-min, want 1", got)
	}
}
