package experiments

import (
	"diggsim/internal/epidemic"
	"diggsim/internal/graph"
	"diggsim/internal/rng"
	"diggsim/internal/stats"
	"diggsim/internal/textplot"
)

func init() {
	register("ext1", "Epidemic threshold: scale-free vs Erdős–Rényi (§6)", ext1)
	register("ext2", "Cascades on modular vs homogeneous networks (§6)", ext2)
}

// ext1 sweeps the SIS spreading rate on a scale-free and an
// equal-mean-degree ER graph, reproducing the vanishing epidemic
// threshold of Pastor-Satorras & Vespignani that §6 cites.
func ext1(r *Runner) (Result, error) {
	var res Result
	rr := rng.New(r.Seed + 1)
	const n = 4000
	sf, err := graph.PreferentialAttachment(rr, n, 3, 0)
	if err != nil {
		return res, err
	}
	meanDeg := float64(sf.NumEdges()) / float64(n)
	er, err := graph.ErdosRenyi(rr, n, meanDeg/float64(n-1))
	if err != nil {
		return res, err
	}
	lambdas := []float64{0.01, 0.02, 0.03, 0.05, 0.08, 0.12, 0.2, 0.35, 0.5}
	base := epidemic.SISConfig{Recovery: 0.25, Steps: 200, InitialInfected: 40}
	prevSF, err := epidemic.ThresholdSweep(sf, lambdas, base, rr)
	if err != nil {
		return res, err
	}
	prevER, err := epidemic.ThresholdSweep(er, lambdas, base, rr)
	if err != nil {
		return res, err
	}
	res.printf("%s", textplot.Plot(textplot.Config{
		Title:  "Ext 1: endemic prevalence vs spreading rate lambda",
		XLabel: "lambda",
		YLabel: "prevalence",
	},
		textplot.Series{Name: "scale-free", X: lambdas, Y: prevSF},
		textplot.Series{Name: "Erdos-Renyi", X: lambdas, Y: prevER},
	))
	res.metric("mean_degree", meanDeg)
	res.metric("sf_prevalence_low_lambda", prevSF[1])
	res.metric("er_prevalence_low_lambda", prevER[1])
	res.metric("sf_prevalence_high_lambda", prevSF[len(prevSF)-1])
	res.metric("er_prevalence_high_lambda", prevER[len(prevER)-1])
	res.printf("Expectation: the scale-free network sustains the epidemic at rates")
	res.printf("where the ER network (threshold ~ recovery/<k>) dies out.")
	res.finish()
	return res, nil
}

// ext2 seeds independent cascades inside one community of a modular
// graph and contrasts spread with an equal-degree homogeneous graph
// (Galstyan & Cohen's setting, cited in §6).
func ext2(r *Runner) (Result, error) {
	var res Result
	rr := rng.New(r.Seed + 2)
	cfg := graph.ModularConfig{Communities: 8, NodesPerComm: 250, IntraDegree: 6, InterDegree: 0.4}
	mod, err := graph.Modular(rr, cfg)
	if err != nil {
		return res, err
	}
	n := mod.NumNodes()
	meanDeg := float64(mod.NumEdges()) / float64(n)
	hom, err := graph.ErdosRenyi(rr, n, meanDeg/float64(n-1))
	if err != nil {
		return res, err
	}
	const p = 0.16 // per-edge activation probability
	const trials = 20
	var modSizes, homSizes, escapeFracs []float64
	for trial := 0; trial < trials; trial++ {
		// Seed five nodes inside community 0.
		seeds := make([]graph.NodeID, 5)
		for i := range seeds {
			seeds[i] = graph.NodeID(rr.Intn(cfg.NodesPerComm))
		}
		active := epidemic.IndependentCascade(mod, seeds, p, rr.Split())
		modSizes = append(modSizes, float64(len(active)))
		escaped := 0
		for _, u := range active {
			if cfg.CommunityOf(u) != 0 {
				escaped++
			}
		}
		escapeFracs = append(escapeFracs, float64(escaped)/float64(len(active)))
		activeHom := epidemic.IndependentCascade(hom, seeds, p, rr.Split())
		homSizes = append(homSizes, float64(len(activeHom)))
	}
	res.printf("Independent cascade (p=%.2f) seeded inside one community, %d trials.", p, trials)
	res.metric("modular_mean_cascade", stats.Mean(modSizes))
	res.metric("homogeneous_mean_cascade", stats.Mean(homSizes))
	res.metric("mean_escape_fraction", stats.Mean(escapeFracs))
	res.metric("modular_median_cascade", stats.Median(modSizes))
	res.metric("homogeneous_median_cascade", stats.Median(homSizes))
	res.printf("Expectation: community structure traps cascades — the modular graph")
	res.printf("keeps most activations inside the seeded community, while the")
	res.printf("homogeneous graph lets them spread globally. This is the paper's")
	res.printf("story-interesting-to-a-narrow-community mechanism in its purest form.")
	res.finish()
	return res, nil
}
