package experiments

import (
	"fmt"

	"diggsim/internal/cascade"
	"diggsim/internal/core"
	"diggsim/internal/dataset"
	"diggsim/internal/digg"
	"diggsim/internal/mltree"
	"diggsim/internal/rng"
	"diggsim/internal/stats"
)

func init() {
	register("abl-policy", "Ablation: classic vs diversity-weighted promotion", ablPolicy)
	register("abl-features", "Ablation: classifier feature sets (v6/v10/v20/fans1)", ablFeatures)
	register("abl-mechanism", "Ablation: network-only vs interest-only spread", ablMechanism)
}

// ablationConfig derives a reduced-size corpus config from the runner's
// dataset so ablations stay fast even when the main corpus is full
// size.
func (r *Runner) ablationConfig() dataset.Config {
	cfg := r.DS.Config
	if cfg.Submissions == 0 {
		// Loaded dataset without generation config: use the small one.
		cfg = dataset.SmallConfig()
	}
	if cfg.Submissions > 600 {
		small := dataset.SmallConfig()
		small.Seed = cfg.Seed
		cfg = small
	}
	return cfg
}

// ablPolicy regenerates the corpus under the post-September-2006
// "digging diversity" promotion rule and compares front-page
// composition: discounting in-network votes should keep more
// uninteresting (network-promoted) stories off the front page.
func ablPolicy(r *Runner) (Result, error) {
	var res Result
	base := r.ablationConfig()

	classicCfg := base
	classicCfg.Policy = digg.NewClassicPromotion()
	diversityCfg := base
	diversityCfg.Policy = digg.NewDiversityPromotion()

	type outcome struct {
		promoted        int
		fracDull        float64
		meanFinal       float64
		meanInNet10Dull float64
	}
	measure := func(cfg dataset.Config) (outcome, error) {
		ds, err := dataset.Generate(cfg)
		if err != nil {
			return outcome{}, err
		}
		var o outcome
		var finals []float64
		dull := 0
		for _, s := range ds.FrontPage {
			finals = append(finals, float64(s.VoteCount()))
			if !core.Interesting(s.VoteCount()) {
				dull++
			}
		}
		o.promoted = ds.Platform.PromotedCount()
		if len(finals) > 0 {
			o.fracDull = float64(dull) / float64(len(finals))
			o.meanFinal = stats.Mean(finals)
		}
		return o, nil
	}
	classic, err := measure(classicCfg)
	if err != nil {
		return res, err
	}
	diversity, err := measure(diversityCfg)
	if err != nil {
		return res, err
	}
	res.printf("Corpus regenerated under both promotion rules (%d submissions).", base.Submissions)
	res.metric("classic_promoted", float64(classic.promoted))
	res.metric("diversity_promoted", float64(diversity.promoted))
	res.metric("classic_frac_dull_frontpage", classic.fracDull)
	res.metric("diversity_frac_dull_frontpage", diversity.fracDull)
	res.metric("classic_mean_final_votes", classic.meanFinal)
	res.metric("diversity_mean_final_votes", diversity.meanFinal)
	res.printf("Expectation: the diversity rule promotes fewer stories and a smaller")
	res.printf("fraction of uninteresting (network-carried) ones — Digg's September")
	res.printf("2006 change, which the paper argues is unnecessary if one instead")
	res.printf("predicts interestingness from the voting pattern.")
	res.finish()
	return res, nil
}

// ablFeatures cross-validates the paper's classifier under different
// feature sets, quantifying how much signal each early-vote horizon and
// the submitter fan count carry.
func ablFeatures(r *Runner) (Result, error) {
	var res Result
	fp := r.DS.FrontPage
	if len(fp) == 0 {
		return res, errNoFrontPage
	}
	examples := core.ExtractAll(r.DS.Graph, fp)
	sets := []struct {
		name     string
		features []core.Feature
	}{
		{"v6", []core.Feature{core.FeatureV6}},
		{"v10", []core.Feature{core.FeatureV10}},
		{"v20", []core.Feature{core.FeatureV20}},
		{"fans1", []core.Feature{core.FeatureFans1}},
		{"v10+fans1 (paper)", []core.Feature{core.FeatureV10, core.FeatureFans1}},
		{"v6+v10+v20+fans1", []core.Feature{core.FeatureV6, core.FeatureV10, core.FeatureV20, core.FeatureFans1}},
	}
	res.printf("10-fold CV accuracy by feature set over %d stories:", len(examples))
	for i, set := range sets {
		cv, err := core.CrossValidate(examples, set.features, mltree.DefaultConfig(), 10, rng.New(r.Seed+uint64(i)))
		if err != nil {
			return res, err
		}
		key := fmt.Sprintf("cv_accuracy_%d", i)
		res.Metrics = ensure(res.Metrics)
		res.Metrics[key] = cv.Accuracy()
		res.printf("  %-22s accuracy=%.3f (%d/%d)", set.name, cv.Accuracy(), cv.Correct(), cv.Total())
	}
	res.printf("Expectation: v10 alone carries most of the signal (the paper's core")
	res.printf("claim); fans1 alone is weaker; combining them matches Fig. 5.")
	res.finish()
	return res, nil
}

// ablMechanism regenerates the corpus with each spread mechanism
// disabled in turn, demonstrating that the inverse v10/final-votes
// relationship (Fig. 4) requires both channels.
func ablMechanism(r *Runner) (Result, error) {
	var res Result
	base := r.ablationConfig()

	variants := []struct {
		name string
		key  string
		mut  func(*dataset.Config)
	}{
		{"combined (default)", "combined", func(*dataset.Config) {}},
		{"network-only", "network_only", func(c *dataset.Config) {
			c.Agent.QueueDiscoveryRate = 0
			c.Agent.FrontPageRate = 0
		}},
		{"interest-only", "interest_only", func(c *dataset.Config) {
			c.Agent.FanVoteScale = 0
		}},
	}
	for _, v := range variants {
		cfg := base
		v.mut(&cfg)
		ds, err := dataset.Generate(cfg)
		if err != nil {
			return res, err
		}
		var xs, ys []float64
		var promoted int
		for _, s := range ds.Stories {
			if s.Promoted {
				promoted++
			}
			if s.VoteCount() < 11 {
				continue
			}
			st := cascade.Analyze(ds.Graph, s)
			xs = append(xs, float64(st.InNet10))
			ys = append(ys, float64(st.FinalVotes))
		}
		rho := 0.0
		if len(xs) > 2 {
			if got, err := stats.Spearman(xs, ys); err == nil {
				rho = got
			}
		}
		res.Metrics = ensure(res.Metrics)
		res.Metrics["promoted_"+v.key] = float64(promoted)
		res.Metrics["spearman_v10_final_"+v.key] = rho
		res.printf("%-20s promoted=%-5d stories>=11votes=%-5d spearman(v10, final)=%+.3f",
			v.name, promoted, len(xs), rho)
	}
	res.printf("Expectation: with both channels the correlation is clearly negative;")
	res.printf("removing independent discovery (network-only) or fan voting")
	res.printf("(interest-only) destroys or weakens the early-vote signal, showing")
	res.printf("the paper's two-mechanism account is what creates it.")
	res.finish()
	return res, nil
}

func ensure(m map[string]float64) map[string]float64 {
	if m == nil {
		return map[string]float64{}
	}
	return m
}
