// Package experiments regenerates every table and figure of the paper
// from a synthetic corpus, plus the §6 extension studies and the design
// ablations listed in DESIGN.md. Each experiment renders a terminal
// report (with ASCII figures) and returns machine-readable metrics that
// the test suite and EXPERIMENTS.md consume.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"diggsim/internal/dataset"
)

// Result is one experiment's output.
type Result struct {
	ID      string
	Title   string
	Text    string             // human-readable report, including figures
	Metrics map[string]float64 // key numbers, stable keys

	buf strings.Builder
}

// printf appends a line to the report text.
func (r *Result) printf(format string, args ...any) {
	fmt.Fprintf(&r.buf, format+"\n", args...)
}

// metric records a machine-readable value and logs it to the report.
func (r *Result) metric(key string, value float64) {
	if r.Metrics == nil {
		r.Metrics = map[string]float64{}
	}
	r.Metrics[key] = value
	fmt.Fprintf(&r.buf, "  %-32s %.4g\n", key, value)
}

// finish freezes the report text.
func (r *Result) finish() { r.Text = r.buf.String() }

// Runner executes experiments against a shared corpus.
type Runner struct {
	DS *dataset.Dataset
	// Seed drives experiment-local randomness (cross-validation
	// shuffles, extension simulations); the corpus has its own seed.
	Seed uint64
}

// runFunc is the signature of one experiment.
type runFunc func(*Runner) (Result, error)

// registry maps experiment IDs to implementations, populated in
// figures.go, extensions.go and ablations.go.
var registry = map[string]struct {
	title string
	fn    runFunc
}{}

func register(id, title string, fn runFunc) {
	registry[id] = struct {
		title string
		fn    runFunc
	}{title, fn}
}

// IDs returns all experiment IDs in deterministic order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Title returns the registered title of an experiment ID.
func Title(id string) string { return registry[id].title }

// Run executes one experiment by ID.
func (r *Runner) Run(id string) (Result, error) {
	entry, ok := registry[id]
	if !ok {
		return Result{}, fmt.Errorf("experiments: unknown id %q (have %s)",
			id, strings.Join(IDs(), ", "))
	}
	res, err := entry.fn(r)
	if err != nil {
		return Result{}, fmt.Errorf("experiments: %s: %w", id, err)
	}
	res.ID = id
	res.Title = entry.title
	return res, nil
}

// RunAll executes every registered experiment in ID order.
func (r *Runner) RunAll() ([]Result, error) {
	var out []Result
	for _, id := range IDs() {
		res, err := r.Run(id)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
