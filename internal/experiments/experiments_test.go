package experiments

import (
	"fmt"
	"strings"
	"testing"

	"diggsim/internal/dataset"
)

var testRunner *Runner

func getRunner(t *testing.T) *Runner {
	t.Helper()
	if testRunner == nil {
		ds, err := dataset.Generate(dataset.SmallConfig())
		if err != nil {
			t.Fatal(err)
		}
		testRunner = &Runner{DS: ds, Seed: 99}
	}
	return testRunner
}

func TestIDsRegistered(t *testing.T) {
	want := []string{
		"abl-features", "abl-graph", "abl-mechanism", "abl-policy", "abl-threshold",
		"ext1", "ext2", "ext3", "ext4",
		"fig1", "fig2a", "fig2b", "fig3a", "fig3b", "fig4", "fig5", "fig6",
		"tab1", "text1",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v want %v", got, want)
		}
	}
	for _, id := range got {
		if Title(id) == "" {
			t.Errorf("empty title for %s", id)
		}
	}
}

func TestUnknownID(t *testing.T) {
	r := getRunner(t)
	if _, err := r.Run("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestFig1(t *testing.T) {
	res, err := getRunner(t).Run("fig1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "Fig 1") {
		t.Error("missing figure")
	}
	if res.Metrics["stories_plotted"] < 1 {
		t.Error("no stories plotted")
	}
	// Front-page votes accumulate much faster than queue votes.
	if res.Metrics["mean_votes_first_day_on_frontpage"] <= res.Metrics["mean_votes_at_promotion"] {
		t.Errorf("no front-page acceleration: %v vs %v",
			res.Metrics["mean_votes_first_day_on_frontpage"], res.Metrics["mean_votes_at_promotion"])
	}
}

func TestFig2a(t *testing.T) {
	res, err := getRunner(t).Run("fig2a")
	if err != nil {
		t.Fatal(err)
	}
	below, above := res.Metrics["frac_below_500"], res.Metrics["frac_above_1500"]
	// Paper bands are ~20% each on the full corpus (checked in
	// EXPERIMENTS.md); the small test corpus only needs the shape: both
	// tails populated, neither dominant.
	if below <= 0 || below > 0.5 {
		t.Errorf("frac_below_500 = %v, out of plausible band", below)
	}
	if above <= 0 || above > 0.5 {
		t.Errorf("frac_above_1500 = %v, out of plausible band", above)
	}
	if res.Metrics["median_votes"] < 250 || res.Metrics["median_votes"] > 2500 {
		t.Errorf("median votes = %v, implausible scale", res.Metrics["median_votes"])
	}
}

func TestFig2b(t *testing.T) {
	res, err := getRunner(t).Run("fig2b")
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["distinct_voters"] < 100 {
		t.Errorf("distinct voters = %v", res.Metrics["distinct_voters"])
	}
	// Skew: the most active voter far exceeds the median user (1 vote).
	if res.Metrics["max_votes_by_one_user"] < 10 {
		t.Errorf("vote activity not skewed: max = %v", res.Metrics["max_votes_by_one_user"])
	}
}

func TestFig3a(t *testing.T) {
	res, err := getRunner(t).Run("fig3a")
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["frac_visible_to_200_after_10"] <= 0 {
		t.Error("no stories widely visible after 10 votes")
	}
	f := res.Metrics["frac_submitters_under_10_fans"]
	if f < 0 || f > 1 {
		t.Errorf("fraction out of range: %v", f)
	}
}

func TestFig3b(t *testing.T) {
	res, err := getRunner(t).Run("fig3b")
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 30% of stories have >=5 of first 10 in-network. Shape: the
	// fraction is strictly between 0 and 1.
	f := res.Metrics["frac_ge5_of_first10"]
	if f <= 0 || f >= 0.9 {
		t.Errorf("frac_ge5_of_first10 = %v", f)
	}
}

func TestFig4InverseRelation(t *testing.T) {
	res, err := getRunner(t).Run("fig4")
	if err != nil {
		t.Fatal(err)
	}
	// The headline result: negative rank correlation at every horizon.
	for _, key := range []string{"spearman_v6", "spearman_v10", "spearman_v20"} {
		if rho := res.Metrics[key]; rho >= 0 {
			t.Errorf("%s = %v; want negative (inverse relation)", key, rho)
		}
	}
	if res.Metrics["median_final_votes_low_innet10"] <= res.Metrics["median_final_votes_high_innet10"] {
		t.Errorf("band medians not inverted: low=%v high=%v",
			res.Metrics["median_final_votes_low_innet10"],
			res.Metrics["median_final_votes_high_innet10"])
	}
}

func TestFig5Classifier(t *testing.T) {
	res, err := getRunner(t).Run("fig5")
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["cv_accuracy"] < 0.6 {
		t.Errorf("cv accuracy = %v; paper achieved 0.84", res.Metrics["cv_accuracy"])
	}
	if !strings.Contains(res.Text, "v10") {
		t.Error("tree does not mention v10")
	}
}

func TestTab1Holdout(t *testing.T) {
	res, err := getRunner(t).Run("tab1")
	if err != nil {
		t.Fatal(err)
	}
	kept := res.Metrics["kept_stories"]
	if kept == 0 {
		t.Skip("no holdout stories under small config")
	}
	total := res.Metrics["tp"] + res.Metrics["tn"] + res.Metrics["fp"] + res.Metrics["fn"]
	if total != kept {
		t.Errorf("confusion total %v != kept %v", total, kept)
	}
}

func TestFig6(t *testing.T) {
	res, err := getRunner(t).Run("fig6")
	if err != nil {
		t.Fatal(err)
	}
	// Top users have more fans than the rest (paper's scatter).
	if res.Metrics["mean_fans_top100"] <= res.Metrics["mean_fans_rest"] {
		t.Errorf("top users not better connected: %v vs %v",
			res.Metrics["mean_fans_top100"], res.Metrics["mean_fans_rest"])
	}
}

func TestText1Boundary(t *testing.T) {
	res, err := getRunner(t).Run("text1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["min_frontpage_votes"] < 43 {
		t.Errorf("front-page floor violated: %v", res.Metrics["min_frontpage_votes"])
	}
	if res.Metrics["max_upcoming_votes"] > 42 {
		t.Errorf("upcoming ceiling violated: %v", res.Metrics["max_upcoming_votes"])
	}
}

func TestExt1Threshold(t *testing.T) {
	res, err := getRunner(t).Run("ext1")
	if err != nil {
		t.Fatal(err)
	}
	// At low lambda the scale-free graph must sustain more infection.
	if res.Metrics["sf_prevalence_low_lambda"] <= res.Metrics["er_prevalence_low_lambda"] {
		t.Errorf("threshold contrast missing: sf=%v er=%v",
			res.Metrics["sf_prevalence_low_lambda"], res.Metrics["er_prevalence_low_lambda"])
	}
	// At high lambda both are endemic.
	if res.Metrics["er_prevalence_high_lambda"] < 0.2 {
		t.Errorf("ER graph not endemic at high lambda: %v", res.Metrics["er_prevalence_high_lambda"])
	}
}

func TestExt2ModularTrapping(t *testing.T) {
	res, err := getRunner(t).Run("ext2")
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["modular_mean_cascade"] >= res.Metrics["homogeneous_mean_cascade"] {
		t.Errorf("modular graph did not trap cascades: %v vs %v",
			res.Metrics["modular_mean_cascade"], res.Metrics["homogeneous_mean_cascade"])
	}
	ef := res.Metrics["mean_escape_fraction"]
	if ef < 0 || ef > 1 {
		t.Errorf("escape fraction = %v", ef)
	}
}

func TestExt3ShallowChains(t *testing.T) {
	res, err := getRunner(t).Run("ext3")
	if err != nil {
		t.Fatal(err)
	}
	// Chains must be bounded far below the vote counts (hundreds):
	// propagation is breadth-first through fan lists, not long chains.
	if res.Metrics["max_depth"] > 25 {
		t.Errorf("max cascade depth = %v; should be shallow", res.Metrics["max_depth"])
	}
	if res.Metrics["median_max_depth"] <= 0 {
		t.Errorf("median depth = %v; cascades exist on the front page", res.Metrics["median_max_depth"])
	}
}

func TestExt4HalfLifeRecovery(t *testing.T) {
	res, err := getRunner(t).Run("ext4")
	if err != nil {
		t.Fatal(err)
	}
	// The behaviour model decays with a one-day half-life; the fit over
	// raw vote logs must land in the right ballpark (hours, not minutes
	// or weeks). Individual-story noise is large, so allow a wide band.
	med := res.Metrics["median_half_life_hours"]
	if med < 8 || med > 72 {
		t.Errorf("median fitted half-life = %v h; configured 24 h", med)
	}
	if res.Metrics["stories_fitted"] < 10 {
		t.Errorf("only %v stories fitted", res.Metrics["stories_fitted"])
	}
}

func TestAblGraphSubstrate(t *testing.T) {
	res, err := getRunner(t).Run("abl-graph")
	if err != nil {
		t.Fatal(err)
	}
	ba := res.Metrics["ba_spearman_v10_final"]
	er := res.Metrics["er_spearman_v10_final"]
	if ba >= 0 {
		t.Errorf("BA substrate correlation = %v; want negative", ba)
	}
	if ba >= er {
		t.Errorf("BA correlation %v should be more negative than ER %v", ba, er)
	}
	if res.Metrics["ba_frac_dull_frontpage"] <= res.Metrics["er_frac_dull_frontpage"] {
		t.Errorf("dull-story effect missing: ba=%v er=%v",
			res.Metrics["ba_frac_dull_frontpage"], res.Metrics["er_frac_dull_frontpage"])
	}
}

func TestAblFeatures(t *testing.T) {
	res, err := getRunner(t).Run("abl-features")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "v10+fans1 (paper)") {
		t.Error("missing paper feature set")
	}
	for k, v := range res.Metrics {
		if strings.HasPrefix(k, "cv_accuracy") && (v < 0.4 || v > 1) {
			t.Errorf("%s = %v", k, v)
		}
	}
}

func TestAblMechanism(t *testing.T) {
	res, err := getRunner(t).Run("abl-mechanism")
	if err != nil {
		t.Fatal(err)
	}
	combined := res.Metrics["spearman_v10_final_combined"]
	if combined >= 0 {
		t.Errorf("combined correlation = %v; want negative", combined)
	}
}

func TestAblPolicy(t *testing.T) {
	res, err := getRunner(t).Run("abl-policy")
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["classic_promoted"] <= 0 {
		t.Error("classic corpus promoted nothing")
	}
	// The diversity rule must promote no more than classic (it only
	// discounts votes).
	if res.Metrics["diversity_promoted"] > res.Metrics["classic_promoted"] {
		t.Errorf("diversity promoted more than classic: %v vs %v",
			res.Metrics["diversity_promoted"], res.Metrics["classic_promoted"])
	}
}

func TestAblThresholdStability(t *testing.T) {
	res, err := getRunner(t).Run("abl-threshold")
	if err != nil {
		t.Fatal(err)
	}
	accAt := func(th int) (float64, bool) {
		v, ok := res.Metrics[fmt.Sprintf("cv_accuracy_t%d", th)]
		return v, ok
	}
	a520, ok := accAt(520)
	if !ok {
		t.Skip("labels degenerate at 520 under this corpus")
	}
	for _, th := range []int{460, 580} {
		if a, ok := accAt(th); ok {
			if a < a520-0.25 {
				t.Errorf("accuracy collapses at threshold %d: %.3f vs %.3f at 520", th, a, a520)
			}
		}
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll regenerates corpora; skipped in -short")
	}
	results, err := getRunner(t).RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(IDs()) {
		t.Fatalf("results = %d", len(results))
	}
	for _, res := range results {
		if res.Text == "" {
			t.Errorf("%s produced empty report", res.ID)
		}
		if len(res.Metrics) == 0 {
			t.Errorf("%s produced no metrics", res.ID)
		}
	}
}
