package experiments

import (
	"errors"
	"math"
	"sort"

	"diggsim/internal/digg"
	"diggsim/internal/stats"
	"diggsim/internal/textplot"
	"diggsim/internal/timeseries"
)

func init() {
	register("ext4", "Novelty decay: post-promotion half-life (Wu & Huberman)", ext4)
}

// ext4 fits the post-promotion vote-rate decay of every front-page
// story and compares the recovered half-life distribution with Wu &
// Huberman's measurement (the paper's related work: "interest in a
// story peaks when the story first hits the front page, and then
// decays with time, with a half-life of about a day").
func ext4(r *Runner) (Result, error) {
	var res Result
	fp := r.DS.FrontPage
	if len(fp) == 0 {
		return res, errNoFrontPage
	}
	horizon := r.DS.Config.Agent.Horizon
	if horizon == 0 {
		horizon = 5 * digg.Day
	}
	var halfLives, r2s []float64
	for _, s := range fp {
		fit, err := timeseries.FitNoveltyDecay(s, 4*60, horizon)
		if err != nil {
			continue
		}
		halfLives = append(halfLives, fit.HalfLife)
		r2s = append(r2s, fit.R2)
	}
	if len(halfLives) < 5 {
		return res, errors.New("too few promoted stories produced a decay fit")
	}
	sort.Float64s(halfLives)
	// Histogram in hours.
	hours := make([]float64, len(halfLives))
	for i, h := range halfLives {
		hours[i] = h / 60
	}
	hi := math.Ceil(stats.Quantile(hours, 0.98)/12) * 12
	if hi < 12 {
		hi = 12
	}
	h, err := stats.NewHistogram(hours, 0, hi, int(hi/6))
	if err != nil {
		return res, err
	}
	los, his := make([]float64, len(h.Bins)), make([]float64, len(h.Bins))
	counts := make([]int, len(h.Bins))
	for i, b := range h.Bins {
		los[i], his[i], counts[i] = b.Lo, b.Hi, b.Count
	}
	res.printf("%s", textplot.Histogram("Ext 4: fitted post-promotion half-life (hours)", 40, los, his, counts))
	res.metric("stories_fitted", float64(len(halfLives)))
	res.metric("median_half_life_hours", stats.Median(hours))
	res.metric("p25_half_life_hours", stats.Quantile(hours, 0.25))
	res.metric("p75_half_life_hours", stats.Quantile(hours, 0.75))
	res.metric("median_fit_r2", stats.Median(r2s))
	res.printf("Wu & Huberman (the paper's ref [24]): interest decays with a")
	res.printf("half-life of about a day (24h). The behaviour model's half-life is")
	res.printf("a configured input (NoveltyHalfLife = %v min); recovering it from", int64(r.DS.Config.Agent.NoveltyHalfLife))
	res.printf("the raw vote logs validates the whole analysis chain end to end.")
	res.finish()
	return res, nil
}
