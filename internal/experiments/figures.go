package experiments

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"diggsim/internal/cascade"
	"diggsim/internal/core"
	"diggsim/internal/digg"
	"diggsim/internal/graph"
	"diggsim/internal/mltree"
	"diggsim/internal/rng"
	"diggsim/internal/stats"
	"diggsim/internal/textplot"
)

func init() {
	register("fig1", "Vote time series of front-page stories", fig1)
	register("fig2a", "Histogram of final vote counts (front-page sample)", fig2a)
	register("fig2b", "User activity distributions (log-log)", fig2b)
	register("fig3a", "Story influence at submission / after 10 / after 20 votes", fig3a)
	register("fig3b", "In-network vote (cascade) distributions after 10/20/30 votes", fig3b)
	register("fig4", "Final votes vs. early in-network votes (inverse relation)", fig4)
	register("fig5", "C4.5 decision tree and 10-fold cross-validation", fig5)
	register("tab1", "Holdout prediction on top-user upcoming stories (§5.2)", tab1)
	register("fig6", "Fans vs. friends scatter (all users vs. top users)", fig6)
	register("text1", "Promotion boundary: 43-vote front-page floor / 42-vote queue ceiling", text1)
}

// errNoFrontPage reports an empty front-page sample.
var errNoFrontPage = errors.New("front-page sample is empty")

// fig1 samples the cumulative vote count of a handful of front-page
// stories over time, reproducing the queue-then-burst-then-saturate
// shape of Fig. 1.
func fig1(r *Runner) (Result, error) {
	var res Result
	fp := r.DS.FrontPage
	if len(fp) == 0 {
		return res, errNoFrontPage
	}
	rr := rng.New(r.Seed)
	picks := rr.SampleWithoutReplacement(len(fp), min(5, len(fp)))
	sort.Ints(picks)
	horizon := r.DS.Config.Agent.Horizon
	if horizon == 0 {
		horizon = 5 * digg.Day
	}
	var series []textplot.Series
	step := int64(horizon) / 100
	if step < 1 {
		step = 1
	}
	var queueVotesAtPromotion, postDay1 []float64
	for _, idx := range picks {
		s := fp[idx]
		var xs, ys []float64
		for t := int64(0); t <= int64(horizon); t += step {
			xs = append(xs, float64(t))
			ys = append(ys, float64(s.VotedAtOrBefore(s.SubmittedAt+digg.Minutes(t))))
		}
		series = append(series, textplot.Series{
			Name: fmt.Sprintf("story %d", s.ID), X: xs, Y: ys,
		})
		queueVotesAtPromotion = append(queueVotesAtPromotion, float64(s.VotedAtOrBefore(s.PromotedAt)))
		postDay1 = append(postDay1,
			float64(s.VotedAtOrBefore(s.PromotedAt+digg.Day)-s.VotedAtOrBefore(s.PromotedAt)))
	}
	res.printf("%s", textplot.Plot(textplot.Config{
		Title:  "Fig 1: cumulative votes vs minutes since submission",
		XLabel: "minutes since submission",
		YLabel: "votes",
	}, series...))
	res.metric("stories_plotted", float64(len(picks)))
	res.metric("mean_votes_at_promotion", stats.Mean(queueVotesAtPromotion))
	res.metric("mean_votes_first_day_on_frontpage", stats.Mean(postDay1))
	res.printf("Shape check: slow accumulation in the queue, sharp acceleration at")
	res.printf("promotion, saturation after a few days (novelty decay).")
	res.finish()
	return res, nil
}

// fig2a is the histogram of final vote counts over the front-page
// sample; the paper reports ~20%% below 500 votes and ~20%% above 1500.
func fig2a(r *Runner) (Result, error) {
	var res Result
	fp := r.DS.FrontPage
	if len(fp) == 0 {
		return res, errNoFrontPage
	}
	votes := make([]float64, len(fp))
	maxV := 0.0
	for i, s := range fp {
		votes[i] = float64(s.VoteCount())
		if votes[i] > maxV {
			maxV = votes[i]
		}
	}
	hi := math.Ceil(maxV/250) * 250
	if hi < 250 {
		hi = 250
	}
	h, err := stats.NewHistogram(votes, 0, hi, int(hi/250))
	if err != nil {
		return res, err
	}
	los, his := make([]float64, len(h.Bins)), make([]float64, len(h.Bins))
	counts := make([]int, len(h.Bins))
	for i, b := range h.Bins {
		los[i], his[i], counts[i] = b.Lo, b.Hi, b.Count
	}
	res.printf("%s", textplot.Histogram("Fig 2a: number of stories receiving x votes", 40, los, his, counts))
	below500 := frac(votes, func(v float64) bool { return v < 500 })
	above1500 := frac(votes, func(v float64) bool { return v > 1500 })
	above1000 := frac(votes, func(v float64) bool { return v > 1000 })
	res.metric("stories", float64(len(fp)))
	res.metric("frac_below_500", below500)
	res.metric("frac_above_1500", above1500)
	res.metric("frac_above_1000", above1000)
	res.metric("median_votes", stats.Median(votes))
	res.printf("Paper: ~20%% of front-page stories below 500 votes, ~20%% above 1500,")
	res.printf("~30%% above 1000 (Wu & Huberman's larger sample).")
	res.finish()
	return res, nil
}

// fig2b plots the per-user submission and vote count distributions on
// log-log axes; both are heavy-tailed.
func fig2b(r *Runner) (Result, error) {
	var res Result
	subs := map[digg.UserID]int{}
	votesBy := map[digg.UserID]int{}
	for _, s := range r.DS.Stories {
		if s.Promoted {
			subs[s.Submitter]++
		}
		for _, v := range s.Votes {
			votesBy[v.Voter]++
		}
	}
	subCounts := histSeries(subs)
	voteCounts := histSeries(votesBy)
	res.printf("%s", textplot.Plot(textplot.Config{
		Title:  "Fig 2b: # users making x submissions / votes (log-log)",
		XLabel: "# submissions or votes (x)",
		YLabel: "# users",
		LogX:   true, LogY: true,
	},
		textplot.Series{Name: "votes", X: voteCounts[0], Y: voteCounts[1]},
		textplot.Series{Name: "submissions", X: subCounts[0], Y: subCounts[1]},
	))
	var voteTail []float64
	for _, c := range votesBy {
		voteTail = append(voteTail, float64(c))
	}
	fit, err := stats.FitPowerLawAuto(voteTail)
	if err == nil {
		res.metric("vote_powerlaw_alpha", fit.Alpha)
	}
	res.metric("distinct_voters", float64(len(votesBy)))
	res.metric("distinct_promoted_submitters", float64(len(subs)))
	maxVotes, maxSubs := 0, 0
	for _, c := range votesBy {
		if c > maxVotes {
			maxVotes = c
		}
	}
	for _, c := range subs {
		if c > maxSubs {
			maxSubs = c
		}
	}
	res.metric("max_votes_by_one_user", float64(maxVotes))
	res.metric("max_promotions_by_one_user", float64(maxSubs))
	res.printf("Paper: most users voted on one story; a few voted on well over a")
	res.printf("hundred. Submissions are even more skewed (top-user dominance).")
	res.finish()
	return res, nil
}

// fig3a reproduces the influence histograms: how many users can see a
// story through the Friends interface at submission, after 10 and after
// 20 votes.
func fig3a(r *Runner) (Result, error) {
	var res Result
	fp := r.DS.FrontPage
	if len(fp) == 0 {
		return res, errNoFrontPage
	}
	var at1, at10, at20 []float64
	for _, s := range fp {
		voters := cascade.Voters(s)
		infl := cascade.InfluenceSeries(r.DS.Graph, voters, []int{1, 11, 21})
		at1 = append(at1, float64(infl[0]))
		at10 = append(at10, float64(infl[1]))
		at20 = append(at20, float64(infl[2]))
	}
	for _, panel := range []struct {
		name string
		data []float64
	}{{"at submission", at1}, {"after 10 votes", at10}, {"after 20 votes", at20}} {
		h, err := stats.NewHistogram(panel.data, 0, maxOf(panel.data)+1, 14)
		if err != nil {
			return res, err
		}
		los, his := make([]float64, len(h.Bins)), make([]float64, len(h.Bins))
		counts := make([]int, len(h.Bins))
		for i, b := range h.Bins {
			los[i], his[i], counts[i] = math.Round(b.Lo), math.Round(b.Hi), b.Count
		}
		res.printf("%s", textplot.Histogram("Fig 3a: story influence "+panel.name, 40, los, his, counts))
	}
	res.metric("frac_submitters_under_10_fans", frac(at1, func(v float64) bool { return v < 10 }))
	res.metric("frac_visible_to_200_after_10", frac(at10, func(v float64) bool { return v >= 200 }))
	res.metric("median_influence_after_20", stats.Median(at20))
	res.printf("Paper: just over half the stories came from submitters with fewer")
	res.printf("than ten fans; after ten votes almost half were visible to at least")
	res.printf("200 users through the Friends interface.")
	res.finish()
	return res, nil
}

// fig3b reproduces the cascade-size (in-network vote) histograms after
// 10, 20 and 30 votes.
func fig3b(r *Runner) (Result, error) {
	var res Result
	fp := r.DS.FrontPage
	if len(fp) == 0 {
		return res, errNoFrontPage
	}
	all := cascade.AnalyzeAll(r.DS.Graph, fp)
	var in10, in20, in30 []float64
	for _, st := range all {
		in10 = append(in10, float64(st.InNet10))
		in20 = append(in20, float64(st.InNet20))
		in30 = append(in30, float64(st.InNet30))
	}
	for _, panel := range []struct {
		name string
		data []float64
		bins int
	}{{"after 10 votes", in10, 11}, {"after 20 votes", in20, 11}, {"after 30 votes", in30, 11}} {
		h, err := stats.NewHistogram(panel.data, 0, maxOf(panel.data)+1, panel.bins)
		if err != nil {
			return res, err
		}
		los, his := make([]float64, len(h.Bins)), make([]float64, len(h.Bins))
		counts := make([]int, len(h.Bins))
		for i, b := range h.Bins {
			los[i], his[i], counts[i] = math.Floor(b.Lo), math.Floor(b.Hi), b.Count
		}
		res.printf("%s", textplot.Histogram("Fig 3b: cascade size "+panel.name, 40, los, his, counts))
	}
	res.metric("frac_ge5_of_first10", frac(in10, func(v float64) bool { return v >= 5 }))
	res.metric("frac_ge10_of_first20", frac(in20, func(v float64) bool { return v >= 10 }))
	res.metric("frac_ge10_of_first30", frac(in30, func(v float64) bool { return v >= 10 }))
	res.printf("Paper: 30%% of stories had at least half of the first 10 votes")
	res.printf("in-network; 28%% had >=10 in-network of the first 20; 36%% had >=10")
	res.printf("of the first 30.")
	res.finish()
	return res, nil
}

// fig4 reproduces the inverse relationship between early in-network
// votes and final popularity, for the first 6, 10 and 20 votes.
func fig4(r *Runner) (Result, error) {
	var res Result
	fp := r.DS.FrontPage
	if len(fp) == 0 {
		return res, errNoFrontPage
	}
	all := cascade.AnalyzeAll(r.DS.Graph, fp)
	for _, panel := range []struct {
		name string
		get  func(cascade.Stats) int
		key  string
	}{
		{"after 6 votes", func(s cascade.Stats) int { return s.InNet6 }, "spearman_v6"},
		{"after 10 votes", func(s cascade.Stats) int { return s.InNet10 }, "spearman_v10"},
		{"after 20 votes", func(s cascade.Stats) int { return s.InNet20 }, "spearman_v20"},
	} {
		groups := map[int][]float64{}
		var xs, ys []float64
		for _, st := range all {
			v := panel.get(st)
			groups[v] = append(groups[v], float64(st.FinalVotes))
			xs = append(xs, float64(v))
			ys = append(ys, float64(st.FinalVotes))
		}
		keys := make([]int, 0, len(groups))
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		var mx, my []float64
		for _, k := range keys {
			mx = append(mx, float64(k))
			my = append(my, stats.Median(groups[k]))
		}
		res.printf("%s", textplot.Plot(textplot.Config{
			Title:  "Fig 4: median final votes vs in-network votes " + panel.name,
			XLabel: "in-network votes",
			YLabel: "final votes (median)",
		}, textplot.Series{Name: "median", X: mx, Y: my}))
		rho, err := stats.Spearman(xs, ys)
		if err != nil {
			return res, err
		}
		res.metric(panel.key, rho)
	}
	// Contrast the extreme bands for the headline claim.
	var low, high []float64
	for _, st := range all {
		if st.InNet10 <= 2 {
			low = append(low, float64(st.FinalVotes))
		} else if st.InNet10 >= 8 {
			high = append(high, float64(st.FinalVotes))
		}
	}
	if len(low) > 0 && len(high) > 0 {
		res.metric("median_final_votes_low_innet10", stats.Median(low))
		res.metric("median_final_votes_high_innet10", stats.Median(high))
	}
	res.printf("Paper: a clear inverse relationship between interestingness and the")
	res.printf("fraction of in-network votes, visible already within 6-10 votes.")
	res.finish()
	return res, nil
}

// fig5 trains the paper's C4.5 classifier on the front-page sample
// (attributes v10 and fans1) and reports the tree plus 10-fold CV.
func fig5(r *Runner) (Result, error) {
	var res Result
	fp := r.DS.FrontPage
	if len(fp) == 0 {
		return res, errNoFrontPage
	}
	examples := core.ExtractAll(r.DS.Graph, fp)
	p, err := core.Train(examples, nil, mltree.DefaultConfig())
	if err != nil {
		return res, err
	}
	res.printf("Fig 5: learned decision tree (paper: split on v10 <= 4, then v10 > 8,")
	res.printf("then fans1 <= 85):")
	res.printf("%s", p.Tree.String())
	cv, err := core.CrossValidate(examples, nil, mltree.DefaultConfig(), 10, rng.New(r.Seed))
	if err != nil {
		return res, err
	}
	res.metric("train_stories", float64(len(examples)))
	res.metric("cv_correct", float64(cv.Correct()))
	res.metric("cv_incorrect", float64(cv.Total()-cv.Correct()))
	res.metric("cv_accuracy", cv.Accuracy())
	res.metric("tree_leaves", float64(p.Tree.Leaves()))
	res.printf("Paper: 10-fold validation on 207 stories classified 174 correctly")
	res.printf("(84%%), misclassifying 33.")
	res.finish()
	return res, nil
}

// tab1 reproduces the §5.2 holdout: predict interestingness of
// top-user upcoming stories from early votes, and compare precision
// with the platform's own promotion decision.
func tab1(r *Runner) (Result, error) {
	var res Result
	fp := r.DS.FrontPage
	if len(fp) == 0 {
		return res, errNoFrontPage
	}
	examples := core.ExtractAll(r.DS.Graph, fp)
	p, err := core.Train(examples, nil, mltree.DefaultConfig())
	if err != nil {
		return res, err
	}
	cfg := core.DefaultHoldoutConfig(r.DS.Config.SnapshotAt)
	if cfg.SnapshotAt == 0 {
		// Loaded/scraped datasets carry no config; recover the snapshot
		// as the latest promotion time.
		for _, s := range r.DS.Stories {
			if s.Promoted && s.PromotedAt > cfg.SnapshotAt {
				cfg.SnapshotAt = s.PromotedAt
			}
		}
	}
	h := core.EvaluateHoldout(r.DS.Graph, r.DS.UpcomingAtSnapshot, r.DS.RankOf, p, cfg)
	res.printf("Holdout: upcoming-queue stories by top-100 users with >=10 votes at")
	res.printf("the snapshot; labels from final vote counts.")
	res.metric("kept_stories", float64(h.Kept))
	res.metric("tp", float64(h.Confusion.TP))
	res.metric("tn", float64(h.Confusion.TN))
	res.metric("fp", float64(h.Confusion.FP))
	res.metric("fn", float64(h.Confusion.FN))
	res.metric("accuracy", h.Confusion.Accuracy())
	res.metric("digg_promoted", float64(h.DiggPromoted))
	res.metric("digg_precision", h.DiggPrecision())
	res.metric("predictor_flagged_on_promoted", float64(h.PredictorOnPromoted))
	res.metric("predictor_precision_on_promoted", h.PredictorPrecisionOnPromoted())
	res.printf("Paper: 48 stories kept; TP=4 TN=32 FP=11 FN=1; of 14 Digg-promoted")
	res.printf("stories only 5 proved interesting (P=0.36) while the predictor's 7")
	res.printf("picks contained 4 (P=0.57).")
	res.finish()
	return res, nil
}

// fig6 reproduces the final (unnumbered) figure: fans+1 vs friends+1 on
// log-log axes for all users and for top users.
func fig6(r *Runner) (Result, error) {
	var res Result
	g := r.DS.Graph
	var allX, allY []float64
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		allX = append(allX, float64(g.OutDegree(u)+1))
		allY = append(allY, float64(g.InDegree(u)+1))
	}
	var topX, topY []float64
	topSet := map[digg.UserID]bool{}
	for i, u := range r.DS.TopUsers {
		if i >= 100 {
			break
		}
		topSet[u] = true
		topX = append(topX, float64(g.OutDegree(u)+1))
		topY = append(topY, float64(g.InDegree(u)+1))
	}
	res.printf("%s", textplot.Plot(textplot.Config{
		Title:  "Fig 6: fans+1 vs friends+1 (log-log)",
		XLabel: "friends+1",
		YLabel: "fans+1",
		LogX:   true, LogY: true,
	},
		textplot.Series{Name: "all users", X: allX, Y: allY},
		textplot.Series{Name: "top users", X: topX, Y: topY},
	))
	rho, err := stats.Spearman(allX, allY)
	if err != nil {
		return res, err
	}
	res.metric("spearman_friends_fans", rho)
	var topFans, restFans []float64
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		if topSet[u] {
			topFans = append(topFans, float64(g.InDegree(u)))
		} else {
			restFans = append(restFans, float64(g.InDegree(u)))
		}
	}
	res.metric("mean_fans_top100", stats.Mean(topFans))
	res.metric("mean_fans_rest", stats.Mean(restFans))
	res.printf("Paper: top users occupy the upper-right of the scatter — they have")
	res.printf("far more friends and fans than ordinary users.")
	res.finish()
	return res, nil
}

// text1 verifies the promotion boundary the paper observed in the data:
// every front-page story has >= 43 votes and every upcoming story has
// <= 42.
func text1(r *Runner) (Result, error) {
	var res Result
	minFront := math.Inf(1)
	maxUpcoming := 0.0
	for _, s := range r.DS.Stories {
		v := float64(s.VoteCount())
		if s.Promoted {
			if v < minFront {
				minFront = v
			}
		} else if v > maxUpcoming {
			maxUpcoming = v
		}
	}
	if math.IsInf(minFront, 1) {
		minFront = 0
	}
	res.metric("min_frontpage_votes", minFront)
	res.metric("max_upcoming_votes", maxUpcoming)
	res.printf("Paper: \"we did not see any front-page stories with fewer than 43")
	res.printf("votes, nor did we see any stories in the upcoming queue with more")
	res.printf("than 42 votes.\"")
	res.finish()
	return res, nil
}

// --- small helpers ---

func frac(xs []float64, pred func(float64) bool) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if pred(x) {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// histSeries converts a count map to (value, frequency) series sorted
// by value.
func histSeries[K comparable](m map[K]int) [2][]float64 {
	counts := map[int]int{}
	for _, c := range m {
		counts[c]++
	}
	keys := make([]int, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var xs, ys []float64
	for _, k := range keys {
		xs = append(xs, float64(k))
		ys = append(ys, float64(counts[k]))
	}
	return [2][]float64{xs, ys}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
