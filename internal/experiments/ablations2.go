package experiments

import (
	"fmt"

	"diggsim/internal/core"
	"diggsim/internal/mltree"
	"diggsim/internal/rng"
)

func init() {
	register("abl-threshold", "Ablation: interestingness threshold robustness (footnote 3)", ablThreshold)
}

// ablThreshold re-labels the training sample at interestingness
// thresholds around the paper's 520 (footnote 3 explains 520 was chosen
// from the ~20th percentile at 500, nudged to keep two borderline
// stories). The classifier's cross-validated accuracy should be stable
// across the band — the result must not hinge on the exact cut.
func ablThreshold(r *Runner) (Result, error) {
	var res Result
	fp := r.DS.FrontPage
	if len(fp) == 0 {
		return res, errNoFrontPage
	}
	base := core.ExtractAll(r.DS.Graph, fp)
	res.printf("10-fold CV accuracy as the interesting/dull cut moves (paper: 520):")
	for i, threshold := range []int{400, 460, 520, 580, 700} {
		examples := make([]core.Example, len(base))
		copy(examples, base)
		positives := 0
		for j := range examples {
			examples[j].Interesting = examples[j].FinalVotes > threshold
			if examples[j].Interesting {
				positives++
			}
		}
		if positives == 0 || positives == len(examples) {
			res.printf("  threshold=%-4d degenerate labels, skipped", threshold)
			continue
		}
		cv, err := core.CrossValidate(examples, nil, mltree.DefaultConfig(), 10, rng.New(r.Seed+uint64(i)))
		if err != nil {
			return res, err
		}
		key := fmt.Sprintf("cv_accuracy_t%d", threshold)
		res.Metrics = ensure(res.Metrics)
		res.Metrics[key] = cv.Accuracy()
		res.Metrics[fmt.Sprintf("positives_t%d", threshold)] = float64(positives)
		res.printf("  threshold=%-4d positives=%-4d accuracy=%.3f (%d/%d)",
			threshold, positives, cv.Accuracy(), cv.Correct(), cv.Total())
	}
	res.printf("Expectation: accuracy varies only mildly across the band, so the")
	res.printf("paper's specific 520 cut is not load-bearing.")
	res.finish()
	return res, nil
}
