package experiments

import (
	"diggsim/internal/cascade"
	"diggsim/internal/dataset"
	"diggsim/internal/stats"
	"diggsim/internal/textplot"
)

func init() {
	register("ext3", "Cascade depth: recommendation chains stay shallow", ext3)
	register("abl-graph", "Ablation: scale-free vs Erdős–Rényi fan-graph substrate", ablGraph)
}

// ext3 measures how deep vote cascades propagate fan-to-fan. The
// paper's related work (Leskovec et al.'s viral marketing study, Wu et
// al.'s email study) found recommendation chains terminate after a few
// steps; our simulated Digg should agree, and this quantifies it.
func ext3(r *Runner) (Result, error) {
	var res Result
	fp := r.DS.FrontPage
	if len(fp) == 0 {
		return res, errNoFrontPage
	}
	depths := cascade.DepthDistribution(r.DS.Graph, fp)
	counts := map[int]int{}
	maxDepth := 0
	var asFloat []float64
	for _, d := range depths {
		counts[d]++
		if d > maxDepth {
			maxDepth = d
		}
		asFloat = append(asFloat, float64(d))
	}
	bars := make([]textplot.Bar, maxDepth+1)
	for d := 0; d <= maxDepth; d++ {
		bars[d] = textplot.Bar{Label: itoa2(d), Value: float64(counts[d])}
	}
	res.printf("%s", textplot.BarChart("Ext 3: deepest fan-to-fan chain per front-page story", 40, bars))
	res.metric("median_max_depth", stats.Median(asFloat))
	res.metric("p90_max_depth", stats.Quantile(asFloat, 0.9))
	res.metric("max_depth", float64(maxDepth))
	// Positional decay of the network effect.
	fr := cascade.InNetworkFractionByPosition(r.DS.Graph, fp, 30)
	early, late := 0.0, 0.0
	en, ln := 0, 0
	for i, f := range fr {
		if f < 0 {
			continue
		}
		if i < 10 {
			early += f
			en++
		} else if i >= 20 {
			late += f
			ln++
		}
	}
	if en > 0 {
		res.metric("innet_fraction_votes_1_10", early/float64(en))
	}
	if ln > 0 {
		res.metric("innet_fraction_votes_21_30", late/float64(ln))
	}
	res.printf("Expectation: chains terminate after a few steps (viral-marketing")
	res.printf("literature); most propagation is breadth through fan lists, not")
	res.printf("depth through long referral chains.")
	res.finish()
	return res, nil
}

// ablGraph regenerates the corpus on an Erdős–Rényi fan graph (no hubs,
// no top users) and checks what survives: the early-vote signal should
// weaken dramatically because without heavily fanned submitters there
// is no network-promotion pathway to create uninteresting front-page
// stories.
func ablGraph(r *Runner) (Result, error) {
	var res Result
	base := r.ablationConfig()

	type outcome struct {
		promoted int
		rho      float64
		dullFrac float64
	}
	measure := func(cfg dataset.Config) (outcome, error) {
		ds, err := dataset.Generate(cfg)
		if err != nil {
			return outcome{}, err
		}
		var o outcome
		o.promoted = ds.Platform.PromotedCount()
		var xs, ys []float64
		dull := 0
		for _, s := range ds.FrontPage {
			st := cascade.Analyze(ds.Graph, s)
			xs = append(xs, float64(st.InNet10))
			ys = append(ys, float64(st.FinalVotes))
			if st.FinalVotes <= 520 {
				dull++
			}
		}
		if len(xs) > 2 {
			if rho, err := stats.Spearman(xs, ys); err == nil {
				o.rho = rho
			}
			o.dullFrac = float64(dull) / float64(len(xs))
		}
		return o, nil
	}

	ba, err := measure(base)
	if err != nil {
		return res, err
	}
	erCfg := base
	erCfg.GraphModel = dataset.GraphErdosRenyi
	er, err := measure(erCfg)
	if err != nil {
		return res, err
	}
	flatCfg := base
	flatCfg.GraphModel = dataset.GraphFlat
	flat, err := measure(flatCfg)
	if err != nil {
		return res, err
	}
	res.metric("ba_promoted", float64(ba.promoted))
	res.metric("er_promoted", float64(er.promoted))
	res.metric("flat_promoted", float64(flat.promoted))
	res.metric("ba_spearman_v10_final", ba.rho)
	res.metric("er_spearman_v10_final", er.rho)
	res.metric("flat_spearman_v10_final", flat.rho)
	res.metric("ba_frac_dull_frontpage", ba.dullFrac)
	res.metric("er_frac_dull_frontpage", er.dullFrac)
	res.metric("flat_frac_dull_frontpage", flat.dullFrac)
	res.printf("Expectation: without heavy-tailed fan counts (ER / flat substrates)")
	res.printf("there are no top users whose fan base can carry a dull story to the")
	res.printf("front page, so fewer dull stories promote and the v10 signal")
	res.printf("weakens — the paper's phenomenon needs the skewed fan graph that")
	res.printf("real Digg had.")
	res.finish()
	return res, nil
}

func itoa2(d int) string {
	if d < 10 {
		return string(rune('0' + d))
	}
	return string(rune('0'+d/10)) + string(rune('0'+d%10))
}
