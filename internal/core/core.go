// Package core implements the paper's primary contribution: predicting
// how interesting a Digg story will be (its eventual vote total) from
// the pattern of its earliest votes on the social network.
//
// The signal (§5): stories whose first votes come mostly from inside
// the submitter's social neighborhood — fans of the submitter or of
// prior voters — spread by the network effect and saturate low, while
// stories whose early votes come from unconnected users carry genuine
// broad interest and become popular. The paper operationalizes this
// with a C4.5 decision tree over two attributes measured after only ten
// votes: v10 (in-network votes within the first ten, not counting the
// submitter) and fans1 (the submitter's fan count), labeling a story
// interesting when its final count exceeds 520 votes.
package core

import (
	"errors"
	"fmt"

	"diggsim/internal/cascade"
	"diggsim/internal/digg"
	"diggsim/internal/graph"
	"diggsim/internal/mltree"
	"diggsim/internal/rng"
	"diggsim/internal/stats"
)

// InterestingnessThreshold is the final-vote count above which a story
// is labeled interesting. The paper picked 520 (the ~20th percentile of
// front-page vote counts, nudged up from 500 to keep two borderline
// stories in the sample).
const InterestingnessThreshold = 520

// Interesting reports whether a final vote count qualifies as
// interesting under the paper's threshold.
func Interesting(finalVotes int) bool { return finalVotes > InterestingnessThreshold }

// Feature identifies one predictor attribute.
type Feature int

// The features studied in the paper: in-network votes within the first
// 6, 10 and 20 votes, and the submitter's fan count.
const (
	FeatureV6 Feature = iota
	FeatureV10
	FeatureV20
	FeatureFans1
)

// Name returns the paper's name for the feature.
func (f Feature) Name() string {
	switch f {
	case FeatureV6:
		return "v6"
	case FeatureV10:
		return "v10"
	case FeatureV20:
		return "v20"
	case FeatureFans1:
		return "fans1"
	default:
		return fmt.Sprintf("feature(%d)", int(f))
	}
}

// DefaultFeatures is the paper's attribute set for the Fig. 5 tree.
var DefaultFeatures = []Feature{FeatureV10, FeatureFans1}

// Example is one story converted to classifier features plus its label.
type Example struct {
	StoryID     digg.StoryID
	V6          int
	V10         int
	V20         int
	Fans1       int
	FinalVotes  int
	Interesting bool
}

// ExtractExample computes the features of a story from its vote list
// and the social graph. Only the first votes are used for v6/v10/v20,
// so the same extraction is valid at prediction time.
func ExtractExample(g *graph.Graph, s *digg.Story) Example {
	voters := cascade.Voters(s)
	return Example{
		StoryID:     s.ID,
		V6:          cascade.InNetworkCount(g, voters, 6),
		V10:         cascade.InNetworkCount(g, voters, 10),
		V20:         cascade.InNetworkCount(g, voters, 20),
		Fans1:       g.InDegree(s.Submitter),
		FinalVotes:  s.VoteCount(),
		Interesting: Interesting(s.VoteCount()),
	}
}

// ExtractAll converts a story sample to examples.
func ExtractAll(g *graph.Graph, stories []*digg.Story) []Example {
	out := make([]Example, len(stories))
	for i, s := range stories {
		out[i] = ExtractExample(g, s)
	}
	return out
}

// attrVector projects an example onto the chosen features.
func attrVector(ex Example, features []Feature) []float64 {
	out := make([]float64, len(features))
	for i, f := range features {
		switch f {
		case FeatureV6:
			out[i] = float64(ex.V6)
		case FeatureV10:
			out[i] = float64(ex.V10)
		case FeatureV20:
			out[i] = float64(ex.V20)
		case FeatureFans1:
			out[i] = float64(ex.Fans1)
		}
	}
	return out
}

// instances converts examples to mltree training instances.
func instances(exs []Example, features []Feature) []mltree.Instance {
	out := make([]mltree.Instance, len(exs))
	for i, ex := range exs {
		out[i] = mltree.Instance{Attrs: attrVector(ex, features), Label: ex.Interesting}
	}
	return out
}

func featureNames(features []Feature) []string {
	names := make([]string, len(features))
	for i, f := range features {
		names[i] = f.Name()
	}
	return names
}

// Predictor is a trained interestingness classifier.
type Predictor struct {
	Tree     *mltree.Tree
	Features []Feature
}

// Train fits the paper's classifier on labeled examples (the front-page
// training sample). A nil or empty features slice selects
// DefaultFeatures.
func Train(examples []Example, features []Feature, cfg mltree.Config) (*Predictor, error) {
	if len(examples) == 0 {
		return nil, errors.New("core: no training examples")
	}
	if len(features) == 0 {
		features = DefaultFeatures
	}
	tree, err := mltree.Train(instances(examples, features), featureNames(features), cfg)
	if err != nil {
		return nil, err
	}
	return &Predictor{Tree: tree, Features: features}, nil
}

// Predict classifies an example as interesting or not.
func (p *Predictor) Predict(ex Example) bool {
	return p.Tree.Classify(attrVector(ex, p.Features))
}

// PredictStory extracts features from a story and classifies it.
func (p *Predictor) PredictStory(g *graph.Graph, s *digg.Story) bool {
	return p.Predict(ExtractExample(g, s))
}

// Evaluate returns the confusion matrix of the predictor on examples.
func (p *Predictor) Evaluate(examples []Example) stats.Confusion {
	var c stats.Confusion
	for _, ex := range examples {
		c.Add(p.Predict(ex), ex.Interesting)
	}
	return c
}

// CrossValidate runs stratified k-fold cross-validation of the paper's
// classifier over the examples (the paper reports 10-fold validation
// classifying 174 of 207 correctly).
func CrossValidate(examples []Example, features []Feature, cfg mltree.Config, k int, r *rng.RNG) (stats.Confusion, error) {
	if len(features) == 0 {
		features = DefaultFeatures
	}
	return mltree.CrossValidate(instances(examples, features), featureNames(features), cfg, k, r)
}

// HoldoutConfig parameterizes the §5.2 holdout evaluation.
type HoldoutConfig struct {
	// MaxRank keeps only stories submitted by users with reputation
	// rank <= MaxRank (the paper used 100).
	MaxRank int
	// MinVotes keeps only stories with at least this many votes by the
	// snapshot (the paper used 10, enough to compute v10).
	MinVotes int
	// SnapshotAt is the evaluation instant; votes after it are unseen
	// by the predictor.
	SnapshotAt digg.Minutes
}

// DefaultHoldoutConfig mirrors the paper: rank <= 100, >= 10 votes.
func DefaultHoldoutConfig(snapshot digg.Minutes) HoldoutConfig {
	return HoldoutConfig{MaxRank: 100, MinVotes: 10, SnapshotAt: snapshot}
}

// HoldoutResult reports the §5.2 comparison between the predictor and
// the platform's own promotion decision.
type HoldoutResult struct {
	// Kept is the number of upcoming stories passing the filters (48 in
	// the paper).
	Kept int
	// Confusion is the predictor's TP/TN/FP/FN against eventual
	// interestingness (paper: TP=4 TN=32 FP=11 FN=1).
	Confusion stats.Confusion
	// DiggPromoted counts kept stories the platform eventually promoted
	// (paper: 14), and DiggPromotedInteresting how many of those ended
	// interesting (paper: 5, precision 0.36).
	DiggPromoted            int
	DiggPromotedInteresting int
	// PredictorOnPromoted counts Digg-promoted stories the predictor
	// flagged interesting (paper: 7), with
	// PredictorOnPromotedInteresting of them actually interesting
	// (paper: 4, precision 0.57).
	PredictorOnPromoted            int
	PredictorOnPromotedInteresting int
}

// DiggPrecision is the fraction of platform-promoted holdout stories
// that ended up interesting.
func (h HoldoutResult) DiggPrecision() float64 {
	if h.DiggPromoted == 0 {
		return 0
	}
	return float64(h.DiggPromotedInteresting) / float64(h.DiggPromoted)
}

// PredictorPrecisionOnPromoted is the predictor's precision restricted
// to the platform-promoted subset, the paper's headline comparison.
func (h HoldoutResult) PredictorPrecisionOnPromoted() float64 {
	if h.PredictorOnPromoted == 0 {
		return 0
	}
	return float64(h.PredictorOnPromotedInteresting) / float64(h.PredictorOnPromoted)
}

// EvaluateHoldout runs the paper's §5.2 test: filter the upcoming-queue
// snapshot to top-user stories with enough votes, predict from early
// votes only, and score against eventual interestingness. rankOf maps a
// user to its 1-based reputation rank (0 = unranked).
func EvaluateHoldout(g *graph.Graph, upcoming []*digg.Story, rankOf func(digg.UserID) int, p *Predictor, cfg HoldoutConfig) HoldoutResult {
	var res HoldoutResult
	for _, s := range upcoming {
		rank := rankOf(s.Submitter)
		if rank == 0 || rank > cfg.MaxRank {
			continue
		}
		if s.VotedAtOrBefore(cfg.SnapshotAt) < cfg.MinVotes {
			continue
		}
		res.Kept++
		predicted := p.PredictStory(g, s)
		actual := Interesting(s.VoteCount())
		res.Confusion.Add(predicted, actual)
		if s.Promoted {
			res.DiggPromoted++
			if actual {
				res.DiggPromotedInteresting++
			}
			if predicted {
				res.PredictorOnPromoted++
				if actual {
					res.PredictorOnPromotedInteresting++
				}
			}
		}
	}
	return res
}
