package core

import (
	"errors"
	"sort"

	"diggsim/internal/digg"
	"diggsim/internal/graph"
	"diggsim/internal/stats"
)

// Score returns the predictor's probability that the example is
// interesting, suitable for ranking and threshold sweeps (the paper's
// binary tree output, read as a leaf class probability with Laplace
// smoothing).
func (p *Predictor) Score(ex Example) float64 {
	return p.Tree.ClassifyProb(attrVector(ex, p.Features))
}

// ScoreStory extracts features and scores a story.
func (p *Predictor) ScoreStory(g *graph.Graph, s *digg.Story) float64 {
	return p.Score(ExtractExample(g, s))
}

// RankedStory pairs a story with its predicted interestingness score.
type RankedStory struct {
	StoryID digg.StoryID
	Score   float64
	Actual  bool // eventually interesting
}

// RankStories scores every story and returns them sorted by descending
// score — the recommendation-queue view of the predictor: which
// upcoming stories deserve front-page attention. Scores are only
// meaningful for stories that already have enough votes to populate the
// early-vote features (the paper uses >= 10); filter before ranking.
func (p *Predictor) RankStories(g *graph.Graph, stories []*digg.Story) []RankedStory {
	out := make([]RankedStory, len(stories))
	for i, s := range stories {
		ex := ExtractExample(g, s)
		out[i] = RankedStory{StoryID: s.ID, Score: p.Score(ex), Actual: ex.Interesting}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].StoryID < out[j].StoryID
	})
	return out
}

// AUC computes the area under the ROC curve of the predictor's scores
// over the examples; 0.5 is chance, 1.0 perfect ranking. It returns an
// error when the examples contain only one class.
func (p *Predictor) AUC(examples []Example) (float64, error) {
	scores := make([]float64, len(examples))
	labels := make([]bool, len(examples))
	for i, ex := range examples {
		scores[i] = p.Score(ex)
		labels[i] = ex.Interesting
	}
	auc := stats.AUC(scores, labels)
	if auc != auc { // NaN
		return 0, errors.New("core: AUC undefined (single-class sample)")
	}
	return auc, nil
}
