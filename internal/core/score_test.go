package core

import (
	"testing"

	"diggsim/internal/digg"
	"diggsim/internal/mltree"
)

func scoreTrainingSet() []Example {
	return []Example{
		{V10: 0, Fans1: 5, Interesting: true},
		{V10: 1, Fans1: 8, Interesting: true},
		{V10: 2, Fans1: 12, Interesting: true},
		{V10: 8, Fans1: 300, Interesting: false},
		{V10: 9, Fans1: 400, Interesting: false},
		{V10: 10, Fans1: 500, Interesting: false},
	}
}

func TestScoreOrdering(t *testing.T) {
	p, err := Train(scoreTrainingSet(), nil, mltree.Config{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	low := p.Score(Example{V10: 0, Fans1: 4})
	high := p.Score(Example{V10: 10, Fans1: 450})
	if low <= high {
		t.Errorf("score(low v10)=%v should exceed score(high v10)=%v", low, high)
	}
	if low <= 0 || low >= 1 || high <= 0 || high >= 1 {
		t.Errorf("scores not in (0,1): %v %v", low, high)
	}
}

func TestScoreConsistentWithPredict(t *testing.T) {
	p, err := Train(scoreTrainingSet(), nil, mltree.Config{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	for v10 := 0; v10 <= 10; v10++ {
		ex := Example{V10: v10, Fans1: 50}
		pred := p.Predict(ex)
		score := p.Score(ex)
		if pred != (score > 0.5) {
			t.Errorf("v10=%d: predict=%v but score=%v", v10, pred, score)
		}
	}
}

func TestAUCOnDataset(t *testing.T) {
	ds := getDS(t)
	examples := ExtractAll(ds.Graph, ds.FrontPage)
	p, err := Train(examples, nil, mltree.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	auc, err := p.AUC(examples)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.7 {
		t.Errorf("training AUC = %v; early-vote signal should rank well", auc)
	}
	if auc > 1 {
		t.Errorf("AUC = %v out of range", auc)
	}
}

func TestAUCSingleClassErrors(t *testing.T) {
	p, err := Train(scoreTrainingSet(), nil, mltree.Config{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	oneClass := []Example{{V10: 1, Interesting: true}, {V10: 2, Interesting: true}}
	if _, err := p.AUC(oneClass); err == nil {
		t.Error("single-class AUC did not error")
	}
}

func TestRankStories(t *testing.T) {
	ds := getDS(t)
	p, err := Train(ExtractAll(ds.Graph, ds.FrontPage), nil, mltree.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Like the paper's holdout, rank only top-user stories with >= 10
	// votes: with fewer votes v10 is trivially small, and §5.2 frames
	// the predictor as "especially useful for stories submitted by top
	// users", whose fan networks mask story quality.
	var sample []*digg.Story
	for _, s := range ds.UpcomingAtSnapshot {
		rank := ds.RankOf(s.Submitter)
		if rank > 0 && rank <= 100 && s.VoteCount() >= 10 {
			sample = append(sample, s)
		}
	}
	if len(sample) < 5 {
		t.Skip("tiny upcoming sample")
	}
	ranked := p.RankStories(ds.Graph, sample)
	if len(ranked) != len(sample) {
		t.Fatalf("ranked %d of %d", len(ranked), len(sample))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Score > ranked[i-1].Score {
			t.Fatal("ranking not descending")
		}
		if ranked[i].Score == ranked[i-1].Score && ranked[i].StoryID < ranked[i-1].StoryID {
			t.Fatal("tie-break not deterministic")
		}
	}
	// Scores are smoothed leaf probabilities: strictly inside (0, 1).
	for _, r := range ranked {
		if r.Score <= 0 || r.Score >= 1 {
			t.Fatalf("score out of (0,1): %+v", r)
		}
	}
	// Predictive power at corpus scale is asserted by the tab1
	// experiment tests and TestAUCOnDataset; this holdout slice is too
	// small for a stable precision claim.
}
