package core

import (
	"testing"

	"diggsim/internal/dataset"
	"diggsim/internal/digg"
	"diggsim/internal/graph"
	"diggsim/internal/mltree"
	"diggsim/internal/rng"
)

var sharedDS *dataset.Dataset

func getDS(t *testing.T) *dataset.Dataset {
	t.Helper()
	if sharedDS == nil {
		ds, err := dataset.Generate(dataset.SmallConfig())
		if err != nil {
			t.Fatal(err)
		}
		sharedDS = ds
	}
	return sharedDS
}

func TestInteresting(t *testing.T) {
	if Interesting(520) {
		t.Error("520 votes must not be interesting (threshold is exclusive)")
	}
	if !Interesting(521) {
		t.Error("521 votes must be interesting")
	}
	if Interesting(0) {
		t.Error("0 votes interesting")
	}
}

func TestFeatureNames(t *testing.T) {
	cases := map[Feature]string{
		FeatureV6: "v6", FeatureV10: "v10", FeatureV20: "v20", FeatureFans1: "fans1",
		Feature(9): "feature(9)",
	}
	for f, want := range cases {
		if got := f.Name(); got != want {
			t.Errorf("Name(%d) = %q want %q", f, got, want)
		}
	}
}

func TestExtractExample(t *testing.T) {
	// 1, 2 watch 0; 3 watches 1.
	g, err := graph.FromEdgeList(6, [][2]graph.NodeID{{1, 0}, {2, 0}, {3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	s := &digg.Story{
		ID:        3,
		Submitter: 0,
		Votes: []digg.Vote{
			{Voter: 0}, {Voter: 1}, {Voter: 5}, {Voter: 3},
		},
	}
	ex := ExtractExample(g, s)
	if ex.StoryID != 3 || ex.Fans1 != 2 || ex.FinalVotes != 4 {
		t.Errorf("example = %+v", ex)
	}
	// Votes 1 (fan of 0) and 3 (fan of 1) are in-network.
	if ex.V6 != 2 || ex.V10 != 2 || ex.V20 != 2 {
		t.Errorf("in-network counts = %+v", ex)
	}
	if ex.Interesting {
		t.Error("4-vote story labeled interesting")
	}
}

func TestAttrVectorProjection(t *testing.T) {
	ex := Example{V6: 1, V10: 2, V20: 3, Fans1: 4}
	got := attrVector(ex, []Feature{FeatureFans1, FeatureV6, FeatureV20, FeatureV10})
	want := []float64{4, 1, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("attrVector = %v want %v", got, want)
		}
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, mltree.DefaultConfig()); err == nil {
		t.Error("empty training set accepted")
	}
}

func TestTrainDefaultsToPaperFeatures(t *testing.T) {
	exs := []Example{
		{V10: 0, Fans1: 5, Interesting: true},
		{V10: 9, Fans1: 500, Interesting: false},
		{V10: 1, Fans1: 9, Interesting: true},
		{V10: 8, Fans1: 400, Interesting: false},
	}
	p, err := Train(exs, nil, mltree.Config{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Features) != 2 || p.Features[0] != FeatureV10 || p.Features[1] != FeatureFans1 {
		t.Errorf("features = %v", p.Features)
	}
	if !p.Predict(Example{V10: 0, Fans1: 3}) {
		t.Error("low-v10 story should predict interesting")
	}
	if p.Predict(Example{V10: 9, Fans1: 450}) {
		t.Error("high-v10 story should predict uninteresting")
	}
}

func TestEndToEndOnDataset(t *testing.T) {
	ds := getDS(t)
	examples := ExtractAll(ds.Graph, ds.FrontPage)
	if len(examples) != len(ds.FrontPage) {
		t.Fatalf("examples = %d", len(examples))
	}
	nInteresting := 0
	for _, ex := range examples {
		if ex.Interesting {
			nInteresting++
		}
	}
	if nInteresting == 0 || nInteresting == len(examples) {
		t.Fatalf("degenerate labels: %d/%d interesting", nInteresting, len(examples))
	}
	p, err := Train(examples, nil, mltree.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := p.Evaluate(examples)
	if c.Accuracy() < 0.7 {
		t.Errorf("training accuracy = %.3f; the early-vote signal should be strong", c.Accuracy())
	}
}

func TestInverseSignal(t *testing.T) {
	// The central claim: among front-page stories, higher v10 implies
	// lower probability of being interesting.
	ds := getDS(t)
	examples := ExtractAll(ds.Graph, ds.FrontPage)
	var lowSum, lowN, highSum, highN float64
	for _, ex := range examples {
		if ex.V10 <= 3 {
			lowN++
			if ex.Interesting {
				lowSum++
			}
		} else if ex.V10 >= 7 {
			highN++
			if ex.Interesting {
				highSum++
			}
		}
	}
	if lowN < 3 || highN < 3 {
		t.Skipf("too few stories in bands (low=%v high=%v)", lowN, highN)
	}
	if lowSum/lowN <= highSum/highN {
		t.Errorf("P(interesting | low v10)=%.2f <= P(interesting | high v10)=%.2f",
			lowSum/lowN, highSum/highN)
	}
}

func TestCrossValidateOnDataset(t *testing.T) {
	ds := getDS(t)
	examples := ExtractAll(ds.Graph, ds.FrontPage)
	r := rng.New(7)
	c, err := CrossValidate(examples, nil, mltree.DefaultConfig(), 10, r)
	if err != nil {
		t.Fatal(err)
	}
	if c.Total() != len(examples) {
		t.Errorf("CV total = %d want %d", c.Total(), len(examples))
	}
	if c.Accuracy() < 0.6 {
		t.Errorf("CV accuracy = %.3f", c.Accuracy())
	}
}

func TestEvaluateHoldout(t *testing.T) {
	ds := getDS(t)
	examples := ExtractAll(ds.Graph, ds.FrontPage)
	p, err := Train(examples, nil, mltree.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultHoldoutConfig(ds.Config.SnapshotAt)
	res := EvaluateHoldout(ds.Graph, ds.UpcomingAtSnapshot, ds.RankOf, p, cfg)
	if res.Kept == 0 {
		t.Skip("no holdout stories under small config")
	}
	if res.Confusion.Total() != res.Kept {
		t.Errorf("confusion total %d != kept %d", res.Confusion.Total(), res.Kept)
	}
	if res.DiggPromotedInteresting > res.DiggPromoted {
		t.Error("promoted-interesting exceeds promoted")
	}
	if res.PredictorOnPromoted > res.DiggPromoted {
		t.Error("predictor-on-promoted exceeds promoted")
	}
	if p := res.DiggPrecision(); p < 0 || p > 1 {
		t.Errorf("DiggPrecision = %v", p)
	}
	if p := res.PredictorPrecisionOnPromoted(); p < 0 || p > 1 {
		t.Errorf("PredictorPrecisionOnPromoted = %v", p)
	}
}

func TestHoldoutFilters(t *testing.T) {
	g, err := graph.FromEdgeList(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	mkStory := func(id int, submitter digg.UserID, votes int) *digg.Story {
		s := &digg.Story{ID: digg.StoryID(id), Submitter: submitter}
		for i := 0; i < votes; i++ {
			s.Votes = append(s.Votes, digg.Vote{Voter: digg.UserID(i), At: digg.Minutes(i)})
		}
		return s
	}
	stories := []*digg.Story{
		mkStory(0, 1, 15), // rank 1: kept
		mkStory(1, 2, 15), // rank 200: dropped (rank)
		mkStory(2, 1, 5),  // rank 1 but too few votes: dropped
		mkStory(3, 3, 15), // unranked: dropped
	}
	rankOf := func(u digg.UserID) int {
		switch u {
		case 1:
			return 1
		case 2:
			return 200
		default:
			return 0
		}
	}
	p, err := Train([]Example{
		{V10: 0, Interesting: true}, {V10: 9, Interesting: false},
		{V10: 1, Interesting: true}, {V10: 8, Interesting: false},
	}, []Feature{FeatureV10}, mltree.Config{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := EvaluateHoldout(g, stories, rankOf, p, HoldoutConfig{MaxRank: 100, MinVotes: 10, SnapshotAt: 1000})
	if res.Kept != 1 {
		t.Errorf("Kept = %d want 1", res.Kept)
	}
}

func TestHoldoutPrecisionDegenerate(t *testing.T) {
	var h HoldoutResult
	if h.DiggPrecision() != 0 || h.PredictorPrecisionOnPromoted() != 0 {
		t.Error("empty holdout precisions should be 0")
	}
	h = HoldoutResult{DiggPromoted: 14, DiggPromotedInteresting: 5,
		PredictorOnPromoted: 7, PredictorOnPromotedInteresting: 4}
	if got := h.DiggPrecision(); got < 0.35 || got > 0.36 {
		t.Errorf("DiggPrecision = %v want ~0.357", got)
	}
	if got := h.PredictorPrecisionOnPromoted(); got < 0.57 || got > 0.58 {
		t.Errorf("PredictorPrecisionOnPromoted = %v want ~0.571", got)
	}
}
