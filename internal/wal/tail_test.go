package wal

import (
	"bytes"
	"errors"
	"os"
	"testing"
	"time"
)

// tailNext drains ready records from a tail reader, failing the test on
// anything other than ErrCaughtUp.
func tailNext(t *testing.T, r *TailReader) []Record {
	t.Helper()
	var recs []Record
	for {
		rec, err := r.Next()
		if errors.Is(err, ErrCaughtUp) {
			return recs
		}
		if err != nil {
			t.Fatalf("tail Next: %v", err)
		}
		p := append([]byte(nil), rec.Payload...)
		recs = append(recs, Record{LSN: rec.LSN, Type: rec.Type, Payload: p})
	}
}

func TestTailReaderFollowsLiveWriter(t *testing.T) {
	dir := t.TempDir()
	// A tiny segment size forces rotations mid-test, so the tail reader
	// crosses sealed-segment boundaries while the writer is live.
	w, err := OpenWriter(dir, 0, Options{Sync: SyncOS, SegmentSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	r, err := OpenTailReader(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if recs := tailNext(t, r); len(recs) != 0 {
		t.Fatalf("empty log yielded %d records", len(recs))
	}

	var want []Record
	lsn := uint64(0)
	for round := 0; round < 8; round++ {
		for i := 0; i < 5; i++ {
			p := payload(round*5 + i)
			if _, err := w.Append(byte(2+i%3), p); err != nil {
				t.Fatal(err)
			}
			want = append(want, Record{LSN: lsn, Type: byte(2 + i%3), Payload: p})
			lsn++
		}
		got := tailNext(t, r)
		if len(got) != 5 {
			t.Fatalf("round %d: tailed %d records, want 5", round, len(got))
		}
		for i, rec := range got {
			exp := want[len(want)-5+i]
			if rec.LSN != exp.LSN || rec.Type != exp.Type || !bytes.Equal(rec.Payload, exp.Payload) {
				t.Fatalf("round %d record %d: got {%d %d %q}, want {%d %d %q}",
					round, i, rec.LSN, rec.Type, rec.Payload, exp.LSN, exp.Type, exp.Payload)
			}
		}
	}
	if r.LSN() != lsn {
		t.Fatalf("tail position %d, want %d", r.LSN(), lsn)
	}
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("test never rotated (%d segments); shrink SegmentSize", len(segs))
	}
}

func TestTailReaderStartsMidLog(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, 0, Options{Sync: SyncOS, SegmentSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 20; i++ {
		if _, err := w.Append(2, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	r, err := OpenTailReader(dir, 13)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	recs := tailNext(t, r)
	if len(recs) != 7 {
		t.Fatalf("tailed %d records from lsn 13, want 7", len(recs))
	}
	for i, rec := range recs {
		if rec.LSN != uint64(13+i) || !bytes.Equal(rec.Payload, payload(13+i)) {
			t.Fatalf("record %d: lsn %d payload %q", i, rec.LSN, rec.Payload)
		}
	}
}

func TestTailReaderTruncated(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, 0, Options{Sync: SyncOS, SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 30; i++ {
		if _, err := w.Append(2, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.RemoveBelow(25); err != nil {
		t.Fatal(err)
	}
	oldest, ok, err := OldestRetained(dir)
	if err != nil || !ok {
		t.Fatalf("OldestRetained: %d %v %v", oldest, ok, err)
	}
	if oldest == 0 {
		t.Fatal("RemoveBelow removed nothing; shrink SegmentSize")
	}
	r, err := OpenTailReader(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Next(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("tail below retained log returned %v, want ErrTruncated", err)
	}
	// From the oldest retained position the tail works.
	r2, err := OpenTailReader(dir, oldest)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	recs := tailNext(t, r2)
	if len(recs) == 0 || recs[0].LSN != oldest || recs[len(recs)-1].LSN != 29 {
		t.Fatalf("retained tail read %d records starting at %v", len(recs), recs)
	}
}

func TestTailReaderSealedCorruption(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, 0, Options{Sync: SyncOS, SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := w.Append(2, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatal("need a sealed segment")
	}
	// Flip a payload byte in the first (sealed) segment.
	data, err := os.ReadFile(segs[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+1] ^= 0xff
	if err := os.WriteFile(segs[0].Path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenTailReader(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	_, nerr := r.Next()
	if !errors.Is(nerr, ErrCorrupt) {
		t.Fatalf("corrupt sealed segment returned %v, want ErrCorrupt", nerr)
	}
}

// TestTailReaderConcurrent races a live writer against a tailing
// reader: every record must arrive exactly once, in order, with the
// reader treating in-flight tails as caught-up rather than corrupt.
func TestTailReaderConcurrent(t *testing.T) {
	dir := t.TempDir()
	const total = 2000
	w, err := OpenWriter(dir, 0, Options{Sync: SyncOS, SegmentSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		defer w.Close()
		for i := 0; i < total; i++ {
			if _, err := w.Append(byte(2+i%4), payload(i)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	r, err := OpenTailReader(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	seen := uint64(0)
	deadline := time.Now().Add(30 * time.Second)
	for seen < total {
		rec, err := r.Next()
		if errors.Is(err, ErrCaughtUp) {
			if time.Now().After(deadline) {
				t.Fatalf("timed out at lsn %d", seen)
			}
			time.Sleep(time.Millisecond)
			continue
		}
		if err != nil {
			t.Fatalf("tail Next at lsn %d: %v", seen, err)
		}
		if rec.LSN != seen {
			t.Fatalf("got lsn %d, want %d", rec.LSN, seen)
		}
		if !bytes.Equal(rec.Payload, payload(int(seen))) {
			t.Fatalf("lsn %d payload %q", seen, rec.Payload)
		}
		seen++
	}
	if err := <-done; err != nil {
		t.Fatalf("writer: %v", err)
	}
}
