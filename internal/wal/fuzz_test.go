package wal

import (
	"io"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALDecode feeds arbitrary bytes through the segment/record
// reader. The invariant under test: the reader never panics and never
// allocates unboundedly — every input either yields valid records or
// ends in a clean truncation (torn tail) or ErrCorrupt.
func FuzzWALDecode(f *testing.F) {
	// Seed with a valid two-record segment, a torn variant, and a few
	// corrupted mutations so the fuzzer starts at the format boundary.
	valid := appendRecord(nil, 2, []byte("hello wal"))
	valid = appendRecord(valid, 4, []byte{0x01, 0x02, 0x03, 0x04, 0x05})
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	f.Add(valid[:headerSize])   // header only
	flipped := append([]byte(nil), valid...)
	flipped[2] ^= 0xff // length corruption
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(0)), data, 0o644); err != nil {
			t.Skip()
		}
		r, err := OpenReader(dir, 0)
		if err != nil {
			return
		}
		defer r.Close()
		records := 0
		var consumed int64
		for {
			rec, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				// A single segment is always the last segment, so every
				// invalid record must classify as a torn tail, never as
				// mid-log corruption.
				t.Fatalf("single-segment read returned hard error: %v", err)
			}
			records++
			consumed += int64(headerSize) + int64(len(rec.Payload))
			if consumed > int64(len(data)) {
				t.Fatalf("decoded %d bytes from a %d-byte input", consumed, len(data))
			}
		}
		if _, off, torn := r.Torn(); torn {
			if off != consumed {
				t.Fatalf("torn offset %d != consumed %d", off, consumed)
			}
		} else if consumed != int64(len(data)) {
			t.Fatalf("clean read consumed %d of %d bytes", consumed, len(data))
		}
		if r.End() != uint64(records) {
			t.Fatalf("End %d != records %d", r.End(), records)
		}
	})
}
