package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// readAll drains a reader, returning the records (payloads copied).
func readAll(t *testing.T, dir string, at uint64) ([]Record, *Reader) {
	t.Helper()
	r, err := OpenReader(dir, at)
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	var out []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		rec.Payload = append([]byte(nil), rec.Payload...)
		out = append(out, rec)
	}
	return out, r
}

func payload(i int) []byte {
	return []byte(fmt.Sprintf("record-%04d-%s", i, "xxxxxxxxxxxxxxxx"))
}

func TestRoundTripAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, 0, Options{SegmentSize: 256, Sync: SyncOS})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		lsn, err := w.Append(byte(1+i%5), payload(i))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if lsn != uint64(i) {
			t.Fatalf("append %d: lsn %d", i, lsn)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 5 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	recs, r := readAll(t, dir, 0)
	defer r.Close()
	if len(recs) != n {
		t.Fatalf("read %d records, want %d", len(recs), n)
	}
	for i, rec := range recs {
		if rec.LSN != uint64(i) || rec.Type != byte(1+i%5) || !bytes.Equal(rec.Payload, payload(i)) {
			t.Fatalf("record %d mismatch: %+v", i, rec)
		}
	}
	if _, _, torn := r.Torn(); torn {
		t.Fatal("clean log reported torn")
	}
	if r.End() != n {
		t.Fatalf("End = %d, want %d", r.End(), n)
	}
}

func TestReaderSeek(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, 0, Options{SegmentSize: 256, Sync: SyncOS})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := w.Append(2, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, r := readAll(t, dir, 33)
	defer r.Close()
	if len(recs) != 17 || recs[0].LSN != 33 {
		t.Fatalf("seek read %d records first lsn %v, want 17 from 33", len(recs), recs)
	}
}

func TestResumeAppend(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, 0, Options{SegmentSize: 512, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := w.Append(1, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w, err = OpenWriter(dir, 0, Options{SegmentSize: 512, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.NextLSN(); got != 20 {
		t.Fatalf("resumed NextLSN = %d, want 20", got)
	}
	for i := 20; i < 30; i++ {
		if _, err := w.Append(1, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, r := readAll(t, dir, 0)
	defer r.Close()
	if len(recs) != 30 {
		t.Fatalf("read %d records, want 30", len(recs))
	}
}

// chop removes n trailing bytes from the newest segment, simulating a
// torn trailing write.
func chop(t *testing.T, dir string, n int64) {
	t.Helper()
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := segs[len(segs)-1]
	if err := os.Truncate(last.Path, last.Size-n); err != nil {
		t.Fatal(err)
	}
}

func TestTornTailTruncatedOnRead(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, 0, Options{Sync: SyncOS})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := w.Append(1, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	chop(t, dir, 5) // cut into the last record
	recs, r := readAll(t, dir, 0)
	defer r.Close()
	if len(recs) != 9 {
		t.Fatalf("read %d records after torn tail, want 9", len(recs))
	}
	if _, _, torn := r.Torn(); !torn {
		t.Fatal("torn tail not reported")
	}
	// Reopening the writer truncates the tail and resumes at LSN 9.
	w, err = OpenWriter(dir, 0, Options{Sync: SyncOS})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.NextLSN(); got != 9 {
		t.Fatalf("NextLSN after torn tail = %d, want 9", got)
	}
	if _, err := w.Append(7, []byte("after-recovery")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, r2 := readAll(t, dir, 0)
	defer r2.Close()
	if len(recs) != 10 || recs[9].Type != 7 {
		t.Fatalf("post-recovery log wrong: %d records", len(recs))
	}
	if _, _, torn := r2.Torn(); torn {
		t.Fatal("log still torn after writer truncation")
	}
}

func TestMidLogCorruptionIsHardError(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, 0, Options{SegmentSize: 256, Sync: SyncOS})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := w.Append(1, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("need several segments, got %d", len(segs))
	}
	// Flip a payload byte in the middle of the first segment.
	data, err := os.ReadFile(segs[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segs[0].Path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(dir, 0)
	if err != nil && errors.Is(err, ErrCorrupt) {
		return // corruption may surface during the constructor's seek
	}
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for {
		_, err := r.Next()
		if err == io.EOF {
			t.Fatal("mid-log corruption read through to EOF without error")
		}
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("got %v, want ErrCorrupt", err)
			}
			return
		}
	}
}

func TestMissingSegmentIsHardError(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, 0, Options{SegmentSize: 256, Sync: SyncOS})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := w.Append(1, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("need at least 3 segments, got %d", len(segs))
	}
	if err := os.Remove(segs[1].Path); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for {
		_, err := r.Next()
		if err == io.EOF {
			t.Fatal("gap in segment sequence read through to EOF")
		}
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("got %v, want ErrCorrupt", err)
			}
			return
		}
	}
}

func TestAppendBatchGroupsRecords(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, 0, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]Entry, 100)
	for i := range entries {
		entries[i] = Entry{Type: 4, Payload: payload(i)}
	}
	first, err := w.AppendBatch(entries)
	if err != nil {
		t.Fatal(err)
	}
	if first != 0 {
		t.Fatalf("first lsn = %d", first)
	}
	if got := w.NextLSN(); got != 100 {
		t.Fatalf("NextLSN = %d, want 100", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, r := readAll(t, dir, 0)
	defer r.Close()
	if len(recs) != 100 {
		t.Fatalf("read %d records, want 100", len(recs))
	}
}

func TestRemoveBelow(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, 0, Options{SegmentSize: 256, Sync: SyncOS})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if _, err := w.Append(1, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 4 {
		t.Fatalf("need several segments, got %d", len(segs))
	}
	cut := segs[2].FirstLSN // everything below segment 2 must go
	if err := w.RemoveBelow(cut); err != nil {
		t.Fatal(err)
	}
	left, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if left[0].FirstLSN != cut {
		t.Fatalf("oldest surviving segment starts at %d, want %d", left[0].FirstLSN, cut)
	}
	// The surviving log must still read cleanly from the cut.
	recs, r := readAll(t, dir, cut)
	defer r.Close()
	if len(recs) != 60-int(cut) || recs[0].LSN != cut {
		t.Fatalf("post-truncation read: %d records from %d", len(recs), recs[0].LSN)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenWriterStartsAtGivenLSN(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, 42, Options{Sync: SyncOS})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.NextLSN(); got != 42 {
		t.Fatalf("NextLSN = %d, want 42", got)
	}
	if _, err := w.Append(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].FirstLSN != 42 {
		t.Fatalf("segment = %+v", segs)
	}
	if filepath.Base(segs[0].Path) != segmentName(42) {
		t.Fatalf("segment name %s", segs[0].Path)
	}
}
