package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"diggsim/internal/obs"
)

// Append latency (the buffered group write) and fsync latency are
// tracked separately: the write is where group-commit batching shows
// up, the fsync is where the disk does.
var (
	histAppend = obs.Default.Histogram("diggsim_wal_append_seconds", "",
		"WAL group append latency: one buffered write of the encoded record group, excluding fsync.")
	histFsync = obs.Default.Histogram("diggsim_wal_fsync_seconds", "",
		"WAL fsync latency (per group under SyncAlways; per flush otherwise).")
)

// Writer appends records to a segmented log. All methods are safe for
// concurrent use — the interval flusher shares the writer with the
// append path — though the durable store additionally serializes
// appends behind the serving layer's write lock (single-writer
// discipline at the command level).
//
// Any write or sync error is sticky: once the disk has failed, every
// subsequent call returns the first error rather than silently
// diverging the log from the applied state.
type Writer struct {
	mu   sync.Mutex
	dir  string
	opts Options

	f        *os.File
	segStart uint64 // first LSN of the active segment
	size     int64  // bytes written to the active segment
	next     uint64 // LSN of the next record to append
	buf      []byte // encode scratch
	dirty    bool   // unsynced bytes pending
	err      error  // sticky failure

	flushStop chan struct{}
	flushDone chan struct{}
}

// OpenWriter opens the log in dir for appending, creating the
// directory's first segment at LSN start if the log is empty. On an
// existing log it scans the final segment, truncates any torn tail,
// and resumes at the next LSN (start is ignored). Earlier segments are
// trusted — recovery verifies them through the Reader before the
// writer reopens the log.
func OpenWriter(dir string, start uint64, opts Options) (*Writer, error) {
	opts = opts.withDefaults()
	segs, err := ListSegments(dir)
	if err != nil {
		return nil, err
	}
	w := &Writer{dir: dir, opts: opts}
	if len(segs) == 0 {
		if err := w.createSegment(start); err != nil {
			return nil, err
		}
	} else {
		last := segs[len(segs)-1]
		count, validSize, err := scanSegment(last.Path)
		if err != nil {
			return nil, err
		}
		f, err := os.OpenFile(last.Path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, err
		}
		if validSize < last.Size {
			// Torn tail: cut the file back to the last valid record so
			// new appends start on a clean boundary.
			if err := f.Truncate(validSize); err != nil {
				f.Close()
				return nil, err
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, err
			}
		}
		if _, err := f.Seek(validSize, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
		w.f = f
		w.segStart = last.FirstLSN
		w.size = validSize
		w.next = last.FirstLSN + count
	}
	if opts.Sync == SyncInterval {
		w.flushStop = make(chan struct{})
		w.flushDone = make(chan struct{})
		go w.flushLoop()
	}
	return w, nil
}

// scanSegment walks one segment file and returns the number of valid
// records and the byte offset where valid data ends. Invalid trailing
// data is reported through a short validSize, never as an error: at
// the writer's level every tail is presumed torn (the reader is the
// component that distinguishes corruption during recovery).
func scanSegment(path string) (count uint64, validSize int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	var hdr [headerSize]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return count, validSize, nil
		}
		length := binary.LittleEndian.Uint32(hdr[1:5])
		if length > MaxRecordSize {
			return count, validSize, nil
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		p := payload[:length]
		if _, err := io.ReadFull(f, p); err != nil {
			return count, validSize, nil
		}
		crc := crc32.Update(0, castagnoli, hdr[:5])
		crc = crc32.Update(crc, castagnoli, p)
		if crc != binary.LittleEndian.Uint32(hdr[5:9]) {
			return count, validSize, nil
		}
		count++
		validSize += int64(headerSize) + int64(length)
	}
}

// createSegment opens a fresh segment whose first record will be lsn.
// Caller holds mu (or is the constructor).
func (w *Writer) createSegment(lsn uint64) error {
	path := filepath.Join(w.dir, segmentName(lsn))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	// Make the segment's directory entry durable so a crash right after
	// rotation cannot lose the whole file.
	if w.opts.Sync != SyncOS {
		if err := syncDir(w.dir); err != nil {
			f.Close()
			return err
		}
	}
	w.f = f
	w.segStart = lsn
	w.size = 0
	w.next = lsn
	return nil
}

// syncDir fsyncs a directory, making renames and creates within it
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// rotateLocked closes the active segment (syncing it unless the policy
// is SyncOS) and opens the next one.
func (w *Writer) rotateLocked() error {
	if w.dirty && w.opts.Sync != SyncOS {
		if err := w.f.Sync(); err != nil {
			return err
		}
		w.dirty = false
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.f = nil
	return w.createSegment(w.next)
}

// Append appends one record and applies the sync policy. It returns
// the record's LSN.
func (w *Writer) Append(typ byte, payload []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	if len(payload) > MaxRecordSize {
		return 0, fmt.Errorf("wal: record payload %d bytes exceeds MaxRecordSize", len(payload))
	}
	w.buf = appendRecord(w.buf[:0], typ, payload)
	return w.commitLocked(1)
}

// AppendBatch appends all entries as one write to the active segment —
// one syscall and, under SyncAlways, one fsync for the whole group.
// This is the group-commit primitive behind the batch endpoints and
// the live stepper: durability cost is paid per batch, not per record.
// It returns the LSN of the first entry.
func (w *Writer) AppendBatch(entries []Entry) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	if len(entries) == 0 {
		return w.next, nil
	}
	w.buf = w.buf[:0]
	for _, e := range entries {
		if len(e.Payload) > MaxRecordSize {
			return 0, fmt.Errorf("wal: record payload %d bytes exceeds MaxRecordSize", len(e.Payload))
		}
		w.buf = appendRecord(w.buf, e.Type, e.Payload)
	}
	return w.commitLocked(uint64(len(entries)))
}

// commitLocked writes the encoded group in w.buf as one write and
// applies the sync policy. Caller holds mu.
func (w *Writer) commitLocked(n uint64) (uint64, error) {
	// Rotate first if this group would push a non-empty segment past
	// the threshold; a group larger than the threshold still lands in
	// one segment (the threshold is soft), keeping batches atomic with
	// respect to segment boundaries.
	if w.size > 0 && w.size+int64(len(w.buf)) > w.opts.SegmentSize {
		if err := w.rotateLocked(); err != nil {
			w.err = err
			return 0, err
		}
	}
	first := w.next
	writeStart := time.Now()
	_, err := w.f.Write(w.buf)
	histAppend.Observe(time.Since(writeStart))
	if err != nil {
		w.err = err
		return 0, err
	}
	w.size += int64(len(w.buf))
	w.next += n
	w.dirty = true
	if w.opts.Sync == SyncAlways {
		syncStart := time.Now()
		err := w.f.Sync()
		histFsync.Observe(time.Since(syncStart))
		if err != nil {
			w.err = err
			return 0, err
		}
		w.dirty = false
	}
	return first, nil
}

// Sync flushes appended records to stable storage regardless of
// policy. The durable store calls it before taking a checkpoint and on
// graceful shutdown.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

func (w *Writer) syncLocked() error {
	if w.err != nil {
		return w.err
	}
	if !w.dirty {
		return nil
	}
	syncStart := time.Now()
	err := w.f.Sync()
	histFsync.Observe(time.Since(syncStart))
	if err != nil {
		w.err = err
		return err
	}
	w.dirty = false
	return nil
}

// flushLoop is the SyncInterval background flusher.
func (w *Writer) flushLoop() {
	defer close(w.flushDone)
	ticker := time.NewTicker(w.opts.SyncEvery)
	defer ticker.Stop()
	for {
		select {
		case <-w.flushStop:
			return
		case <-ticker.C:
			// A failed background sync sticks in w.err; the next append
			// surfaces it to the caller.
			_ = w.Sync()
		}
	}
}

// NextLSN returns the LSN the next appended record will receive.
func (w *Writer) NextLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.next
}

// Rotate seals the active segment and opens a fresh one starting at
// the next LSN. The checkpointer calls it before RemoveBelow so the
// retained log begins exactly at the checkpoint — without it the
// active segment pins every record it holds, however old. An empty
// active segment is already positioned at the next LSN and is left
// alone.
func (w *Writer) Rotate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.f == nil || w.size == 0 {
		return w.err
	}
	if err := w.rotateLocked(); err != nil {
		w.err = err
		return err
	}
	return nil
}

// RemoveBelow deletes every segment all of whose records are below
// lsn. The segment containing lsn (and the active segment) always
// survive, so the log always covers [checkpoint, head].
func (w *Writer) RemoveBelow(lsn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	segs, err := ListSegments(w.dir)
	if err != nil {
		return err
	}
	for i, s := range segs {
		// A segment's records end where the next segment begins; the
		// last (active) segment is never removable.
		if i+1 >= len(segs) || segs[i+1].FirstLSN > lsn || s.FirstLSN == w.segStart {
			break
		}
		if err := os.Remove(s.Path); err != nil {
			return err
		}
	}
	return nil
}

// Close stops the background flusher (if any), syncs outstanding
// records, and closes the active segment.
func (w *Writer) Close() error {
	if w.flushStop != nil {
		close(w.flushStop)
		<-w.flushDone
		w.flushStop = nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return w.err
	}
	err := w.syncLocked()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}
