// Package wal implements the segmented append-only binary log
// underneath the durable store (internal/durable): the generic record
// framing, the segment files, the writer with its three fsync
// policies, and the reader with torn-tail truncation.
//
// # On-disk format
//
// A log is a directory of segment files named wal-%016x.seg, where the
// hex field is the LSN (log sequence number, a zero-based record
// index) of the segment's first record. Segments are contiguous: a
// segment's first LSN equals the previous segment's first LSN plus its
// record count, which is what lets a reader start mid-log without
// scanning earlier files.
//
// Each record is a fixed header followed by an opaque payload:
//
//	type     uint8      record type tag (opaque to this package)
//	length   uint32 LE  payload length (<= MaxRecordSize)
//	crc      uint32 LE  CRC32-C over type, length and payload
//	payload  length bytes
//
// # Failure semantics
//
// A crash can leave a partially written record only at the tail of the
// newest segment. The reader therefore treats any framing or CRC
// failure in the final segment as a torn tail: reading stops at the
// last valid record and Torn reports the cut. The same failure in any
// earlier segment — or a gap between a segment's record count and the
// next segment's first LSN — cannot be produced by a crash and is
// reported as ErrCorrupt, a hard error. OpenWriter physically
// truncates a torn tail before resuming appends.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

const (
	// headerSize is the fixed record header: type (1) + length (4) +
	// CRC32-C (4).
	headerSize = 1 + 4 + 4

	// MaxRecordSize bounds a single record's payload. Anything larger
	// in a header is treated as corruption, which keeps the reader from
	// allocating unbounded memory on garbage input.
	MaxRecordSize = 64 << 20

	segPrefix = "wal-"
	segSuffix = ".seg"
)

// DefaultSegmentSize is the rotation threshold when Options.SegmentSize
// is zero.
const DefaultSegmentSize = 64 << 20

// DefaultSyncEvery is the background flush cadence of SyncInterval when
// Options.SyncEvery is zero.
const DefaultSyncEvery = 50 * time.Millisecond

// castagnoli is the CRC32-C table; the polynomial with hardware support
// on both amd64 and arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports mid-log corruption: an invalid record that cannot
// be explained by a torn trailing write. Recovery must not proceed
// past it silently.
var ErrCorrupt = errors.New("wal: log corrupt")

// SyncPolicy selects when appended records reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every Append/AppendBatch: a record is on
	// stable storage before the call returns. The safest and slowest
	// policy.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs from a background flusher every SyncEvery: a
	// crash can lose at most the last interval's records, while the
	// append path never waits on the disk.
	SyncInterval
	// SyncOS never fsyncs: the OS page cache decides. A process crash
	// loses nothing (the kernel has the writes); a machine crash can
	// lose whatever the kernel had not flushed.
	SyncOS
)

// String names the policy using the flag spelling (-fsync always|interval|os).
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOS:
		return "os"
	default:
		return fmt.Sprintf("syncpolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses the -fsync flag spelling.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "os":
		return SyncOS, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or os)", s)
	}
}

// Options parameterizes a Writer. The zero value means SyncAlways,
// DefaultSegmentSize rotation and DefaultSyncEvery flushing.
type Options struct {
	// SegmentSize is the soft rotation threshold: a segment that would
	// exceed it rotates before the next append. A single record or
	// batch larger than the threshold still lands in one segment.
	SegmentSize int64
	// Sync is the fsync policy.
	Sync SyncPolicy
	// SyncEvery is the background flush cadence under SyncInterval.
	SyncEvery time.Duration
}

func (o Options) withDefaults() Options {
	if o.SegmentSize <= 0 {
		o.SegmentSize = DefaultSegmentSize
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = DefaultSyncEvery
	}
	return o
}

// Record is one log record as returned by the reader.
type Record struct {
	// LSN is the record's zero-based index in the whole log.
	LSN uint64
	// Type is the record type tag (opaque to this package).
	Type byte
	// Payload is the record body. It is valid only until the next
	// Next call on the reader that produced it.
	Payload []byte
}

// Entry is one record to append: a type tag and an opaque payload.
type Entry struct {
	Type    byte
	Payload []byte
}

// appendRecord appends the framed encoding of one record to b.
func appendRecord(b []byte, typ byte, payload []byte) []byte {
	var hdr [headerSize]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	crc := crc32.Update(0, castagnoli, hdr[:5])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[5:9], crc)
	b = append(b, hdr[:]...)
	return append(b, payload...)
}

// SegmentInfo describes one segment file on disk.
type SegmentInfo struct {
	// Path is the absolute or dir-relative file path.
	Path string
	// FirstLSN is the LSN of the segment's first record.
	FirstLSN uint64
	// Size is the file size in bytes.
	Size int64
}

// segmentName returns the file name of the segment whose first record
// has the given LSN.
func segmentName(lsn uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, lsn, segSuffix)
}

// parseSegmentName extracts the first LSN from a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	if len(hex) != 16 {
		return 0, false
	}
	var lsn uint64
	if _, err := fmt.Sscanf(hex, "%016x", &lsn); err != nil {
		return 0, false
	}
	return lsn, true
}

// ListSegments returns the log's segment files in LSN order. A
// directory with no segments returns an empty slice and no error.
func ListSegments(dir string) ([]SegmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []SegmentInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		lsn, ok := parseSegmentName(e.Name())
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		segs = append(segs, SegmentInfo{
			Path:     filepath.Join(dir, e.Name()),
			FirstLSN: lsn,
			Size:     info.Size(),
		})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].FirstLSN < segs[j].FirstLSN })
	return segs, nil
}

// RemoveSegments deletes every segment file in dir. The durable store
// uses it when recovery finds a log whose tail predates the newest
// checkpoint (possible under SyncOS): the checkpoint supersedes the
// whole log, so the stale segments are discarded and a fresh one
// starts at the checkpoint LSN.
func RemoveSegments(dir string) error {
	segs, err := ListSegments(dir)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if err := os.Remove(s.Path); err != nil {
			return err
		}
	}
	return nil
}
