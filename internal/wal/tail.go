package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// ErrCaughtUp is returned by TailReader.Next when the log currently has
// no record at the reader's position: the reader has consumed everything
// the writer has made visible. Poll again after the writer appends.
var ErrCaughtUp = errors.New("wal: caught up with live log")

// ErrTruncated is returned by TailReader.Next when the reader's position
// lies below the oldest retained segment — the records it wants were
// pruned (Writer.RemoveBelow after a checkpoint). A tailing replica must
// restart from a newer snapshot instead of the log.
var ErrTruncated = errors.New("wal: position below retained log")

// TailReader follows a live log concurrently with a Writer on the same
// directory — the replication source's view of the primary's WAL.
//
// Unlike Reader it never buffers ahead of what it has validated: every
// record is read with ReadAt at an absolute offset, so a partially
// written tail record is simply retried on the next call rather than
// misread. The classification rule that makes this safe is append-only
// visibility: the writer extends the active segment with ordered
// write(2) calls and never rewrites bytes, so any byte the reader
// fetched successfully is final. A short read at the tail of the active
// segment therefore means "in flight" (ErrCaughtUp), while a fully
// readable record that fails its CRC — or a sealed segment that ends
// short of its successor's first LSN — is real corruption.
//
// Segment rotation is followed automatically: when the current segment
// ends cleanly and a successor whose FirstLSN matches the reader's
// position exists, reading continues there. If the position has been
// pruned out from under the reader, Next returns ErrTruncated.
type TailReader struct {
	dir string
	// next is the LSN of the next record to parse; records below skipTo
	// are CRC-verified but not returned (catch-up after (re)opening a
	// segment mid-log).
	next   uint64
	skipTo uint64

	f        *os.File
	segFirst uint64
	segPath  string
	off      int64
	buf      []byte
}

// OpenTailReader returns a tail reader positioned so that the first
// successful Next returns the record with LSN at. Position validation is
// lazy: a position below the retained log surfaces as ErrTruncated from
// Next, not from here.
func OpenTailReader(dir string, at uint64) (*TailReader, error) {
	if dir == "" {
		return nil, errors.New("wal: empty tail directory")
	}
	return &TailReader{dir: dir, next: at}, nil
}

// LSN returns the LSN of the next record Next will return.
func (r *TailReader) LSN() uint64 {
	if r.skipTo > r.next {
		return r.skipTo
	}
	return r.next
}

// Next returns the next record, ErrCaughtUp when the log has nothing
// more yet, ErrTruncated when the position was pruned, or an error
// wrapping ErrCorrupt. The payload is valid only until the next call.
func (r *TailReader) Next() (Record, error) {
	for {
		if r.f == nil {
			if err := r.resolve(); err != nil {
				return Record{}, err
			}
		}
		var hdr [headerSize]byte
		n, err := r.f.ReadAt(hdr[:], r.off)
		if err != nil && err != io.EOF {
			return Record{}, err
		}
		if n < headerSize {
			if err := r.advance(); err != nil {
				return Record{}, err
			}
			continue
		}
		length := binary.LittleEndian.Uint32(hdr[1:5])
		if length > MaxRecordSize {
			return Record{}, fmt.Errorf("%w: record length %d exceeds limit at %s offset %d",
				ErrCorrupt, length, r.segPath, r.off)
		}
		if cap(r.buf) < int(length) {
			r.buf = make([]byte, length)
		}
		payload := r.buf[:length]
		n, err = r.f.ReadAt(payload, r.off+int64(headerSize))
		if err != nil && err != io.EOF {
			return Record{}, err
		}
		if n < int(length) {
			if err := r.advance(); err != nil {
				return Record{}, err
			}
			continue
		}
		crc := crc32.Update(0, castagnoli, hdr[:5])
		crc = crc32.Update(crc, castagnoli, payload)
		if crc != binary.LittleEndian.Uint32(hdr[5:9]) {
			// The full record was readable, so its bytes are final:
			// this is corruption, not an in-flight append.
			return Record{}, fmt.Errorf("%w: record checksum mismatch at %s offset %d",
				ErrCorrupt, r.segPath, r.off)
		}
		rec := Record{LSN: r.next, Type: hdr[0], Payload: payload}
		r.next++
		r.off += int64(headerSize) + int64(length)
		if rec.LSN < r.skipTo {
			continue
		}
		return rec, nil
	}
}

// resolve opens the segment containing r.LSN(). Records between the
// segment's first LSN and the target position are re-verified by the
// main loop (skipTo) rather than trusted blindly.
func (r *TailReader) resolve() error {
	at := r.LSN()
	segs, err := ListSegments(r.dir)
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		return ErrCaughtUp
	}
	if at < segs[0].FirstLSN {
		return fmt.Errorf("%w: want lsn %d, oldest retained segment starts at %d",
			ErrTruncated, at, segs[0].FirstLSN)
	}
	start := 0
	for i, s := range segs {
		if s.FirstLSN <= at {
			start = i
		}
	}
	f, err := os.Open(segs[start].Path)
	if err != nil {
		if os.IsNotExist(err) {
			// Pruned between listing and opening.
			return fmt.Errorf("%w: segment %s removed", ErrTruncated, segs[start].Path)
		}
		return err
	}
	r.f = f
	r.segFirst = segs[start].FirstLSN
	r.segPath = segs[start].Path
	r.off = 0
	r.skipTo = at
	r.next = r.segFirst
	return nil
}

// advance classifies a short read at the current position: caught up
// (active segment, nothing more yet), a clean rotation into a successor
// segment, or corruption (a sealed segment ending short of where its
// successor begins).
func (r *TailReader) advance() error {
	segs, err := ListSegments(r.dir)
	if err != nil {
		return err
	}
	var succ *SegmentInfo
	current := false
	for i := range segs {
		if segs[i].FirstLSN == r.segFirst {
			current = true
		}
		if segs[i].FirstLSN > r.segFirst {
			succ = &segs[i]
			break
		}
	}
	if succ == nil {
		return ErrCaughtUp
	}
	if succ.FirstLSN == r.next {
		// Clean end of a sealed segment: continue in the successor.
		r.f.Close()
		r.f = nil
		return nil
	}
	if !current {
		// The segment we were reading (and possibly its successors) was
		// pruned out from under us: the position is gone, not corrupt.
		return fmt.Errorf("%w: segment %s pruned under the reader at lsn %d",
			ErrTruncated, r.segPath, r.next)
	}
	return fmt.Errorf("%w: segment %s ends at lsn %d but %s starts at %d",
		ErrCorrupt, r.segPath, r.next, succ.Path, succ.FirstLSN)
}

// OldestRetained returns the first LSN still covered by the log's
// segments, and ok=false when the directory has no segments. The
// replication source uses it to reject tail requests below the retained
// span before opening a stream.
func OldestRetained(dir string) (lsn uint64, ok bool, err error) {
	segs, err := ListSegments(dir)
	if err != nil || len(segs) == 0 {
		return 0, false, err
	}
	return segs[0].FirstLSN, true, nil
}

// Close releases the reader's file handle.
func (r *TailReader) Close() error {
	if r.f != nil {
		err := r.f.Close()
		r.f = nil
		return err
	}
	return nil
}
