package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Reader iterates the records of a log in LSN order. It is read-only
// and tolerant of a torn tail; it must not run concurrently with a
// Writer on the same directory (the durable store replays before it
// opens its writer).
type Reader struct {
	segs []SegmentInfo
	// seg is the index of the segment currently being read.
	seg  int
	f    *os.File
	br   *bufio.Reader
	next uint64 // LSN of the next record
	off  int64  // byte offset of the next record within the segment
	buf  []byte // payload scratch, reused across records

	torn     bool
	tornPath string
	tornOff  int64
	done     bool
}

// OpenReader opens the log in dir for reading, positioned so that the
// first Next returns the first record with LSN >= at (pass 0 to read
// the whole log). Records before at inside the starting segment are
// skipped but still CRC-verified, so corruption never passes silently.
func OpenReader(dir string, at uint64) (*Reader, error) {
	segs, err := ListSegments(dir)
	if err != nil {
		return nil, err
	}
	r := &Reader{segs: segs}
	if len(segs) == 0 {
		r.done = true
		return r, nil
	}
	// Start at the last segment whose first LSN is <= at.
	start := 0
	for i, s := range segs {
		if s.FirstLSN <= at {
			start = i
		}
	}
	if err := r.openSegment(start); err != nil {
		return nil, err
	}
	// Skip (but verify) records below the requested position.
	for r.next < at {
		if _, err := r.Next(); err == io.EOF {
			break
		} else if err != nil {
			r.Close()
			return nil, err
		}
	}
	return r, nil
}

func (r *Reader) openSegment(i int) error {
	if r.f != nil {
		r.f.Close()
		r.f = nil
	}
	f, err := os.Open(r.segs[i].Path)
	if err != nil {
		return err
	}
	r.seg = i
	r.f = f
	if r.br == nil {
		r.br = bufio.NewReaderSize(f, 1<<16)
	} else {
		r.br.Reset(f)
	}
	r.next = r.segs[i].FirstLSN
	r.off = 0
	return nil
}

// lastSegment reports whether the segment currently being read is the
// final one, where an invalid record means a torn tail rather than
// corruption.
func (r *Reader) lastSegment() bool { return r.seg == len(r.segs)-1 }

// fail classifies an invalid record: torn tail in the final segment,
// hard ErrCorrupt anywhere else.
func (r *Reader) fail(what string) error {
	if r.lastSegment() {
		r.torn = true
		r.tornPath = r.segs[r.seg].Path
		r.tornOff = r.off
		r.done = true
		return io.EOF
	}
	r.done = true
	return fmt.Errorf("%w: %s at %s offset %d", ErrCorrupt, what, r.segs[r.seg].Path, r.off)
}

// Next returns the next record, io.EOF at the end of the log (including
// after a truncated tail — check Torn), or an error wrapping ErrCorrupt
// on mid-log corruption. The returned payload is only valid until the
// following Next call.
func (r *Reader) Next() (Record, error) {
	for {
		if r.done {
			return Record{}, io.EOF
		}
		var hdr [headerSize]byte
		n, err := io.ReadFull(r.br, hdr[:])
		if err == io.EOF && n == 0 {
			// Clean end of this segment.
			if r.lastSegment() {
				r.done = true
				return Record{}, io.EOF
			}
			// Contiguity check: the next segment must pick up exactly
			// where this one ended, or records have gone missing.
			if r.segs[r.seg+1].FirstLSN != r.next {
				r.done = true
				return Record{}, fmt.Errorf("%w: segment %s starts at lsn %d, want %d",
					ErrCorrupt, r.segs[r.seg+1].Path, r.segs[r.seg+1].FirstLSN, r.next)
			}
			if err := r.openSegment(r.seg + 1); err != nil {
				r.done = true
				return Record{}, err
			}
			continue
		}
		if err != nil {
			return Record{}, r.fail("partial record header")
		}
		length := binary.LittleEndian.Uint32(hdr[1:5])
		if length > MaxRecordSize {
			return Record{}, r.fail(fmt.Sprintf("record length %d exceeds limit", length))
		}
		if cap(r.buf) < int(length) {
			r.buf = make([]byte, length)
		}
		payload := r.buf[:length]
		if _, err := io.ReadFull(r.br, payload); err != nil {
			return Record{}, r.fail("partial record payload")
		}
		crc := crc32.Update(0, castagnoli, hdr[:5])
		crc = crc32.Update(crc, castagnoli, payload)
		if crc != binary.LittleEndian.Uint32(hdr[5:9]) {
			return Record{}, r.fail("record checksum mismatch")
		}
		rec := Record{LSN: r.next, Type: hdr[0], Payload: payload}
		r.next++
		r.off += int64(headerSize) + int64(length)
		return rec, nil
	}
}

// End returns the LSN one past the last valid record read so far; after
// the reader has returned io.EOF it is the end of the valid log.
func (r *Reader) End() uint64 { return r.next }

// Torn reports whether the log ends in a torn (partially written or
// checksum-failing) tail, and if so in which file and at which byte
// offset the valid data ends. OpenWriter truncates exactly there.
func (r *Reader) Torn() (path string, off int64, torn bool) {
	return r.tornPath, r.tornOff, r.torn
}

// Close releases the reader's file handle.
func (r *Reader) Close() error {
	if r.f != nil {
		err := r.f.Close()
		r.f = nil
		return err
	}
	return nil
}
