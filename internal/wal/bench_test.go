package wal

import (
	"testing"
)

// BenchmarkWALAppend measures the raw append path — encode, CRC,
// buffered write — with the OS sync policy, so the number reflects the
// log machinery rather than the disk's fsync latency (that cost is the
// policy knob, measured end to end by BenchmarkDurableBatchDigg).
func BenchmarkWALAppend(b *testing.B) {
	dir := b.TempDir()
	w, err := OpenWriter(dir, 0, Options{Sync: SyncOS})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i)
	}
	b.SetBytes(int64(headerSize + len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Append(4, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppendBatch measures group commit: 100 records per
// AppendBatch call, one write syscall for the group.
func BenchmarkWALAppendBatch(b *testing.B) {
	dir := b.TempDir()
	w, err := OpenWriter(dir, 0, Options{Sync: SyncOS})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	const group = 100
	payload := make([]byte, 64)
	entries := make([]Entry, group)
	for i := range entries {
		entries[i] = Entry{Type: 4, Payload: payload}
	}
	b.SetBytes(int64(group * (headerSize + len(payload))))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.AppendBatch(entries); err != nil {
			b.Fatal(err)
		}
	}
}
