package load

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"diggsim/internal/apiv1"
	"diggsim/internal/digg"
	"diggsim/internal/graph"
	"diggsim/internal/httpapi"
	"diggsim/internal/live"
	"diggsim/internal/obs"
	"diggsim/internal/rng"
)

func TestPacerSchedule(t *testing.T) {
	p := NewPacer(100, time.Second)
	if got := p.At(0); got != 0 {
		t.Errorf("At(0) = %v", got)
	}
	// The ramp holds rate*ramp/2 = 50 ops and ends exactly at the ramp
	// boundary.
	if got := p.At(50); got != time.Second {
		t.Errorf("At(rampOps) = %v, want 1s", got)
	}
	// Plateau arrivals are evenly spaced at 1/rate.
	for i := uint64(50); i < 60; i++ {
		gap := p.At(i+1) - p.At(i)
		if gap < 9*time.Millisecond || gap > 11*time.Millisecond {
			t.Errorf("plateau gap at %d = %v, want 10ms", i, gap)
		}
	}
	// The schedule is monotonic through the ramp.
	prev := time.Duration(-1)
	for i := uint64(0); i < 100; i++ {
		at := p.At(i)
		if at <= prev {
			t.Fatalf("At(%d) = %v not after At(%d) = %v", i, at, i-1, prev)
		}
		prev = at
	}
}

func TestPacerNoRamp(t *testing.T) {
	p := NewPacer(1000, 0)
	if got := p.At(0); got != 0 {
		t.Errorf("At(0) = %v", got)
	}
	if got := p.At(1000); got != time.Second {
		t.Errorf("At(1000) = %v, want 1s", got)
	}
}

// TestOpenLoopCoordinatedOmission is the harness's reason to exist: a
// single 200ms server stall must inflate the recorded tail across all
// the operations it delayed, not just the one that was slow. A
// closed-loop driver (latency = service time) sees exactly one slow
// op; the open-loop recorder sees the whole queue that built up behind
// it, because intended start times never move.
func TestOpenLoopCoordinatedOmission(t *testing.T) {
	reg := obs.NewRegistry()
	recorded := reg.Histogram("test_recorded_seconds", "", "")
	service := reg.Histogram("test_service_seconds", "", "")

	var n atomic.Uint64
	var cnt counters
	// One worker, so the stall serializes everything behind it —
	// exactly what a stalled single server does to an arrival stream.
	openLoop(context.Background(), NewPacer(500, 0), 500*time.Millisecond, 1,
		recorded, &cnt, func(worker int) opFunc {
			return func(ctx context.Context) opResult {
				start := time.Now()
				if n.Add(1) == 20 {
					time.Sleep(200 * time.Millisecond)
				}
				service.Observe(time.Since(start))
				return opResult{}
			}
		})

	recSnap := recorded.Snapshot()
	svcSnap := service.Snapshot()
	if recSnap.Count() < 100 {
		t.Fatalf("only %d ops recorded", recSnap.Count())
	}
	// Service time: one deliberate stall, everything else instant.
	slowServices := countAbove(&svcSnap, 10*time.Millisecond)
	if slowServices != 1 {
		t.Errorf("service-time samples over 10ms = %d, want exactly 1 (the stall)", slowServices)
	}
	// Recorded (intended-start) latency: the stall delayed ~100 queued
	// arrivals, so the tail must show it broadly.
	recP99 := recSnap.Quantile(0.99) / 1e6 // ms
	if recP99 < 80 {
		t.Errorf("recorded p99 = %.1fms; the stall should inflate it past 80ms", recP99)
	}
	slowRecorded := countAbove(&recSnap, 50*time.Millisecond)
	if slowRecorded < 20 {
		t.Errorf("only %d recorded samples over 50ms; the queue behind the stall should show", slowRecorded)
	}
}

// countAbove counts histogram samples whose bucket lies entirely above
// the threshold.
func countAbove(s *obs.HistSnapshot, d time.Duration) uint64 {
	var n uint64
	for i, c := range s.Counts {
		lower, _ := obs.BucketBounds(i)
		if lower >= uint64(d) {
			n += c
		}
	}
	return n
}

func TestSLOEvaluate(t *testing.T) {
	rep := &Report{
		Populations: []PopulationReport{
			{Name: "read", Ops: 1000, P99Millis: 8},
			{Name: "write", Ops: 100, Errors: 0, P99Millis: 40},
			{Name: "swarm", Ops: 50, P99Millis: 200},
		},
		ServerInstruments: []apiv1.ObsInstrument{
			{Name: "diggsim_http_request_seconds", Labels: `route="frontpage"`, Count: 500, P99Millis: 4},
			{Name: "diggsim_http_request_seconds", Labels: `route="story"`, Count: 400, P99Millis: 6},
			{Name: "diggsim_http_request_seconds", Labels: `route="submit"`, Count: 10, P99Millis: 500},
			{Name: "diggsim_live_step_seconds", Count: 100, P99Millis: 90},
		},
	}
	evaluateSLOs(rep, SLOConfig{}.withDefaults())
	if !rep.Pass {
		t.Errorf("healthy report failed: %+v", rep.SLOs)
	}
	// The write-route p99 of 500ms must not leak into the read gate.
	for _, r := range rep.SLOs {
		if r.Name == "server_read_p99_ms" && r.Observed != 6 {
			t.Errorf("server read p99 observed = %v, want 6 (worst read class)", r.Observed)
		}
	}

	// A blown client read SLO fails the scenario.
	rep.Populations[0].P99Millis = 80
	evaluateSLOs(rep, SLOConfig{}.withDefaults())
	if rep.Pass {
		t.Error("report passed with read p99 80ms > 50ms threshold")
	}

	// Absent populations skip their gates rather than failing.
	empty := &Report{}
	evaluateSLOs(empty, SLOConfig{}.withDefaults())
	if !empty.Pass {
		t.Errorf("empty report failed: %+v", empty.SLOs)
	}
	for _, r := range empty.SLOs {
		if !r.Skipped {
			t.Errorf("gate %s not marked skipped on empty report", r.Name)
		}
	}
}

// TestScenarioEndToEnd runs a short mixed scenario — all four
// populations — against an in-process live diggd and checks every
// population did real work and the report is coherent.
func TestScenarioEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live scenario")
	}
	g, err := graph.PreferentialAttachment(rng.New(11), 1500, 4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	p := digg.NewPlatform(g, &digg.ClassicPromotion{VoteThreshold: 8, Window: digg.Day})
	svc, err := live.NewService(p, live.Config{Seed: 5, SubmissionsPerHour: 60, StartAt: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Seed some stories so readers and writers have targets.
	if err := svc.StepTo(100 + digg.Day); err != nil {
		t.Fatal(err)
	}
	srv := httpapi.NewServer(p, 100, nil)
	srv.AttachLive(svc)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Tick the simulation in the background so the stream carries
	// events and reads race a live writer, as in production. Gently:
	// everything here — client, server, stepper, and the SSE fan-out —
	// shares one core in CI, and each sim-minute stepped emits a burst
	// of vote events multiplied by every open swarm stream.
	stepCtx, stopStepping := context.WithCancel(context.Background())
	defer stopStepping()
	stepDone := make(chan struct{})
	go func() {
		defer close(stepDone)
		now := digg.Minutes(100 + digg.Day)
		for {
			select {
			case <-stepCtx.Done():
				return
			case <-time.After(50 * time.Millisecond):
				now++
				if err := svc.StepTo(now); err != nil {
					return
				}
			}
		}
	}()

	rep, err := Run(context.Background(), Scenario{
		BaseURL:         ts.URL,
		DurationSeconds: 2,
		RampSeconds:     0.2,
		ReadRPS:         50,
		CrawlRPS:        10,
		WriteRPS:        5,
		WriteBatch:      20,
		SwarmSize:       10,
		SwarmConnectRPS: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	stopStepping()
	<-stepDone

	for _, name := range []string{"read", "crawl", "write", "swarm"} {
		pop := rep.Population(name)
		if pop == nil {
			t.Fatalf("population %s missing from report", name)
		}
		if pop.Ops == 0 {
			t.Errorf("population %s did no work: %+v", name, *pop)
		}
		if pop.Errors > pop.Ops/10 {
			t.Errorf("population %s error-heavy: %+v", name, *pop)
		}
	}
	swarm := rep.Population("swarm")
	if swarm.Events == 0 {
		t.Error("swarm saw no events from the live stream")
	}
	if swarm.Streams == 0 {
		t.Error("swarm reports zero concurrent streams")
	}
	if rep.Combined == nil || rep.Combined.Ops == 0 {
		t.Error("combined histogram missing")
	}
	if len(rep.SLOs) == 0 {
		t.Error("no SLO gates evaluated")
	}
	if len(rep.ServerInstruments) == 0 {
		t.Error("no server instruments scraped from /debug/obs")
	}

	// The report must serialize: it is the body of BENCH_load.json.
	if _, err := json.MarshalIndent(rep, "", "  "); err != nil {
		t.Fatalf("report does not serialize: %v", err)
	}
}
