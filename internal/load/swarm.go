package load

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"diggsim/internal/obs"
)

// swarmStats accumulates the SSE population's outcome.
type swarmStats struct {
	connected atomic.Int64  // streams currently open
	peak      atomic.Int64  // high-water mark of open streams
	failures  atomic.Uint64 // connects that never reached an event
	events    atomic.Uint64 // event frames received across all streams
	lagEvents atomic.Uint64 // synthetic "lag" frames received
	dropped   atomic.Uint64 // events reported lost inside lag frames
}

// runSwarm holds size concurrent SSE subscriptions on GET /api/stream
// open until ctx is cancelled, connecting at connectRate conn/s (with
// the scenario ramp) so the server sees a realistic join wave rather
// than a thundering herd. Each stream records intended-connect→first-
// event latency into hist — the swarm's coordinated-omission-safe
// "time to first byte of the feed" — then counts frames. Streams read
// through 4KB buffers: per-stream client memory is what bounds swarm
// size long before server fan-out does.
func runSwarm(ctx context.Context, baseURL string, size int, connectRate float64,
	ramp time.Duration, hist *obs.Histogram, st *swarmStats) {
	if size <= 0 {
		return
	}
	transport := &http.Transport{
		MaxIdleConns:        0,
		MaxConnsPerHost:     0, // one live conn per stream; never pool-capped
		DisableCompression:  true,
		MaxIdleConnsPerHost: 1,
	}
	defer transport.CloseIdleConnections()
	client := &http.Client{Transport: transport} // no timeout: streams live for the run

	pacer := NewPacer(connectRate, ramp)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < size; i++ {
		intended := start.Add(pacer.At(uint64(i)))
		if wait := time.Until(intended); wait > 0 {
			select {
			case <-ctx.Done():
				wg.Wait()
				return
			case <-time.After(wait):
			}
		}
		wg.Add(1)
		go func(intended time.Time) {
			defer wg.Done()
			streamOne(ctx, client, baseURL, intended, hist, st)
		}(intended)
	}
	wg.Wait()
}

// streamOne runs a single SSE subscription until ctx is cancelled or
// the server closes the stream.
func streamOne(ctx context.Context, client *http.Client, baseURL string,
	intended time.Time, hist *obs.Histogram, st *swarmStats) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/api/stream", nil)
	if err != nil {
		st.failures.Add(1)
		return
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			st.failures.Add(1)
		}
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		st.failures.Add(1)
		return
	}
	n := st.connected.Add(1)
	defer st.connected.Add(-1)
	for {
		peak := st.peak.Load()
		if n <= peak || st.peak.CompareAndSwap(peak, n) {
			break
		}
	}

	first := true
	r := bufio.NewReaderSize(resp.Body, 4096)
	var eventType string
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			if ctx.Err() == nil && first {
				st.failures.Add(1)
			}
			return
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event:"):
			eventType = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			if first {
				hist.Observe(time.Since(intended))
				first = false
			}
			st.events.Add(1)
			if eventType == "lag" {
				st.lagEvents.Add(1)
				var dropped uint64
				if _, err := fmt.Sscanf(extractJSONField(line, "dropped"), "%d", &dropped); err == nil {
					st.dropped.Add(dropped)
				}
			}
		}
	}
}

// extractJSONField pulls a bare numeric field out of a one-line JSON
// object without a full decode — the swarm parses thousands of frames
// per second and only ever needs the lag count.
func extractJSONField(line, field string) string {
	key := `"` + field + `":`
	i := strings.Index(line, key)
	if i < 0 {
		return ""
	}
	rest := line[i+len(key):]
	end := strings.IndexAny(rest, ",}")
	if end < 0 {
		return ""
	}
	return strings.TrimSpace(rest[:end])
}
