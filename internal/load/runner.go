package load

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"diggsim/internal/obs"
)

// opResult is one operation's outcome.
type opResult struct {
	err      error
	rejected bool // expected application denial, not a failure
}

// counters accumulates a population's outcome tallies.
type counters struct {
	ops        atomic.Uint64
	errors     atomic.Uint64
	rejections atomic.Uint64
}

// opFunc executes one operation. The worker index lets factories hand
// each worker private state (RNG streams, crawl cursors) without
// locking.
type opFunc func(ctx context.Context) opResult

// openLoop drives ops on the pacer's intended-rate timeline for the
// given duration, recording intended-start→completion latency into
// hist. A dispatcher walks the schedule and hands each operation's
// intended start to a bounded worker pool; when every worker is busy
// the queue (and then the dispatcher) backs up, but intended times
// keep their scheduled values, so the backlog shows up as recorded
// latency — never as silently missing load.
//
// newOp is called once per worker to build its operation closure.
func openLoop(ctx context.Context, p *Pacer, duration time.Duration, workers int,
	hist *obs.Histogram, cnt *counters, newOp func(worker int) opFunc) {
	if workers < 1 {
		workers = 1
	}
	// The queue absorbs short stalls without blocking the dispatcher;
	// a stall longer than the queue covers blocks dispatch too, which
	// is still CO-safe because intended times come from the index.
	queue := make(chan time.Time, 4*workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		op := newOp(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for intended := range queue {
				res := op(ctx)
				hist.Observe(time.Since(intended))
				cnt.ops.Add(1)
				switch {
				case res.rejected:
					cnt.rejections.Add(1)
				case res.err != nil && ctx.Err() == nil:
					cnt.errors.Add(1)
				}
			}
		}()
	}

	start := time.Now()
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
dispatch:
	for i := uint64(0); ; i++ {
		offset := p.At(i)
		if offset > duration {
			break
		}
		intended := start.Add(offset)
		if wait := time.Until(intended); wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				timer.Stop()
				break dispatch
			case <-timer.C:
			}
		}
		select {
		case queue <- intended:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(queue)
	wg.Wait()
}

// quantilesMillis summarizes a histogram snapshot (nanosecond-valued
// buckets) into the report's millisecond fields.
func quantilesMillis(s *obs.HistSnapshot) (p50, p90, p99, max float64) {
	return s.Quantile(0.50) / 1e6, s.Quantile(0.90) / 1e6,
		s.Quantile(0.99) / 1e6, s.Max() / 1e6
}
