package load

import (
	"math"
	"time"
)

// Pacer maps operation indices to intended start times on a fixed
// open-loop timeline: a linear ramp from zero to the target rate over
// the ramp window, then constant rate. The schedule is a pure function
// of the index — it never consults the clock — which is what makes the
// driver coordinated-omission-safe: when the server stalls, the
// dispatcher falls behind the schedule and queued operations record
// the stall against their (unchanged) intended starts.
type Pacer struct {
	rate float64 // ops per second at plateau
	ramp float64 // ramp length in seconds
	// rampOps is how many operations the ramp window holds: the area
	// under the linear rate ramp, rate*ramp/2.
	rampOps float64
}

// NewPacer returns a pacer for the given plateau rate (ops/sec, must
// be > 0) and ramp window.
func NewPacer(rate float64, ramp time.Duration) *Pacer {
	r := ramp.Seconds()
	if r < 0 {
		r = 0
	}
	return &Pacer{rate: rate, ramp: r, rampOps: rate * r / 2}
}

// At returns the intended start time of operation i as an offset from
// the run start. During the ramp the instantaneous rate is
// (t/ramp)*rate, so the cumulative count is rate*t²/(2*ramp); solving
// for t gives the ramp schedule. Past the ramp, arrivals are evenly
// spaced at 1/rate.
func (p *Pacer) At(i uint64) time.Duration {
	n := float64(i)
	var t float64
	if n < p.rampOps {
		t = math.Sqrt(2 * p.ramp * n / p.rate)
	} else {
		t = p.ramp + (n-p.rampOps)/p.rate
	}
	return time.Duration(t * float64(time.Second))
}
