// Package load is the closed-loop load harness: open-loop workload
// drivers for the four client populations a real social-news site
// sees — Zipf-skewed readers, cursor crawlers, batch vote/submit
// writers, and SSE subscriber swarms — run as one mixed scenario
// against a live diggd, measured through internal/obs histograms and
// gated on SLOs.
//
// The drivers are open-loop and coordinated-omission-safe: operations
// are scheduled on a fixed intended-rate timeline (wrk2-style), and
// each operation's recorded latency is completion minus *intended*
// start, not actual start. A server stall therefore inflates the
// recorded tail — queued operations keep their old intended times —
// instead of silently lowering throughput the way a closed-loop
// driver's request-response lockstep would. See docs/load.md for the
// scenario format and the runbook.
package load

import (
	"time"

	"diggsim/internal/apiv1"
)

// Scenario is one mixed load run: per-population target rates, shared
// duration/ramp, and the SLO thresholds to gate on. The zero value of
// every field falls back to a sensible default in withDefaults; a
// population with rate 0 (or swarm size 0) simply does not run.
type Scenario struct {
	// BaseURL is the diggd server root, e.g. "http://127.0.0.1:8080".
	BaseURL string `json:"base_url"`
	// DurationSeconds is the total run length, ramp included
	// (default 10).
	DurationSeconds float64 `json:"duration_seconds"`
	// RampSeconds linearly ramps each population's rate from zero, so
	// the server warms caches before the measured plateau (default 1).
	RampSeconds float64 `json:"ramp_seconds"`
	// Seed drives every random draw (Zipf ranks, voter picks).
	Seed uint64 `json:"seed"`
	// ZipfS is the popularity-skew exponent readers draw story ranks
	// from (default 0.8, in the range LermanG08 measures for Digg
	// attention skew).
	ZipfS float64 `json:"zipf_s"`

	// ReadRPS targets this many reader ops/sec: a mix of front-page
	// fetches and Zipf-ranked story detail reads.
	ReadRPS float64 `json:"read_rps"`
	// CrawlRPS targets this many crawler pages/sec walking /v1/stories
	// and /v1/frontpage with cursors.
	CrawlRPS float64 `json:"crawl_rps"`
	// WriteRPS targets this many write ops/sec; each op is one batch
	// call (WriteBatch diggs, or a story-submit batch every
	// SubmitEvery-th op).
	WriteRPS float64 `json:"write_rps"`
	// WriteBatch is the diggs per batch write op (default 50).
	WriteBatch int `json:"write_batch"`
	// SubmitEvery makes every Nth write op a batch story submission
	// instead of diggs (default 10; 0 disables submissions).
	SubmitEvery int `json:"submit_every"`

	// FreshnessRPS targets this many freshness probes/sec: each op is
	// one story submission followed by read-path polling until the new
	// story is visible, so the population's latency IS the
	// client-observed write→visible freshness span. Keep the rate low
	// (default 0 = off): every probe adds a story to the corpus.
	FreshnessRPS float64 `json:"freshness_rps"`

	// SwarmSize is how many concurrent SSE subscribers to hold open on
	// GET /api/stream for the whole run. Bounded by the process fd
	// limit — see docs/load.md for the per-core maximum on this class
	// of machine.
	SwarmSize int `json:"swarm_size"`
	// SwarmConnectRPS is the connection-establishment rate for the
	// swarm ramp (default 500/s).
	SwarmConnectRPS float64 `json:"swarm_connect_rps"`

	// SLO holds the pass/fail thresholds; zero fields take defaults
	// aligned with docs/observability.md.
	SLO SLOConfig `json:"slo"`
}

func (s Scenario) withDefaults() Scenario {
	if s.DurationSeconds <= 0 {
		s.DurationSeconds = 10
	}
	if s.RampSeconds < 0 {
		s.RampSeconds = 0
	} else if s.RampSeconds == 0 {
		s.RampSeconds = 1
	}
	if s.ZipfS <= 0 {
		s.ZipfS = 0.8
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.WriteBatch <= 0 {
		s.WriteBatch = 50
	}
	if s.WriteBatch > apiv1.MaxBatch {
		s.WriteBatch = apiv1.MaxBatch
	}
	if s.SubmitEvery < 0 {
		s.SubmitEvery = 0
	} else if s.SubmitEvery == 0 {
		s.SubmitEvery = 10
	}
	if s.SwarmConnectRPS <= 0 {
		s.SwarmConnectRPS = 500
	}
	s.SLO = s.SLO.withDefaults()
	return s
}

// Duration returns the scenario's measured window as a time.Duration.
func (s Scenario) Duration() time.Duration {
	return time.Duration(s.DurationSeconds * float64(time.Second))
}

// Ramp returns the scenario's ramp as a time.Duration.
func (s Scenario) Ramp() time.Duration {
	return time.Duration(s.RampSeconds * float64(time.Second))
}

// PopulationReport is one population's outcome: achieved rate, outcome
// counts, and intended-start→completion latency quantiles.
type PopulationReport struct {
	Name      string  `json:"name"`
	TargetRPS float64 `json:"target_rps"`
	// AchievedRPS is completed ops over the measured window. Under an
	// open-loop driver this stays near TargetRPS unless the server (or
	// the single-core client) cannot keep up — in which case P99 shows
	// the queueing, which is the point.
	AchievedRPS float64 `json:"achieved_rps"`
	Ops         uint64  `json:"ops"`
	// Errors are transport failures and unexpected API errors.
	Errors uint64 `json:"errors"`
	// Rejections are expected per-item denials (duplicate votes,
	// conflict responses) — application outcomes, not failures.
	Rejections uint64 `json:"rejections,omitempty"`

	P50Millis float64 `json:"p50_ms"`
	P90Millis float64 `json:"p90_ms"`
	P99Millis float64 `json:"p99_ms"`
	MaxMillis float64 `json:"max_ms"`

	// Swarm-only: stream and event accounting.
	Streams       int    `json:"streams,omitempty"`
	Events        uint64 `json:"events,omitempty"`
	LagEvents     uint64 `json:"lag_events,omitempty"`
	DroppedEvents uint64 `json:"dropped_events,omitempty"`
}

// Report is the full scenario outcome diggload serializes into
// BENCH_load.json.
type Report struct {
	Scenario    Scenario           `json:"scenario"`
	Populations []PopulationReport `json:"populations"`
	// Combined is every request-driven population's latency histogram
	// merged into one (obs.HistSnapshot.Merge), for a single
	// all-traffic tail number.
	Combined *PopulationReport `json:"combined,omitempty"`
	SLOs     []SLOResult       `json:"slos"`
	// Pass is the scenario verdict: every SLO held.
	Pass bool `json:"pass"`
	// ServerInstruments are the server-side latency summaries scraped
	// from /debug/obs after the run (lifetime quantiles — boot the
	// server fresh per scenario for clean numbers).
	ServerInstruments []apiv1.ObsInstrument `json:"server_instruments,omitempty"`
}

// Population returns the named population's report, or nil.
func (r *Report) Population(name string) *PopulationReport {
	for i := range r.Populations {
		if r.Populations[i].Name == name {
			return &r.Populations[i]
		}
	}
	return nil
}
