package load

import (
	"fmt"
	"strings"
)

// SLOConfig holds the scenario's pass/fail thresholds. Zero fields
// take the defaults below; a negative field disables that gate. The
// server-side defaults mirror the suggested SLOs in
// docs/observability.md; the client-side ones add loopback headroom
// for SDK and scheduling overhead.
type SLOConfig struct {
	// ReadP99Millis bounds the reader population's client-observed p99
	// (default 50).
	ReadP99Millis float64 `json:"read_p99_ms"`
	// WriteP99Millis bounds the writer population's client-observed
	// p99 (default 250 — each op is a whole write batch).
	WriteP99Millis float64 `json:"write_p99_ms"`
	// FreshnessP99Millis bounds the freshness probe's client-observed
	// write→visible p99 (default 250, mirroring the server-side
	// frontpage-freshness SLO in docs/observability.md — the probe adds
	// two request RTTs on top, which loopback absorbs).
	FreshnessP99Millis float64 `json:"freshness_p99_ms"`
	// FirstEventP99Millis bounds the swarm's intended-connect→first-
	// event p99 (default 1000; the feed only carries events when the
	// simulation ticks).
	FirstEventP99Millis float64 `json:"first_event_p99_ms"`
	// MaxErrorRatio bounds errors/ops across the request populations
	// (default 0.01).
	MaxErrorRatio float64 `json:"max_error_ratio"`
	// ServerReadP99Millis bounds the server-side p99 of
	// diggsim_http_request_seconds across read route classes (default
	// 10, per docs/observability.md's read-availability SLO).
	ServerReadP99Millis float64 `json:"server_read_p99_ms"`
	// ServerStepP99Millis bounds the server-side p99 of
	// diggsim_live_step_seconds (default 200 — the default tick; past
	// it the simulation falls behind wall time).
	ServerStepP99Millis float64 `json:"server_step_p99_ms"`
}

func (c SLOConfig) withDefaults() SLOConfig {
	def := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.ReadP99Millis, 50)
	def(&c.WriteP99Millis, 250)
	def(&c.FreshnessP99Millis, 250)
	def(&c.FirstEventP99Millis, 1000)
	def(&c.MaxErrorRatio, 0.01)
	def(&c.ServerReadP99Millis, 10)
	def(&c.ServerStepP99Millis, 200)
	return c
}

// SLOResult is one gate's verdict.
type SLOResult struct {
	Name      string  `json:"name"`
	Threshold float64 `json:"threshold"`
	Observed  float64 `json:"observed"`
	Pass      bool    `json:"pass"`
	// Skipped marks gates that had nothing to measure (population not
	// run, instrument absent); a skipped gate does not fail the
	// scenario but is reported so silence is visible.
	Skipped bool   `json:"skipped,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

// serverReadClasses are the diggsim_http_request_seconds route classes
// counted as reads by docs/observability.md's availability SLO.
var serverReadClasses = map[string]bool{
	"frontpage": true, "story": true, "stories": true, "upcoming": true,
	"user": true, "links": true, "topusers": true, "stats": true,
}

// evaluateSLOs fills in rep.SLOs and rep.Pass from the populations and
// the scraped server instruments.
func evaluateSLOs(rep *Report, cfg SLOConfig) {
	var results []SLOResult
	gate := func(name string, threshold, observed float64, detail string, measured bool) {
		if threshold < 0 {
			return // explicitly disabled
		}
		r := SLOResult{Name: name, Threshold: threshold, Observed: observed, Detail: detail}
		if !measured {
			r.Skipped = true
			r.Pass = true
		} else {
			r.Pass = observed <= threshold
		}
		results = append(results, r)
	}

	read := rep.Population("read")
	gate("read_p99_ms", cfg.ReadP99Millis, popP99(read), "client-observed reader latency", read != nil && read.Ops > 0)
	write := rep.Population("write")
	gate("write_p99_ms", cfg.WriteP99Millis, popP99(write), "client-observed batch-write latency", write != nil && write.Ops > 0)
	fresh := rep.Population("freshness")
	gate("freshness_p99_ms", cfg.FreshnessP99Millis, popP99(fresh), "client-observed submit to read-path visibility", fresh != nil && fresh.Ops > 0)
	swarm := rep.Population("swarm")
	gate("first_event_p99_ms", cfg.FirstEventP99Millis, popP99(swarm), "intended-connect to first SSE event", swarm != nil && swarm.Ops > 0)

	var ops, errs uint64
	for _, p := range rep.Populations {
		if p.Name == "swarm" {
			continue
		}
		ops += p.Ops
		errs += p.Errors
	}
	ratio := 0.0
	if ops > 0 {
		ratio = float64(errs) / float64(ops)
	}
	gate("max_error_ratio", cfg.MaxErrorRatio, ratio,
		fmt.Sprintf("%d errors / %d ops across request populations", errs, ops), ops > 0)

	srvRead, srvReadSeen := 0.0, false
	srvStep, srvStepSeen := 0.0, false
	for _, inst := range rep.ServerInstruments {
		switch inst.Name {
		case "diggsim_http_request_seconds":
			if serverReadClasses[routeClass(inst.Labels)] && inst.Count > 0 {
				srvReadSeen = true
				if inst.P99Millis > srvRead {
					srvRead = inst.P99Millis
				}
			}
		case "diggsim_live_step_seconds":
			if inst.Count > 0 {
				srvStepSeen = true
				srvStep = inst.P99Millis
			}
		}
	}
	gate("server_read_p99_ms", cfg.ServerReadP99Millis, srvRead,
		"worst diggsim_http_request_seconds p99 across read route classes (server lifetime)", srvReadSeen)
	gate("server_step_p99_ms", cfg.ServerStepP99Millis, srvStep,
		"diggsim_live_step_seconds p99 (server lifetime)", srvStepSeen)

	rep.SLOs = results
	rep.Pass = true
	for _, r := range results {
		if !r.Pass {
			rep.Pass = false
		}
	}
}

func popP99(p *PopulationReport) float64 {
	if p == nil {
		return 0
	}
	return p.P99Millis
}

// routeClass extracts the class from a `route="..."` label string.
func routeClass(labels string) string {
	const key = `route="`
	i := strings.Index(labels, key)
	if i < 0 {
		return ""
	}
	rest := labels[i+len(key):]
	if j := strings.IndexByte(rest, '"'); j >= 0 {
		return rest[:j]
	}
	return ""
}
