package load

import (
	"context"
	"errors"
	"fmt"
	"time"

	"diggsim/internal/apiv1"
	"diggsim/internal/digg"
	"diggsim/internal/httpapi"
	"diggsim/internal/rng"
)

// target holds what the populations learned about the server at setup:
// how many stories and users exist, so Zipf ranks and voter picks map
// onto real IDs.
type target struct {
	stories int
	users   int
}

// discover probes the server once before the run. Story count comes
// from the listing total; user count from a doubling-then-bisect probe
// of /v1/users/{id} (the API has no user-count endpoint, and the graph
// IDs are dense from zero).
func discover(ctx context.Context, c *httpapi.Client) (target, error) {
	page, err := c.StoriesAt(ctx, "", 1)
	if err != nil {
		return target{}, fmt.Errorf("load: probing story count: %w", err)
	}
	users, err := discoverUserCount(ctx, c)
	if err != nil {
		return target{}, err
	}
	return target{stories: page.Total, users: users}, nil
}

func discoverUserCount(ctx context.Context, c *httpapi.Client) (int, error) {
	exists := func(id int) (bool, error) {
		_, err := c.User(ctx, digg.UserID(id))
		if err == nil {
			return true, nil
		}
		var apiErr *apiv1.Error
		if errors.As(err, &apiErr) && apiErr.StatusCode == 404 {
			return false, nil
		}
		return false, fmt.Errorf("load: probing user %d: %w", id, err)
	}
	if ok, err := exists(0); err != nil {
		return 0, err
	} else if !ok {
		return 0, errors.New("load: server reports no users")
	}
	hi := 1
	for {
		ok, err := exists(hi)
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		if hi > 1<<30 {
			return 0, errors.New("load: user probe did not terminate")
		}
		hi *= 2
	}
	lo := hi / 2 // exists
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		ok, err := exists(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, nil
}

// newReaderOps builds the reader population: each op is a front-page
// fetch (1 in 5) or a story-detail read whose story rank is drawn from
// a Zipf over the corpus — the attention skew LermanG08 measures. Each
// worker gets its own RNG substream so draws never contend.
func newReaderOps(c *httpapi.Client, tgt target, seed uint64, zipfS float64) func(worker int) opFunc {
	return func(worker int) opFunc {
		r := rng.Substream(seed, uint64(1000+worker))
		zipf := rng.NewZipf(r, tgt.stories, zipfS)
		return func(ctx context.Context) opResult {
			if r.Float64() < 0.2 {
				_, err := c.FrontPage(ctx, 15)
				return opResult{err: err}
			}
			id := digg.StoryID(zipf.Draw() - 1) // rank 1 → story 0
			_, err := c.Story(ctx, id)
			return opResult{err: err}
		}
	}
}

// newCrawlerOps builds the crawler population: each worker walks
// /v1/stories and /v1/frontpage in cursor order, one page per op,
// restarting from the top when a listing is exhausted — a polite
// scraper's sweep pattern.
func newCrawlerOps(c *httpapi.Client, pageSize int) func(worker int) opFunc {
	if pageSize <= 0 {
		pageSize = 100
	}
	return func(worker int) opFunc {
		var storyCursor, frontCursor apiv1.Cursor
		onFrontpage := worker%2 == 1 // half the workers start on each listing
		return func(ctx context.Context) opResult {
			var page apiv1.StoriesPage
			var err error
			if onFrontpage {
				page, err = c.FrontPageAt(ctx, frontCursor, pageSize)
				frontCursor = page.NextCursor
				if err == nil && frontCursor == "" {
					onFrontpage = false
				}
			} else {
				page, err = c.StoriesAt(ctx, storyCursor, pageSize)
				storyCursor = page.NextCursor
				if err == nil && storyCursor == "" {
					onFrontpage = true
				}
			}
			return opResult{err: err}
		}
	}
}

// newWriterOps builds the writer population: each op is one batch
// write — batchSize diggs from Zipf-popular stories and uniform
// voters, with every submitEvery-th op a story-submission batch
// instead. Duplicate-vote denials are rejections (expected application
// outcomes under random voter picks), not errors.
func newWriterOps(c *httpapi.Client, tgt target, seed uint64, zipfS float64, batchSize, submitEvery int) func(worker int) opFunc {
	return func(worker int) opFunc {
		r := rng.Substream(seed, uint64(2000+worker))
		zipf := rng.NewZipf(r, tgt.stories, zipfS)
		nop := 0
		return func(ctx context.Context) opResult {
			nop++
			if submitEvery > 0 && nop%submitEvery == 0 {
				n := batchSize / 10
				if n < 1 {
					n = 1
				}
				req := apiv1.BatchSubmitRequest{Stories: make([]apiv1.SubmitRequest, n)}
				for i := range req.Stories {
					req.Stories[i] = apiv1.SubmitRequest{
						Submitter: digg.UserID(r.Intn(tgt.users)),
						Title:     fmt.Sprintf("load-story-w%d-%d", worker, nop),
						Interest:  r.Float64(),
					}
				}
				resp, err := c.SubmitBatch(ctx, req)
				if err != nil {
					return opResult{err: err}
				}
				for _, res := range resp.Results {
					if res.Error != nil {
						return opResult{rejected: true}
					}
				}
				return opResult{}
			}
			req := apiv1.BatchDiggRequest{Diggs: make([]apiv1.BatchDiggItem, batchSize)}
			for i := range req.Diggs {
				req.Diggs[i] = apiv1.BatchDiggItem{
					Story: digg.StoryID(zipf.Draw() - 1),
					Voter: digg.UserID(r.Intn(tgt.users)),
				}
			}
			resp, err := c.DiggBatch(ctx, req)
			if err != nil {
				return opResult{err: err}
			}
			for _, res := range resp.Results {
				if res.Error != nil {
					// Duplicate votes are the common case under random
					// voter draws; surface the op as a rejection so the
					// report separates them from real failures.
					return opResult{rejected: true}
				}
			}
			return opResult{}
		}
	}
}

// freshnessPollInterval paces the probe's visibility polling. 1ms
// bounds the measurement's resolution; visibility on this server is
// usually synchronous with the write response, so the common case is
// zero polls and the interval only matters when the snapshot pipeline
// is actually behind — exactly when resolution is cheap to give up.
const freshnessPollInterval = time.Millisecond

// freshnessPollBudget bounds how long one probe keeps polling before
// declaring the write lost to the read path. A story invisible for
// two seconds is not a latency measurement any more, it is an error.
const freshnessPollBudget = 2 * time.Second

// newFreshnessOps builds the freshness probe population: each op
// submits one story and then polls the read path until the new story
// is served, so the recorded latency is the client-observed
// write→visible span — the end-to-end counterpart of the server's
// diggsim_freshness_write_to_frontpage_visible_seconds histogram
// (which cannot see client RTT or anything queued in front of the
// handler).
func newFreshnessOps(c *httpapi.Client, tgt target, seed uint64) func(worker int) opFunc {
	return func(worker int) opFunc {
		r := rng.Substream(seed, uint64(3000+worker))
		nop := 0
		return func(ctx context.Context) opResult {
			nop++
			detail, err := c.Submit(ctx, apiv1.SubmitRequest{
				Submitter: digg.UserID(r.Intn(tgt.users)),
				Title:     fmt.Sprintf("fresh-probe-w%d-%d", worker, nop),
				Interest:  r.Float64(),
			})
			if err != nil {
				return opResult{err: err}
			}
			deadline := time.Now().Add(freshnessPollBudget)
			for {
				_, err := c.Story(ctx, detail.ID)
				if err == nil {
					return opResult{}
				}
				var apiErr *apiv1.Error
				if !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
					return opResult{err: err}
				}
				if time.Now().After(deadline) {
					return opResult{err: fmt.Errorf("load: story %d not visible within %s", detail.ID, freshnessPollBudget)}
				}
				select {
				case <-ctx.Done():
					return opResult{err: ctx.Err()}
				case <-time.After(freshnessPollInterval):
				}
			}
		}
	}
}

// workersFor sizes a population's worker pool: enough parallelism that
// sub-100ms ops sustain the rate, bounded so a 1-core client machine
// is not swamped by its own goroutines.
func workersFor(rate float64) int {
	w := int(rate / 20)
	if w < 4 {
		w = 4
	}
	if w > 128 {
		w = 128
	}
	return w
}
