package load

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"diggsim/internal/httpapi"
	"diggsim/internal/obs"
)

// Run executes one mixed scenario against a live diggd and returns the
// measured report. The duration covers the whole run including the
// ramp; populations with a zero rate (or zero swarm size) are skipped.
// Run is synchronous: it returns after every in-flight operation has
// completed and the server's instruments have been scraped.
func Run(ctx context.Context, sc Scenario) (*Report, error) {
	sc = sc.withDefaults()
	if sc.BaseURL == "" {
		return nil, fmt.Errorf("load: scenario needs a base_url")
	}
	// One client for every request population: retries off (a retry
	// would double-count an intended arrival and hide the failure) and
	// a generous per-request timeout so slow responses are measured,
	// not truncated.
	client := httpapi.NewClientWith(sc.BaseURL, httpapi.ClientOptions{
		HTTPClient: &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        512,
				MaxIdleConnsPerHost: 512,
				DisableCompression:  true,
			},
		},
		MaxRetries:            -1,
		DisableTransientRetry: true,
	})
	if err := client.Health(ctx); err != nil {
		return nil, fmt.Errorf("load: server not healthy at %s: %w", sc.BaseURL, err)
	}
	tgt, err := discover(ctx, client)
	if err != nil {
		return nil, err
	}
	if tgt.stories == 0 && (sc.ReadRPS > 0 || sc.WriteRPS > 0) {
		return nil, fmt.Errorf("load: server has no stories to read or digg")
	}

	reg := obs.NewRegistry()
	duration := sc.Duration()
	ramp := sc.Ramp()
	if ramp > duration {
		ramp = duration
	}

	type population struct {
		name string
		rate float64
		hist *obs.Histogram
		cnt  counters
		run  func(ctx context.Context, hist *obs.Histogram, cnt *counters)
	}
	var pops []*population
	addOpen := func(name string, rate float64, newOp func(worker int) opFunc) {
		if rate <= 0 {
			return
		}
		p := &population{
			name: name,
			rate: rate,
			hist: reg.Histogram("diggload_op_seconds", fmt.Sprintf("population=%q", name),
				"Intended-start to completion latency by load population."),
		}
		p.run = func(ctx context.Context, hist *obs.Histogram, cnt *counters) {
			openLoop(ctx, NewPacer(rate, ramp), duration, workersFor(rate), hist, cnt, newOp)
		}
		pops = append(pops, p)
	}
	addOpen("read", sc.ReadRPS, newReaderOps(client, tgt, sc.Seed, sc.ZipfS))
	addOpen("crawl", sc.CrawlRPS, newCrawlerOps(client, 100))
	addOpen("write", sc.WriteRPS, newWriterOps(client, tgt, sc.Seed, sc.ZipfS, sc.WriteBatch, sc.SubmitEvery))
	addOpen("freshness", sc.FreshnessRPS, newFreshnessOps(client, tgt, sc.Seed))

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// The swarm holds streams open for the whole window; it is torn
	// down only after the request populations finish.
	var swarmHist *obs.Histogram
	var swarm swarmStats
	swarmCtx, stopSwarm := context.WithCancel(runCtx)
	defer stopSwarm()
	var swarmWG sync.WaitGroup
	if sc.SwarmSize > 0 {
		swarmHist = reg.Histogram("diggload_op_seconds", `population="swarm"`,
			"Intended-connect to first SSE event latency.")
		swarmWG.Add(1)
		go func() {
			defer swarmWG.Done()
			runSwarm(swarmCtx, sc.BaseURL, sc.SwarmSize, sc.SwarmConnectRPS, ramp, swarmHist, &swarm)
		}()
	}

	var wg sync.WaitGroup
	for _, p := range pops {
		wg.Add(1)
		go func(p *population) {
			defer wg.Done()
			p.run(runCtx, p.hist, &p.cnt)
		}(p)
	}
	wg.Wait()
	if sc.SwarmSize > 0 && len(pops) == 0 {
		// Swarm-only scenario: hold the streams for the full window.
		select {
		case <-ctx.Done():
		case <-time.After(duration):
		}
	}
	stopSwarm()
	swarmWG.Wait()

	rep := &Report{Scenario: sc}
	secs := duration.Seconds()
	var combined obs.HistSnapshot
	for _, p := range pops {
		snap := p.hist.Snapshot()
		combined.Merge(&snap)
		pr := PopulationReport{
			Name:        p.name,
			TargetRPS:   p.rate,
			Ops:         p.cnt.ops.Load(),
			Errors:      p.cnt.errors.Load(),
			Rejections:  p.cnt.rejections.Load(),
			AchievedRPS: float64(p.cnt.ops.Load()) / secs,
		}
		pr.P50Millis, pr.P90Millis, pr.P99Millis, pr.MaxMillis = quantilesMillis(&snap)
		rep.Populations = append(rep.Populations, pr)
	}
	if combined.Count() > 0 {
		c := PopulationReport{Name: "combined"}
		for _, pr := range rep.Populations {
			c.Ops += pr.Ops
			c.Errors += pr.Errors
			c.Rejections += pr.Rejections
		}
		c.AchievedRPS = float64(c.Ops) / secs
		c.P50Millis, c.P90Millis, c.P99Millis, c.MaxMillis = quantilesMillis(&combined)
		rep.Combined = &c
	}
	if sc.SwarmSize > 0 {
		snap := swarmHist.Snapshot()
		pr := PopulationReport{
			Name:          "swarm",
			TargetRPS:     sc.SwarmConnectRPS,
			Ops:           snap.Count(), // streams that received a first event
			Errors:        swarm.failures.Load(),
			Streams:       int(swarm.peak.Load()),
			Events:        swarm.events.Load(),
			LagEvents:     swarm.lagEvents.Load(),
			DroppedEvents: swarm.dropped.Load(),
		}
		pr.AchievedRPS = float64(pr.Ops) / secs
		pr.P50Millis, pr.P90Millis, pr.P99Millis, pr.MaxMillis = quantilesMillis(&snap)
		rep.Populations = append(rep.Populations, pr)
	}

	// Server-side view: scrape the instrument summaries after the run.
	// Failure to scrape is not fatal — the server-side gates report as
	// skipped — but the error is surfaced in the report detail.
	if dump, err := client.ObsDump(ctx); err == nil {
		for _, inst := range dump.Instruments {
			if inst.Count > 0 {
				rep.ServerInstruments = append(rep.ServerInstruments, inst)
			}
		}
	}

	evaluateSLOs(rep, sc.SLO)
	return rep, nil
}
