// Package cascade implements the information-spread analysis of §4 of
// the paper: story influence (the number of users who can see a story
// through the Friends interface), in-network vote counting, and cascade
// statistics.
//
// Everything here is computed offline from a chronological voter list
// plus the social graph — the same observables the paper extracted by
// scraping Digg — and is deliberately independent of the simulator's
// internal bookkeeping. The digg.Platform computes in-network flags
// online; tests cross-check both paths agree.
package cascade

import (
	"diggsim/internal/digg"
	"diggsim/internal/graph"
)

// Voters extracts the chronological voter list of a story (submitter
// first).
func Voters(s *digg.Story) []digg.UserID {
	out := make([]digg.UserID, len(s.Votes))
	for i, v := range s.Votes {
		out[i] = v.Voter
	}
	return out
}

// InfluenceAt returns the story's influence after the first k votes:
// the number of distinct users who can see the story through the
// Friends interface, i.e. the union of the fans of the first k voters
// (the submitter's implicit vote is voters[0], so k = 1 is "at
// submission"). k is clamped to [0, len(voters)].
func InfluenceAt(g *graph.Graph, voters []digg.UserID, k int) int {
	if k > len(voters) {
		k = len(voters)
	}
	seen := make(map[digg.UserID]struct{})
	for _, v := range voters[:max(k, 0)] {
		for _, fan := range g.Fans(v) {
			seen[fan] = struct{}{}
		}
	}
	return len(seen)
}

// InfluenceSeries returns the influence after each vote count in ks,
// computed in one pass (ks must be ascending; values are clamped).
func InfluenceSeries(g *graph.Graph, voters []digg.UserID, ks []int) []int {
	out := make([]int, len(ks))
	seen := make(map[digg.UserID]struct{})
	vi := 0
	for i, k := range ks {
		if k > len(voters) {
			k = len(voters)
		}
		for ; vi < k; vi++ {
			for _, fan := range g.Fans(voters[vi]) {
				seen[fan] = struct{}{}
			}
		}
		out[i] = len(seen)
	}
	return out
}

// IsInNetwork reports whether the voter at index idx (idx >= 1; index 0
// is the submitter) was a fan of the submitter or of any earlier voter
// — that is, whether voter idx watches any of voters[:idx].
func IsInNetwork(g *graph.Graph, voters []digg.UserID, idx int) bool {
	if idx <= 0 || idx >= len(voters) {
		return false
	}
	v := voters[idx]
	// Check the smaller adjacency: v's watch list vs the prior voters.
	friends := g.Friends(v)
	if len(friends) <= idx {
		prior := make(map[digg.UserID]struct{}, idx)
		for _, p := range voters[:idx] {
			prior[p] = struct{}{}
		}
		for _, f := range friends {
			if _, ok := prior[f]; ok {
				return true
			}
		}
		return false
	}
	for _, p := range voters[:idx] {
		if g.HasEdge(v, p) {
			return true
		}
	}
	return false
}

// InNetworkFlags returns, for each vote after the submitter's, whether
// it was in-network. flags[i] corresponds to voters[i+1].
func InNetworkFlags(g *graph.Graph, voters []digg.UserID) []bool {
	if len(voters) < 2 {
		return nil
	}
	flags := make([]bool, len(voters)-1)
	prior := make(map[digg.UserID]struct{}, len(voters))
	prior[voters[0]] = struct{}{}
	for i := 1; i < len(voters); i++ {
		v := voters[i]
		for _, f := range g.Friends(v) {
			if _, ok := prior[f]; ok {
				flags[i-1] = true
				break
			}
		}
		prior[v] = struct{}{}
	}
	return flags
}

// InNetworkCount returns the number of in-network votes among the first
// k votes not counting the submitter (i.e. among voters[1:k+1]), which
// is the paper's cascade size and its v6/v10/v20 classifier features.
func InNetworkCount(g *graph.Graph, voters []digg.UserID, k int) int {
	flags := InNetworkFlags(g, voters)
	if k > len(flags) {
		k = len(flags)
	}
	n := 0
	for i := 0; i < k; i++ {
		if flags[i] {
			n++
		}
	}
	return n
}

// Stats bundles the per-story spread measurements used by the figures.
type Stats struct {
	StoryID    digg.StoryID
	Submitter  digg.UserID
	FinalVotes int
	// SubmitterFans is the paper's fans1 attribute.
	SubmitterFans int
	// InfluenceAtSubmission, After10 and After20 reproduce Fig. 3(a).
	InfluenceAtSubmission int
	InfluenceAfter10      int
	InfluenceAfter20      int
	// InNet6/10/20/30 are in-network counts within the first 6, 10, 20
	// and 30 votes (not counting the submitter), reproducing Fig. 3(b)
	// and Fig. 4.
	InNet6, InNet10, InNet20, InNet30 int
}

// Analyze computes the spread statistics of one story.
func Analyze(g *graph.Graph, s *digg.Story) Stats {
	voters := Voters(s)
	infl := InfluenceSeries(g, voters, []int{1, 11, 21})
	return Stats{
		StoryID:               s.ID,
		Submitter:             s.Submitter,
		FinalVotes:            s.VoteCount(),
		SubmitterFans:         g.InDegree(s.Submitter),
		InfluenceAtSubmission: infl[0],
		InfluenceAfter10:      infl[1],
		InfluenceAfter20:      infl[2],
		InNet6:                InNetworkCount(g, voters, 6),
		InNet10:               InNetworkCount(g, voters, 10),
		InNet20:               InNetworkCount(g, voters, 20),
		InNet30:               InNetworkCount(g, voters, 30),
	}
}

// AnalyzeAll computes spread statistics for every story.
func AnalyzeAll(g *graph.Graph, stories []*digg.Story) []Stats {
	out := make([]Stats, len(stories))
	for i, s := range stories {
		out[i] = Analyze(g, s)
	}
	return out
}

// Tree reconstructs the vote cascade as a forest: each in-network vote
// is attached to the earliest prior voter it watches; out-of-network
// votes are roots. Parent[i] is the index (into voters) of the parent
// of voter i, or -1 for roots. The submitter (index 0) is always a
// root.
func Tree(g *graph.Graph, voters []digg.UserID) (parent []int) {
	parent = make([]int, len(voters))
	for i := range parent {
		parent[i] = -1
	}
	idxOf := make(map[digg.UserID]int, len(voters))
	if len(voters) > 0 {
		idxOf[voters[0]] = 0
	}
	for i := 1; i < len(voters); i++ {
		v := voters[i]
		best := -1
		for _, f := range g.Friends(v) {
			if j, ok := idxOf[f]; ok && (best == -1 || j < best) {
				best = j
			}
		}
		parent[i] = best
		idxOf[v] = i
	}
	return parent
}

// TreeDepths returns, for each voter index, its depth in the cascade
// forest (roots have depth 0).
func TreeDepths(parent []int) []int {
	depth := make([]int, len(parent))
	for i, p := range parent {
		if p >= 0 {
			depth[i] = depth[p] + 1
		}
	}
	return depth
}

// MaxDepth returns the deepest chain in the cascade forest, a measure
// of how far interest propagated hop by hop (recommendation chains in
// the viral-marketing literature terminate after a few steps; the
// reproduction checks ours do too).
func MaxDepth(parent []int) int {
	best := 0
	for _, d := range TreeDepths(parent) {
		if d > best {
			best = d
		}
	}
	return best
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
