package cascade

import (
	"testing"

	"diggsim/internal/agent"
	"diggsim/internal/digg"
	"diggsim/internal/graph"
	"diggsim/internal/rng"
)

// fanGraph: 1 and 2 watch 0; 3 watches 1; 4 watches 3; 5 isolated.
func fanGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdgeList(6, [][2]graph.NodeID{{1, 0}, {2, 0}, {3, 1}, {4, 3}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestInfluenceAt(t *testing.T) {
	g := fanGraph(t)
	voters := []digg.UserID{0, 1, 5}
	// At submission (k=1): fans of 0 = {1, 2}.
	if got := InfluenceAt(g, voters, 1); got != 2 {
		t.Errorf("influence at submission = %d want 2", got)
	}
	// After vote by 1: + fans of 1 = {3} -> 3 total.
	if got := InfluenceAt(g, voters, 2); got != 3 {
		t.Errorf("influence after 2 votes = %d want 3", got)
	}
	// Voter 5 has no fans: unchanged; k clamps.
	if got := InfluenceAt(g, voters, 10); got != 3 {
		t.Errorf("clamped influence = %d want 3", got)
	}
	if got := InfluenceAt(g, voters, 0); got != 0 {
		t.Errorf("influence at k=0 = %d want 0", got)
	}
	if got := InfluenceAt(g, voters, -1); got != 0 {
		t.Errorf("influence at k<0 = %d want 0", got)
	}
}

func TestInfluenceSeriesMatchesPointQueries(t *testing.T) {
	g := fanGraph(t)
	voters := []digg.UserID{0, 1, 3, 5, 2}
	ks := []int{0, 1, 2, 3, 4, 5, 99}
	series := InfluenceSeries(g, voters, ks)
	for i, k := range ks {
		if want := InfluenceAt(g, voters, k); series[i] != want {
			t.Errorf("series[%d] (k=%d) = %d want %d", i, k, series[i], want)
		}
	}
}

func TestIsInNetwork(t *testing.T) {
	g := fanGraph(t)
	voters := []digg.UserID{0, 1, 5, 3}
	// Voter 1 watches 0 (prior) -> in-network.
	if !IsInNetwork(g, voters, 1) {
		t.Error("voter 1 should be in-network")
	}
	// Voter 5 watches nobody -> out.
	if IsInNetwork(g, voters, 2) {
		t.Error("voter 5 should be out-of-network")
	}
	// Voter 3 watches 1 (prior) -> in-network.
	if !IsInNetwork(g, voters, 3) {
		t.Error("voter 3 should be in-network")
	}
	// Submitter and out-of-range.
	if IsInNetwork(g, voters, 0) || IsInNetwork(g, voters, 9) || IsInNetwork(g, voters, -1) {
		t.Error("edge indices misclassified")
	}
}

func TestIsInNetworkOrderMatters(t *testing.T) {
	g := fanGraph(t)
	// 3 votes before 1: 3 watches 1 but 1 hasn't voted yet.
	voters := []digg.UserID{0, 3, 1}
	if IsInNetwork(g, voters, 1) {
		t.Error("voter 3 votes before its friend: must be out-of-network")
	}
	// And 1 is in-network via submitter 0.
	if !IsInNetwork(g, voters, 2) {
		t.Error("voter 1 watches submitter: in-network")
	}
}

func TestInNetworkFlagsAndCount(t *testing.T) {
	g := fanGraph(t)
	voters := []digg.UserID{0, 1, 5, 3, 4}
	flags := InNetworkFlags(g, voters)
	want := []bool{true, false, true, true} // 1 via 0; 5 no; 3 via 1; 4 via 3
	if len(flags) != len(want) {
		t.Fatalf("flags = %v", flags)
	}
	for i := range want {
		if flags[i] != want[i] {
			t.Fatalf("flags = %v want %v", flags, want)
		}
	}
	if got := InNetworkCount(g, voters, 2); got != 1 {
		t.Errorf("count k=2 = %d want 1", got)
	}
	if got := InNetworkCount(g, voters, 4); got != 3 {
		t.Errorf("count k=4 = %d want 3", got)
	}
	if got := InNetworkCount(g, voters, 99); got != 3 {
		t.Errorf("clamped count = %d want 3", got)
	}
	if InNetworkFlags(g, []digg.UserID{0}) != nil {
		t.Error("single-voter story should have no flags")
	}
}

func TestIsInNetworkBothBranches(t *testing.T) {
	// Build a voter with a large friends list to force the prior-set
	// branch, and one with a small list for the HasEdge branch.
	b := graph.NewBuilder(40)
	for i := 2; i < 40; i++ {
		b.AddEdge(1, graph.NodeID(i)) // voter 1 watches many
	}
	b.AddEdge(1, 0) // and the submitter
	b.AddEdge(2, 0) // small-degree voter
	g := b.Build()
	voters := []digg.UserID{0, 1, 2}
	if !IsInNetwork(g, voters, 1) { // friends(1)=39 > idx=1: HasEdge branch
		t.Error("large-degree voter misclassified")
	}
	if !IsInNetwork(g, voters, 2) { // friends(2)=1 <= idx=2: set branch
		t.Error("small-degree voter misclassified")
	}
}

func TestAnalyze(t *testing.T) {
	g := fanGraph(t)
	s := &digg.Story{
		ID:        7,
		Submitter: 0,
		Votes: []digg.Vote{
			{Voter: 0}, {Voter: 1}, {Voter: 5}, {Voter: 3},
		},
	}
	st := Analyze(g, s)
	if st.StoryID != 7 || st.Submitter != 0 || st.FinalVotes != 4 {
		t.Errorf("stats = %+v", st)
	}
	if st.SubmitterFans != 2 {
		t.Errorf("SubmitterFans = %d want 2", st.SubmitterFans)
	}
	if st.InfluenceAtSubmission != 2 {
		t.Errorf("InfluenceAtSubmission = %d", st.InfluenceAtSubmission)
	}
	if st.InNet6 != 2 || st.InNet10 != 2 {
		t.Errorf("in-network counts = %+v", st)
	}
}

func TestAnalyzeAll(t *testing.T) {
	g := fanGraph(t)
	stories := []*digg.Story{
		{ID: 0, Submitter: 0, Votes: []digg.Vote{{Voter: 0}}},
		{ID: 1, Submitter: 5, Votes: []digg.Vote{{Voter: 5}, {Voter: 1}}},
	}
	all := AnalyzeAll(g, stories)
	if len(all) != 2 || all[0].StoryID != 0 || all[1].StoryID != 1 {
		t.Errorf("AnalyzeAll = %+v", all)
	}
	if all[1].InNet10 != 0 {
		t.Error("voter 1 does not watch 5; must be out-of-network")
	}
}

func TestTree(t *testing.T) {
	g := fanGraph(t)
	voters := []digg.UserID{0, 1, 5, 3, 4}
	parent := Tree(g, voters)
	want := []int{-1, 0, -1, 1, 3}
	for i := range want {
		if parent[i] != want[i] {
			t.Fatalf("Tree = %v want %v", parent, want)
		}
	}
	depths := TreeDepths(parent)
	wantD := []int{0, 1, 0, 2, 3}
	for i := range wantD {
		if depths[i] != wantD[i] {
			t.Fatalf("depths = %v want %v", depths, wantD)
		}
	}
	if MaxDepth(parent) != 3 {
		t.Errorf("MaxDepth = %d", MaxDepth(parent))
	}
}

func TestTreeEarliestParent(t *testing.T) {
	// Voter 4 watches both 3 and 1... build: 4 watches 1 and 3.
	g, err := graph.FromEdgeList(5, [][2]graph.NodeID{{4, 1}, {4, 3}})
	if err != nil {
		t.Fatal(err)
	}
	voters := []digg.UserID{0, 1, 3, 4}
	parent := Tree(g, voters)
	if parent[3] != 1 {
		t.Errorf("parent of 4 = %d want earliest watched voter (index 1)", parent[3])
	}
}

func TestTreeEmpty(t *testing.T) {
	g := fanGraph(t)
	if got := Tree(g, nil); len(got) != 0 {
		t.Errorf("Tree(nil) = %v", got)
	}
	if MaxDepth(nil) != 0 {
		t.Error("MaxDepth(nil) != 0")
	}
}

// TestOfflineMatchesOnline verifies that offline in-network analysis of
// a simulated story agrees vote-by-vote with the platform's online
// flags — the two independent implementations of the paper's central
// measurement.
func TestOfflineMatchesOnline(t *testing.T) {
	r := rng.New(42)
	g, err := graph.PreferentialAttachment(r, 5000, 4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := agent.NewConfig()
	cfg.Horizon = 2 * digg.Day
	sim, err := agent.NewSimulator(digg.NewPlatform(g, nil), cfg, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	// A seed node with fans: guarantees in-network votes to compare.
	st, _, err := sim.RunStory(0, "x", 0.6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.VoteCount() < 10 {
		t.Fatalf("too few votes (%d) to compare", st.VoteCount())
	}
	voters := Voters(st)
	flags := InNetworkFlags(g, voters)
	sawInNet := false
	for i, f := range flags {
		online := st.Votes[i+1].InNetwork
		if f != online {
			t.Fatalf("vote %d: offline=%v online=%v", i+1, f, online)
		}
		sawInNet = sawInNet || f
	}
	if !sawInNet {
		t.Error("expected at least one in-network vote in this scenario")
	}
}

func BenchmarkAnalyze(b *testing.B) {
	r := rng.New(1)
	g, _ := graph.PreferentialAttachment(r, 10000, 4, 0.3)
	voters := make([]digg.UserID, 500)
	for i := range voters {
		voters[i] = digg.UserID(r.Intn(10000))
	}
	s := &digg.Story{Votes: make([]digg.Vote, len(voters))}
	for i, v := range voters {
		s.Votes[i].Voter = v
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Analyze(g, s)
	}
}
