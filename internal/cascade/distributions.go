package cascade

import (
	"diggsim/internal/digg"
	"diggsim/internal/graph"
)

// SizeDistribution returns, for each story, the number of in-network
// votes among its first k votes (not counting the submitter) — the
// cascade-size sample behind Fig. 3(b).
func SizeDistribution(g *graph.Graph, stories []*digg.Story, k int) []int {
	out := make([]int, len(stories))
	for i, s := range stories {
		out[i] = InNetworkCount(g, Voters(s), k)
	}
	return out
}

// DepthDistribution returns the maximum cascade-forest depth of each
// story: how many hops interest propagated fan-to-fan. The paper's
// related-work section stresses that real recommendation chains
// terminate after a few steps; this lets the reproduction check the
// same property.
func DepthDistribution(g *graph.Graph, stories []*digg.Story) []int {
	out := make([]int, len(stories))
	for i, s := range stories {
		out[i] = MaxDepth(Tree(g, Voters(s)))
	}
	return out
}

// FanoutDistribution returns, over all stories, a histogram of how many
// direct cascade children each voter spawned (out-degree in the cascade
// forest), excluding voters with zero children.
func FanoutDistribution(g *graph.Graph, stories []*digg.Story) map[int]int {
	out := make(map[int]int)
	for _, s := range stories {
		parent := Tree(g, Voters(s))
		children := make(map[int]int)
		for _, p := range parent {
			if p >= 0 {
				children[p]++
			}
		}
		for _, c := range children {
			out[c]++
		}
	}
	return out
}

// InNetworkFractionByPosition aggregates, across stories, the fraction
// of votes at each position (1-based, submitter excluded) that were
// in-network — how the network effect decays (or not) as a story
// spreads. Positions beyond maxPos are ignored; entries with no
// observations are -1.
func InNetworkFractionByPosition(g *graph.Graph, stories []*digg.Story, maxPos int) []float64 {
	if maxPos <= 0 {
		return nil
	}
	inNet := make([]int, maxPos)
	total := make([]int, maxPos)
	for _, s := range stories {
		flags := InNetworkFlags(g, Voters(s))
		for i, f := range flags {
			if i >= maxPos {
				break
			}
			total[i]++
			if f {
				inNet[i]++
			}
		}
	}
	out := make([]float64, maxPos)
	for i := range out {
		if total[i] == 0 {
			out[i] = -1
			continue
		}
		out[i] = float64(inNet[i]) / float64(total[i])
	}
	return out
}
