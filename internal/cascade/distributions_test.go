package cascade

import (
	"testing"

	"diggsim/internal/digg"
	"diggsim/internal/graph"
)

func chainStories(t *testing.T) (*graph.Graph, []*digg.Story) {
	t.Helper()
	// 1,2 watch 0; 3 watches 1; 4 watches 3.
	g, err := graph.FromEdgeList(6, [][2]graph.NodeID{{1, 0}, {2, 0}, {3, 1}, {4, 3}})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(voters ...digg.UserID) *digg.Story {
		s := &digg.Story{Submitter: voters[0]}
		for _, v := range voters {
			s.Votes = append(s.Votes, digg.Vote{Voter: v})
		}
		return s
	}
	return g, []*digg.Story{
		mk(0, 1, 3, 4), // full chain: 3 in-network, depth 3
		mk(0, 5),       // no cascade
		mk(5, 0, 2),    // 2 in-network via 0
	}
}

func TestSizeDistribution(t *testing.T) {
	g, stories := chainStories(t)
	sizes := SizeDistribution(g, stories, 10)
	want := []int{3, 0, 1}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("sizes = %v want %v", sizes, want)
		}
	}
	// Truncated horizon.
	sizes = SizeDistribution(g, stories, 1)
	if sizes[0] != 1 {
		t.Errorf("k=1 sizes = %v", sizes)
	}
}

func TestDepthDistribution(t *testing.T) {
	g, stories := chainStories(t)
	depths := DepthDistribution(g, stories)
	want := []int{3, 0, 1}
	for i := range want {
		if depths[i] != want[i] {
			t.Fatalf("depths = %v want %v", depths, want)
		}
	}
}

func TestFanoutDistribution(t *testing.T) {
	g, stories := chainStories(t)
	fanout := FanoutDistribution(g, stories)
	// In story 0 the chain 0<-1<-3<-4 has three parents with one child
	// each; story 2 has one parent (voter 0, child 2). So fanout 1
	// occurs 4 times.
	if fanout[1] != 4 {
		t.Errorf("fanout = %v", fanout)
	}
	if len(fanout) != 1 {
		t.Errorf("unexpected fanout keys: %v", fanout)
	}
}

func TestInNetworkFractionByPosition(t *testing.T) {
	g, stories := chainStories(t)
	fr := InNetworkFractionByPosition(g, stories, 4)
	// Position 1: story0 vote by 1 (in), story1 vote by 5 (out),
	// story2 vote by 0 (out) -> 1/3.
	if fr[0] < 0.33 || fr[0] > 0.34 {
		t.Errorf("pos1 fraction = %v", fr[0])
	}
	// Position 2: story0 vote by 3 (in), story2 vote by 2 (in) -> 1.0.
	if fr[1] != 1 {
		t.Errorf("pos2 fraction = %v", fr[1])
	}
	// Position 4: nobody voted that late -> -1 sentinel.
	if fr[3] != -1 {
		t.Errorf("pos4 fraction = %v", fr[3])
	}
	if InNetworkFractionByPosition(g, stories, 0) != nil {
		t.Error("maxPos=0 should give nil")
	}
}
