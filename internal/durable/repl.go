package durable

// repl.go is the durable store's replication surface: the applied-LSN
// position, the apply path a follower feeds streamed primary records
// through, and the checkpoint handoff a replica bootstraps from.
//
// A follower's data directory is a normal durable data directory. It is
// seeded with the primary's graph file and newest checkpoint
// (SeedReplica), opened with Open like any other, and then every record
// streamed from the primary is appended to the follower's own WAL at
// the same LSN it holds in the primary's (ApplyReplicated) before being
// applied to the wrapped platform. Identical records at identical LSNs
// means the follower checkpoints on its own schedule, recovers from its
// own disk after a crash, resumes the stream from AppliedLSN, and — on
// promotion — is a primary without any state conversion.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"diggsim/internal/wal"
)

// AppliedLSN returns the WAL position one past the last record this
// store has logged and applied — the position a replication stream
// resumes from.
func (s *Store) AppliedLSN() uint64 { return s.w.NextLSN() }

// ApplyReplicated appends a contiguous run of replicated records
// (already framed as type+payload entries, starting at LSN lsn) to the
// store's own WAL and applies them to the platform. The store's log
// position must equal lsn — the replication layer deduplicates and
// orders frames; a mismatch here means the stream broke and is a hard
// error. Rejected commands (refused identically on the primary) are not
// errors. Requires the caller's write synchronization, like any
// command.
func (s *Store) ApplyReplicated(lsn uint64, entries []wal.Entry) error {
	if s.err != nil {
		return s.err
	}
	if s.batching {
		return errors.New("durable: ApplyReplicated inside a batch")
	}
	if got := s.w.NextLSN(); got != lsn {
		return fmt.Errorf("durable: replicated records start at lsn %d, log is at %d", lsn, got)
	}
	if len(entries) == 0 {
		return nil
	}
	if _, err := s.w.AppendBatch(entries); err != nil {
		s.err = err
		return err
	}
	for i, e := range entries {
		if _, err := applyRecord(s.p, e.Type, e.Payload); err != nil {
			s.err = fmt.Errorf("durable: applying replicated lsn %d: %w", lsn+uint64(i), err)
			return s.err
		}
	}
	return s.afterWrite()
}

// ReadNewestCheckpointRaw returns the raw bytes of the newest valid
// checkpoint file in dir plus its LSN — the blob a replica bootstrap
// ships. It retries around the checkpoint pruner: a listed file may be
// replaced between listing and reading, in which case the next listing
// has the newer one.
func ReadNewestCheckpointRaw(dir string) (data []byte, lsn uint64, err error) {
	for attempt := 0; attempt < 5; attempt++ {
		paths, err := listCheckpoints(dir)
		if err != nil {
			return nil, 0, err
		}
		for _, path := range paths {
			data, err := os.ReadFile(path)
			if os.IsNotExist(err) {
				continue // pruned under us; try the next listing
			}
			if err != nil {
				return nil, 0, err
			}
			ck, err := decodeCheckpoint(data, path)
			if err != nil {
				continue // torn or bit-rotted; fall back like recovery does
			}
			return data, ck.LSN, nil
		}
		if len(paths) == 0 {
			return nil, 0, ErrNoCheckpoint
		}
	}
	return nil, 0, fmt.Errorf("%w (checkpoints kept churning under the reader)", ErrNoCheckpoint)
}

// ReadGraphRaw returns the raw bytes of dir's immutable social-graph
// file, CRC-verified.
func ReadGraphRaw(dir string) ([]byte, error) {
	path := filepath.Join(dir, graphFile)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if err := validateTrailingCRC(data, graphMagic, path); err != nil {
		return nil, err
	}
	return data, nil
}

// SeedReplica initializes dir as a replica data directory from a
// primary's raw graph and checkpoint blobs (as served by the
// replication source). Both blobs are CRC-validated before anything is
// written; the directory must not already contain a store. After
// seeding, Open recovers the replica exactly as it would a primary that
// checkpointed and lost its log segments.
func SeedReplica(dir string, graphData, ckptData []byte) error {
	if err := validateTrailingCRC(graphData, graphMagic, "replica graph blob"); err != nil {
		return err
	}
	ck, err := decodeCheckpoint(ckptData, "replica checkpoint blob")
	if err != nil {
		return err
	}
	if err := ensureDir(dir); err != nil {
		return err
	}
	if Exists(dir) {
		return fmt.Errorf("durable: %s already contains a store (wipe it before re-seeding)", dir)
	}
	if err := removeDebris(dir); err != nil {
		return err
	}
	if err := writeFileAtomic(dir, filepath.Join(dir, graphFile), graphData); err != nil {
		return err
	}
	return writeFileAtomic(dir, filepath.Join(dir, checkpointName(ck.LSN)), ckptData)
}

// validateTrailingCRC checks a magic-prefixed, CRC32-C-suffixed blob
// (the graph file framing).
func validateTrailingCRC(data []byte, magic, what string) error {
	if len(data) < len(magic)+4 || string(data[:len(magic)]) != magic {
		return fmt.Errorf("durable: %s: bad magic", what)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return fmt.Errorf("durable: %s: checksum mismatch", what)
	}
	return nil
}
