package durable

// inspect.go is the read-only operator's view of a data directory,
// backing `diggstats -wal DIR`. It never mutates anything: torn tails
// are reported, not truncated.

import (
	"fmt"
	"io"
	"sort"

	"diggsim/internal/wal"
)

// SegmentStats describes one WAL segment as found on disk.
type SegmentStats struct {
	Path     string
	FirstLSN uint64
	Bytes    int64
	// Records is the number of valid records in the segment.
	Records int
}

// CheckpointStats describes the newest valid checkpoint.
type CheckpointStats struct {
	Path string
	// LSN is the WAL position the checkpoint covers.
	LSN uint64
	// Generation is the checkpointed platform generation.
	Generation uint64
	// StateBytes is the size of the platform state blob.
	StateBytes int
	// Genesis is the provenance blob recorded at store creation.
	Genesis []byte
}

// Info is the inspection report for a data directory.
type Info struct {
	Dir      string
	Segments []SegmentStats
	// RecordsByType counts valid records by type name.
	RecordsByType map[string]int
	// FirstLSN/EndLSN is the replayable span held on disk.
	FirstLSN, EndLSN uint64
	// Torn reports a torn trailing record (normal after a hard stop;
	// recovery will truncate it).
	Torn bool
	// Corrupt carries a mid-log corruption error, nil for a healthy
	// log.
	Corrupt error
	// Checkpoint is the newest valid checkpoint, nil if none loads.
	Checkpoint *CheckpointStats
	// CheckpointErr records why no checkpoint loaded, nil otherwise.
	CheckpointErr error
	// ReplayRecords is the number of records recovery would replay on
	// Open: those at or after the checkpoint LSN.
	ReplayRecords int
}

// Inspect scans a data directory and reports its shape: segments and
// record counts, the newest valid checkpoint, and the replay span an
// Open would process.
func Inspect(dir string) (*Info, error) {
	segs, err := wal.ListSegments(dir)
	if err != nil {
		return nil, err
	}
	info := &Info{Dir: dir, RecordsByType: make(map[string]int)}
	// Preallocate so the &info.Segments[i] pointers below stay valid —
	// an append-grown slice would leave them targeting stale arrays.
	info.Segments = make([]SegmentStats, 0, len(segs))
	perSeg := make(map[uint64]*SegmentStats, len(segs))
	for _, s := range segs {
		info.Segments = append(info.Segments, SegmentStats{
			Path: s.Path, FirstLSN: s.FirstLSN, Bytes: s.Size,
		})
		perSeg[s.FirstLSN] = &info.Segments[len(info.Segments)-1]
	}
	if len(segs) > 0 {
		info.FirstLSN = segs[0].FirstLSN
	}
	info.EndLSN = info.FirstLSN

	if ck, path, err := newestCheckpoint(dir); err == nil {
		info.Checkpoint = &CheckpointStats{
			Path: path, LSN: ck.LSN, Generation: ck.Gen,
			StateBytes: len(ck.State),
			Genesis:    append([]byte(nil), ck.Genesis...),
		}
	} else {
		info.CheckpointErr = err
	}

	if len(segs) > 0 {
		r, err := wal.OpenReader(dir, info.FirstLSN)
		if err != nil {
			return nil, err
		}
		defer r.Close()
		// Segment boundaries, ascending, to attribute records.
		bounds := make([]uint64, len(segs))
		for i, s := range segs {
			bounds[i] = s.FirstLSN
		}
		for {
			rec, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				info.Corrupt = err
				break
			}
			info.RecordsByType[recordTypeName(rec.Type)]++
			i := sort.Search(len(bounds), func(i int) bool { return bounds[i] > rec.LSN }) - 1
			if i >= 0 {
				perSeg[bounds[i]].Records++
			}
			if info.Checkpoint != nil && rec.LSN >= info.Checkpoint.LSN {
				info.ReplayRecords++
			}
		}
		info.EndLSN = r.End()
		_, _, info.Torn = r.Torn()
	}
	return info, nil
}

// String renders the report for the command line.
func (info *Info) String() string {
	out := fmt.Sprintf("data directory: %s\n", info.Dir)
	out += fmt.Sprintf("segments: %d, log span [%d, %d)\n", len(info.Segments), info.FirstLSN, info.EndLSN)
	for _, s := range info.Segments {
		out += fmt.Sprintf("  %s  first-lsn=%d records=%d bytes=%d\n", s.Path, s.FirstLSN, s.Records, s.Bytes)
	}
	// Stable output order for the type counts.
	types := make([]string, 0, len(info.RecordsByType))
	for t := range info.RecordsByType {
		types = append(types, t)
	}
	sort.Strings(types)
	for _, t := range types {
		out += fmt.Sprintf("records[%s]: %d\n", t, info.RecordsByType[t])
	}
	if info.Torn {
		out += "tail: torn trailing record (recovery will truncate it)\n"
	}
	if info.Corrupt != nil {
		out += fmt.Sprintf("CORRUPT: %v\n", info.Corrupt)
	}
	if info.Checkpoint != nil {
		ck := info.Checkpoint
		out += fmt.Sprintf("checkpoint: %s\n  lsn=%d generation=%d state=%dB\n", ck.Path, ck.LSN, ck.Generation, ck.StateBytes)
		if len(ck.Genesis) > 0 {
			out += fmt.Sprintf("  genesis: %s\n", ck.Genesis)
		}
		out += fmt.Sprintf("replay on open: %d records\n", info.ReplayRecords)
	} else {
		out += fmt.Sprintf("checkpoint: NONE VALID (%v) — directory is not recoverable\n", info.CheckpointErr)
	}
	return out
}
