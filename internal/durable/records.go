package durable

// records.go defines the WAL record types and their payload codecs.
// One record per digg.Store command, plus the genesis record that
// anchors a log: the framing, CRCs and segmentation live in
// internal/wal; this file only encodes command arguments.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"diggsim/internal/digg"
)

// WAL record types. Values are part of the on-disk format; never
// renumber, only append.
const (
	// RecGenesis is the log's first record: an opaque, caller-supplied
	// provenance blob (cmd/diggd stores the generation seed and full
	// dataset config as JSON, making the social graph and RNG
	// substreams reconstructible from the data directory alone).
	RecGenesis byte = 1
	// RecSubmit logs a Store.Submit command.
	RecSubmit byte = 2
	// RecInstallStory logs a Store.InstallStory command with the full
	// pre-simulated story payload.
	RecInstallStory byte = 3
	// RecDigg logs a Store.Digg command.
	RecDigg byte = 4
	// RecCompactStory logs a Store.CompactStory command.
	RecCompactStory byte = 5
)

// recordTypeName names a record type for inspection output.
func recordTypeName(t byte) string {
	switch t {
	case RecGenesis:
		return "genesis"
	case RecSubmit:
		return "submit"
	case RecInstallStory:
		return "install_story"
	case RecDigg:
		return "digg"
	case RecCompactStory:
		return "compact_story"
	default:
		return fmt.Sprintf("type(%d)", t)
	}
}

// ErrBadRecord is wrapped by every command payload decode failure. A
// CRC-valid record that fails to decode means the log was written by
// an incompatible version — recovery treats it as hard corruption.
var ErrBadRecord = errors.New("durable: bad record payload")

func appendSubmit(b []byte, u digg.UserID, title string, interest float64, t digg.Minutes) []byte {
	b = binary.AppendVarint(b, int64(u))
	b = binary.AppendUvarint(b, uint64(len(title)))
	b = append(b, title...)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(interest))
	return binary.AppendVarint(b, int64(t))
}

func decodeSubmit(p []byte) (u digg.UserID, title string, interest float64, t digg.Minutes, err error) {
	uu, n := binary.Varint(p)
	if n <= 0 {
		return 0, "", 0, 0, fmt.Errorf("%w: submit user", ErrBadRecord)
	}
	p = p[n:]
	ln, n := binary.Uvarint(p)
	if n <= 0 || ln > uint64(len(p)-n) {
		return 0, "", 0, 0, fmt.Errorf("%w: submit title", ErrBadRecord)
	}
	p = p[n:]
	title = string(p[:ln])
	p = p[ln:]
	if len(p) < 8 {
		return 0, "", 0, 0, fmt.Errorf("%w: submit interest", ErrBadRecord)
	}
	interest = math.Float64frombits(binary.LittleEndian.Uint64(p))
	p = p[8:]
	tt, n := binary.Varint(p)
	if n <= 0 || n != len(p) {
		return 0, "", 0, 0, fmt.Errorf("%w: submit time", ErrBadRecord)
	}
	return digg.UserID(uu), title, interest, digg.Minutes(tt), nil
}

func appendDigg(b []byte, id digg.StoryID, u digg.UserID, t digg.Minutes) []byte {
	b = binary.AppendVarint(b, int64(id))
	b = binary.AppendVarint(b, int64(u))
	return binary.AppendVarint(b, int64(t))
}

func decodeDigg(p []byte) (id digg.StoryID, u digg.UserID, t digg.Minutes, err error) {
	vals := [3]int64{}
	for i := range vals {
		v, n := binary.Varint(p)
		if n <= 0 {
			return 0, 0, 0, fmt.Errorf("%w: digg field %d", ErrBadRecord, i)
		}
		vals[i] = v
		p = p[n:]
	}
	if len(p) != 0 {
		return 0, 0, 0, fmt.Errorf("%w: digg trailing bytes", ErrBadRecord)
	}
	return digg.StoryID(vals[0]), digg.UserID(vals[1]), digg.Minutes(vals[2]), nil
}

func appendCompact(b []byte, id digg.StoryID) []byte {
	return binary.AppendVarint(b, int64(id))
}

func decodeCompact(p []byte) (digg.StoryID, error) {
	v, n := binary.Varint(p)
	if n <= 0 || n != len(p) {
		return 0, fmt.Errorf("%w: compact story id", ErrBadRecord)
	}
	return digg.StoryID(v), nil
}

// applyRecord replays one logged command onto the platform. The
// returned rejected flag marks commands the platform refused — the
// same refusal it issued during the original run (replay is
// deterministic, so a rejected command rejects identically and changes
// nothing either time). A decode failure is a hard error.
func applyRecord(p *digg.Platform, typ byte, payload []byte) (rejected bool, err error) {
	switch typ {
	case RecGenesis:
		// Provenance only; carries no state.
		return false, nil
	case RecSubmit:
		u, title, interest, t, err := decodeSubmit(payload)
		if err != nil {
			return false, err
		}
		_, cmdErr := p.Submit(u, title, interest, t)
		return cmdErr != nil, nil
	case RecInstallStory:
		st, rest, err := digg.DecodeStory(payload)
		if err != nil {
			return false, err
		}
		if len(rest) != 0 {
			return false, fmt.Errorf("%w: install story trailing bytes", ErrBadRecord)
		}
		return p.InstallStory(st) != nil, nil
	case RecDigg:
		id, u, t, err := decodeDigg(payload)
		if err != nil {
			return false, err
		}
		_, cmdErr := p.Digg(id, u, t)
		return cmdErr != nil, nil
	case RecCompactStory:
		id, err := decodeCompact(payload)
		if err != nil {
			return false, err
		}
		return p.CompactStory(id) != nil, nil
	default:
		return false, fmt.Errorf("%w: unknown record type %d", ErrBadRecord, typ)
	}
}
