// Package durable makes the platform survive restarts: a decorator
// implementing digg.Store that write-ahead logs every command to a
// segmented binary log (internal/wal) before delegating to the wrapped
// in-memory *digg.Platform, takes periodic full-state checkpoints, and
// recovers on Open by loading the newest valid checkpoint and
// replaying the WAL tail.
//
// Because every serving-layer consumer (httpapi.Server, live.Service,
// agent.Stepper, the dataset exporter) compiles against digg.Store,
// durability is a constructor swap: wrap the platform in Create/Open
// and hand the result to the same constructors. Reads never touch the
// WAL — queries delegate straight to the platform, so the lock-free
// snapshot read path is byte-for-byte unaffected.
//
// Concurrency follows the Store contract: commands (and BeginBatch/
// EndBatch/Checkpoint) require the caller's external write
// synchronization — the serving layer's RWMutex — while queries run
// under the read side. The only internal concurrency is the WAL's
// interval flusher, which the wal.Writer synchronizes itself.
//
// See docs/persistence.md for the on-disk format, fsync trade-offs,
// recovery guarantees and the operator runbook.
package durable

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"diggsim/internal/digg"
	"diggsim/internal/graph"
	"diggsim/internal/obs"
	"diggsim/internal/wal"
)

// Checkpoint cost splits into state encode (CPU, scales with corpus
// size) and file write (disk, includes the tmp-file fsync + rename);
// both run synchronously on the write path when the schedule is due,
// so their tails show up directly in write latency.
var (
	histCkptBuild = obs.Default.Histogram("diggsim_checkpoint_build_seconds", "",
		"Checkpoint state-encode latency (Platform.AppendState).")
	histCkptWrite = obs.Default.Histogram("diggsim_checkpoint_write_seconds", "",
		"Checkpoint file write latency (tmp write, fsync, rename).")
)

// DefaultCheckpointEvery is the automatic checkpoint cadence when
// Options.CheckpointEvery is zero.
const DefaultCheckpointEvery = time.Minute

// Options parameterizes a durable store.
type Options struct {
	// Policy is the promotion policy of the recovered platform (nil
	// means the classic default, as in digg.NewPlatform). Replay
	// re-executes votes through the policy, so it must be the policy
	// the log was written under; a different policy yields a different
	// — internally consistent, but diverged — platform.
	Policy digg.PromotionPolicy
	// Sync is the WAL fsync policy (always, interval, os).
	Sync wal.SyncPolicy
	// SyncEvery is the flush cadence under wal.SyncInterval
	// (wal.DefaultSyncEvery when zero).
	SyncEvery time.Duration
	// SegmentSize is the WAL rotation threshold
	// (wal.DefaultSegmentSize when zero).
	SegmentSize int64
	// CheckpointEvery is the minimum interval between automatic
	// checkpoints, taken synchronously on the write path once due
	// (DefaultCheckpointEvery when zero; negative disables automatic
	// checkpoints — tests and benchmarks call Checkpoint explicitly).
	CheckpointEvery time.Duration
	// Graph, when non-nil, is used by Open instead of reading the data
	// directory's graph file. A sharded store opens N shard directories
	// that all persist the same social graph; injecting the instance
	// makes them share one in-memory copy instead of decoding N.
	Graph *graph.Graph
}

func (o Options) withDefaults() Options {
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = DefaultCheckpointEvery
	}
	return o
}

func (o Options) walOptions() wal.Options {
	return wal.Options{SegmentSize: o.SegmentSize, Sync: o.Sync, SyncEvery: o.SyncEvery}
}

// RecoveryInfo describes what Open did to reconstruct the platform.
type RecoveryInfo struct {
	// CheckpointLSN is the WAL position of the checkpoint recovery
	// started from.
	CheckpointLSN uint64
	// Replayed is the number of WAL records applied after the
	// checkpoint; zero after a clean shutdown.
	Replayed int
	// Rejected counts replayed commands the platform refused — the
	// same refusals it issued during the original run.
	Rejected int
	// TailTruncated reports whether a torn trailing record was cut.
	TailTruncated bool
	// Generation is the recovered platform generation.
	Generation uint64
}

// Store is a durable digg.Store: WAL append first, then delegate to
// the wrapped platform. Create starts a fresh data directory around an
// existing platform; Open recovers one.
type Store struct {
	p    *digg.Platform
	w    *wal.Writer
	dir  string
	opts Options

	genesis []byte
	rec     RecoveryInfo

	// enc is the per-command encode scratch; batch staging appends
	// into arena so one EndBatch commits the burst as a single WAL
	// append.
	enc      []byte
	batching bool
	arena    []byte
	staged   []wal.Entry

	stateBuf []byte // checkpoint encode scratch
	lastCkpt time.Time

	// err is sticky: after a WAL append fails mid-batch (the platform
	// has applied commands the log will never hold) the store refuses
	// all further writes, bounding the divergence at the failed batch.
	err error

	// commit stamps the newest locally-originated durable append;
	// replication heartbeats read it lock-free (LastCommit) so
	// followers can measure commit→visible freshness. writeTrace is
	// the advisory trace ID of the in-flight write (SetWriteTrace).
	commit     atomic.Pointer[CommitStamp]
	writeTrace atomic.Uint64
}

// CommitStamp identifies the newest locally-originated WAL commit:
// the log head right after the append (exclusive, AppliedLSN
// semantics), the wall-clock commit instant, and the trace ID of the
// write that produced it (0 when untraced). Replicated applies do not
// stamp — only writes this node originated, so a chain of followers
// always measures freshness against the true primary's clock.
type CommitStamp struct {
	LSN      uint64
	UnixNano int64
	TraceID  uint64
}

// LastCommit returns the newest commit stamp — zero before the first
// local write. Safe from any goroutine: the replication source's
// heartbeat path calls it off the write lock.
func (s *Store) LastCommit() CommitStamp {
	if c := s.commit.Load(); c != nil {
		return *c
	}
	return CommitStamp{}
}

// SetWriteTrace records the trace ID of the write about to run, so
// the resulting commit stamp carries it to followers. Attribution is
// advisory: concurrent writers may overwrite each other's ID before
// either commits, which misattributes a stamp but never corrupts it.
func (s *Store) SetWriteTrace(id uint64) { s.writeTrace.Store(id) }

// stampCommit publishes the current log head as the newest commit.
// Runs under the caller's write synchronization, right after a
// successful append.
func (s *Store) stampCommit() {
	s.commit.Store(&CommitStamp{
		LSN:      s.w.NextLSN(),
		UnixNano: time.Now().UnixNano(),
		TraceID:  s.writeTrace.Load(),
	})
}

// Store implements digg.Store and the batch-grouping capability.
var (
	_ digg.Store   = (*Store)(nil)
	_ digg.Batcher = (*Store)(nil)
)

// Create initializes dir as a new data directory around platform p:
// the immutable social graph file, the genesis record (an opaque
// provenance blob — cmd/diggd stores its generation seed and config as
// JSON), and checkpoint 0 capturing p's full current state (for a
// pregenerated corpus, the corpus itself). The directory must not
// already contain a store.
func Create(dir string, p *digg.Platform, genesis []byte, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := ensureDir(dir); err != nil {
		return nil, err
	}
	if Exists(dir) {
		return nil, fmt.Errorf("durable: %s already contains a store (use Open)", dir)
	}
	// The directory may hold the debris of an interrupted Create — a
	// graph file, a segment with at most the genesis record, temp
	// files — from a crash before the initial checkpoint. No command
	// was ever acknowledged (Exists just said so), so wiping it and
	// starting over loses nothing; without this, the leftover segment
	// would fail the fresh writer's exclusive create forever.
	if err := removeDebris(dir); err != nil {
		return nil, err
	}
	if err := writeGraphFile(dir, p.SocialGraph()); err != nil {
		return nil, err
	}
	w, err := wal.OpenWriter(dir, 0, opts.walOptions())
	if err != nil {
		return nil, err
	}
	s := &Store{p: p, w: w, dir: dir, opts: opts, genesis: append([]byte(nil), genesis...)}
	if _, err := w.Append(RecGenesis, genesis); err != nil {
		w.Close()
		return nil, err
	}
	if err := s.Checkpoint(); err != nil {
		w.Close()
		return nil, err
	}
	s.rec = RecoveryInfo{CheckpointLSN: 1, Generation: p.Generation()}
	return s, nil
}

// Exists reports whether dir contains a recoverable durable store:
// any checkpoint file (valid or not — its presence proves a store
// lived here), or a WAL holding at least one command record. A
// directory holding only the debris of an interrupted Create — a
// segment with at most the genesis record and no checkpoint — does
// not count: no command was ever acknowledged, so nothing can be
// lost, and Create cleans it up and starts over (otherwise a crash
// inside the first boot's Create window would leave a directory that
// Open can never recover and every later boot would refuse).
func Exists(dir string) bool {
	cks, err := listCheckpoints(dir)
	if err == nil && len(cks) > 0 {
		return true
	}
	segs, err := wal.ListSegments(dir)
	if err != nil || len(segs) == 0 {
		return false
	}
	return hasCommandRecords(dir)
}

// hasCommandRecords scans the log for any non-genesis record. Scan
// failures count as "has records" — Open is the place that reports
// them properly, not a probe.
func hasCommandRecords(dir string) bool {
	r, err := wal.OpenReader(dir, 0)
	if err != nil {
		return true
	}
	defer r.Close()
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return false
		}
		if err != nil {
			return true
		}
		if rec.Type != RecGenesis {
			return true
		}
	}
}

// removeDebris clears the remains of an interrupted Create: leftover
// segments, the graph file, and orphaned temp files. Callers verify
// via Exists that nothing recoverable lives here first.
func removeDebris(dir string) error {
	if err := wal.RemoveSegments(dir); err != nil {
		return err
	}
	if err := os.Remove(filepath.Join(dir, graphFile)); err != nil && !os.IsNotExist(err) {
		return err
	}
	tmps, err := filepath.Glob(filepath.Join(dir, ".tmp-*"))
	if err != nil {
		return err
	}
	for _, t := range tmps {
		if err := os.Remove(t); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}

// Open recovers a durable store from an existing data directory: load
// the graph, restore the newest valid checkpoint, replay the WAL tail
// (torn trailing records are truncated; mid-log corruption is a hard
// error), and resume appending. The recovered platform is observably
// identical to the pre-crash platform as of its last durable point.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	g := opts.Graph
	if g == nil {
		var err error
		if g, err = readGraphFile(dir); err != nil {
			return nil, err
		}
	}
	ck, _, err := newestCheckpoint(dir)
	if err != nil {
		return nil, err
	}
	p, err := digg.RestorePlatform(g, opts.Policy, ck.State)
	if err != nil {
		return nil, fmt.Errorf("durable: restoring checkpoint lsn %d: %w", ck.LSN, err)
	}
	if p.Generation() != ck.Gen {
		return nil, fmt.Errorf("durable: checkpoint lsn %d: state generation %d, header says %d",
			ck.LSN, p.Generation(), ck.Gen)
	}
	rec := RecoveryInfo{CheckpointLSN: ck.LSN}
	r, err := wal.OpenReader(dir, ck.LSN)
	if err != nil {
		return nil, err
	}
	if err := replay(r, p, ck.LSN, &rec); err != nil {
		r.Close()
		return nil, err
	}
	_, _, rec.TailTruncated = r.Torn()
	walEnd := r.End()
	r.Close()
	if walEnd == 0 {
		segs, serr := wal.ListSegments(dir)
		if serr != nil {
			return nil, serr
		}
		if len(segs) == 0 {
			// A seeded replica directory (SeedReplica): a checkpoint with
			// no log yet. The writer's first segment starts at the
			// checkpoint LSN, which is exactly where replay "ended".
			walEnd = ck.LSN
		}
	}
	w, err := wal.OpenWriter(dir, ck.LSN, opts.walOptions())
	if err != nil {
		return nil, err
	}
	if w.NextLSN() < ck.LSN {
		// The log's durable tail predates the checkpoint (possible
		// under SyncOS: the checkpoint is fsynced, appends were not).
		// The checkpoint supersedes the whole log: discard it and start
		// a fresh segment at the checkpoint LSN, so new records never
		// reuse LSNs the next recovery would skip.
		w.Close()
		if err := wal.RemoveSegments(dir); err != nil {
			return nil, err
		}
		if w, err = wal.OpenWriter(dir, ck.LSN, opts.walOptions()); err != nil {
			return nil, err
		}
	} else if w.NextLSN() != walEnd {
		w.Close()
		return nil, fmt.Errorf("durable: writer resumed at lsn %d, replay ended at %d", w.NextLSN(), walEnd)
	}
	rec.Generation = p.Generation()
	s := &Store{
		p: p, w: w, dir: dir, opts: opts,
		genesis:  append([]byte(nil), ck.Genesis...),
		rec:      rec,
		lastCkpt: time.Now(),
	}
	return s, nil
}

// replay applies every record at or after from onto p.
func replay(r *wal.Reader, p *digg.Platform, from uint64, rec *RecoveryInfo) error {
	for {
		record, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			if errors.Is(err, wal.ErrCorrupt) {
				return fmt.Errorf("durable: replay: %w", err)
			}
			return err
		}
		if record.LSN < from {
			continue
		}
		rejected, err := applyRecord(p, record.Type, record.Payload)
		if err != nil {
			return fmt.Errorf("durable: replay lsn %d: %w", record.LSN, err)
		}
		if record.Type == RecGenesis {
			continue
		}
		rec.Replayed++
		if rejected {
			rec.Rejected++
		}
	}
}

// ensureDir creates dir if needed.
func ensureDir(dir string) error {
	return os.MkdirAll(dir, 0o755)
}

// Recovery returns what Create/Open did to establish the store's
// state.
func (s *Store) Recovery() RecoveryInfo { return s.rec }

// Genesis returns the provenance blob stored at log creation.
func (s *Store) Genesis() []byte { return s.genesis }

// Unwrap returns the wrapped in-memory platform. dataset.FromPlatform
// uses it (by interface assertion) so exports of a durable run carry
// the concrete platform like in-memory runs do.
func (s *Store) Unwrap() *digg.Platform { return s.p }

// Dir returns the data directory.
func (s *Store) Dir() string { return s.dir }

// --- queries: pure delegation; reads never touch the WAL ---

func (s *Store) Generation() uint64                         { return s.p.Generation() }
func (s *Store) NumStories() int                            { return s.p.NumStories() }
func (s *Store) StoryVersion(id digg.StoryID) uint32        { return s.p.StoryVersion(id) }
func (s *Store) Story(id digg.StoryID) (*digg.Story, error) { return s.p.Story(id) }
func (s *Store) Stories() []*digg.Story                     { return s.p.Stories() }
func (s *Store) FrontPage(limit int) []*digg.Story          { return s.p.FrontPage(limit) }
func (s *Store) PromotedCount() int                         { return s.p.PromotedCount() }
func (s *Store) PromotedIDs() []digg.StoryID                { return s.p.PromotedIDs() }
func (s *Store) TopUsers(k int) []digg.UserID               { return s.p.TopUsers(k) }
func (s *Store) Ranks() map[digg.UserID]int                 { return s.p.Ranks() }
func (s *Store) UserRank(u digg.UserID) int                 { return s.p.UserRank(u) }
func (s *Store) SocialGraph() *graph.Graph                  { return s.p.SocialGraph() }
func (s *Store) Upcoming(now digg.Minutes, limit int) []*digg.Story {
	return s.p.Upcoming(now, limit)
}

// --- commands: WAL append first, then delegate ---

// log stages or appends one encoded command record. Outside a batch
// the record is appended (and fsynced per policy) before the command
// applies; inside a batch it is staged for EndBatch's group commit.
func (s *Store) log(typ byte, payload []byte) error {
	if s.batching {
		start := len(s.arena)
		s.arena = append(s.arena, payload...)
		s.staged = append(s.staged, wal.Entry{Type: typ, Payload: s.arena[start:len(s.arena):len(s.arena)]})
		return nil
	}
	if _, err := s.w.Append(typ, payload); err != nil {
		s.err = err
		return err
	}
	s.stampCommit()
	return nil
}

// afterWrite runs the checkpoint schedule after a non-batch command.
func (s *Store) afterWrite() error {
	if s.batching || s.opts.CheckpointEvery <= 0 {
		return nil
	}
	if time.Since(s.lastCkpt) < s.opts.CheckpointEvery {
		return nil
	}
	return s.Checkpoint()
}

// Submit logs and applies a story submission.
func (s *Store) Submit(u digg.UserID, title string, interest float64, t digg.Minutes) (*digg.Story, error) {
	if s.err != nil {
		return nil, s.err
	}
	s.enc = appendSubmit(s.enc[:0], u, title, interest, t)
	if err := s.log(RecSubmit, s.enc); err != nil {
		return nil, err
	}
	st, err := s.p.Submit(u, title, interest, t)
	if cerr := s.afterWrite(); err == nil && cerr != nil {
		return nil, cerr
	}
	return st, err
}

// InstallStory logs the full pre-simulated story and applies it.
func (s *Store) InstallStory(st *digg.Story) error {
	if s.err != nil {
		return s.err
	}
	s.enc = digg.AppendStory(s.enc[:0], st)
	if err := s.log(RecInstallStory, s.enc); err != nil {
		return err
	}
	err := s.p.InstallStory(st)
	if cerr := s.afterWrite(); err == nil && cerr != nil {
		return cerr
	}
	return err
}

// Digg logs and applies a vote.
func (s *Store) Digg(id digg.StoryID, u digg.UserID, t digg.Minutes) (digg.DiggResult, error) {
	if s.err != nil {
		return digg.DiggResult{}, s.err
	}
	s.enc = appendDigg(s.enc[:0], id, u, t)
	if err := s.log(RecDigg, s.enc); err != nil {
		return digg.DiggResult{}, err
	}
	res, err := s.p.Digg(id, u, t)
	if cerr := s.afterWrite(); err == nil && cerr != nil {
		return digg.DiggResult{}, cerr
	}
	return res, err
}

// CompactStory logs and applies a compaction.
func (s *Store) CompactStory(id digg.StoryID) error {
	if s.err != nil {
		return s.err
	}
	s.enc = appendCompact(s.enc[:0], id)
	if err := s.log(RecCompactStory, s.enc); err != nil {
		return err
	}
	err := s.p.CompactStory(id)
	if cerr := s.afterWrite(); err == nil && cerr != nil {
		return cerr
	}
	return err
}

// BeginBatch starts staging command records so the whole burst commits
// as one WAL append and one fsync in EndBatch (digg.Batcher).
func (s *Store) BeginBatch() {
	if s.err != nil || s.batching {
		return
	}
	s.batching = true
	s.arena = s.arena[:0]
	s.staged = s.staged[:0]
}

// EndBatch group-commits the staged records. A nil return is the
// batch's durability acknowledgment (under SyncAlways; under the other
// policies it is the same append-ordering guarantee every command
// has). On append failure the store goes into a sticky failed state:
// the platform has applied commands the log will never hold, so
// accepting further writes would silently widen the divergence.
func (s *Store) EndBatch() error {
	if !s.batching {
		return s.err
	}
	s.batching = false
	if s.err != nil {
		return s.err
	}
	if len(s.staged) > 0 {
		if _, err := s.w.AppendBatch(s.staged); err != nil {
			s.err = err
			return err
		}
		s.stampCommit()
	}
	if s.opts.CheckpointEvery > 0 && time.Since(s.lastCkpt) >= s.opts.CheckpointEvery {
		return s.Checkpoint()
	}
	return nil
}

// Checkpoint synchronously persists the platform's full state,
// anchored at the current WAL position, then prunes older checkpoints
// and WAL segments wholly below it. Runs on the write path when the
// schedule is due, and from the graceful-shutdown hook so a clean
// restart replays zero records. Requires the caller's write
// synchronization (like any command).
func (s *Store) Checkpoint() error {
	if s.err != nil {
		return s.err
	}
	if s.batching {
		return errors.New("durable: Checkpoint inside a batch")
	}
	if err := s.w.Sync(); err != nil {
		s.err = err
		return err
	}
	lsn := s.w.NextLSN()
	buildStart := time.Now()
	s.stateBuf = s.p.AppendState(s.stateBuf[:0])
	histCkptBuild.Observe(time.Since(buildStart))
	writeStart := time.Now()
	_, werr := writeCheckpoint(s.dir, checkpoint{
		LSN: lsn, Gen: s.p.Generation(), Genesis: s.genesis, State: s.stateBuf,
	})
	histCkptWrite.Observe(time.Since(writeStart))
	if werr != nil {
		s.err = werr
		return werr
	}
	if err := pruneCheckpoints(s.dir, lsn); err != nil {
		s.err = err
		return err
	}
	// Seal the active segment so every record below the checkpoint is
	// actually prunable; the retained log then starts at lsn.
	if err := s.w.Rotate(); err != nil {
		s.err = err
		return err
	}
	if err := s.w.RemoveBelow(lsn); err != nil {
		s.err = err
		return err
	}
	s.lastCkpt = time.Now()
	return nil
}

// Sync flushes the WAL to stable storage regardless of policy, making
// everything logged so far a durable point.
func (s *Store) Sync() error {
	if s.err != nil {
		return s.err
	}
	if err := s.w.Sync(); err != nil {
		s.err = err
		return err
	}
	return nil
}

// Close syncs and closes the WAL. It does not checkpoint — callers
// that want a replay-free next boot call Checkpoint first (cmd/diggd's
// shutdown path does).
func (s *Store) Close() error {
	return s.w.Close()
}
