package durable

// checkpoint.go reads and writes the two non-WAL file families of a
// data directory:
//
//   - graph.bin — the immutable social graph, written once at Create.
//     Checkpoints deliberately do not repeat it: the graph never
//     changes, and at production scale it dominates the state size.
//   - checkpoint-%016x.ckpt — a full platform snapshot named by the
//     WAL LSN it covers. Written to a temp file, fsynced, and renamed
//     into place, so a crash mid-checkpoint leaves the previous
//     checkpoint untouched; a trailing CRC32-C makes partial or bit-
//     rotted checkpoints detectable, and recovery falls back to the
//     next older file.
//
// Checkpoint layout (all integers little-endian):
//
//	magic    "DIGGCKP1"
//	lsn      uint64  WAL records applied when the snapshot was taken
//	gen      uint64  platform generation at the snapshot (inspection)
//	glen     uint32  genesis blob length, then the blob
//	slen     uint32  state blob length, then the blob (digg.AppendState)
//	crc      uint32  CRC32-C over everything above

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"diggsim/internal/graph"
)

const (
	ckptMagic  = "DIGGCKP1"
	ckptPrefix = "checkpoint-"
	ckptSuffix = ".ckpt"
	graphMagic = "DIGGRAF1"
	// graphFile is the immutable social-graph file within a data dir.
	graphFile = "graph.bin"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrNoCheckpoint is returned by Open when a data directory holds no
// valid checkpoint: with nothing to anchor replay, the directory is
// not recoverable (see docs/persistence.md for the operator runbook).
var ErrNoCheckpoint = errors.New("durable: no valid checkpoint in data directory")

func checkpointName(lsn uint64) string {
	return fmt.Sprintf("%s%016x%s", ckptPrefix, lsn, ckptSuffix)
}

func parseCheckpointName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix)
	if len(hex) != 16 {
		return 0, false
	}
	var lsn uint64
	if _, err := fmt.Sscanf(hex, "%016x", &lsn); err != nil {
		return 0, false
	}
	return lsn, true
}

// listCheckpoints returns the directory's checkpoint files, newest
// (highest LSN) first.
func listCheckpoints(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type ck struct {
		path string
		lsn  uint64
	}
	var cks []ck
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if lsn, ok := parseCheckpointName(e.Name()); ok {
			cks = append(cks, ck{filepath.Join(dir, e.Name()), lsn})
		}
	}
	sort.Slice(cks, func(i, j int) bool { return cks[i].lsn > cks[j].lsn })
	paths := make([]string, len(cks))
	for i, c := range cks {
		paths[i] = c.path
	}
	return paths, nil
}

// checkpoint is a decoded checkpoint file.
type checkpoint struct {
	LSN     uint64
	Gen     uint64
	Genesis []byte
	State   []byte
}

// writeCheckpoint atomically persists a checkpoint and returns its
// path. The temp file is fsynced before the rename and the directory
// after it, so once the new name is visible the content is durable.
func writeCheckpoint(dir string, ck checkpoint) (string, error) {
	buf := make([]byte, 0, len(ckptMagic)+16+8+len(ck.Genesis)+len(ck.State)+4)
	buf = append(buf, ckptMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, ck.LSN)
	buf = binary.LittleEndian.AppendUint64(buf, ck.Gen)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ck.Genesis)))
	buf = append(buf, ck.Genesis...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ck.State)))
	buf = append(buf, ck.State...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	path := filepath.Join(dir, checkpointName(ck.LSN))
	if err := writeFileAtomic(dir, path, buf); err != nil {
		return "", err
	}
	return path, nil
}

// writeFileAtomic writes data to path via a temp file + fsync + rename
// + directory fsync.
func writeFileAtomic(dir, path string, data []byte) error {
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// readCheckpoint loads and validates one checkpoint file.
func readCheckpoint(path string) (checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return checkpoint{}, err
	}
	return decodeCheckpoint(data, path)
}

// decodeCheckpoint validates and decodes a checkpoint blob; path names
// the source in errors. The replication bootstrap decodes blobs it
// received over the wire through the same function.
func decodeCheckpoint(data []byte, path string) (checkpoint, error) {
	var ck checkpoint
	if len(data) < len(ckptMagic)+16+8+4 || string(data[:len(ckptMagic)]) != ckptMagic {
		return ck, fmt.Errorf("durable: %s: not a checkpoint file", path)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return ck, fmt.Errorf("durable: %s: checkpoint checksum mismatch", path)
	}
	p := body[len(ckptMagic):]
	ck.LSN = binary.LittleEndian.Uint64(p)
	ck.Gen = binary.LittleEndian.Uint64(p[8:])
	p = p[16:]
	glen := binary.LittleEndian.Uint32(p)
	if uint64(glen)+4 > uint64(len(p)) {
		return ck, fmt.Errorf("durable: %s: genesis length past end", path)
	}
	ck.Genesis = p[4 : 4+glen]
	p = p[4+glen:]
	if len(p) < 4 {
		return ck, fmt.Errorf("durable: %s: state length missing", path)
	}
	slen := binary.LittleEndian.Uint32(p)
	if uint64(slen)+4 != uint64(len(p)) {
		return ck, fmt.Errorf("durable: %s: state length mismatch", path)
	}
	ck.State = p[4 : 4+slen]
	return ck, nil
}

// newestCheckpoint returns the newest valid checkpoint in dir, or
// ErrNoCheckpoint. Invalid (torn, bit-rotted) newer files are skipped
// with their errors collected into the failure if nothing loads.
func newestCheckpoint(dir string) (checkpoint, string, error) {
	paths, err := listCheckpoints(dir)
	if err != nil {
		return checkpoint{}, "", err
	}
	var failures []string
	for _, path := range paths {
		ck, err := readCheckpoint(path)
		if err == nil {
			return ck, path, nil
		}
		failures = append(failures, err.Error())
	}
	if len(failures) > 0 {
		return checkpoint{}, "", fmt.Errorf("%w (%s)", ErrNoCheckpoint, strings.Join(failures, "; "))
	}
	return checkpoint{}, "", ErrNoCheckpoint
}

// pruneCheckpoints removes every checkpoint except the one at keep.
func pruneCheckpoints(dir string, keep uint64) error {
	paths, err := listCheckpoints(dir)
	if err != nil {
		return err
	}
	for _, path := range paths {
		if lsn, ok := parseCheckpointName(filepath.Base(path)); ok && lsn != keep {
			if err := os.Remove(path); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeGraphFile persists the immutable social graph: magic, node
// count, edge count, varint edge list, trailing CRC32-C.
func writeGraphFile(dir string, g *graph.Graph) error {
	edges := g.Edges()
	buf := make([]byte, 0, len(graphMagic)+10+10+len(edges)*4+4)
	buf = append(buf, graphMagic...)
	buf = binary.AppendUvarint(buf, uint64(g.NumNodes()))
	buf = binary.AppendUvarint(buf, uint64(len(edges)))
	for _, e := range edges {
		buf = binary.AppendVarint(buf, int64(e[0]))
		buf = binary.AppendVarint(buf, int64(e[1]))
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	return writeFileAtomic(dir, filepath.Join(dir, graphFile), buf)
}

// readGraphFile loads and rebuilds the social graph. Rebuilding goes
// through the same CSR construction as generation, so adjacency order
// — and therefore every replayed visibility cascade — is identical.
func readGraphFile(dir string) (*graph.Graph, error) {
	path := filepath.Join(dir, graphFile)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(graphMagic)+4 || string(data[:len(graphMagic)]) != graphMagic {
		return nil, fmt.Errorf("durable: %s: not a graph file", path)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("durable: %s: graph checksum mismatch", path)
	}
	p := body[len(graphMagic):]
	n, w := binary.Uvarint(p)
	if w <= 0 {
		return nil, fmt.Errorf("durable: %s: bad node count", path)
	}
	p = p[w:]
	// Each edge is at least two 1-byte varints; divide rather than
	// multiply so a huge count cannot overflow past the bound.
	m, w := binary.Uvarint(p)
	if w <= 0 || m > uint64(len(p))/2 {
		return nil, fmt.Errorf("durable: %s: bad edge count", path)
	}
	p = p[w:]
	edges := make([][2]graph.NodeID, m)
	for i := range edges {
		from, w := binary.Varint(p)
		if w <= 0 {
			return nil, fmt.Errorf("durable: %s: truncated edge list", path)
		}
		p = p[w:]
		to, w := binary.Varint(p)
		if w <= 0 {
			return nil, fmt.Errorf("durable: %s: truncated edge list", path)
		}
		p = p[w:]
		edges[i] = [2]graph.NodeID{graph.NodeID(from), graph.NodeID(to)}
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("durable: %s: trailing bytes", path)
	}
	return graph.FromEdgeList(int(n), edges)
}
