package durable

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"diggsim/internal/digg"
	"diggsim/internal/graph"
	"diggsim/internal/rng"
	"diggsim/internal/wal"
)

// testPolicy is the promotion policy every durable test runs under;
// replay must re-execute votes through the same policy.
func testPolicy() digg.PromotionPolicy {
	return &digg.ClassicPromotion{VoteThreshold: 5, Window: digg.Day}
}

// newTestPlatform builds a platform with pre-durable history: some
// organic stories plus one installed pre-simulated story, mirroring
// how diggd wraps a pregenerated corpus.
func newTestPlatform(t testing.TB) *digg.Platform {
	t.Helper()
	g, err := graph.PreferentialAttachment(rng.New(11), 400, 3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	p := digg.NewPlatform(g, testPolicy())
	r := rng.New(12)
	for i := 0; i < 8; i++ {
		st, err := p.Submit(digg.UserID(r.Intn(400)), "seed-story", 0.4, digg.Minutes(i*5))
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < 2+r.Intn(6); v++ {
			_, _ = p.Digg(st.ID, digg.UserID(r.Intn(400)), digg.Minutes(i*5+v+1))
		}
	}
	installed := &digg.Story{
		ID: digg.StoryID(p.NumStories()), Title: "installed", Submitter: 3,
		SubmittedAt: 50, Promoted: true, PromotedAt: 70, Interest: 0.9,
		Votes: []digg.Vote{{Voter: 3, At: 50}, {Voter: 9, At: 60, InNetwork: true}},
	}
	if err := p.InstallStory(installed); err != nil {
		t.Fatal(err)
	}
	return p
}

// mutate drives n mixed commands through the store, including
// rejections (double votes) and a compaction, and returns how many
// commands were issued in total.
func mutate(t testing.TB, s digg.Store, seed uint64, n int) int {
	t.Helper()
	r := rng.New(seed)
	issued := 0
	for i := 0; i < n; i++ {
		switch r.Intn(10) {
		case 0:
			if _, err := s.Submit(digg.UserID(r.Intn(400)), "live-story", 0.6, digg.Minutes(100+i)); err != nil {
				t.Fatalf("submit: %v", err)
			}
		case 1:
			// Deliberate duplicate vote on story 0's submitter: usually
			// rejected, exercising the rejected-command replay path.
			_, _ = s.Digg(0, mustStory(t, s, 0).Submitter, digg.Minutes(100+i))
		case 2:
			// Occasional compaction; later diggs on the story reject.
			if err := s.CompactStory(digg.StoryID(r.Intn(s.NumStories()))); err != nil {
				t.Fatalf("compact: %v", err)
			}
		default:
			_, _ = s.Digg(digg.StoryID(r.Intn(s.NumStories())), digg.UserID(r.Intn(400)), digg.Minutes(100+i))
		}
		issued++
	}
	return issued
}

func mustStory(t testing.TB, s digg.Store, id digg.StoryID) *digg.Story {
	t.Helper()
	st, err := s.Story(id)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// compareStores asserts two stores are observably identical across the
// whole digg.Store query surface.
func compareStores(t testing.TB, want, got digg.Store) {
	t.Helper()
	if want.Generation() != got.Generation() {
		t.Fatalf("generation: got %d, want %d", got.Generation(), want.Generation())
	}
	if want.NumStories() != got.NumStories() {
		t.Fatalf("stories: got %d, want %d", got.NumStories(), want.NumStories())
	}
	for i := 0; i < want.NumStories(); i++ {
		id := digg.StoryID(i)
		if !reflect.DeepEqual(mustStory(t, want, id), mustStory(t, got, id)) {
			t.Fatalf("story %d differs", i)
		}
		if want.StoryVersion(id) != got.StoryVersion(id) {
			t.Fatalf("story %d version: got %d, want %d", i, got.StoryVersion(id), want.StoryVersion(id))
		}
	}
	if !reflect.DeepEqual(want.PromotedIDs(), got.PromotedIDs()) {
		t.Fatalf("promotion order differs: got %v, want %v", got.PromotedIDs(), want.PromotedIDs())
	}
	wantFP, gotFP := want.FrontPage(0), got.FrontPage(0)
	if len(wantFP) != len(gotFP) {
		t.Fatalf("front page length: got %d, want %d", len(gotFP), len(wantFP))
	}
	for i := range wantFP {
		if wantFP[i].ID != gotFP[i].ID {
			t.Fatalf("front page entry %d: got %d, want %d", i, gotFP[i].ID, wantFP[i].ID)
		}
	}
	if !reflect.DeepEqual(want.TopUsers(100), got.TopUsers(100)) {
		t.Fatal("top users differ")
	}
	if !reflect.DeepEqual(want.Ranks(), got.Ranks()) {
		t.Fatal("ranks differ")
	}
	if !reflect.DeepEqual(want.Upcoming(10_000, 0), got.Upcoming(10_000, 0)) {
		t.Fatal("upcoming queue differs")
	}
}

// clonePlatform deep-copies a platform through the state codec — the
// capture half of every fidelity assertion.
func clonePlatform(t testing.TB, p *digg.Platform) *digg.Platform {
	t.Helper()
	q, err := digg.RestorePlatform(p.Graph, p.Policy, p.AppendState(nil))
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestCleanShutdownReplaysZeroRecords(t *testing.T) {
	dir := t.TempDir()
	p := newTestPlatform(t)
	s, err := Create(dir, p, []byte(`{"seed":11}`), Options{
		Policy: testPolicy(), Sync: wal.SyncAlways, CheckpointEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	mutate(t, s, 21, 200)
	want := clonePlatform(t, p)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{Policy: testPolicy(), Sync: wal.SyncAlways, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Recovery(); got.Replayed != 0 {
		t.Fatalf("clean shutdown replayed %d records, want 0", got.Replayed)
	}
	compareStores(t, want, s2)
	if string(s2.Genesis()) != `{"seed":11}` {
		t.Fatalf("genesis = %q", s2.Genesis())
	}
}

func TestHardStopReplaysTail(t *testing.T) {
	dir := t.TempDir()
	p := newTestPlatform(t)
	s, err := Create(dir, p, nil, Options{
		Policy: testPolicy(), Sync: wal.SyncAlways, CheckpointEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	issued := mutate(t, s, 22, 150)
	want := clonePlatform(t, p)
	// Hard stop: no checkpoint, no close. The files are all on disk
	// (SyncAlways); the abandoned writer is simply never used again.

	s2, err := Open(dir, Options{Policy: testPolicy(), Sync: wal.SyncAlways, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec := s2.Recovery()
	if rec.Replayed != issued {
		t.Fatalf("replayed %d records, want %d", rec.Replayed, issued)
	}
	if rec.Rejected == 0 {
		t.Fatal("expected some replayed commands to be rejected (duplicate votes)")
	}
	compareStores(t, want, s2)

	// The recovered store keeps accepting writes and another recovery
	// still matches.
	mutate(t, s2, 23, 50)
	want2 := clonePlatform(t, s2.Unwrap())
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, Options{Policy: testPolicy(), Sync: wal.SyncAlways, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	compareStores(t, want2, s3)
}

func TestTornTailIsTruncated(t *testing.T) {
	dir := t.TempDir()
	p := newTestPlatform(t)
	s, err := Create(dir, p, nil, Options{
		Policy: testPolicy(), Sync: wal.SyncAlways, CheckpointEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	mutate(t, s, 31, 100)
	want := clonePlatform(t, p)
	// One more command whose record we then tear mid-write.
	if _, err := s.Submit(5, "torn-away", 0.5, 999); err != nil {
		t.Fatal(err)
	}
	segs, err := wal.ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := segs[len(segs)-1]
	if err := os.Truncate(last.Path, last.Size-3); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{Policy: testPolicy(), Sync: wal.SyncAlways, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec := s2.Recovery()
	if !rec.TailTruncated {
		t.Fatal("torn tail not reported")
	}
	if rec.Replayed != 100 {
		t.Fatalf("replayed %d, want 100 (the torn record must not apply)", rec.Replayed)
	}
	compareStores(t, want, s2)
}

func TestMidLogCorruptionFailsOpen(t *testing.T) {
	dir := t.TempDir()
	p := newTestPlatform(t)
	s, err := Create(dir, p, nil, Options{
		Policy: testPolicy(), Sync: wal.SyncAlways, CheckpointEvery: -1, SegmentSize: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	mutate(t, s, 41, 300)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := wal.ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("need several segments, got %d", len(segs))
	}
	mid := segs[len(segs)/2]
	data, err := os.ReadFile(mid.Path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(mid.Path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Policy: testPolicy()}); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("Open = %v, want ErrCorrupt", err)
	}
}

func TestCheckpointPrunesLog(t *testing.T) {
	dir := t.TempDir()
	p := newTestPlatform(t)
	s, err := Create(dir, p, nil, Options{
		Policy: testPolicy(), Sync: wal.SyncAlways, CheckpointEvery: -1, SegmentSize: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	mutate(t, s, 51, 300)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mutate(t, s, 52, 40)
	want := clonePlatform(t, p)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	cks, err := listCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) != 1 {
		t.Fatalf("%d checkpoint files, want 1 (older pruned)", len(cks))
	}
	segs, err := wal.ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if segs[0].FirstLSN == 0 {
		t.Fatal("segments below the checkpoint were not truncated")
	}

	s2, err := Open(dir, Options{Policy: testPolicy(), CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec := s2.Recovery(); rec.Replayed != 40 {
		t.Fatalf("replayed %d records, want only the 40 post-checkpoint ones", rec.Replayed)
	}
	compareStores(t, want, s2)
}

func TestBatchGroupCommit(t *testing.T) {
	dir := t.TempDir()
	p := newTestPlatform(t)
	s, err := Create(dir, p, nil, Options{
		Policy: testPolicy(), Sync: wal.SyncAlways, CheckpointEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A batch of mixed commands, including rejects, commits as one
	// append; results are visible inside the batch.
	s.BeginBatch()
	st, err := s.Submit(7, "batched", 0.5, 200)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 30; v++ {
		_, _ = s.Digg(st.ID, digg.UserID(v%400), 201)
	}
	if got := s.StoryVersion(st.ID); got < 2 {
		t.Fatalf("reads inside the batch must see its writes; version %d", got)
	}
	if err := s.EndBatch(); err != nil {
		t.Fatal(err)
	}
	want := clonePlatform(t, p)

	s2, err := Open(dir, Options{Policy: testPolicy(), CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	compareStores(t, want, s2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateRefusesExistingStore(t *testing.T) {
	dir := t.TempDir()
	p := newTestPlatform(t)
	s, err := Create(dir, p, nil, Options{Policy: testPolicy(), CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if !Exists(dir) {
		t.Fatal("Exists = false on a populated data dir")
	}
	if _, err := Create(dir, p, nil, Options{}); err == nil {
		t.Fatal("Create over an existing store must fail")
	}
}

func TestNoCheckpointIsHardError(t *testing.T) {
	dir := t.TempDir()
	p := newTestPlatform(t)
	s, err := Create(dir, p, nil, Options{Policy: testPolicy(), CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	cks, err := listCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ck := range cks {
		if err := os.Remove(ck); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Open(dir, Options{Policy: testPolicy()}); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Open = %v, want ErrNoCheckpoint", err)
	}
}

// TestInterruptedCreateIsCleanedUp reproduces a crash inside Create's
// window — graph file and genesis record written, no checkpoint yet.
// The debris must not count as a store, and a retried Create must
// clean it up and succeed; otherwise the data directory would refuse
// every later boot (Open has no checkpoint, Create sees leftovers).
func TestInterruptedCreateIsCleanedUp(t *testing.T) {
	dir := t.TempDir()
	p := newTestPlatform(t)
	if err := writeGraphFile(dir, p.SocialGraph()); err != nil {
		t.Fatal(err)
	}
	w, err := wal.OpenWriter(dir, 0, wal.Options{Sync: wal.SyncOS})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(RecGenesis, []byte("aborted")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	if Exists(dir) {
		t.Fatal("interrupted-Create debris must not count as a recoverable store")
	}
	s, err := Create(dir, p, []byte("fresh"), Options{Policy: testPolicy(), CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("Create over interrupted-Create debris: %v", err)
	}
	if string(s.Genesis()) != "fresh" {
		t.Fatalf("genesis = %q, want the retried Create's", s.Genesis())
	}
	mutate(t, s, 71, 20)
	want := clonePlatform(t, p)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if !Exists(dir) {
		t.Fatal("a store with command records must count as existing")
	}
	s2, err := Open(dir, Options{Policy: testPolicy(), CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if string(s2.Genesis()) != "fresh" {
		t.Fatalf("recovered genesis = %q", s2.Genesis())
	}
	compareStores(t, want, s2)
}

// TestCheckpointDecodeRejectsJunk re-checksums every truncation of a
// valid checkpoint file and feeds it through readCheckpoint: each must
// return an error — never panic — or newestCheckpoint's fall-back to
// older files could not run. A CRC-repaired graph file with an absurd
// edge count must likewise error instead of allocating.
func TestCheckpointDecodeRejectsJunk(t *testing.T) {
	dir := t.TempDir()
	p := newTestPlatform(t)
	s, err := Create(dir, p, []byte("genesis"), Options{Policy: testPolicy(), CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	paths, err := listCheckpoints(dir)
	if err != nil || len(paths) != 1 {
		t.Fatalf("checkpoints: %v, %v", paths, err)
	}
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	junk := filepath.Join(dir, "junk.ckpt")
	for cut := 0; cut < len(data)-4; cut += 11 {
		// Truncate the body and append a recomputed CRC so only the
		// structural checks can reject it.
		cand := append([]byte(nil), data[:cut]...)
		cand = binary.LittleEndian.AppendUint32(cand, crc32.Checksum(cand, castagnoli))
		if err := os.WriteFile(junk, cand, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := readCheckpoint(junk); err == nil {
			t.Fatalf("CRC-repaired truncation at %d decoded without error", cut)
		}
	}

	// An invalid newer checkpoint must fall back to the older valid one.
	bogus := append([]byte(nil), data[:len(data)/2]...)
	bogus = binary.LittleEndian.AppendUint32(bogus, crc32.Checksum(bogus, castagnoli))
	if err := os.WriteFile(filepath.Join(dir, checkpointName(999999)), bogus, 0o644); err != nil {
		t.Fatal(err)
	}
	ck, path, err := newestCheckpoint(dir)
	if err != nil {
		t.Fatalf("fall-back to older checkpoint failed: %v", err)
	}
	if path != paths[0] || ck.LSN != 1 {
		t.Fatalf("picked %s lsn %d, want the older valid checkpoint", path, ck.LSN)
	}

	// Graph file with edge count 2^63 and a valid CRC: the bound must
	// reject it without attempting the allocation.
	g := append([]byte(nil), graphMagic...)
	g = binary.AppendUvarint(g, 100)
	g = binary.AppendUvarint(g, 1<<63)
	g = binary.LittleEndian.AppendUint32(g, crc32.Checksum(g, castagnoli))
	gdir := t.TempDir()
	if err := os.WriteFile(filepath.Join(gdir, graphFile), g, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readGraphFile(gdir); err == nil {
		t.Fatal("absurd edge count decoded without error")
	}
}

func TestInspect(t *testing.T) {
	dir := t.TempDir()
	p := newTestPlatform(t)
	s, err := Create(dir, p, []byte(`{"seed":9}`), Options{
		Policy: testPolicy(), Sync: wal.SyncAlways, CheckpointEvery: -1, SegmentSize: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	mutate(t, s, 61, 120)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	info, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Segments) == 0 {
		t.Fatal("no segments reported")
	}
	// Create's checkpoint at LSN 1 prunes the genesis record from the
	// log; the genesis blob lives in the checkpoint (asserted below).
	if info.RecordsByType["genesis"] != 0 {
		t.Fatalf("genesis records = %d, want 0 (pruned by Create's checkpoint)", info.RecordsByType["genesis"])
	}
	if info.RecordsByType["digg"] == 0 || info.RecordsByType["submit"] == 0 {
		t.Fatalf("command records missing: %v", info.RecordsByType)
	}
	if info.Checkpoint == nil {
		t.Fatalf("no checkpoint reported: %v", info.CheckpointErr)
	}
	if info.Checkpoint.LSN != 1 {
		t.Fatalf("checkpoint lsn %d, want 1 (Create's)", info.Checkpoint.LSN)
	}
	if string(info.Checkpoint.Genesis) != `{"seed":9}` {
		t.Fatalf("genesis = %q", info.Checkpoint.Genesis)
	}
	if info.ReplayRecords != 120 {
		t.Fatalf("replay span %d records, want 120", info.ReplayRecords)
	}
	// Per-segment record counts must account for every record (the
	// 1024-byte SegmentSize forces several segments here).
	if len(info.Segments) < 2 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(info.Segments))
	}
	perSeg, byType := 0, 0
	for _, s := range info.Segments {
		perSeg += s.Records
	}
	for _, n := range info.RecordsByType {
		byType += n
	}
	if perSeg != byType || perSeg != int(info.EndLSN-info.FirstLSN) {
		t.Fatalf("per-segment counts %d != by-type %d != span %d",
			perSeg, byType, info.EndLSN-info.FirstLSN)
	}
	if info.Torn || info.Corrupt != nil {
		t.Fatalf("healthy log reported torn=%v corrupt=%v", info.Torn, info.Corrupt)
	}
	if s := info.String(); len(s) == 0 {
		t.Fatal("empty report")
	}
}
