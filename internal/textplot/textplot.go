// Package textplot renders simple ASCII charts — line series, scatter
// plots (with optional log-log axes) and histograms — so the experiment
// harness can display every figure of the paper in a terminal without
// external plotting dependencies.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Config controls chart geometry.
type Config struct {
	Width  int // plot area columns (default 60)
	Height int // plot area rows (default 16)
	Title  string
	XLabel string
	YLabel string
	LogX   bool
	LogY   bool
}

func (c Config) withDefaults() Config {
	if c.Width <= 0 {
		c.Width = 60
	}
	if c.Height <= 0 {
		c.Height = 16
	}
	return c
}

// Series is one named line/scatter series.
type Series struct {
	Name   string
	X, Y   []float64
	Marker rune // default '*'
}

var markers = []rune{'*', '+', 'o', 'x', '#', '@'}

// Plot renders the series into an ASCII chart. Series with mismatched
// X/Y lengths are truncated to the shorter side; non-finite and (on log
// axes) non-positive points are skipped.
func Plot(cfg Config, series ...Series) string {
	cfg = cfg.withDefaults()
	type pt struct {
		x, y float64
		m    rune
	}
	var pts []pt
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for si, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = markers[si%len(markers)]
		}
		n := len(s.X)
		if len(s.Y) < n {
			n = len(s.Y)
		}
		for i := 0; i < n; i++ {
			x, y := s.X[i], s.Y[i]
			if !finite(x) || !finite(y) {
				continue
			}
			if cfg.LogX {
				if x <= 0 {
					continue
				}
				x = math.Log10(x)
			}
			if cfg.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			pts = append(pts, pt{x, y, marker})
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	var sb strings.Builder
	if cfg.Title != "" {
		fmt.Fprintf(&sb, "%s\n", cfg.Title)
	}
	if len(pts) == 0 {
		sb.WriteString("(no data)\n")
		return sb.String()
	}
	if minX == maxX {
		minX, maxX = minX-1, maxX+1
	}
	if minY == maxY {
		minY, maxY = minY-1, maxY+1
	}
	grid := make([][]rune, cfg.Height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", cfg.Width))
	}
	for _, p := range pts {
		col := int(math.Round((p.x - minX) / (maxX - minX) * float64(cfg.Width-1)))
		row := int(math.Round((p.y - minY) / (maxY - minY) * float64(cfg.Height-1)))
		grid[cfg.Height-1-row][col] = p.m
	}
	// Y-axis labels on first, middle and last rows.
	yVal := func(row int) float64 {
		frac := float64(cfg.Height-1-row) / float64(cfg.Height-1)
		v := minY + frac*(maxY-minY)
		if cfg.LogY {
			v = math.Pow(10, v)
		}
		return v
	}
	for row := 0; row < cfg.Height; row++ {
		label := "          "
		if row == 0 || row == cfg.Height/2 || row == cfg.Height-1 {
			label = fmt.Sprintf("%10.3g", yVal(row))
		}
		fmt.Fprintf(&sb, "%s |%s\n", label, string(grid[row]))
	}
	fmt.Fprintf(&sb, "%s +%s\n", strings.Repeat(" ", 10), strings.Repeat("-", cfg.Width))
	xlo, xhi := minX, maxX
	if cfg.LogX {
		xlo, xhi = math.Pow(10, xlo), math.Pow(10, xhi)
	}
	fmt.Fprintf(&sb, "%s  %-12.4g%s%12.4g\n", strings.Repeat(" ", 10), xlo,
		strings.Repeat(" ", maxInt(1, cfg.Width-26)), xhi)
	if cfg.XLabel != "" || cfg.YLabel != "" {
		fmt.Fprintf(&sb, "%s  x: %s   y: %s\n", strings.Repeat(" ", 10), cfg.XLabel, cfg.YLabel)
	}
	var legend []string
	for si, s := range series {
		if s.Name == "" {
			continue
		}
		marker := s.Marker
		if marker == 0 {
			marker = markers[si%len(markers)]
		}
		legend = append(legend, fmt.Sprintf("%c %s", marker, s.Name))
	}
	if len(legend) > 0 {
		fmt.Fprintf(&sb, "%s  legend: %s\n", strings.Repeat(" ", 10), strings.Join(legend, "   "))
	}
	return sb.String()
}

// Bar is one labeled histogram bar.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders horizontal bars scaled to the maximum value.
func BarChart(title string, width int, bars []Bar) string {
	if width <= 0 {
		width = 50
	}
	var sb strings.Builder
	if title != "" {
		fmt.Fprintf(&sb, "%s\n", title)
	}
	if len(bars) == 0 {
		sb.WriteString("(no data)\n")
		return sb.String()
	}
	maxV := 0.0
	maxLabel := 0
	for _, b := range bars {
		if b.Value > maxV {
			maxV = b.Value
		}
		if len(b.Label) > maxLabel {
			maxLabel = len(b.Label)
		}
	}
	for _, b := range bars {
		n := 0
		if maxV > 0 && b.Value > 0 {
			n = int(math.Round(b.Value / maxV * float64(width)))
			if n == 0 {
				n = 1 // visible tick for small nonzero values
			}
		}
		fmt.Fprintf(&sb, "%-*s |%s %g\n", maxLabel, b.Label, strings.Repeat("#", n), b.Value)
	}
	return sb.String()
}

// Histogram renders bin counts as a bar chart with range labels.
func Histogram(title string, width int, los, his []float64, counts []int) string {
	n := len(counts)
	if len(los) < n {
		n = len(los)
	}
	if len(his) < n {
		n = len(his)
	}
	bars := make([]Bar, n)
	for i := 0; i < n; i++ {
		bars[i] = Bar{
			Label: fmt.Sprintf("[%g, %g)", los[i], his[i]),
			Value: float64(counts[i]),
		}
	}
	return BarChart(title, width, bars)
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
