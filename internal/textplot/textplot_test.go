package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestPlotBasic(t *testing.T) {
	out := Plot(Config{Title: "demo", Width: 40, Height: 10},
		Series{Name: "line", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}})
	if !strings.Contains(out, "demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "*") {
		t.Error("missing markers")
	}
	if !strings.Contains(out, "legend: * line") {
		t.Errorf("missing legend:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 12 {
		t.Errorf("too few lines: %d", len(lines))
	}
}

func TestPlotEmpty(t *testing.T) {
	out := Plot(Config{}, Series{})
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty plot = %q", out)
	}
}

func TestPlotSkipsNonFinite(t *testing.T) {
	out := Plot(Config{},
		Series{X: []float64{math.NaN(), 1, 2}, Y: []float64{1, math.Inf(1), 5}})
	// Only (2,5) is drawable... a single point plots fine.
	if strings.Contains(out, "(no data)") {
		t.Error("finite point dropped")
	}
}

func TestPlotLogAxes(t *testing.T) {
	out := Plot(Config{LogX: true, LogY: true},
		Series{X: []float64{1, 10, 100, -5, 0}, Y: []float64{1, 100, 10000, 3, 9}})
	if strings.Contains(out, "(no data)") {
		t.Error("log plot dropped positive data")
	}
	// Non-positive points are skipped silently — output still renders.
	if !strings.Contains(out, "|") {
		t.Error("missing axis")
	}
}

func TestPlotSinglePoint(t *testing.T) {
	out := Plot(Config{}, Series{X: []float64{5}, Y: []float64{5}})
	if strings.Contains(out, "(no data)") {
		t.Error("single point dropped")
	}
}

func TestPlotMismatchedLengths(t *testing.T) {
	out := Plot(Config{}, Series{X: []float64{1, 2, 3}, Y: []float64{1}})
	if strings.Contains(out, "(no data)") {
		t.Error("truncated series dropped entirely")
	}
}

func TestPlotMultipleSeriesMarkers(t *testing.T) {
	out := Plot(Config{},
		Series{Name: "a", X: []float64{1}, Y: []float64{1}},
		Series{Name: "b", X: []float64{2}, Y: []float64{2}})
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Errorf("distinct markers missing:\n%s", out)
	}
}

func TestPlotCustomMarker(t *testing.T) {
	out := Plot(Config{}, Series{Marker: '%', X: []float64{1, 2}, Y: []float64{1, 2}})
	if !strings.Contains(out, "%") {
		t.Error("custom marker ignored")
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("bars", 20, []Bar{
		{Label: "a", Value: 10},
		{Label: "bb", Value: 5},
		{Label: "c", Value: 0},
	})
	if !strings.Contains(out, "bars") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Largest bar has full width, zero bar has none.
	if strings.Count(lines[1], "#") != 20 {
		t.Errorf("max bar width = %d", strings.Count(lines[1], "#"))
	}
	if strings.Count(lines[3], "#") != 0 {
		t.Error("zero bar drawn")
	}
	// Small nonzero values still visible.
	out = BarChart("", 20, []Bar{{Label: "big", Value: 1000}, {Label: "tiny", Value: 1}})
	if !strings.Contains(out, "tiny |#") {
		t.Errorf("tiny bar invisible:\n%s", out)
	}
}

func TestBarChartEmpty(t *testing.T) {
	if out := BarChart("t", 10, nil); !strings.Contains(out, "(no data)") {
		t.Errorf("empty chart = %q", out)
	}
}

func TestHistogram(t *testing.T) {
	out := Histogram("h", 30, []float64{0, 10}, []float64{10, 20}, []int{3, 7})
	if !strings.Contains(out, "[0, 10)") || !strings.Contains(out, "[10, 20)") {
		t.Errorf("bin labels missing:\n%s", out)
	}
	if !strings.Contains(out, "7") {
		t.Error("count missing")
	}
}

func TestHistogramTruncatesToShortest(t *testing.T) {
	out := Histogram("h", 30, []float64{0}, []float64{10, 20}, []int{3, 7, 9})
	if strings.Count(out, "[") != 1 {
		t.Errorf("expected a single bin:\n%s", out)
	}
}

func TestPlotConstantSeries(t *testing.T) {
	// Constant x or y must not divide by zero.
	out := Plot(Config{}, Series{X: []float64{1, 1, 1}, Y: []float64{2, 2, 2}})
	if strings.Contains(out, "(no data)") || strings.Contains(out, "NaN") {
		t.Errorf("constant series broke plot:\n%s", out)
	}
}
