package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("zero seed produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(9)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of uniforms = %v, want ~0.5", mean)
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(3)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(5)
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / draws; math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v", p)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const draws = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < draws; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(17)
	const draws = 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / draws; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(19)
	for _, mean := range []float64{0.5, 3, 20, 100} {
		const draws = 50000
		sum := 0.0
		for i := 0; i < draws; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / draws
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	r := New(23)
	for i := 0; i < 10000; i++ {
		if r.Poisson(70) < 0 {
			t.Fatal("Poisson returned negative value")
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Fatal("Poisson of non-positive mean should be 0")
	}
}

func TestParetoTail(t *testing.T) {
	r := New(29)
	const xmin, alpha, draws = 1.0, 2.0, 200000
	exceed := 0
	for i := 0; i < draws; i++ {
		v := r.Pareto(xmin, alpha)
		if v < xmin {
			t.Fatalf("Pareto variate %v below xmin", v)
		}
		if v > 10 {
			exceed++
		}
	}
	// P(X > 10) = 10^-2 = 0.01.
	if p := float64(exceed) / draws; math.Abs(p-0.01) > 0.003 {
		t.Errorf("Pareto tail P(X>10) = %v, want ~0.01", p)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(31)
	const p, draws = 0.25, 100000
	sum := 0.0
	for i := 0; i < draws; i++ {
		sum += float64(r.Geometric(p))
	}
	want := (1 - p) / p // mean failures before success
	if got := sum / draws; math.Abs(got-want) > 0.1 {
		t.Errorf("Geometric(%v) mean = %v want %v", p, got, want)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(37)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestZipfRanks(t *testing.T) {
	r := New(41)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 101)
	const draws = 100000
	for i := 0; i < draws; i++ {
		k := z.Draw()
		if k < 1 || k > 100 {
			t.Fatalf("Zipf rank %d out of range", k)
		}
		counts[k]++
	}
	// Rank 1 must dominate rank 10 roughly 10:1 for s=1.
	if counts[1] < 5*counts[10] {
		t.Errorf("Zipf skew too weak: rank1=%d rank10=%d", counts[1], counts[10])
	}
	if counts[1] < counts[2] {
		t.Errorf("Zipf not monotone: rank1=%d rank2=%d", counts[1], counts[2])
	}
}

func TestWeightedChoice(t *testing.T) {
	r := New(43)
	w := []float64{0, 1, 3, 0, 6}
	counts := make([]int, len(w))
	const draws = 100000
	for i := 0; i < draws; i++ {
		idx := r.WeightedChoice(w)
		if idx < 0 || idx >= len(w) {
			t.Fatalf("WeightedChoice index %d", idx)
		}
		counts[idx]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Errorf("zero-weight entries chosen: %v", counts)
	}
	if math.Abs(float64(counts[4])/float64(counts[2])-2) > 0.2 {
		t.Errorf("weight ratio off: %v", counts)
	}
}

func TestWeightedChoiceDegenerate(t *testing.T) {
	r := New(47)
	if got := r.WeightedChoice(nil); got != -1 {
		t.Errorf("empty weights: got %d want -1", got)
	}
	if got := r.WeightedChoice([]float64{0, 0}); got != -1 {
		t.Errorf("all-zero weights: got %d want -1", got)
	}
	if got := r.WeightedChoice([]float64{-1, 2}); got != 1 {
		t.Errorf("negative weight treated as positive: got %d", got)
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := New(53)
	for _, tc := range []struct{ n, k int }{{10, 0}, {10, 1}, {10, 10}, {100, 17}} {
		s := r.SampleWithoutReplacement(tc.n, tc.k)
		if len(s) != tc.k {
			t.Fatalf("n=%d k=%d: got %d elems", tc.n, tc.k, len(s))
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= tc.n || seen[v] {
				t.Fatalf("n=%d k=%d: invalid sample %v", tc.n, tc.k, s)
			}
			seen[v] = true
		}
	}
}

func TestSampleWithoutReplacementUniform(t *testing.T) {
	r := New(59)
	counts := make([]int, 5)
	const draws = 50000
	for i := 0; i < draws; i++ {
		for _, v := range r.SampleWithoutReplacement(5, 2) {
			counts[v]++
		}
	}
	want := float64(draws) * 2 / 5
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("element %d drawn %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(61)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams overlap: %d/100 identical", same)
	}
}

func TestQuickIntnAlwaysInRange(t *testing.T) {
	r := New(67)
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFloat64InUnitInterval(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 10; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickPermPreservesElements(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 64)
		p := New(seed).Perm(n)
		sum := 0
		for _, v := range p {
			sum += v
		}
		return sum == n*(n-1)/2 && len(p) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}

func TestSubstreamDeterministicAndOrderFree(t *testing.T) {
	// Same (seed, index) yields the same stream regardless of how many
	// other substreams were derived first.
	a := Substream(42, 7)
	Substream(42, 3) // unrelated derivation must not disturb anything
	b := Substream(42, 7)
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("substream depends on derivation order")
		}
	}
}

func TestSubstreamIndicesIndependent(t *testing.T) {
	// Neighbouring indices and neighbouring seeds must give different,
	// uncorrelated-looking streams.
	seen := map[uint64]bool{}
	for seed := uint64(0); seed < 4; seed++ {
		for idx := uint64(0); idx < 64; idx++ {
			v := Substream(seed, idx).Uint64()
			if seen[v] {
				t.Fatalf("collision at seed=%d idx=%d", seed, idx)
			}
			seen[v] = true
		}
	}
}

func TestExpGapMeanAndInf(t *testing.T) {
	r := New(11)
	const rate = 0.25
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.ExpGap(rate)
	}
	mean := sum / n
	if mean < 3.6 || mean > 4.4 { // true mean 1/rate = 4
		t.Errorf("ExpGap mean = %.3f want ~4", mean)
	}
	if !math.IsInf(r.ExpGap(0), 1) || !math.IsInf(r.ExpGap(-1), 1) {
		t.Error("non-positive rate should give +Inf gap")
	}
}
