// Package rng provides a small, deterministic pseudo-random number
// generator and the distribution samplers the simulator needs.
//
// Every experiment in this repository is seeded, so results are exactly
// reproducible run to run. The generator is xoshiro256** seeded through
// splitmix64, which is the combination recommended by its authors; it is
// not cryptographically secure and must never be used for security
// purposes.
package rng

import "math"

// RNG is a deterministic pseudo-random number generator.
//
// The zero value is not usable; construct one with New. RNG is not safe
// for concurrent use; give each goroutine its own instance (see Split).
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64, so that any
// seed — including 0 — yields a well-mixed initial state.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitmix64(sm)
	}
	return r
}

// splitmix64 advances the splitmix64 state and returns the new state and
// the output value derived from it.
func splitmix64(state uint64) (next, out uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new generator whose stream is independent of r's for
// all practical purposes. It is the supported way to hand deterministic
// randomness to concurrent workers.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// Substream returns a generator for the index-th substream of the given
// seed. Unlike Split, the derivation is a pure function of (seed, index)
// — independent of call order — so work items can be fanned out across
// any number of workers while each item sees exactly the stream it would
// have seen sequentially. Seed and index are mixed through two rounds of
// splitmix64 so that neighbouring indices yield uncorrelated states.
func Substream(seed, index uint64) *RNG {
	_, h := splitmix64(seed)
	_, h = splitmix64(h ^ (index+1)*0x9e3779b97f4a7c15)
	return New(h)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask32 + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1. Scale by 1/λ
// for other rates.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// ExpGap returns an exponential inter-arrival gap for a Poisson process
// with the given rate (events per unit time): -ln(U)/rate. A rate of
// zero or less means the process never fires; the gap is +Inf.
func (r *RNG) ExpGap(rate float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	return r.ExpFloat64() / rate
}

// Poisson returns a Poisson variate with the given mean. For large means
// it uses the normal approximation, which is adequate for simulation
// workloads.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		n := int(math.Round(mean + math.Sqrt(mean)*r.NormFloat64()))
		if n < 0 {
			n = 0
		}
		return n
	}
	// Knuth's method.
	limit := math.Exp(-mean)
	n := 0
	p := r.Float64()
	for p > limit {
		n++
		p *= r.Float64()
	}
	return n
}

// Pareto returns a Pareto (power-law tail) variate with minimum xmin and
// tail exponent alpha: P(X > x) = (x/xmin)^-alpha for x >= xmin.
// It panics if xmin <= 0 or alpha <= 0.
func (r *RNG) Pareto(xmin, alpha float64) float64 {
	if xmin <= 0 || alpha <= 0 {
		panic("rng: Pareto requires xmin > 0 and alpha > 0")
	}
	for {
		u := r.Float64()
		if u > 0 {
			return xmin * math.Pow(u, -1/alpha)
		}
	}
}

// Geometric returns the number of failures before the first success in
// Bernoulli(p) trials. It panics if p is outside (0, 1].
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric requires 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher–Yates shuffle of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Zipf samples integers in [1, n] with probability proportional to
// rank^-s. It precomputes the CDF once; use NewZipf for repeated draws.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler over ranks 1..n with exponent s > 0.
// It panics if n <= 0 or s <= 0.
func NewZipf(r *RNG, n int, s float64) *Zipf {
	if n <= 0 || s <= 0 {
		panic("rng: NewZipf requires n > 0 and s > 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += math.Pow(float64(i), -s)
		cdf[i-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: r}
}

// Draw returns a rank in [1, n].
func (z *Zipf) Draw() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// WeightedChoice samples an index with probability proportional to
// weights[i]. It returns -1 if all weights are zero or the slice is
// empty. Negative weights are treated as zero.
func (r *RNG) WeightedChoice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		return -1
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if u < acc {
			return i
		}
	}
	// Floating-point slack: fall back to the last positive weight.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return -1
}

// SampleWithoutReplacement returns k distinct integers drawn uniformly
// from [0, n). It panics if k > n or either argument is negative.
func (r *RNG) SampleWithoutReplacement(n, k int) []int {
	if k < 0 || n < 0 || k > n {
		panic("rng: SampleWithoutReplacement requires 0 <= k <= n")
	}
	if k == 0 {
		return nil
	}
	// Floyd's algorithm: O(k) expected memory, no O(n) allocation.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
