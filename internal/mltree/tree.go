// Package mltree implements a C4.5-style decision-tree learner for
// binary classification over numeric attributes, reproducing the J48
// classifier the paper trained (Fig. 5): gain-ratio splits with numeric
// thresholds, minimum-leaf constraints, pessimistic-error pruning and
// stratified k-fold cross-validation.
package mltree

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"diggsim/internal/stats"
)

// Instance is one training example: numeric attribute values plus a
// boolean class label (the paper's "interesting" flag).
type Instance struct {
	Attrs []float64
	Label bool
}

// Config controls tree induction.
type Config struct {
	// MinLeaf is the minimum number of instances in a leaf (J48's -M,
	// default 2).
	MinLeaf int
	// MaxDepth caps tree depth; 0 means unlimited.
	MaxDepth int
	// Prune enables C4.5 pessimistic-error pruning with Confidence
	// (J48's -C, default 0.25).
	Prune      bool
	Confidence float64
}

// DefaultConfig mirrors Weka J48 defaults.
func DefaultConfig() Config {
	return Config{MinLeaf: 2, Prune: true, Confidence: 0.25}
}

// Node is a decision-tree node. Leaves have Leaf == true; internal
// nodes test Attrs[Attr] <= Threshold, descending to Left when the test
// holds and Right otherwise.
type Node struct {
	Leaf      bool
	Pred      bool    // leaf prediction
	N         int     // training instances reaching the node
	Errors    int     // training instances misclassified by Pred
	Attr      int     // split attribute (internal nodes)
	Threshold float64 // split threshold (internal nodes)
	Left      *Node   // Attrs[Attr] <= Threshold
	Right     *Node   // Attrs[Attr] >  Threshold
}

// Tree is a trained classifier.
type Tree struct {
	Root      *Node
	AttrNames []string
}

// ErrNoData is returned when training with no instances.
var ErrNoData = errors.New("mltree: no training instances")

// Train builds a decision tree over the instances. attrNames labels the
// attribute columns for rendering; every instance must have
// len(attrNames) attributes.
func Train(instances []Instance, attrNames []string, cfg Config) (*Tree, error) {
	if len(instances) == 0 {
		return nil, ErrNoData
	}
	if cfg.MinLeaf < 1 {
		cfg.MinLeaf = 1
	}
	if cfg.Confidence <= 0 || cfg.Confidence >= 1 {
		cfg.Confidence = 0.25
	}
	for i, inst := range instances {
		if len(inst.Attrs) != len(attrNames) {
			return nil, fmt.Errorf("mltree: instance %d has %d attrs, want %d",
				i, len(inst.Attrs), len(attrNames))
		}
	}
	root := grow(instances, cfg, 0)
	if cfg.Prune {
		prune(root, cfg.Confidence)
	}
	return &Tree{Root: root, AttrNames: attrNames}, nil
}

// grow recursively builds the subtree for the given instances.
func grow(insts []Instance, cfg Config, depth int) *Node {
	pos := countPos(insts)
	node := &Node{N: len(insts)}
	node.Pred = pos*2 >= len(insts)
	node.Errors = missed(len(insts), pos, node.Pred)
	if pos == 0 || pos == len(insts) ||
		len(insts) < 2*cfg.MinLeaf ||
		(cfg.MaxDepth > 0 && depth >= cfg.MaxDepth) {
		node.Leaf = true
		return node
	}
	attr, threshold, ok := bestSplit(insts, cfg.MinLeaf)
	if !ok {
		node.Leaf = true
		return node
	}
	var left, right []Instance
	for _, in := range insts {
		if in.Attrs[attr] <= threshold {
			left = append(left, in)
		} else {
			right = append(right, in)
		}
	}
	node.Attr = attr
	node.Threshold = threshold
	node.Left = grow(left, cfg, depth+1)
	node.Right = grow(right, cfg, depth+1)
	return node
}

// bestSplit finds the (attribute, threshold) pair with the highest gain
// ratio among splits whose information gain is at least the mean gain
// of viable candidates (C4.5's heuristic to stop the gain ratio from
// favouring unbalanced splits).
func bestSplit(insts []Instance, minLeaf int) (attr int, threshold float64, ok bool) {
	if len(insts) == 0 {
		return 0, 0, false
	}
	type candidate struct {
		attr      int
		threshold float64
		gain      float64
		ratio     float64
	}
	var cands []candidate
	baseEntropy := entropy(countPos(insts), len(insts))
	nAttrs := len(insts[0].Attrs)
	values := make([]float64, 0, len(insts))
	for a := 0; a < nAttrs; a++ {
		values = values[:0]
		for _, in := range insts {
			values = append(values, in.Attrs[a])
		}
		sort.Float64s(values)
		prev := values[0]
		for _, v := range values[1:] {
			if v == prev {
				continue
			}
			t := (prev + v) / 2
			prev = v
			nl, pl, nr, pr := 0, 0, 0, 0
			for _, in := range insts {
				if in.Attrs[a] <= t {
					nl++
					if in.Label {
						pl++
					}
				} else {
					nr++
					if in.Label {
						pr++
					}
				}
			}
			if nl < minLeaf || nr < minLeaf {
				continue
			}
			fl := float64(nl) / float64(len(insts))
			fr := float64(nr) / float64(len(insts))
			gain := baseEntropy - fl*entropy(pl, nl) - fr*entropy(pr, nr)
			if gain <= 1e-12 {
				continue
			}
			splitInfo := -fl*math.Log2(fl) - fr*math.Log2(fr)
			if splitInfo <= 1e-12 {
				continue
			}
			cands = append(cands, candidate{a, t, gain, gain / splitInfo})
		}
	}
	if len(cands) == 0 {
		return 0, 0, false
	}
	meanGain := 0.0
	for _, c := range cands {
		meanGain += c.gain
	}
	meanGain /= float64(len(cands))
	best := -1
	for i, c := range cands {
		if c.gain+1e-12 < meanGain {
			continue
		}
		if best < 0 || c.ratio > cands[best].ratio {
			best = i
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return cands[best].attr, cands[best].threshold, true
}

// prune applies C4.5 pessimistic subtree-replacement pruning: a subtree
// is replaced by a leaf when the leaf's estimated error is no worse
// than the subtree's.
func prune(n *Node, confidence float64) (estimatedErrors float64) {
	if n.Leaf {
		return pessimisticErrors(n.N, n.Errors, confidence)
	}
	subtree := prune(n.Left, confidence) + prune(n.Right, confidence)
	leaf := pessimisticErrors(n.N, n.Errors, confidence)
	if leaf <= subtree+1e-9 {
		n.Leaf = true
		n.Left, n.Right = nil, nil
		return leaf
	}
	return subtree
}

// pessimisticErrors is C4.5's upper confidence bound on the number of
// errors at a node: n * U_cf(e, n), where U_cf is the exact binomial
// upper confidence limit — the p solving P(X <= e | n, p) = confidence.
func pessimisticErrors(n, e int, confidence float64) float64 {
	if n <= 0 {
		return 0
	}
	if e >= n {
		return float64(n)
	}
	if e == 0 {
		// Closed form: P(X = 0) = (1-p)^n = confidence.
		return float64(n) * (1 - math.Pow(confidence, 1/float64(n)))
	}
	lo, hi := float64(e)/float64(n), 1.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if binomCDF(e, n, mid) > confidence {
			lo = mid
		} else {
			hi = mid
		}
	}
	return float64(n) * (lo + hi) / 2
}

// binomCDF returns P(X <= e) for X ~ Binomial(n, p), computed in log
// space for stability.
func binomCDF(e, n int, p float64) float64 {
	if p <= 0 {
		return 1
	}
	if p >= 1 {
		return 0
	}
	logP, log1P := math.Log(p), math.Log(1-p)
	sum := 0.0
	for k := 0; k <= e; k++ {
		logTerm := logChoose(n, k) + float64(k)*logP + float64(n-k)*log1P
		sum += math.Exp(logTerm)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// logChoose returns log C(n, k) via log-gamma.
func logChoose(n, k int) float64 {
	lg, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return lg - lk - lnk
}

// normalQuantile approximates the standard normal quantile via
// Acklam's rational approximation (sufficient accuracy for pruning).
func normalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Coefficients for the central region.
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := []float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// Classify returns the tree's prediction for the attribute vector.
func (t *Tree) Classify(attrs []float64) bool {
	n := t.Root
	for !n.Leaf {
		if attrs[n.Attr] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Pred
}

// Evaluate classifies every instance and returns the confusion matrix.
func (t *Tree) Evaluate(insts []Instance) stats.Confusion {
	var c stats.Confusion
	for _, in := range insts {
		c.Add(t.Classify(in.Attrs), in.Label)
	}
	return c
}

// Size returns the number of nodes in the tree.
func (t *Tree) Size() int { return nodeCount(t.Root) }

// Leaves returns the number of leaves.
func (t *Tree) Leaves() int { return leafCount(t.Root) }

func nodeCount(n *Node) int {
	if n == nil {
		return 0
	}
	if n.Leaf {
		return 1
	}
	return 1 + nodeCount(n.Left) + nodeCount(n.Right)
}

func leafCount(n *Node) int {
	if n == nil {
		return 0
	}
	if n.Leaf {
		return 1
	}
	return leafCount(n.Left) + leafCount(n.Right)
}

// String renders the tree in the J48 text style used by Fig. 5:
//
//	v10 <= 4: yes (130/5)
//	v10 > 4
//	|   fans1 <= 85: no (29/13)
//	...
func (t *Tree) String() string {
	var sb strings.Builder
	t.render(&sb, t.Root, 0, "")
	return strings.TrimRight(sb.String(), "\n")
}

func (t *Tree) render(sb *strings.Builder, n *Node, depth int, prefix string) {
	indent := strings.Repeat("|   ", depth)
	if n.Leaf {
		label := "no"
		if n.Pred {
			label = "yes"
		}
		fmt.Fprintf(sb, "%s%s: %s (%d/%d)\n", indent, prefix, label, n.N, n.Errors)
		return
	}
	name := t.AttrNames[n.Attr]
	if prefix != "" {
		fmt.Fprintf(sb, "%s%s\n", indent, prefix)
		depth++
		indent = strings.Repeat("|   ", depth)
		_ = indent
	}
	t.render(sb, n.Left, depth, fmt.Sprintf("%s <= %g", name, n.Threshold))
	t.render(sb, n.Right, depth, fmt.Sprintf("%s > %g", name, n.Threshold))
}

func countPos(insts []Instance) int {
	p := 0
	for _, in := range insts {
		if in.Label {
			p++
		}
	}
	return p
}

func missed(n, pos int, pred bool) int {
	if pred {
		return n - pos
	}
	return pos
}

func entropy(pos, n int) float64 {
	if n == 0 || pos == 0 || pos == n {
		return 0
	}
	p := float64(pos) / float64(n)
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}
