package mltree

import (
	"errors"

	"diggsim/internal/rng"
	"diggsim/internal/stats"
)

// CrossValidate runs stratified k-fold cross-validation and returns the
// pooled confusion matrix over all held-out folds — the "10-fold
// validation" the paper reports (174 of 207 correct). The shuffle is
// driven by r for reproducibility.
func CrossValidate(insts []Instance, attrNames []string, cfg Config, k int, r *rng.RNG) (stats.Confusion, error) {
	if k < 2 {
		return stats.Confusion{}, errors.New("mltree: k-fold requires k >= 2")
	}
	if len(insts) < k {
		return stats.Confusion{}, errors.New("mltree: fewer instances than folds")
	}
	folds := stratifiedFolds(insts, k, r)
	var pooled stats.Confusion
	for i := 0; i < k; i++ {
		var train, test []Instance
		for j, fold := range folds {
			if j == i {
				test = append(test, fold...)
			} else {
				train = append(train, fold...)
			}
		}
		if len(train) == 0 || len(test) == 0 {
			continue
		}
		tree, err := Train(train, attrNames, cfg)
		if err != nil {
			return stats.Confusion{}, err
		}
		pooled = pooled.Merge(tree.Evaluate(test))
	}
	return pooled, nil
}

// stratifiedFolds splits the instances into k folds preserving the
// class ratio in each fold.
func stratifiedFolds(insts []Instance, k int, r *rng.RNG) [][]Instance {
	var pos, neg []Instance
	for _, in := range insts {
		if in.Label {
			pos = append(pos, in)
		} else {
			neg = append(neg, in)
		}
	}
	shuffle := func(xs []Instance) {
		r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	}
	shuffle(pos)
	shuffle(neg)
	folds := make([][]Instance, k)
	for i, in := range pos {
		folds[i%k] = append(folds[i%k], in)
	}
	for i, in := range neg {
		// Offset so folds get balanced totals when classes are skewed.
		folds[(i+k/2)%k] = append(folds[(i+k/2)%k], in)
	}
	return folds
}
