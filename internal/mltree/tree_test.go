package mltree

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"diggsim/internal/rng"
)

// xorish builds a dataset separable by the threshold x <= 5.
func thresholdData(n int) []Instance {
	out := make([]Instance, 0, n)
	for i := 0; i < n; i++ {
		x := float64(i % 10)
		out = append(out, Instance{Attrs: []float64{x}, Label: x <= 4})
	}
	return out
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, []string{"x"}, DefaultConfig()); err != ErrNoData {
		t.Errorf("err = %v", err)
	}
	bad := []Instance{{Attrs: []float64{1, 2}, Label: true}}
	if _, err := Train(bad, []string{"x"}, DefaultConfig()); err == nil {
		t.Error("attribute arity mismatch accepted")
	}
}

func TestPerfectSplit(t *testing.T) {
	tree, err := Train(thresholdData(100), []string{"x"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for x := 0.0; x < 10; x++ {
		if got := tree.Classify([]float64{x}); got != (x <= 4) {
			t.Errorf("Classify(%v) = %v", x, got)
		}
	}
	c := tree.Evaluate(thresholdData(100))
	if c.Accuracy() != 1 {
		t.Errorf("training accuracy = %v", c.Accuracy())
	}
	if tree.Size() != 3 || tree.Leaves() != 2 {
		t.Errorf("tree size/leaves = %d/%d want 3/2", tree.Size(), tree.Leaves())
	}
	if tree.Root.Leaf || math.Abs(tree.Root.Threshold-4.5) > 1e-9 {
		t.Errorf("root split = %+v", tree.Root)
	}
}

func TestPureClassGivesLeaf(t *testing.T) {
	insts := []Instance{
		{Attrs: []float64{1}, Label: true},
		{Attrs: []float64{2}, Label: true},
		{Attrs: []float64{3}, Label: true},
	}
	tree, err := Train(insts, []string{"x"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Root.Leaf || !tree.Root.Pred {
		t.Errorf("pure-class tree = %+v", tree.Root)
	}
}

func TestMinLeafRespected(t *testing.T) {
	// 10 instances, MinLeaf 6: no split can satisfy both sides.
	insts := thresholdData(10)
	cfg := DefaultConfig()
	cfg.MinLeaf = 6
	tree, err := Train(insts, []string{"x"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Root.Leaf {
		t.Error("split created leaves smaller than MinLeaf")
	}
}

func TestMaxDepth(t *testing.T) {
	r := rng.New(1)
	insts := make([]Instance, 300)
	for i := range insts {
		x, y := r.Float64()*10, r.Float64()*10
		insts[i] = Instance{Attrs: []float64{x, y}, Label: x+y > 10}
	}
	cfg := DefaultConfig()
	cfg.MaxDepth = 1
	cfg.Prune = false
	tree, err := Train(insts, []string{"x", "y"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Size() > 3 {
		t.Errorf("depth-1 tree has %d nodes", tree.Size())
	}
}

func TestTwoAttributeSelection(t *testing.T) {
	// Only attribute 1 is informative; the learner must pick it.
	r := rng.New(2)
	insts := make([]Instance, 400)
	for i := range insts {
		noise := r.Float64()
		signal := r.Float64()
		insts[i] = Instance{Attrs: []float64{noise, signal}, Label: signal > 0.5}
	}
	tree, err := Train(insts, []string{"noise", "signal"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root.Leaf || tree.Root.Attr != 1 {
		t.Errorf("root = %+v; want split on attr 1", tree.Root)
	}
	if math.Abs(tree.Root.Threshold-0.5) > 0.05 {
		t.Errorf("threshold = %v want ~0.5", tree.Root.Threshold)
	}
}

func TestPruningShrinksNoisyTree(t *testing.T) {
	// Pure noise: an unpruned tree overfits; pruning should collapse
	// it substantially.
	r := rng.New(3)
	insts := make([]Instance, 300)
	for i := range insts {
		insts[i] = Instance{Attrs: []float64{r.Float64()}, Label: r.Bool(0.5)}
	}
	cfgNoPrune := DefaultConfig()
	cfgNoPrune.Prune = false
	unpruned, err := Train(insts, []string{"x"}, cfgNoPrune)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Train(insts, []string{"x"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Size() > unpruned.Size() {
		t.Errorf("pruned %d > unpruned %d nodes", pruned.Size(), unpruned.Size())
	}
	if pruned.Size() > unpruned.Size()/2 && pruned.Size() > 5 {
		t.Errorf("pruning too weak: %d vs %d", pruned.Size(), unpruned.Size())
	}
}

func TestStringRendering(t *testing.T) {
	tree, err := Train(thresholdData(100), []string{"v10"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := tree.String()
	if !strings.Contains(s, "v10 <= 4.5: yes") {
		t.Errorf("rendering missing left leaf:\n%s", s)
	}
	if !strings.Contains(s, "v10 > 4.5: no") {
		t.Errorf("rendering missing right leaf:\n%s", s)
	}
}

func TestStringLeafOnly(t *testing.T) {
	tree, err := Train([]Instance{{Attrs: []float64{1}, Label: true}}, []string{"x"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s := tree.String(); !strings.Contains(s, "yes (1/0)") {
		t.Errorf("leaf rendering = %q", s)
	}
}

func TestEvaluateConfusion(t *testing.T) {
	tree, err := Train(thresholdData(100), []string{"x"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	test := []Instance{
		{Attrs: []float64{0}, Label: true},  // TP
		{Attrs: []float64{9}, Label: false}, // TN
		{Attrs: []float64{9}, Label: true},  // FN
		{Attrs: []float64{0}, Label: false}, // FP
	}
	c := tree.Evaluate(test)
	if c.TP != 1 || c.TN != 1 || c.FN != 1 || c.FP != 1 {
		t.Errorf("confusion = %+v", c)
	}
}

func TestCrossValidate(t *testing.T) {
	r := rng.New(4)
	insts := make([]Instance, 200)
	for i := range insts {
		x := r.Float64() * 10
		label := x <= 5
		if r.Bool(0.05) { // 5% label noise
			label = !label
		}
		insts[i] = Instance{Attrs: []float64{x}, Label: label}
	}
	c, err := CrossValidate(insts, []string{"x"}, DefaultConfig(), 10, r)
	if err != nil {
		t.Fatal(err)
	}
	if c.Total() != len(insts) {
		t.Errorf("CV total = %d want %d", c.Total(), len(insts))
	}
	if c.Accuracy() < 0.85 {
		t.Errorf("CV accuracy = %v; separable data should score high", c.Accuracy())
	}
}

func TestCrossValidateErrors(t *testing.T) {
	r := rng.New(5)
	insts := thresholdData(10)
	if _, err := CrossValidate(insts, []string{"x"}, DefaultConfig(), 1, r); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := CrossValidate(insts[:3], []string{"x"}, DefaultConfig(), 10, r); err == nil {
		t.Error("fewer instances than folds accepted")
	}
}

func TestStratifiedFoldsPreserveAll(t *testing.T) {
	r := rng.New(6)
	insts := thresholdData(103)
	folds := stratifiedFolds(insts, 10, r)
	total := 0
	for _, f := range folds {
		total += len(f)
	}
	if total != len(insts) {
		t.Errorf("folds lost instances: %d != %d", total, len(insts))
	}
	// Class balance per fold within slack.
	for i, f := range folds {
		pos := 0
		for _, in := range f {
			if in.Label {
				pos++
			}
		}
		frac := float64(pos) / float64(len(f))
		if frac < 0.2 || frac > 0.8 {
			t.Errorf("fold %d class fraction %v badly skewed", i, frac)
		}
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0}, {0.75, 0.6745}, {0.975, 1.9600}, {0.25, -0.6745}, {0.01, -2.3263},
	}
	for _, c := range cases {
		if got := normalQuantile(c.p); math.Abs(got-c.want) > 1e-3 {
			t.Errorf("normalQuantile(%v) = %v want %v", c.p, got, c.want)
		}
	}
	if !math.IsInf(normalQuantile(0), -1) || !math.IsInf(normalQuantile(1), 1) {
		t.Error("edge quantiles should be infinite")
	}
}

func TestPessimisticErrorsMonotone(t *testing.T) {
	// More observed errors -> more estimated errors; estimate >= observed.
	prev := 0.0
	for e := 0; e <= 10; e++ {
		est := pessimisticErrors(20, e, 0.25)
		if est < float64(e) {
			t.Errorf("estimate %v below observed %d", est, e)
		}
		if est < prev {
			t.Errorf("estimate not monotone at e=%d", e)
		}
		prev = est
	}
	if pessimisticErrors(0, 0, 0.25) != 0 {
		t.Error("empty node estimate should be 0")
	}
}

func TestQuickClassifyTotal(t *testing.T) {
	// Property: a trained tree classifies every vector without panic and
	// training accuracy is at least the majority-class rate.
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 10
		r := rng.New(seed)
		insts := make([]Instance, n)
		pos := 0
		for i := range insts {
			insts[i] = Instance{
				Attrs: []float64{r.Float64(), r.Float64()},
				Label: r.Bool(0.4),
			}
			if insts[i].Label {
				pos++
			}
		}
		tree, err := Train(insts, []string{"a", "b"}, DefaultConfig())
		if err != nil {
			return false
		}
		c := tree.Evaluate(insts)
		majority := pos
		if n-pos > majority {
			majority = n - pos
		}
		return c.Correct() >= majority-1 // allow pruning slack of one
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTrain200x2(b *testing.B) {
	r := rng.New(7)
	insts := make([]Instance, 200)
	for i := range insts {
		x, y := r.Float64()*20, r.Float64()*100
		insts[i] = Instance{Attrs: []float64{x, y}, Label: x < 5 || y > 80}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Train(insts, []string{"v10", "fans1"}, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
