package mltree

import (
	"math"
	"strings"
	"testing"

	"diggsim/internal/rng"
)

func TestClassifyProbOrdering(t *testing.T) {
	tree, err := Train(thresholdData(100), []string{"x"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pLow := tree.ClassifyProb([]float64{1})  // positive region
	pHigh := tree.ClassifyProb([]float64{9}) // negative region
	if pLow <= pHigh {
		t.Errorf("positive-leaf prob %v <= negative-leaf prob %v", pLow, pHigh)
	}
	if pLow <= 0.5 || pHigh >= 0.5 {
		t.Errorf("probs on wrong sides of 0.5: %v %v", pLow, pHigh)
	}
	// Laplace smoothing keeps pure leaves off the extremes.
	if pLow >= 1 || pHigh <= 0 {
		t.Errorf("unsmoothed probabilities: %v %v", pLow, pHigh)
	}
}

func TestClassifyProbConsistentWithClassify(t *testing.T) {
	r := rng.New(1)
	insts := make([]Instance, 300)
	for i := range insts {
		x := r.Float64() * 10
		insts[i] = Instance{Attrs: []float64{x}, Label: x > 6 != r.Bool(0.1)}
	}
	tree, err := Train(insts, []string{"x"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for x := 0.0; x <= 10; x += 0.5 {
		pred := tree.Classify([]float64{x})
		prob := tree.ClassifyProb([]float64{x})
		if pred && prob < 0.5 {
			t.Errorf("x=%v: predicted true with prob %v", x, prob)
		}
		if !pred && prob > 0.5 {
			t.Errorf("x=%v: predicted false with prob %v", x, prob)
		}
	}
}

func TestDOTOutput(t *testing.T) {
	tree, err := Train(thresholdData(100), []string{"v10"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dot := tree.DOT("fig5")
	for _, want := range []string{"digraph \"fig5\"", "v10 <= 4.5", "yes", "no", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	if !strings.HasSuffix(dot, "}\n") {
		t.Error("DOT not terminated")
	}
	// Default name.
	if !strings.Contains(tree.DOT(""), "digraph \"tree\"") {
		t.Error("default DOT name missing")
	}
}

func TestDOTLeafOnly(t *testing.T) {
	tree, err := Train([]Instance{{Attrs: []float64{1}, Label: true}}, []string{"x"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dot := tree.DOT("leaf")
	if !strings.Contains(dot, "yes") || strings.Contains(dot, "->") {
		t.Errorf("leaf-only DOT wrong:\n%s", dot)
	}
}

func TestFeatureImportance(t *testing.T) {
	r := rng.New(2)
	insts := make([]Instance, 400)
	for i := range insts {
		noise, signal := r.Float64(), r.Float64()
		insts[i] = Instance{Attrs: []float64{noise, signal}, Label: signal > 0.5}
	}
	tree, err := Train(insts, []string{"noise", "signal"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	imp := tree.FeatureImportance()
	if len(imp) != 2 {
		t.Fatalf("importance = %v", imp)
	}
	if imp[1] <= imp[0] {
		t.Errorf("signal importance %v <= noise importance %v", imp[1], imp[0])
	}
	sum := imp[0] + imp[1]
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importances sum to %v", sum)
	}
}

func TestFeatureImportanceLeafTree(t *testing.T) {
	tree, err := Train([]Instance{{Attrs: []float64{1}, Label: true}}, []string{"x"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	imp := tree.FeatureImportance()
	if imp[0] != 0 {
		t.Errorf("leaf-only importance = %v", imp)
	}
}
