package mltree

import (
	"fmt"
	"strings"
)

// ClassifyProb returns the training-set probability of the positive
// class at the leaf the attribute vector reaches — the standard way to
// get a ranking score out of a decision tree. Laplace smoothing
// ((pos+1)/(n+2)) keeps pure leaves off the 0/1 extremes so scores
// remain comparable across leaf sizes.
func (t *Tree) ClassifyProb(attrs []float64) float64 {
	n := t.Root
	for !n.Leaf {
		if attrs[n.Attr] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	pos := n.N - n.Errors
	if !n.Pred {
		pos = n.Errors
	}
	return (float64(pos) + 1) / (float64(n.N) + 2)
}

// DOT renders the tree in Graphviz dot format for visualization.
func (t *Tree) DOT(name string) string {
	var sb strings.Builder
	if name == "" {
		name = "tree"
	}
	fmt.Fprintf(&sb, "digraph %q {\n", name)
	sb.WriteString("  node [shape=box, fontname=\"Helvetica\"];\n")
	id := 0
	var walk func(n *Node) int
	walk = func(n *Node) int {
		me := id
		id++
		if n.Leaf {
			label := "no"
			if n.Pred {
				label = "yes"
			}
			fmt.Fprintf(&sb, "  n%d [label=\"%s\\n(%d/%d)\", style=filled, fillcolor=%q];\n",
				me, label, n.N, n.Errors, leafColor(n.Pred))
			return me
		}
		fmt.Fprintf(&sb, "  n%d [label=\"%s <= %g\"];\n", me, t.AttrNames[n.Attr], n.Threshold)
		l := walk(n.Left)
		r := walk(n.Right)
		fmt.Fprintf(&sb, "  n%d -> n%d [label=\"true\"];\n", me, l)
		fmt.Fprintf(&sb, "  n%d -> n%d [label=\"false\"];\n", me, r)
		return me
	}
	walk(t.Root)
	sb.WriteString("}\n")
	return sb.String()
}

func leafColor(pred bool) string {
	if pred {
		return "#c8e6c9"
	}
	return "#ffcdd2"
}

// FeatureImportance returns, per attribute index, the total training
// instances routed through splits on that attribute, normalized to sum
// to 1 — a simple split-frequency importance measure.
func (t *Tree) FeatureImportance() []float64 {
	imp := make([]float64, len(t.AttrNames))
	total := 0.0
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil || n.Leaf {
			return
		}
		imp[n.Attr] += float64(n.N)
		total += float64(n.N)
		walk(n.Left)
		walk(n.Right)
	}
	walk(t.Root)
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}
