package stats

import (
	"errors"
	"math"
)

// PowerLawFit is the result of a maximum-likelihood power-law fit
// P(x) ∝ x^-Alpha for x >= XMin.
type PowerLawFit struct {
	Alpha float64 // estimated exponent
	XMin  float64 // lower cutoff used for the fit
	N     int     // samples at or above XMin
	// StdErr is the asymptotic standard error of Alpha,
	// (Alpha-1)/sqrt(N) for the continuous MLE.
	StdErr float64
}

// FitPowerLaw estimates the tail exponent of xs for the given xmin using
// the continuous maximum-likelihood estimator of Clauset, Shalizi &
// Newman: alpha = 1 + n / Σ ln(x_i/xmin). Samples below xmin are
// ignored. It returns an error if xmin <= 0 or fewer than two samples
// reach the tail.
func FitPowerLaw(xs []float64, xmin float64) (PowerLawFit, error) {
	if xmin <= 0 {
		return PowerLawFit{}, errors.New("stats: FitPowerLaw requires xmin > 0")
	}
	var sumLog float64
	n := 0
	for _, x := range xs {
		if x >= xmin {
			sumLog += math.Log(x / xmin)
			n++
		}
	}
	if n < 2 || sumLog == 0 {
		return PowerLawFit{}, errors.New("stats: FitPowerLaw needs >= 2 tail samples")
	}
	alpha := 1 + float64(n)/sumLog
	return PowerLawFit{
		Alpha:  alpha,
		XMin:   xmin,
		N:      n,
		StdErr: (alpha - 1) / math.Sqrt(float64(n)),
	}, nil
}

// FitPowerLawAuto scans candidate xmin values (the distinct sample
// values) and returns the fit minimizing the Kolmogorov–Smirnov distance
// between the empirical tail and the fitted power law, the standard
// xmin-selection heuristic. To bound the work it examines at most 50
// log-spaced candidates.
func FitPowerLawAuto(xs []float64) (PowerLawFit, error) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if math.IsInf(lo, 1) || lo == hi {
		return PowerLawFit{}, ErrEmpty
	}
	best := PowerLawFit{}
	bestKS := math.Inf(1)
	found := false
	const candidates = 50
	for i := 0; i < candidates; i++ {
		frac := float64(i) / float64(candidates)
		xmin := lo * math.Pow(hi/lo/2, frac) // scan lower half of range
		fit, err := FitPowerLaw(xs, xmin)
		if err != nil || fit.N < 10 {
			continue
		}
		ks := powerLawKS(xs, fit)
		if ks < bestKS {
			bestKS = ks
			best = fit
			found = true
		}
	}
	if !found {
		return PowerLawFit{}, errors.New("stats: FitPowerLawAuto found no viable xmin")
	}
	return best, nil
}

// powerLawKS returns the KS distance between the empirical distribution
// of tail samples and the fitted continuous power law.
func powerLawKS(xs []float64, fit PowerLawFit) float64 {
	var tail []float64
	for _, x := range xs {
		if x >= fit.XMin {
			tail = append(tail, x)
		}
	}
	values, probs := CCDF(tail)
	maxD := 0.0
	for i, v := range values {
		model := math.Pow(v/fit.XMin, 1-fit.Alpha) // P(X >= v)
		if d := math.Abs(probs[i] - model); d > maxD {
			maxD = d
		}
	}
	return maxD
}

// LinearRegression fits y = Slope*x + Intercept by least squares and
// reports R². It returns an error on mismatched lengths or n < 2, and
// NaN slope if x has zero variance.
func LinearRegression(xs, ys []float64) (slope, intercept, r2 float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, 0, errors.New("stats: LinearRegression length mismatch")
	}
	if len(xs) < 2 {
		return 0, 0, 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 {
		return math.NaN(), math.NaN(), 0, nil
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	if syy == 0 {
		return slope, intercept, 1, nil
	}
	r2 = sxy * sxy / (sxx * syy)
	return slope, intercept, r2, nil
}
