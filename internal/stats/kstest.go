package stats

import (
	"math"
	"sort"
)

// KSStatistic returns the two-sample Kolmogorov–Smirnov statistic: the
// maximum absolute difference between the empirical CDFs of xs and ys.
// It returns NaN when either sample is empty.
func KSStatistic(xs, ys []float64) float64 {
	if len(xs) == 0 || len(ys) == 0 {
		return math.NaN()
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)
	na, nb := float64(len(a)), float64(len(b))
	i, j := 0, 0
	maxD := 0.0
	for i < len(a) && j < len(b) {
		var v float64
		if a[i] <= b[j] {
			v = a[i]
		} else {
			v = b[j]
		}
		for i < len(a) && a[i] <= v {
			i++
		}
		for j < len(b) && b[j] <= v {
			j++
		}
		if d := math.Abs(float64(i)/na - float64(j)/nb); d > maxD {
			maxD = d
		}
	}
	return maxD
}

// KSPValue approximates the p-value of the two-sample KS statistic via
// the asymptotic Kolmogorov distribution Q(λ) = 2 Σ (-1)^(k-1)
// exp(-2k²λ²); adequate for sample sizes in the dozens and above.
func KSPValue(d float64, nx, ny int) float64 {
	if nx == 0 || ny == 0 || math.IsNaN(d) {
		return math.NaN()
	}
	if d <= 0 {
		return 1
	}
	ne := float64(nx) * float64(ny) / float64(nx+ny)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	sum := 0.0
	for k := 1; k <= 100; k++ {
		term := 2 * math.Pow(-1, float64(k-1)) * math.Exp(-2*float64(k*k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
	}
	if sum < 0 {
		return 0
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// SameDistribution reports whether the two samples are consistent with
// a common distribution at the given significance level (e.g. 0.05).
func SameDistribution(xs, ys []float64, alpha float64) bool {
	p := KSPValue(KSStatistic(xs, ys), len(xs), len(ys))
	if math.IsNaN(p) {
		return false
	}
	return p > alpha
}
