package stats

import (
	"errors"
	"math"
	"sort"
)

// Histogram is a binned count of samples. Bins are half-open [Lo, Hi)
// except the final bin, which is closed on the right so that Max lands
// in-range.
type Histogram struct {
	Bins []Bin
}

// Bin is one histogram bucket.
type Bin struct {
	Lo, Hi float64
	Count  int
}

// NewHistogram bins xs into nbins equal-width bins spanning [lo, hi].
// Samples outside the range are clamped into the edge bins. It returns
// an error if nbins <= 0 or hi <= lo.
func NewHistogram(xs []float64, lo, hi float64, nbins int) (*Histogram, error) {
	if nbins <= 0 {
		return nil, errors.New("stats: NewHistogram requires nbins > 0")
	}
	if hi <= lo {
		return nil, errors.New("stats: NewHistogram requires hi > lo")
	}
	h := &Histogram{Bins: make([]Bin, nbins)}
	width := (hi - lo) / float64(nbins)
	for i := range h.Bins {
		h.Bins[i].Lo = lo + float64(i)*width
		h.Bins[i].Hi = lo + float64(i+1)*width
	}
	h.Bins[nbins-1].Hi = hi
	for _, x := range xs {
		idx := int((x - lo) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= nbins {
			idx = nbins - 1
		}
		h.Bins[idx].Count++
	}
	return h, nil
}

// AutoHistogram bins xs into nbins bins spanning the sample range. It
// returns an error for an empty sample, nbins <= 0, or a degenerate
// (constant) sample.
func AutoHistogram(xs []float64, nbins int) (*Histogram, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	lo, hi := Min(xs), Max(xs)
	if lo == hi {
		hi = lo + 1
	}
	return NewHistogram(xs, lo, hi, nbins)
}

// Total returns the total number of binned samples.
func (h *Histogram) Total() int {
	n := 0
	for _, b := range h.Bins {
		n += b.Count
	}
	return n
}

// MaxCount returns the count of the fullest bin.
func (h *Histogram) MaxCount() int {
	m := 0
	for _, b := range h.Bins {
		if b.Count > m {
			m = b.Count
		}
	}
	return m
}

// FractionBelow returns the fraction of binned samples that fall in bins
// entirely below x. Useful for statements like "20% of stories received
// fewer than 500 votes".
func (h *Histogram) FractionBelow(x float64) float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	below := 0
	for _, b := range h.Bins {
		if b.Hi <= x {
			below += b.Count
		}
	}
	return float64(below) / float64(total)
}

// LogHistogram bins positive samples into logarithmically spaced bins,
// the standard presentation for heavy-tailed count data (paper Fig 2b).
type LogHistogram struct {
	Bins []Bin
	// Dropped counts samples <= 0 that cannot be log-binned.
	Dropped int
}

// NewLogHistogram bins xs into binsPerDecade log-spaced bins covering
// the positive sample range. Non-positive samples are counted in
// Dropped. It returns an error if binsPerDecade <= 0 or no positive
// samples exist.
func NewLogHistogram(xs []float64, binsPerDecade int) (*LogHistogram, error) {
	if binsPerDecade <= 0 {
		return nil, errors.New("stats: NewLogHistogram requires binsPerDecade > 0")
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	dropped := 0
	for _, x := range xs {
		if x <= 0 {
			dropped++
			continue
		}
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if math.IsInf(lo, 1) {
		return nil, ErrEmpty
	}
	logLo := math.Floor(math.Log10(lo) * float64(binsPerDecade))
	logHi := math.Ceil(math.Log10(hi)*float64(binsPerDecade)) + 1
	n := int(logHi - logLo)
	if n < 1 {
		n = 1
	}
	h := &LogHistogram{Bins: make([]Bin, n), Dropped: dropped}
	for i := range h.Bins {
		h.Bins[i].Lo = math.Pow(10, (logLo+float64(i))/float64(binsPerDecade))
		h.Bins[i].Hi = math.Pow(10, (logLo+float64(i+1))/float64(binsPerDecade))
	}
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		idx := int(math.Log10(x)*float64(binsPerDecade) - logLo)
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		h.Bins[idx].Count++
	}
	return h, nil
}

// Densities returns per-bin counts normalized by bin width, which is the
// quantity to plot on log-log axes for heavy-tailed data.
func (h *LogHistogram) Densities() []float64 {
	out := make([]float64, len(h.Bins))
	for i, b := range h.Bins {
		if w := b.Hi - b.Lo; w > 0 {
			out[i] = float64(b.Count) / w
		}
	}
	return out
}

// CCDF returns the empirical complementary CDF of xs as parallel slices
// (values ascending, P(X >= value)). Duplicate values are collapsed.
func CCDF(xs []float64) (values, probs []float64) {
	if len(xs) == 0 {
		return nil, nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	for i := 0; i < len(sorted); {
		j := i
		for j+1 < len(sorted) && sorted[j+1] == sorted[i] {
			j++
		}
		values = append(values, sorted[i])
		probs = append(probs, float64(len(sorted)-i)/n)
		i = j + 1
	}
	return values, probs
}

// CountHistogram counts occurrences of each integer value, the natural
// representation for "number of users making x votes" style data.
func CountHistogram(xs []int) map[int]int {
	out := make(map[int]int)
	for _, x := range xs {
		out[x]++
	}
	return out
}
