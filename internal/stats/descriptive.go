// Package stats implements the statistical primitives the reproduction
// needs: descriptive statistics, quantiles, linear and logarithmic
// histograms, CCDFs, a maximum-likelihood power-law exponent estimator,
// correlation coefficients, bootstrap confidence intervals and
// classifier confusion metrics.
//
// The package is deliberately self-contained (stdlib only) because the
// Go ecosystem's statistics support is thin and the experiments must be
// reproducible offline.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by estimators that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Sum returns the sum of xs; 0 for an empty slice.
func Sum(xs []float64) float64 {
	// Kahan summation keeps long experiment logs accurate.
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Mean returns the arithmetic mean of xs; NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance; NaN if len < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation; NaN if len < 2.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element; NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element; NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the sample median; NaN for an empty slice.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-th sample quantile (0 <= q <= 1) using linear
// interpolation between order statistics (type-7, the R default). It
// returns NaN for an empty slice and clamps q into [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary bundles the descriptive statistics reported throughout the
// experiment harness.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Q25    float64
	Median float64
	Q75    float64
	Max    float64
}

// Summarize computes a Summary of xs. For an empty input every field of
// the result other than N is NaN.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Q25:    Quantile(xs, 0.25),
		Median: Median(xs),
		Q75:    Quantile(xs, 0.75),
		Max:    Max(xs),
	}
}

// Pearson returns the Pearson correlation coefficient of the paired
// samples. It returns an error if the lengths differ or fewer than two
// pairs are given; it returns NaN if either side has zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: Pearson length mismatch")
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN(), nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns the Spearman rank correlation of the paired samples,
// with average ranks for ties.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: Spearman length mismatch")
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns the 1-based average ranks of xs (ties share the mean of
// the ranks they span).
func Ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, len(xs))
	i := 0
	for i < len(idx) {
		j := i
		for j+1 < len(idx) && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Bootstrap computes a percentile bootstrap confidence interval for the
// statistic f over xs using the provided resampler (a function that
// returns a uniform int in [0, n)). It returns (lo, hi) bounds of the
// central conf interval (e.g. conf = 0.95) from rounds resamples.
func Bootstrap(xs []float64, rounds int, conf float64, intn func(int) int, f func([]float64) float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	if rounds <= 0 {
		return 0, 0, errors.New("stats: Bootstrap requires rounds > 0")
	}
	if conf <= 0 || conf >= 1 {
		return 0, 0, errors.New("stats: Bootstrap requires 0 < conf < 1")
	}
	estimates := make([]float64, rounds)
	resample := make([]float64, len(xs))
	for r := 0; r < rounds; r++ {
		for i := range resample {
			resample[i] = xs[intn(len(xs))]
		}
		estimates[r] = f(resample)
	}
	alpha := (1 - conf) / 2
	return Quantile(estimates, alpha), Quantile(estimates, 1-alpha), nil
}
