package stats

import "fmt"

// Confusion is a binary-classification confusion matrix using the
// paper's TP/TN/FP/FN notation.
type Confusion struct {
	TP, TN, FP, FN int
}

// Add records one prediction against its true label.
func (c *Confusion) Add(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TP++
	case predicted && !actual:
		c.FP++
	case !predicted && actual:
		c.FN++
	default:
		c.TN++
	}
}

// Total returns the number of recorded examples.
func (c Confusion) Total() int { return c.TP + c.TN + c.FP + c.FN }

// Correct returns the number of correctly classified examples.
func (c Confusion) Correct() int { return c.TP + c.TN }

// Accuracy returns (TP+TN)/total, or 0 for an empty matrix.
func (c Confusion) Accuracy() float64 {
	if t := c.Total(); t > 0 {
		return float64(c.Correct()) / float64(t)
	}
	return 0
}

// Precision returns TP/(TP+FP), or 0 when no positives were predicted.
func (c Confusion) Precision() float64 {
	if d := c.TP + c.FP; d > 0 {
		return float64(c.TP) / float64(d)
	}
	return 0
}

// Recall returns TP/(TP+FN), or 0 when no positives exist.
func (c Confusion) Recall() float64 {
	if d := c.TP + c.FN; d > 0 {
		return float64(c.TP) / float64(d)
	}
	return 0
}

// F1 returns the harmonic mean of precision and recall, or 0 when both
// are zero.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Merge returns the element-wise sum of two confusion matrices, used to
// pool cross-validation folds.
func (c Confusion) Merge(o Confusion) Confusion {
	return Confusion{TP: c.TP + o.TP, TN: c.TN + o.TN, FP: c.FP + o.FP, FN: c.FN + o.FN}
}

// String renders the matrix in the paper's notation.
func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d TN=%d FP=%d FN=%d (acc=%.3f prec=%.3f rec=%.3f)",
		c.TP, c.TN, c.FP, c.FN, c.Accuracy(), c.Precision(), c.Recall())
}
