package stats

import (
	"math"
	"sort"
)

// ROCPoint is one operating point on a receiver operating
// characteristic curve.
type ROCPoint struct {
	Threshold float64
	TPR       float64 // true-positive rate (recall)
	FPR       float64 // false-positive rate
}

// ROC computes the ROC curve of scores against boolean labels, sweeping
// the decision threshold over every distinct score (predict positive
// when score >= threshold). Points are ordered by increasing FPR. It
// returns nil when either class is absent.
func ROC(scores []float64, labels []bool) []ROCPoint {
	if len(scores) != len(labels) || len(scores) == 0 {
		return nil
	}
	pos, neg := 0, 0
	for _, l := range labels {
		if l {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return nil
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	var out []ROCPoint
	tp, fp := 0, 0
	for i := 0; i < len(idx); {
		// Consume ties together so every point is a valid threshold.
		s := scores[idx[i]]
		for i < len(idx) && scores[idx[i]] == s {
			if labels[idx[i]] {
				tp++
			} else {
				fp++
			}
			i++
		}
		out = append(out, ROCPoint{
			Threshold: s,
			TPR:       float64(tp) / float64(pos),
			FPR:       float64(fp) / float64(neg),
		})
	}
	return out
}

// AUC returns the area under the ROC curve via the trapezoid rule over
// the curve from (0,0) to (1,1), or NaN when the curve is undefined.
func AUC(scores []float64, labels []bool) float64 {
	curve := ROC(scores, labels)
	if curve == nil {
		return math.NaN()
	}
	area := 0.0
	prevFPR, prevTPR := 0.0, 0.0
	for _, p := range curve {
		area += (p.FPR - prevFPR) * (p.TPR + prevTPR) / 2
		prevFPR, prevTPR = p.FPR, p.TPR
	}
	area += (1 - prevFPR) * (1 + prevTPR) / 2
	return area
}
