package stats

import (
	"math"
	"testing"

	"diggsim/internal/rng"
)

func TestROCPerfectClassifier(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	curve := ROC(scores, labels)
	if curve == nil {
		t.Fatal("nil curve")
	}
	// First point: highest threshold captures one TP, zero FP.
	if curve[0].TPR != 0.5 || curve[0].FPR != 0 {
		t.Errorf("first point = %+v", curve[0])
	}
	if auc := AUC(scores, labels); !almostEq(auc, 1, 1e-12) {
		t.Errorf("perfect AUC = %v", auc)
	}
}

func TestROCAntiClassifier(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []bool{true, true, false, false}
	if auc := AUC(scores, labels); !almostEq(auc, 0, 1e-12) {
		t.Errorf("inverted AUC = %v", auc)
	}
}

func TestROCRandomScoresNearHalf(t *testing.T) {
	r := rng.New(1)
	n := 5000
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = r.Float64()
		labels[i] = r.Bool(0.4)
	}
	if auc := AUC(scores, labels); math.Abs(auc-0.5) > 0.03 {
		t.Errorf("random AUC = %v want ~0.5", auc)
	}
}

func TestROCTiesGroupedTogether(t *testing.T) {
	// All scores identical: a single operating point at (1,1); AUC 0.5.
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []bool{true, false, true, false}
	curve := ROC(scores, labels)
	if len(curve) != 1 || curve[0].TPR != 1 || curve[0].FPR != 1 {
		t.Errorf("tied curve = %+v", curve)
	}
	if auc := AUC(scores, labels); !almostEq(auc, 0.5, 1e-12) {
		t.Errorf("tied AUC = %v", auc)
	}
}

func TestROCDegenerate(t *testing.T) {
	if ROC(nil, nil) != nil {
		t.Error("empty input produced a curve")
	}
	if ROC([]float64{1}, []bool{true, false}) != nil {
		t.Error("length mismatch produced a curve")
	}
	if ROC([]float64{1, 2}, []bool{true, true}) != nil {
		t.Error("single-class input produced a curve")
	}
	if !math.IsNaN(AUC([]float64{1, 2}, []bool{false, false})) {
		t.Error("single-class AUC not NaN")
	}
}

func TestROCMonotone(t *testing.T) {
	r := rng.New(2)
	n := 500
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = r.Float64()
		labels[i] = r.Bool(0.5)
	}
	curve := ROC(scores, labels)
	for i := 1; i < len(curve); i++ {
		if curve[i].FPR < curve[i-1].FPR || curve[i].TPR < curve[i-1].TPR {
			t.Fatal("ROC curve not monotone")
		}
	}
	last := curve[len(curve)-1]
	if last.TPR != 1 || last.FPR != 1 {
		t.Errorf("curve does not end at (1,1): %+v", last)
	}
}

func TestAUCOrderingInvariance(t *testing.T) {
	// AUC must not depend on input order.
	scores := []float64{0.3, 0.9, 0.5, 0.1, 0.7}
	labels := []bool{false, true, true, false, true}
	want := AUC(scores, labels)
	perm := []int{4, 2, 0, 3, 1}
	ps := make([]float64, len(perm))
	pl := make([]bool, len(perm))
	for i, j := range perm {
		ps[i], pl[i] = scores[j], labels[j]
	}
	if got := AUC(ps, pl); !almostEq(got, want, 1e-12) {
		t.Errorf("AUC changed under permutation: %v vs %v", got, want)
	}
}
