package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"diggsim/internal/rng"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestSumKahan(t *testing.T) {
	xs := make([]float64, 0, 10000)
	for i := 0; i < 10000; i++ {
		xs = append(xs, 0.1)
	}
	if got := Sum(xs); !almostEq(got, 1000, 1e-9) {
		t.Errorf("Sum = %v want 1000", got)
	}
	if Sum(nil) != 0 {
		t.Error("Sum(nil) != 0")
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almostEq(got, 5, 1e-12) {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance(xs); !almostEq(got, 32.0/7, 1e-12) {
		t.Errorf("Variance = %v", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance([]float64{1})) {
		t.Error("degenerate inputs should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("empty Min/Max should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v want %v", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{42}, 0.7); got != 42 {
		t.Errorf("single-sample quantile = %v", got)
	}
	if got := Quantile(xs, -1); got != 1 {
		t.Errorf("clamped low quantile = %v", got)
	}
	if got := Quantile(xs, 2); got != 5 {
		t.Errorf("clamped high quantile = %v", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Quantile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Errorf("Quantile mutated input: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Median != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("Summary = %+v", s)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil || !almostEq(r, 1, 1e-12) {
		t.Errorf("perfect corr = %v, %v", r, err)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if !almostEq(r, -1, 1e-12) {
		t.Errorf("perfect anticorr = %v", r)
	}
	if _, err := Pearson(xs, xs[:2]); err == nil {
		t.Error("length mismatch not detected")
	}
	r, err = Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil || !math.IsNaN(r) {
		t.Errorf("zero variance should give NaN, got %v", r)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 4, 9, 16, 25} // monotone but nonlinear
	r, err := Spearman(xs, ys)
	if err != nil || !almostEq(r, 1, 1e-12) {
		t.Errorf("Spearman = %v, %v", r, err)
	}
}

func TestRanksTies(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v want %v", got, want)
		}
	}
}

func TestBootstrapCoversMean(t *testing.T) {
	r := rng.New(1)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.NormFloat64() + 10
	}
	lo, hi, err := Bootstrap(xs, 500, 0.95, r.Intn, Mean)
	if err != nil {
		t.Fatal(err)
	}
	if lo > 10 || hi < 10 {
		t.Errorf("bootstrap CI [%v, %v] misses true mean 10", lo, hi)
	}
	if hi <= lo {
		t.Errorf("degenerate CI [%v, %v]", lo, hi)
	}
}

func TestBootstrapErrors(t *testing.T) {
	r := rng.New(2)
	if _, _, err := Bootstrap(nil, 10, 0.9, r.Intn, Mean); err == nil {
		t.Error("empty sample accepted")
	}
	if _, _, err := Bootstrap([]float64{1}, 0, 0.9, r.Intn, Mean); err == nil {
		t.Error("zero rounds accepted")
	}
	if _, _, err := Bootstrap([]float64{1}, 10, 1.5, r.Intn, Mean); err == nil {
		t.Error("bad conf accepted")
	}
}

func TestNewHistogram(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 9.99, 10}
	h, err := NewHistogram(xs, 0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Bins) != 5 {
		t.Fatalf("bins = %d", len(h.Bins))
	}
	if h.Total() != len(xs) {
		t.Errorf("Total = %d want %d", h.Total(), len(xs))
	}
	// Final bin is closed: both 9.99 and 10 land there.
	if h.Bins[4].Count != 2 {
		t.Errorf("last bin = %d want 2", h.Bins[4].Count)
	}
	if h.Bins[0].Count != 2 { // 0 and 1
		t.Errorf("first bin = %d want 2", h.Bins[0].Count)
	}
}

func TestHistogramClampsOutliers(t *testing.T) {
	h, err := NewHistogram([]float64{-5, 15}, 0, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.Bins[0].Count != 1 || h.Bins[1].Count != 1 {
		t.Errorf("outliers not clamped: %+v", h.Bins)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil, 0, 10, 0); err == nil {
		t.Error("nbins=0 accepted")
	}
	if _, err := NewHistogram(nil, 10, 10, 5); err == nil {
		t.Error("hi==lo accepted")
	}
}

func TestAutoHistogram(t *testing.T) {
	h, err := AutoHistogram([]float64{1, 2, 3}, 3)
	if err != nil || h.Total() != 3 {
		t.Fatalf("AutoHistogram: %v %v", h, err)
	}
	if _, err := AutoHistogram(nil, 3); err == nil {
		t.Error("empty accepted")
	}
	// Constant sample must not error.
	if _, err := AutoHistogram([]float64{5, 5, 5}, 2); err != nil {
		t.Errorf("constant sample rejected: %v", err)
	}
}

func TestFractionBelow(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i * 10) // 0..990
	}
	h, _ := NewHistogram(xs, 0, 1000, 100)
	if got := h.FractionBelow(500); !almostEq(got, 0.5, 1e-12) {
		t.Errorf("FractionBelow(500) = %v", got)
	}
}

func TestLogHistogram(t *testing.T) {
	xs := []float64{1, 2, 5, 10, 20, 100, 1000, 0, -3}
	h, err := NewLogHistogram(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.Dropped != 2 {
		t.Errorf("Dropped = %d want 2", h.Dropped)
	}
	total := 0
	for _, b := range h.Bins {
		if b.Hi <= b.Lo {
			t.Errorf("bad bin bounds %+v", b)
		}
		total += b.Count
	}
	if total != 7 {
		t.Errorf("binned %d want 7", total)
	}
	for _, d := range h.Densities() {
		if d < 0 {
			t.Error("negative density")
		}
	}
}

func TestLogHistogramErrors(t *testing.T) {
	if _, err := NewLogHistogram([]float64{1}, 0); err == nil {
		t.Error("binsPerDecade=0 accepted")
	}
	if _, err := NewLogHistogram([]float64{0, -1}, 2); err == nil {
		t.Error("no positive samples accepted")
	}
}

func TestCCDF(t *testing.T) {
	values, probs := CCDF([]float64{1, 1, 2, 4})
	wantV := []float64{1, 2, 4}
	wantP := []float64{1, 0.5, 0.25}
	if len(values) != 3 {
		t.Fatalf("values = %v", values)
	}
	for i := range wantV {
		if values[i] != wantV[i] || !almostEq(probs[i], wantP[i], 1e-12) {
			t.Errorf("CCDF = %v %v", values, probs)
		}
	}
	if v, p := CCDF(nil); v != nil || p != nil {
		t.Error("empty CCDF should be nil")
	}
}

func TestCCDFMonotone(t *testing.T) {
	r := rng.New(3)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.Pareto(1, 1.5)
	}
	values, probs := CCDF(xs)
	if !sort.Float64sAreSorted(values) {
		t.Error("CCDF values not sorted")
	}
	for i := 1; i < len(probs); i++ {
		if probs[i] > probs[i-1] {
			t.Fatal("CCDF probs not non-increasing")
		}
	}
}

func TestCountHistogram(t *testing.T) {
	h := CountHistogram([]int{1, 1, 2, 5, 5, 5})
	if h[1] != 2 || h[2] != 1 || h[5] != 3 {
		t.Errorf("CountHistogram = %v", h)
	}
}

func TestFitPowerLawRecoversExponent(t *testing.T) {
	r := rng.New(4)
	const alpha = 2.5
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = r.Pareto(1, alpha-1) // Pareto tail exp a ⇒ density exp a+1
	}
	fit, err := FitPowerLaw(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-alpha) > 0.05 {
		t.Errorf("Alpha = %v want ~%v", fit.Alpha, alpha)
	}
	if fit.N != len(xs) {
		t.Errorf("N = %d", fit.N)
	}
	if fit.StdErr <= 0 || fit.StdErr > 0.1 {
		t.Errorf("StdErr = %v", fit.StdErr)
	}
}

func TestFitPowerLawErrors(t *testing.T) {
	if _, err := FitPowerLaw([]float64{1, 2}, 0); err == nil {
		t.Error("xmin=0 accepted")
	}
	if _, err := FitPowerLaw([]float64{0.5}, 1); err == nil {
		t.Error("empty tail accepted")
	}
}

func TestFitPowerLawAuto(t *testing.T) {
	r := rng.New(5)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = r.Pareto(1, 1.5)
	}
	fit, err := FitPowerLawAuto(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-2.5) > 0.2 {
		t.Errorf("auto Alpha = %v want ~2.5", fit.Alpha)
	}
	if _, err := FitPowerLawAuto([]float64{1, 1, 1}); err == nil {
		t.Error("degenerate sample accepted")
	}
}

func TestLinearRegression(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	slope, intercept, r2, err := LinearRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(slope, 2, 1e-12) || !almostEq(intercept, 1, 1e-12) || !almostEq(r2, 1, 1e-12) {
		t.Errorf("fit = %v %v %v", slope, intercept, r2)
	}
	if _, _, _, err := LinearRegression(xs, ys[:2]); err == nil {
		t.Error("length mismatch accepted")
	}
	s, _, _, _ := LinearRegression([]float64{1, 1}, []float64{2, 3})
	if !math.IsNaN(s) {
		t.Errorf("zero-variance x slope = %v", s)
	}
}

func TestConfusion(t *testing.T) {
	var c Confusion
	c.Add(true, true)   // TP
	c.Add(true, false)  // FP
	c.Add(false, true)  // FN
	c.Add(false, false) // TN
	c.Add(true, true)   // TP
	if c.TP != 2 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if c.Total() != 5 || c.Correct() != 3 {
		t.Errorf("Total/Correct = %d/%d", c.Total(), c.Correct())
	}
	if !almostEq(c.Accuracy(), 0.6, 1e-12) {
		t.Errorf("Accuracy = %v", c.Accuracy())
	}
	if !almostEq(c.Precision(), 2.0/3, 1e-12) {
		t.Errorf("Precision = %v", c.Precision())
	}
	if !almostEq(c.Recall(), 2.0/3, 1e-12) {
		t.Errorf("Recall = %v", c.Recall())
	}
	if !almostEq(c.F1(), 2.0/3, 1e-12) {
		t.Errorf("F1 = %v", c.F1())
	}
}

func TestConfusionDegenerate(t *testing.T) {
	var c Confusion
	if c.Accuracy() != 0 || c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Error("empty confusion metrics should be 0")
	}
}

func TestConfusionMerge(t *testing.T) {
	a := Confusion{TP: 1, TN: 2, FP: 3, FN: 4}
	b := Confusion{TP: 10, TN: 20, FP: 30, FN: 40}
	m := a.Merge(b)
	if m.TP != 11 || m.TN != 22 || m.FP != 33 || m.FN != 44 {
		t.Errorf("Merge = %+v", m)
	}
}

func TestConfusionString(t *testing.T) {
	c := Confusion{TP: 4, TN: 32, FP: 11, FN: 1}
	s := c.String()
	if s == "" {
		t.Error("empty String")
	}
}

func TestQuickQuantileWithinRange(t *testing.T) {
	f := func(raw []float64, qRaw uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q := float64(qRaw) / 255
		got := Quantile(xs, q)
		return got >= Min(xs) && got <= Max(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickHistogramConservesMass(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		h, err := NewHistogram(xs, -1000, 1000, 7)
		if err != nil {
			return false
		}
		return h.Total() == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickCCDFStartsAtOne(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		_, probs := CCDF(xs)
		return almostEq(probs[0], 1, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
