package stats

import (
	"math"
	"testing"

	"diggsim/internal/rng"
)

func TestKSStatisticIdentical(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if d := KSStatistic(xs, xs); d != 0 {
		t.Errorf("identical samples D = %v", d)
	}
}

func TestKSStatisticDisjoint(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{10, 11, 12}
	if d := KSStatistic(xs, ys); d != 1 {
		t.Errorf("disjoint samples D = %v want 1", d)
	}
}

func TestKSStatisticKnownValue(t *testing.T) {
	// xs = {1,2}, ys = {1.5, 2.5}: CDFs cross with max gap 0.5 at 1<=v<1.5
	// and again between 2 and 2.5.
	xs := []float64{1, 2}
	ys := []float64{1.5, 2.5}
	if d := KSStatistic(xs, ys); !almostEq(d, 0.5, 1e-12) {
		t.Errorf("D = %v want 0.5", d)
	}
}

func TestKSStatisticEmpty(t *testing.T) {
	if !math.IsNaN(KSStatistic(nil, []float64{1})) {
		t.Error("empty sample should give NaN")
	}
}

func TestKSSameDistribution(t *testing.T) {
	r := rng.New(1)
	xs := make([]float64, 500)
	ys := make([]float64, 500)
	for i := range xs {
		xs[i] = r.NormFloat64()
		ys[i] = r.NormFloat64()
	}
	if !SameDistribution(xs, ys, 0.01) {
		t.Error("same-distribution samples rejected at alpha=0.01")
	}
	// Shifted distribution should be rejected.
	for i := range ys {
		ys[i] += 1.0
	}
	if SameDistribution(xs, ys, 0.05) {
		t.Error("shifted distribution accepted")
	}
}

func TestKSPValueBounds(t *testing.T) {
	for _, d := range []float64{0, 0.1, 0.5, 1} {
		p := KSPValue(d, 100, 100)
		if p < 0 || p > 1 {
			t.Errorf("p(%v) = %v out of [0,1]", d, p)
		}
	}
	if p := KSPValue(0, 50, 50); p != 1 {
		t.Errorf("p(0) = %v want 1", p)
	}
	if p := KSPValue(1, 100, 100); p > 1e-6 {
		t.Errorf("p(1) = %v want ~0", p)
	}
	if !math.IsNaN(KSPValue(0.5, 0, 10)) {
		t.Error("empty-sample p-value not NaN")
	}
}

func TestKSPValueMonotone(t *testing.T) {
	prev := 1.1
	for d := 0.0; d <= 1.0; d += 0.05 {
		p := KSPValue(d, 200, 200)
		if p > prev+1e-12 {
			t.Fatalf("p-value not non-increasing at D=%v", d)
		}
		prev = p
	}
}

func TestKSUniformVsPareto(t *testing.T) {
	r := rng.New(2)
	unif := make([]float64, 300)
	pareto := make([]float64, 300)
	for i := range unif {
		unif[i] = r.Float64() * 10
		pareto[i] = r.Pareto(1, 1.5)
	}
	if SameDistribution(unif, pareto, 0.05) {
		t.Error("uniform and Pareto samples judged identical")
	}
}
