package httpapi

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestLoggingMiddleware(t *testing.T) {
	var buf bytes.Buffer
	h := LoggingMiddleware(&buf, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/brew")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	line := buf.String()
	if !strings.Contains(line, "GET /brew 418") {
		t.Errorf("log line = %q", line)
	}
}

func TestLoggingMiddlewareDefaultStatus(t *testing.T) {
	var buf bytes.Buffer
	h := LoggingMiddleware(&buf, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok")) // implicit 200
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(buf.String(), " 200 ") {
		t.Errorf("log line = %q", buf.String())
	}
}

func TestRateLimiterBurst(t *testing.T) {
	now := time.Unix(0, 0)
	l := NewRateLimiter(1, 3)
	l.now = func() time.Time { return now }
	for i := 0; i < 3; i++ {
		if !l.Allow() {
			t.Fatalf("burst request %d denied", i)
		}
	}
	if l.Allow() {
		t.Fatal("4th request within burst allowed")
	}
	// One second later: one token refilled.
	now = now.Add(time.Second)
	if !l.Allow() {
		t.Fatal("refilled token denied")
	}
	if l.Allow() {
		t.Fatal("over-refill")
	}
	// Refill caps at capacity.
	now = now.Add(time.Hour)
	for i := 0; i < 3; i++ {
		if !l.Allow() {
			t.Fatalf("post-idle request %d denied", i)
		}
	}
	if l.Allow() {
		t.Fatal("capacity cap violated")
	}
}

func TestRateLimiterDefaults(t *testing.T) {
	l := NewRateLimiter(0, 0)
	if !l.Allow() {
		t.Fatal("defaulted limiter denied first request")
	}
}

func TestRateLimitMiddleware429(t *testing.T) {
	l := NewRateLimiter(0.001, 1) // effectively one request
	h := l.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp1, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp1.Body.Close()
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first request status %d", resp1.StatusCode)
	}
	resp2, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request status %d want 429", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Error("missing Retry-After header")
	}
}

// TestRateLimitTrustLoopback checks the -trust-loopback exemption:
// loopback clients bypass the limiter entirely while remote addresses
// stay limited.
func TestRateLimitTrustLoopback(t *testing.T) {
	l := NewRateLimiter(0.001, 1) // effectively one request
	l.TrustLoopback()
	h := l.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	// httptest connects over 127.0.0.1, so every request is exempt.
	ts := httptest.NewServer(h)
	defer ts.Close()
	for i := 0; i < 5; i++ {
		resp, err := http.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("loopback request %d status %d", i, resp.StatusCode)
		}
	}
	// A non-loopback RemoteAddr still consumes tokens and gets 429'd.
	for i, want := range []int{http.StatusOK, http.StatusTooManyRequests} {
		req := httptest.NewRequest(http.MethodGet, "/", nil)
		req.RemoteAddr = "203.0.113.9:4242"
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != want {
			t.Fatalf("remote request %d status %d, want %d", i, rec.Code, want)
		}
	}
}

func TestClientRetriesOn429(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			writeError(w, http.StatusTooManyRequests, "slow down")
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	c.Backoff = time.Millisecond
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("client did not ride out 429s: %v", err)
	}
	if calls.Load() != 3 {
		t.Errorf("calls = %d", calls.Load())
	}
}

func TestStoryListPagination(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := c.Submit(ctx, SubmitRequest{Submitter: 0, Title: "t", At: int64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	// First cursor page.
	page, err := c.StoriesAt(ctx, "", 2)
	if err != nil {
		t.Fatal(err)
	}
	if page.Total != 5 || len(page.Stories) != 2 || page.NextCursor == "" {
		t.Fatalf("page = %+v", page)
	}
	if page.Stories[0].ID != 0 || page.Stories[1].ID != 1 {
		t.Errorf("page order = %+v", page.Stories)
	}
	// Follow the cursor to the middle page.
	page, err = c.StoriesAt(ctx, page.NextCursor, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Stories) != 2 || page.Stories[0].ID != 2 {
		t.Errorf("second page = %+v", page.Stories)
	}
	// Final page exhausts the cursor.
	page, err = c.StoriesAt(ctx, page.NextCursor, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Stories) != 1 || page.Stories[0].ID != 4 || page.NextCursor != "" {
		t.Errorf("final page = %+v", page)
	}
	// The iterator sees every story exactly once.
	var ids []int
	for page, err := range c.Stories(ctx, 2) {
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range page.Stories {
			ids = append(ids, int(s.ID))
		}
	}
	if len(ids) != 5 {
		t.Fatalf("iterator saw %d stories: %v", len(ids), ids)
	}
	for i, id := range ids {
		if id != i {
			t.Fatalf("iterator order = %v", ids)
		}
	}
	// Legacy alias still rejects negative offsets.
	resp, err := http.Get(c.BaseURL + "/api/stories?offset=-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative offset status = %d", resp.StatusCode)
	}
}

func TestServerWithMiddlewareStack(t *testing.T) {
	// The full production stack: rate limit over logging over the API.
	srv, _, _ := newTestServer(t)
	var buf bytes.Buffer
	limiter := NewRateLimiter(1000, 1000)
	stack := limiter.Middleware(LoggingMiddleware(&buf, srv.Handler()))
	ts := httptest.NewServer(stack)
	defer ts.Close()
	c := NewClient(ts.URL)
	c.Backoff = time.Millisecond
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "GET /healthz 200") {
		t.Errorf("stacked log = %q", buf.String())
	}
}
