package httpapi

// repl_test.go runs the HTTP API over a replication follower: the
// full read surface against replicated state, write fencing with the
// v1 read_only_replica envelope, the X-Replica-Lag header, /readyz
// gating, promotion over HTTP, and a cursor crawl that spans a
// follower kill/restart without duplicating or skipping a story.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"diggsim/internal/apiv1"
	"diggsim/internal/digg"
	"diggsim/internal/durable"
	"diggsim/internal/graph"
	"diggsim/internal/repl"
	"diggsim/internal/wal"
)

func replTestOpts() durable.Options {
	return durable.Options{
		Policy:          &digg.ClassicPromotion{VoteThreshold: 3, Window: digg.Day},
		Sync:            wal.SyncOS,
		CheckpointEvery: -1,
	}
}

// replHarness is a primary durable store serving replication, plus a
// follower running the HTTP API behind a stable front URL. The front
// handler is swappable so a test can kill and restart the follower
// while clients keep hitting the same address (as behind an LB).
type replHarness struct {
	t        *testing.T
	fdir     string
	primary  *durable.Store
	replSrc  *repl.Source
	replTS   *httptest.Server
	node     *repl.Node
	follower *repl.Follower
	srv      *Server
	handler  atomic.Value // http.Handler
	apiTS    *httptest.Server
}

func newReplHarness(t *testing.T, stories int, maxLag time.Duration) *replHarness {
	t.Helper()
	g, err := graph.FromEdgeList(50, [][2]graph.NodeID{{1, 0}, {2, 0}, {3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	p := digg.NewPlatform(g, &digg.ClassicPromotion{VoteThreshold: 3, Window: digg.Day})
	for i := 0; i < stories; i++ {
		st, err := p.Submit(digg.UserID(i%50), fmt.Sprintf("story-%d", i), 0.5, digg.Minutes(i+1))
		if err != nil {
			t.Fatal(err)
		}
		if i%5 == 0 {
			_, _ = p.Digg(st.ID, digg.UserID((i+7)%50), digg.Minutes(i+2))
			_, _ = p.Digg(st.ID, digg.UserID((i+13)%50), digg.Minutes(i+3))
		}
	}

	h := &replHarness{t: t, fdir: t.TempDir()}
	h.primary, err = durable.Create(t.TempDir(), p, []byte(`{"api":"repl-test"}`), replTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.primary.Close() })

	h.replSrc = &repl.Source{
		Shards:    []repl.SourceShard{{Dir: h.primary.Dir(), Head: h.primary.AppliedLSN, LastCommit: h.primary.LastCommit}},
		Heartbeat: 5 * time.Millisecond,
		Poll:      time.Millisecond,
	}
	mux := http.NewServeMux()
	mux.Handle("/repl/v1/", http.StripPrefix("/repl/v1", h.replSrc.Handler()))
	h.replTS = httptest.NewServer(mux)
	t.Cleanup(h.replTS.Close)
	t.Cleanup(h.replSrc.Close)

	h.startFollower(maxLag)
	h.apiTS = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.handler.Load().(http.Handler).ServeHTTP(w, r)
	}))
	t.Cleanup(h.apiTS.Close)
	t.Cleanup(func() {
		h.follower.Stop()
		h.node.Close()
	})
	return h
}

// startFollower (re)bootstraps the follower from h.fdir and publishes
// a fresh API server for it on the front handler.
func (h *replHarness) startFollower(maxLag time.Duration) {
	h.t.Helper()
	tr := &repl.HTTPTransport{Base: h.replTS.URL}
	node, err := repl.Bootstrap(context.Background(), tr, h.fdir, replTestOpts())
	if err != nil {
		h.t.Fatal(err)
	}
	f := repl.NewFollower(node.Target, tr, repl.Options{
		BackoffMin: 5 * time.Millisecond,
		BackoffMax: 50 * time.Millisecond,
		StateDir:   h.fdir,
		Primary:    h.replTS.URL,
	})
	f.Start()
	h.node, h.follower = node, f

	srv := NewServer(node.Store(), digg.Minutes(1<<20), nil)
	srv.AttachRepl(f, maxLag)
	h.srv = srv
	h.handler.Store(srv.Handler())
}

// killFollower stops the follower process; the front URL answers 503
// (a load balancer with no healthy backend) until restart.
func (h *replHarness) killFollower() {
	h.t.Helper()
	h.handler.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	h.follower.Stop()
	if err := h.node.Close(); err != nil {
		h.t.Fatal(err)
	}
}

// waitCaughtUp blocks until the follower applied the primary's head.
func (h *replHarness) waitCaughtUp() {
	h.t.Helper()
	head := h.primary.AppliedLSN()
	deadline := time.Now().Add(20 * time.Second)
	for h.node.Target.AppliedLSN(0) < head {
		if time.Now().After(deadline) {
			h.t.Fatalf("follower never caught up: applied %d, want %d (err: %v)",
				h.node.Target.AppliedLSN(0), head, h.follower.Err())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func (h *replHarness) client() *Client {
	c := NewClient(h.apiTS.URL)
	c.Backoff = time.Millisecond
	return c
}

func TestFollowerServesReads(t *testing.T) {
	h := newReplHarness(t, 30, 0)
	h.waitCaughtUp()
	c := h.client()
	ctx := context.Background()

	// The full story listing crawls cleanly off the follower.
	var ids []digg.StoryID
	for page, err := range c.Stories(ctx, 7) {
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range page.Stories {
			ids = append(ids, st.ID)
		}
	}
	if len(ids) != h.primary.NumStories() {
		t.Fatalf("crawled %d stories, primary has %d", len(ids), h.primary.NumStories())
	}

	// Detail reads match the primary byte-for-byte where it counts.
	want, err := h.primary.Story(0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Story(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Title != want.Title || got.Votes != want.VoteCount() {
		t.Fatalf("story 0 = %+v, want title %q votes %d", got, want.Title, want.VoteCount())
	}

	// Reads carry the replica-lag header; a healthy stream reports a
	// small numeric lag.
	resp, err := http.Get(h.apiTS.URL + "/v1/frontpage?limit=5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	lag := resp.Header.Get("X-Replica-Lag")
	if lag == "" {
		t.Fatal("follower read missing X-Replica-Lag header")
	}
	if lag != "inf" {
		secs, err := strconv.ParseFloat(lag, 64)
		if err != nil || secs < 0 || secs > 60 {
			t.Fatalf("X-Replica-Lag = %q", lag)
		}
	}

	// /v1/stats reports the follower role and per-shard positions.
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Repl == nil || stats.Repl.Role != "follower" || len(stats.Repl.Shards) != 1 {
		t.Fatalf("stats repl = %+v", stats.Repl)
	}
	if stats.Repl.Shards[0].AppliedLSN < h.primary.AppliedLSN() {
		t.Fatalf("stats applied LSN %d behind primary %d",
			stats.Repl.Shards[0].AppliedLSN, h.primary.AppliedLSN())
	}

	// /metrics exposes the replication gauges.
	resp, err = http.Get(h.apiTS.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, metric := range []string{"diggsim_repl_applied_lsn", "diggsim_repl_shipped_lsn"} {
		if !strings.Contains(string(body), metric) {
			t.Errorf("/metrics missing %s", metric)
		}
	}
}

func TestFollowerFencesWrites(t *testing.T) {
	h := newReplHarness(t, 10, 0)
	h.waitCaughtUp()
	c := h.client()
	ctx := context.Background()

	wantFenced := func(err error) {
		t.Helper()
		var apiErr *apiv1.Error
		if !asAPIError(err, &apiErr) {
			t.Fatalf("fenced write error = %v, want *apiv1.Error", err)
		}
		if apiErr.StatusCode != http.StatusServiceUnavailable || apiErr.Code != apiv1.CodeReadOnlyReplica {
			t.Fatalf("fenced write = status %d code %q", apiErr.StatusCode, apiErr.Code)
		}
	}

	_, err := c.Submit(ctx, SubmitRequest{Submitter: 0, Title: "x", At: 999})
	wantFenced(err)
	_, err = c.Digg(ctx, 0, DiggRequest{Voter: 9, At: 999})
	wantFenced(err)
	_, err = c.DiggBatch(ctx, apiv1.BatchDiggRequest{
		Diggs: []apiv1.BatchDiggItem{{Story: 0, Voter: 9, At: 999}},
	})
	wantFenced(err)
	_, err = c.SubmitBatch(ctx, apiv1.BatchSubmitRequest{
		Stories: []apiv1.SubmitRequest{{Submitter: 0, Title: "x", At: 999}},
	})
	wantFenced(err)

	// Legacy write endpoints fence too, in the legacy envelope.
	for _, ep := range []string{"/api/stories", "/api/stories/0/digg"} {
		resp, err := http.Post(h.apiTS.URL+ep, "application/json", strings.NewReader(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		var legacy ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&legacy); err != nil {
			t.Fatalf("POST %s: decoding body: %v", ep, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable || legacy.Error == "" {
			t.Fatalf("POST %s = %d %q", ep, resp.StatusCode, legacy.Error)
		}
	}

	// Nothing leaked through the fence.
	h.srv.mu.RLock()
	n := h.node.Store().NumStories()
	h.srv.mu.RUnlock()
	if n != h.primary.NumStories() {
		t.Fatalf("follower has %d stories after fenced writes, want %d", n, h.primary.NumStories())
	}
}

func TestFollowerReadyzAndPromotion(t *testing.T) {
	h := newReplHarness(t, 10, 75*time.Millisecond)
	h.waitCaughtUp()
	c := h.client()
	ctx := context.Background()

	getStatus := func(path string) int {
		t.Helper()
		resp, err := http.Get(h.apiTS.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	// Healthy stream: live and ready.
	if got := getStatus("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz = %d", got)
	}
	waitReady := func(want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if got := getStatus("/readyz"); got == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("readyz never reached %d (last: %d)", want, getStatus("/readyz"))
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitReady(http.StatusOK)

	// The primary dies: heartbeats stop, staleness grows past the
	// 75ms bound, and the follower drops out of rotation — while
	// still serving reads (stale is better than down).
	h.replSrc.Close()
	h.replTS.Close()
	waitReady(http.StatusServiceUnavailable)
	if got := getStatus("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz during primary outage = %d (liveness must not flap)", got)
	}
	if _, err := c.FrontPage(ctx, 5); err != nil {
		t.Fatalf("reads must survive the primary outage: %v", err)
	}

	// Failover: promotion lifts the fence, restores readiness, and
	// the ex-follower takes writes over HTTP.
	if err := h.follower.Promote(); err != nil {
		t.Fatal(err)
	}
	waitReady(http.StatusOK)
	st, err := c.Submit(ctx, SubmitRequest{Submitter: 3, Title: "first-post-failover", At: 2000})
	if err != nil {
		t.Fatalf("write after promotion: %v", err)
	}
	got, err := c.Story(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Title != "first-post-failover" {
		t.Fatalf("post-failover story = %+v", got)
	}
	// The lag header disappears with the fence.
	resp, err := http.Get(h.apiTS.URL + "/v1/frontpage?limit=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if lag := resp.Header.Get("X-Replica-Lag"); lag != "" {
		t.Fatalf("promoted node still advertises X-Replica-Lag %q", lag)
	}
}

func TestCursorCrawlSpansFollowerRestart(t *testing.T) {
	const stories = 120
	h := newReplHarness(t, stories, 0)
	h.waitCaughtUp()

	// Generous GET retries: the crawl must ride out the 503 window
	// while the follower restarts behind the front URL.
	c := NewClientWith(h.apiTS.URL, ClientOptions{
		MaxRetries: 30,
		Backoff:    2 * time.Millisecond,
		MaxBackoff: 50 * time.Millisecond,
	})

	ctx := context.Background()
	var ids []digg.StoryID
	cursor := apiv1.Cursor("")
	page := 0
	for {
		pg, err := c.StoriesAt(ctx, cursor, 10)
		if err != nil {
			t.Fatalf("page %d: %v", page, err)
		}
		for _, st := range pg.Stories {
			ids = append(ids, st.ID)
		}
		page++
		if page == 4 {
			// Kill the follower mid-crawl and restart it in the
			// background; the client sees 503s until the replacement
			// finishes bootstrapping from the primary.
			h.killFollower()
			done := make(chan struct{})
			go func() {
				defer close(done)
				h.startFollower(0)
				h.waitCaughtUp()
				h.handler.Store(h.srv.Handler())
			}()
			defer func() { <-done }()
		}
		if cursor = pg.NextCursor; cursor == "" {
			break
		}
	}

	if len(ids) != stories {
		t.Fatalf("crawl returned %d stories, want %d", len(ids), stories)
	}
	seen := make(map[digg.StoryID]bool, len(ids))
	for i, id := range ids {
		if seen[id] {
			t.Fatalf("story %d duplicated in the crawl", id)
		}
		seen[id] = true
		if int(id) != i {
			t.Fatalf("crawl out of order at index %d: story %d", i, id)
		}
	}
}
