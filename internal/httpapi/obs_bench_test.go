package httpapi

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"diggsim/internal/obs"
)

// TestFrontPageHandlerZeroAlloc is the CI-enforceable form of the
// acceptance bar BenchmarkFrontPageHandler reports: the instrumented
// snapshot read path — router, timed() wrapper, handler — must stay
// allocation-free. A regression here means per-request garbage crept
// into the hot path (the instrumentation budget is two monotonic
// clock reads and two atomic adds, nothing heap-bound).
func TestFrontPageHandlerZeroAlloc(t *testing.T) {
	p := benchPlatform(t)
	srv := NewServer(p, 400, nil)
	h := srv.Handler()
	req := httptest.NewRequest(http.MethodGet, "/api/frontpage?limit=15", nil)
	w := &benchWriter{h: make(http.Header, 4)}
	h.ServeHTTP(w, req) // warm caches and lazy snapshot state
	allocs := testing.AllocsPerRun(200, func() {
		w.reset()
		h.ServeHTTP(w, req)
		if w.status != http.StatusOK {
			t.Fatalf("status %d", w.status)
		}
	})
	if allocs != 0 {
		t.Errorf("front-page read path: %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkMixedWorkload drives the scraper read mix and a concurrent
// batch-digg writer through one handler, recording every request's
// latency into private obs histograms, and reports the interpolated
// read and write p50/p99 alongside the usual ns/op. This is the
// distribution-aware benchmark cmd/benchjson records into
// BENCH_obs.json: a mean hides exactly the tail the observability
// layer exists to expose (on one core, a read that lands behind the
// writer's lock hold is an order of magnitude slower than the median).
//
// b.N counts read requests; the writer paces itself at ~1ms per
// 100-vote batch, matching BenchmarkServedReadsWhileLive's contention
// profile.
func BenchmarkMixedWorkload(b *testing.B) {
	p := benchPlatform(b)
	srv := NewServer(p, 400, nil)
	h := srv.Handler()

	var readHist, writeHist obs.Histogram

	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		w := &benchWriter{h: make(http.Header, 4)}
		var body []byte
		vote := 0
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
			}
			body = append(body[:0], `{"diggs":[`...)
			for k := 0; k < 100; k++ {
				if k > 0 {
					body = append(body, ',')
				}
				body = append(body, `{"story":`...)
				body = strconv.AppendInt(body, int64(vote%300), 10)
				body = append(body, `,"voter":`...)
				body = strconv.AppendInt(body, int64(vote%2000), 10)
				body = append(body, `,"at":500}`...)
				vote++
			}
			body = append(body, `]}`...)
			req := httptest.NewRequest(http.MethodPost, "/v1/diggs:batch", strings.NewReader(string(body)))
			w.reset()
			start := obs.Now()
			h.ServeHTTP(w, req)
			writeHist.Observe(time.Duration(obs.Now() - start))
			if w.status != http.StatusOK {
				b.Errorf("batch write: status %d", w.status)
				return
			}
		}
	}()

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		reqs := make([]*http.Request, len(readMix))
		for i, path := range readMix {
			reqs[i] = httptest.NewRequest(http.MethodGet, path, nil)
		}
		w := &benchWriter{h: make(http.Header, 4)}
		i := 0
		for pb.Next() {
			w.reset()
			start := obs.Now()
			h.ServeHTTP(w, reqs[i%len(reqs)])
			readHist.Observe(time.Duration(obs.Now() - start))
			if w.status != http.StatusOK {
				b.Fatalf("status %d for %s", w.status, readMix[i%len(reqs)])
			}
			i++
		}
	})
	b.StopTimer()
	close(stop)
	<-writerDone

	reads := readHist.Snapshot()
	writes := writeHist.Snapshot()
	b.ReportMetric(reads.Quantile(0.50), "read-p50-ns")
	b.ReportMetric(reads.Quantile(0.99), "read-p99-ns")
	if writes.Count() > 0 {
		b.ReportMetric(writes.Quantile(0.50), "write-p50-ns")
		b.ReportMetric(writes.Quantile(0.99), "write-p99-ns")
		b.ReportMetric(float64(writes.Count()*100)/b.Elapsed().Seconds(), "votes/sec")
	}
}
