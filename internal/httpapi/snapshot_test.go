package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"diggsim/internal/digg"
	"diggsim/internal/graph"
	"diggsim/internal/live"
	"diggsim/internal/rng"
)

// TestManualEncodersMatchEncodingJSON pins the hand-rolled snapshot
// encoders to the reflection-based wire format of the types.go
// structs, including string escaping and the promoted_at omitempty.
func TestManualEncodersMatchEncodingJSON(t *testing.T) {
	stories := []*digg.Story{
		{ID: 0, Title: "plain", Submitter: 3, SubmittedAt: 17,
			Votes: []digg.Vote{{Voter: 3, At: 17}, {Voter: 9, At: 20}}},
		{ID: 1, Title: "quotes \" and \\ and\ttabs\nnewline\x01ctl", Submitter: 0, SubmittedAt: 0,
			Promoted: true, PromotedAt: 44,
			Votes: []digg.Vote{{Voter: 0, At: 0}}},
		{ID: 2, Title: "", Submitter: 1, SubmittedAt: 5, Promoted: true, PromotedAt: 0,
			Votes: []digg.Vote{{Voter: 1, At: 5}}},
	}
	for _, s := range stories {
		want, err := json.Marshal(summarize(s))
		if err != nil {
			t.Fatal(err)
		}
		if got := appendSummary(nil, s); string(got) != string(want) {
			t.Errorf("summary %d:\n got %s\nwant %s", s.ID, got, want)
		}
		want, err = json.Marshal(detail(s))
		if err != nil {
			t.Fatal(err)
		}
		if got := appendDetail(nil, s); string(got) != string(want) {
			t.Errorf("detail %d:\n got %s\nwant %s", s.ID, got, want)
		}
	}
}

func TestQueryIntRaw(t *testing.T) {
	cases := []struct {
		raw     string
		def     int
		want    int
		wantErr bool
	}{
		{"", 15, 15, false},
		{"limit=3", 15, 3, false},
		{"offset=9&limit=3", 15, 3, false},
		{"limit=3&limit=9", 15, 3, false},
		{"limit=-2", 15, -2, false},
		{"limit=zebra", 15, 0, true},
		{"limit=%31%35", 15, 15, false},
		{"limit=+5", 15, 0, true}, // '+' decodes to a space, like url.Values
		{"limit=", 15, 0, true},
		{"other=7", 15, 15, false},
		{"limit", 15, 15, false},
	}
	for _, c := range cases {
		got, err := queryIntRaw(c.raw, "limit", c.def)
		if (err != nil) != c.wantErr || (err == nil && got != c.want) {
			t.Errorf("queryIntRaw(%q) = %d, %v; want %d (err=%v)", c.raw, got, err, c.want, c.wantErr)
		}
	}
}

func TestEtagMatches(t *testing.T) {
	cases := []struct {
		header string
		want   bool
	}{
		{`"g7"`, true},
		{`W/"g7"`, true},
		{`"g8", "g7"`, true},
		{`"g8" , W/"g7"`, true},
		{`*`, true},
		{``, false},
		{`"g8"`, false},
		{`"g77"`, false},
	}
	for _, c := range cases {
		if got := etagMatches(c.header, `"g7"`); got != c.want {
			t.Errorf("etagMatches(%q) = %v want %v", c.header, got, c.want)
		}
	}
}

// TestConditionalGet exercises the scraper-politeness satellite: a
// crawl that presents the ETag it saw gets a body-free 304 until a
// write moves the platform generation.
func TestConditionalGet(t *testing.T) {
	_, ts, c := newTestServer(t)
	ctx := context.Background()
	if _, err := c.Submit(ctx, SubmitRequest{Submitter: 0, Title: "a", At: 10}); err != nil {
		t.Fatal(err)
	}

	get := func(path, inm string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	for _, path := range []string{"/api/frontpage?limit=10", "/api/upcoming?limit=10"} {
		resp := get(path, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		etag := resp.Header.Get("ETag")
		if etag == "" || !strings.HasPrefix(etag, `"g`) {
			t.Fatalf("%s: missing generation ETag, got %q", path, etag)
		}
		if cc := resp.Header.Get("Cache-Control"); cc != "no-cache" {
			t.Errorf("%s: Cache-Control = %q", path, cc)
		}
		body, _ := io.ReadAll(resp.Body)
		if len(body) == 0 {
			t.Fatalf("%s: empty body", path)
		}

		// Revalidation with the current ETag: 304, no body.
		resp = get(path, etag)
		if resp.StatusCode != http.StatusNotModified {
			t.Fatalf("%s: conditional status %d want 304", path, resp.StatusCode)
		}
		if b, _ := io.ReadAll(resp.Body); len(b) != 0 {
			t.Fatalf("%s: 304 carried a body: %q", path, b)
		}

		// A write moves the generation: same validator now misses.
		if _, err := c.Submit(ctx, SubmitRequest{Submitter: 1, Title: "more-" + path, At: 11}); err != nil {
			t.Fatal(err)
		}
		resp = get(path, etag)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: post-write conditional status %d want 200", path, resp.StatusCode)
		}
		if newTag := resp.Header.Get("ETag"); newTag == etag {
			t.Fatalf("%s: ETag did not change after write", path)
		}
	}
}

// TestUpcomingServeTimeFilter checks that the snapshot's upcoming
// queue respects the serving clock without republication: a
// future-dated story is hidden until the clock passes its submission
// time, with no intervening write.
func TestUpcomingServeTimeFilter(t *testing.T) {
	srv, _, c := newTestServer(t)
	ctx := context.Background()
	if _, err := c.Submit(ctx, SubmitRequest{Submitter: 0, Title: "now", At: 50}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(ctx, SubmitRequest{Submitter: 1, Title: "future", At: 500}); err != nil {
		t.Fatal(err)
	}
	up, err := c.Upcoming(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(up) != 1 || up[0].Title != "now" {
		t.Fatalf("upcoming at t=100 = %+v", up)
	}
	// Advance the clock only — no write, no republication.
	srv.SetNow(600)
	up, err = c.Upcoming(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(up) != 2 || up[0].Title != "future" {
		t.Fatalf("upcoming at t=600 = %+v", up)
	}
}

// TestSnapshotFallbackBeyondRenderDepth drives the queues past the
// pre-rendered snapshot depth and checks the locked fallback serves
// the rest, agreeing with the snapshot on the shared prefix.
func TestSnapshotFallbackBeyondRenderDepth(t *testing.T) {
	g, err := graph.FromEdgeList(10, [][2]graph.NodeID{{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	p := digg.NewPlatform(g, digg.NeverPromote{})
	const n = maxRenderQueue + 40
	for i := 0; i < n; i++ {
		st := &digg.Story{
			ID: digg.StoryID(i), Title: fmt.Sprintf("s%d", i), Submitter: digg.UserID(i % 10),
			SubmittedAt: digg.Minutes(i),
			Votes:       []digg.Vote{{Voter: digg.UserID(i % 10), At: digg.Minutes(i)}},
		}
		st.Promoted = i%2 == 0 // half promoted, half upcoming
		if st.Promoted {
			st.PromotedAt = digg.Minutes(i + 1)
		}
		if err := p.InstallStory(st); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewServer(p, digg.Minutes(n), nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	c.Backoff = time.Millisecond

	ctx := context.Background()
	// Within the render depth: snapshot path.
	short, err := c.FrontPage(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Beyond it: locked fallback returns everything.
	full, err := c.FrontPage(ctx, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(short) != 10 || len(full) != n/2 {
		t.Fatalf("front pages: short=%d full=%d want 10, %d", len(short), len(full), n/2)
	}
	if !reflect.DeepEqual(short, full[:10]) {
		t.Error("snapshot and locked front-page prefixes disagree")
	}
	upShort, err := c.Upcoming(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	upFull, err := c.Upcoming(ctx, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(upShort) != 10 || len(upFull) != n/2 {
		t.Fatalf("upcoming: short=%d full=%d want 10, %d", len(upShort), len(upFull), n/2)
	}
	if !reflect.DeepEqual(upShort, upFull[:10]) {
		t.Error("snapshot and locked upcoming prefixes disagree")
	}
}

// TestSnapshotConsistencyUnderLiveWrites is the torn-read regression
// test: while the live simulation writer continuously mutates the
// platform, every front page served must be byte-identical to some
// atomically published snapshot (identified by its generation ETag),
// and the generations observed by any single client must be
// monotonically non-decreasing. Run with -race this also checks the
// locking discipline of the publish path.
func TestSnapshotConsistencyUnderLiveWrites(t *testing.T) {
	g, err := graph.PreferentialAttachment(rng.New(7), 1500, 4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	p := digg.NewPlatform(g, &digg.ClassicPromotion{VoteThreshold: 12, Window: digg.Day})
	r := rng.New(8)
	for i := 0; i < 60; i++ {
		st, err := p.Submit(digg.UserID(r.Intn(1500)), fmt.Sprintf("seed-%d", i), 0.6, digg.Minutes(i))
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < 4+r.Intn(12); v++ {
			_, _ = p.Digg(st.ID, digg.UserID(r.Intn(1500)), digg.Minutes(i+v+1))
		}
	}
	svc, err := live.NewService(p, live.Config{Seed: 11, SubmissionsPerHour: 300, StartAt: 100})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(p, 100, nil)
	srv.AttachLive(svc)

	// Record every published front-page rendering by generation, before
	// serving starts.
	type published struct {
		buf  []byte
		ends []int
	}
	var pubMu sync.Mutex
	pubs := make(map[uint64]published)
	srv.snap.onPublish = func(v *ReadView) {
		pubMu.Lock()
		pubs[v.Gen] = published{buf: v.fpBuf, ends: v.fpEnds}
		pubMu.Unlock()
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		now := digg.Minutes(100)
		for {
			select {
			case <-stop:
				return
			default:
				now += 3
				if err := svc.StepTo(now); err != nil {
					t.Error(err)
					return
				}
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()

	const limit = 10
	render := func(p published) string {
		if len(p.ends) <= limit {
			return string(p.buf)
		}
		return string(p.buf[:p.ends[limit-1]]) + "]"
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	var etagged atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{}
			lastGen := uint64(0)
			for i := 0; i < 150; i++ {
				resp, err := client.Get(ts.URL + "/api/frontpage?limit=" + strconv.Itoa(limit))
				if err != nil {
					errs <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				etag := resp.Header.Get("ETag")
				if etag == "" {
					continue // locked fallback (front page outgrew the render depth)
				}
				gen, err := strconv.ParseUint(strings.Trim(etag, `"g`), 10, 64)
				if err != nil {
					errs <- fmt.Errorf("unparseable ETag %q", etag)
					return
				}
				if gen < lastGen {
					errs <- fmt.Errorf("generation went backwards: %d after %d", gen, lastGen)
					return
				}
				lastGen = gen
				pubMu.Lock()
				pub, ok := pubs[gen]
				pubMu.Unlock()
				if !ok {
					errs <- fmt.Errorf("served generation %d was never published", gen)
					return
				}
				if want := render(pub); string(body) != want {
					errs <- fmt.Errorf("torn read at generation %d:\n got %s\nwant %s", gen, body, want)
					return
				}
				etagged.Add(1)
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-writerDone
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if etagged.Load() == 0 {
		t.Fatal("no snapshot-served responses observed; stress test exercised nothing")
	}
	pubMu.Lock()
	generations := len(pubs)
	pubMu.Unlock()
	if generations < 2 {
		t.Fatalf("only %d generations published; writer did not evolve the site", generations)
	}
}
