package httpapi

// v1.go mounts the versioned /v1/* API surface: the apiv1 contract
// types, the machine-readable error envelope, cursor pagination on
// every list endpoint, and the batch write endpoints.
//
// Cursor serving strategy: every list cursor carries the platform
// generation it was minted at plus an endpoint-specific boundary key
// chosen to be stable under the live writer — the next story index for
// /v1/stories (submission order is append-only), the promotion-order
// index for /v1/frontpage (the promotion list is append-only), the
// last story id for /v1/upcoming (only older stories can follow), the
// rank index for /v1/topusers, and the link index for fans/friends
// (the graph is immutable). Pages are cut from the lock-free snapshot
// whenever it can satisfy them; pages that reach past the pre-rendered
// depth fall back to a locked point-in-time read built entirely under
// one RLock, so no page ever mixes two generations.

import (
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"diggsim/internal/apiv1"
	"diggsim/internal/digg"
	"diggsim/internal/obs"
)

// mountV1 registers the /v1 routes on mux, each timed under the same
// route class as its /api/* alias.
func (s *Server) mountV1(mux *http.ServeMux) {
	mux.HandleFunc("GET /v1/frontpage", timed("frontpage", s.handleV1FrontPage))
	mux.HandleFunc("GET /v1/upcoming", timed("upcoming", s.handleV1Upcoming))
	mux.HandleFunc("GET /v1/stories", timed("stories", s.handleV1Stories))
	mux.HandleFunc("GET /v1/stories/{id}", timed("story", s.handleV1Story))
	mux.HandleFunc("POST /v1/stories", timed("submit", s.handleV1Submit))
	mux.HandleFunc("POST /v1/stories/{id}/digg", timed("digg", s.handleV1Digg))
	mux.HandleFunc("POST /v1/diggs:batch", timed("batch_digg", s.handleV1BatchDigg))
	mux.HandleFunc("POST /v1/stories:batch", timed("batch_submit", s.handleV1BatchSubmit))
	mux.HandleFunc("GET /v1/users/{id}", timed("user", s.handleV1User))
	mux.HandleFunc("GET /v1/users/{id}/fans", timed("links", s.handleV1Fans))
	mux.HandleFunc("GET /v1/users/{id}/friends", timed("links", s.handleV1Friends))
	mux.HandleFunc("GET /v1/topusers", timed("topusers", s.handleV1TopUsers))
	mux.HandleFunc("GET /v1/stats", timed("stats", s.handleStats))
	if s.live != nil {
		mux.HandleFunc("GET /v1/stream", s.handleStream)
	}
}

// v1Err builds a v1 error value.
func v1Err(status int, code, msg string) *apiv1.Error {
	return &apiv1.Error{StatusCode: status, Code: code, Message: msg}
}

// v1ErrorFor maps a storage-layer error onto the stable v1 code set.
func v1ErrorFor(err error) *apiv1.Error {
	switch {
	case errors.Is(err, digg.ErrUnknownUser):
		return v1Err(http.StatusBadRequest, apiv1.CodeUnknownUser, err.Error())
	case errors.Is(err, digg.ErrAlreadyVoted):
		return v1Err(http.StatusConflict, apiv1.CodeAlreadyVoted, err.Error())
	case errors.Is(err, digg.ErrStoryCompacted):
		return v1Err(http.StatusGone, apiv1.CodeStoryGone, err.Error())
	case errors.Is(err, digg.ErrNoStory):
		return v1Err(http.StatusNotFound, apiv1.CodeNotFound, err.Error())
	default:
		return v1Err(http.StatusInternalServerError, apiv1.CodeInternal, err.Error())
	}
}

// writeV1Error sends the machine-readable error envelope, mirroring
// RetryAfter into the Retry-After header.
func writeV1Error(w http.ResponseWriter, e *apiv1.Error) {
	if e.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfter))
	}
	writeJSON(w, e.StatusCode, apiv1.ErrorEnvelope{Error: e})
}

// queryRaw extracts one query parameter from the raw query string
// without building a url.Values map.
func queryRaw(rawQuery, key string) (string, bool) {
	for len(rawQuery) > 0 {
		var seg string
		if i := strings.IndexByte(rawQuery, '&'); i >= 0 {
			seg, rawQuery = rawQuery[:i], rawQuery[i+1:]
		} else {
			seg, rawQuery = rawQuery, ""
		}
		if eq := strings.IndexByte(seg, '='); eq >= 0 && seg[:eq] == key {
			return seg[eq+1:], true
		}
	}
	return "", false
}

// v1Limit parses the limit query parameter: absent or zero means def,
// negative or unparsable (including overflow) is invalid_argument, and
// anything above apiv1.MaxPageSize clamps.
func v1Limit(rawQuery string, def int) (int, *apiv1.Error) {
	limit, err := queryIntRaw(rawQuery, "limit", def)
	if err != nil || limit < 0 {
		return 0, v1Err(http.StatusBadRequest, apiv1.CodeInvalidArgument,
			"limit must be a non-negative integer")
	}
	if limit == 0 {
		limit = def
	}
	if limit > apiv1.MaxPageSize {
		limit = apiv1.MaxPageSize
	}
	return limit, nil
}

// v1CursorPos decodes the optional cursor parameter for the given
// endpoint family, returning defPos when absent and invalid_cursor on
// any malformation or tampering. A cursor whose shard-generation
// vector disagrees in length with the serving store's shard layout is
// rejected too: list positions minted under one shard count are not
// meaningful under another. Link cursors are exempt — the social
// graph is immutable, so their positions are exact under any layout.
func (s *Server) v1CursorPos(rawQuery string, kind apiv1.CursorKind, defPos int64) (int64, bool, *apiv1.Error) {
	raw, ok := queryRaw(rawQuery, "cursor")
	if !ok || raw == "" {
		return defPos, false, nil
	}
	p, err := apiv1.Cursor(raw).Decode(kind)
	if err != nil {
		return 0, false, v1Err(http.StatusBadRequest, apiv1.CodeInvalidCursor,
			"cursor is malformed or was issued by a different endpoint")
	}
	if kind != apiv1.CursorLinks {
		want := 0
		if s.sharded != nil {
			want = s.sharded.ShardCount()
		}
		if len(p.ShardGens) != want {
			return 0, false, v1Err(http.StatusBadRequest, apiv1.CodeInvalidCursor,
				"cursor was issued under a different shard layout")
		}
	}
	return p.Pos, true, nil
}

// shardGensLocked snapshots the per-shard generation vector for
// cursor minting (nil against an unsharded store). Callers hold at
// least the store read lock.
func (s *Server) shardGensLocked() []uint64 {
	if s.sharded == nil {
		return nil
	}
	return s.sharded.ShardGenerations(nil)
}

func v1PathID(r *http.Request) (int, *apiv1.Error) {
	id, err := pathID(r)
	if err != nil {
		return 0, v1Err(http.StatusBadRequest, apiv1.CodeInvalidArgument, err.Error())
	}
	return id, nil
}

// appendPageTail closes a `{"<field>":[...` page object with its total
// and optional cursor. Cursors are base64url so they never need JSON
// escaping.
func appendPageTail(b []byte, total int, next apiv1.Cursor) []byte {
	b = append(b, `],"total":`...)
	b = strconv.AppendInt(b, int64(total), 10)
	if next != "" {
		b = append(b, `,"next_cursor":"`...)
		b = append(b, next...)
		b = append(b, '"')
	}
	return append(b, '}')
}

// segStart returns the byte offset where entry i starts inside a
// queue/top buffer rendered as "[e0,e1,...]" with ends[i] marking the
// offset just past entry i.
func segStart(ends []int, i int) int {
	if i == 0 {
		return 1
	}
	return ends[i-1] + 1
}

// --- stories ---

// handleV1Stories serves GET /v1/stories?cursor&limit: the full corpus
// in submission order. Submission order is append-only, so the cursor
// position (next story index) is exact across generations — a full
// crawl under the live writer sees every story that existed when it
// started, each exactly once.
func (s *Server) handleV1Stories(w http.ResponseWriter, r *http.Request) {
	limit, e := v1Limit(r.URL.RawQuery, 50)
	if e != nil {
		writeV1Error(w, e)
		return
	}
	pos, _, e := s.v1CursorPos(r.URL.RawQuery, apiv1.CursorStories, 0)
	if e != nil {
		writeV1Error(w, e)
		return
	}
	if pos < 0 {
		writeV1Error(w, v1Err(http.StatusBadRequest, apiv1.CodeInvalidCursor, "negative cursor position"))
		return
	}
	view := s.snap.view.Load()
	if view == nil {
		s.v1StoriesLocked(w, pos, limit)
		return
	}
	total := len(view.summaries)
	start := int(min64(pos, int64(total)))
	end := start + limit
	if end > total {
		end = total
	}
	var next apiv1.Cursor
	if end < total {
		next = apiv1.CursorPayload{
			Kind: apiv1.CursorStories, Gen: view.Gen,
			Pos: int64(end), Ver: uint64(view.storyVer[end-1]),
			ShardGens: view.ShardGens,
		}.Encode()
	}
	bp := encBufPool.Get().(*[]byte)
	b := append((*bp)[:0], `{"stories":[`...)
	for i := start; i < end; i++ {
		if i > start {
			b = append(b, ',')
		}
		b = append(b, view.summaries[i]...)
	}
	b = appendPageTail(b, total, next)
	writeRaw(w, b)
	*bp = b[:0]
	encBufPool.Put(bp)
}

// v1StoriesLocked serves a stories page entirely from one locked
// point-in-time read (startup, before the first publication).
func (s *Server) v1StoriesLocked(w http.ResponseWriter, pos int64, limit int) {
	s.mu.RLock()
	all := s.store.Stories()
	gen := s.store.Generation()
	gens := s.shardGensLocked()
	total := len(all)
	start := int(min64(pos, int64(total)))
	end := start + limit
	if end > total {
		end = total
	}
	page := apiv1.StoriesPage{Total: total, Stories: make([]StorySummary, 0, end-start)}
	for _, st := range all[start:end] {
		page.Stories = append(page.Stories, summarize(st))
	}
	var lastVer uint32
	if end > start {
		lastVer = s.store.StoryVersion(all[end-1].ID)
	}
	s.mu.RUnlock()
	if end < total {
		page.NextCursor = apiv1.CursorPayload{
			Kind: apiv1.CursorStories, Gen: gen, Pos: int64(end), Ver: uint64(lastVer),
			ShardGens: gens,
		}.Encode()
	}
	writeJSON(w, http.StatusOK, page)
}

// --- front page ---

// handleV1FrontPage serves GET /v1/frontpage?cursor&limit: promoted
// stories, newest promotion first. The cursor holds the promotion-
// order index of the next entry to serve; the promotion list is
// append-only, so the index names the same story forever and a crawl
// under the live writer never duplicates or skips an entry (newly
// promoted stories simply sort before the crawl's starting point).
func (s *Server) handleV1FrontPage(w http.ResponseWriter, r *http.Request) {
	limit, e := v1Limit(r.URL.RawQuery, 15)
	if e != nil {
		writeV1Error(w, e)
		return
	}
	// MaxInt64 is the "newest" sentinel: both serving paths clamp it to
	// their current promotion count, so the cursor is validated exactly
	// once regardless of which path answers.
	pos, fromCursor, e := s.v1CursorPos(r.URL.RawQuery, apiv1.CursorFrontPage, math.MaxInt64)
	if e != nil {
		writeV1Error(w, e)
		return
	}
	view := s.snap.view.Load()
	if view == nil {
		s.v1FrontPageLocked(w, pos, limit)
		return
	}
	total := view.fpTotal
	pos = min64(pos, int64(total)-1)
	if pos < 0 {
		s.writeV1EmptyStories(w, total)
		return
	}
	remaining := int(pos) + 1
	n := limit
	if n > remaining {
		n = remaining
	}
	// Entry index inside the view's newest-first rendering.
	i0 := total - 1 - int(pos)
	if i0+n > len(view.fpEnds) {
		s.v1FrontPageLocked(w, pos, limit)
		return
	}
	h := w.Header()
	if !fromCursor {
		// First pages are revalidatable: the whole response is a pure
		// function of the published generation.
		h["Etag"] = view.etag
		h["Cache-Control"] = headerRevalidate
		if etagMatches(r.Header.Get("If-None-Match"), view.etagStr) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	var next apiv1.Cursor
	if nextPos := pos - int64(n); nextPos >= 0 {
		next = apiv1.CursorPayload{
			Kind: apiv1.CursorFrontPage, Gen: view.Gen, Pos: nextPos,
			ShardGens: view.ShardGens,
		}.Encode()
	}
	bp := encBufPool.Get().(*[]byte)
	b := append((*bp)[:0], `{"stories":[`...)
	for i := i0; i < i0+n; i++ {
		if i > i0 {
			b = append(b, ',')
		}
		b = append(b, view.fpBuf[segStart(view.fpEnds, i):view.fpEnds[i]]...)
	}
	b = appendPageTail(b, total, next)
	writeRaw(w, b)
	*bp = b[:0]
	encBufPool.Put(bp)
}

// v1FrontPageLocked serves a front-page cursor page from a locked
// point-in-time read over the append-only promotion list. pos is the
// already-validated cursor position (MaxInt64 for "newest").
func (s *Server) v1FrontPageLocked(w http.ResponseWriter, pos int64, limit int) {
	s.mu.RLock()
	ids := s.store.PromotedIDs()
	gen := s.store.Generation()
	gens := s.shardGensLocked()
	total := len(ids)
	pos = min64(pos, int64(total)-1)
	if pos < 0 {
		s.mu.RUnlock()
		s.writeV1EmptyStories(w, total)
		return
	}
	n := limit
	if remaining := int(pos) + 1; n > remaining {
		n = remaining
	}
	page := apiv1.StoriesPage{Total: total, Stories: make([]StorySummary, 0, n)}
	for k := 0; k < n; k++ {
		st, err := s.store.Story(ids[int(pos)-k])
		if err != nil {
			continue // unreachable: promoted ids always resolve
		}
		page.Stories = append(page.Stories, summarize(st))
	}
	s.mu.RUnlock()
	if nextPos := pos - int64(n); nextPos >= 0 {
		page.NextCursor = apiv1.CursorPayload{
			Kind: apiv1.CursorFrontPage, Gen: gen, Pos: nextPos,
			ShardGens: gens,
		}.Encode()
	}
	writeJSON(w, http.StatusOK, page)
}

// writeV1EmptyStories emits an exhausted stories page.
func (s *Server) writeV1EmptyStories(w http.ResponseWriter, total int) {
	bp := encBufPool.Get().(*[]byte)
	b := append((*bp)[:0], `{"stories":[`...)
	b = appendPageTail(b, total, "")
	writeRaw(w, b)
	*bp = b[:0]
	encBufPool.Put(bp)
}

// --- upcoming ---

// handleV1Upcoming serves GET /v1/upcoming?cursor&limit: unpromoted
// stories visible at the serving clock, newest first. The cursor holds
// the story id of the last served entry; only strictly older stories
// follow, so a story promoted (removed from the queue) between pages
// shifts nothing and nothing is served twice. Total counts all
// unpromoted stories as of the serving generation, including ones not
// yet visible at the clock.
func (s *Server) handleV1Upcoming(w http.ResponseWriter, r *http.Request) {
	limit, e := v1Limit(r.URL.RawQuery, 15)
	if e != nil {
		writeV1Error(w, e)
		return
	}
	pos, fromCursor, e := s.v1CursorPos(r.URL.RawQuery, apiv1.CursorUpcoming, math.MaxInt64)
	if e != nil {
		writeV1Error(w, e)
		return
	}
	now := s.clock()
	view := s.snap.view.Load()
	if view == nil {
		s.v1UpcomingLocked(w, now, pos, limit)
		return
	}
	entries := view.upEntries
	// Collect up to limit+1 matching entries: the probe entry decides
	// whether a next cursor is due without a second scan.
	idx := make([]int, 0, limit+1)
	skipped := false
	for i := range entries {
		if entries[i].submittedAt > int64(now) {
			skipped = true
			continue
		}
		if int64(entries[i].id) >= pos {
			continue
		}
		idx = append(idx, i)
		if len(idx) > limit {
			break
		}
	}
	if len(idx) <= limit && len(entries) < view.upTotal {
		// The rendered window ran dry but deeper unpromoted stories
		// exist: serve the whole page from the locked path instead of
		// mixing sources.
		s.v1UpcomingLocked(w, now, pos, limit)
		return
	}
	n := len(idx)
	more := n > limit
	if more {
		n = limit
	}
	h := w.Header()
	if !fromCursor && !skipped {
		h["Etag"] = view.etag
		h["Cache-Control"] = headerRevalidate
		if etagMatches(r.Header.Get("If-None-Match"), view.etagStr) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	var next apiv1.Cursor
	if more {
		last := entries[idx[n-1]]
		next = apiv1.CursorPayload{
			Kind: apiv1.CursorUpcoming, Gen: view.Gen,
			Pos: int64(last.id), Ver: uint64(view.storyVer[last.id]),
			ShardGens: view.ShardGens,
		}.Encode()
	}
	bp := encBufPool.Get().(*[]byte)
	b := append((*bp)[:0], `{"stories":[`...)
	for k := 0; k < n; k++ {
		if k > 0 {
			b = append(b, ',')
		}
		e := entries[idx[k]]
		b = append(b, view.upBuf[e.start:e.end]...)
	}
	b = appendPageTail(b, view.upTotal, next)
	writeRaw(w, b)
	*bp = b[:0]
	encBufPool.Put(bp)
}

// v1UpcomingLocked serves an upcoming cursor page from one locked
// point-in-time scan.
func (s *Server) v1UpcomingLocked(w http.ResponseWriter, now digg.Minutes, pos int64, limit int) {
	s.mu.RLock()
	all := s.store.Stories()
	gen := s.store.Generation()
	gens := s.shardGensLocked()
	total := s.store.NumStories() - s.store.PromotedCount()
	out := make([]StorySummary, 0, limit)
	var lastVer uint32
	more := false
	for i := len(all) - 1; i >= 0; i-- {
		st := all[i]
		if int64(st.ID) >= pos || st.Promoted || st.SubmittedAt > now {
			continue
		}
		if len(out) == limit {
			more = true
			break
		}
		out = append(out, summarize(st))
		lastVer = s.store.StoryVersion(st.ID)
	}
	s.mu.RUnlock()
	page := apiv1.StoriesPage{Total: total, Stories: out}
	if more {
		page.NextCursor = apiv1.CursorPayload{
			Kind: apiv1.CursorUpcoming, Gen: gen,
			Pos: int64(out[len(out)-1].ID), Ver: uint64(lastVer),
			ShardGens: gens,
		}.Encode()
	}
	writeJSON(w, http.StatusOK, page)
}

// --- top users ---

// handleV1TopUsers serves GET /v1/topusers?cursor&limit: the
// reputation ranking, best first. The cursor is the next rank index —
// exact while the generation is unchanged; across promotions the
// ranking may shift, which is inherent to paginating a mutable
// leaderboard and documented in docs/api.md.
func (s *Server) handleV1TopUsers(w http.ResponseWriter, r *http.Request) {
	limit, e := v1Limit(r.URL.RawQuery, 100)
	if e != nil {
		writeV1Error(w, e)
		return
	}
	pos, _, e := s.v1CursorPos(r.URL.RawQuery, apiv1.CursorTopUsers, 0)
	if e != nil {
		writeV1Error(w, e)
		return
	}
	if pos < 0 {
		writeV1Error(w, v1Err(http.StatusBadRequest, apiv1.CodeInvalidCursor, "negative cursor position"))
		return
	}
	view := s.snap.view.Load()
	if view == nil {
		s.v1TopUsersLocked(w, pos, limit)
		return
	}
	total := view.topTotal
	start := int(min64(pos, int64(total)))
	end := start + limit
	if end > total {
		end = total
	}
	if end > len(view.topEnds) {
		s.v1TopUsersLocked(w, pos, limit)
		return
	}
	var next apiv1.Cursor
	if end < total {
		next = apiv1.CursorPayload{
			Kind: apiv1.CursorTopUsers, Gen: view.Gen, Pos: int64(end),
			ShardGens: view.ShardGens,
		}.Encode()
	}
	bp := encBufPool.Get().(*[]byte)
	b := append((*bp)[:0], `{"users":[`...)
	if end > start {
		b = append(b, view.topBuf[segStart(view.topEnds, start):view.topEnds[end-1]]...)
	}
	b = appendPageTail(b, total, next)
	writeRaw(w, b)
	*bp = b[:0]
	encBufPool.Put(bp)
}

func (s *Server) v1TopUsersLocked(w http.ResponseWriter, pos int64, limit int) {
	s.mu.RLock()
	total := len(s.store.Ranks())
	gen := s.store.Generation()
	gens := s.shardGensLocked()
	start := int(min64(pos, int64(total)))
	end := start + limit
	if end > total {
		end = total
	}
	users := s.store.TopUsers(end)
	s.mu.RUnlock()
	if start > len(users) {
		start = len(users)
	}
	page := apiv1.TopUsersPage{Total: total, Users: users[start:]}
	if end < total {
		page.NextCursor = apiv1.CursorPayload{
			Kind: apiv1.CursorTopUsers, Gen: gen, Pos: int64(end),
			ShardGens: gens,
		}.Encode()
	}
	writeJSON(w, http.StatusOK, page)
}

// --- users and links ---

func (s *Server) handleV1User(w http.ResponseWriter, r *http.Request) {
	id, e := v1PathID(r)
	if e != nil {
		writeV1Error(w, e)
		return
	}
	bp, buf, ok := s.userInfoBytes(digg.UserID(id))
	if !ok {
		writeV1Error(w, v1Err(http.StatusNotFound, apiv1.CodeNotFound, "no such user"))
		return
	}
	writeRaw(w, buf)
	*bp = buf[:0]
	encBufPool.Put(bp)
}

func (s *Server) handleV1Fans(w http.ResponseWriter, r *http.Request) {
	s.handleV1Links(w, r, true)
}

func (s *Server) handleV1Friends(w http.ResponseWriter, r *http.Request) {
	s.handleV1Links(w, r, false)
}

// handleV1Links serves GET /v1/users/{id}/fans|friends with cursor
// pagination over the immutable link list (the cursor is a plain
// index; the graph never changes, so it is exact forever).
func (s *Server) handleV1Links(w http.ResponseWriter, r *http.Request, fans bool) {
	id, e := v1PathID(r)
	if e != nil {
		writeV1Error(w, e)
		return
	}
	limit, e := v1Limit(r.URL.RawQuery, apiv1.MaxPageSize)
	if e != nil {
		writeV1Error(w, e)
		return
	}
	pos, _, e := s.v1CursorPos(r.URL.RawQuery, apiv1.CursorLinks, 0)
	if e != nil {
		writeV1Error(w, e)
		return
	}
	if pos < 0 {
		writeV1Error(w, v1Err(http.StatusBadRequest, apiv1.CodeInvalidCursor, "negative cursor position"))
		return
	}
	u := digg.UserID(id)
	links, ok := s.links(u, fans)
	if !ok {
		writeV1Error(w, v1Err(http.StatusNotFound, apiv1.CodeNotFound, "no such user"))
		return
	}
	total := len(links)
	start := int(min64(pos, int64(total)))
	end := start + limit
	if end > total {
		end = total
	}
	page := apiv1.UserLinksPage{ID: u, Total: total, Users: links[start:end]}
	if end < total {
		page.NextCursor = apiv1.CursorPayload{Kind: apiv1.CursorLinks, Pos: int64(end)}.Encode()
	}
	writeJSON(w, http.StatusOK, page)
}

// --- story detail and writes ---

func (s *Server) handleV1Story(w http.ResponseWriter, r *http.Request) {
	id, e := v1PathID(r)
	if e != nil {
		writeV1Error(w, e)
		return
	}
	buf, ok, err := s.storyDetailBytes(digg.StoryID(id))
	if err != nil {
		writeV1Error(w, v1Err(http.StatusNotFound, apiv1.CodeNotFound, err.Error()))
		return
	}
	if ok {
		writeRaw(w, buf)
		return
	}
	// No snapshot covers the story yet: locked point-in-time read.
	s.mu.RLock()
	st, err := s.store.Story(digg.StoryID(id))
	var out StoryDetail
	if err == nil {
		out = detail(st)
	}
	s.mu.RUnlock()
	if err != nil {
		writeV1Error(w, v1Err(http.StatusNotFound, apiv1.CodeNotFound, err.Error()))
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleV1Submit(w http.ResponseWriter, r *http.Request) {
	if s.fenceV1(w) {
		return
	}
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeV1Error(w, v1Err(http.StatusBadRequest, apiv1.CodeInvalidArgument, "invalid JSON: "+err.Error()))
		return
	}
	st, err := s.submit(req, requestTraceID(r))
	if err != nil {
		writeV1Error(w, v1ErrorFor(err))
		return
	}
	writeJSON(w, http.StatusCreated, st)
}

func (s *Server) handleV1Digg(w http.ResponseWriter, r *http.Request) {
	if s.fenceV1(w) {
		return
	}
	id, e := v1PathID(r)
	if e != nil {
		writeV1Error(w, e)
		return
	}
	var req DiggRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeV1Error(w, v1Err(http.StatusBadRequest, apiv1.CodeInvalidArgument, "invalid JSON: "+err.Error()))
		return
	}
	res, err := s.digg(digg.StoryID(id), req, requestTraceID(r))
	if err != nil {
		writeV1Error(w, v1ErrorFor(err))
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleV1BatchDigg serves POST /v1/diggs:batch: up to apiv1.MaxBatch
// votes applied in one write transaction — one lock acquisition and
// one snapshot republish for the whole batch, which is what lets
// agent-driven load sustain several times the single-digg write rate.
// Item failures are reported per item and do not abort the batch.
func (s *Server) handleV1BatchDigg(w http.ResponseWriter, r *http.Request) {
	if s.fenceV1(w) {
		return
	}
	start := obs.Now()
	ctx := r.Context()
	decodeSpan := obs.SpanFrom(ctx, "decode")
	var req apiv1.BatchDiggRequest
	err := json.NewDecoder(r.Body).Decode(&req)
	decodeSpan.End()
	if err != nil {
		writeV1Error(w, v1Err(http.StatusBadRequest, apiv1.CodeInvalidArgument, "invalid JSON: "+err.Error()))
		return
	}
	if len(req.Diggs) == 0 || len(req.Diggs) > apiv1.MaxBatch {
		writeV1Error(w, v1Err(http.StatusBadRequest, apiv1.CodeInvalidArgument,
			"batch must contain between 1 and "+strconv.Itoa(apiv1.MaxBatch)+" diggs"))
		return
	}
	now := s.clock()
	results := make([]apiv1.BatchDiggResult, len(req.Diggs))
	var werr error
	applySpan := obs.SpanFrom(ctx, "apply")
	if s.bulk != nil {
		// Sharded fast path: the store partitions the burst into
		// per-shard sub-batches and applies them concurrently, each with
		// its own WAL append + fsync, all overlapped. BulkWriter owns
		// the durability bracketing — no Batcher calls here.
		ops := make([]digg.DiggOp, len(req.Diggs))
		for i, d := range req.Diggs {
			at := digg.Minutes(d.At)
			if at == 0 {
				at = now
			}
			ops[i] = digg.DiggOp{Story: d.Story, User: d.Voter, At: at}
		}
		out := make([]digg.DiggOutcome, len(ops))
		s.mu.Lock()
		s.stampWriteTrace(requestTraceID(r))
		werr = s.bulk.DiggMany(ops, out)
		s.mu.Unlock()
		for i, o := range out {
			if o.Err != nil {
				results[i].Error = v1ErrorFor(o.Err)
				continue
			}
			results[i] = apiv1.BatchDiggResult{InNetwork: o.Result.InNetwork, Promoted: o.Result.Promoted, Votes: o.Result.Votes}
		}
	} else {
		s.mu.Lock()
		s.stampWriteTrace(requestTraceID(r))
		// On a durable store the whole batch commits as one write-ahead
		// append and one fsync (EndBatch is the durability acknowledgment);
		// per-item rejections still report per item.
		if s.batcher != nil {
			s.batcher.BeginBatch()
		}
		for i, d := range req.Diggs {
			at := digg.Minutes(d.At)
			if at == 0 {
				at = now
			}
			res, err := s.store.Digg(d.Story, d.Voter, at)
			if err != nil {
				results[i].Error = v1ErrorFor(err)
				continue
			}
			results[i] = apiv1.BatchDiggResult{InNetwork: res.InNetwork, Promoted: res.Promoted, Votes: res.Votes}
		}
		if s.batcher != nil {
			werr = s.batcher.EndBatch()
		}
		s.mu.Unlock()
	}
	applySpan.End()
	republishSpan := obs.SpanFrom(ctx, "republish")
	s.republish()
	republishSpan.End()
	histFreshHTTP.Observe(time.Duration(obs.Now() - start))
	if werr != nil {
		writeV1Error(w, v1ErrorFor(werr))
		return
	}
	writeJSON(w, http.StatusOK, apiv1.BatchDiggResponse{Results: results})
}

// handleV1BatchSubmit serves POST /v1/stories:batch: up to
// apiv1.MaxBatch submissions in one write transaction.
func (s *Server) handleV1BatchSubmit(w http.ResponseWriter, r *http.Request) {
	if s.fenceV1(w) {
		return
	}
	start := obs.Now()
	ctx := r.Context()
	decodeSpan := obs.SpanFrom(ctx, "decode")
	var req apiv1.BatchSubmitRequest
	err := json.NewDecoder(r.Body).Decode(&req)
	decodeSpan.End()
	if err != nil {
		writeV1Error(w, v1Err(http.StatusBadRequest, apiv1.CodeInvalidArgument, "invalid JSON: "+err.Error()))
		return
	}
	if len(req.Stories) == 0 || len(req.Stories) > apiv1.MaxBatch {
		writeV1Error(w, v1Err(http.StatusBadRequest, apiv1.CodeInvalidArgument,
			"batch must contain between 1 and "+strconv.Itoa(apiv1.MaxBatch)+" stories"))
		return
	}
	now := s.clock()
	results := make([]apiv1.BatchSubmitResult, len(req.Stories))
	var werr error
	applySpan := obs.SpanFrom(ctx, "apply")
	if s.bulk != nil {
		ops := make([]digg.SubmitOp, len(req.Stories))
		for i, sub := range req.Stories {
			at := digg.Minutes(sub.At)
			if at == 0 {
				at = now
			}
			ops[i] = digg.SubmitOp{User: sub.Submitter, Title: sub.Title, Interest: sub.Interest, At: at}
		}
		out := make([]digg.SubmitOutcome, len(ops))
		s.mu.Lock()
		s.stampWriteTrace(requestTraceID(r))
		werr = s.bulk.SubmitMany(ops, out)
		s.mu.Unlock()
		for i, o := range out {
			if o.Err != nil {
				results[i].Error = v1ErrorFor(o.Err)
				continue
			}
			sum := summarize(o.Story)
			results[i].Story = &sum
		}
	} else {
		s.mu.Lock()
		s.stampWriteTrace(requestTraceID(r))
		if s.batcher != nil {
			s.batcher.BeginBatch()
		}
		for i, sub := range req.Stories {
			at := digg.Minutes(sub.At)
			if at == 0 {
				at = now
			}
			st, err := s.store.Submit(sub.Submitter, sub.Title, sub.Interest, at)
			if err != nil {
				results[i].Error = v1ErrorFor(err)
				continue
			}
			sum := summarize(st)
			results[i].Story = &sum
		}
		if s.batcher != nil {
			werr = s.batcher.EndBatch()
		}
		s.mu.Unlock()
	}
	applySpan.End()
	republishSpan := obs.SpanFrom(ctx, "republish")
	s.republish()
	republishSpan.End()
	histFreshHTTP.Observe(time.Duration(obs.Now() - start))
	if werr != nil {
		writeV1Error(w, v1ErrorFor(werr))
		return
	}
	writeJSON(w, http.StatusOK, apiv1.BatchSubmitResponse{Results: results})
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
