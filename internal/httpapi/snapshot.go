package httpapi

// snapshot.go implements the lock-free read path. The write side
// (handleSubmit/handleDigg, the live service's tick hook, Handler at
// startup) calls Server.republish, which rebuilds an immutable
// ReadView under the platform read lock and publishes it through an
// atomic.Pointer. Hot read handlers load the pointer and write
// pre-serialized JSON bytes straight to the response — no platform
// lock, no StorySummary allocation, no encoding/json reflection.
//
// Rebuilds are incremental: the store caches each story's encoded
// summary keyed by its digg.Platform version counter, so a publication
// re-encodes only stories that changed since the last one. Story
// details (vote lists) are encoded lazily on first request and cached
// per (story, version) in a slab of atomic pointers, so repeated
// scrapes of an unchanged story are served from bytes.

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"diggsim/internal/digg"
)

// Pre-render depths. Requests that reach past them (and past the
// total) fall back to the locked path, which stays correct for
// arbitrary limits.
const (
	maxRenderQueue = 100  // front-page / upcoming entries per snapshot
	maxRenderTop   = 1024 // top-user ids per snapshot
)

// queueEntry locates one story's pre-encoded summary inside a queue
// buffer. submittedAt lets the upcoming handler apply the
// clock-dependent visibility filter at serve time, so a static
// server's queue stays correct as wall time advances without
// republishing; id is the boundary key v1 upcoming cursors resume
// from.
type queueEntry struct {
	start, end  int
	submittedAt int64
	id          digg.StoryID
}

// ReadView is one immutable published snapshot of everything the hot
// read endpoints serve. All byte slices are written once at build time
// and never mutated, so any number of handlers may serve from a view
// while newer views are published behind them.
type ReadView struct {
	// Gen is the store generation this view was built at (against a
	// sharded store, the composite generation: the shard-vector sum).
	Gen uint64
	// ShardGens is the per-shard generation vector at build time (nil
	// for an unsharded store). Cursors minted from this view embed it.
	ShardGens []uint64

	fpBuf   []byte // "[{...},...]" promoted stories, newest first
	fpEnds  []int  // fpEnds[i] = offset just past entry i (no ']')
	fpTotal int    // promoted stories on the whole platform

	upBuf     []byte // unpromoted stories, newest first
	upEntries []queueEntry
	upTotal   int // unpromoted stories on the whole platform

	summaries [][]byte // per-story summary JSON, indexed by StoryID
	storyVer  []uint32 // per-story version at publication

	topBuf   []byte // "[id,id,...]" ranked users, best first
	topEnds  []int
	topTotal int // users with promoted submissions

	// ranks is the platform's promoted-submission ranking map, shared
	// immutably (digg replaces it on invalidation, never mutates it).
	ranks map[digg.UserID]int

	etagStr string   // strong ETag derived from Gen, e.g. `"g42"`
	etag    []string // ready-to-assign header value {etagStr}
}

// cachedSummary is the cross-publication summary encoding cache entry.
type cachedSummary struct {
	ver uint32
	buf []byte
}

// detailEntry is one lazily encoded story detail (summary + vote
// list) at a given story version.
type detailEntry struct {
	ver uint32
	buf []byte
}

// detailSlab is the published set of per-story detail slots. The slab
// is replaced (grown) only at publication; the slots themselves are
// filled lock-free by read handlers on cache miss.
type detailSlab struct {
	slots []*atomic.Pointer[detailEntry]
}

// snapshotStore owns the published view and the encoding caches.
type snapshotStore struct {
	mu      sync.Mutex // serializes rebuilds
	view    atomic.Pointer[ReadView]
	details atomic.Pointer[detailSlab]
	sums    []cachedSummary
	// onPublish, when non-nil (tests), observes every published view
	// while the rebuild lock is held.
	onPublish func(*ReadView)
}

func newSnapshotStore() *snapshotStore { return &snapshotStore{} }

// republish rebuilds and atomically publishes the read view if the
// platform generation moved since the last publication. It is called
// by every write path (HTTP submit/digg handlers, the live service's
// after-step hook) and by Handler before serving; readers never call
// it, so they never block behind a rebuild.
func (s *Server) republish() {
	st := s.snap
	st.mu.Lock()
	defer st.mu.Unlock()
	s.mu.RLock()
	gen := s.store.Generation()
	if cur := st.view.Load(); cur != nil && cur.Gen == gen {
		s.mu.RUnlock()
		return
	}
	buildStart := time.Now()
	view := st.build(s.store, gen)
	histSnapshotRebuild.Observe(time.Since(buildStart))
	s.mu.RUnlock()
	st.view.Store(view)
	gaugeViewGen.Set(view.Gen)
	if st.onPublish != nil {
		st.onPublish(view)
	}
}

// build assembles a view. The caller holds the store mutex (so the
// summary cache is private) and the platform read lock (so the
// platform is quiescent).
func (st *snapshotStore) build(p digg.Store, gen uint64) *ReadView {
	stories := p.Stories()
	n := len(stories)

	// Refresh the summary cache: re-encode only changed stories.
	if cap(st.sums) < n {
		grown := make([]cachedSummary, n, n+n/2+16)
		copy(grown, st.sums)
		st.sums = grown
	}
	st.sums = st.sums[:n]
	encoded := 0
	for i, s := range stories {
		ver := p.StoryVersion(s.ID)
		if st.sums[i].ver != ver || st.sums[i].buf == nil {
			buf := make([]byte, 0, 96+len(s.Title))
			st.sums[i] = cachedSummary{ver: ver, buf: appendSummary(buf, s)}
			encoded++
		}
	}
	if encoded > 0 {
		ctrStoriesEncoded.Add(uint64(encoded))
	}

	v := &ReadView{
		Gen:       gen,
		summaries: make([][]byte, n),
		storyVer:  make([]uint32, n),
	}
	if sh, ok := p.(digg.Sharded); ok {
		v.ShardGens = sh.ShardGenerations(nil)
	}
	for i := range st.sums {
		v.summaries[i] = st.sums[i].buf
		v.storyVer[i] = st.sums[i].ver
	}

	// Front page: promoted stories, newest promotion first.
	v.fpTotal = p.PromotedCount()
	front := p.FrontPage(maxRenderQueue)
	v.fpBuf, v.fpEnds = buildQueue(v.summaries, front, nil)

	// Upcoming queue: unpromoted stories, newest first, including
	// future-dated submissions — the handler filters by the clock at
	// serve time.
	v.upTotal = n - v.fpTotal
	upcoming := p.Upcoming(digg.Minutes(1<<62), maxRenderQueue)
	v.upBuf, _ = buildQueue(v.summaries, upcoming, &v.upEntries)

	// Reputation: ranked ids pre-rendered, rank map shared for
	// lock-free /api/users lookups.
	v.ranks = p.Ranks()
	v.topTotal = len(v.ranks)
	top := p.TopUsers(maxRenderTop)
	v.topBuf = append(v.topBuf, '[')
	v.topEnds = make([]int, len(top))
	for i, u := range top {
		if i > 0 {
			v.topBuf = append(v.topBuf, ',')
		}
		v.topBuf = strconv.AppendInt(v.topBuf, int64(u), 10)
		v.topEnds[i] = len(v.topBuf)
	}
	v.topBuf = append(v.topBuf, ']')

	v.etagStr = `"g` + strconv.FormatUint(gen, 10) + `"`
	v.etag = []string{v.etagStr}

	// Grow the detail slab to cover new stories. Existing slots (and
	// their cached encodings) carry over untouched.
	old := st.details.Load()
	if old == nil || len(old.slots) < n {
		slots := make([]*atomic.Pointer[detailEntry], n)
		if old != nil {
			copy(slots, old.slots)
		}
		for i := range slots {
			if slots[i] == nil {
				slots[i] = new(atomic.Pointer[detailEntry])
			}
		}
		st.details.Store(&detailSlab{slots: slots})
	}
	return v
}

// buildQueue concatenates the pre-encoded summaries of the given
// stories into one JSON array buffer. With ends it records the offset
// past each entry (front page: constant-time limit cuts); with
// entries it records per-entry bounds plus submission times (upcoming:
// serve-time visibility filtering).
func buildQueue(summaries [][]byte, stories []*digg.Story, entries *[]queueEntry) (buf []byte, ends []int) {
	size := 2
	for _, s := range stories {
		size += len(summaries[s.ID]) + 1
	}
	buf = make([]byte, 0, size)
	buf = append(buf, '[')
	if entries == nil {
		ends = make([]int, len(stories))
	} else {
		*entries = make([]queueEntry, len(stories))
	}
	for i, s := range stories {
		if i > 0 {
			buf = append(buf, ',')
		}
		start := len(buf)
		buf = append(buf, summaries[s.ID]...)
		if entries == nil {
			ends[i] = len(buf)
		} else {
			(*entries)[i] = queueEntry{start: start, end: len(buf), submittedAt: int64(s.SubmittedAt), id: s.ID}
		}
	}
	buf = append(buf, ']')
	return buf, ends
}

// Shared header values and byte fragments, assigned directly into the
// header map so hot handlers allocate nothing per request.
var (
	headerJSON = []string{"application/json"}
	// headerRevalidate lets clients cache queue pages but revalidate
	// with If-None-Match on every reuse: a scraper's repeated crawls
	// of an unchanged page cost a 304, not a re-download.
	headerRevalidate = []string{"no-cache"}
	bracketOpen      = []byte{'['}
	bracketClose     = []byte{']'}
	commaSep         = []byte{','}
	emptyArray       = []byte("[]")
)

// encBufPool recycles scratch buffers for handlers that assemble a
// response from snapshot fragments plus per-request numbers (story
// pages, user profiles).
var encBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// queryIntRaw parses an integer query parameter straight from the raw
// query string, allocating nothing on the happy path (url.Values would
// build a map per request). Percent-encoded values take the rare slow
// path through url.QueryUnescape so legal encodings keep parsing.
func queryIntRaw(rawQuery, key string, def int) (int, error) {
	for len(rawQuery) > 0 {
		var seg string
		if i := strings.IndexByte(rawQuery, '&'); i >= 0 {
			seg, rawQuery = rawQuery[:i], rawQuery[i+1:]
		} else {
			seg, rawQuery = rawQuery, ""
		}
		eq := strings.IndexByte(seg, '=')
		if eq < 0 || seg[:eq] != key {
			continue
		}
		val := seg[eq+1:]
		if strings.ContainsAny(val, "%+") {
			if dec, err := url.QueryUnescape(val); err == nil {
				val = dec
			}
		}
		v, err := strconv.Atoi(val)
		if err != nil {
			return 0, fmt.Errorf("invalid %s: %q", key, val)
		}
		return v, nil
	}
	return def, nil
}

// etagMatches reports whether the If-None-Match header value names
// etag (a quoted strong validator). It scans the comma-separated list
// without allocating; weak prefixes compare equal, matching
// conditional-GET semantics for 304 responses.
func etagMatches(header, etag string) bool {
	if header == "" || etag == "" {
		return false
	}
	if header == "*" {
		return true
	}
	for len(header) > 0 {
		header = strings.TrimLeft(header, " \t,")
		if strings.HasPrefix(header, "W/") {
			header = header[2:]
		}
		if len(header) == 0 {
			return false
		}
		if strings.HasPrefix(header, etag) {
			rest := header[len(etag):]
			if rest == "" || rest[0] == ',' || rest[0] == ' ' || rest[0] == '\t' {
				return true
			}
		}
		i := strings.IndexByte(header, ',')
		if i < 0 {
			return false
		}
		header = header[i+1:]
	}
	return false
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal, escaping
// quotes, backslashes and control characters.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '"' && c != '\\' && c >= 0x20 {
			continue
		}
		b = append(b, s[start:i]...)
		switch c {
		case '"':
			b = append(b, '\\', '"')
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		case '\r':
			b = append(b, '\\', 'r')
		case '\t':
			b = append(b, '\\', 't')
		default:
			b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		}
		start = i + 1
	}
	return append(append(b, s[start:]...), '"')
}

// appendSummary appends a story's StorySummary JSON — the manual
// counterpart of encoding/json over the types.go struct tags.
func appendSummary(b []byte, s *digg.Story) []byte {
	b = append(b, `{"id":`...)
	b = strconv.AppendInt(b, int64(s.ID), 10)
	b = append(b, `,"title":`...)
	b = appendJSONString(b, s.Title)
	b = append(b, `,"submitter":`...)
	b = strconv.AppendInt(b, int64(s.Submitter), 10)
	b = append(b, `,"submitted_at":`...)
	b = strconv.AppendInt(b, int64(s.SubmittedAt), 10)
	if s.Promoted {
		b = append(b, `,"promoted":true`...)
		if s.PromotedAt != 0 { // mirrors the omitempty struct tag
			b = append(b, `,"promoted_at":`...)
			b = strconv.AppendInt(b, int64(s.PromotedAt), 10)
		}
	} else {
		b = append(b, `,"promoted":false`...)
	}
	b = append(b, `,"votes":`...)
	b = strconv.AppendInt(b, int64(len(s.Votes)), 10)
	return append(b, '}')
}

// appendDetail appends a story's StoryDetail JSON: the summary fields
// plus the chronological vote list.
func appendDetail(b []byte, s *digg.Story) []byte {
	b = appendSummary(b, s)
	b = b[:len(b)-1] // reopen the summary object
	b = append(b, `,"vote_list":[`...)
	for i, v := range s.Votes {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"voter":`...)
		b = strconv.AppendInt(b, int64(v.Voter), 10)
		b = append(b, `,"at":`...)
		b = strconv.AppendInt(b, int64(v.At), 10)
		b = append(b, '}')
	}
	return append(b, ']', '}')
}

// appendUserInfo appends a UserInfo JSON object.
func appendUserInfo(b []byte, id digg.UserID, fans, friends, rank int) []byte {
	b = append(b, `{"id":`...)
	b = strconv.AppendInt(b, int64(id), 10)
	b = append(b, `,"fans":`...)
	b = strconv.AppendInt(b, int64(fans), 10)
	b = append(b, `,"friends":`...)
	b = strconv.AppendInt(b, int64(friends), 10)
	b = append(b, `,"rank":`...)
	b = strconv.AppendInt(b, int64(rank), 10)
	return append(b, '}')
}
