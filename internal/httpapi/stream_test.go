package httpapi

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"diggsim/internal/digg"
	"diggsim/internal/graph"
	"diggsim/internal/live"
	"diggsim/internal/rng"
)

// newLiveTestServer wires a live service into a server over a small
// platform, with the step loop driven manually via StepTo.
func newLiveTestServer(t *testing.T) (*live.Service, *Client) {
	return newLiveTestServerCfg(t, live.Config{Seed: 5, SubmissionsPerHour: 30, StartAt: 100})
}

func newLiveTestServerCfg(t *testing.T, cfg live.Config) (*live.Service, *Client) {
	t.Helper()
	g, err := graph.PreferentialAttachment(rng.New(11), 1500, 4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	p := digg.NewPlatform(g, &digg.ClassicPromotion{VoteThreshold: 8, Window: digg.Day})
	svc, err := live.NewService(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(p, cfg.StartAt, nil)
	srv.AttachLive(svc)
	m := NewMetrics()
	srv.AttachMetrics(m)
	ts := httptest.NewServer(m.Middleware(srv.Handler()))
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL)
	c.Backoff = time.Millisecond
	return svc, c
}

// TestStreamDeliversLifecycle subscribes over real HTTP/SSE, steps the
// simulation, and expects to observe a story's submit -> digg ->
// promote lifecycle on the wire.
func TestStreamDeliversLifecycle(t *testing.T) {
	svc, c := newLiveTestServer(t)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	type lifecycle struct {
		submitted, dugg, promoted bool
	}
	stories := make(map[digg.StoryID]*lifecycle)
	var mu sync.Mutex
	done := make(chan struct{})
	streamErr := make(chan error, 1)
	go func() {
		streamErr <- c.Stream(ctx, func(ev live.Event) error {
			mu.Lock()
			defer mu.Unlock()
			lc := stories[ev.Story]
			if lc == nil {
				lc = &lifecycle{}
				stories[ev.Story] = lc
			}
			switch ev.Type {
			case live.EventSubmit:
				lc.submitted = true
			case live.EventDigg:
				lc.dugg = true
			case live.EventPromote:
				if lc.submitted && lc.dugg {
					select {
					case <-done:
					default:
						close(done)
					}
				}
				lc.promoted = true
			}
			return nil
		})
	}()

	// Step the sim until a fully observed lifecycle shows up on the
	// stream (the subscriber attaches after Stream connects, so give
	// the connection a moment first).
	deadline := time.After(25 * time.Second)
	now := digg.Minutes(100)
	time.Sleep(50 * time.Millisecond)
	for {
		select {
		case <-done:
			cancel()
			if err := <-streamErr; err != nil && err != context.Canceled {
				t.Fatalf("stream error: %v", err)
			}
			return
		case err := <-streamErr:
			t.Fatalf("stream ended early: %v", err)
		case <-deadline:
			t.Fatal("no submit->digg->promote lifecycle observed on the stream")
		default:
		}
		now += 30
		if err := svc.StepTo(now); err != nil {
			t.Fatal(err)
		}
		// Pace the stepping so the SSE reader keeps up with the ring
		// buffer instead of lagging past whole lifecycles.
		time.Sleep(2 * time.Millisecond)
	}
}

// TestStreamClientReconnect severs the SSE stream repeatedly and
// checks the client resumes transparently with Last-Event-ID, seeing
// every sequence number exactly once.
func TestStreamClientReconnect(t *testing.T) {
	var mu sync.Mutex
	var lastIDs []string
	conn := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		lastIDs = append(lastIDs, r.Header.Get("Last-Event-ID"))
		n := conn
		conn++
		mu.Unlock()
		w.Header().Set("Content-Type", "text/event-stream")
		// Serve three events, then return — the server closing the
		// stream mid-feed. Each connection continues the sequence.
		for seq := n*3 + 1; seq <= n*3+3; seq++ {
			fmt.Fprintf(w, "id: %d\nevent: digg\ndata: {\"seq\":%d,\"type\":\"digg\"}\n\n", seq, seq)
		}
	}))
	defer ts.Close()

	c := NewClient(ts.URL)
	c.Backoff = time.Millisecond
	var seqs []uint64
	errDone := errors.New("done")
	err := c.Stream(context.Background(), func(ev live.Event) error {
		seqs = append(seqs, ev.Seq)
		if ev.Seq >= 6 {
			return errDone
		}
		return nil
	})
	if !errors.Is(err, errDone) {
		t.Fatalf("stream error = %v, want errDone", err)
	}
	want := []uint64{1, 2, 3, 4, 5, 6}
	if len(seqs) != len(want) {
		t.Fatalf("seqs = %v, want %v", seqs, want)
	}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("seqs = %v, want %v", seqs, want)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lastIDs) != 2 || lastIDs[0] != "" || lastIDs[1] != "3" {
		t.Errorf("Last-Event-ID per connection = %q, want [\"\" \"3\"]", lastIDs)
	}
}

// TestStreamNoReconnectWhenDisabled checks DisableTransientRetry
// restores the old single-connection behavior.
func TestStreamNoReconnectWhenDisabled(t *testing.T) {
	var mu sync.Mutex
	conns := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		conns++
		mu.Unlock()
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, "id: 1\nevent: digg\ndata: {\"seq\":1,\"type\":\"digg\"}\n\n")
	}))
	defer ts.Close()

	c := NewClient(ts.URL)
	c.DisableTransientRetry = true
	err := c.Stream(context.Background(), func(live.Event) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "closed by server") {
		t.Fatalf("err = %v, want stream-closed error", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if conns != 1 {
		t.Errorf("connections = %d, want 1 (no reconnect)", conns)
	}
}

// TestStreamResumeOverwrittenReportsLag reconnects with a Last-Event-ID
// the broadcast ring has already overwritten and expects the first
// frame to be a synthetic lag event carrying the exact gap, followed by
// replay from the oldest retained event.
func TestStreamResumeOverwrittenReportsLag(t *testing.T) {
	svc, c := newLiveTestServerCfg(t, live.Config{
		Seed: 5, SubmissionsPerHour: 30, StartAt: 100, SubscriberBuffer: 8,
	})
	// Generate far more than 8 events, then stop stepping: the head is
	// stable while we read.
	if err := svc.StepTo(100 + 2*digg.Day); err != nil {
		t.Fatal(err)
	}
	head := svc.Bus().Stats().Published
	if head <= 16 {
		t.Fatalf("only %d events published", head)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/api/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// First frame: the lag event. Events 2..head-8 are gone (head-9 of
	// them); replay resumes at head-7.
	r := bufio.NewReader(resp.Body)
	frame := readSSEFrame(t, r)
	if frame.event != string(live.EventLag) {
		t.Fatalf("first frame event = %q, want lag (data %q)", frame.event, frame.data)
	}
	wantDropped := fmt.Sprintf(`"dropped":%d`, head-9)
	if !strings.Contains(frame.data, wantDropped) {
		t.Errorf("lag frame %q does not contain %s", frame.data, wantDropped)
	}
	frame = readSSEFrame(t, r)
	if frame.id != fmt.Sprintf("%d", head-7) {
		t.Errorf("replay resumed at id %q, want %d", frame.id, head-7)
	}
}

// TestStreamResumeWithinRing reconnects with a Last-Event-ID the ring
// still holds and expects seamless replay with no lag frame.
func TestStreamResumeWithinRing(t *testing.T) {
	svc, c := newLiveTestServerCfg(t, live.Config{
		Seed: 5, SubmissionsPerHour: 30, StartAt: 100, SubscriberBuffer: 4096,
	})
	if err := svc.StepTo(100 + digg.Day); err != nil {
		t.Fatal(err)
	}
	head := svc.Bus().Stats().Published
	if head < 4 {
		t.Fatalf("only %d events published", head)
	}
	resume := head - 3

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/api/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", fmt.Sprintf("%d", resume))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	r := bufio.NewReader(resp.Body)
	for want := resume + 1; want <= head; want++ {
		frame := readSSEFrame(t, r)
		if frame.event == string(live.EventLag) {
			t.Fatalf("unexpected lag frame on in-ring resume: %q", frame.data)
		}
		if frame.id != fmt.Sprintf("%d", want) {
			t.Fatalf("frame id = %q, want %d", frame.id, want)
		}
	}
}

type sseFrame struct {
	id, event, data string
}

// readSSEFrame reads one id/event/data frame off a raw SSE stream.
func readSSEFrame(t *testing.T, r *bufio.Reader) sseFrame {
	t.Helper()
	var f sseFrame
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("reading SSE stream: %v (frame so far %+v)", err, f)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "id:"):
			f.id = strings.TrimSpace(strings.TrimPrefix(line, "id:"))
		case strings.HasPrefix(line, "event:"):
			f.event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			f.data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		case line == "" && f.data != "":
			return f
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	svc, c := newLiveTestServer(t)
	if err := svc.StepTo(100 + digg.Day); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Generate a couple of requests so HTTP metrics are non-zero.
	if _, err := c.FrontPage(ctx, 10); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Live == nil {
		t.Fatal("stats missing live section")
	}
	if stats.Live.Submits == 0 || stats.Live.Diggs == 0 {
		t.Errorf("no live activity in stats: %+v", *stats.Live)
	}
	if stats.Live.SimNow != int64(100+digg.Day) {
		t.Errorf("SimNow = %d", stats.Live.SimNow)
	}
	if stats.HTTP == nil {
		t.Fatal("stats missing http section")
	}
	if stats.HTTP.Requests == 0 {
		t.Error("metrics middleware counted no requests")
	}
}

// TestStaticStatsOmitsLive checks /api/stats on a plain static server.
func TestStaticStatsOmitsLive(t *testing.T) {
	_, _, c := newTestServer(t)
	stats, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Live != nil || stats.HTTP != nil {
		t.Errorf("static stats = %+v", stats)
	}
}

// TestSetNowFunc verifies the advancing clock drives upcoming-queue
// visibility and default write timestamps.
func TestSetNowFunc(t *testing.T) {
	srv, _, c := newTestServer(t)
	var now digg.Minutes = 50
	srv.SetNowFunc(func() digg.Minutes { return now })
	ctx := context.Background()
	if _, err := c.Submit(ctx, SubmitRequest{Submitter: 0, Title: "future", At: 200}); err != nil {
		t.Fatal(err)
	}
	up, err := c.Upcoming(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(up) != 0 {
		t.Fatalf("future story visible at now=50: %+v", up)
	}
	now = 250 // clock advances: the story scrolls into view
	up, err = c.Upcoming(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(up) != 1 || up[0].SubmittedAt != 200 {
		t.Fatalf("story not visible at now=250: %+v", up)
	}
	// Default timestamps come from the clock too.
	st, err := c.Submit(ctx, SubmitRequest{Submitter: 1, Title: "stamped"})
	if err != nil {
		t.Fatal(err)
	}
	if st.SubmittedAt != 250 {
		t.Errorf("default submit time = %d, want 250", st.SubmittedAt)
	}
}
