package httpapi

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"diggsim/internal/digg"
	"diggsim/internal/graph"
	"diggsim/internal/live"
	"diggsim/internal/rng"
)

// newLiveTestServer wires a live service into a server over a small
// platform, with the step loop driven manually via StepTo.
func newLiveTestServer(t *testing.T) (*live.Service, *Client) {
	t.Helper()
	g, err := graph.PreferentialAttachment(rng.New(11), 1500, 4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	p := digg.NewPlatform(g, &digg.ClassicPromotion{VoteThreshold: 8, Window: digg.Day})
	svc, err := live.NewService(p, live.Config{Seed: 5, SubmissionsPerHour: 30, StartAt: 100})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(p, 100, nil)
	srv.AttachLive(svc)
	m := NewMetrics()
	srv.AttachMetrics(m)
	ts := httptest.NewServer(m.Middleware(srv.Handler()))
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL)
	c.Backoff = time.Millisecond
	return svc, c
}

// TestStreamDeliversLifecycle subscribes over real HTTP/SSE, steps the
// simulation, and expects to observe a story's submit -> digg ->
// promote lifecycle on the wire.
func TestStreamDeliversLifecycle(t *testing.T) {
	svc, c := newLiveTestServer(t)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	type lifecycle struct {
		submitted, dugg, promoted bool
	}
	stories := make(map[digg.StoryID]*lifecycle)
	var mu sync.Mutex
	done := make(chan struct{})
	streamErr := make(chan error, 1)
	go func() {
		streamErr <- c.Stream(ctx, func(ev live.Event) error {
			mu.Lock()
			defer mu.Unlock()
			lc := stories[ev.Story]
			if lc == nil {
				lc = &lifecycle{}
				stories[ev.Story] = lc
			}
			switch ev.Type {
			case live.EventSubmit:
				lc.submitted = true
			case live.EventDigg:
				lc.dugg = true
			case live.EventPromote:
				if lc.submitted && lc.dugg {
					select {
					case <-done:
					default:
						close(done)
					}
				}
				lc.promoted = true
			}
			return nil
		})
	}()

	// Step the sim until a fully observed lifecycle shows up on the
	// stream (the subscriber attaches after Stream connects, so give
	// the connection a moment first).
	deadline := time.After(25 * time.Second)
	now := digg.Minutes(100)
	time.Sleep(50 * time.Millisecond)
	for {
		select {
		case <-done:
			cancel()
			if err := <-streamErr; err != nil && err != context.Canceled {
				t.Fatalf("stream error: %v", err)
			}
			return
		case err := <-streamErr:
			t.Fatalf("stream ended early: %v", err)
		case <-deadline:
			t.Fatal("no submit->digg->promote lifecycle observed on the stream")
		default:
		}
		now += 30
		if err := svc.StepTo(now); err != nil {
			t.Fatal(err)
		}
		// Pace the stepping so the SSE reader keeps up with the ring
		// buffer instead of lagging past whole lifecycles.
		time.Sleep(2 * time.Millisecond)
	}
}

func TestStatsEndpoint(t *testing.T) {
	svc, c := newLiveTestServer(t)
	if err := svc.StepTo(100 + digg.Day); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Generate a couple of requests so HTTP metrics are non-zero.
	if _, err := c.FrontPage(ctx, 10); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Live == nil {
		t.Fatal("stats missing live section")
	}
	if stats.Live.Submits == 0 || stats.Live.Diggs == 0 {
		t.Errorf("no live activity in stats: %+v", *stats.Live)
	}
	if stats.Live.SimNow != int64(100+digg.Day) {
		t.Errorf("SimNow = %d", stats.Live.SimNow)
	}
	if stats.HTTP == nil {
		t.Fatal("stats missing http section")
	}
	if stats.HTTP.Requests == 0 {
		t.Error("metrics middleware counted no requests")
	}
}

// TestStaticStatsOmitsLive checks /api/stats on a plain static server.
func TestStaticStatsOmitsLive(t *testing.T) {
	_, _, c := newTestServer(t)
	stats, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Live != nil || stats.HTTP != nil {
		t.Errorf("static stats = %+v", stats)
	}
}

// TestSetNowFunc verifies the advancing clock drives upcoming-queue
// visibility and default write timestamps.
func TestSetNowFunc(t *testing.T) {
	srv, _, c := newTestServer(t)
	var now digg.Minutes = 50
	srv.SetNowFunc(func() digg.Minutes { return now })
	ctx := context.Background()
	if _, err := c.Submit(ctx, SubmitRequest{Submitter: 0, Title: "future", At: 200}); err != nil {
		t.Fatal(err)
	}
	up, err := c.Upcoming(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(up) != 0 {
		t.Fatalf("future story visible at now=50: %+v", up)
	}
	now = 250 // clock advances: the story scrolls into view
	up, err = c.Upcoming(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(up) != 1 || up[0].SubmittedAt != 200 {
		t.Fatalf("story not visible at now=250: %+v", up)
	}
	// Default timestamps come from the clock too.
	st, err := c.Submit(ctx, SubmitRequest{Submitter: 1, Title: "stamped"})
	if err != nil {
		t.Fatal(err)
	}
	if st.SubmittedAt != 250 {
		t.Errorf("default submit time = %d, want 250", st.SubmittedAt)
	}
}
