package httpapi

// timeline.go serves the metrics timeline: GET /debug/timeline renders
// an attached obs.Timeline (periodic registry snapshots) as per-step
// deltas, rates and interval quantiles, plus the burn-rate evaluation
// of every configured SLO. The evaluation also feeds /readyz — a node
// burning error budget fast on both windows reports degraded (503) so
// load balancers drain it before users notice the freshness regression.

import (
	"net/http"
	"time"

	"diggsim/internal/apiv1"
	"diggsim/internal/obs"
)

// Timeline query bounds. The window clamps to what the ring retains
// (Dump trims internally); the step clamps below so a huge window with
// a tiny step cannot render tens of thousands of points.
const (
	defaultTimelineWindow = 5 * time.Minute
	defaultTimelineStep   = 10 * time.Second
	minTimelineStep       = time.Second
)

// DefaultSLOs returns the burn-rate objectives AttachTimeline applies
// when given none: the two end-to-end freshness spans and the hot read
// path's latency.
func DefaultSLOs() []obs.SLO {
	return []obs.SLO{
		{Name: "frontpage_freshness", Family: obs.FreshnessFrontpageFamily,
			Objective: 0.99, Threshold: 250 * time.Millisecond},
		{Name: "sse_freshness", Family: obs.FreshnessSSEFamily,
			Objective: 0.99, Threshold: time.Second},
		{Name: "read_latency", Family: "diggsim_http_request_seconds",
			Objective: 0.99, Threshold: 10 * time.Millisecond},
	}
}

// AttachTimeline connects a metrics timeline: the server serves it on
// GET /debug/timeline and gates /readyz on the burn-rate evaluation of
// slos (DefaultSLOs when none are given). The caller owns the capture
// loop (Timeline.Run). Call before Handler.
func (s *Server) AttachTimeline(tl *obs.Timeline, slos ...obs.SLO) {
	s.timeline = tl
	if len(slos) == 0 {
		slos = DefaultSLOs()
	}
	s.slos = slos
}

// burnStatuses evaluates the configured SLOs, or nil without a
// timeline.
func (s *Server) burnStatuses() []obs.BurnStatus {
	if s.timeline == nil {
		return nil
	}
	return s.timeline.EvaluateBurn(s.slos, obs.BurnConfig{})
}

// degradedSLO returns the first SLO burning error budget at alert rate
// on both windows, or "" when healthy.
func (s *Server) degradedSLO() string {
	for _, st := range s.burnStatuses() {
		if st.Degraded {
			return st.SLO.Name
		}
	}
	return ""
}

// handleTimeline serves GET /debug/timeline?window=300&step=10 (both
// seconds): every instrument's trend over the trailing window plus the
// SLO burn evaluation.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	if s.timeline == nil {
		writeV1Error(w, v1Err(http.StatusNotFound, apiv1.CodeNotFound, "no timeline attached"))
		return
	}
	window, err := queryIntRaw(r.URL.RawQuery, "window", int(defaultTimelineWindow/time.Second))
	if err != nil || window <= 0 {
		writeV1Error(w, v1Err(http.StatusBadRequest, apiv1.CodeInvalidArgument,
			"window must be a positive number of seconds"))
		return
	}
	step, err := queryIntRaw(r.URL.RawQuery, "step", int(defaultTimelineStep/time.Second))
	if err != nil || step <= 0 {
		writeV1Error(w, v1Err(http.StatusBadRequest, apiv1.CodeInvalidArgument,
			"step must be a positive number of seconds"))
		return
	}
	windowD := time.Duration(window) * time.Second
	stepD := time.Duration(step) * time.Second
	if stepD < minTimelineStep {
		stepD = minTimelineStep
	}
	dump := apiv1.TimelineDump{
		WindowSeconds:   windowD.Seconds(),
		StepSeconds:     stepD.Seconds(),
		IntervalSeconds: s.timeline.Interval().Seconds(),
		Series:          timelineSeries(s.timeline.Dump(windowD, stepD)),
		Burn:            burnToWire(s.burnStatuses()),
	}
	writeJSON(w, http.StatusOK, dump)
}

// timelineSeries converts obs series to the wire shape (ms units).
func timelineSeries(in []obs.TimelineSeries) []apiv1.TimelineSeries {
	out := make([]apiv1.TimelineSeries, len(in))
	for i, ts := range in {
		ws := apiv1.TimelineSeries{
			Name: ts.Name, Labels: ts.Labels, Kind: ts.Kind,
			Points: make([]apiv1.TimelinePoint, len(ts.Points)),
		}
		for j, p := range ts.Points {
			ws.Points[j] = apiv1.TimelinePoint{
				AtUnixMillis:    p.At.UnixMilli(),
				IntervalSeconds: p.Interval.Seconds(),
				Value:           p.Value,
				Delta:           p.Delta,
				Rate:            p.Rate,
				P50Millis:       p.P50 / 1e6,
				P99Millis:       p.P99 / 1e6,
				SumMillis:       float64(p.Sum) / 1e6,
			}
		}
		out[i] = ws
	}
	return out
}

// burnToWire converts burn statuses to the wire shape.
func burnToWire(in []obs.BurnStatus) []apiv1.BurnStatus {
	if len(in) == 0 {
		return nil
	}
	out := make([]apiv1.BurnStatus, len(in))
	for i, st := range in {
		out[i] = apiv1.BurnStatus{
			Name:            st.SLO.Name,
			Family:          st.SLO.Family,
			Objective:       st.SLO.Objective,
			ThresholdMillis: float64(st.SLO.Threshold) / 1e6,
			Short:           burnWindowToWire(st.Short),
			Long:            burnWindowToWire(st.Long),
			Degraded:        st.Degraded,
		}
	}
	return out
}

func burnWindowToWire(w obs.BurnWindow) apiv1.BurnWindow {
	return apiv1.BurnWindow{
		WindowSeconds:  w.Window.Seconds(),
		CoveredSeconds: w.Covered.Seconds(),
		Total:          w.Total,
		Bad:            w.Bad,
		Burn:           w.Burn,
	}
}
