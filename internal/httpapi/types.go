// Package httpapi exposes the simulated Digg platform over HTTP/JSON
// and provides a typed client plus a concurrent scraper. Together they
// reproduce the paper's data-collection pipeline (a Fetch Technologies
// scraper against digg.com) against the simulator: cmd/diggd serves the
// corpus, cmd/diggscrape crawls it over TCP and writes the dataset
// files the analysis loads.
//
// # API versions
//
// The canonical surface is the versioned /v1/* API speaking the frozen
// contract types of internal/apiv1: cursor-paginated list endpoints,
// a machine-readable error envelope with stable codes, batch write
// endpoints, and conditional GETs. The unversioned /api/* routes
// remain mounted as thin compatibility aliases for pre-v1 consumers
// (offset/limit pagination, string error bodies); they are deprecated
// and receive no new features — see docs/api.md.
//
// The server is written against digg.Store, the command/query
// interface of the storage layer, not the concrete *digg.Platform —
// the seam future shard or replica backends plug into.
//
// # Read-path architecture
//
// The server splits traffic into a lock-free snapshot path and a
// locked fallback path.
//
// Every write — an HTTP POST (single or batch), or a live.Service
// simulation step when one is attached — mutates the store under the
// write lock and then republishes a ReadView: an immutable snapshot
// holding the front page, upcoming queue, per-story summaries, top-user
// list and a generation-derived ETag, all pre-serialized to JSON bytes.
// The view is published through an atomic pointer, so the hot read
// endpoints (frontpage, upcoming, stories, story detail, topusers,
// users) serve whole responses by writing cached bytes — no store
// lock, no intermediate structs, no encoding/json reflection, and zero
// allocations per request. Publication is incremental: digg.Platform's
// generation and per-story version counters let a rebuild re-encode
// only stories that changed, and story details (vote lists) are
// encoded lazily on first request and cached per (story, version).
// The queue endpoints answer If-None-Match revalidations with 304
// Not Modified.
//
// v1 cursors (see apiv1.Cursor) carry an endpoint-specific boundary
// key (submission index, promotion index, story id, or rank position)
// chosen to stay stable across platform generations, plus generation
// and story-version provenance stamps. Pages are cut straight from
// whichever snapshot is published when the request lands, falling
// back to a whole-page locked read past the pre-rendered depth — so a
// paginated crawl under the live writer never duplicates and never
// skips an entry that existed when the crawl began, no matter how
// many generations publish between pages.
//
// The shared RWMutex remains for everything that needs a point-in-time
// read of the mutable store: the write endpoints themselves, snapshot
// rebuilds, detail-cache misses, and read requests that reach past the
// snapshot's pre-rendered depth (queue limits beyond 100, top-user
// limits beyond 1024). Fans/friends endpoints read only the immutable
// social graph and take no lock at all.
//
// # Clocks: SetNowFunc vs AttachLive
//
// Use Server.AttachLive when a live.Service drives the platform: the
// server adopts the service's lock and simulation clock, republishes
// the snapshot after every step, and gains the stream and live stats
// endpoints. Use Server.SetNowFunc when the platform is static but
// the site clock should still advance (cmd/diggd's default mode maps
// wall time onto sim minutes): nothing mutates, so no republication
// happens — the upcoming queue instead filters its pre-rendered
// entries against the clock at serve time. A bare SetNow remains for
// tests that pin the clock.
package httpapi

import (
	"diggsim/internal/apiv1"
	"diggsim/internal/digg"
)

// The wire types are defined once in the transport-agnostic contract
// package internal/apiv1; these aliases keep the many existing
// consumers of the httpapi names compiling unchanged.
type (
	// StorySummary is the list-view representation of a story.
	StorySummary = apiv1.StorySummary
	// VoteRecord is one vote in a story detail response.
	VoteRecord = apiv1.VoteRecord
	// StoryDetail is the full story view including its vote list.
	StoryDetail = apiv1.StoryDetail
	// UserInfo describes a user: fan/friend counts and rank.
	UserInfo = apiv1.UserInfo
	// SubmitRequest creates a story.
	SubmitRequest = apiv1.SubmitRequest
	// DiggRequest casts a vote.
	DiggRequest = apiv1.DiggRequest
	// DiggResponse reports the outcome of a vote.
	DiggResponse = apiv1.DiggResponse
	// APIError is the typed error returned by the client SDK; inspect
	// its Code with errors.As(err, &apiErr).
	APIError = apiv1.Error
)

// UserLinks lists the users watching (fans) or watched by (friends) a
// user — the legacy /api/users/{id}/fans|friends body.
type UserLinks struct {
	ID    digg.UserID   `json:"id"`
	Users []digg.UserID `json:"users"`
}

// StoryPage is the legacy offset/limit story listing returned by
// /api/stories. The v1 listing paginates with cursors instead
// (apiv1.StoriesPage).
type StoryPage struct {
	Total   int            `json:"total"`
	Offset  int            `json:"offset"`
	Stories []StorySummary `json:"stories"`
}

// ErrorResponse is the legacy /api/* JSON error envelope (a bare
// string). The v1 surface uses apiv1.ErrorEnvelope.
type ErrorResponse struct {
	Error string `json:"error"`
}

func summarize(s *digg.Story) StorySummary {
	sum := StorySummary{
		ID:          s.ID,
		Title:       s.Title,
		Submitter:   s.Submitter,
		SubmittedAt: int64(s.SubmittedAt),
		Promoted:    s.Promoted,
		Votes:       s.VoteCount(),
	}
	if s.Promoted {
		sum.PromotedAt = int64(s.PromotedAt)
	}
	return sum
}

func detail(s *digg.Story) StoryDetail {
	d := StoryDetail{StorySummary: summarize(s)}
	d.VoteList = make([]VoteRecord, len(s.Votes))
	for i, v := range s.Votes {
		d.VoteList[i] = VoteRecord{Voter: v.Voter, At: int64(v.At)}
	}
	return d
}
