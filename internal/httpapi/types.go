// Package httpapi exposes the simulated Digg platform over HTTP/JSON
// and provides a typed client plus a concurrent scraper. Together they
// reproduce the paper's data-collection pipeline (a Fetch Technologies
// scraper against digg.com) against the simulator: cmd/diggd serves the
// corpus, cmd/diggscrape crawls it over TCP and writes the dataset
// files the analysis loads.
package httpapi

import "diggsim/internal/digg"

// StorySummary is the list-view representation of a story (front page
// and upcoming queue).
type StorySummary struct {
	ID          digg.StoryID `json:"id"`
	Title       string       `json:"title"`
	Submitter   digg.UserID  `json:"submitter"`
	SubmittedAt int64        `json:"submitted_at"`
	Promoted    bool         `json:"promoted"`
	PromotedAt  int64        `json:"promoted_at,omitempty"`
	Votes       int          `json:"votes"`
}

// VoteRecord is one vote in a story detail response, in chronological
// order with the submitter first — exactly the structure the paper
// scraped.
type VoteRecord struct {
	Voter digg.UserID `json:"voter"`
	At    int64       `json:"at"`
}

// StoryDetail is the full story view including its vote list.
type StoryDetail struct {
	StorySummary
	VoteList []VoteRecord `json:"vote_list"`
}

// StoryPage is a paginated story listing.
type StoryPage struct {
	Total   int            `json:"total"`
	Offset  int            `json:"offset"`
	Stories []StorySummary `json:"stories"`
}

// UserInfo describes a user: fan/friend counts and reputation rank
// (0 when unranked).
type UserInfo struct {
	ID      digg.UserID `json:"id"`
	Fans    int         `json:"fans"`
	Friends int         `json:"friends"`
	Rank    int         `json:"rank"`
}

// UserLinks lists the users watching (fans) or watched by (friends) a
// user.
type UserLinks struct {
	ID    digg.UserID   `json:"id"`
	Users []digg.UserID `json:"users"`
}

// SubmitRequest creates a story on a live server.
type SubmitRequest struct {
	Submitter digg.UserID `json:"submitter"`
	Title     string      `json:"title"`
	Interest  float64     `json:"interest"`
	At        int64       `json:"at"`
}

// DiggRequest casts a vote on a live server.
type DiggRequest struct {
	Voter digg.UserID `json:"voter"`
	At    int64       `json:"at"`
}

// DiggResponse reports the outcome of a vote.
type DiggResponse struct {
	InNetwork bool `json:"in_network"`
	Promoted  bool `json:"promoted"`
}

// ErrorResponse is the JSON error envelope.
type ErrorResponse struct {
	Error string `json:"error"`
}

func summarize(s *digg.Story) StorySummary {
	sum := StorySummary{
		ID:          s.ID,
		Title:       s.Title,
		Submitter:   s.Submitter,
		SubmittedAt: int64(s.SubmittedAt),
		Promoted:    s.Promoted,
		Votes:       s.VoteCount(),
	}
	if s.Promoted {
		sum.PromotedAt = int64(s.PromotedAt)
	}
	return sum
}

func detail(s *digg.Story) StoryDetail {
	d := StoryDetail{StorySummary: summarize(s)}
	d.VoteList = make([]VoteRecord, len(s.Votes))
	for i, v := range s.Votes {
		d.VoteList[i] = VoteRecord{Voter: v.Voter, At: int64(v.At)}
	}
	return d
}
