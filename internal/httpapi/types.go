// Package httpapi exposes the simulated Digg platform over HTTP/JSON
// and provides a typed client plus a concurrent scraper. Together they
// reproduce the paper's data-collection pipeline (a Fetch Technologies
// scraper against digg.com) against the simulator: cmd/diggd serves the
// corpus, cmd/diggscrape crawls it over TCP and writes the dataset
// files the analysis loads.
//
// # Read-path architecture
//
// The server splits traffic into a lock-free snapshot path and a
// locked fallback path.
//
// Every write — an HTTP POST, or a live.Service simulation step when
// one is attached — mutates the platform under the write lock and then
// republishes a ReadView: an immutable snapshot holding the front
// page, upcoming queue, per-story summaries, top-user list and a
// generation-derived ETag, all pre-serialized to JSON bytes. The view
// is published through an atomic pointer, so the hot read endpoints
// (/api/frontpage, /api/upcoming, /api/stories, /api/stories/{id},
// /api/topusers, /api/users/{id}) serve whole responses by writing
// cached bytes — no platform lock, no intermediate structs, no
// encoding/json reflection, and zero allocations per request.
// Publication is incremental: digg.Platform's generation and per-story
// version counters let a rebuild re-encode only stories that changed,
// and story details (vote lists) are encoded lazily on first request
// and cached per (story, version). /api/frontpage and /api/upcoming
// answer If-None-Match revalidations with 304 Not Modified.
//
// The shared RWMutex remains for everything that needs a point-in-time
// read of the mutable platform: POST /api/stories and
// /api/stories/{id}/digg (the writes themselves), snapshot rebuilds,
// detail-cache misses, and read requests that reach past the
// snapshot's pre-rendered depth (queue limits beyond 100, top-user
// limits beyond 1024). /api/users/{id}/fans and /friends read only the
// immutable social graph and take no lock at all.
//
// # Clocks: SetNowFunc vs AttachLive
//
// Use Server.AttachLive when a live.Service drives the platform: the
// server adopts the service's lock and simulation clock, republishes
// the snapshot after every step, and gains /api/stream and live
// /api/stats. Use Server.SetNowFunc when the platform is static but
// the site clock should still advance (cmd/diggd's default mode maps
// wall time onto sim minutes): nothing mutates, so no republication
// happens — the upcoming queue instead filters its pre-rendered
// entries against the clock at serve time. A bare SetNow remains for
// tests that pin the clock.
package httpapi

import "diggsim/internal/digg"

// StorySummary is the list-view representation of a story (front page
// and upcoming queue).
type StorySummary struct {
	ID          digg.StoryID `json:"id"`
	Title       string       `json:"title"`
	Submitter   digg.UserID  `json:"submitter"`
	SubmittedAt int64        `json:"submitted_at"`
	Promoted    bool         `json:"promoted"`
	PromotedAt  int64        `json:"promoted_at,omitempty"`
	Votes       int          `json:"votes"`
}

// VoteRecord is one vote in a story detail response, in chronological
// order with the submitter first — exactly the structure the paper
// scraped.
type VoteRecord struct {
	Voter digg.UserID `json:"voter"`
	At    int64       `json:"at"`
}

// StoryDetail is the full story view including its vote list.
type StoryDetail struct {
	StorySummary
	VoteList []VoteRecord `json:"vote_list"`
}

// StoryPage is a paginated story listing.
type StoryPage struct {
	Total   int            `json:"total"`
	Offset  int            `json:"offset"`
	Stories []StorySummary `json:"stories"`
}

// UserInfo describes a user: fan/friend counts and reputation rank
// (0 when unranked).
type UserInfo struct {
	ID      digg.UserID `json:"id"`
	Fans    int         `json:"fans"`
	Friends int         `json:"friends"`
	Rank    int         `json:"rank"`
}

// UserLinks lists the users watching (fans) or watched by (friends) a
// user.
type UserLinks struct {
	ID    digg.UserID   `json:"id"`
	Users []digg.UserID `json:"users"`
}

// SubmitRequest creates a story on a live server.
type SubmitRequest struct {
	Submitter digg.UserID `json:"submitter"`
	Title     string      `json:"title"`
	Interest  float64     `json:"interest"`
	At        int64       `json:"at"`
}

// DiggRequest casts a vote on a live server.
type DiggRequest struct {
	Voter digg.UserID `json:"voter"`
	At    int64       `json:"at"`
}

// DiggResponse reports the outcome of a vote.
type DiggResponse struct {
	InNetwork bool `json:"in_network"`
	Promoted  bool `json:"promoted"`
}

// ErrorResponse is the JSON error envelope.
type ErrorResponse struct {
	Error string `json:"error"`
}

func summarize(s *digg.Story) StorySummary {
	sum := StorySummary{
		ID:          s.ID,
		Title:       s.Title,
		Submitter:   s.Submitter,
		SubmittedAt: int64(s.SubmittedAt),
		Promoted:    s.Promoted,
		Votes:       s.VoteCount(),
	}
	if s.Promoted {
		sum.PromotedAt = int64(s.PromotedAt)
	}
	return sum
}

func detail(s *digg.Story) StoryDetail {
	d := StoryDetail{StorySummary: summarize(s)}
	d.VoteList = make([]VoteRecord, len(s.Votes))
	for i, v := range s.Votes {
		d.VoteList[i] = VoteRecord{Voter: v.Voter, At: int64(v.At)}
	}
	return d
}
