package httpapi

import (
	"context"
	"fmt"
	"iter"
	"sort"
	"sync"

	"diggsim/internal/apiv1"
	"diggsim/internal/dataset"
	"diggsim/internal/digg"
	"diggsim/internal/graph"
)

// ScrapeConfig controls the crawler.
type ScrapeConfig struct {
	// FrontPageLimit and UpcomingLimit bound how many stories to pull
	// from each queue (0 = a sensible default of 200/900, the paper's
	// sample sizes). Ignored when All is set.
	FrontPageLimit int
	UpcomingLimit  int
	// All walks the full /v1/stories listing by cursor instead of the
	// two queues, collecting the entire corpus (including stale
	// stories no longer visible in either queue).
	All bool
	// PageSize is the cursor page size used for listing crawls
	// (default 200).
	PageSize int
	// Workers is the number of concurrent fetchers (default 8).
	Workers int
	// TopUsers is how many reputation entries to fetch (default 1020).
	TopUsers int
}

func (c ScrapeConfig) withDefaults() ScrapeConfig {
	if c.FrontPageLimit <= 0 {
		c.FrontPageLimit = 200
	}
	if c.UpcomingLimit <= 0 {
		c.UpcomingLimit = 900
	}
	if c.PageSize <= 0 {
		c.PageSize = 200
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.TopUsers <= 0 {
		c.TopUsers = 1020
	}
	return c
}

// collectIDs drains a cursor-page iterator into story ids, stopping
// once limit ids are collected (limit <= 0 means exhaust the cursor).
// Generation-stamped cursors make the walk stable against the live
// writer: no story is seen twice and none is skipped within a
// generation, unlike the offset loops this replaced.
func collectIDs(pages iter.Seq2[apiv1.StoriesPage, error], limit int) ([]digg.StoryID, error) {
	var ids []digg.StoryID
	for page, err := range pages {
		if err != nil {
			return nil, err
		}
		for _, s := range page.Stories {
			ids = append(ids, s.ID)
			if limit > 0 && len(ids) >= limit {
				return ids, nil
			}
		}
	}
	return ids, nil
}

// Scrape crawls a diggd server the way the paper crawled Digg: list the
// front page and the upcoming queue, fetch each story's chronological
// vote list, then fetch the fan links of every user seen voting. The
// result converts to a dataset.Dataset for offline analysis. All
// listings iterate v1 cursors.
func Scrape(ctx context.Context, c *Client, cfg ScrapeConfig) (*dataset.Dataset, error) {
	cfg = cfg.withDefaults()
	var ids []digg.StoryID
	var err error
	if cfg.All {
		ids, err = collectIDs(c.Stories(ctx, cfg.PageSize), 0)
		if err != nil {
			return nil, fmt.Errorf("httpapi: listing stories: %w", err)
		}
	} else {
		front, err := collectIDs(c.FrontPagePages(ctx, cfg.PageSize), cfg.FrontPageLimit)
		if err != nil {
			return nil, fmt.Errorf("httpapi: scraping front page: %w", err)
		}
		upcoming, err := collectIDs(c.UpcomingPages(ctx, cfg.PageSize), cfg.UpcomingLimit)
		if err != nil {
			return nil, fmt.Errorf("httpapi: scraping upcoming queue: %w", err)
		}
		ids = append(front, upcoming...)
	}

	// Fetch story details concurrently.
	details, err := fetchAll(ctx, cfg.Workers, ids, func(ctx context.Context, id digg.StoryID) (StoryDetail, error) {
		return c.Story(ctx, id)
	})
	if err != nil {
		return nil, fmt.Errorf("httpapi: scraping stories: %w", err)
	}

	// Collect every voter, then fetch their fan links (the paper's
	// February-2008 augmentation of the social network snapshot).
	voterSet := make(map[digg.UserID]struct{})
	for _, d := range details {
		for _, v := range d.VoteList {
			voterSet[v.Voter] = struct{}{}
		}
	}
	voters := make([]digg.UserID, 0, len(voterSet))
	for u := range voterSet {
		voters = append(voters, u)
	}
	sort.Slice(voters, func(i, j int) bool { return voters[i] < voters[j] })

	type fanResult struct {
		user digg.UserID
		fans []digg.UserID
	}
	fanLists, err := fetchAll(ctx, cfg.Workers, voters, func(ctx context.Context, u digg.UserID) (fanResult, error) {
		fans, err := c.Fans(ctx, u)
		return fanResult{user: u, fans: fans}, err
	})
	if err != nil {
		return nil, fmt.Errorf("httpapi: scraping fan links: %w", err)
	}

	topUsers, err := c.TopUsers(ctx, cfg.TopUsers)
	if err != nil {
		return nil, fmt.Errorf("httpapi: scraping top users: %w", err)
	}

	// Assemble the dataset. Fan links become (fan -> user) edges.
	b := &graph.Builder{}
	for _, fr := range fanLists {
		b.EnsureNodes(int(fr.user) + 1)
		for _, fan := range fr.fans {
			if err := b.AddEdge(fan, fr.user); err != nil {
				return nil, err
			}
		}
	}
	var stories []*digg.Story
	seen := make(map[digg.StoryID]bool, len(details))
	for _, d := range details {
		if seen[d.ID] {
			continue // a story can sit in both crawled queues
		}
		seen[d.ID] = true
		s := &digg.Story{
			ID:          d.ID,
			Title:       d.Title,
			Submitter:   d.Submitter,
			SubmittedAt: digg.Minutes(d.SubmittedAt),
			Promoted:    d.Promoted,
		}
		if d.Promoted {
			s.PromotedAt = digg.Minutes(d.PromotedAt)
		}
		for _, v := range d.VoteList {
			b.EnsureNodes(int(v.Voter) + 1)
			s.Votes = append(s.Votes, digg.Vote{Voter: v.Voter, At: digg.Minutes(v.At)})
		}
		stories = append(stories, s)
	}
	sort.Slice(stories, func(i, j int) bool { return stories[i].ID < stories[j].ID })
	return dataset.Assemble(b.Build(), stories, topUsers), nil
}

// fetchAll runs fetch over items with a bounded worker pool, preserving
// input order in the results. The first error cancels the remaining
// work.
func fetchAll[T any, R any](ctx context.Context, workers int, items []T, fetch func(context.Context, T) (R, error)) ([]R, error) {
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]R, len(items))
	work := make(chan int)
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range work {
				r, err := fetch(ctx, items[idx])
				if err != nil {
					select {
					case errCh <- err:
					default:
					}
					cancel()
					return
				}
				results[idx] = r
			}
		}()
	}
	for i := range items {
		select {
		case <-ctx.Done():
		case work <- i:
			continue
		}
		break
	}
	close(work)
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
