package httpapi

// freshness_test.go pins the end-to-end freshness spans: an HTTP
// write is observed into the write→frontpage-visible histogram only
// after the republished snapshot actually serves it, live events
// carry their publish stamp through the broadcast ring into the
// publish→SSE-delivered histogram at flush time, and a primary commit
// rides a heartbeat's commit extension to the follower, which
// observes commit→follower-visible and surfaces the originating trace
// ID. Run with -race: every span crosses goroutines (handler vs
// stream writer vs replication tailer).

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"diggsim/internal/digg"
	"diggsim/internal/live"
	"diggsim/internal/obs"
)

// histCount reads an instrument's lifetime observation count from the
// shared default registry (the package instruments are process-global,
// so tests measure deltas, never absolutes).
func histCount(family, labels string) uint64 {
	snap := obs.Default.Histogram(family, labels, "").Snapshot()
	return snap.Count()
}

// waitDelta polls until the instrument's count has grown by at least
// want over base, or the deadline passes.
func waitDelta(t *testing.T, family, labels string, base, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for histCount(family, labels) < base+want {
		if time.Now().After(deadline) {
			t.Fatalf("%s{%s} count %d, want >= %d", family, labels,
				histCount(family, labels), base+want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestFreshnessSubmitToSSEDelivery drives the primary-side spans over
// real HTTP: a v1 submit must observe into the write→visible
// histogram exactly once and only after the read path serves the new
// story, and live events delivered over SSE must observe into the
// publish→delivered histogram.
func TestFreshnessSubmitToSSEDelivery(t *testing.T) {
	svc, c := newLiveTestServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Second)
	defer cancel()

	httpBase := histCount(obs.FreshnessFrontpageFamily, `source="http"`)
	stepBase := histCount(obs.FreshnessFrontpageFamily, `source="step"`)
	sseBase := histCount(obs.FreshnessSSEFamily, "")

	// One HTTP submit: one http-source observation, and the story is
	// already visible on the read path when the write returns (the
	// span closes after republish, so anything else would be a lie).
	st, err := c.Submit(ctx, SubmitRequest{Submitter: 1, Title: "fresh-e2e", Interest: 0.5, At: 101})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Story(ctx, st.ID); err != nil {
		t.Fatalf("story invisible after submit returned: %v", err)
	}
	if got := histCount(obs.FreshnessFrontpageFamily, `source="http"`); got != httpBase+1 {
		t.Fatalf("http freshness count = %d, want %d", got, httpBase+1)
	}

	// Stream a few simulated steps: delivered events must observe into
	// the SSE span, and event-producing steps into the step span. The
	// subscriber is a real HTTP/SSE client, so the observation happens
	// on the server's stream-writer goroutine while this goroutine
	// keeps stepping — the -race half of the test.
	var received atomic.Uint64
	streamErr := make(chan error, 1)
	go func() {
		streamErr <- c.Stream(ctx, func(ev live.Event) error {
			received.Add(1)
			return nil
		})
	}()
	time.Sleep(50 * time.Millisecond) // let the subscriber attach
	now := digg.Minutes(110)
	for received.Load() == 0 {
		select {
		case err := <-streamErr:
			t.Fatalf("stream ended early: %v", err)
		case <-ctx.Done():
			t.Fatal("no SSE event delivered before timeout")
		default:
		}
		now += 30
		if err := svc.StepTo(now); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitDelta(t, obs.FreshnessSSEFamily, "", sseBase, 1)
	waitDelta(t, obs.FreshnessFrontpageFamily, `source="step"`, stepBase, 1)
	cancel()
	if err := <-streamErr; err != nil && err != context.Canceled {
		t.Fatalf("stream error: %v", err)
	}
}

// TestFreshnessCommitToFollower pins the cross-process span: a write
// committed on the primary (trace ID stamped alongside) must, once
// applied and republished on the follower, produce a
// commit→follower-visible observation at heartbeat receipt — and the
// follower must surface that same trace ID, proving the join signal
// survives the wire.
func TestFreshnessCommitToFollower(t *testing.T) {
	h := newReplHarness(t, 10, 0)
	h.waitCaughtUp()

	followerBase := histCount(obs.FreshnessFollowerFamily, "")

	const traceID = 0x4f2a9c01d3e87b65
	h.primary.SetWriteTrace(traceID)
	if _, err := h.primary.Submit(7, "freshness-probe", 0.5, 5000); err != nil {
		t.Fatal(err)
	}
	h.waitCaughtUp()

	// The observation happens on the follower's tailer goroutine at
	// the next heartbeat after apply+republish; the harness heartbeats
	// every 5ms.
	waitDelta(t, obs.FreshnessFollowerFamily, "", followerBase, 1)

	want := fmt.Sprintf("%016x", uint64(traceID))
	deadline := time.Now().Add(5 * time.Second)
	for {
		sts := h.follower.ShardStatuses()
		if len(sts) == 1 && sts[0].CommitTraceID == want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower shard status trace = %+v, want commit_trace_id %q", sts, want)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The follower's /metrics exposition carries the family, and the
	// /v1/stats repl block surfaces the trace join key over HTTP.
	for path, substr := range map[string]string{
		"/metrics":  obs.FreshnessFollowerFamily,
		"/v1/stats": fmt.Sprintf(`"commit_trace_id":%q`, want),
	} {
		resp, err := http.Get(h.apiTS.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(body), substr) {
			t.Errorf("%s missing %s", path, substr)
		}
	}
}
