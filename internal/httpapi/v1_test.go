package httpapi

// v1_test.go exercises the versioned API surface end to end through
// the client SDK: every /v1 endpoint, cursor exhaustion, tampered
// cursors, the machine-readable error envelope, batch writes, client-
// side conditional GETs, and — the acceptance test for cursor
// stability — a full paginated crawl racing the live simulation
// writer.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"diggsim/internal/apiv1"
	"diggsim/internal/digg"
	"diggsim/internal/graph"
	"diggsim/internal/live"
	"diggsim/internal/rng"
	"diggsim/internal/shard"
)

func TestV1EndpointsEndToEnd(t *testing.T) {
	_, ts, c := newTestServer(t)
	ctx := context.Background()

	// Submit, digg, detail.
	created, err := c.Submit(ctx, SubmitRequest{Submitter: 0, Title: "hello v1", Interest: 0.5, At: 10})
	if err != nil {
		t.Fatal(err)
	}
	if created.Title != "hello v1" || created.Votes != 1 {
		t.Errorf("created = %+v", created)
	}
	res, err := c.Digg(ctx, created.ID, DiggRequest{Voter: 1, At: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !res.InNetwork || res.Votes != 2 {
		t.Errorf("digg = %+v", res)
	}
	got, err := c.Story(ctx, created.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.VoteList) != 2 || got.VoteList[0].Voter != 0 {
		t.Errorf("story = %+v", got)
	}

	// Typed errors carry stable codes through errors.As.
	var apiErr *apiv1.Error
	if _, err := c.Story(ctx, 999); !errors.As(err, &apiErr) || apiErr.Code != apiv1.CodeNotFound {
		t.Errorf("missing story err = %v", err)
	}
	if _, err := c.Digg(ctx, created.ID, DiggRequest{Voter: 1, At: 12}); !errors.As(err, &apiErr) ||
		apiErr.Code != apiv1.CodeAlreadyVoted || apiErr.StatusCode != http.StatusConflict {
		t.Errorf("duplicate vote err = %v", err)
	}
	if _, err := c.Submit(ctx, SubmitRequest{Submitter: 999, Title: "x", At: 1}); !errors.As(err, &apiErr) ||
		apiErr.Code != apiv1.CodeUnknownUser {
		t.Errorf("unknown submitter err = %v", err)
	}

	// Malformed query params are invalid_argument.
	resp, err := http.Get(ts.URL + "/v1/stories?limit=-3")
	if err != nil {
		t.Fatal(err)
	}
	var env apiv1.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || env.Error == nil || env.Error.Code != apiv1.CodeInvalidArgument {
		t.Errorf("negative limit: status=%d envelope=%+v", resp.StatusCode, env.Error)
	}
	// Overflowing limit too.
	resp, err = http.Get(ts.URL + "/v1/upcoming?limit=99999999999999999999")
	if err != nil {
		t.Fatal(err)
	}
	env = apiv1.ErrorEnvelope{}
	_ = json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || env.Error == nil || env.Error.Code != apiv1.CodeInvalidArgument {
		t.Errorf("overflow limit: status=%d envelope=%+v", resp.StatusCode, env.Error)
	}

	// Queues, users, links, topusers.
	up, err := c.Upcoming(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(up) != 1 || up[0].ID != created.ID {
		t.Errorf("upcoming = %+v", up)
	}
	info, err := c.User(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Fans != 2 {
		t.Errorf("user = %+v", info)
	}
	fans, err := c.Fans(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fans) != 2 || fans[0] != 1 || fans[1] != 2 {
		t.Errorf("fans = %v", fans)
	}
	friends, err := c.Friends(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(friends) != 1 || friends[0] != 0 {
		t.Errorf("friends = %v", friends)
	}
	// Promote (threshold 3), then the front page and topusers fill.
	if _, err := c.Digg(ctx, created.ID, DiggRequest{Voter: 5, At: 12}); err != nil {
		t.Fatal(err)
	}
	fp, err := c.FrontPage(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(fp) != 1 || !fp[0].Promoted {
		t.Errorf("front page = %+v", fp)
	}
	top, err := c.TopUsers(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 || top[0] != 0 {
		t.Errorf("topusers = %v", top)
	}
	if _, err := c.Stats(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestV1CursorExhaustion walks every paginated listing to the end with
// tiny pages and checks coverage, order, and that the final page omits
// the cursor.
func TestV1CursorExhaustion(t *testing.T) {
	g, err := graph.FromEdgeList(10, [][2]graph.NodeID{{1, 0}, {2, 0}, {3, 0}})
	if err != nil {
		t.Fatal(err)
	}
	p := digg.NewPlatform(g, digg.NeverPromote{})
	const n = 23
	for i := 0; i < n; i++ {
		st := &digg.Story{
			ID: digg.StoryID(i), Title: fmt.Sprintf("s%d", i), Submitter: digg.UserID(i % 10),
			SubmittedAt: digg.Minutes(i),
			Votes:       []digg.Vote{{Voter: digg.UserID(i % 10), At: digg.Minutes(i)}},
		}
		st.Promoted = i%3 == 0
		if st.Promoted {
			st.PromotedAt = digg.Minutes(i + 1)
		}
		if err := p.InstallStory(st); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewServer(p, digg.Minutes(n), nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	c.Backoff = time.Millisecond
	ctx := context.Background()

	// Full story listing: ascending, complete, one visit each.
	var ids []int
	pages := 0
	for page, err := range c.Stories(ctx, 7) {
		if err != nil {
			t.Fatal(err)
		}
		pages++
		if page.Total != n {
			t.Fatalf("total = %d", page.Total)
		}
		for _, s := range page.Stories {
			ids = append(ids, int(s.ID))
		}
	}
	if pages != 4 || len(ids) != n {
		t.Fatalf("stories crawl: %d pages, %d ids", pages, len(ids))
	}
	for i, id := range ids {
		if id != i {
			t.Fatalf("stories order: %v", ids)
		}
	}

	// Upcoming: descending ids, exactly the unpromoted set.
	var upIDs []int
	for page, err := range c.UpcomingPages(ctx, 4) {
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range page.Stories {
			upIDs = append(upIDs, int(s.ID))
		}
	}
	wantUp := 0
	for i := n - 1; i >= 0; i-- {
		if i%3 != 0 {
			if upIDs[wantUp] != i {
				t.Fatalf("upcoming crawl: %v", upIDs)
			}
			wantUp++
		}
	}
	if wantUp != len(upIDs) {
		t.Fatalf("upcoming crawl covered %d of %d", len(upIDs), wantUp)
	}

	// Front page: newest promotion first, exactly the promoted set.
	var fpIDs []int
	for page, err := range c.FrontPagePages(ctx, 3) {
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range page.Stories {
			fpIDs = append(fpIDs, int(s.ID))
		}
	}
	wantFP := 0
	for i := n - 1; i >= 0; i-- {
		if i%3 == 0 {
			if fpIDs[wantFP] != i {
				t.Fatalf("frontpage crawl: %v", fpIDs)
			}
			wantFP++
		}
	}
	if wantFP != len(fpIDs) {
		t.Fatalf("frontpage crawl covered %d of %d", len(fpIDs), wantFP)
	}

	// Fans: cursor pages of the immutable link list.
	var fans []digg.UserID
	for page, err := range c.FansPages(ctx, 0, 2) {
		if err != nil {
			t.Fatal(err)
		}
		if page.Total != 3 {
			t.Fatalf("fans total = %d", page.Total)
		}
		fans = append(fans, page.Users...)
	}
	if len(fans) != 3 || fans[0] != 1 || fans[2] != 3 {
		t.Fatalf("fans crawl = %v", fans)
	}
}

// TestV1DeepCursorFallback pushes both queues past the pre-rendered
// snapshot depth, so cursor pages must cross from the snapshot path to
// the locked fallback mid-crawl and still cover everything exactly
// once.
func TestV1DeepCursorFallback(t *testing.T) {
	g, err := graph.FromEdgeList(10, [][2]graph.NodeID{{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	p := digg.NewPlatform(g, digg.NeverPromote{})
	const n = 2*maxRenderQueue + 40
	for i := 0; i < n; i++ {
		st := &digg.Story{
			ID: digg.StoryID(i), Title: fmt.Sprintf("s%d", i), Submitter: digg.UserID(i % 10),
			SubmittedAt: digg.Minutes(i),
			Votes:       []digg.Vote{{Voter: digg.UserID(i % 10), At: digg.Minutes(i)}},
		}
		st.Promoted = i%2 == 0
		if st.Promoted {
			st.PromotedAt = digg.Minutes(i + 1)
		}
		if err := p.InstallStory(st); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewServer(p, digg.Minutes(n), nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	c.Backoff = time.Millisecond
	ctx := context.Background()

	var fpIDs, upIDs []int
	for page, err := range c.FrontPagePages(ctx, 30) {
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range page.Stories {
			fpIDs = append(fpIDs, int(s.ID))
		}
	}
	for page, err := range c.UpcomingPages(ctx, 30) {
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range page.Stories {
			upIDs = append(upIDs, int(s.ID))
		}
	}
	if len(fpIDs) != n/2 || len(upIDs) != n/2 {
		t.Fatalf("coverage: %d front, %d upcoming, want %d each", len(fpIDs), len(upIDs), n/2)
	}
	for k := 1; k < len(fpIDs); k++ {
		if fpIDs[k] >= fpIDs[k-1] {
			t.Fatalf("frontpage order broke at %d: %v...", k, fpIDs[:k+1])
		}
	}
	for k := 1; k < len(upIDs); k++ {
		if upIDs[k] >= upIDs[k-1] {
			t.Fatalf("upcoming order broke at %d: %v...", k, upIDs[:k+1])
		}
	}
}

// TestV1InvalidCursor tampers with a genuine cursor and replays
// cursors across endpoints; both must come back as invalid_cursor.
func TestV1InvalidCursor(t *testing.T) {
	_, ts, c := newTestServer(t)
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, err := c.Submit(ctx, SubmitRequest{Submitter: 0, Title: "t", At: int64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	page, err := c.StoriesAt(ctx, "", 2)
	if err != nil || page.NextCursor == "" {
		t.Fatalf("first page: %+v err=%v", page, err)
	}

	expectInvalid := func(url string) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		var env apiv1.ErrorEnvelope
		_ = json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || env.Error == nil || env.Error.Code != apiv1.CodeInvalidCursor {
			t.Errorf("%s: status=%d envelope=%+v", url, resp.StatusCode, env.Error)
		}
	}

	// Flip a character of the genuine token.
	tok := []byte(page.NextCursor)
	if tok[0] == 'A' {
		tok[0] = 'B'
	} else {
		tok[0] = 'A'
	}
	expectInvalid(ts.URL + "/v1/stories?cursor=" + string(tok))
	// Garbage.
	expectInvalid(ts.URL + "/v1/stories?cursor=garbage")
	// Replay against a different endpoint family.
	expectInvalid(ts.URL + "/v1/upcoming?cursor=" + string(page.NextCursor))

	// The typed client surfaces the code too.
	var apiErr *apiv1.Error
	if _, err := c.StoriesAt(ctx, apiv1.Cursor(tok), 2); !errors.As(err, &apiErr) ||
		apiErr.Code != apiv1.CodeInvalidCursor {
		t.Errorf("client tampered-cursor err = %v", err)
	}
}

// TestV1RateLimitEnvelope checks the 429 path speaks the v1 envelope
// with a computed Retry-After in both the header and the body.
func TestV1RateLimitEnvelope(t *testing.T) {
	srv, _, _ := newTestServer(t)
	limiter := NewRateLimiter(0.5, 1) // one request, then a 2s refill
	ts := httptest.NewServer(limiter.Middleware(srv.Handler()))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var env apiv1.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request status %d", resp.StatusCode)
	}
	if env.Error == nil || env.Error.Code != apiv1.CodeRateLimited {
		t.Fatalf("envelope = %+v", env.Error)
	}
	if env.Error.RetryAfter < 1 || env.Error.RetryAfter > 3 {
		t.Errorf("retry_after = %d, want ~2s from the GCRA state", env.Error.RetryAfter)
	}
	if h := resp.Header.Get("Retry-After"); h == "" || h == "0" {
		t.Errorf("Retry-After header = %q", h)
	}
}

// TestV1BatchWrites exercises both batch endpoints: amortized success,
// per-item errors that do not abort the batch, and whole-batch
// rejection of oversized or empty requests.
func TestV1BatchWrites(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()

	subs, err := c.SubmitBatch(ctx, apiv1.BatchSubmitRequest{Stories: []SubmitRequest{
		{Submitter: 0, Title: "b0", Interest: 0.5, At: 10},
		{Submitter: 999, Title: "bad", At: 10}, // unknown user: per-item error
		{Submitter: 1, Title: "b1", Interest: 0.5, At: 11},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(subs.Results) != 3 {
		t.Fatalf("results = %+v", subs.Results)
	}
	if subs.Results[0].Story == nil || subs.Results[2].Story == nil {
		t.Fatalf("good submissions failed: %+v", subs.Results)
	}
	if subs.Results[1].Error == nil || subs.Results[1].Error.Code != apiv1.CodeUnknownUser {
		t.Fatalf("bad submission error = %+v", subs.Results[1].Error)
	}
	st0 := subs.Results[0].Story.ID

	diggs, err := c.DiggBatch(ctx, apiv1.BatchDiggRequest{Diggs: []apiv1.BatchDiggItem{
		{Story: st0, Voter: 1, At: 12},
		{Story: st0, Voter: 1, At: 13}, // duplicate: per-item error
		{Story: st0, Voter: 5, At: 14}, // third vote promotes (threshold 3)
		{Story: 999, Voter: 2, At: 14}, // missing story: per-item error
	}})
	if err != nil {
		t.Fatal(err)
	}
	r := diggs.Results
	if len(r) != 4 {
		t.Fatalf("results = %+v", r)
	}
	if !r[0].InNetwork || r[0].Votes != 2 {
		t.Errorf("vote 0 = %+v", r[0])
	}
	if r[1].Error == nil || r[1].Error.Code != apiv1.CodeAlreadyVoted {
		t.Errorf("vote 1 error = %+v", r[1].Error)
	}
	if !r[2].Promoted || r[2].Votes != 3 {
		t.Errorf("vote 2 = %+v", r[2])
	}
	if r[3].Error == nil || r[3].Error.Code != apiv1.CodeNotFound {
		t.Errorf("vote 3 error = %+v", r[3].Error)
	}

	// The batch's writes are immediately visible (republish happened).
	fp, err := c.FrontPage(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(fp) != 1 || fp[0].ID != st0 {
		t.Errorf("front page after batch = %+v", fp)
	}

	// Whole-batch validation.
	var apiErr *apiv1.Error
	if _, err := c.DiggBatch(ctx, apiv1.BatchDiggRequest{}); !errors.As(err, &apiErr) ||
		apiErr.Code != apiv1.CodeInvalidArgument {
		t.Errorf("empty batch err = %v", err)
	}
	over := apiv1.BatchDiggRequest{Diggs: make([]apiv1.BatchDiggItem, apiv1.MaxBatch+1)}
	if _, err := c.DiggBatch(ctx, over); !errors.As(err, &apiErr) ||
		apiErr.Code != apiv1.CodeInvalidArgument {
		t.Errorf("oversized batch err = %v", err)
	}
}

// counting304Transport counts 304 revalidations flowing through the
// client.
type counting304Transport struct {
	n304 atomic.Int32
}

func (t *counting304Transport) RoundTrip(r *http.Request) (*http.Response, error) {
	resp, err := http.DefaultTransport.RoundTrip(r)
	if err == nil && resp.StatusCode == http.StatusNotModified {
		t.n304.Add(1)
	}
	return resp, err
}

// TestV1ClientConditionalGet checks the SDK replays captured ETags:
// an unchanged front page costs a 304 and is served from the client
// cache, and a write invalidates it transparently.
func TestV1ClientConditionalGet(t *testing.T) {
	_, ts, _ := newTestServer(t)
	ct := &counting304Transport{}
	c := NewClient(ts.URL)
	c.HTTPClient = &http.Client{Transport: ct, Timeout: 10 * time.Second}
	c.Backoff = time.Millisecond
	ctx := context.Background()

	if _, err := c.Submit(ctx, SubmitRequest{Submitter: 0, Title: "a", At: 10}); err != nil {
		t.Fatal(err)
	}
	first, err := c.Upcoming(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Upcoming(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ct.n304.Load() != 1 {
		t.Fatalf("revalidations = %d, want 1", ct.n304.Load())
	}
	if len(first) != 1 || len(second) != 1 || first[0].ID != second[0].ID {
		t.Fatalf("cached page diverged: %+v vs %+v", first, second)
	}
	// A write moves the generation; the next GET misses and re-caches.
	if _, err := c.Submit(ctx, SubmitRequest{Submitter: 1, Title: "b", At: 11}); err != nil {
		t.Fatal(err)
	}
	third, err := c.Upcoming(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ct.n304.Load() != 1 {
		t.Fatalf("post-write revalidations = %d, want still 1 (must miss)", ct.n304.Load())
	}
	if len(third) != 2 {
		t.Fatalf("post-write page = %+v", third)
	}
}

// TestV1CursorCrawlUnderLiveWriter is the acceptance test for
// generation-stamped cursors: while the live simulation writer
// continuously submits, votes and promotes, full paginated crawls of
// /v1/stories, /v1/upcoming and /v1/frontpage must show no duplicate
// and no skipped story. Run with -race this also checks the locking
// discipline of the v1 read paths.
func TestV1CursorCrawlUnderLiveWriter(t *testing.T) {
	runCursorCrawlUnderLiveWriter(t, func(g *graph.Graph, pol digg.PromotionPolicy) digg.Store {
		return digg.NewPlatform(g, pol)
	})
}

// TestV1CursorCrawlUnderLiveWriterSharded runs the identical crawl
// assertions against a 4-way sharded store: the shard-generation
// vector in cursors and the merged scatter-gather views must preserve
// every pagination guarantee the single-platform store gives.
func TestV1CursorCrawlUnderLiveWriterSharded(t *testing.T) {
	runCursorCrawlUnderLiveWriter(t, func(g *graph.Graph, pol digg.PromotionPolicy) digg.Store {
		return shard.New(g, pol, 4)
	})
}

func runCursorCrawlUnderLiveWriter(t *testing.T, newStore func(*graph.Graph, digg.PromotionPolicy) digg.Store) {
	g, err := graph.PreferentialAttachment(rng.New(7), 1500, 4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	p := newStore(g, &digg.ClassicPromotion{VoteThreshold: 12, Window: digg.Day})
	r := rng.New(8)
	for i := 0; i < 120; i++ {
		st, err := p.Submit(digg.UserID(r.Intn(1500)), fmt.Sprintf("seed-%d", i), 0.6, digg.Minutes(i))
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < 4+r.Intn(12); v++ {
			_, _ = p.Digg(st.ID, digg.UserID(r.Intn(1500)), digg.Minutes(i+v+1))
		}
	}
	svc, err := live.NewService(p, live.Config{Seed: 11, SubmissionsPerHour: 300, StartAt: 200})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(p, 200, nil)
	srv.AttachLive(svc)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		now := digg.Minutes(200)
		for {
			select {
			case <-stop:
				return
			default:
				now += 2
				if err := svc.StepTo(now); err != nil {
					t.Error(err)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}
	}()
	defer func() {
		close(stop)
		<-writerDone
	}()

	c := NewClient(ts.URL)
	c.Backoff = time.Millisecond
	ctx := context.Background()

	for round := 0; round < 3; round++ {
		// Stories: every id that existed when the crawl started must be
		// seen exactly once, in ascending order. The crawl stops once it
		// has covered the starting total — the live writer appends
		// faster than HTTP pages drain, so chasing the tail would never
		// terminate (which is itself evidence the cursor walk is live).
		startTotal := -1
		var ids []int
		for page, err := range c.Stories(ctx, 9) {
			if err != nil {
				t.Fatal(err)
			}
			if startTotal < 0 {
				startTotal = page.Total
			}
			for _, s := range page.Stories {
				ids = append(ids, int(s.ID))
			}
			if len(ids) >= startTotal {
				break
			}
		}
		for i := 1; i < len(ids); i++ {
			if ids[i] <= ids[i-1] {
				t.Fatalf("stories crawl duplicate/regression at %d: %v", i, ids[i-1:i+1])
			}
		}
		if len(ids) < startTotal {
			t.Fatalf("stories crawl skipped: saw %d of %d", len(ids), startTotal)
		}
		for i := 0; i < startTotal; i++ {
			if ids[i] != i {
				t.Fatalf("stories crawl missed id %d (got %d)", i, ids[i])
			}
		}

		// Upcoming: strictly descending ids — a story promoted away
		// between pages shifts nothing and nothing repeats. The page
		// budget bounds the crawl against the unbounded live corpus;
		// the invariant holds for however far it got.
		prev := int64(1 << 62)
		pages := 0
		for page, err := range c.UpcomingPages(ctx, 7) {
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range page.Stories {
				if int64(s.ID) >= prev {
					t.Fatalf("upcoming crawl duplicate/skip: id %d after %d", s.ID, prev)
				}
				prev = int64(s.ID)
				if s.Promoted {
					t.Fatalf("promoted story %d served in upcoming", s.ID)
				}
			}
			if pages++; pages >= 40 {
				break
			}
		}

		// Front page: promotion-order indices are append-only, so a
		// crawl must never repeat a story even as promotions land.
		seen := map[int]bool{}
		pages = 0
		for page, err := range c.FrontPagePages(ctx, 7) {
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range page.Stories {
				if seen[int(s.ID)] {
					t.Fatalf("frontpage crawl duplicate story %d", s.ID)
				}
				seen[int(s.ID)] = true
				if !s.Promoted {
					t.Fatalf("unpromoted story %d on front page", s.ID)
				}
			}
			if pages++; pages >= 40 {
				break
			}
		}
		if len(seen) == 0 {
			t.Fatal("frontpage crawl saw nothing")
		}
	}
}

// TestV1LegacyAliasesAgree spot-checks that an /api/* alias and its
// /v1/* counterpart serve the same stories.
func TestV1LegacyAliasesAgree(t *testing.T) {
	_, ts, c := newTestServer(t)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := c.Submit(ctx, SubmitRequest{Submitter: 0, Title: fmt.Sprintf("s%d", i), At: int64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	legacy, err := http.Get(ts.URL + "/api/upcoming?limit=10")
	if err != nil {
		t.Fatal(err)
	}
	var legacyStories []StorySummary
	if err := json.NewDecoder(legacy.Body).Decode(&legacyStories); err != nil {
		t.Fatal(err)
	}
	legacy.Body.Close()
	v1Stories, err := c.Upcoming(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(legacyStories) != len(v1Stories) {
		t.Fatalf("alias drift: %d legacy vs %d v1", len(legacyStories), len(v1Stories))
	}
	for i := range v1Stories {
		if legacyStories[i] != v1Stories[i] {
			t.Fatalf("alias story %d drifted: %+v vs %+v", i, legacyStories[i], v1Stories[i])
		}
	}
	if !strings.HasPrefix(legacy.Header.Get("ETag"), `"g`) {
		t.Errorf("legacy ETag = %q", legacy.Header.Get("ETag"))
	}
}
