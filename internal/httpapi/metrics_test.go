package httpapi

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"diggsim/internal/digg"
	"diggsim/internal/durable"
	"diggsim/internal/graph"
	"diggsim/internal/shard"
	"diggsim/internal/wal"
)

// TestMetricsExpositionLint boots a server over a sharded durable
// store, drives every instrumented path (reads, a batch write through
// the WAL, a checkpoint, a snapshot rebuild), scrapes GET /metrics,
// and lints the whole document against the text exposition format
// 0.0.4: every sample belongs to a declared family, TYPE values are
// legal, histogram series are cumulative and monotone in le with a
// +Inf bucket equal to _count, and the generation metrics — which can
// reset when a fresh data directory replaces an old one — are typed
// gauge, not counter.
func TestMetricsExpositionLint(t *testing.T) {
	g, err := graph.FromEdgeList(10, [][2]graph.NodeID{{1, 0}, {2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	p := digg.NewPlatform(g, &digg.ClassicPromotion{VoteThreshold: 3, Window: digg.Day})
	for i := 0; i < 4; i++ {
		if _, err := p.Submit(0, fmt.Sprintf("story-%d", i), 0.5, digg.Minutes(10+i)); err != nil {
			t.Fatal(err)
		}
	}
	store, err := shard.Create(t.TempDir(), p, 2, []byte(`{"test":"exposition-lint"}`),
		durable.Options{Sync: wal.SyncAlways, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := NewServer(store, 100, nil)
	srv.AttachMetrics(NewMetrics())
	h := srv.Handler()

	do := func(method, path, body string, want int) {
		t.Helper()
		var req *http.Request
		if body != "" {
			req = httptest.NewRequest(method, path, strings.NewReader(body))
		} else {
			req = httptest.NewRequest(method, path, nil)
		}
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != want {
			t.Fatalf("%s %s: status %d, want %d (%s)", method, path, w.Code, want, w.Body.String())
		}
	}
	// Reads populate the http_request_seconds route classes; the batch
	// digg drives the bulk write path (per-shard apply + WAL append +
	// fsync) and triggers a snapshot rebuild; the checkpoint drives the
	// durable build/write pair.
	do(http.MethodGet, "/api/frontpage?limit=5", "", http.StatusOK)
	do(http.MethodGet, "/api/stories/0", "", http.StatusOK)
	do(http.MethodPost, "/v1/diggs:batch",
		`{"diggs":[{"story":0,"voter":1,"at":20},{"story":1,"voter":2,"at":21},{"story":2,"voter":3,"at":22}]}`,
		http.StatusOK)
	if err := store.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want exposition format 0.0.4", ct)
	}

	types := lintExposition(t, w.Body.String())

	// The acceptance-criteria histogram families must all be present
	// and typed histogram after the traffic above.
	for _, fam := range []string{
		"diggsim_http_request_seconds",
		"diggsim_wal_append_seconds",
		"diggsim_wal_fsync_seconds",
		"diggsim_shard_apply_seconds",
		"diggsim_snapshot_rebuild_seconds",
		"diggsim_checkpoint_build_seconds",
		"diggsim_checkpoint_write_seconds",
	} {
		if got := types[fam]; got != "histogram" {
			t.Errorf("family %s: type %q, want histogram", fam, got)
		}
	}
	// Generations reset with a fresh data directory: gauges, not
	// counters (the regression this test pins down).
	for _, fam := range []string{"diggsim_store_generation", "diggsim_shard_generation"} {
		if got := types[fam]; got != "gauge" {
			t.Errorf("family %s: type %q, want gauge", fam, got)
		}
	}
}

var promNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// lintExposition parses an exposition document, failing the test on
// any format violation, and returns each declared family's type.
func lintExposition(t *testing.T, text string) map[string]string {
	t.Helper()
	types := make(map[string]string)
	// histogram family -> label-set (minus le) -> le -> cumulative count
	buckets := make(map[string]map[string]map[float64]float64)
	counts := make(map[string]map[string]float64) // _count samples
	sums := make(map[string]map[string]bool)      // _sum seen

	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Errorf("line %d: empty line in exposition", ln+1)
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Errorf("line %d: malformed TYPE line %q", ln+1, line)
				continue
			}
			name, typ := fields[2], fields[3]
			if !promNameRe.MatchString(name) {
				t.Errorf("line %d: bad metric name %q", ln+1, name)
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				t.Errorf("line %d: illegal type %q for %s", ln+1, typ, name)
			}
			if _, dup := types[name]; dup {
				t.Errorf("line %d: family %s declared twice", ln+1, name)
			}
			types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("line %d: unknown comment %q", ln+1, line)
			continue
		}

		// Sample line: name[{labels}] value
		labels := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.IndexByte(line, '}')
			if j < i {
				t.Errorf("line %d: unbalanced braces in %q", ln+1, line)
				continue
			}
			labels = line[i+1 : j]
			line = line[:i] + line[j+1:]
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("line %d: sample needs one value, got %q", ln+1, line)
			continue
		}
		name := fields[0]
		val, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Errorf("line %d: unparseable value %q: %v", ln+1, fields[1], err)
			continue
		}

		family := name
		suffix := ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, sfx)
			if trimmed != name && types[trimmed] == "histogram" {
				family, suffix = trimmed, sfx
				break
			}
		}
		typ, declared := types[family]
		if !declared {
			t.Errorf("line %d: sample %s before any TYPE declaration", ln+1, name)
			continue
		}
		if (typ == "histogram") != (suffix != "") {
			t.Errorf("line %d: sample %s does not match its family type %s", ln+1, name, typ)
			continue
		}

		switch suffix {
		case "_bucket":
			le := ""
			var rest []string
			for _, pair := range splitLabels(labels) {
				if v, ok := strings.CutPrefix(pair, "le="); ok {
					le = strings.Trim(v, `"`)
				} else {
					rest = append(rest, pair)
				}
			}
			if le == "" {
				t.Errorf("line %d: bucket without le label: %q", ln+1, labels)
				continue
			}
			bound := inf
			if le != "+Inf" {
				if bound, err = strconv.ParseFloat(le, 64); err != nil {
					t.Errorf("line %d: unparseable le %q", ln+1, le)
					continue
				}
			}
			key := strings.Join(rest, ",")
			if buckets[family] == nil {
				buckets[family] = make(map[string]map[float64]float64)
			}
			if buckets[family][key] == nil {
				buckets[family][key] = make(map[float64]float64)
			}
			buckets[family][key][bound] = val
		case "_count":
			if counts[family] == nil {
				counts[family] = make(map[string]float64)
			}
			counts[family][labels] = val
		case "_sum":
			if sums[family] == nil {
				sums[family] = make(map[string]bool)
			}
			sums[family][labels] = true
		}
	}

	// Cross-sample histogram invariants: per series, cumulative counts
	// are monotone in le, +Inf is present and equals _count, and _sum
	// exists.
	for family, series := range buckets {
		for key, byLE := range series {
			les := make([]float64, 0, len(byLE))
			for le := range byLE {
				les = append(les, le)
			}
			sort.Float64s(les)
			prev := -1.0
			for _, le := range les {
				if byLE[le] < prev {
					t.Errorf("%s{%s}: bucket counts not cumulative at le=%g", family, key, le)
				}
				prev = byLE[le]
			}
			infCount, ok := byLE[inf]
			if !ok {
				t.Errorf("%s{%s}: no le=\"+Inf\" bucket", family, key)
				continue
			}
			if got := counts[family][key]; got != infCount {
				t.Errorf("%s{%s}: _count %g != +Inf bucket %g", family, key, got, infCount)
			}
			if !sums[family][key] {
				t.Errorf("%s{%s}: missing _sum", family, key)
			}
		}
	}
	return types
}

// inf is the le bound used for +Inf buckets in the lint maps.
var inf = func() float64 {
	v, _ := strconv.ParseFloat("+Inf", 64)
	return v
}()

// splitLabels splits raw label text on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
