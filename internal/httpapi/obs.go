package httpapi

// obs.go wires the serving layer into the internal/obs core: per-
// route-class latency histograms wrapped around every handler at mount
// time, snapshot-rebuild instruments, the Tracer middleware that mints
// X-Trace-Id headers and retains slow traces, and the GET /debug/obs
// dump.
//
// The per-route histograms live inside Server.Handler's route table —
// not in a middleware — so the instrumented path is exactly the one
// the 0-alloc read benchmarks drive: a timed handler costs two
// monotonic clock reads and two uncontended atomic adds per request,
// nothing more. Trace-ID minting allocates (a 16-byte header string),
// so it lives in the separate Tracer middleware that cmd/diggd stacks
// outside the router; servers embedded in benchmarks or tests that
// skip the middleware keep the allocation-free path.

import (
	"log/slog"
	"net/http"
	"sync"
	"time"

	"diggsim/internal/apiv1"
	"diggsim/internal/obs"
)

// Snapshot-rebuild instruments (see snapshot.go's republish/build).
var (
	histSnapshotRebuild = obs.Default.Histogram("diggsim_snapshot_rebuild_seconds", "",
		"Read-view rebuild latency per republish, including re-encoding changed stories.")
	ctrStoriesEncoded = obs.Default.Counter("diggsim_snapshot_stories_encoded_total",
		"Story summaries re-encoded across snapshot rebuilds (cache misses; unchanged stories are reused).")
	gaugeViewGen = obs.Default.Gauge("diggsim_snapshot_view_generation",
		"Store generation of the currently published read view.")
)

// Freshness instruments: the write→visibility spans this serving layer
// closes. Registered at package load so the families export from every
// node (zero series are still emitted), which lets dashboards and the
// burn evaluator reference them unconditionally.
var (
	// histFreshHTTP measures HTTP write accepted → republished snapshot
	// visible: the window in which a client that wrote could still read
	// stale data. Observed once per write request, after republish —
	// off the hot read path entirely.
	histFreshHTTP = obs.Default.Histogram(obs.FreshnessFrontpageFamily, `source="http"`,
		"Write accepted to republished front-page snapshot visible, by write source.")
	// histFreshSSE measures bus publish → SSE frame flushed: how stale
	// an event already was when it left for a subscriber.
	histFreshSSE = obs.Default.Histogram(obs.FreshnessSSEFamily, "",
		"Event published on the bus to its SSE frame flushed to the subscriber connection.")
)

// routeHist returns the request-latency histogram of one route class.
// Both API generations of an endpoint (/api/* alias and /v1/*) share a
// class: they serve the same read path, and the class cardinality is
// what an operator dashboards by.
func routeHist(class string) *obs.Histogram {
	return obs.Default.Histogram("diggsim_http_request_seconds",
		`route="`+class+`"`, "HTTP request latency by route class.")
}

// timed wraps a handler with its route class's latency histogram. The
// histogram is resolved once at mount time; per request the wrapper
// adds two monotonic clock reads (obs.Now — cheaper than time.Now,
// which also reads the wall clock) and one Observe (two atomic adds),
// keeping instrumented handlers on the allocation-free path.
func timed(class string, fn http.HandlerFunc) http.HandlerFunc {
	h := routeHist(class)
	return func(w http.ResponseWriter, r *http.Request) {
		start := obs.Now()
		fn(w, r)
		h.Observe(time.Duration(obs.Now() - start))
	}
}

// Tracer is the tracing middleware: it mints a trace ID per request,
// exposes it as the X-Trace-Id response header, attaches a pooled
// obs.Trace to the request context so handlers can record spans
// (obs.SpanFrom), and — for requests at or above SlowThreshold —
// retains the finished trace in the slow-trace ring and logs one
// structured line. Place it outside the router and inside any
// rate-limiting middleware whose rejections should not be traced.
type Tracer struct {
	// SlowThreshold is the duration at or above which a request's trace
	// is retained and logged. Zero disables slow-trace capture (the
	// header and context trace are still provided).
	SlowThreshold time.Duration
	// Ring receives slow traces; nil means obs.DefaultRing.
	Ring *obs.TraceRing
	// Log, when non-nil, receives one Warn line per slow request.
	Log *slog.Logger

	pool sync.Pool
}

// NewTracer returns a tracer with the given slow threshold, recording
// into obs.DefaultRing and logging slow requests to log (nil disables
// logging).
func NewTracer(slow time.Duration, log *slog.Logger) *Tracer {
	return &Tracer{SlowThreshold: slow, Ring: obs.DefaultRing, Log: log}
}

// Middleware wraps next with tracing. A client-supplied X-Trace-Id is
// adopted when it is exactly 16 lowercase hex digits (the format this
// server mints), so one trace ID follows a request across retries and
// process boundaries; anything else is replaced, never echoed —
// reflecting arbitrary client bytes into the response header would be
// an injection surface.
func (t *Tracer) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		var idStr string
		id, ok := obs.ParseTraceID(r.Header.Get("X-Trace-Id"))
		if ok {
			idStr = r.Header.Get("X-Trace-Id")
		} else {
			id = obs.NewTraceID()
			idStr = obs.TraceIDString(id)
		}
		tr, _ := t.pool.Get().(*obs.Trace)
		if tr == nil {
			tr = obs.NewTrace(id, start)
		} else {
			tr.Reset(id, start)
		}
		w.Header().Set("X-Trace-Id", idStr)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r.WithContext(obs.WithTrace(r.Context(), tr)))
		dur := time.Since(start)
		if t.SlowThreshold > 0 && dur >= t.SlowThreshold {
			ring := t.Ring
			if ring == nil {
				ring = obs.DefaultRing
			}
			spans := tr.Spans()
			ring.Add(obs.TraceEntry{
				ID: idStr, Method: r.Method, Path: r.URL.Path, Status: sw.status,
				Start: start, Duration: dur, Spans: spans,
			})
			if t.Log != nil {
				t.Log.Warn("slow request",
					"trace_id", idStr,
					"method", r.Method,
					"path", r.URL.Path,
					"status", sw.status,
					"duration", dur,
					"spans", len(spans),
				)
			}
		}
		t.pool.Put(tr)
	})
}

// handleObsDump serves GET /debug/obs: every instrument's quantile
// summary plus the retained slow traces, as JSON (apiv1.ObsDump).
func (s *Server) handleObsDump(w http.ResponseWriter, r *http.Request) {
	stats := obs.Default.Instruments()
	dump := apiv1.ObsDump{
		Instruments: make([]apiv1.ObsInstrument, len(stats)),
		SlowTotal:   obs.DefaultRing.Total(),
	}
	for i, st := range stats {
		dump.Instruments[i] = apiv1.ObsInstrument{
			Name:        st.Name,
			Labels:      st.Labels,
			Count:       st.Count,
			TotalMillis: float64(st.Sum) / 1e6,
			P50Millis:   st.P50 / 1e6,
			P90Millis:   st.P90 / 1e6,
			P99Millis:   st.P99 / 1e6,
			P999Millis:  st.P999 / 1e6,
			MaxMillis:   st.Max / 1e6,
		}
	}
	for _, e := range obs.DefaultRing.Snapshot() {
		trace := apiv1.ObsTrace{
			ID:              e.ID,
			Method:          e.Method,
			Path:            e.Path,
			Status:          e.Status,
			StartUnixMillis: e.Start.UnixMilli(),
			DurationMillis:  float64(e.Duration) / 1e6,
		}
		for _, sp := range e.Spans {
			trace.Spans = append(trace.Spans, apiv1.ObsSpan{
				Name:           sp.Name,
				OffsetMillis:   float64(sp.Offset) / 1e6,
				DurationMillis: float64(sp.Dur) / 1e6,
			})
		}
		dump.SlowTraces = append(dump.SlowTraces, trace)
	}
	writeJSON(w, http.StatusOK, dump)
}
