package httpapi

import (
	"bytes"
	"fmt"
	"net/http"
	"strconv"

	"diggsim/internal/obs"
	"diggsim/internal/shard"
)

// handleMetricsProm serves GET /metrics in the Prometheus text
// exposition format (version 0.0.4): the middleware's request counters
// plus platform gauges, and — when the store is sharded — per-shard
// write, replay, generation, and story series labeled by shard index.
// Shard generations are plain counters on the platforms, so they are
// read under the server's read lock like any other store query.
func (s *Server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	var b bytes.Buffer
	if s.metrics != nil {
		m := s.metrics.Snapshot()
		promCounter(&b, "diggsim_http_requests_total", "HTTP requests served, including rejected ones.", m.Requests)
		promCounter(&b, "diggsim_http_errors_total", "HTTP responses with status >= 400.", m.Errors)
		promCounter(&b, "diggsim_http_rate_limited_total", "HTTP requests rejected with 429 by the rate limiter.", m.RateLimited)
		fmt.Fprintf(&b, "# HELP diggsim_http_in_flight Requests currently being served.\n")
		fmt.Fprintf(&b, "# TYPE diggsim_http_in_flight gauge\n")
		fmt.Fprintf(&b, "diggsim_http_in_flight %d\n", m.InFlight)
	}

	s.mu.RLock()
	gen := s.store.Generation()
	stories := s.store.NumStories()
	promoted := s.store.PromotedCount()
	var stats []shard.Stat
	if st, ok := s.store.(interface{ Stats() []shard.Stat }); ok {
		stats = st.Stats()
	}
	s.mu.RUnlock()

	// The generation can reset when a fresh data directory replaces an
	// old one, so it is a gauge, not a counter (Prometheus counter
	// semantics would misread the reset as a rate spike).
	promGauge(&b, "diggsim_store_generation", "Store write generation (sum of shard generations when sharded).", gen)
	fmt.Fprintf(&b, "# HELP diggsim_store_stories Stories in the store.\n# TYPE diggsim_store_stories gauge\n")
	fmt.Fprintf(&b, "diggsim_store_stories %d\n", stories)
	fmt.Fprintf(&b, "# HELP diggsim_store_promoted Stories promoted to the front page.\n# TYPE diggsim_store_promoted gauge\n")
	fmt.Fprintf(&b, "diggsim_store_promoted %d\n", promoted)

	if len(stats) > 0 {
		fmt.Fprintf(&b, "# HELP diggsim_shard_writes_total Commands applied per shard since process start.\n# TYPE diggsim_shard_writes_total counter\n")
		for _, st := range stats {
			fmt.Fprintf(&b, "diggsim_shard_writes_total{shard=%s} %d\n", strconv.Quote(strconv.Itoa(st.Shard)), st.Writes)
		}
		fmt.Fprintf(&b, "# HELP diggsim_shard_replayed_total WAL records replayed per shard at recovery.\n# TYPE diggsim_shard_replayed_total counter\n")
		for _, st := range stats {
			fmt.Fprintf(&b, "diggsim_shard_replayed_total{shard=%s} %d\n", strconv.Quote(strconv.Itoa(st.Shard)), st.Replayed)
		}
		fmt.Fprintf(&b, "# HELP diggsim_shard_generation Per-shard write generation.\n# TYPE diggsim_shard_generation gauge\n")
		for _, st := range stats {
			fmt.Fprintf(&b, "diggsim_shard_generation{shard=%s} %d\n", strconv.Quote(strconv.Itoa(st.Shard)), st.Generation)
		}
		fmt.Fprintf(&b, "# HELP diggsim_shard_stories Stories owned per shard.\n# TYPE diggsim_shard_stories gauge\n")
		for _, st := range stats {
			fmt.Fprintf(&b, "diggsim_shard_stories{shard=%s} %d\n", strconv.Quote(strconv.Itoa(st.Shard)), st.Stories)
		}
	}

	if s.repl != nil {
		sts := s.repl.ShardStatuses()
		fmt.Fprintf(&b, "# HELP diggsim_repl_applied_lsn This node's applied WAL position per shard.\n# TYPE diggsim_repl_applied_lsn gauge\n")
		for _, st := range sts {
			fmt.Fprintf(&b, "diggsim_repl_applied_lsn{shard=%s} %d\n", strconv.Quote(strconv.Itoa(st.Shard)), st.AppliedLSN)
		}
		fmt.Fprintf(&b, "# HELP diggsim_repl_shipped_lsn The primary's head per its last heartbeat, per shard.\n# TYPE diggsim_repl_shipped_lsn gauge\n")
		for _, st := range sts {
			fmt.Fprintf(&b, "diggsim_repl_shipped_lsn{shard=%s} %d\n", strconv.Quote(strconv.Itoa(st.Shard)), st.ShippedLSN)
		}
		// diggsim_repl_lag_seconds (per-shard histograms) and the
		// reconnect/apply counters arrive via the obs registry below.
	}

	if s.live != nil {
		ls := s.live.Stats()
		promGauge(&b, "diggsim_live_sim_minutes", "Current simulation time in sim-minutes.", uint64(ls.SimNow))
		promCounter(&b, "diggsim_live_submits_total", "Stories submitted by the live simulation.", ls.Submits)
		promCounter(&b, "diggsim_live_diggs_total", "Votes applied by the live simulation.", ls.Diggs)
		promCounter(&b, "diggsim_live_promotions_total", "Front-page promotions by the live simulation.", ls.Promotions)
		promGauge(&b, "diggsim_live_bus_subscribers", "Subscribers on the live event bus.", uint64(ls.Subscribers))
		promCounter(&b, "diggsim_live_bus_events_total", "Events published to the live bus.", ls.EventsPublished)
		promCounter(&b, "diggsim_live_bus_dropped_total", "Events dropped because a subscriber's ring was full.", ls.EventsDropped)
		promGauge(&b, "diggsim_live_bus_max_queue", "High-water mark of any subscriber's queue (bus lag).", uint64(ls.MaxSubscriberQueue))
	}

	// The obs registry: latency histograms and counters recorded across
	// the serve/write/durability layers.
	obs.Default.WritePrometheus(&b)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(b.Bytes())
}

// promCounter writes one unlabeled counter with its HELP/TYPE header.
func promCounter(b *bytes.Buffer, name, help string, v uint64) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

// promGauge writes one unlabeled gauge with its HELP/TYPE header.
func promGauge(b *bytes.Buffer, name, help string, v uint64) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
}
