package httpapi

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"diggsim/internal/digg"
	"diggsim/internal/live"
)

// Client is a typed HTTP client for a diggd server with bounded retries
// and exponential backoff on transient failures (network errors and
// 5xx responses).
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to a client with a 10-second timeout.
	HTTPClient *http.Client
	// MaxRetries bounds retry attempts per request (default 3).
	MaxRetries int
	// Backoff is the initial retry delay, doubled per attempt
	// (default 100ms).
	Backoff time.Duration
}

// NewClient returns a client with production defaults.
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL:    baseURL,
		HTTPClient: &http.Client{Timeout: 10 * time.Second},
		MaxRetries: 3,
		Backoff:    100 * time.Millisecond,
	}
}

// APIError is a non-2xx response from the server.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("httpapi: server returned %d: %s", e.StatusCode, e.Message)
}

// do performs one request with retries, decoding a JSON response into
// out (which may be nil).
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	httpClient := c.HTTPClient
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 10 * time.Second}
	}
	retries := c.MaxRetries
	if retries < 0 {
		retries = 0
	}
	backoff := c.Backoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	var bodyBytes []byte
	if body != nil {
		var err error
		bodyBytes, err = json.Marshal(body)
		if err != nil {
			return fmt.Errorf("httpapi: encoding request: %w", err)
		}
	}
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		var reader io.Reader
		if bodyBytes != nil {
			reader = bytes.NewReader(bodyBytes)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, reader)
		if err != nil {
			return fmt.Errorf("httpapi: building request: %w", err)
		}
		if bodyBytes != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := httpClient.Do(req)
		if err != nil {
			lastErr = err
			continue // network error: retry
		}
		err = decodeResponse(resp, out)
		var apiErr *APIError
		if err == nil {
			return nil
		}
		if asAPIError(err, &apiErr) &&
			(apiErr.StatusCode >= 500 || apiErr.StatusCode == http.StatusTooManyRequests) {
			lastErr = err
			continue // server error or rate limit: retry with backoff
		}
		return err // client error or decode failure: do not retry
	}
	return fmt.Errorf("httpapi: %s %s failed after %d attempts: %w",
		method, path, retries+1, lastErr)
}

func asAPIError(err error, target **APIError) bool {
	if e, ok := err.(*APIError); ok {
		*target = e
		return true
	}
	return false
}

func decodeResponse(resp *http.Response, out any) error {
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("httpapi: reading response: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		var e ErrorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return &APIError{StatusCode: resp.StatusCode, Message: e.Error}
		}
		return &APIError{StatusCode: resp.StatusCode, Message: string(data)}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("httpapi: decoding response: %w", err)
	}
	return nil
}

// Health checks the /healthz endpoint.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// FrontPage fetches up to limit promoted stories, newest first.
func (c *Client) FrontPage(ctx context.Context, limit int) ([]StorySummary, error) {
	var out []StorySummary
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/api/frontpage?limit=%d", limit), nil, &out)
	return out, err
}

// Upcoming fetches up to limit unpromoted stories, newest first.
func (c *Client) Upcoming(ctx context.Context, limit int) ([]StorySummary, error) {
	var out []StorySummary
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/api/upcoming?limit=%d", limit), nil, &out)
	return out, err
}

// Stories fetches a page of the full story listing in submission
// order.
func (c *Client) Stories(ctx context.Context, offset, limit int) (StoryPage, error) {
	var out StoryPage
	err := c.do(ctx, http.MethodGet,
		fmt.Sprintf("/api/stories?offset=%d&limit=%d", offset, limit), nil, &out)
	return out, err
}

// Story fetches a story with its full chronological vote list.
func (c *Client) Story(ctx context.Context, id digg.StoryID) (StoryDetail, error) {
	var out StoryDetail
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/api/stories/%d", id), nil, &out)
	return out, err
}

// User fetches a user's profile.
func (c *Client) User(ctx context.Context, id digg.UserID) (UserInfo, error) {
	var out UserInfo
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/api/users/%d", id), nil, &out)
	return out, err
}

// Fans fetches the users watching id.
func (c *Client) Fans(ctx context.Context, id digg.UserID) ([]digg.UserID, error) {
	var out UserLinks
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/api/users/%d/fans", id), nil, &out)
	return out.Users, err
}

// Friends fetches the users watched by id.
func (c *Client) Friends(ctx context.Context, id digg.UserID) ([]digg.UserID, error) {
	var out UserLinks
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/api/users/%d/friends", id), nil, &out)
	return out.Users, err
}

// TopUsers fetches the reputation ranking.
func (c *Client) TopUsers(ctx context.Context, limit int) ([]digg.UserID, error) {
	var out []digg.UserID
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/api/topusers?limit=%d", limit), nil, &out)
	return out, err
}

// Submit creates a story on a live server.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (StoryDetail, error) {
	var out StoryDetail
	err := c.do(ctx, http.MethodPost, "/api/stories", req, &out)
	return out, err
}

// Digg casts a vote on a live server.
func (c *Client) Digg(ctx context.Context, id digg.StoryID, req DiggRequest) (DiggResponse, error) {
	var out DiggResponse
	err := c.do(ctx, http.MethodPost, fmt.Sprintf("/api/stories/%d/digg", id), req, &out)
	return out, err
}

// Stats fetches the server's live/HTTP metrics.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var out StatsResponse
	err := c.do(ctx, http.MethodGet, "/api/stats", nil, &out)
	return out, err
}

// Stream subscribes to the server's /api/stream SSE feed and invokes
// fn for every decoded event until ctx is cancelled, the server closes
// the stream, or fn returns an error (which is returned verbatim).
// Unlike the other client calls, Stream never retries and ignores the
// client timeout: a live tail has no natural deadline, so cancellation
// is the caller's job via ctx.
func (c *Client) Stream(ctx context.Context, fn func(live.Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/api/stream", nil)
	if err != nil {
		return fmt.Errorf("httpapi: building stream request: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	// The configured client's total-request timeout would sever a
	// long-lived tail; keep its transport (TLS, proxies, test
	// round-trippers) but drop the deadline.
	streamClient := &http.Client{}
	if c.HTTPClient != nil {
		streamClient.Transport = c.HTTPClient.Transport
	}
	resp, err := streamClient.Do(req)
	if err != nil {
		return fmt.Errorf("httpapi: opening stream: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return &APIError{StatusCode: resp.StatusCode, Message: string(data)}
	}
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var data []byte
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimSpace(strings.TrimPrefix(line, "data:"))...)
		case line == "" && len(data) > 0:
			var ev live.Event
			if err := json.Unmarshal(data, &ev); err != nil {
				return fmt.Errorf("httpapi: decoding stream event: %w", err)
			}
			data = data[:0]
			if err := fn(ev); err != nil {
				return err
			}
		}
	}
	if err := scanner.Err(); err != nil && ctx.Err() == nil {
		return fmt.Errorf("httpapi: reading stream: %w", err)
	}
	return ctx.Err()
}
