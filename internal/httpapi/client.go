package httpapi

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"iter"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"diggsim/internal/apiv1"
	"diggsim/internal/digg"
	"diggsim/internal/live"
	"diggsim/internal/obs"
)

// Client is the typed v1 SDK for a diggd server. Every call is
// context-first, returns *apiv1.Error for non-2xx responses (inspect
// with errors.As), retries transient failures with exponential backoff
// — honoring the server's Retry-After on 429/503 — and revalidates
// cacheable GETs with If-None-Match so an unchanged page costs a 304
// instead of a re-download. List endpoints paginate with opaque
// cursors; the *Pages methods return iterators usable as
//
//	for page, err := range client.Stories(ctx, 200) { ... }
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to a client with a 10-second timeout.
	HTTPClient *http.Client
	// MaxRetries bounds retry attempts per request (default 3).
	MaxRetries int
	// Backoff is the initial retry delay, doubled per attempt with
	// full jitter (default 100ms).
	Backoff time.Duration
	// MaxBackoff caps the exponential delay between attempts
	// (default 2s).
	MaxBackoff time.Duration
	// MaxRetryAfter caps how long the client will honor a server's
	// Retry-After before giving that attempt up (default 10s).
	MaxRetryAfter time.Duration
	// DisableTransientRetry turns off retrying idempotent GETs on
	// connection errors and 5xx responses. Rate-limit retries (429
	// with Retry-After) still happen: the server rejected the request
	// before doing any work, so repeating it is always safe.
	DisableTransientRetry bool

	// etags caches (path -> ETag, body) for revalidatable GETs.
	etagMu sync.Mutex
	etags  map[string]etagEntry
}

type etagEntry struct {
	etag string
	body []byte
}

// NewClient returns a client with production defaults.
func NewClient(baseURL string) *Client {
	return NewClientWith(baseURL, ClientOptions{})
}

// ClientOptions tunes NewClientWith. Zero values take the production
// defaults, so callers set only what they care about.
type ClientOptions struct {
	// HTTPClient overrides the default 10-second-timeout client.
	HTTPClient *http.Client
	// MaxRetries bounds retry attempts per request (default 3).
	MaxRetries int
	// Backoff is the initial retry delay (default 100ms).
	Backoff time.Duration
	// MaxBackoff caps the exponential delay (default 2s).
	MaxBackoff time.Duration
	// MaxRetryAfter caps honored Retry-After waits (default 10s).
	MaxRetryAfter time.Duration
	// DisableTransientRetry opts out of retrying idempotent GETs on
	// connection errors and 5xx responses (429s are still retried).
	DisableTransientRetry bool
}

// NewClientWith returns a client with the given options applied over
// the production defaults.
func NewClientWith(baseURL string, opts ClientOptions) *Client {
	c := &Client{
		BaseURL:               baseURL,
		HTTPClient:            opts.HTTPClient,
		MaxRetries:            opts.MaxRetries,
		Backoff:               opts.Backoff,
		MaxBackoff:            opts.MaxBackoff,
		MaxRetryAfter:         opts.MaxRetryAfter,
		DisableTransientRetry: opts.DisableTransientRetry,
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Timeout: 10 * time.Second}
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.Backoff == 0 {
		c.Backoff = 100 * time.Millisecond
	}
	return c
}

// APIError is re-exported in types.go as an alias of apiv1.Error; the
// helper keeps old call sites readable.
func asAPIError(err error, target **apiv1.Error) bool {
	return errors.As(err, target)
}

// do performs one request with retries, decoding a JSON response into
// out (which may be nil).
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	httpClient := c.HTTPClient
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 10 * time.Second}
	}
	retries := c.MaxRetries
	if retries < 0 {
		retries = 0
	}
	backoff := c.Backoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	maxBackoff := c.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = 2 * time.Second
	}
	maxRetryAfter := c.MaxRetryAfter
	if maxRetryAfter <= 0 {
		maxRetryAfter = 10 * time.Second
	}
	// Only idempotent GETs are safe to repeat after a connection error
	// or an ambiguous 5xx: a timed-out POST may already have applied.
	retryTransient := method == http.MethodGet && !c.DisableTransientRetry
	var bodyBytes []byte
	if body != nil {
		var err error
		bodyBytes, err = json.Marshal(body)
		if err != nil {
			return fmt.Errorf("httpapi: encoding request: %w", err)
		}
	}
	cacheable := method == http.MethodGet && out != nil
	// One trace ID per logical call, reused across retries, so the
	// server-side traces of every attempt join under one ID (a tracing
	// server adopts it; see Tracer.Middleware).
	traceID := obs.TraceIDString(obs.NewTraceID())
	var lastErr error
	wait := time.Duration(0)
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			if wait <= 0 {
				// Full jitter on the current step so a herd of
				// clients recovering from one outage desynchronizes.
				wait = backoff/2 + rand.N(backoff/2+1)
				if backoff < maxBackoff {
					backoff *= 2
				}
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(wait):
			}
			wait = 0
		}
		var reader io.Reader
		if bodyBytes != nil {
			reader = bytes.NewReader(bodyBytes)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, reader)
		if err != nil {
			return fmt.Errorf("httpapi: building request: %w", err)
		}
		if bodyBytes != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		req.Header.Set("X-Trace-Id", traceID)
		var cached etagEntry
		if cacheable {
			if cached = c.cachedETag(path); cached.etag != "" {
				req.Header.Set("If-None-Match", cached.etag)
			}
		}
		resp, err := httpClient.Do(req)
		if err != nil {
			if !retryTransient {
				return fmt.Errorf("httpapi: %s %s: %w", method, path, err)
			}
			lastErr = err
			continue // network error on a GET: retry
		}
		err = c.decodeResponse(path, resp, cached, out)
		if err == nil {
			return nil
		}
		var apiErr *apiv1.Error
		if asAPIError(err, &apiErr) && apiErr.TraceID == "" {
			// The server's echoed header wins (errorFromBody set it when
			// present); otherwise record the ID this call sent, so even
			// a connection-level failure is joinable to server logs.
			apiErr.TraceID = traceID
		}
		if asAPIError(err, &apiErr) &&
			(apiErr.StatusCode == http.StatusTooManyRequests ||
				(apiErr.StatusCode >= 500 && retryTransient)) {
			lastErr = err
			// Honor the server's Retry-After (capped) over blind
			// backoff: a GCRA 429 tells us exactly when the next
			// request will conform.
			if ra := time.Duration(apiErr.RetryAfter) * time.Second; ra > 0 {
				if ra > maxRetryAfter {
					ra = maxRetryAfter
				}
				wait = ra
			}
			continue
		}
		return err // client error or decode failure: do not retry
	}
	return fmt.Errorf("httpapi: %s %s failed after %d attempts: %w",
		method, path, retries+1, lastErr)
}

func (c *Client) cachedETag(path string) etagEntry {
	c.etagMu.Lock()
	defer c.etagMu.Unlock()
	return c.etags[path]
}

func (c *Client) storeETag(path, etag string, body []byte) {
	c.etagMu.Lock()
	if c.etags == nil {
		c.etags = make(map[string]etagEntry)
	}
	c.etags[path] = etagEntry{etag: etag, body: body}
	c.etagMu.Unlock()
}

// decodeResponse turns a response into out or a typed *apiv1.Error.
// It understands both the v1 error envelope and the legacy string
// envelope, and serves 304 revalidations from the client's ETag cache.
func (c *Client) decodeResponse(path string, resp *http.Response, cached etagEntry, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotModified && cached.etag != "" {
		if out == nil {
			return nil
		}
		if err := json.Unmarshal(cached.body, out); err != nil {
			return fmt.Errorf("httpapi: decoding cached response: %w", err)
		}
		return nil
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("httpapi: reading response: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return errorFromBody(resp, data)
	}
	if etag := resp.Header.Get("ETag"); etag != "" && out != nil {
		c.storeETag(path, etag, data)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("httpapi: decoding response: %w", err)
	}
	return nil
}

// errorFromBody builds the typed error from a non-2xx body: the v1
// envelope when present, the legacy string envelope or raw text
// otherwise.
func errorFromBody(resp *http.Response, data []byte) *apiv1.Error {
	var env apiv1.ErrorEnvelope
	if json.Unmarshal(data, &env) == nil && env.Error != nil && env.Error.Code != "" {
		e := env.Error
		e.StatusCode = resp.StatusCode
		if e.RetryAfter == 0 {
			e.RetryAfter = retryAfterHeader(resp)
		}
		e.TraceID = resp.Header.Get("X-Trace-Id")
		return e
	}
	var legacy ErrorResponse
	msg := string(data)
	if json.Unmarshal(data, &legacy) == nil && legacy.Error != "" {
		msg = legacy.Error
	}
	return &apiv1.Error{
		StatusCode: resp.StatusCode,
		Code:       codeForStatus(resp.StatusCode),
		Message:    msg,
		RetryAfter: retryAfterHeader(resp),
		TraceID:    resp.Header.Get("X-Trace-Id"),
	}
}

func retryAfterHeader(resp *http.Response) int {
	if v := resp.Header.Get("Retry-After"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 0
}

// codeForStatus gives legacy (enveloped-string) errors a best-effort
// stable code so errors.As dispatch works uniformly.
func codeForStatus(status int) string {
	switch status {
	case http.StatusNotFound:
		return apiv1.CodeNotFound
	case http.StatusConflict:
		return apiv1.CodeAlreadyVoted
	case http.StatusGone:
		return apiv1.CodeStoryGone
	case http.StatusTooManyRequests:
		return apiv1.CodeRateLimited
	case http.StatusBadRequest:
		return apiv1.CodeInvalidArgument
	default:
		return apiv1.CodeInternal
	}
}

// Health checks the /healthz endpoint.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// FrontPage fetches up to limit promoted stories, newest promotion
// first (the first cursor page; use FrontPagePages to crawl deeper).
func (c *Client) FrontPage(ctx context.Context, limit int) ([]StorySummary, error) {
	var out apiv1.StoriesPage
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/frontpage?limit=%d", limit), nil, &out)
	return out.Stories, err
}

// Upcoming fetches up to limit unpromoted stories, newest first (the
// first cursor page; use UpcomingPages to crawl deeper).
func (c *Client) Upcoming(ctx context.Context, limit int) ([]StorySummary, error) {
	var out apiv1.StoriesPage
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/upcoming?limit=%d", limit), nil, &out)
	return out.Stories, err
}

// pageSeq builds a cursor-page iterator over any v1 listing: fetch a
// page, yield it, follow its next cursor until exhaustion. Iteration
// stops at the first error (yielded with a zero page) or when the
// server omits the next cursor.
func pageSeq[T any](c *Client, ctx context.Context, path string, pageSize int, next func(*T) apiv1.Cursor) iter.Seq2[T, error] {
	return func(yield func(T, error) bool) {
		cursor := apiv1.Cursor("")
		for {
			url := fmt.Sprintf("%s?limit=%d", path, pageSize)
			if cursor != "" {
				url += "&cursor=" + string(cursor)
			}
			var page T
			if err := c.do(ctx, http.MethodGet, url, nil, &page); err != nil {
				var zero T
				yield(zero, err)
				return
			}
			if !yield(page, nil) {
				return
			}
			if cursor = next(&page); cursor == "" {
				return
			}
		}
	}
}

// storiesSeq is pageSeq over a stories-shaped endpoint.
func (c *Client) storiesSeq(ctx context.Context, path string, pageSize int) iter.Seq2[apiv1.StoriesPage, error] {
	if pageSize <= 0 {
		pageSize = 200
	}
	return pageSeq(c, ctx, path, pageSize,
		func(p *apiv1.StoriesPage) apiv1.Cursor { return p.NextCursor })
}

// Stories iterates cursor pages of the full story listing in
// submission order:
//
//	for page, err := range client.Stories(ctx, 200) {
//		if err != nil { return err }
//		... page.Stories ...
//	}
func (c *Client) Stories(ctx context.Context, pageSize int) iter.Seq2[apiv1.StoriesPage, error] {
	return c.storiesSeq(ctx, "/v1/stories", pageSize)
}

// FrontPagePages iterates cursor pages of the front page, newest
// promotion first.
func (c *Client) FrontPagePages(ctx context.Context, pageSize int) iter.Seq2[apiv1.StoriesPage, error] {
	return c.storiesSeq(ctx, "/v1/frontpage", pageSize)
}

// UpcomingPages iterates cursor pages of the upcoming queue, newest
// first.
func (c *Client) UpcomingPages(ctx context.Context, pageSize int) iter.Seq2[apiv1.StoriesPage, error] {
	return c.storiesSeq(ctx, "/v1/upcoming", pageSize)
}

// StoriesAt fetches one page of the story listing at the given cursor
// ("" for the first page).
func (c *Client) StoriesAt(ctx context.Context, cursor apiv1.Cursor, limit int) (apiv1.StoriesPage, error) {
	url := fmt.Sprintf("/v1/stories?limit=%d", limit)
	if cursor != "" {
		url += "&cursor=" + string(cursor)
	}
	var out apiv1.StoriesPage
	err := c.do(ctx, http.MethodGet, url, nil, &out)
	return out, err
}

// FrontPageAt fetches one page of the front page at the given cursor
// ("" for the first page) — the single-page counterpart of
// FrontPagePages for callers that manage their own crawl state.
func (c *Client) FrontPageAt(ctx context.Context, cursor apiv1.Cursor, limit int) (apiv1.StoriesPage, error) {
	url := fmt.Sprintf("/v1/frontpage?limit=%d", limit)
	if cursor != "" {
		url += "&cursor=" + string(cursor)
	}
	var out apiv1.StoriesPage
	err := c.do(ctx, http.MethodGet, url, nil, &out)
	return out, err
}

// ObsDump fetches the server's observability dump (/debug/obs): every
// latency instrument's quantile summary plus retained slow traces.
func (c *Client) ObsDump(ctx context.Context) (apiv1.ObsDump, error) {
	var out apiv1.ObsDump
	err := c.do(ctx, http.MethodGet, "/debug/obs", nil, &out)
	return out, err
}

// Story fetches a story with its full chronological vote list.
func (c *Client) Story(ctx context.Context, id digg.StoryID) (StoryDetail, error) {
	var out StoryDetail
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/stories/%d", id), nil, &out)
	return out, err
}

// User fetches a user's profile.
func (c *Client) User(ctx context.Context, id digg.UserID) (UserInfo, error) {
	var out UserInfo
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/users/%d", id), nil, &out)
	return out, err
}

// linksSeq iterates cursor pages of a fans/friends listing.
func (c *Client) linksSeq(ctx context.Context, path string, pageSize int) iter.Seq2[apiv1.UserLinksPage, error] {
	if pageSize <= 0 {
		pageSize = apiv1.MaxPageSize
	}
	return pageSeq(c, ctx, path, pageSize,
		func(p *apiv1.UserLinksPage) apiv1.Cursor { return p.NextCursor })
}

// FansPages iterates cursor pages of the users watching id.
func (c *Client) FansPages(ctx context.Context, id digg.UserID, pageSize int) iter.Seq2[apiv1.UserLinksPage, error] {
	return c.linksSeq(ctx, fmt.Sprintf("/v1/users/%d/fans", id), pageSize)
}

// FriendsPages iterates cursor pages of the users watched by id.
func (c *Client) FriendsPages(ctx context.Context, id digg.UserID, pageSize int) iter.Seq2[apiv1.UserLinksPage, error] {
	return c.linksSeq(ctx, fmt.Sprintf("/v1/users/%d/friends", id), pageSize)
}

// Fans fetches every user watching id, exhausting the cursor.
func (c *Client) Fans(ctx context.Context, id digg.UserID) ([]digg.UserID, error) {
	return collectLinks(c.FansPages(ctx, id, 0))
}

// Friends fetches every user watched by id, exhausting the cursor.
func (c *Client) Friends(ctx context.Context, id digg.UserID) ([]digg.UserID, error) {
	return collectLinks(c.FriendsPages(ctx, id, 0))
}

func collectLinks(pages iter.Seq2[apiv1.UserLinksPage, error]) ([]digg.UserID, error) {
	var out []digg.UserID
	for page, err := range pages {
		if err != nil {
			return nil, err
		}
		out = append(out, page.Users...)
	}
	return out, nil
}

// TopUsers fetches up to limit entries of the reputation ranking (the
// first cursor page; use TopUsersPages to crawl deeper).
func (c *Client) TopUsers(ctx context.Context, limit int) ([]digg.UserID, error) {
	var out apiv1.TopUsersPage
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/topusers?limit=%d", limit), nil, &out)
	return out.Users, err
}

// TopUsersPages iterates cursor pages of the reputation ranking, best
// first.
func (c *Client) TopUsersPages(ctx context.Context, pageSize int) iter.Seq2[apiv1.TopUsersPage, error] {
	if pageSize <= 0 {
		pageSize = 200
	}
	return pageSeq(c, ctx, "/v1/topusers", pageSize,
		func(p *apiv1.TopUsersPage) apiv1.Cursor { return p.NextCursor })
}

// Submit creates a story.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (StoryDetail, error) {
	var out StoryDetail
	err := c.do(ctx, http.MethodPost, "/v1/stories", req, &out)
	return out, err
}

// Digg casts a vote.
func (c *Client) Digg(ctx context.Context, id digg.StoryID, req DiggRequest) (DiggResponse, error) {
	var out DiggResponse
	err := c.do(ctx, http.MethodPost, fmt.Sprintf("/v1/stories/%d/digg", id), req, &out)
	return out, err
}

// DiggBatch casts up to apiv1.MaxBatch votes in one write transaction.
func (c *Client) DiggBatch(ctx context.Context, req apiv1.BatchDiggRequest) (apiv1.BatchDiggResponse, error) {
	var out apiv1.BatchDiggResponse
	err := c.do(ctx, http.MethodPost, "/v1/diggs:batch", req, &out)
	return out, err
}

// SubmitBatch creates up to apiv1.MaxBatch stories in one write
// transaction.
func (c *Client) SubmitBatch(ctx context.Context, req apiv1.BatchSubmitRequest) (apiv1.BatchSubmitResponse, error) {
	var out apiv1.BatchSubmitResponse
	err := c.do(ctx, http.MethodPost, "/v1/stories:batch", req, &out)
	return out, err
}

// Stats fetches the server's live/HTTP metrics.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var out StatsResponse
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

// Stream subscribes to the server's /v1/stream SSE feed and invokes
// fn for every decoded event until ctx is cancelled or fn returns an
// error (which is returned verbatim). A severed connection reconnects
// transparently with Last-Event-ID, so delivery resumes right after
// the last event fn saw; events the server's broadcast ring has since
// overwritten arrive as one synthetic "lag" event carrying the exact
// count. Up to MaxRetries consecutive failed attempts are tolerated
// (the budget resets whenever an event arrives); DisableTransientRetry
// turns reconnecting off. Stream ignores the client timeout: a live
// tail has no natural deadline, so cancellation is the caller's job
// via ctx.
func (c *Client) Stream(ctx context.Context, fn func(live.Event) error) error {
	retries := c.MaxRetries
	if retries < 0 || c.DisableTransientRetry {
		retries = 0
	}
	backoff := c.Backoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	maxBackoff := c.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = 2 * time.Second
	}
	st := streamState{traceID: obs.TraceIDString(obs.NewTraceID())}
	delay := backoff
	failures := 0
	for {
		progressed, err := c.streamOnce(ctx, &st, fn)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err != nil {
			var terminal *terminalStreamError
			if errors.As(err, &terminal) {
				return terminal.err
			}
		}
		// Anything else — a severed connection, a clean server close —
		// is a transient failure the resume protocol exists for. Event
		// progress proves the server is alive, so it resets the budget.
		if progressed {
			failures = 0
			delay = backoff
		}
		failures++
		if failures > retries {
			if err == nil {
				err = errors.New("httpapi: stream closed by server")
			}
			return err
		}
		wait := delay/2 + rand.N(delay/2+1)
		if delay < maxBackoff {
			delay *= 2
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(wait):
		}
	}
}

// streamState carries resume progress across Stream's reconnects. One
// trace ID spans every reconnect of the tail, so server-side traces of
// all attempts join.
type streamState struct {
	lastSeq  uint64
	sawEvent bool
	traceID  string
}

// terminalStreamError marks errors Stream must not retry: a callback
// rejection, a malformed event, or an API error response.
type terminalStreamError struct{ err error }

func (e *terminalStreamError) Error() string { return e.err.Error() }

// streamOnce runs one SSE connection: open, read frames, dispatch.
// It reports whether any event was delivered this attempt, and wraps
// non-retryable failures in terminalStreamError.
func (c *Client) streamOnce(ctx context.Context, st *streamState, fn func(live.Event) error) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/stream", nil)
	if err != nil {
		return false, &terminalStreamError{fmt.Errorf("httpapi: building stream request: %w", err)}
	}
	req.Header.Set("Accept", "text/event-stream")
	if st.traceID != "" {
		req.Header.Set("X-Trace-Id", st.traceID)
	}
	if st.sawEvent {
		// Resume from the last delivered event: the server replays
		// what its ring still holds and reports the rest as one
		// synthetic lag event.
		req.Header.Set("Last-Event-ID", strconv.FormatUint(st.lastSeq, 10))
	}
	// The configured client's total-request timeout would sever a
	// long-lived tail; keep its transport (TLS, proxies, test
	// round-trippers) but drop the deadline.
	streamClient := &http.Client{}
	if c.HTTPClient != nil {
		streamClient.Transport = c.HTTPClient.Transport
	}
	resp, err := streamClient.Do(req)
	if err != nil {
		return false, fmt.Errorf("httpapi: opening stream: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return false, &terminalStreamError{errorFromBody(resp, data)}
	}
	progressed := false
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var data []byte
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimSpace(strings.TrimPrefix(line, "data:"))...)
		case line == "" && len(data) > 0:
			var ev live.Event
			if err := json.Unmarshal(data, &ev); err != nil {
				return progressed, &terminalStreamError{fmt.Errorf("httpapi: decoding stream event: %w", err)}
			}
			data = data[:0]
			if ev.Seq > 0 {
				st.lastSeq = ev.Seq
				st.sawEvent = true
			}
			progressed = true
			if err := fn(ev); err != nil {
				return progressed, &terminalStreamError{err}
			}
		}
	}
	if err := scanner.Err(); err != nil && ctx.Err() == nil {
		return progressed, fmt.Errorf("httpapi: reading stream: %w", err)
	}
	return progressed, nil
}
