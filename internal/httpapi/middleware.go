package httpapi

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"diggsim/internal/apiv1"
)

// LoggingMiddleware writes one line per request (method, path, status,
// duration) to w. It is safe for concurrent requests.
func LoggingMiddleware(w io.Writer, next http.Handler) http.Handler {
	var mu sync.Mutex
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: rw, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		mu.Lock()
		fmt.Fprintf(w, "%s %s %d %s\n", r.Method, r.URL.Path, sw.status,
			time.Since(start).Round(time.Microsecond))
		mu.Unlock()
	})
}

// statusWriter captures the response status code for logging.
type statusWriter struct {
	http.ResponseWriter
	status  int
	written bool
}

func (s *statusWriter) WriteHeader(code int) {
	if !s.written {
		s.status = code
		s.written = true
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusWriter) Write(b []byte) (int, error) {
	s.written = true
	return s.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so streaming responses
// (the /api/stream SSE feed) keep working behind the logging and
// metrics middleware.
func (s *statusWriter) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// RateLimiter is a token-bucket limiter shared across all requests —
// the server-side politeness budget a real site would enforce against
// scrapers. It is implemented as a lock-free GCRA ("virtual
// scheduling"): the whole bucket state is one atomic timestamp (the
// theoretical arrival time of the next conforming request), so heavy
// concurrent read traffic contends on a single CAS instead of
// serializing behind a mutex. The semantics match the classic token
// bucket exactly: burst requests immediately, then one token every
// 1/rate seconds, refills capped at the burst capacity. The zero value
// is unusable; construct with NewRateLimiter.
type RateLimiter struct {
	interval  int64            // nanoseconds per token (1/rate)
	tolerance int64            // (burst-1) * interval: allowed head start
	tat       atomic.Int64     // theoretical arrival time, UnixNano
	now       func() time.Time // injectable clock for tests

	// trustLoopback exempts requests from loopback addresses — the
	// diggd -trust-loopback switch, so a co-located load harness can
	// drive the server at full rate while remote scrapers stay
	// politeness-limited.
	trustLoopback bool
}

// TrustLoopback makes the middleware skip rate limiting for requests
// whose RemoteAddr is a loopback address. Call before serving.
func (l *RateLimiter) TrustLoopback() { l.trustLoopback = true }

// isLoopbackAddr reports whether a request RemoteAddr ("ip:port") is a
// loopback address.
func isLoopbackAddr(remoteAddr string) bool {
	host, _, err := net.SplitHostPort(remoteAddr)
	if err != nil {
		host = remoteAddr
	}
	ip := net.ParseIP(host)
	return ip != nil && ip.IsLoopback()
}

// NewRateLimiter allows rate requests per second with the given burst
// capacity.
func NewRateLimiter(rate float64, burst int) *RateLimiter {
	if rate <= 0 {
		rate = 1
	}
	if burst < 1 {
		burst = 1
	}
	interval := int64(float64(time.Second) / rate)
	if interval < 1 {
		interval = 1
	}
	return &RateLimiter{
		interval:  interval,
		tolerance: int64(burst-1) * interval,
		now:       time.Now,
	}
}

// Allow consumes one token if available.
func (l *RateLimiter) Allow() bool {
	ok, _ := l.AllowOrRetry()
	return ok
}

// AllowOrRetry consumes one token if available; on denial it also
// reports how long until the next request would conform — the value
// the 429 path surfaces as Retry-After.
func (l *RateLimiter) AllowOrRetry() (bool, time.Duration) {
	now := l.now().UnixNano()
	for {
		tat := l.tat.Load()
		// A request conforms while the bucket's theoretical arrival
		// time has not run more than the burst tolerance ahead of the
		// wall clock.
		if over := tat - l.tolerance - now; over > 0 {
			return false, time.Duration(over)
		}
		next := tat
		if now > next {
			next = now // idle gap: refills cap at burst capacity
		}
		if l.tat.CompareAndSwap(tat, next+l.interval) {
			return true, 0
		}
	}
}

// Middleware rejects requests above the limit with 429, the v1
// machine-readable error envelope ({"error":{"code":"rate_limited",
// "retry_after":N}}), and a Retry-After header computed from the GCRA
// state — the actual wait until the next conforming request, not a
// fixed hint.
func (l *RateLimiter) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if l.trustLoopback && isLoopbackAddr(r.RemoteAddr) {
			next.ServeHTTP(w, r)
			return
		}
		ok, wait := l.AllowOrRetry()
		if !ok {
			secs := int((wait + time.Second - 1) / time.Second) // ceil
			if secs < 1 {
				secs = 1
			}
			writeV1Error(w, &apiv1.Error{
				StatusCode: http.StatusTooManyRequests,
				Code:       apiv1.CodeRateLimited,
				Message:    "rate limit exceeded",
				RetryAfter: secs,
			})
			return
		}
		next.ServeHTTP(w, r)
	})
}

// Metrics counts served requests with plain atomics — no lock at all,
// so the read-heavy request path and /api/stats scrapes never contend.
// Attach to a Server with AttachMetrics to surface the counters.
type Metrics struct {
	requests atomic.Uint64
	errors   atomic.Uint64 // responses with status >= 400
	limited  atomic.Uint64 // 429s (rate-limited requests)
	inFlight atomic.Int64
}

// NewMetrics returns a zeroed metrics collector.
func NewMetrics() *Metrics { return &Metrics{} }

// MetricsSnapshot is a point-in-time copy of the counters.
type MetricsSnapshot struct {
	Requests    uint64 `json:"requests"`
	Errors      uint64 `json:"errors"`
	RateLimited uint64 `json:"rate_limited"`
	InFlight    int64  `json:"in_flight"`
}

// Snapshot reads the counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Requests:    m.requests.Load(),
		Errors:      m.errors.Load(),
		RateLimited: m.limited.Load(),
		InFlight:    m.inFlight.Load(),
	}
}

// Middleware counts each request and its response class. Place it
// outermost so rate-limited rejections are counted too.
func (m *Metrics) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.requests.Add(1)
		m.inFlight.Add(1)
		defer m.inFlight.Add(-1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		if sw.status >= 400 {
			m.errors.Add(1)
			if sw.status == http.StatusTooManyRequests {
				m.limited.Add(1)
			}
		}
	})
}
