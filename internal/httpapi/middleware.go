package httpapi

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// LoggingMiddleware writes one line per request (method, path, status,
// duration) to w. It is safe for concurrent requests.
func LoggingMiddleware(w io.Writer, next http.Handler) http.Handler {
	var mu sync.Mutex
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: rw, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		mu.Lock()
		fmt.Fprintf(w, "%s %s %d %s\n", r.Method, r.URL.Path, sw.status,
			time.Since(start).Round(time.Microsecond))
		mu.Unlock()
	})
}

// statusWriter captures the response status code for logging.
type statusWriter struct {
	http.ResponseWriter
	status  int
	written bool
}

func (s *statusWriter) WriteHeader(code int) {
	if !s.written {
		s.status = code
		s.written = true
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusWriter) Write(b []byte) (int, error) {
	s.written = true
	return s.ResponseWriter.Write(b)
}

// RateLimiter is a token-bucket limiter shared across all requests —
// the server-side politeness budget a real site would enforce against
// scrapers. The zero value is unusable; construct with NewRateLimiter.
type RateLimiter struct {
	mu       sync.Mutex
	tokens   float64
	capacity float64
	rate     float64 // tokens per second
	last     time.Time
	now      func() time.Time // injectable clock for tests
}

// NewRateLimiter allows rate requests per second with the given burst
// capacity.
func NewRateLimiter(rate float64, burst int) *RateLimiter {
	if rate <= 0 {
		rate = 1
	}
	if burst < 1 {
		burst = 1
	}
	return &RateLimiter{
		tokens:   float64(burst),
		capacity: float64(burst),
		rate:     rate,
		now:      time.Now,
	}
}

// Allow consumes one token if available.
func (l *RateLimiter) Allow() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	if !l.last.IsZero() {
		l.tokens += now.Sub(l.last).Seconds() * l.rate
		if l.tokens > l.capacity {
			l.tokens = l.capacity
		}
	}
	l.last = now
	if l.tokens < 1 {
		return false
	}
	l.tokens--
	return true
}

// Middleware rejects requests above the limit with 429 and a
// Retry-After hint.
func (l *RateLimiter) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !l.Allow() {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "rate limit exceeded")
			return
		}
		next.ServeHTTP(w, r)
	})
}
