package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"diggsim/internal/digg"
	"diggsim/internal/graph"
	"diggsim/internal/live"
	"diggsim/internal/obs"
	"diggsim/internal/repl"
)

// Server serves a digg.Store over HTTP/JSON: the versioned /v1/*
// surface (see v1.go and internal/apiv1) plus the deprecated /api/*
// compatibility aliases.
//
// Reads and writes travel different paths. The hot read endpoints are
// lock-free: they serve pre-serialized JSON from an immutable ReadView
// snapshot published through an atomic pointer (see snapshot.go), so
// heavy scraping never waits behind the simulation writer. Writes —
// HTTP submissions and diggs (single or batch), or the live stepper
// when a live.Service is attached — take the write lock, mutate the
// store, and republish the snapshot before responding, so a client
// always reads its own writes.
//
// The RWMutex remains the fallback for requests the snapshot cannot
// answer (limits past the pre-rendered depth, stories newer than the
// last publication) and for genuinely point-in-time reads.
type Server struct {
	// mu guards the store. With AttachLive it is replaced by the
	// service's lock so the simulation writer, snapshot rebuilds and
	// fallback readers interleave on one mutex.
	mu    *sync.RWMutex
	store digg.Store
	// batcher is the store's optional batch-grouping capability
	// (digg.Batcher). When present — a durable store — the batch write
	// endpoints bracket their loop in it, so all <= apiv1.MaxBatch
	// writes of a request cost one write-ahead append and one fsync.
	batcher digg.Batcher
	// bulk is the store's optional concurrent bulk-write capability
	// (digg.BulkWriter). When present — a sharded store — the batch
	// write endpoints hand it the whole burst instead of looping, so
	// per-shard sub-batches apply and fsync concurrently. BulkWriter
	// manages its own batching, so the two capabilities are mutually
	// exclusive on the write path: bulk wins when both exist.
	bulk digg.BulkWriter
	// sharded is the store's optional shard-layout capability
	// (digg.Sharded). When present, cursors and read views carry the
	// per-shard generation vector and decoded cursors are validated
	// against the serving shard count.
	sharded digg.Sharded
	// graph is the store's immutable social graph, cached so the user
	// endpoints never need the store lock or an interface call.
	graph *graph.Graph
	now   digg.Minutes
	// nowFn, when set, overrides the static now field (live sim clock,
	// or a wall-advancing clock in static mode). It must be safe to
	// call without holding mu.
	nowFn func() digg.Minutes
	// rankOf maps users to reputation ranks. It must be safe for
	// concurrent use without the store lock (the platform default and
	// dataset snapshots both are).
	rankOf func(digg.UserID) int
	// storeRanks records that rankOf is the store default, so user
	// handlers can serve ranks from the snapshot's immutable map
	// instead of calling through.
	storeRanks bool
	live       *live.Service
	metrics    *Metrics
	snap       *snapshotStore

	// repl/replSrc/replMaxLag are the replication wiring: the attached
	// follower (write fencing, lag reporting, readiness), the node's own
	// streaming surface mounted under /repl/v1/, and the /readyz
	// staleness bound. See repl.go.
	repl       *repl.Follower
	replSrc    *repl.Source
	replMaxLag time.Duration

	// timeline/slos are the metrics-timeline wiring (/debug/timeline
	// and the /readyz burn-rate gate). See timeline.go.
	timeline *obs.Timeline
	slos     []obs.SLO
	// writeTrace, when set, forwards the request trace ID to the
	// durable layer before each write, so the WAL commit stamp — and
	// through it the replication heartbeat — carries the trace of the
	// write that produced it. Advisory: concurrent writers may
	// interleave, and the stamp names one of them.
	writeTrace func(uint64)
}

// NewServer wraps a digg.Store (in practice the in-memory
// *digg.Platform; the interface is the seam future shard or replica
// backends plug into). now is the clock used for upcoming-queue
// visibility and write operations; rankOf maps users to reputation
// ranks for the user endpoints (nil means store-derived ranks). A
// non-nil rankOf is called without the store lock and must be safe for
// concurrent use while the store mutates — read from an immutable
// snapshot (like dataset rank maps) or synchronize internally; do not
// pass a closure over live platform state.
func NewServer(store digg.Store, now digg.Minutes, rankOf func(digg.UserID) int) *Server {
	s := &Server{
		mu:     &sync.RWMutex{},
		store:  store,
		graph:  store.SocialGraph(),
		now:    now,
		rankOf: rankOf,
		snap:   newSnapshotStore(),
	}
	s.batcher, _ = store.(digg.Batcher)
	s.bulk, _ = store.(digg.BulkWriter)
	s.sharded, _ = store.(digg.Sharded)
	if rankOf == nil {
		s.rankOf = store.UserRank
		s.storeRanks = true
	}
	return s
}

// SetNow advances the server clock (static mode; a SetNowFunc clock
// takes precedence). The snapshot's upcoming queue filters by the
// clock at serve time, so no republication is needed.
func (s *Server) SetNow(now digg.Minutes) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
}

// SetNowFunc installs a clock function consulted on every request that
// needs the current sim time (upcoming-queue visibility, default vote
// and submission timestamps), fixing the frozen-clock staleness of a
// static server. fn must be safe for concurrent use and must not
// acquire the server lock. Call before serving traffic.
func (s *Server) SetNowFunc(fn func() digg.Minutes) { s.nowFn = fn }

// AttachLive connects a live simulation service: the server adopts the
// service's platform lock (so snapshot rebuilds and fallback readers
// interleave safely with the simulation writer), serves the service's
// clock, republishes the read snapshot after every simulation step,
// and exposes the SSE stream feed plus live metrics on the stats
// endpoints. Call before Handler and before the service runs.
func (s *Server) AttachLive(svc *live.Service) {
	s.mu = svc.Locker()
	s.nowFn = svc.Now
	s.live = svc
	svc.SetAfterStep(s.republish)
}

// AttachMetrics includes the middleware's request counters in stats
// responses. Call before Handler.
func (s *Server) AttachMetrics(m *Metrics) { s.metrics = m }

// SetWriteTraceFunc registers the durable layer's write-trace hook
// (durable.Store.SetWriteTrace, or a fan-out over shards): write
// handlers call it with the request's trace ID before mutating the
// store, under the write lock. Call before Handler.
func (s *Server) SetWriteTraceFunc(fn func(uint64)) { s.writeTrace = fn }

// stampWriteTrace forwards r's trace ID to the durable layer. Callers
// hold the write lock, so the stamp pairs with this request's commit
// (single-writer stores; sharded stores interleave, which the
// advisory contract allows).
func (s *Server) stampWriteTrace(trace uint64) {
	if s.writeTrace != nil && trace != 0 {
		s.writeTrace(trace)
	}
}

// requestTraceID returns the trace ID the Tracer middleware attached
// to the request, or zero when untraced (benchmarks, bare tests).
func requestTraceID(r *http.Request) uint64 {
	if t := obs.TraceFrom(r.Context()); t != nil {
		return t.ID()
	}
	return 0
}

// clock returns the current sim time: the nowFn clock when installed,
// the static now otherwise. Callers must not hold the lock.
func (s *Server) clock() digg.Minutes {
	if s.nowFn != nil {
		return s.nowFn()
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.now
}

// Handler publishes the initial read snapshot and returns the HTTP
// routing table: the versioned /v1/* surface plus the deprecated
// /api/* aliases. Every non-streaming route is wrapped in its route
// class's latency histogram (see obs.go); the /api/* alias and /v1/*
// form of an endpoint share a class.
func (s *Server) Handler() http.Handler {
	s.republish()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", timed("healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	}))
	mux.HandleFunc("GET /readyz", timed("healthz", s.handleReadyz))
	mux.HandleFunc("GET /metrics", timed("metrics", s.handleMetricsProm))
	mux.HandleFunc("GET /debug/obs", s.handleObsDump)
	if s.timeline != nil {
		mux.HandleFunc("GET /debug/timeline", s.handleTimeline)
	}
	// Deprecated unversioned aliases (offset/limit, string errors).
	mux.HandleFunc("GET /api/frontpage", timed("frontpage", s.handleFrontPage))
	mux.HandleFunc("GET /api/stories", timed("stories", s.handleStoryList))
	mux.HandleFunc("GET /api/upcoming", timed("upcoming", s.handleUpcoming))
	mux.HandleFunc("GET /api/stories/{id}", timed("story", s.handleStory))
	mux.HandleFunc("POST /api/stories", timed("submit", s.handleSubmit))
	mux.HandleFunc("POST /api/stories/{id}/digg", timed("digg", s.handleDigg))
	mux.HandleFunc("GET /api/users/{id}", timed("user", s.handleUser))
	mux.HandleFunc("GET /api/users/{id}/fans", timed("links", s.handleFans))
	mux.HandleFunc("GET /api/users/{id}/friends", timed("links", s.handleFriends))
	mux.HandleFunc("GET /api/topusers", timed("topusers", s.handleTopUsers))
	mux.HandleFunc("GET /api/stats", timed("stats", s.handleStats))
	if s.live != nil {
		// The SSE stream is long-lived; its duration is connection
		// lifetime, not serving latency, so it stays uninstrumented.
		mux.HandleFunc("GET /api/stream", s.handleStream)
	}
	if s.replSrc != nil {
		// The node's own replication surface: streaming for followers,
		// status/promote for elections.
		mux.Handle("/repl/v1/", http.StripPrefix("/repl/v1", s.replSrc.Handler()))
	}
	s.mountV1(mux)
	if s.repl != nil {
		return replLagMiddleware(s.repl, mux)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg})
}

// writeRaw sends pre-encoded JSON chunks with zero per-request header
// allocations (the shared value slice is assigned, not copied).
func writeRaw(w http.ResponseWriter, chunks ...[]byte) {
	w.Header()["Content-Type"] = headerJSON
	w.WriteHeader(http.StatusOK)
	for _, c := range chunks {
		_, _ = w.Write(c)
	}
}

func pathID(r *http.Request) (int, error) {
	raw := r.PathValue("id")
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("invalid id %q", raw)
	}
	return v, nil
}

func (s *Server) handleFrontPage(w http.ResponseWriter, r *http.Request) {
	limit, err := queryIntRaw(r.URL.RawQuery, "limit", 15)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	view := s.snap.view.Load()
	rendered := 0
	if view != nil {
		rendered = len(view.fpEnds)
	}
	if view == nil || (view.fpTotal > rendered && (limit <= 0 || limit > rendered)) {
		s.frontPageLocked(w, limit)
		return
	}
	h := w.Header()
	h["Etag"] = view.etag
	h["Cache-Control"] = headerRevalidate
	if etagMatches(r.Header.Get("If-None-Match"), view.etagStr) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h["Content-Type"] = headerJSON
	w.WriteHeader(http.StatusOK)
	if limit <= 0 || limit >= rendered {
		_, _ = w.Write(view.fpBuf)
		return
	}
	_, _ = w.Write(view.fpBuf[:view.fpEnds[limit-1]])
	_, _ = w.Write(bracketClose)
}

// frontPageLocked is the point-in-time fallback for limits past the
// snapshot's pre-rendered depth.
func (s *Server) frontPageLocked(w http.ResponseWriter, limit int) {
	s.mu.RLock()
	stories := s.store.FrontPage(limit)
	out := make([]StorySummary, len(stories))
	for i, st := range stories {
		out[i] = summarize(st)
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleUpcoming(w http.ResponseWriter, r *http.Request) {
	limit, err := queryIntRaw(r.URL.RawQuery, "limit", 15)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	now := s.clock()
	view := s.snap.view.Load()
	if view == nil {
		s.upcomingLocked(w, now, limit)
		return
	}
	// The visibility filter runs at serve time: pre-rendered entries
	// submitted after the current clock are skipped, so a static
	// server's queue evolves with wall time without republication.
	entries := view.upEntries
	visible := 0
	for i := range entries {
		if entries[i].submittedAt <= int64(now) {
			visible++
		}
	}
	skipped := visible < len(entries)
	serveN := visible
	if limit > 0 && limit < serveN {
		serveN = limit
	}
	// If the pre-rendered window cannot satisfy the request (deeper
	// entries exist on the platform), fall back to the locked scan.
	if len(entries) < view.upTotal && (limit <= 0 || serveN < limit) {
		s.upcomingLocked(w, now, limit)
		return
	}
	h := w.Header()
	if !skipped {
		// The rendered queue only changes with the platform generation
		// while no future-dated entries are pending, so the snapshot
		// ETag is a valid strong validator.
		h["Etag"] = view.etag
		h["Cache-Control"] = headerRevalidate
		if etagMatches(r.Header.Get("If-None-Match"), view.etagStr) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	h["Content-Type"] = headerJSON
	w.WriteHeader(http.StatusOK)
	if !skipped && serveN >= len(entries) {
		_, _ = w.Write(view.upBuf)
		return
	}
	if serveN == 0 {
		_, _ = w.Write(emptyArray)
		return
	}
	_, _ = w.Write(bracketOpen)
	written := 0
	for i := range entries {
		if entries[i].submittedAt > int64(now) {
			continue
		}
		if written > 0 {
			_, _ = w.Write(commaSep)
		}
		_, _ = w.Write(view.upBuf[entries[i].start:entries[i].end])
		written++
		if written >= serveN {
			break
		}
	}
	_, _ = w.Write(bracketClose)
}

func (s *Server) upcomingLocked(w http.ResponseWriter, now digg.Minutes, limit int) {
	s.mu.RLock()
	stories := s.store.Upcoming(now, limit)
	out := make([]StorySummary, len(stories))
	for i, st := range stories {
		out[i] = summarize(st)
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, out)
}

// handleStoryList serves a paginated listing of every story in
// submission order: GET /api/stories?offset=0&limit=50 (deprecated;
// /v1/stories paginates with cursors).
func (s *Server) handleStoryList(w http.ResponseWriter, r *http.Request) {
	offset, err := queryIntRaw(r.URL.RawQuery, "offset", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	limit, err := queryIntRaw(r.URL.RawQuery, "limit", 50)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if offset < 0 || limit < 0 {
		writeError(w, http.StatusBadRequest, "offset and limit must be non-negative")
		return
	}
	if limit > 1000 {
		limit = 1000
	}
	view := s.snap.view.Load()
	if view == nil {
		s.storyListLocked(w, offset, limit)
		return
	}
	s.storyListFromView(w, view, offset, limit)
}

// storyListFromView cuts an offset/limit page entirely from one
// published view, so total and stories always describe the same
// generation.
func (s *Server) storyListFromView(w http.ResponseWriter, view *ReadView, offset, limit int) {
	total := len(view.summaries)
	bp := encBufPool.Get().(*[]byte)
	b := (*bp)[:0]
	b = append(b, `{"total":`...)
	b = strconv.AppendInt(b, int64(total), 10)
	b = append(b, `,"offset":`...)
	b = strconv.AppendInt(b, int64(offset), 10)
	b = append(b, `,"stories":`...)
	if offset < total {
		end := offset + limit
		if end > total {
			end = total
		}
		b = append(b, '[')
		for i := offset; i < end; i++ {
			if i > offset {
				b = append(b, ',')
			}
			b = append(b, view.summaries[i]...)
		}
		b = append(b, ']')
	} else {
		b = append(b, `null`...)
	}
	b = append(b, '}')
	writeRaw(w, b)
	*bp = b[:0]
	encBufPool.Put(bp)
}

// storyListLocked is the fallback when no snapshot is published yet.
// Under the live writer the snapshot and locked paths can disagree on
// the story count, so a page is never assembled from a mix of the two:
// if a view at the current platform generation exists by the time the
// lock is held (published between the caller's nil load and the lock
// acquisition), the whole page is re-served from that view; otherwise
// total and stories both come from one point-in-time read under a
// single RLock.
func (s *Server) storyListLocked(w http.ResponseWriter, offset, limit int) {
	s.mu.RLock()
	if view := s.snap.view.Load(); view != nil && view.Gen == s.store.Generation() {
		s.mu.RUnlock()
		s.storyListFromView(w, view, offset, limit)
		return
	}
	all := s.store.Stories()
	var page StoryPage
	page.Total = len(all)
	page.Offset = offset
	if offset < len(all) {
		end := offset + limit
		if end > len(all) {
			end = len(all)
		}
		page.Stories = make([]StorySummary, 0, end-offset)
		for _, st := range all[offset:end] {
			page.Stories = append(page.Stories, summarize(st))
		}
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, page)
}

func (s *Server) handleStory(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	buf, ok, err := s.storyDetailBytes(digg.StoryID(id))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	if ok {
		writeRaw(w, buf)
		return
	}
	s.storyLocked(w, digg.StoryID(id))
}

// storyDetailBytes serves a story's detail JSON from the per-(story,
// version) cache, encoding and caching on miss. ok reports whether the
// snapshot path could answer; when false (no view yet, or a story
// newer than the slab) the caller should use its locked fallback.
func (s *Server) storyDetailBytes(id digg.StoryID) (buf []byte, ok bool, err error) {
	view := s.snap.view.Load()
	slab := s.snap.details.Load()
	if view == nil || slab == nil || int(id) >= len(view.storyVer) || int(id) >= len(slab.slots) {
		return nil, false, nil
	}
	slot := slab.slots[id]
	if e := slot.Load(); e != nil && e.ver == view.storyVer[id] {
		return e.buf, true, nil
	}
	// Miss: encode once under the read lock at the current version and
	// cache for every later request of this (story, version).
	s.mu.RLock()
	st, err := s.store.Story(id)
	if err != nil {
		s.mu.RUnlock()
		return nil, false, err
	}
	ver := s.store.StoryVersion(st.ID)
	buf = appendDetail(make([]byte, 0, 128+28*len(st.Votes)), st)
	s.mu.RUnlock()
	slot.Store(&detailEntry{ver: ver, buf: buf})
	return buf, true, nil
}

func (s *Server) storyLocked(w http.ResponseWriter, id digg.StoryID) {
	s.mu.RLock()
	st, err := s.store.Story(id)
	var out StoryDetail
	if err == nil {
		out = detail(st)
	}
	s.mu.RUnlock()
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.fence(w) {
		return
	}
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	st, err := s.submit(req, requestTraceID(r))
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, st)
}

// submit performs one submission write and republishes the snapshot,
// observing the accept→front-page-visible freshness span.
func (s *Server) submit(req SubmitRequest, trace uint64) (StoryDetail, error) {
	start := obs.Now()
	at := digg.Minutes(req.At)
	if at == 0 {
		at = s.clock()
	}
	s.mu.Lock()
	s.stampWriteTrace(trace)
	st, err := s.store.Submit(req.Submitter, req.Title, req.Interest, at)
	var out StoryDetail
	if err == nil {
		out = detail(st)
	}
	s.mu.Unlock()
	if err != nil {
		return StoryDetail{}, err
	}
	s.republish()
	histFreshHTTP.Observe(time.Duration(obs.Now() - start))
	return out, nil
}

func (s *Server) handleDigg(w http.ResponseWriter, r *http.Request) {
	if s.fence(w) {
		return
	}
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var req DiggRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	res, err := s.digg(digg.StoryID(id), req, requestTraceID(r))
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// digg performs one vote write and republishes the snapshot, observing
// the accept→front-page-visible freshness span.
func (s *Server) digg(id digg.StoryID, req DiggRequest, trace uint64) (DiggResponse, error) {
	start := obs.Now()
	at := digg.Minutes(req.At)
	if at == 0 {
		at = s.clock()
	}
	s.mu.Lock()
	s.stampWriteTrace(trace)
	res, err := s.store.Digg(id, req.Voter, at)
	s.mu.Unlock()
	if err != nil {
		return DiggResponse{}, err
	}
	s.republish()
	histFreshHTTP.Observe(time.Duration(obs.Now() - start))
	return DiggResponse{InNetwork: res.InNetwork, Promoted: res.Promoted, Votes: res.Votes}, nil
}

func (s *Server) handleUser(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	bp, buf, ok := s.userInfoBytes(digg.UserID(id))
	if !ok {
		writeError(w, http.StatusNotFound, "no such user")
		return
	}
	writeRaw(w, buf)
	*bp = buf[:0]
	encBufPool.Put(bp)
}

// userInfoBytes renders a user profile into a pooled buffer. The
// caller must return it with *bp = buf[:0]; encBufPool.Put(bp) after
// writing (the pooled pointer rides along so no fresh *[]byte header
// is allocated per request). ok is false for unknown users.
func (s *Server) userInfoBytes(u digg.UserID) (bp *[]byte, buf []byte, ok bool) {
	// The social graph is immutable once built, so degree lookups need
	// no lock at all.
	g := s.graph
	if int(u) >= g.NumNodes() {
		return nil, nil, false
	}
	var rank int
	view := s.snap.view.Load()
	switch {
	case s.storeRanks && view != nil:
		rank = view.ranks[u]
	case s.storeRanks:
		// No snapshot yet: the platform rank cache fill reads promotion
		// state, so exclude mutators.
		s.mu.RLock()
		rank = s.rankOf(u)
		s.mu.RUnlock()
	default:
		rank = s.rankOf(u)
	}
	bp = encBufPool.Get().(*[]byte)
	return bp, appendUserInfo((*bp)[:0], u, g.InDegree(u), g.OutDegree(u), rank), true
}

func (s *Server) handleFans(w http.ResponseWriter, r *http.Request) {
	s.handleLinks(w, r, true)
}

func (s *Server) handleFriends(w http.ResponseWriter, r *http.Request) {
	s.handleLinks(w, r, false)
}

// links returns the fan or friend list of u from the immutable graph
// (no lock), or ok=false for unknown users.
func (s *Server) links(u digg.UserID, fans bool) ([]digg.UserID, bool) {
	g := s.graph
	if int(u) >= g.NumNodes() {
		return nil, false
	}
	if fans {
		return g.Fans(u), true
	}
	return g.Friends(u), true
}

func (s *Server) handleLinks(w http.ResponseWriter, r *http.Request, fans bool) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	u := digg.UserID(id)
	links, ok := s.links(u, fans)
	if !ok {
		writeError(w, http.StatusNotFound, "no such user")
		return
	}
	writeJSON(w, http.StatusOK, UserLinks{ID: u, Users: links})
}

func (s *Server) handleTopUsers(w http.ResponseWriter, r *http.Request) {
	limit, err := queryIntRaw(r.URL.RawQuery, "limit", 100)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if limit <= 0 { // digg.Platform.TopUsers treats k <= 0 as "none"
		writeRaw(w, emptyArray)
		return
	}
	view := s.snap.view.Load()
	rendered := 0
	if view != nil {
		rendered = len(view.topEnds)
	}
	if view == nil || (view.topTotal > rendered && limit > rendered) {
		s.topUsersLocked(w, limit)
		return
	}
	if limit >= rendered {
		writeRaw(w, view.topBuf)
		return
	}
	writeRaw(w, view.topBuf[:view.topEnds[limit-1]], bracketClose)
}

func (s *Server) topUsersLocked(w http.ResponseWriter, limit int) {
	s.mu.RLock()
	users := s.store.TopUsers(limit)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, users)
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, digg.ErrUnknownUser):
		return http.StatusBadRequest
	case errors.Is(err, digg.ErrAlreadyVoted):
		return http.StatusConflict
	case errors.Is(err, digg.ErrStoryCompacted):
		return http.StatusGone
	case errors.Is(err, digg.ErrNoStory):
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}
