package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"diggsim/internal/digg"
	"diggsim/internal/live"
)

// Server serves a digg.Platform over HTTP/JSON. The platform is not
// concurrency-safe, so handlers synchronize on an RWMutex: read
// handlers take the read lock and proceed concurrently with each other
// (heavy scraping no longer serializes), while writes — HTTP
// submissions and diggs, or the live simulation stepper when a
// live.Service is attached — take the write lock.
type Server struct {
	// mu guards the platform. With AttachLive it is replaced by the
	// service's lock so the simulation writer and HTTP readers
	// interleave on one mutex.
	mu       *sync.RWMutex
	platform *digg.Platform
	now      digg.Minutes
	// nowFn, when set, overrides the static now field (live sim clock,
	// or a wall-advancing clock in static mode). It must be safe to
	// call without holding mu.
	nowFn   func() digg.Minutes
	rankOf  func(digg.UserID) int
	live    *live.Service
	metrics *Metrics
}

// NewServer wraps the platform. now is the clock used for upcoming-
// queue visibility and write operations; rankOf maps users to
// reputation ranks for /api/users (nil means platform-derived ranks).
func NewServer(p *digg.Platform, now digg.Minutes, rankOf func(digg.UserID) int) *Server {
	if rankOf == nil {
		rankOf = p.UserRank
	}
	return &Server{mu: &sync.RWMutex{}, platform: p, now: now, rankOf: rankOf}
}

// SetNow advances the server clock (static mode; a SetNowFunc clock
// takes precedence).
func (s *Server) SetNow(now digg.Minutes) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
}

// SetNowFunc installs a clock function consulted on every request that
// needs the current sim time (upcoming-queue visibility, default vote
// and submission timestamps), fixing the frozen-clock staleness of a
// static server. fn must be safe for concurrent use and must not
// acquire the server lock. Call before serving traffic.
func (s *Server) SetNowFunc(fn func() digg.Minutes) { s.nowFn = fn }

// AttachLive connects a live simulation service: the server adopts the
// service's platform lock (so HTTP readers interleave safely with the
// simulation writer), serves the service's clock, and exposes the
// /api/stream SSE feed plus live metrics on /api/stats. Call before
// Handler and before the service runs.
func (s *Server) AttachLive(svc *live.Service) {
	s.mu = svc.Locker()
	s.nowFn = svc.Now
	s.live = svc
}

// AttachMetrics includes the middleware's request counters in
// /api/stats responses. Call before Handler.
func (s *Server) AttachMetrics(m *Metrics) { s.metrics = m }

// clock returns the current sim time: the nowFn clock when installed,
// the static now otherwise. Callers must not hold the lock.
func (s *Server) clock() digg.Minutes {
	if s.nowFn != nil {
		return s.nowFn()
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.now
}

// Handler returns the HTTP routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /api/frontpage", s.handleFrontPage)
	mux.HandleFunc("GET /api/stories", s.handleStoryList)
	mux.HandleFunc("GET /api/upcoming", s.handleUpcoming)
	mux.HandleFunc("GET /api/stories/{id}", s.handleStory)
	mux.HandleFunc("POST /api/stories", s.handleSubmit)
	mux.HandleFunc("POST /api/stories/{id}/digg", s.handleDigg)
	mux.HandleFunc("GET /api/users/{id}", s.handleUser)
	mux.HandleFunc("GET /api/users/{id}/fans", s.handleFans)
	mux.HandleFunc("GET /api/users/{id}/friends", s.handleFriends)
	mux.HandleFunc("GET /api/topusers", s.handleTopUsers)
	mux.HandleFunc("GET /api/stats", s.handleStats)
	if s.live != nil {
		mux.HandleFunc("GET /api/stream", s.handleStream)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg})
}

// queryInt parses an integer query parameter with a default.
func queryInt(r *http.Request, key string, def int) (int, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("invalid %s: %q", key, raw)
	}
	return v, nil
}

func pathID(r *http.Request) (int, error) {
	raw := r.PathValue("id")
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("invalid id %q", raw)
	}
	return v, nil
}

func (s *Server) handleFrontPage(w http.ResponseWriter, r *http.Request) {
	limit, err := queryInt(r, "limit", 15)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.mu.RLock()
	stories := s.platform.FrontPage(limit)
	out := make([]StorySummary, len(stories))
	for i, st := range stories {
		out[i] = summarize(st)
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleUpcoming(w http.ResponseWriter, r *http.Request) {
	limit, err := queryInt(r, "limit", 15)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	now := s.clock()
	s.mu.RLock()
	stories := s.platform.Upcoming(now, limit)
	out := make([]StorySummary, len(stories))
	for i, st := range stories {
		out[i] = summarize(st)
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, out)
}

// handleStoryList serves a paginated listing of every story in
// submission order: GET /api/stories?offset=0&limit=50.
func (s *Server) handleStoryList(w http.ResponseWriter, r *http.Request) {
	offset, err := queryInt(r, "offset", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	limit, err := queryInt(r, "limit", 50)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if offset < 0 || limit < 0 {
		writeError(w, http.StatusBadRequest, "offset and limit must be non-negative")
		return
	}
	if limit > 1000 {
		limit = 1000
	}
	s.mu.RLock()
	all := s.platform.Stories()
	var page StoryPage
	page.Total = len(all)
	page.Offset = offset
	if offset < len(all) {
		end := offset + limit
		if end > len(all) {
			end = len(all)
		}
		page.Stories = make([]StorySummary, 0, end-offset)
		for _, st := range all[offset:end] {
			page.Stories = append(page.Stories, summarize(st))
		}
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, page)
}

func (s *Server) handleStory(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.mu.RLock()
	st, err := s.platform.Story(digg.StoryID(id))
	var out StoryDetail
	if err == nil {
		out = detail(st)
	}
	s.mu.RUnlock()
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	at := digg.Minutes(req.At)
	if at == 0 {
		at = s.clock()
	}
	s.mu.Lock()
	st, err := s.platform.Submit(req.Submitter, req.Title, req.Interest, at)
	var out StoryDetail
	if err == nil {
		out = detail(st)
	}
	s.mu.Unlock()
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, out)
}

func (s *Server) handleDigg(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var req DiggRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	at := digg.Minutes(req.At)
	if at == 0 {
		at = s.clock()
	}
	s.mu.Lock()
	res, err := s.platform.Digg(digg.StoryID(id), req.Voter, at)
	s.mu.Unlock()
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, DiggResponse{InNetwork: res.InNetwork, Promoted: res.Promoted})
}

func (s *Server) handleUser(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	u := digg.UserID(id)
	s.mu.RLock()
	g := s.platform.Graph
	if int(u) >= g.NumNodes() {
		s.mu.RUnlock()
		writeError(w, http.StatusNotFound, "no such user")
		return
	}
	info := UserInfo{ID: u, Fans: g.InDegree(u), Friends: g.OutDegree(u), Rank: s.rankOf(u)}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleFans(w http.ResponseWriter, r *http.Request) {
	s.handleLinks(w, r, true)
}

func (s *Server) handleFriends(w http.ResponseWriter, r *http.Request) {
	s.handleLinks(w, r, false)
}

func (s *Server) handleLinks(w http.ResponseWriter, r *http.Request, fans bool) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	u := digg.UserID(id)
	s.mu.RLock()
	g := s.platform.Graph
	if int(u) >= g.NumNodes() {
		s.mu.RUnlock()
		writeError(w, http.StatusNotFound, "no such user")
		return
	}
	var links []digg.UserID
	if fans {
		links = append(links, g.Fans(u)...)
	} else {
		links = append(links, g.Friends(u)...)
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, UserLinks{ID: u, Users: links})
}

func (s *Server) handleTopUsers(w http.ResponseWriter, r *http.Request) {
	limit, err := queryInt(r, "limit", 100)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.mu.RLock()
	users := s.platform.TopUsers(limit)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, users)
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, digg.ErrUnknownUser):
		return http.StatusBadRequest
	case errors.Is(err, digg.ErrAlreadyVoted):
		return http.StatusConflict
	case errors.Is(err, digg.ErrStoryCompacted):
		return http.StatusGone
	case strings.Contains(err.Error(), "no story"):
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}
