package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"diggsim/internal/digg"
)

// Server serves a digg.Platform over HTTP/JSON. The platform is not
// concurrency-safe, so every handler holds the server mutex; read-heavy
// scraping workloads are still fast because handlers do little work
// under the lock.
type Server struct {
	mu       sync.Mutex
	platform *digg.Platform
	now      digg.Minutes
	rankOf   func(digg.UserID) int
}

// NewServer wraps the platform. now is the clock used for upcoming-
// queue visibility and write operations; rankOf maps users to
// reputation ranks for /api/users (nil means platform-derived ranks).
func NewServer(p *digg.Platform, now digg.Minutes, rankOf func(digg.UserID) int) *Server {
	if rankOf == nil {
		rankOf = p.UserRank
	}
	return &Server{platform: p, now: now, rankOf: rankOf}
}

// SetNow advances the server clock.
func (s *Server) SetNow(now digg.Minutes) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
}

// Handler returns the HTTP routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /api/frontpage", s.handleFrontPage)
	mux.HandleFunc("GET /api/stories", s.handleStoryList)
	mux.HandleFunc("GET /api/upcoming", s.handleUpcoming)
	mux.HandleFunc("GET /api/stories/{id}", s.handleStory)
	mux.HandleFunc("POST /api/stories", s.handleSubmit)
	mux.HandleFunc("POST /api/stories/{id}/digg", s.handleDigg)
	mux.HandleFunc("GET /api/users/{id}", s.handleUser)
	mux.HandleFunc("GET /api/users/{id}/fans", s.handleFans)
	mux.HandleFunc("GET /api/users/{id}/friends", s.handleFriends)
	mux.HandleFunc("GET /api/topusers", s.handleTopUsers)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg})
}

// queryInt parses an integer query parameter with a default.
func queryInt(r *http.Request, key string, def int) (int, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("invalid %s: %q", key, raw)
	}
	return v, nil
}

func pathID(r *http.Request) (int, error) {
	raw := r.PathValue("id")
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("invalid id %q", raw)
	}
	return v, nil
}

func (s *Server) handleFrontPage(w http.ResponseWriter, r *http.Request) {
	limit, err := queryInt(r, "limit", 15)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.mu.Lock()
	stories := s.platform.FrontPage(limit)
	out := make([]StorySummary, len(stories))
	for i, st := range stories {
		out[i] = summarize(st)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleUpcoming(w http.ResponseWriter, r *http.Request) {
	limit, err := queryInt(r, "limit", 15)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.mu.Lock()
	stories := s.platform.Upcoming(s.now, limit)
	out := make([]StorySummary, len(stories))
	for i, st := range stories {
		out[i] = summarize(st)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// handleStoryList serves a paginated listing of every story in
// submission order: GET /api/stories?offset=0&limit=50.
func (s *Server) handleStoryList(w http.ResponseWriter, r *http.Request) {
	offset, err := queryInt(r, "offset", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	limit, err := queryInt(r, "limit", 50)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if offset < 0 || limit < 0 {
		writeError(w, http.StatusBadRequest, "offset and limit must be non-negative")
		return
	}
	if limit > 1000 {
		limit = 1000
	}
	s.mu.Lock()
	all := s.platform.Stories()
	var page StoryPage
	page.Total = len(all)
	page.Offset = offset
	if offset < len(all) {
		end := offset + limit
		if end > len(all) {
			end = len(all)
		}
		page.Stories = make([]StorySummary, 0, end-offset)
		for _, st := range all[offset:end] {
			page.Stories = append(page.Stories, summarize(st))
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, page)
}

func (s *Server) handleStory(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.mu.Lock()
	st, err := s.platform.Story(digg.StoryID(id))
	var out StoryDetail
	if err == nil {
		out = detail(st)
	}
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	s.mu.Lock()
	at := digg.Minutes(req.At)
	if at == 0 {
		at = s.now
	}
	st, err := s.platform.Submit(req.Submitter, req.Title, req.Interest, at)
	var out StoryDetail
	if err == nil {
		out = detail(st)
	}
	s.mu.Unlock()
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, out)
}

func (s *Server) handleDigg(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var req DiggRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	s.mu.Lock()
	at := digg.Minutes(req.At)
	if at == 0 {
		at = s.now
	}
	res, err := s.platform.Digg(digg.StoryID(id), req.Voter, at)
	s.mu.Unlock()
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, DiggResponse{InNetwork: res.InNetwork, Promoted: res.Promoted})
}

func (s *Server) handleUser(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	u := digg.UserID(id)
	s.mu.Lock()
	g := s.platform.Graph
	if int(u) >= g.NumNodes() {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no such user")
		return
	}
	info := UserInfo{ID: u, Fans: g.InDegree(u), Friends: g.OutDegree(u), Rank: s.rankOf(u)}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleFans(w http.ResponseWriter, r *http.Request) {
	s.handleLinks(w, r, true)
}

func (s *Server) handleFriends(w http.ResponseWriter, r *http.Request) {
	s.handleLinks(w, r, false)
}

func (s *Server) handleLinks(w http.ResponseWriter, r *http.Request, fans bool) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	u := digg.UserID(id)
	s.mu.Lock()
	g := s.platform.Graph
	if int(u) >= g.NumNodes() {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no such user")
		return
	}
	var links []digg.UserID
	if fans {
		links = append(links, g.Fans(u)...)
	} else {
		links = append(links, g.Friends(u)...)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, UserLinks{ID: u, Users: links})
}

func (s *Server) handleTopUsers(w http.ResponseWriter, r *http.Request) {
	limit, err := queryInt(r, "limit", 100)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.mu.Lock()
	users := s.platform.TopUsers(limit)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, users)
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, digg.ErrUnknownUser):
		return http.StatusBadRequest
	case errors.Is(err, digg.ErrAlreadyVoted):
		return http.StatusConflict
	case errors.Is(err, digg.ErrStoryCompacted):
		return http.StatusGone
	case strings.Contains(err.Error(), "no story"):
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}
