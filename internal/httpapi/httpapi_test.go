package httpapi

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"diggsim/internal/digg"
	"diggsim/internal/graph"
)

// newTestServer builds a tiny live platform:
// users 0..9; 1 and 2 are fans of 0; threshold-3 promotion.
func newTestServer(t *testing.T) (*Server, *httptest.Server, *Client) {
	t.Helper()
	g, err := graph.FromEdgeList(10, [][2]graph.NodeID{{1, 0}, {2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	p := digg.NewPlatform(g, &digg.ClassicPromotion{VoteThreshold: 3, Window: digg.Day})
	srv := NewServer(p, 100, nil)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL)
	c.Backoff = time.Millisecond
	return srv, ts, c
}

func TestHealth(t *testing.T) {
	_, _, c := newTestServer(t)
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitAndFetchStory(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()
	created, err := c.Submit(ctx, SubmitRequest{Submitter: 0, Title: "hello", Interest: 0.5, At: 10})
	if err != nil {
		t.Fatal(err)
	}
	if created.Title != "hello" || created.Submitter != 0 || created.Votes != 1 {
		t.Errorf("created = %+v", created)
	}
	got, err := c.Story(ctx, created.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != created.ID || len(got.VoteList) != 1 || got.VoteList[0].Voter != 0 {
		t.Errorf("story = %+v", got)
	}
}

func TestDiggFlow(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()
	st, err := c.Submit(ctx, SubmitRequest{Submitter: 0, Title: "t", At: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Fan vote: in-network.
	res, err := c.Digg(ctx, st.ID, DiggRequest{Voter: 1, At: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !res.InNetwork || res.Promoted {
		t.Errorf("fan vote = %+v", res)
	}
	// Third vote promotes (threshold 3).
	res, err = c.Digg(ctx, st.ID, DiggRequest{Voter: 5, At: 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.InNetwork || !res.Promoted {
		t.Errorf("promoting vote = %+v", res)
	}
	// Duplicate vote: 409.
	_, err = c.Digg(ctx, st.ID, DiggRequest{Voter: 5, At: 13})
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.StatusCode != http.StatusConflict {
		t.Errorf("duplicate vote err = %v", err)
	}
	// Front page now has the story.
	fp, err := c.FrontPage(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(fp) != 1 || fp[0].ID != st.ID || !fp[0].Promoted {
		t.Errorf("front page = %+v", fp)
	}
}

func TestUpcomingQueue(t *testing.T) {
	srv, _, c := newTestServer(t)
	ctx := context.Background()
	a, _ := c.Submit(ctx, SubmitRequest{Submitter: 0, Title: "a", At: 10})
	b, _ := c.Submit(ctx, SubmitRequest{Submitter: 1, Title: "b", At: 20})
	up, err := c.Upcoming(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(up) != 2 || up[0].ID != b.ID || up[1].ID != a.ID {
		t.Errorf("upcoming = %+v", up)
	}
	// Clock before submissions hides them.
	srv.SetNow(5)
	up, err = c.Upcoming(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(up) != 0 {
		t.Errorf("time-traveling queue = %+v", up)
	}
}

func TestUserEndpoints(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()
	info, err := c.User(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Fans != 2 || info.Friends != 0 {
		t.Errorf("user info = %+v", info)
	}
	fans, err := c.Fans(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fans) != 2 || fans[0] != 1 || fans[1] != 2 {
		t.Errorf("fans = %v", fans)
	}
	friends, err := c.Friends(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(friends) != 1 || friends[0] != 0 {
		t.Errorf("friends = %v", friends)
	}
}

func TestErrorStatuses(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()
	// Missing story: 404.
	_, err := c.Story(ctx, 999)
	if apiErr, ok := err.(*APIError); !ok || apiErr.StatusCode != http.StatusNotFound {
		t.Errorf("missing story err = %v", err)
	}
	// Missing user: 404.
	_, err = c.User(ctx, 999)
	if apiErr, ok := err.(*APIError); !ok || apiErr.StatusCode != http.StatusNotFound {
		t.Errorf("missing user err = %v", err)
	}
	// Unknown submitter: 400.
	_, err = c.Submit(ctx, SubmitRequest{Submitter: 999, Title: "x", At: 1})
	if apiErr, ok := err.(*APIError); !ok || apiErr.StatusCode != http.StatusBadRequest {
		t.Errorf("bad submitter err = %v", err)
	}
	// Bad limit query: 400.
	resp, err := http.Get(c.BaseURL + "/api/frontpage?limit=zebra")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad query status = %d", resp.StatusCode)
	}
	// Bad path id: 400.
	resp, err = http.Get(c.BaseURL + "/api/stories/abc")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id status = %d", resp.StatusCode)
	}
}

func TestClientRetriesOn5xx(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok"))
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	c.Backoff = time.Millisecond
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if calls.Load() != 3 {
		t.Errorf("calls = %d want 3", calls.Load())
	}
}

func TestClientDoesNotRetry4xx(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusNotFound)
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	c.Backoff = time.Millisecond
	if err := c.Health(context.Background()); err == nil {
		t.Fatal("404 not surfaced")
	}
	if calls.Load() != 1 {
		t.Errorf("calls = %d want 1 (no retry on 4xx)", calls.Load())
	}
}

func TestClientGivesUpAfterRetries(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	c.MaxRetries = 2
	c.Backoff = time.Millisecond
	if err := c.Health(context.Background()); err == nil {
		t.Fatal("persistent 500 not surfaced")
	}
	if calls.Load() != 3 {
		t.Errorf("calls = %d want 3 (1 + 2 retries)", calls.Load())
	}
}

func TestClientContextCancellation(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	c.MaxRetries = 100
	c.Backoff = 50 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.Health(ctx)
	if err == nil {
		t.Fatal("cancelled request succeeded")
	}
	if time.Since(start) > 2*time.Second {
		t.Error("cancellation did not stop retry loop promptly")
	}
}

func TestScrapeEndToEnd(t *testing.T) {
	// Build a live platform with a couple of stories, then scrape it
	// and check the reconstruction.
	g, err := graph.FromEdgeList(20, [][2]graph.NodeID{{1, 0}, {2, 0}, {3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	p := digg.NewPlatform(g, &digg.ClassicPromotion{VoteThreshold: 3, Window: digg.Day})
	s1, _ := p.Submit(0, "one", 0.5, 10)
	p.Digg(s1.ID, 1, 11)
	p.Digg(s1.ID, 5, 12) // promotes (3 votes)
	s2, _ := p.Submit(3, "two", 0.5, 20)
	p.Digg(s2.ID, 6, 21)

	srv := NewServer(p, 100, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	c.Backoff = time.Millisecond

	ds, err := Scrape(context.Background(), c, ScrapeConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Stories) != 2 {
		t.Fatalf("scraped %d stories", len(ds.Stories))
	}
	// Chronological vote lists with submitter first.
	for _, s := range ds.Stories {
		if s.Votes[0].Voter != s.Submitter {
			t.Errorf("story %d: first vote %d != submitter %d", s.ID, s.Votes[0].Voter, s.Submitter)
		}
	}
	// Fan edges among voters were reconstructed: 1 -> 0 must exist.
	if !ds.Graph.HasEdge(1, 0) {
		t.Error("fan link 1->0 lost in scrape")
	}
	// Promotion state survived.
	var promoted *digg.Story
	for _, s := range ds.Stories {
		if s.ID == s1.ID {
			promoted = s
		}
	}
	if promoted == nil || !promoted.Promoted {
		t.Error("promoted story lost promotion state")
	}
	// Samples recovered.
	if len(ds.FrontPage) != 1 {
		t.Errorf("front-page sample = %d", len(ds.FrontPage))
	}
}

func TestScrapeAllPaginates(t *testing.T) {
	g, err := graph.FromEdgeList(30, [][2]graph.NodeID{{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	p := digg.NewPlatform(g, digg.NeverPromote{})
	const n = 23
	for i := 0; i < n; i++ {
		if _, err := p.Submit(digg.UserID(i%10), "t", 0.5, digg.Minutes(i)); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewServer(p, 100, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	c.Backoff = time.Millisecond
	// PageSize 7 forces several pages (23 = 3*7 + 2).
	ds, err := Scrape(context.Background(), c, ScrapeConfig{All: true, PageSize: 7, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Stories) != n {
		t.Fatalf("scraped %d stories want %d", len(ds.Stories), n)
	}
	seen := map[digg.StoryID]bool{}
	for _, s := range ds.Stories {
		if seen[s.ID] {
			t.Fatalf("duplicate story %d", s.ID)
		}
		seen[s.ID] = true
	}
}

func TestScrapePropagatesErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	c.Backoff = time.Millisecond
	if _, err := Scrape(context.Background(), c, ScrapeConfig{}); err == nil {
		t.Fatal("scrape of broken server succeeded")
	}
}

func TestFetchAllOrderAndBound(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	var inFlight, maxInFlight atomic.Int32
	out, err := fetchAll(context.Background(), 5, items, func(ctx context.Context, v int) (int, error) {
		cur := inFlight.Add(1)
		for {
			prev := maxInFlight.Load()
			if cur <= prev || maxInFlight.CompareAndSwap(prev, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return v * 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*2 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if maxInFlight.Load() > 5 {
		t.Errorf("worker bound exceeded: %d", maxInFlight.Load())
	}
}

func TestFetchAllStopsOnError(t *testing.T) {
	items := make([]int, 1000)
	var calls atomic.Int32
	_, err := fetchAll(context.Background(), 4, items, func(ctx context.Context, v int) (int, error) {
		if calls.Add(1) == 10 {
			return 0, context.DeadlineExceeded
		}
		return 0, nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if calls.Load() > 500 {
		t.Errorf("error did not stop work: %d calls", calls.Load())
	}
}
