package httpapi

// client_retry_test.go exercises the transient-retry policy against
// deliberately flaky servers: idempotent GETs ride out connection
// drops and 5xx bursts, while non-idempotent POSTs fail fast (except
// on 429, where the server rejected the request before doing work).

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyServer fails the first n requests by invoking fail, then
// serves 200 "ok". It returns the server and the call counter.
func flakyServer(t *testing.T, n int32, fail func(w http.ResponseWriter)) (*httptest.Server, *atomic.Int32) {
	t.Helper()
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= n {
			fail(w)
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok"))
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

// dropConn severs the TCP connection mid-request so the client sees a
// connection error rather than an HTTP status.
func dropConn(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic("test server does not support hijacking")
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		panic(err)
	}
	conn.Close()
}

func TestClientGETRetriesConnectionError(t *testing.T) {
	ts, calls := flakyServer(t, 2, dropConn)
	c := NewClientWith(ts.URL, ClientOptions{Backoff: time.Millisecond})
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("GET did not recover from dropped connections: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("calls = %d want 3", got)
	}
}

func TestClientPOSTDoesNotRetryConnectionError(t *testing.T) {
	ts, calls := flakyServer(t, 1000, dropConn)
	c := NewClientWith(ts.URL, ClientOptions{Backoff: time.Millisecond})
	err := c.do(context.Background(), http.MethodPost, "/v1/stories", nil, nil)
	if err == nil {
		t.Fatal("dropped POST reported success")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("calls = %d want 1 (a timed-out POST may already have applied)", got)
	}
}

func TestClientPOSTDoesNotRetry5xx(t *testing.T) {
	ts, calls := flakyServer(t, 1000, func(w http.ResponseWriter) {
		w.WriteHeader(http.StatusInternalServerError)
	})
	c := NewClientWith(ts.URL, ClientOptions{Backoff: time.Millisecond})
	err := c.do(context.Background(), http.MethodPost, "/v1/stories", nil, nil)
	if err == nil {
		t.Fatal("500 POST reported success")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("calls = %d want 1 (5xx on a write is ambiguous)", got)
	}
}

func TestClientPOSTStillRetries429(t *testing.T) {
	ts, calls := flakyServer(t, 2, func(w http.ResponseWriter) {
		w.WriteHeader(http.StatusTooManyRequests)
	})
	c := NewClientWith(ts.URL, ClientOptions{Backoff: time.Millisecond})
	if err := c.do(context.Background(), http.MethodPost, "/v1/stories", nil, nil); err != nil {
		t.Fatalf("POST did not ride out 429s: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("calls = %d want 3", got)
	}
}

func TestClientRetryOptOut(t *testing.T) {
	ts, calls := flakyServer(t, 1000, func(w http.ResponseWriter) {
		w.WriteHeader(http.StatusBadGateway)
	})
	c := NewClientWith(ts.URL, ClientOptions{
		Backoff:               time.Millisecond,
		DisableTransientRetry: true,
	})
	if err := c.Health(context.Background()); err == nil {
		t.Fatal("502 not surfaced with retries disabled")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("calls = %d want 1 (opt-out must not retry)", got)
	}
}

func TestClientBackoffCapRespected(t *testing.T) {
	// With Backoff=1ms and MaxBackoff=4ms, 5 retries cost at most
	// ~1+2+4+4+4 ms plus jitter; an uncapped doubling would need
	// 1+2+4+8+16. The timing bound is generous to stay unflaky.
	ts, _ := flakyServer(t, 5, func(w http.ResponseWriter) {
		w.WriteHeader(http.StatusBadGateway)
	})
	c := NewClientWith(ts.URL, ClientOptions{
		MaxRetries: 5,
		Backoff:    time.Millisecond,
		MaxBackoff: 4 * time.Millisecond,
	})
	start := time.Now()
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("GET did not recover: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("retries took %v; backoff cap not applied?", d)
	}
}
