package httpapi

// repl.go wires a replication follower into the serving layer. The
// server adopts the follower's store lock exactly as AttachLive adopts
// the simulation's (snapshot rebuilds interleave with the tailers'
// applies), republishes the read snapshot after every applied batch,
// and serves the full read surface lock-free. What changes on a
// follower:
//
//   - Writes are fenced: every write endpoint answers 503 with the
//     stable read_only_replica error code until Promote lifts the
//     fence. Reads never 503.
//   - Every response carries X-Replica-Lag (seconds, the age of the
//     oldest shard's heartbeat) so clients can judge staleness.
//   - GET /readyz gates on replication health: ready once every shard
//     has heard a heartbeat and staleness is within the configured
//     bound. A primary (or a promoted follower) is always ready.
//   - /v1/stats grows a "repl" block and /metrics per-shard
//     diggsim_repl_* series.

import (
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"diggsim/internal/apiv1"
	"diggsim/internal/repl"
)

// DefaultReadyMaxLag is the staleness bound /readyz applies when
// AttachRepl is given none.
const DefaultReadyMaxLag = 5 * time.Second

// AttachRepl connects a replication follower: the server adopts the
// follower's lock, republishes the snapshot after every applied batch,
// fences writes while the follower is read-only, and reports
// replication position on /v1/stats, /metrics, /readyz and the
// X-Replica-Lag header. maxLag bounds /readyz staleness (0 means
// DefaultReadyMaxLag). Call before Handler and before Follower.Start.
func (s *Server) AttachRepl(f *repl.Follower, maxLag time.Duration) {
	s.mu = f.Locker()
	s.repl = f
	if maxLag <= 0 {
		maxLag = DefaultReadyMaxLag
	}
	s.replMaxLag = maxLag
	f.SetAfterApply(s.republish)
}

// MountRepl serves a node's replication endpoints under /repl/v1/ on
// the server's handler — the primary's streaming surface, and on
// followers the status/promote surface elections use. Call before
// Handler.
func (s *Server) MountRepl(src *repl.Source) { s.replSrc = src }

// replReadOnly reports whether writes must be fenced.
func (s *Server) replReadOnly() bool {
	return s.repl != nil && s.repl.ReadOnly()
}

// fenceV1 rejects the write with the machine-readable envelope when
// this node is a read-only follower. Returns true when fenced.
func (s *Server) fenceV1(w http.ResponseWriter) bool {
	if !s.replReadOnly() {
		return false
	}
	writeV1Error(w, v1Err(http.StatusServiceUnavailable, apiv1.CodeReadOnlyReplica,
		"this node is a read-only follower; write to the primary"))
	return true
}

// fence rejects the write with the legacy string-error envelope when
// this node is a read-only follower. Returns true when fenced.
func (s *Server) fence(w http.ResponseWriter) bool {
	if !s.replReadOnly() {
		return false
	}
	writeError(w, http.StatusServiceUnavailable,
		"this node is a read-only follower; write to the primary")
	return true
}

// lagHeaderTTL bounds how often the X-Replica-Lag value is
// reformatted. The header is advisory with heartbeat-interval
// resolution; formatting a float and re-inserting a canonicalized
// header per request would tax the lock-free read path for nothing.
const lagHeaderTTL = 50 * time.Millisecond

// lagHeaderEvery gates how many requests pass between clock checks
// for the cached header value: reading the clock costs more than the
// whole fast path on some hosts, so only every Nth request considers
// a refresh. Under load the gap is microseconds; on an idle follower
// the value served is at most lagHeaderEvery requests old, which an
// advisory header tolerates.
const lagHeaderEvery = 32

// replLagMiddleware stamps X-Replica-Lag (staleness in seconds, "inf"
// before the first heartbeat) on every response a follower serves.
// The formatted value is cached for lagHeaderTTL and shared across
// requests; the fast path is a counter bump, an atomic load, and one
// map insert.
func replLagMiddleware(f *repl.Follower, next http.Handler) http.Handler {
	var (
		reqs  atomic.Uint64
		stamp atomic.Int64
		value atomic.Pointer[[]string]
	)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if f.ReadOnly() {
			if n := reqs.Add(1); n%lagHeaderEvery == 1 || value.Load() == nil {
				now := time.Now().UnixNano()
				if last := stamp.Load(); now-last > int64(lagHeaderTTL) && stamp.CompareAndSwap(last, now) {
					s := "inf"
					if lag := f.Staleness(); lag <= time.Hour*24*365 {
						s = strconv.FormatFloat(lag.Seconds(), 'f', 3, 64)
					}
					v := []string{s}
					value.Store(&v)
				}
			}
			if v := value.Load(); v != nil {
				// Direct assignment: the key is already canonical, and
				// the shared slice is never appended to.
				w.Header()["X-Replica-Lag"] = *v
			}
		}
		next.ServeHTTP(w, r)
	})
}

// handleReadyz serves GET /readyz. A standalone or primary node is
// ready as soon as it can serve (recovery finished before the handler
// existed). A follower is ready once replication is healthy: no fatal
// error, and staleness within the bound.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	// The burn-rate gate applies to every role: a node burning error
	// budget at alert rate on both windows reports degraded so load
	// balancers drain it before users notice the regression.
	if name := s.degradedSLO(); name != "" {
		http.Error(w, "degraded: slo "+name+" is burning error budget at alert rate",
			http.StatusServiceUnavailable)
		return
	}
	if s.repl == nil || !s.repl.ReadOnly() {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
		return
	}
	if err := s.repl.Err(); err != nil {
		http.Error(w, "replication failed: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	if lag := s.repl.Staleness(); lag > s.replMaxLag {
		http.Error(w, fmt.Sprintf("replica lag %s exceeds bound %s", lag, s.replMaxLag),
			http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// replStats builds the /v1/stats replication block.
func (s *Server) replStats() *apiv1.ReplStats {
	if s.repl == nil {
		return nil
	}
	out := &apiv1.ReplStats{Role: "primary"}
	if s.repl.ReadOnly() {
		out.Role = "follower"
		out.Primary = s.repl.Primary()
		if lag := s.repl.Staleness(); lag > time.Hour*24*365 {
			out.StalenessSeconds = -1
		} else {
			out.StalenessSeconds = lag.Seconds()
		}
	}
	for _, st := range s.repl.ShardStatuses() {
		out.Shards = append(out.Shards, apiv1.ReplShardStats{
			Shard:                 st.Shard,
			AppliedLSN:            st.AppliedLSN,
			ShippedLSN:            st.ShippedLSN,
			LagSeconds:            st.LagSeconds,
			LastContactAgeSeconds: st.LastContact,
			CommitTraceID:         st.CommitTraceID,
		})
	}
	return out
}
