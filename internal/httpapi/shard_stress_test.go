package httpapi

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"diggsim/internal/apiv1"
	"diggsim/internal/digg"
	"diggsim/internal/graph"
	"diggsim/internal/rng"
	"diggsim/internal/shard"
)

// TestShardedWriteStress hammers a sharded server with concurrent
// batch writes (the per-shard-parallel BulkWriter path) and single
// writes while two cursor crawlers page through /v1/stories and
// /v1/frontpage. Run with -race this is the locking acceptance test
// for the sharded write path; the crawlers also decode every cursor
// they are handed and check the shard-generation vector sums to the
// composite generation — the merge invariant that makes sharded
// cursors trustworthy.
func TestShardedWriteStress(t *testing.T) {
	g, err := graph.PreferentialAttachment(rng.New(17), 800, 4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	store := shard.New(g, &digg.ClassicPromotion{VoteThreshold: 8, Window: digg.Day}, 4)
	for i := 0; i < 40; i++ {
		if _, err := store.Submit(digg.UserID(i), fmt.Sprintf("seed-%d", i), 0.6, digg.Minutes(i)); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewServer(store, 100, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx := context.Background()
	newClient := func() *Client {
		c := NewClient(ts.URL)
		c.Backoff = time.Millisecond
		return c
	}

	const rounds = 25
	var writers, crawlers sync.WaitGroup
	var writesDone atomic.Bool
	errc := make(chan error, 8)

	// Batch writer: bursts of votes spanning all shards plus a few
	// submissions per round, through the bulk endpoints.
	writers.Add(1)
	go func() {
		defer writers.Done()
		c := newClient()
		r := rng.New(18)
		at := int64(1000)
		for round := 0; round < rounds; round++ {
			diggs := make([]apiv1.BatchDiggItem, 40)
			for i := range diggs {
				at++
				diggs[i] = apiv1.BatchDiggItem{
					Story: digg.StoryID(r.Intn(40)), Voter: digg.UserID(r.Intn(800)), At: at,
				}
			}
			if _, err := c.DiggBatch(ctx, apiv1.BatchDiggRequest{Diggs: diggs}); err != nil {
				errc <- fmt.Errorf("batch digg: %w", err)
				return
			}
			subs := make([]apiv1.SubmitRequest, 5)
			for i := range subs {
				at++
				subs[i] = apiv1.SubmitRequest{
					Submitter: digg.UserID(r.Intn(800)), Title: "burst", Interest: 0.5, At: at,
				}
			}
			if _, err := c.SubmitBatch(ctx, apiv1.BatchSubmitRequest{Stories: subs}); err != nil {
				errc <- fmt.Errorf("batch submit: %w", err)
				return
			}
		}
	}()

	// Single writer: interleaves the serial write path with the bulk
	// one, so both lock disciplines run concurrently.
	writers.Add(1)
	go func() {
		defer writers.Done()
		c := newClient()
		r := rng.New(19)
		for round := 0; round < rounds*3; round++ {
			if round%5 == 0 {
				if _, err := c.Submit(ctx, SubmitRequest{Submitter: digg.UserID(r.Intn(800)), Title: "single", At: int64(9000 + round)}); err != nil {
					errc <- fmt.Errorf("single submit: %w", err)
					return
				}
			} else {
				// Duplicate-vote rejections are expected; transport errors are not.
				_, _ = c.Digg(ctx, digg.StoryID(r.Intn(40)), DiggRequest{Voter: digg.UserID(r.Intn(800)), At: int64(9000 + round)})
			}
		}
	}()

	// checkVector decodes a minted cursor and checks its shard vector
	// is present, the right width, and sums to the composite Gen.
	checkVector := func(cur apiv1.Cursor, kind apiv1.CursorKind) error {
		if cur == "" {
			return nil
		}
		p, err := cur.Decode(kind)
		if err != nil {
			return fmt.Errorf("decoding minted cursor %q: %w", cur, err)
		}
		if len(p.ShardGens) != 4 {
			return fmt.Errorf("cursor shard vector %v, want 4 entries", p.ShardGens)
		}
		var sum uint64
		for _, sg := range p.ShardGens {
			sum += sg
		}
		if sum != p.Gen {
			return fmt.Errorf("cursor gen %d != shard vector sum %d (%v)", p.Gen, sum, p.ShardGens)
		}
		return nil
	}

	// Two crawlers with different page sizes, restarting full crawls
	// until the writers finish.
	for w, pageSize := range []int{7, 13} {
		crawlers.Add(1)
		go func(w, pageSize int) {
			defer crawlers.Done()
			c := newClient()
			for !writesDone.Load() {
				startTotal, seen := -1, 0
				prev := -1
				for page, err := range c.Stories(ctx, pageSize) {
					if err != nil {
						errc <- fmt.Errorf("crawler %d stories: %w", w, err)
						return
					}
					if startTotal < 0 {
						startTotal = page.Total
					}
					for _, s := range page.Stories {
						if int(s.ID) <= prev {
							errc <- fmt.Errorf("crawler %d: story id %d after %d (duplicate/regression)", w, s.ID, prev)
							return
						}
						prev = int(s.ID)
						seen++
					}
					if err := checkVector(page.NextCursor, apiv1.CursorStories); err != nil {
						errc <- fmt.Errorf("crawler %d: %w", w, err)
						return
					}
					if seen >= startTotal {
						break
					}
				}
				if seen < startTotal {
					errc <- fmt.Errorf("crawler %d: saw %d of %d stories", w, seen, startTotal)
					return
				}

				dup := map[int]bool{}
				pages := 0
				for page, err := range c.FrontPagePages(ctx, pageSize) {
					if err != nil {
						errc <- fmt.Errorf("crawler %d frontpage: %w", w, err)
						return
					}
					for _, s := range page.Stories {
						if dup[int(s.ID)] {
							errc <- fmt.Errorf("crawler %d: duplicate front-page story %d", w, s.ID)
							return
						}
						dup[int(s.ID)] = true
					}
					if err := checkVector(page.NextCursor, apiv1.CursorFrontPage); err != nil {
						errc <- fmt.Errorf("crawler %d: %w", w, err)
						return
					}
					if pages++; pages >= 20 {
						break
					}
				}
			}
		}(w, pageSize)
	}

	// Writers run a bounded number of rounds; once they finish, the
	// crawlers complete their current crawl and exit.
	done := make(chan struct{})
	go func() {
		defer close(done)
		writers.Wait()
		writesDone.Store(true)
		crawlers.Wait()
	}()
	select {
	case err := <-errc:
		t.Fatal(err)
	case <-done:
	}
	// A goroutine that errored also exits its wait group; make sure no
	// error raced the clean completion.
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}
