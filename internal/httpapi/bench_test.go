package httpapi

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"diggsim/internal/digg"
	"diggsim/internal/graph"
	"diggsim/internal/live"
	"diggsim/internal/rng"
)

// benchPlatform builds a platform with enough stories and votes for
// realistic list/detail payloads.
func benchPlatform(b *testing.B) *digg.Platform {
	b.Helper()
	g, err := graph.PreferentialAttachment(rng.New(3), 2000, 4, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	p := digg.NewPlatform(g, &digg.ClassicPromotion{VoteThreshold: 10, Window: digg.Day})
	r := rng.New(4)
	for i := 0; i < 300; i++ {
		st, err := p.Submit(digg.UserID(r.Intn(2000)), fmt.Sprintf("story-%d", i), 0.5, digg.Minutes(i))
		if err != nil {
			b.Fatal(err)
		}
		votes := 5 + r.Intn(30)
		for v := 0; v < votes; v++ {
			_, _ = p.Digg(st.ID, digg.UserID(r.Intn(2000)), digg.Minutes(i+v+1))
		}
	}
	return p
}

func benchReads(b *testing.B, h http.Handler) {
	paths := []string{
		"/api/frontpage?limit=15",
		"/api/upcoming?limit=15",
		"/api/stories/42",
		"/api/users/7",
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			req := httptest.NewRequest(http.MethodGet, paths[i%len(paths)], nil)
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("status %d for %s", w.Code, paths[i%len(paths)])
			}
			i++
		}
	})
}

// BenchmarkServedReads measures read-handler throughput on a static
// server: the scraping hot path. Handlers take the read lock, so
// parallel requests proceed concurrently.
func BenchmarkServedReads(b *testing.B) {
	p := benchPlatform(b)
	srv := NewServer(p, 400, nil)
	benchReads(b, srv.Handler())
}

// BenchmarkServedReadsWhileLive measures the same read mix while the
// live simulation writer continuously mutates the platform under the
// shared RWMutex — the contention profile future live-mode PRs need to
// track.
func BenchmarkServedReadsWhileLive(b *testing.B) {
	p := benchPlatform(b)
	svc, err := live.NewService(p, live.Config{Seed: 6, SubmissionsPerHour: 120, StartAt: 400})
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServer(p, 400, nil)
	srv.AttachLive(svc)

	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		now := digg.Minutes(400)
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
				now += 5
				if err := svc.StepTo(now); err != nil {
					return
				}
			}
		}
	}()
	benchReads(b, srv.Handler())
	b.StopTimer()
	close(stop)
	<-writerDone
}
