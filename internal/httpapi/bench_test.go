package httpapi

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"diggsim/internal/digg"
	"diggsim/internal/durable"
	"diggsim/internal/graph"
	"diggsim/internal/live"
	"diggsim/internal/obs"
	"diggsim/internal/repl"
	"diggsim/internal/rng"
	"diggsim/internal/wal"
)

// benchPlatform builds a platform with enough stories and votes for
// realistic list/detail payloads. It takes testing.TB so the 0-alloc
// guard test shares the exact corpus the benchmarks measure.
func benchPlatform(tb testing.TB) *digg.Platform {
	tb.Helper()
	g, err := graph.PreferentialAttachment(rng.New(3), 2000, 4, 0.3)
	if err != nil {
		tb.Fatal(err)
	}
	p := digg.NewPlatform(g, &digg.ClassicPromotion{VoteThreshold: 10, Window: digg.Day})
	r := rng.New(4)
	for i := 0; i < 300; i++ {
		st, err := p.Submit(digg.UserID(r.Intn(2000)), fmt.Sprintf("story-%d", i), 0.5, digg.Minutes(i))
		if err != nil {
			tb.Fatal(err)
		}
		votes := 5 + r.Intn(30)
		for v := 0; v < votes; v++ {
			_, _ = p.Digg(st.ID, digg.UserID(r.Intn(2000)), digg.Minutes(i+v+1))
		}
	}
	return p
}

// benchWriter is a reusable allocation-free ResponseWriter, so the
// benchmarks measure the handlers rather than httptest.NewRecorder
// buffer churn (~2µs and a dozen allocs per op on this machine).
type benchWriter struct {
	h      http.Header
	status int
	n      int
}

func (w *benchWriter) Header() http.Header { return w.h }

func (w *benchWriter) WriteHeader(code int) { w.status = code }

func (w *benchWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

func (w *benchWriter) reset() {
	w.status = http.StatusOK
	w.n = 0
	clear(w.h)
}

// benchServe drives the handler over the path mix in parallel with
// per-goroutine reused requests and writers: the measured cost is the
// routing plus the handler, nothing else.
func benchServe(b *testing.B, h http.Handler, paths []string) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		reqs := make([]*http.Request, len(paths))
		for i, p := range paths {
			reqs[i] = httptest.NewRequest(http.MethodGet, p, nil)
		}
		w := &benchWriter{h: make(http.Header, 4)}
		i := 0
		for pb.Next() {
			w.reset()
			h.ServeHTTP(w, reqs[i%len(reqs)])
			if w.status != http.StatusOK {
				b.Fatalf("status %d for %s", w.status, paths[i%len(reqs)])
			}
			i++
		}
	})
}

// readMix is the scraper-shaped hot-path mix.
var readMix = []string{
	"/api/frontpage?limit=15",
	"/api/upcoming?limit=15",
	"/api/stories/42",
	"/api/users/7",
}

// BenchmarkServedReads measures read-handler throughput on a static
// server: the scraping hot path.
func BenchmarkServedReads(b *testing.B) {
	p := benchPlatform(b)
	srv := NewServer(p, 400, nil)
	benchServe(b, srv.Handler(), readMix)
}

// BenchmarkServedReadsFollower measures the same read mix served off
// a replication follower with a live tail attached: the snapshot read
// path plus the replica-lag middleware. The acceptance bar is within
// 10% of BenchmarkServedReads — follower reads must cost what primary
// reads cost.
func BenchmarkServedReadsFollower(b *testing.B) {
	p := benchPlatform(b)
	primary, err := durable.Create(b.TempDir(), p, []byte(`{"bench":"repl"}`), durable.Options{
		Policy:          &digg.ClassicPromotion{VoteThreshold: 10, Window: digg.Day},
		Sync:            wal.SyncOS,
		CheckpointEvery: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer primary.Close()

	src := &repl.Source{
		Shards:    []repl.SourceShard{{Dir: primary.Dir(), Head: primary.AppliedLSN}},
		Heartbeat: 10 * time.Millisecond, // dense lag observations for the quantile report
	}
	mux := http.NewServeMux()
	mux.Handle("/repl/v1/", http.StripPrefix("/repl/v1", src.Handler()))
	ts := httptest.NewServer(mux)
	defer ts.Close()
	defer src.Close()

	fdir := b.TempDir()
	tr := &repl.HTTPTransport{Base: ts.URL}
	node, err := repl.Bootstrap(context.Background(), tr, fdir, durable.Options{
		Policy: &digg.ClassicPromotion{VoteThreshold: 10, Window: digg.Day},
		Sync:   wal.SyncOS,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer node.Close()
	f := repl.NewFollower(node.Target, tr, repl.Options{StateDir: fdir, Primary: ts.URL})
	f.Start()
	defer f.Stop()
	deadline := time.Now().Add(20 * time.Second)
	for node.Target.AppliedLSN(0) < primary.AppliedLSN() {
		if time.Now().After(deadline) {
			b.Fatalf("follower never caught up (err: %v)", f.Err())
		}
		time.Sleep(time.Millisecond)
	}

	srv := NewServer(node.Store(), 400, nil)
	srv.AttachRepl(f, 0)
	benchServe(b, srv.Handler(), readMix)
	b.StopTimer()

	// Replication lag quantiles observed at each heartbeat during the
	// run; cmd/benchjson lifts the -ns metrics into quantiles_ns.
	lag := obs.Default.Histogram("diggsim_repl_lag_seconds", `shard="0"`,
		"Replication lag observed at each heartbeat.").Snapshot()
	if lag.Count() > 0 {
		b.ReportMetric(lag.Quantile(0.50), "lag-p50-ns")
		b.ReportMetric(lag.Quantile(0.99), "lag-p99-ns")
	}
}

// BenchmarkServedReadsWhileLive measures the same read mix while the
// live simulation writer continuously mutates the platform — the
// contention profile a live server faces.
func BenchmarkServedReadsWhileLive(b *testing.B) {
	p := benchPlatform(b)
	svc, err := live.NewService(p, live.Config{Seed: 6, SubmissionsPerHour: 120, StartAt: 400})
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServer(p, 400, nil)
	srv.AttachLive(svc)

	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		now := digg.Minutes(400)
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
				now += 5
				if err := svc.StepTo(now); err != nil {
					return
				}
			}
		}
	}()
	benchServe(b, srv.Handler(), readMix)
	b.StopTimer()
	close(stop)
	<-writerDone
}

// BenchmarkFrontPageHandler isolates the hottest endpoint. The
// acceptance bar for the snapshot read path is 0 allocs/op here.
func BenchmarkFrontPageHandler(b *testing.B) {
	p := benchPlatform(b)
	srv := NewServer(p, 400, nil)
	benchServe(b, srv.Handler(), []string{"/api/frontpage?limit=15"})
}

// BenchmarkUpcomingHandler isolates the upcoming queue (limit within
// the pre-rendered snapshot depth).
func BenchmarkUpcomingHandler(b *testing.B) {
	p := benchPlatform(b)
	srv := NewServer(p, 400, nil)
	benchServe(b, srv.Handler(), []string{"/api/upcoming?limit=15"})
}

// BenchmarkStoryListHandler isolates the paginated story listing.
func BenchmarkStoryListHandler(b *testing.B) {
	p := benchPlatform(b)
	srv := NewServer(p, 400, nil)
	benchServe(b, srv.Handler(), []string{"/api/stories?offset=100&limit=50"})
}

// BenchmarkStoryDetailHandler isolates the story detail endpoint
// (vote-list payload).
func BenchmarkStoryDetailHandler(b *testing.B) {
	p := benchPlatform(b)
	srv := NewServer(p, 400, nil)
	benchServe(b, srv.Handler(), []string{"/api/stories/42"})
}

// BenchmarkFrontPageHandlerWhileLive is the front-page endpoint under
// a continuously mutating platform.
func BenchmarkFrontPageHandlerWhileLive(b *testing.B) {
	p := benchPlatform(b)
	svc, err := live.NewService(p, live.Config{Seed: 6, SubmissionsPerHour: 120, StartAt: 400})
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServer(p, 400, nil)
	srv.AttachLive(svc)
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		now := digg.Minutes(400)
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
				now += 5
				if err := svc.StepTo(now); err != nil {
					return
				}
			}
		}
	}()
	benchServe(b, srv.Handler(), []string{"/api/frontpage?limit=15"})
	b.StopTimer()
	close(stop)
	<-writerDone
}

// benchVotersPerStory bounds how many benchmark votes land on one
// story before the feeder moves to a fresh one.
const benchVotersPerStory = 5000

// benchWritePlatform builds a platform sized for `votes` unique
// (story, voter) pairs: user 0 submits every story, users 1..5000 are
// the voters. NeverPromote keeps the write path uniform.
func benchWritePlatform(b *testing.B, votes int) (*digg.Platform, []digg.StoryID) {
	b.Helper()
	g, err := graph.FromEdgeList(benchVotersPerStory+1, [][2]graph.NodeID{{1, 0}})
	if err != nil {
		b.Fatal(err)
	}
	p := digg.NewPlatform(g, digg.NeverPromote{})
	nStories := votes/benchVotersPerStory + 1
	ids := make([]digg.StoryID, nStories)
	for i := range ids {
		st, err := p.Submit(0, fmt.Sprintf("bench-%d", i), 0.5, digg.Minutes(i))
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = st.ID
	}
	return p, ids
}

// BenchmarkSingleDigg measures the write path one vote at a time:
// each POST takes the write lock, applies one vote, and republishes
// the read snapshot. Compare votes/sec against BenchmarkBatchDigg.
func BenchmarkSingleDigg(b *testing.B) {
	p, stories := benchWritePlatform(b, b.N)
	srv := NewServer(p, 400, nil)
	h := srv.Handler()
	w := &benchWriter{h: make(http.Header, 4)}
	body := make([]byte, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		story := stories[i/benchVotersPerStory]
		voter := 1 + i%benchVotersPerStory
		body = body[:0]
		body = append(body, `{"voter":`...)
		body = strconv.AppendInt(body, int64(voter), 10)
		body = append(body, `,"at":500}`...)
		req := httptest.NewRequest(http.MethodPost,
			fmt.Sprintf("/v1/stories/%d/digg", story), strings.NewReader(string(body)))
		w.reset()
		h.ServeHTTP(w, req)
		if w.status != http.StatusOK {
			b.Fatalf("digg %d: status %d", i, w.status)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "votes/sec")
}

// BenchmarkBatchDigg measures the same votes through POST
// /v1/diggs:batch in batches of 100: one lock acquisition and one
// snapshot republish per hundred votes. The acceptance bar for the
// batch write endpoint is >= 2x BenchmarkSingleDigg's votes/sec.
func BenchmarkBatchDigg(b *testing.B) {
	const batch = 100
	p, stories := benchWritePlatform(b, b.N*batch)
	srv := NewServer(p, 400, nil)
	h := srv.Handler()
	w := &benchWriter{h: make(http.Header, 4)}
	var body []byte
	vote := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body = append(body[:0], `{"diggs":[`...)
		for k := 0; k < batch; k++ {
			if k > 0 {
				body = append(body, ',')
			}
			body = append(body, `{"story":`...)
			body = strconv.AppendInt(body, int64(stories[vote/benchVotersPerStory]), 10)
			body = append(body, `,"voter":`...)
			body = strconv.AppendInt(body, int64(1+vote%benchVotersPerStory), 10)
			body = append(body, `,"at":500}`...)
			vote++
		}
		body = append(body, `]}`...)
		req := httptest.NewRequest(http.MethodPost, "/v1/diggs:batch", strings.NewReader(string(body)))
		w.reset()
		h.ServeHTTP(w, req)
		if w.status != http.StatusOK {
			b.Fatalf("batch %d: status %d", i, w.status)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "votes/sec")
}

// BenchmarkDurableBatchDigg is BenchmarkBatchDigg with a durable store
// (write-ahead log, -fsync interval) underneath the same batch
// endpoint: each request's 100 votes cost one staged WAL append, with
// fsync amortized by the background flusher. The acceptance bar is
// >= 50% of BenchmarkBatchDigg's votes/sec — the price of surviving a
// restart. Reads are unaffected (queries never touch the WAL), which
// BenchmarkServedReads* keep pinning.
func BenchmarkDurableBatchDigg(b *testing.B) {
	const batch = 100
	p, stories := benchWritePlatform(b, b.N*batch)
	store, err := durable.Create(b.TempDir(), p, []byte(`{"bench":"durable"}`), durable.Options{
		Sync:            wal.SyncInterval,
		CheckpointEvery: -1, // measure the log path, not checkpoint stalls
	})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	srv := NewServer(store, 400, nil)
	h := srv.Handler()
	w := &benchWriter{h: make(http.Header, 4)}
	var body []byte
	vote := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body = append(body[:0], `{"diggs":[`...)
		for k := 0; k < batch; k++ {
			if k > 0 {
				body = append(body, ',')
			}
			body = append(body, `{"story":`...)
			body = strconv.AppendInt(body, int64(stories[vote/benchVotersPerStory]), 10)
			body = append(body, `,"voter":`...)
			body = strconv.AppendInt(body, int64(1+vote%benchVotersPerStory), 10)
			body = append(body, `,"at":500}`...)
			vote++
		}
		body = append(body, `]}`...)
		req := httptest.NewRequest(http.MethodPost, "/v1/diggs:batch", strings.NewReader(string(body)))
		w.reset()
		h.ServeHTTP(w, req)
		if w.status != http.StatusOK {
			b.Fatalf("batch %d: status %d", i, w.status)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "votes/sec")
}
