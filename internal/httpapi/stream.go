package httpapi

// stream.go serves the live event feed and the live-metrics endpoint.
// GET /api/stream is Server-Sent Events: one "event:"/"data:" frame per
// typed live.Event, with the bus sequence number as the SSE id so
// clients can detect gaps and resume. A reconnecting client sends
// Last-Event-ID and replay starts from the broadcast ring right after
// that sequence; events the ring has already overwritten reach the
// client as a synthetic "lag" event carrying the exact count. A slow
// client likewise loses oldest events rather than stalling the
// simulation.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"diggsim/internal/apiv1"
	"diggsim/internal/live"
	"diggsim/internal/obs"
)

// StatsResponse is the /api/stats envelope: live simulation metrics
// when a live service is attached, HTTP request metrics when the
// metrics middleware is attached.
type StatsResponse struct {
	Live *live.Stats      `json:"live,omitempty"`
	HTTP *MetricsSnapshot `json:"http,omitempty"`
	Repl *apiv1.ReplStats `json:"repl,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var resp StatsResponse
	if s.live != nil {
		st := s.live.Stats()
		resp.Live = &st
	}
	if s.metrics != nil {
		snap := s.metrics.Snapshot()
		resp.HTTP = &snap
	}
	resp.Repl = s.replStats()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	bus := s.live.Bus()
	var sub *live.Subscriber
	if lastID := r.Header.Get("Last-Event-ID"); lastID != "" {
		if seq, err := strconv.ParseUint(lastID, 10, 64); err == nil {
			// Resume: replay from the ring right after the last event
			// the client saw. If the ring has moved past it, the first
			// Drain reports the gap and the loop below surfaces it as
			// a lag event.
			sub = bus.SubscribeFrom(seq)
		}
	}
	if sub == nil {
		sub = bus.Subscribe()
	}
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ctx := r.Context()
	for {
		events, dropped := sub.Drain()
		if dropped > 0 {
			writeSSE(w, live.Event{Type: live.EventLag, At: int64(s.live.Now()), Dropped: dropped})
		}
		for _, ev := range events {
			writeSSE(w, ev)
		}
		if dropped > 0 || len(events) > 0 {
			fl.Flush()
			// Publish→delivered freshness, stamped after the flush so
			// the span covers the whole fan-out including the kernel
			// write. Replayed events (Last-Event-ID resume) carry their
			// original publish stamp, which is the honest measurement:
			// the client really did see them that late.
			now := obs.Now()
			for i := range events {
				if p := events[i].PubNano; p > 0 {
					histFreshSSE.Observe(time.Duration(now - p))
				}
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-sub.Ready():
		}
	}
}

// writeSSE emits one SSE frame. Event JSON carries the type too, so
// clients may dispatch on either the SSE event name or the payload.
func writeSSE(w http.ResponseWriter, ev live.Event) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	if ev.Seq > 0 {
		fmt.Fprintf(w, "id: %d\n", ev.Seq)
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
}
