package digg

import (
	"reflect"
	"testing"

	"diggsim/internal/graph"
	"diggsim/internal/rng"
)

// buildTestPlatform assembles a platform exercising every piece of
// persisted state: live stories, a compacted story, promotions,
// comments, and rejected commands along the way.
func buildTestPlatform(t *testing.T) *Platform {
	t.Helper()
	g, err := graph.PreferentialAttachment(rng.New(7), 300, 3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlatform(g, &ClassicPromotion{VoteThreshold: 5, Window: Day})
	r := rng.New(8)
	for i := 0; i < 12; i++ {
		st, err := p.Submit(UserID(r.Intn(300)), "story", 0.5, Minutes(i*10))
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < 3+r.Intn(8); v++ {
			_, _ = p.Digg(st.ID, UserID(r.Intn(300)), Minutes(i*10+v+1))
		}
	}
	if _, err := p.CommentOn(3, 5, 40, "nice find"); err != nil {
		t.Fatal(err)
	}
	if err := p.CompactStory(2); err != nil {
		t.Fatal(err)
	}
	return p
}

// assertSamePlatform asserts that two platforms are observably
// identical: generation, stories (deep), versions, promotion order,
// ranking, and live voter/audience behaviour.
func assertSamePlatform(t *testing.T, want, got *Platform) {
	t.Helper()
	if want.Generation() != got.Generation() {
		t.Fatalf("generation %d != %d", got.Generation(), want.Generation())
	}
	if want.NumStories() != got.NumStories() {
		t.Fatalf("stories %d != %d", got.NumStories(), want.NumStories())
	}
	for i := 0; i < want.NumStories(); i++ {
		id := StoryID(i)
		ws, _ := want.Story(id)
		gs, _ := got.Story(id)
		if !reflect.DeepEqual(ws, gs) {
			t.Fatalf("story %d differs:\nwant %+v\ngot  %+v", i, ws, gs)
		}
		if want.StoryVersion(id) != got.StoryVersion(id) {
			t.Fatalf("story %d version %d != %d", i, got.StoryVersion(id), want.StoryVersion(id))
		}
		if want.Audience(id) != got.Audience(id) {
			t.Fatalf("story %d audience %d != %d", i, got.Audience(id), want.Audience(id))
		}
	}
	if !reflect.DeepEqual(want.PromotedIDs(), got.PromotedIDs()) {
		t.Fatalf("promotion order differs: %v vs %v", want.PromotedIDs(), got.PromotedIDs())
	}
	if !reflect.DeepEqual(want.TopUsers(50), got.TopUsers(50)) {
		t.Fatalf("top users differ")
	}
	if !reflect.DeepEqual(want.Ranks(), got.Ranks()) {
		t.Fatalf("ranks differ")
	}
	if !reflect.DeepEqual(want.Comments(3), got.Comments(3)) {
		t.Fatalf("comments differ")
	}
}

func TestPlatformStateRoundTrip(t *testing.T) {
	p := buildTestPlatform(t)
	state := p.AppendState(nil)
	q, err := RestorePlatform(p.Graph, p.Policy, state)
	if err != nil {
		t.Fatal(err)
	}
	assertSamePlatform(t, p, q)

	// The restored platform must keep evolving identically: same digg
	// sequence on both sides yields the same results and state —
	// including promotion decisions and the compacted story's
	// rejection.
	r := rng.New(9)
	for i := 0; i < 60; i++ {
		id := StoryID(r.Intn(p.NumStories()))
		u := UserID(r.Intn(300))
		at := Minutes(200 + i)
		wantRes, wantErr := p.Digg(id, u, at)
		gotRes, gotErr := q.Digg(id, u, at)
		if wantRes != gotRes || (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("digg %d diverged: (%v,%v) vs (%v,%v)", i, wantRes, wantErr, gotRes, gotErr)
		}
	}
	assertSamePlatform(t, p, q)
}

func TestStoryCodecRoundTrip(t *testing.T) {
	s := &Story{
		ID: 7, Title: "a story with ünicode", Submitter: 12,
		SubmittedAt: 99, Promoted: true, PromotedAt: 150, Interest: 0.731,
		Votes: []Vote{{Voter: 12, At: 99}, {Voter: 3, At: 120, InNetwork: true}},
	}
	buf := AppendStory(nil, s)
	got, rest, err := DecodeStory(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d leftover bytes", len(rest))
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip:\nwant %+v\ngot  %+v", s, got)
	}
}

// TestDecodeRejectsJunk feeds truncations and mutations through the
// decoders: every outcome must be an error, never a panic or a bogus
// success that misreads lengths.
func TestDecodeRejectsJunk(t *testing.T) {
	p := buildTestPlatform(t)
	state := p.AppendState(nil)
	for cut := 0; cut < len(state); cut += 7 {
		if _, err := RestorePlatform(p.Graph, p.Policy, state[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
	if _, err := RestorePlatform(p.Graph, p.Policy, append(append([]byte(nil), state...), 0xAB)); err == nil {
		t.Fatal("trailing garbage decoded without error")
	}
	st, _ := p.Story(0)
	buf := AppendStory(nil, st)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeStory(buf[:cut]); err == nil {
			t.Fatalf("story truncation at %d decoded without error", cut)
		}
	}
}
