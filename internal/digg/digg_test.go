package digg

import (
	"testing"

	"diggsim/internal/graph"
)

// testGraph builds a small fan graph:
//
//	1 -> 0, 2 -> 0          (users 1 and 2 are fans of 0)
//	3 -> 1                  (user 3 is a fan of 1)
//	4 is isolated
func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdgeList(5, [][2]graph.NodeID{{1, 0}, {2, 0}, {3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSubmitBasics(t *testing.T) {
	p := NewPlatform(testGraph(t), NeverPromote{})
	s, err := p.Submit(0, "hello", 0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.ID != 0 || s.Submitter != 0 || s.SubmittedAt != 10 {
		t.Errorf("story = %+v", s)
	}
	if s.VoteCount() != 1 || s.Votes[0].Voter != 0 {
		t.Error("submitter's implicit vote missing")
	}
	if s.Votes[0].InNetwork {
		t.Error("submitter vote must not be in-network")
	}
	if p.NumStories() != 1 {
		t.Errorf("NumStories = %d", p.NumStories())
	}
}

func TestSubmitUnknownUser(t *testing.T) {
	p := NewPlatform(testGraph(t), NeverPromote{})
	if _, err := p.Submit(99, "x", 0.5, 0); err != ErrUnknownUser {
		t.Errorf("err = %v", err)
	}
	if _, err := p.Submit(-1, "x", 0.5, 0); err != ErrUnknownUser {
		t.Errorf("err = %v", err)
	}
}

func TestVisibilityAfterSubmit(t *testing.T) {
	p := NewPlatform(testGraph(t), NeverPromote{})
	s, _ := p.Submit(0, "t", 0.5, 0)
	// Fans of 0 are 1 and 2.
	if !p.CanSee(s.ID, 1) || !p.CanSee(s.ID, 2) {
		t.Error("submitter's fans should see the story")
	}
	if p.CanSee(s.ID, 3) || p.CanSee(s.ID, 4) {
		t.Error("non-fans should not see the story")
	}
	if p.Audience(s.ID) != 2 {
		t.Errorf("Audience = %d want 2", p.Audience(s.ID))
	}
}

func TestDiggInNetworkFlag(t *testing.T) {
	p := NewPlatform(testGraph(t), NeverPromote{})
	s, _ := p.Submit(0, "t", 0.5, 0)
	// User 1 is a fan of submitter 0 -> in-network vote.
	res, err := p.Digg(s.ID, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.InNetwork {
		t.Error("fan vote should be in-network")
	}
	// User 4 is isolated -> out-of-network.
	res, err = p.Digg(s.ID, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.InNetwork {
		t.Error("isolated user's vote should be out-of-network")
	}
	// After 1 voted, fan of 1 (user 3) sees the story -> in-network.
	res, err = p.Digg(s.ID, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.InNetwork {
		t.Error("fan of a prior voter should be in-network")
	}
	if got := s.VoteCount(); got != 4 {
		t.Errorf("VoteCount = %d", got)
	}
}

func TestAudienceGrowsWithVotes(t *testing.T) {
	p := NewPlatform(testGraph(t), NeverPromote{})
	s, _ := p.Submit(4, "t", 0.5, 0) // isolated submitter: audience 0
	if p.Audience(s.ID) != 0 {
		t.Errorf("audience = %d", p.Audience(s.ID))
	}
	p.Digg(s.ID, 0, 1) // 0's fans are 1, 2
	if p.Audience(s.ID) != 2 {
		t.Errorf("audience after 0 votes on it = %d want 2", p.Audience(s.ID))
	}
	p.Digg(s.ID, 1, 2) // 1's fan is 3
	if p.Audience(s.ID) != 3 {
		t.Errorf("audience = %d want 3", p.Audience(s.ID))
	}
}

func TestDoubleVoteRejected(t *testing.T) {
	p := NewPlatform(testGraph(t), NeverPromote{})
	s, _ := p.Submit(0, "t", 0.5, 0)
	if _, err := p.Digg(s.ID, 0, 1); err != ErrAlreadyVoted {
		t.Errorf("submitter re-vote: err = %v", err)
	}
	p.Digg(s.ID, 1, 1)
	if _, err := p.Digg(s.ID, 1, 2); err != ErrAlreadyVoted {
		t.Errorf("double vote: err = %v", err)
	}
}

func TestDiggErrors(t *testing.T) {
	p := NewPlatform(testGraph(t), NeverPromote{})
	if _, err := p.Digg(0, 1, 0); err == nil {
		t.Error("vote on missing story accepted")
	}
	s, _ := p.Submit(0, "t", 0.5, 0)
	if _, err := p.Digg(s.ID, 99, 0); err != ErrUnknownUser {
		t.Errorf("unknown voter: err = %v", err)
	}
}

func TestVotedAtOrBefore(t *testing.T) {
	p := NewPlatform(testGraph(t), NeverPromote{})
	s, _ := p.Submit(0, "t", 0.5, 0)
	p.Digg(s.ID, 1, 10)
	p.Digg(s.ID, 2, 20)
	cases := []struct {
		t    Minutes
		want int
	}{{-1, 0}, {0, 1}, {9, 1}, {10, 2}, {25, 3}}
	for _, c := range cases {
		if got := s.VotedAtOrBefore(c.t); got != c.want {
			t.Errorf("VotedAtOrBefore(%d) = %d want %d", c.t, got, c.want)
		}
	}
}

func TestHasVoted(t *testing.T) {
	p := NewPlatform(testGraph(t), NeverPromote{})
	s, _ := p.Submit(0, "t", 0.5, 0)
	if !s.HasVoted(0) {
		t.Error("submitter should count as voted")
	}
	if s.HasVoted(1) {
		t.Error("non-voter marked as voted")
	}
}

func TestUpcomingAndFrontPage(t *testing.T) {
	g, _ := graph.FromEdgeList(50, nil)
	p := NewPlatform(g, &ClassicPromotion{VoteThreshold: 3, Window: Day})
	a, _ := p.Submit(0, "a", 0.5, 0)
	b, _ := p.Submit(1, "b", 0.5, 5)
	up := p.Upcoming(10, 0)
	if len(up) != 2 || up[0].ID != b.ID || up[1].ID != a.ID {
		t.Fatalf("Upcoming = %v", up)
	}
	// Not yet submitted stories are hidden.
	c, _ := p.Submit(2, "c", 0.5, 100)
	if got := p.Upcoming(10, 0); len(got) != 2 {
		t.Errorf("future story leaked into queue: %d", len(got))
	}
	// Limit.
	if got := p.Upcoming(200, 1); len(got) != 1 || got[0].ID != c.ID {
		t.Errorf("limited Upcoming = %v", got)
	}
	// Promote a: votes 2 and 3 reach the threshold of 3.
	p.Digg(a.ID, 10, 6)
	res, _ := p.Digg(a.ID, 11, 7)
	if !res.Promoted {
		t.Fatal("story a should promote at 3 votes")
	}
	if !a.Promoted || a.PromotedAt != 7 {
		t.Errorf("promotion state: %+v", a)
	}
	fp := p.FrontPage(0)
	if len(fp) != 1 || fp[0].ID != a.ID {
		t.Errorf("FrontPage = %v", fp)
	}
	if got := p.Upcoming(200, 0); len(got) != 2 {
		t.Errorf("promoted story still in queue: %d entries", len(got))
	}
	if p.PromotedCount() != 1 {
		t.Errorf("PromotedCount = %d", p.PromotedCount())
	}
}

func TestClassicPromotionWindow(t *testing.T) {
	pol := &ClassicPromotion{VoteThreshold: 2, Window: 100}
	s := &Story{SubmittedAt: 0, Votes: []Vote{{At: 0}, {At: 150}}}
	if pol.ShouldPromote(s, 150) {
		t.Error("promoted outside window")
	}
	s2 := &Story{SubmittedAt: 0, Votes: []Vote{{At: 0}, {At: 50}}}
	if !pol.ShouldPromote(s2, 50) {
		t.Error("not promoted inside window")
	}
}

func TestClassicPromotionRate(t *testing.T) {
	pol := &ClassicPromotion{VoteThreshold: 2, Window: Day, MinRate: 10}
	// 2 votes over 600 minutes = 0.2/hour < 10.
	slow := &Story{SubmittedAt: 0, Votes: []Vote{{At: 0}, {At: 600}}}
	if pol.ShouldPromote(slow, 600) {
		t.Error("slow story promoted despite rate floor")
	}
	// 5 votes in 6 minutes = 50/hour.
	fast := &Story{SubmittedAt: 0, Votes: make([]Vote, 5)}
	if !pol.ShouldPromote(fast, 6) {
		t.Error("fast story not promoted")
	}
}

func TestDefaultPolicyBoundary(t *testing.T) {
	// The paper: no front page story with fewer than 43 votes.
	pol := NewClassicPromotion()
	s := &Story{SubmittedAt: 0, Votes: make([]Vote, 42)}
	if pol.ShouldPromote(s, 60) {
		t.Error("42 votes promoted")
	}
	s.Votes = make([]Vote, 43)
	if !pol.ShouldPromote(s, 60) {
		t.Error("43 votes not promoted")
	}
}

func TestDiversityPromotion(t *testing.T) {
	pol := &DiversityPromotion{EffectiveThreshold: 4, InNetworkWeight: 0.5, Window: Day}
	inNet := func(n int) []Vote {
		vs := make([]Vote, n)
		for i := range vs {
			vs[i].InNetwork = true
		}
		return vs
	}
	// 7 in-network votes = 3.5 mass < 4.
	s := &Story{Votes: inNet(7)}
	if pol.ShouldPromote(s, 10) {
		t.Error("in-network votes overweighted")
	}
	// 8 in-network votes = 4.0 mass.
	s = &Story{Votes: inNet(8)}
	if !pol.ShouldPromote(s, 10) {
		t.Error("8 in-network votes should reach mass 4")
	}
	// 4 independent votes promote immediately.
	s = &Story{Votes: make([]Vote, 4)}
	if !pol.ShouldPromote(s, 10) {
		t.Error("4 independent votes should promote")
	}
	// Window still applies.
	s = &Story{SubmittedAt: 0, Votes: make([]Vote, 10)}
	if pol.ShouldPromote(s, 2*Day) {
		t.Error("diversity policy ignored window")
	}
}

func TestFriendsInterface(t *testing.T) {
	// 0 watches 1 (0's friend is 1).
	g, _ := graph.FromEdgeList(4, [][2]graph.NodeID{{0, 1}})
	p := NewPlatform(g, NeverPromote{})
	s1, _ := p.Submit(1, "by friend", 0.5, 10)
	s2, _ := p.Submit(2, "by stranger", 0.5, 10)
	p.Digg(s2.ID, 1, 20) // friend diggs stranger's story

	act := p.FriendsInterface(0, 0, 30)
	if len(act.Submitted) != 1 || act.Submitted[0] != s1.ID {
		t.Errorf("Submitted = %v", act.Submitted)
	}
	if len(act.Dugg) != 1 || act.Dugg[0] != s2.ID {
		t.Errorf("Dugg = %v", act.Dugg)
	}
	// Window excludes old activity.
	act = p.FriendsInterface(0, 25, 30)
	if len(act.Submitted) != 0 || len(act.Dugg) != 0 {
		t.Errorf("windowed activity = %+v", act)
	}
	// A user with no friends sees nothing.
	act = p.FriendsInterface(3, 0, 30)
	if len(act.Submitted) != 0 || len(act.Dugg) != 0 {
		t.Errorf("friendless activity = %+v", act)
	}
}

func TestTopUsersRanking(t *testing.T) {
	g, _ := graph.FromEdgeList(60, nil)
	p := NewPlatform(g, &ClassicPromotion{VoteThreshold: 2, Window: Day})
	promote := func(submitter UserID, times int) {
		for i := 0; i < times; i++ {
			s, err := p.Submit(submitter, "t", 0.5, 0)
			if err != nil {
				t.Fatal(err)
			}
			// One extra vote reaches threshold 2.
			voter := UserID(50 + i%10)
			if _, err := p.Digg(s.ID, voter, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	promote(3, 5)
	promote(7, 2)
	promote(9, 1)
	top := p.TopUsers(2)
	if len(top) != 2 || top[0] != 3 || top[1] != 7 {
		t.Errorf("TopUsers = %v", top)
	}
	if p.UserRank(3) != 1 || p.UserRank(7) != 2 || p.UserRank(9) != 3 {
		t.Errorf("ranks = %d %d %d", p.UserRank(3), p.UserRank(7), p.UserRank(9))
	}
	if p.UserRank(4) != 0 {
		t.Errorf("unpromoted user rank = %d", p.UserRank(4))
	}
	if got := p.TopUsers(-1); len(got) != 0 {
		t.Errorf("TopUsers(-1) = %v", got)
	}
}

func TestStoryLookupErrors(t *testing.T) {
	p := NewPlatform(testGraph(t), nil)
	if _, err := p.Story(0); err == nil {
		t.Error("missing story lookup succeeded")
	}
	if _, err := p.Story(-1); err == nil {
		t.Error("negative story lookup succeeded")
	}
	if p.Audience(-1) != 0 || p.CanSee(5, 0) {
		t.Error("out-of-range audience queries should be empty")
	}
}

func TestCompactStory(t *testing.T) {
	p := NewPlatform(testGraph(t), NeverPromote{})
	s, _ := p.Submit(0, "t", 0.5, 0)
	p.Digg(s.ID, 1, 1)
	if err := p.CompactStory(s.ID); err != nil {
		t.Fatal(err)
	}
	// Vote history survives, live state is gone.
	if s.VoteCount() != 2 || !s.Votes[1].InNetwork {
		t.Error("vote history lost by compaction")
	}
	if p.Audience(s.ID) != 0 || p.CanSee(s.ID, 2) {
		t.Error("compacted story still reports audience")
	}
	if _, err := p.Digg(s.ID, 2, 3); err != ErrStoryCompacted {
		t.Errorf("vote on compacted story: err = %v", err)
	}
	if err := p.CompactStory(99); err == nil {
		t.Error("compacting missing story succeeded")
	}
}

func TestNilPolicyDefaults(t *testing.T) {
	p := NewPlatform(testGraph(t), nil)
	if _, ok := p.Policy.(*ClassicPromotion); !ok {
		t.Errorf("default policy = %T", p.Policy)
	}
}

func TestGenerationAndStoryVersions(t *testing.T) {
	p := NewPlatform(testGraph(t), &ClassicPromotion{VoteThreshold: 3, Window: Day})
	if p.Generation() != 0 {
		t.Fatalf("fresh platform generation = %d", p.Generation())
	}
	s, err := p.Submit(0, "a", 0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.Generation() != 1 || p.StoryVersion(s.ID) != 1 {
		t.Errorf("after submit: gen=%d ver=%d", p.Generation(), p.StoryVersion(s.ID))
	}
	if _, err := p.Digg(s.ID, 1, 11); err != nil {
		t.Fatal(err)
	}
	if p.Generation() != 2 || p.StoryVersion(s.ID) != 2 {
		t.Errorf("after digg: gen=%d ver=%d", p.Generation(), p.StoryVersion(s.ID))
	}
	// A rejected duplicate vote must not move anything.
	if _, err := p.Digg(s.ID, 1, 12); err != ErrAlreadyVoted {
		t.Fatal(err)
	}
	if p.Generation() != 2 || p.StoryVersion(s.ID) != 2 {
		t.Errorf("after rejected digg: gen=%d ver=%d", p.Generation(), p.StoryVersion(s.ID))
	}
	// The promoting vote rides on the same version bump as the vote.
	if _, err := p.Digg(s.ID, 2, 13); err != nil {
		t.Fatal(err)
	}
	if !s.Promoted || p.Generation() != 3 || p.StoryVersion(s.ID) != 3 {
		t.Errorf("after promotion: gen=%d ver=%d promoted=%v", p.Generation(), p.StoryVersion(s.ID), s.Promoted)
	}
	if _, err := p.CommentOn(s.ID, 1, 14, "hi"); err != nil {
		t.Fatal(err)
	}
	if p.Generation() != 4 {
		t.Errorf("after comment: gen=%d", p.Generation())
	}
	if err := p.CompactStory(s.ID); err != nil {
		t.Fatal(err)
	}
	if p.Generation() != 5 {
		t.Errorf("after compaction: gen=%d", p.Generation())
	}
	// Installed stories version like submitted ones.
	next := &Story{ID: 1, Title: "b", Submitter: 1, SubmittedAt: 20,
		Votes: []Vote{{Voter: 1, At: 20}}}
	if err := p.InstallStory(next); err != nil {
		t.Fatal(err)
	}
	if p.Generation() != 6 || p.StoryVersion(next.ID) != 1 {
		t.Errorf("after install: gen=%d ver=%d", p.Generation(), p.StoryVersion(next.ID))
	}
	if p.StoryVersion(99) != 0 || p.StoryVersion(-1) != 0 {
		t.Error("out-of-range StoryVersion should be 0")
	}
}

func TestTopUsersCachedOrder(t *testing.T) {
	g, _ := graph.FromEdgeList(60, nil)
	p := NewPlatform(g, &ClassicPromotion{VoteThreshold: 2, Window: Day})
	promote := func(submitter UserID, times int) {
		for i := 0; i < times; i++ {
			s, err := p.Submit(submitter, "t", 0.5, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := p.Digg(s.ID, UserID(50+i%10), 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	promote(3, 3)
	promote(7, 1)
	first := p.TopUsers(10)
	if len(first) != 2 || first[0] != 3 || first[1] != 7 {
		t.Fatalf("TopUsers = %v", first)
	}
	// The cached order is copied out: mutating the result must not
	// corrupt later calls.
	first[0] = 42
	again := p.TopUsers(10)
	if again[0] != 3 || again[1] != 7 {
		t.Errorf("cache corrupted by caller mutation: %v", again)
	}
	// A promotion that reorders the ranking invalidates the cache.
	promote(7, 3)
	reordered := p.TopUsers(10)
	if reordered[0] != 7 || reordered[1] != 3 {
		t.Errorf("post-promotion TopUsers = %v", reordered)
	}
	// Ranks shares the same invalidation epoch and is immutable per fill.
	ranks := p.Ranks()
	if ranks[7] != 1 || ranks[3] != 2 {
		t.Errorf("ranks = %v", ranks)
	}
	promote(9, 5)
	if ranks[7] != 1 {
		t.Error("old ranks map mutated in place; snapshots would go stale mid-read")
	}
	if fresh := p.Ranks(); fresh[9] != 1 || fresh[7] != 2 || fresh[3] != 3 {
		t.Errorf("refreshed ranks = %v", fresh)
	}
}
