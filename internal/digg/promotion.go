package digg

// PromotionPolicy decides whether a story in the upcoming queue should
// be promoted to the front page. The paper observed that Digg's
// algorithm "looks at the voting patterns made within 24 hours of a
// story's submission" and that "the promotion algorithm takes into
// account the number of votes a story receives and the rate at which it
// receives them". The data showed a sharp boundary: no front-page story
// had fewer than 43 votes and no upcoming story had more than 42.
type PromotionPolicy interface {
	// ShouldPromote is consulted after each vote on an unpromoted story.
	ShouldPromote(s *Story, now Minutes) bool
}

// ClassicPromotion models Digg's pre-September-2006 algorithm: a story
// is promoted once it gathers at least VoteThreshold votes within
// Window of submission while sustaining at least MinRate votes per
// hour over its lifetime so far.
type ClassicPromotion struct {
	// VoteThreshold is the minimum vote count for promotion. The paper's
	// data puts the boundary at 43.
	VoteThreshold int
	// Window is how long after submission a story remains eligible.
	Window Minutes
	// MinRate is the minimum sustained votes/hour since submission.
	// Zero disables the rate requirement.
	MinRate float64
}

// NewClassicPromotion returns the policy with the paper-calibrated
// defaults: 43 votes within 24 hours, no extra rate requirement.
func NewClassicPromotion() *ClassicPromotion {
	return &ClassicPromotion{VoteThreshold: 43, Window: Day}
}

// ShouldPromote implements PromotionPolicy.
func (c *ClassicPromotion) ShouldPromote(s *Story, now Minutes) bool {
	age := now - s.SubmittedAt
	if age > c.Window {
		return false
	}
	if s.VoteCount() < c.VoteThreshold {
		return false
	}
	if c.MinRate > 0 && age > 0 {
		rate := float64(s.VoteCount()) / (float64(age) / 60)
		if rate < c.MinRate {
			return false
		}
	}
	return true
}

// DiversityPromotion models the post-September-2006 change that weighs
// "unique digging diversity of the individuals digging the story":
// votes arriving through the Friends interface (in-network votes) are
// discounted, so tightly clustered voting no longer guarantees
// promotion.
type DiversityPromotion struct {
	// EffectiveThreshold is the required diversity-weighted vote mass.
	EffectiveThreshold float64
	// InNetworkWeight is the weight of an in-network vote (out-of-
	// network votes count 1.0). The September 2006 change corresponds
	// to a weight below 1.
	InNetworkWeight float64
	// Window is how long after submission a story remains eligible.
	Window Minutes
}

// NewDiversityPromotion returns a diversity policy calibrated so that a
// story with entirely independent votes promotes at the same point as
// under the classic policy, while a story voted on purely in-network
// needs roughly twice the votes.
func NewDiversityPromotion() *DiversityPromotion {
	return &DiversityPromotion{
		EffectiveThreshold: 43,
		InNetworkWeight:    0.5,
		Window:             Day,
	}
}

// ShouldPromote implements PromotionPolicy.
func (d *DiversityPromotion) ShouldPromote(s *Story, now Minutes) bool {
	if now-s.SubmittedAt > d.Window {
		return false
	}
	mass := 0.0
	for _, v := range s.Votes {
		if v.InNetwork {
			mass += d.InNetworkWeight
		} else {
			mass++
		}
	}
	return mass >= d.EffectiveThreshold
}

// NeverPromote is a policy that never promotes; useful for isolating
// upcoming-queue dynamics in tests and experiments.
type NeverPromote struct{}

// ShouldPromote implements PromotionPolicy.
func (NeverPromote) ShouldPromote(*Story, Minutes) bool { return false }
