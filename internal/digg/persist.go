package digg

// persist.go is the binary codec behind the durable store
// (internal/durable): a story encoding shared by WAL InstallStory
// records and checkpoints, and a whole-platform state encoding used by
// checkpoint files. The format is integrity-checked one level up (WAL
// record CRCs, checkpoint file CRCs), so the decoders here defend only
// against truncated or structurally nonsensical input — every failure
// is an error, never a panic or an unbounded allocation.
//
// Encoding conventions: varint (zigzag) for ids and times, uvarint for
// counts and lengths, fixed 8-byte little-endian for float bits, one
// byte for booleans. All decode paths validate declared lengths
// against the bytes actually remaining before allocating.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"diggsim/internal/dense"
	"diggsim/internal/graph"
)

// stateVersion tags the platform state encoding; bump on layout change.
// Version 2 added the story ID scheme (idOffset/idStep) so per-shard
// checkpoints are self-describing; version 1 blobs decode as the
// identity scheme.
const stateVersion = 2

// ErrBadEncoding is wrapped by every story/state decode failure.
var ErrBadEncoding = errors.New("digg: bad binary encoding")

// byteDecoder consumes a byte slice with sticky error handling: after
// the first failure every accessor returns zero values, so decode
// sequences read linearly and check the error once.
type byteDecoder struct {
	b   []byte
	err error
}

func (d *byteDecoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrBadEncoding, what)
	}
}

func (d *byteDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("truncated uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *byteDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *byteDecoder) u8() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) == 0 {
		d.fail("truncated byte")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *byteDecoder) f64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail("truncated float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

func (d *byteDecoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)) {
		d.fail("string length past end of buffer")
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// count reads a uvarint element count and validates it against the
// bytes remaining (each element occupies at least minBytes), so a
// corrupt count can never drive a huge allocation. The bound divides
// rather than multiplies, so a near-2^64 count cannot overflow past
// the check.
func (d *byteDecoder) count(minBytes int) int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b))/uint64(minBytes) {
		d.fail("element count past end of buffer")
		return 0
	}
	return int(n)
}

// AppendStory appends the binary encoding of a story — identity,
// promotion outcome, and the full chronological vote list — to b. It
// is the payload of WAL InstallStory records and the per-story unit of
// checkpoint files.
func AppendStory(b []byte, s *Story) []byte {
	b = binary.AppendVarint(b, int64(s.ID))
	b = binary.AppendUvarint(b, uint64(len(s.Title)))
	b = append(b, s.Title...)
	b = binary.AppendVarint(b, int64(s.Submitter))
	b = binary.AppendVarint(b, int64(s.SubmittedAt))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.Interest))
	if s.Promoted {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.AppendVarint(b, int64(s.PromotedAt))
	b = binary.AppendUvarint(b, uint64(len(s.Votes)))
	for _, v := range s.Votes {
		b = binary.AppendVarint(b, int64(v.Voter))
		b = binary.AppendVarint(b, int64(v.At))
		if v.InNetwork {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

// DecodeStory decodes one story from data, returning the story and the
// unconsumed rest of the buffer.
func DecodeStory(data []byte) (*Story, []byte, error) {
	d := &byteDecoder{b: data}
	s := decodeStory(d)
	if d.err != nil {
		return nil, nil, d.err
	}
	return s, d.b, nil
}

func decodeStory(d *byteDecoder) *Story {
	s := &Story{
		ID:          StoryID(d.varint()),
		Title:       d.str(),
		Submitter:   UserID(d.varint()),
		SubmittedAt: Minutes(d.varint()),
		Interest:    d.f64(),
	}
	s.Promoted = d.u8() != 0
	s.PromotedAt = Minutes(d.varint())
	// A vote is at least voter varint + at varint + in-network byte.
	n := d.count(3)
	if d.err != nil {
		return nil
	}
	s.Votes = make([]Vote, n)
	for i := range s.Votes {
		s.Votes[i] = Vote{
			Voter:     UserID(d.varint()),
			At:        Minutes(d.varint()),
			InNetwork: d.u8() != 0,
		}
	}
	return s
}

// AppendState appends the platform's full mutable state to b: every
// story with its version and compaction status, the promotion order,
// the generation counter, and all comments. Together with the
// immutable social graph and the promotion policy this is everything a
// checkpoint needs to reconstruct the platform exactly — the voter and
// audience sets of live stories are not stored because they are a pure
// function of the vote history and the graph, and RestorePlatform
// rebuilds them.
//
// The caller must exclude mutators for the duration of the call (the
// durable store runs it under the serving layer's write lock).
func (p *Platform) AppendState(b []byte) []byte {
	b = append(b, stateVersion)
	off, step := p.IDScheme()
	b = binary.AppendUvarint(b, uint64(off))
	b = binary.AppendUvarint(b, uint64(step))
	b = binary.AppendUvarint(b, p.gen)
	b = binary.AppendUvarint(b, uint64(len(p.stories)))
	for i, s := range p.stories {
		b = AppendStory(b, s)
		b = binary.AppendUvarint(b, uint64(p.storyVer[i]))
		if p.voted[i] == nil {
			b = append(b, 1) // compacted (or installed pre-compacted)
		} else {
			b = append(b, 0)
		}
	}
	b = binary.AppendUvarint(b, uint64(len(p.promoted)))
	for _, id := range p.promoted {
		b = binary.AppendVarint(b, int64(id))
	}
	b = binary.AppendUvarint(b, uint64(len(p.comments)))
	for _, c := range p.comments {
		b = binary.AppendVarint(b, int64(c.Story))
		b = binary.AppendVarint(b, int64(c.User))
		b = binary.AppendVarint(b, int64(c.At))
		b = binary.AppendUvarint(b, uint64(len(c.Text)))
		b = append(b, c.Text...)
	}
	return b
}

// RestorePlatform reconstructs a platform over the given graph and
// promotion policy (nil means the classic default, as in NewPlatform)
// from a state blob produced by AppendState. Live stories get their
// voter and audience sets rebuilt from the vote history, so Digg keeps
// working exactly as before; compacted stories stay compacted. The
// restored platform's Generation, story versions, promotion order and
// reputation ranking are identical to the checkpointed platform's.
func RestorePlatform(g *graph.Graph, policy PromotionPolicy, data []byte) (*Platform, error) {
	d := &byteDecoder{b: data}
	v := d.u8()
	if d.err == nil && (v < 1 || v > stateVersion) {
		return nil, fmt.Errorf("%w: state version %d, want <= %d", ErrBadEncoding, v, stateVersion)
	}
	p := NewPlatform(g, policy)
	if v >= 2 {
		off := StoryID(d.uvarint())
		step := StoryID(d.uvarint())
		if d.err == nil && (step < 1 || off < 0 || off >= step) {
			return nil, fmt.Errorf("%w: invalid ID scheme (offset %d, step %d)", ErrBadEncoding, off, step)
		}
		p.idOffset, p.idStep = off, step
	}
	p.gen = d.uvarint()
	// A serialized story is at least ~20 bytes; 4 is a safe floor that
	// still prevents allocation amplification.
	nStories := d.count(4)
	if d.err != nil {
		return nil, d.err
	}
	p.stories = make([]*Story, 0, nStories)
	p.storyVer = make([]uint32, 0, nStories)
	p.voted = make([]*dense.Set, 0, nStories)
	p.visible = make([]*dense.Set, 0, nStories)
	for i := 0; i < nStories; i++ {
		s := decodeStory(d)
		ver := d.uvarint()
		compacted := d.u8() != 0
		if d.err != nil {
			return nil, d.err
		}
		if want := p.nextID(); s.ID != want {
			return nil, fmt.Errorf("%w: story %d at index %d, want id %d", ErrBadEncoding, s.ID, i, want)
		}
		if len(s.Votes) == 0 {
			return nil, fmt.Errorf("%w: story %d has no votes", ErrBadEncoding, s.ID)
		}
		p.stories = append(p.stories, s)
		p.storyVer = append(p.storyVer, uint32(ver))
		if compacted {
			p.voted = append(p.voted, nil)
			p.visible = append(p.visible, nil)
			continue
		}
		voted := p.acquireSet()
		aud := p.acquireSet()
		for _, v := range s.Votes {
			if v.Voter < 0 || int(v.Voter) >= g.NumNodes() {
				return nil, fmt.Errorf("%w: story %d voter %d outside graph", ErrBadEncoding, s.ID, v.Voter)
			}
			voted.Add(int(v.Voter))
			for _, fan := range g.Fans(v.Voter) {
				aud.Add(int(fan))
			}
		}
		p.voted = append(p.voted, voted)
		p.visible = append(p.visible, aud)
	}
	nPromoted := d.count(1)
	if d.err != nil {
		return nil, d.err
	}
	p.promoted = make([]StoryID, 0, nPromoted)
	for i := 0; i < nPromoted; i++ {
		id := StoryID(d.varint())
		if d.err != nil {
			return nil, d.err
		}
		idx := p.index(id)
		if idx < 0 || !p.stories[idx].Promoted {
			return nil, fmt.Errorf("%w: promotion order references story %d", ErrBadEncoding, id)
		}
		p.promoted = append(p.promoted, id)
		p.promotedBySubmitter[p.stories[idx].Submitter]++
	}
	nComments := d.count(4)
	if d.err != nil {
		return nil, d.err
	}
	p.comments = make([]Comment, 0, nComments)
	for i := 0; i < nComments; i++ {
		c := Comment{
			Story: StoryID(d.varint()),
			User:  UserID(d.varint()),
			At:    Minutes(d.varint()),
			Text:  d.str(),
		}
		if d.err != nil {
			return nil, d.err
		}
		p.comments = append(p.comments, c)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after platform state", ErrBadEncoding, len(d.b))
	}
	return p, nil
}
