// Package digg simulates the Digg social news platform as described in
// §3 of Lerman & Galstyan (2008): users submit stories into an upcoming
// queue, vote ("digg") on stories, and a promotion algorithm moves the
// most promising stories to the front page. Users are connected by an
// asymmetric fan/friend graph, and the Friends interface makes a story
// visible to the fans of everyone who has voted on it.
//
// The simulator reproduces the platform behaviours the paper's analysis
// observes:
//
//   - an upcoming queue displaying recent submissions,
//   - a front page fed by a promotion policy (the classic vote-count and
//     vote-rate threshold, and the post-September-2006 "digging
//     diversity" variant),
//   - the Friends interface visibility rule, and
//   - a reputation ranking ("top users") based on promoted submissions.
//
// Time is measured in integer minutes from the start of the simulation,
// matching the paper's minute-resolution vote time series (Fig. 1).
package digg

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"diggsim/internal/dense"
	"diggsim/internal/graph"
)

// Minutes is simulation time in minutes since the simulation epoch.
type Minutes int64

// Day is the number of minutes in 24 hours, the window the classic
// promotion algorithm examines.
const Day Minutes = 24 * 60

// UserID identifies a user; it doubles as the user's node in the social
// graph.
type UserID = graph.NodeID

// StoryID identifies a story.
type StoryID int32

// Vote is a single digg on a story. Votes are stored in chronological
// order; the submitter's own vote is always first, mirroring the
// scraped data ("they are listed in chronological order, with
// submitter's name appearing first").
type Vote struct {
	Voter UserID
	At    Minutes
	// InNetwork records whether, at voting time, the voter was a fan of
	// the submitter or of any previous voter — i.e. the story was
	// visible to the voter through the Friends interface.
	InNetwork bool
}

// Story is a submitted news story and its full vote history.
type Story struct {
	ID          StoryID
	Title       string
	Submitter   UserID
	SubmittedAt Minutes
	Votes       []Vote
	Promoted    bool
	PromotedAt  Minutes // valid only when Promoted
	// Interest is the story's intrinsic appeal in [0, 1], used by the
	// behaviour model; it is hidden from analysis code, which must infer
	// interestingness from votes like the paper does.
	Interest float64
}

// VoteCount returns the current number of votes (including the
// submitter's).
func (s *Story) VoteCount() int { return len(s.Votes) }

// VotedAtOrBefore returns the number of votes cast at or before t.
func (s *Story) VotedAtOrBefore(t Minutes) int {
	// Votes are chronological; binary search for the cut.
	return sort.Search(len(s.Votes), func(i int) bool { return s.Votes[i].At > t })
}

// HasVoted reports whether u already voted on s. Voter sets are small
// (hundreds to thousands); the platform maintains a per-story set, this
// linear scan is only for external callers holding a bare Story.
func (s *Story) HasVoted(u UserID) bool {
	for _, v := range s.Votes {
		if v.Voter == u {
			return true
		}
	}
	return false
}

// Platform is the simulated Digg site. It is not safe for concurrent
// mutation; the discrete-event simulator drives it from one goroutine.
// Concurrent read-only access is safe only under external
// synchronization that excludes mutators: the live serving layer wraps
// the platform in a sync.RWMutex, with Submit/Digg under the write lock
// and every accessor under the read lock (UserRank's lazy rank cache
// carries its own internal mutex so concurrent read-lock holders may
// call it).
//
// Per-story voter and audience membership is held in pooled
// epoch-stamped dense sets (internal/dense) rather than per-story
// maps: CompactStory returns a story's sets to the pool and the next
// Submit reuses them with an O(1) reset, so sequential generate-and-
// compact workloads allocate no per-story membership state.
type Platform struct {
	Graph  *graph.Graph
	Policy PromotionPolicy

	// idOffset/idStep define the story ID scheme: the platform's k-th
	// story (dense local index k) carries global ID idOffset + k*idStep.
	// A standalone platform uses the identity scheme (0, 1); shard i of
	// an N-way sharded store uses (i, N), so the shards' ID sequences
	// interleave into one dense global sequence while each shard keeps
	// its O(1) dense-array bookkeeping. A zero idStep (a Platform built
	// without a constructor) reads as the identity scheme.
	idOffset StoryID
	idStep   StoryID

	stories  []*Story
	voted    []*dense.Set // per-story voter sets (nil once compacted)
	visible  []*dense.Set // per-story Friends-interface audience
	setPool  []*dense.Set // compacted sets awaiting reuse
	promoted []StoryID    // promotion order
	// gen is the platform generation: it increments on every mutation
	// (Submit, InstallStory, Digg, CommentOn, CompactStory), so a
	// serving layer can detect "anything changed" with one comparison
	// and derive cache validators (ETags) from it. Read it with
	// Generation under whatever synchronization excludes mutators.
	gen uint64
	// storyVer holds a per-story version counter parallel to stories:
	// 1 at submission, +1 per vote (a promotion rides on the vote that
	// caused it). Snapshot builders re-encode only stories whose
	// version moved since the last publication.
	storyVer []uint32
	// promotedBySubmitter counts front-page stories per user, the basis
	// of the reputation ("top users") ranking.
	promotedBySubmitter map[UserID]int
	// rankCache memoizes the UserRank lookup and rankedCache the full
	// sorted TopUsers order; both are dropped whenever a promotion
	// changes the ranking (invalidateRanks). rankMu guards the caches
	// so that concurrent readers (HTTP handlers under the serving
	// layer's read lock) can trigger the lazy fill safely.
	rankMu      sync.Mutex
	rankCache   map[UserID]int
	rankedCache []UserID
	// comments holds all comments in insertion order (see comments.go).
	comments []Comment
}

// acquireSet returns an empty set covering the platform's users,
// reusing a pooled one when available.
func (p *Platform) acquireSet() *dense.Set {
	var m *dense.Set
	if k := len(p.setPool); k > 0 {
		m = p.setPool[k-1]
		p.setPool = p.setPool[:k-1]
	} else {
		m = &dense.Set{}
	}
	m.Reset(p.Graph.NumNodes())
	return m
}

// NewPlatform creates a platform over the given social graph using the
// supplied promotion policy (ClassicPromotion with default settings if
// nil).
func NewPlatform(g *graph.Graph, policy PromotionPolicy) *Platform {
	if policy == nil {
		policy = NewClassicPromotion()
	}
	return &Platform{
		Graph:               g,
		Policy:              policy,
		idStep:              1,
		promotedBySubmitter: make(map[UserID]int),
	}
}

// NewShardPlatform creates a platform that owns shard `offset` of an
// N-way (`step`) interleaved global story ID space: its k-th story is
// assigned ID offset + k*step. Stories/NumStories still report the
// shard's local dense sequence; Story, Digg and every other by-ID
// accessor address stories by their global IDs. A sharded store
// (internal/shard) composes N such platforms into one dense global
// sequence. NewShardPlatform(g, policy, 0, 1) is NewPlatform.
func NewShardPlatform(g *graph.Graph, policy PromotionPolicy, offset, step StoryID) *Platform {
	if step < 1 || offset < 0 || offset >= step {
		panic(fmt.Sprintf("digg: invalid shard ID scheme (offset %d, step %d)", offset, step))
	}
	p := NewPlatform(g, policy)
	p.idOffset, p.idStep = offset, step
	return p
}

// IDScheme returns the platform's story ID scheme: global ID =
// offset + localIndex*step. Standalone platforms report (0, 1).
func (p *Platform) IDScheme() (offset, step StoryID) {
	if p.idStep < 1 {
		return 0, 1
	}
	return p.idOffset, p.idStep
}

// index maps a global story ID to the platform's dense local index, or
// -1 when the ID is not owned by this platform or not yet submitted.
func (p *Platform) index(id StoryID) int {
	off, step := p.IDScheme()
	if id < off || (id-off)%step != 0 {
		return -1
	}
	i := int((id - off) / step)
	if i >= len(p.stories) {
		return -1
	}
	return i
}

// nextID returns the global ID the next submitted story will carry.
func (p *Platform) nextID() StoryID {
	off, step := p.IDScheme()
	return off + StoryID(len(p.stories))*step
}

// NumStories returns the number of submitted stories.
func (p *Platform) NumStories() int { return len(p.stories) }

// Generation returns the platform generation, which increments on
// every mutation. Equal generations imply identical observable
// platform state, so caches keyed by generation never serve torn or
// stale data.
func (p *Platform) Generation() uint64 { return p.gen }

// StoryVersion returns story id's version counter (1 at submission,
// +1 per vote), or 0 if the story does not exist. A story's summary
// and vote list are unchanged while its version is unchanged.
func (p *Platform) StoryVersion(id StoryID) uint32 {
	i := p.index(id)
	if i < 0 {
		return 0
	}
	return p.storyVer[i]
}

// ErrNoStory is returned (wrapped with the id) when a story id does
// not exist. Transports match it with errors.Is to map "not found"
// without depending on message text.
var ErrNoStory = errors.New("digg: no story")

// Story returns the story with the given id, or an error wrapping
// ErrNoStory if it does not exist.
func (p *Platform) Story(id StoryID) (*Story, error) {
	i := p.index(id)
	if i < 0 {
		return nil, fmt.Errorf("%w %d", ErrNoStory, id)
	}
	return p.stories[i], nil
}

// Stories returns all stories in submission order. The slice is shared;
// callers must not modify it.
func (p *Platform) Stories() []*Story { return p.stories }

// ErrUnknownUser is returned when a user id falls outside the social
// graph.
var ErrUnknownUser = errors.New("digg: user outside social graph")

// ErrAlreadyVoted is returned when a user diggs a story twice.
var ErrAlreadyVoted = errors.New("digg: user already voted on story")

// ErrStoryCompacted is returned when voting on a story whose live state
// was released with CompactStory.
var ErrStoryCompacted = errors.New("digg: story state was compacted")

// Submit creates a new story submitted by u at time t with the given
// intrinsic interest. The submitter's implicit first vote is recorded,
// and the story becomes visible to the submitter's fans.
func (p *Platform) Submit(u UserID, title string, interest float64, t Minutes) (*Story, error) {
	if u < 0 || int(u) >= p.Graph.NumNodes() {
		return nil, ErrUnknownUser
	}
	s := &Story{
		ID:          p.nextID(),
		Title:       title,
		Submitter:   u,
		SubmittedAt: t,
		Interest:    interest,
	}
	s.Votes = append(s.Votes, Vote{Voter: u, At: t, InNetwork: false})
	p.stories = append(p.stories, s)
	p.storyVer = append(p.storyVer, 1)
	p.gen++
	voted := p.acquireSet()
	voted.Add(int(u))
	p.voted = append(p.voted, voted)
	aud := p.acquireSet()
	for _, fan := range p.Graph.Fans(u) {
		aud.Add(int(fan))
	}
	p.visible = append(p.visible, aud)
	return s, nil
}

// InstallStory adopts a fully simulated story (e.g. from an
// agent.Runner) as the next story on the platform. The story's ID must
// equal the next story index, its votes must be chronological with the
// submitter first, and its promotion outcome is taken as-is. Installed
// stories arrive in the compacted state: their live voter and audience
// bookkeeping was never materialized, so further Digg calls are
// rejected just as after CompactStory. Corpus generation installs
// pre-simulated stories in submission order instead of replaying every
// vote through Digg.
func (p *Platform) InstallStory(s *Story) error {
	if s.ID != p.nextID() {
		return fmt.Errorf("digg: InstallStory out of order: story %d, next id %d", s.ID, p.nextID())
	}
	if s.Submitter < 0 || int(s.Submitter) >= p.Graph.NumNodes() {
		return ErrUnknownUser
	}
	if len(s.Votes) == 0 || s.Votes[0].Voter != s.Submitter {
		return fmt.Errorf("digg: InstallStory: story %d missing submitter's implicit vote", s.ID)
	}
	p.stories = append(p.stories, s)
	p.storyVer = append(p.storyVer, 1)
	p.gen++
	p.voted = append(p.voted, nil)
	p.visible = append(p.visible, nil)
	if s.Promoted {
		p.promoted = append(p.promoted, s.ID)
		p.promotedBySubmitter[s.Submitter]++
		p.invalidateRanks()
	}
	return nil
}

// DiggResult reports the consequences of a vote.
type DiggResult struct {
	InNetwork bool // vote arrived through the Friends interface audience
	Promoted  bool // this vote triggered promotion to the front page
	Votes     int  // the story's vote count including this vote
}

// Digg records a vote by u on story id at time t. The vote is flagged
// in-network if u was in the story's Friends-interface audience (a fan
// of the submitter or any prior voter) at voting time. After the vote,
// u's fans join the audience and the promotion policy is consulted.
func (p *Platform) Digg(id StoryID, u UserID, t Minutes) (DiggResult, error) {
	i := p.index(id)
	if i < 0 {
		return DiggResult{}, fmt.Errorf("%w %d", ErrNoStory, id)
	}
	s := p.stories[i]
	if u < 0 || int(u) >= p.Graph.NumNodes() {
		return DiggResult{}, ErrUnknownUser
	}
	if p.voted[i] == nil {
		return DiggResult{}, ErrStoryCompacted
	}
	if p.voted[i].Contains(int(u)) {
		return DiggResult{}, ErrAlreadyVoted
	}
	if n := len(s.Votes); n > 0 && t < s.Votes[n-1].At {
		// Keep the vote list chronological (VotedAtOrBefore binary-
		// searches it): when a live stepper catches up behind an
		// external vote stamped at the current sim minute, its earlier
		// pending votes clamp forward to the newest recorded time.
		t = s.Votes[n-1].At
	}
	inNet := p.visible[i].Contains(int(u))
	s.Votes = append(s.Votes, Vote{Voter: u, At: t, InNetwork: inNet})
	p.storyVer[i]++
	p.gen++
	p.voted[i].Add(int(u))
	for _, fan := range p.Graph.Fans(u) {
		p.visible[i].Add(int(fan))
	}
	res := DiggResult{InNetwork: inNet, Votes: len(s.Votes)}
	if !s.Promoted && p.Policy.ShouldPromote(s, t) {
		s.Promoted = true
		s.PromotedAt = t
		p.promoted = append(p.promoted, id)
		p.promotedBySubmitter[s.Submitter]++
		p.invalidateRanks()
		res.Promoted = true
	}
	return res, nil
}

// Audience returns the number of users who can currently see story id
// through the Friends interface (the story's "influence" in the paper's
// terms). The submitter and voters themselves are not counted unless
// they are also fans of a voter.
func (p *Platform) Audience(id StoryID) int {
	i := p.index(id)
	if i < 0 || p.visible[i] == nil {
		return 0
	}
	return p.visible[i].Len()
}

// CanSee reports whether user u currently sees story id through the
// Friends interface.
func (p *Platform) CanSee(id StoryID, u UserID) bool {
	i := p.index(id)
	if i < 0 || p.visible[i] == nil || u < 0 {
		return false
	}
	return p.visible[i].Contains(int(u))
}

// CompactStory releases the per-story voter and audience bookkeeping
// once a story's lifetime has been fully simulated. The vote history
// (including in-network flags) is retained; further Digg calls on the
// story will be rejected, and Audience/CanSee report zero. Large-corpus
// generation calls this after each story to bound memory.
func (p *Platform) CompactStory(id StoryID) error {
	i := p.index(id)
	if i < 0 {
		return fmt.Errorf("%w %d", ErrNoStory, id)
	}
	if p.voted[i] != nil {
		p.setPool = append(p.setPool, p.voted[i], p.visible[i])
		p.voted[i] = nil
		p.visible[i] = nil
		p.gen++ // Audience/CanSee observably change
	}
	return nil
}

// TrimStories truncates the platform to its first keep stories (local
// dense order), discarding later submissions along with their votes,
// promotion entries and comments, and returns how many stories were
// dropped. It exists for sharded crash recovery: when one shard's WAL
// is durable past another's, the trailing stories beyond the first
// hole in the merged global ID sequence belong to writes that were
// never acknowledged, and recovery trims them so the merged sequence
// stays dense. Callers must checkpoint immediately afterwards so the
// shard's WAL cannot resurrect the trimmed records.
func (p *Platform) TrimStories(keep int) int {
	if keep < 0 {
		keep = 0
	}
	n := len(p.stories)
	if keep >= n {
		return 0
	}
	off, step := p.IDScheme()
	cut := off + StoryID(keep)*step
	// Owned IDs are monotone in the local index, so id >= cut exactly
	// identifies trimmed stories wherever they appear.
	kept := p.promoted[:0]
	ranksDirty := false
	for _, id := range p.promoted {
		if id >= cut {
			sub := p.stories[p.index(id)].Submitter
			if p.promotedBySubmitter[sub]--; p.promotedBySubmitter[sub] == 0 {
				delete(p.promotedBySubmitter, sub)
			}
			ranksDirty = true
			continue
		}
		kept = append(kept, id)
	}
	p.promoted = kept
	keptComments := p.comments[:0]
	for _, c := range p.comments {
		if c.Story < cut {
			keptComments = append(keptComments, c)
		}
	}
	p.comments = keptComments
	for i := keep; i < n; i++ {
		if p.voted[i] != nil {
			p.setPool = append(p.setPool, p.voted[i], p.visible[i])
		}
		p.voted[i], p.visible[i] = nil, nil
		p.stories[i] = nil
	}
	p.stories = p.stories[:keep]
	p.storyVer = p.storyVer[:keep]
	p.voted = p.voted[:keep]
	p.visible = p.visible[:keep]
	if ranksDirty {
		p.invalidateRanks()
	}
	p.gen++
	return n - keep
}

// Upcoming returns stories that are not yet promoted, newest first,
// limited to limit entries (limit <= 0 means no limit) — the upcoming
// stories queue as displayed on the site.
func (p *Platform) Upcoming(now Minutes, limit int) []*Story {
	var out []*Story
	for i := len(p.stories) - 1; i >= 0; i-- {
		s := p.stories[i]
		if s.Promoted || s.SubmittedAt > now {
			continue
		}
		out = append(out, s)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// FrontPage returns promoted stories, most recently promoted first,
// limited to limit entries (limit <= 0 means no limit).
func (p *Platform) FrontPage(limit int) []*Story {
	var out []*Story
	for i := len(p.promoted) - 1; i >= 0; i-- {
		out = append(out, p.stories[p.index(p.promoted[i])])
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// PromotedCount returns the number of front-page stories.
func (p *Platform) PromotedCount() int { return len(p.promoted) }

// FriendActivity summarizes what u's friends did in the window
// (since, now], mirroring Digg's Friends interface summary ("the number
// of stories his friends have submitted, commented on or voted on in
// the preceding 48 hours").
type FriendActivity struct {
	Submitted []StoryID
	Dugg      []StoryID
	Commented []StoryID
}

// FriendsInterface computes the friend-activity view for u: stories
// submitted or dugg by users u watches within the window.
func (p *Platform) FriendsInterface(u UserID, since, now Minutes) FriendActivity {
	watched := make(map[UserID]struct{})
	for _, f := range p.Graph.Friends(u) {
		watched[f] = struct{}{}
	}
	var act FriendActivity
	seenSub := make(map[StoryID]struct{})
	seenDug := make(map[StoryID]struct{})
	for _, s := range p.stories {
		if s.SubmittedAt > now {
			continue
		}
		if _, ok := watched[s.Submitter]; ok && s.SubmittedAt > since {
			if _, dup := seenSub[s.ID]; !dup {
				act.Submitted = append(act.Submitted, s.ID)
				seenSub[s.ID] = struct{}{}
			}
		}
		for _, v := range s.Votes[1:] { // skip submitter's implicit vote
			if v.At <= since || v.At > now {
				continue
			}
			if _, ok := watched[v.Voter]; ok {
				if _, dup := seenDug[s.ID]; !dup {
					act.Dugg = append(act.Dugg, s.ID)
					seenDug[s.ID] = struct{}{}
				}
				break
			}
		}
	}
	act.Commented = p.commentedStories(watched, since, now)
	return act
}

// rankedLocked returns the full reputation ordering (every user with a
// promoted submission, best first), computing and caching it on first
// use. Callers must hold rankMu; the returned slice is the cache and
// must not be modified.
func (p *Platform) rankedLocked() []UserID {
	if p.rankedCache != nil {
		return p.rankedCache
	}
	type entry struct {
		u        UserID
		promoted int
	}
	entries := make([]entry, 0, len(p.promotedBySubmitter))
	for u, c := range p.promotedBySubmitter {
		entries = append(entries, entry{u, c})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].promoted != entries[j].promoted {
			return entries[i].promoted > entries[j].promoted
		}
		fi, fj := p.Graph.InDegree(entries[i].u), p.Graph.InDegree(entries[j].u)
		if fi != fj {
			return fi > fj
		}
		return entries[i].u < entries[j].u
	})
	ranked := make([]UserID, len(entries))
	for i, e := range entries {
		ranked[i] = e.u
	}
	p.rankedCache = ranked
	return ranked
}

// TopUsers returns up to k users ranked by promoted front-page
// submissions (descending), breaking ties by fan count then ID — the
// site's "Top Users" reputation list. The sorted order is cached and
// invalidated with the rank caches when a promotion changes it, so
// repeated calls do not re-sort the user population.
func (p *Platform) TopUsers(k int) []UserID {
	p.rankMu.Lock()
	ranked := p.rankedLocked()
	if k > len(ranked) {
		k = len(ranked)
	}
	if k < 0 {
		k = 0
	}
	out := make([]UserID, k)
	copy(out, ranked[:k])
	p.rankMu.Unlock()
	return out
}

// Ranks returns the user → 1-based reputation rank map (users without
// promoted stories are absent), computing and caching it on first use.
// The returned map is shared and never mutated in place — promotions
// replace it — so callers that obtained it while mutators were
// excluded may keep reading it without any lock.
func (p *Platform) Ranks() map[UserID]int {
	p.rankMu.Lock()
	defer p.rankMu.Unlock()
	if p.rankCache == nil {
		ranked := p.rankedLocked()
		m := make(map[UserID]int, len(ranked))
		for i, u := range ranked {
			m[u] = i + 1
		}
		p.rankCache = m
	}
	return p.rankCache
}

// UserRank returns the 1-based reputation rank of u (1 = most promoted
// submissions) or 0 if u has no promoted stories. The full ranking is
// computed once and cached; promotions invalidate the cache, so
// repeated lookups (e.g. the HTTP API's per-story rank annotations) do
// not re-sort the ranked-user list.
func (p *Platform) UserRank(u UserID) int {
	p.rankMu.Lock()
	defer p.rankMu.Unlock()
	if p.rankCache == nil {
		ranked := p.rankedLocked()
		m := make(map[UserID]int, len(ranked))
		for i, t := range ranked {
			m[t] = i + 1
		}
		p.rankCache = m
	}
	return p.rankCache[u]
}

// invalidateRanks drops the memoized reputation ranking after a
// promotion changes it. Callers hold whatever lock excludes readers
// (mutation is single-writer); rankMu only orders the store against
// concurrent UserRank fills. The dropped map and slice are abandoned,
// not cleared, so snapshots holding them keep a consistent (stale)
// view.
func (p *Platform) invalidateRanks() {
	p.rankMu.Lock()
	p.rankCache = nil
	p.rankedCache = nil
	p.rankMu.Unlock()
}
