package digg

import "diggsim/internal/graph"

// Store is the command/query seam between the statistical core and
// every serving-layer consumer: httpapi.Server, live.Service, the
// agent stepper and the dataset exporter all compile against this
// interface rather than the concrete *Platform. It exists so future
// backends — a sharded store, a replica fan-out, a persistent
// write-ahead store — can slot in underneath the HTTP surface without
// touching any caller.
//
// Concurrency contract: a Store is single-writer. The commands
// (Submit, InstallStory, Digg, CompactStory) and the queries share
// whatever external synchronization the caller provides (the serving
// layer's RWMutex); implementations may additionally make individual
// queries internally synchronized or lock-free, as *Platform does for
// UserRank, Ranks and SocialGraph.
type Store interface {
	// --- queries ---

	// Generation increments on every mutation; equal generations imply
	// identical observable state. Serving layers derive cache
	// validators (ETags, cursor stamps) from it.
	Generation() uint64
	// NumStories returns the number of submitted stories.
	NumStories() int
	// StoryVersion returns the story's version counter (1 at
	// submission, +1 per vote), or 0 if it does not exist.
	StoryVersion(id StoryID) uint32
	// Story returns the story with the given id.
	Story(id StoryID) (*Story, error)
	// Stories returns all stories in submission order. The slice is
	// shared and append-only; callers must not modify it.
	Stories() []*Story
	// FrontPage returns promoted stories, most recently promoted
	// first (limit <= 0 means no limit).
	FrontPage(limit int) []*Story
	// PromotedCount returns the number of front-page stories.
	PromotedCount() int
	// PromotedIDs returns story ids in promotion order, oldest first.
	// The slice is shared and append-only: indices never change
	// meaning, which is what makes front-page cursors stable.
	PromotedIDs() []StoryID
	// Upcoming returns unpromoted stories visible at now, newest
	// first (limit <= 0 means no limit).
	Upcoming(now Minutes, limit int) []*Story
	// TopUsers returns up to k users ranked by promoted submissions.
	TopUsers(k int) []UserID
	// Ranks returns the shared, immutable user -> 1-based rank map.
	Ranks() map[UserID]int
	// UserRank returns u's 1-based reputation rank (0 if unranked).
	UserRank(u UserID) int
	// SocialGraph returns the immutable fan/friend graph.
	SocialGraph() *graph.Graph

	// --- commands ---

	// Submit creates a new story with the submitter's implicit first
	// vote.
	Submit(u UserID, title string, interest float64, t Minutes) (*Story, error)
	// InstallStory adopts a fully simulated story as the next story.
	InstallStory(s *Story) error
	// Digg records a vote, consulting the promotion policy.
	Digg(id StoryID, u UserID, t Minutes) (DiggResult, error)
	// CompactStory releases a story's live voter/audience bookkeeping.
	CompactStory(id StoryID) error
}

// Batcher is an optional Store capability for grouping the durability
// cost of many commands. Callers that apply a burst of writes under
// one lock acquisition (the v1 batch endpoints, the live stepper's
// per-tick command stream) bracket the burst with BeginBatch/EndBatch;
// a store that persists commands (internal/durable) then stages the
// burst's log records in memory and commits them as a single
// write-ahead append and one fsync in EndBatch. Between the calls the
// commands apply to the in-memory state as usual, so reads issued
// inside the batch (and the command results themselves) see their own
// writes; the durability acknowledgment is EndBatch returning nil.
//
// Discover it by type assertion — a Store without the capability needs
// no bracketing:
//
//	if b, ok := store.(digg.Batcher); ok { b.BeginBatch(); defer ... }
//
// Like the command methods, BeginBatch and EndBatch require the
// caller's external write synchronization. Batches do not nest.
type Batcher interface {
	BeginBatch()
	EndBatch() error
}

// DiggOp is one vote in a bulk write.
type DiggOp struct {
	Story StoryID
	User  UserID
	At    Minutes
}

// DiggOutcome is the per-op result of a bulk vote application:
// exactly what the equivalent Digg call would have returned.
type DiggOutcome struct {
	Result DiggResult
	Err    error
}

// SubmitOp is one submission in a bulk write.
type SubmitOp struct {
	User     UserID
	Title    string
	Interest float64
	At       Minutes
}

// SubmitOutcome is the per-op result of a bulk submission: exactly
// what the equivalent Submit call would have returned.
type SubmitOutcome struct {
	Story *Story
	Err   error
}

// BulkWriter is an optional Store capability for applying a burst of
// same-kind commands as one unit. A sharded store implements it by
// splitting the burst into per-shard sub-batches applied concurrently
// (one WAL append and one fsync per shard per burst), which is where
// multi-core write throughput comes from — bracketing a serial loop
// with Batcher alone still applies every command on one goroutine.
//
// Semantics match the serial loop exactly: outcomes land at the index
// of their op, each op sees the writes of earlier ops on the same
// story, and per-op rejections (ErrAlreadyVoted, ErrUnknownUser, ...)
// are reported in the outcome, not the return value. The returned
// error is batch-level: a durability failure that leaves the burst
// unacknowledged as a whole. out must be len(ops).
//
// Like the other commands, calls require the caller's external write
// synchronization; implementations manage any internal batching, so
// callers must NOT bracket a BulkWriter call with Batcher.
type BulkWriter interface {
	DiggMany(ops []DiggOp, out []DiggOutcome) error
	SubmitMany(ops []SubmitOp, out []SubmitOutcome) error
}

// Sharded is an optional Store capability reporting the shard layout.
// The serving layer uses it to stamp cursors and read views with the
// composite generation vector so pagination guarantees survive
// sharding; an unsharded store simply lacks the capability.
type Sharded interface {
	// ShardCount returns the number of shards (>= 1).
	ShardCount() int
	// ShardGenerations appends the per-shard generation vector to dst
	// and returns it. The sum equals Generation().
	ShardGenerations(dst []uint64) []uint64
}

// Platform is the canonical in-memory single-shard Store.
var _ Store = (*Platform)(nil)

// SocialGraph returns the platform's immutable social graph,
// satisfying Store (the Graph field remains for direct users).
func (p *Platform) SocialGraph() *graph.Graph { return p.Graph }

// PromotedIDs returns story ids in promotion order, oldest first. The
// returned slice is shared and strictly append-only — existing
// elements are never rewritten — so a header copied under the
// platform's external lock remains valid to read after release.
func (p *Platform) PromotedIDs() []StoryID { return p.promoted }
