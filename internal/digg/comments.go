package digg

import "sort"

// Comment is a user comment on a story. Digg's Friends interface
// surfaced friends' comments alongside submissions and diggs ("the
// number of stories his friends have submitted, commented on or voted
// on in the preceding 48 hours"); the reproduction models comments so
// that the Friends-interface view is structurally complete.
type Comment struct {
	Story StoryID
	User  UserID
	At    Minutes
	Text  string
}

// CommentOn records a comment by u on story id at time t. Unlike
// votes, users may comment repeatedly. Comments do not affect
// promotion or visibility cascades (commenters have usually voted too;
// modeling that coupling is not needed by any experiment).
func (p *Platform) CommentOn(id StoryID, u UserID, t Minutes, text string) (Comment, error) {
	if _, err := p.Story(id); err != nil {
		return Comment{}, err
	}
	if u < 0 || int(u) >= p.Graph.NumNodes() {
		return Comment{}, ErrUnknownUser
	}
	c := Comment{Story: id, User: u, At: t, Text: text}
	p.comments = append(p.comments, c)
	p.gen++
	return c, nil
}

// Comments returns all comments on a story in chronological order.
func (p *Platform) Comments(id StoryID) []Comment {
	var out []Comment
	for _, c := range p.comments {
		if c.Story == id {
			out = append(out, c)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// CommentCount returns the number of comments on a story.
func (p *Platform) CommentCount(id StoryID) int {
	n := 0
	for _, c := range p.comments {
		if c.Story == id {
			n++
		}
	}
	return n
}

// commentedStories returns story ids commented on by any of the users
// in watched within (since, now], deduplicated, in first-comment order.
func (p *Platform) commentedStories(watched map[UserID]struct{}, since, now Minutes) []StoryID {
	var out []StoryID
	seen := make(map[StoryID]struct{})
	for _, c := range p.comments {
		if c.At <= since || c.At > now {
			continue
		}
		if _, ok := watched[c.User]; !ok {
			continue
		}
		if _, dup := seen[c.Story]; dup {
			continue
		}
		seen[c.Story] = struct{}{}
		out = append(out, c.Story)
	}
	return out
}
