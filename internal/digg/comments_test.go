package digg

import "testing"

func TestCommentFlow(t *testing.T) {
	p := NewPlatform(testGraph(t), NeverPromote{})
	s, _ := p.Submit(0, "t", 0.5, 0)
	c, err := p.CommentOn(s.ID, 1, 5, "nice")
	if err != nil {
		t.Fatal(err)
	}
	if c.Story != s.ID || c.User != 1 || c.Text != "nice" {
		t.Errorf("comment = %+v", c)
	}
	// Repeated comments allowed, chronological ordering by At.
	p.CommentOn(s.ID, 1, 9, "again")
	p.CommentOn(s.ID, 2, 7, "mid")
	got := p.Comments(s.ID)
	if len(got) != 3 {
		t.Fatalf("comments = %d", len(got))
	}
	if got[0].At != 5 || got[1].At != 7 || got[2].At != 9 {
		t.Errorf("order = %+v", got)
	}
	if p.CommentCount(s.ID) != 3 {
		t.Errorf("count = %d", p.CommentCount(s.ID))
	}
	if p.CommentCount(99) != 0 {
		t.Error("phantom comments")
	}
}

func TestCommentErrors(t *testing.T) {
	p := NewPlatform(testGraph(t), NeverPromote{})
	if _, err := p.CommentOn(0, 1, 0, "x"); err == nil {
		t.Error("comment on missing story accepted")
	}
	s, _ := p.Submit(0, "t", 0.5, 0)
	if _, err := p.CommentOn(s.ID, 99, 0, "x"); err != ErrUnknownUser {
		t.Errorf("unknown commenter err = %v", err)
	}
}

func TestFriendsInterfaceIncludesComments(t *testing.T) {
	// 0 watches 1.
	p := NewPlatform(testGraph(t), NeverPromote{})
	// testGraph: 1 watches 0, so use user 1 as the observer of 0.
	s, _ := p.Submit(2, "t", 0.5, 0)
	p.CommentOn(s.ID, 0, 10, "hot take")
	act := p.FriendsInterface(1, 0, 20)
	if len(act.Commented) != 1 || act.Commented[0] != s.ID {
		t.Errorf("Commented = %v", act.Commented)
	}
	// Window excludes the comment.
	act = p.FriendsInterface(1, 15, 20)
	if len(act.Commented) != 0 {
		t.Errorf("windowed Commented = %v", act.Commented)
	}
	// Non-friends see nothing.
	act = p.FriendsInterface(4, 0, 20)
	if len(act.Commented) != 0 {
		t.Errorf("stranger Commented = %v", act.Commented)
	}
	// Dedup: second comment by the same friend on the same story.
	p.CommentOn(s.ID, 0, 12, "another")
	act = p.FriendsInterface(1, 0, 20)
	if len(act.Commented) != 1 {
		t.Errorf("dedup failed: %v", act.Commented)
	}
}
