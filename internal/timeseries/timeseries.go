// Package timeseries provides the vote-dynamics analysis behind Fig. 1
// and the Wu & Huberman novelty-decay comparison the paper draws on:
// cumulative vote curves, arrival-rate estimation, exponential-decay
// (half-life) fitting and saturation detection.
package timeseries

import (
	"errors"
	"math"

	"diggsim/internal/digg"
	"diggsim/internal/stats"
)

// Cumulative samples a story's cumulative vote count every step minutes
// from submission through horizon, returning parallel (minutes, votes)
// slices. It returns an error if step or horizon is non-positive.
func Cumulative(s *digg.Story, step, horizon digg.Minutes) (ts []float64, votes []float64, err error) {
	if step <= 0 || horizon <= 0 {
		return nil, nil, errors.New("timeseries: step and horizon must be > 0")
	}
	for t := digg.Minutes(0); t <= horizon; t += step {
		ts = append(ts, float64(t))
		votes = append(votes, float64(s.VotedAtOrBefore(s.SubmittedAt+t)))
	}
	return ts, votes, nil
}

// Rates returns per-bin vote arrival rates (votes per minute) for bins
// of the given width starting at the story's submission.
func Rates(s *digg.Story, binWidth digg.Minutes, horizon digg.Minutes) ([]float64, error) {
	if binWidth <= 0 || horizon <= 0 {
		return nil, errors.New("timeseries: binWidth and horizon must be > 0")
	}
	n := int(horizon / binWidth)
	if n == 0 {
		n = 1
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		lo := s.SubmittedAt + digg.Minutes(i)*binWidth
		hi := lo + binWidth
		count := s.VotedAtOrBefore(hi) - s.VotedAtOrBefore(lo)
		out[i] = float64(count) / float64(binWidth)
	}
	return out, nil
}

// DecayFit is the result of fitting an exponential decay rate(t) =
// A * 2^(-t/HalfLife) to post-promotion vote rates.
type DecayFit struct {
	// HalfLife is the fitted decay half-life in minutes (Wu & Huberman
	// measured roughly one day on Digg).
	HalfLife float64
	// InitialRate is the fitted votes/minute at promotion.
	InitialRate float64
	// R2 is the goodness of fit of the log-linear regression.
	R2 float64
	// Bins is the number of rate bins used.
	Bins int
}

// FitNoveltyDecay estimates the post-promotion decay half-life of a
// promoted story by regressing log2(rate) on time since promotion over
// bins of binWidth up to horizon past promotion. Bins with zero votes
// are skipped. It returns an error for unpromoted stories or when
// fewer than three non-empty bins exist.
func FitNoveltyDecay(s *digg.Story, binWidth, horizon digg.Minutes) (DecayFit, error) {
	if !s.Promoted {
		return DecayFit{}, errors.New("timeseries: story was never promoted")
	}
	if binWidth <= 0 || horizon <= 0 {
		return DecayFit{}, errors.New("timeseries: binWidth and horizon must be > 0")
	}
	var xs, ys []float64
	for lo := s.PromotedAt; lo < s.PromotedAt+horizon; lo += binWidth {
		hi := lo + binWidth
		count := s.VotedAtOrBefore(hi) - s.VotedAtOrBefore(lo)
		if count <= 0 {
			continue
		}
		rate := float64(count) / float64(binWidth)
		mid := float64(lo-s.PromotedAt) + float64(binWidth)/2
		xs = append(xs, mid)
		ys = append(ys, math.Log2(rate))
	}
	if len(xs) < 3 {
		return DecayFit{}, errors.New("timeseries: too few non-empty bins to fit")
	}
	slope, intercept, r2, err := stats.LinearRegression(xs, ys)
	if err != nil {
		return DecayFit{}, err
	}
	if slope >= 0 {
		return DecayFit{}, errors.New("timeseries: rate is not decaying")
	}
	return DecayFit{
		HalfLife:    -1 / slope,
		InitialRate: math.Exp2(intercept),
		R2:          r2,
		Bins:        len(xs),
	}, nil
}

// SaturationTime returns the minutes from submission until the story
// reached the given fraction (0 < frac <= 1) of its final vote count,
// or an error for invalid fractions or empty stories.
func SaturationTime(s *digg.Story, frac float64) (digg.Minutes, error) {
	if frac <= 0 || frac > 1 {
		return 0, errors.New("timeseries: frac must be in (0, 1]")
	}
	total := s.VoteCount()
	if total == 0 {
		return 0, errors.New("timeseries: story has no votes")
	}
	need := int(math.Ceil(frac * float64(total)))
	if need < 1 {
		need = 1
	}
	// Votes are chronological: the need-th vote's time is the answer.
	return s.Votes[need-1].At - s.SubmittedAt, nil
}

// MedianHalfLife fits the novelty decay over each promoted story and
// returns the median half-life, along with the number of stories that
// produced a valid fit.
func MedianHalfLife(stories []*digg.Story, binWidth, horizon digg.Minutes) (float64, int) {
	var fits []float64
	for _, s := range stories {
		fit, err := FitNoveltyDecay(s, binWidth, horizon)
		if err != nil {
			continue
		}
		fits = append(fits, fit.HalfLife)
	}
	if len(fits) == 0 {
		return math.NaN(), 0
	}
	return stats.Median(fits), len(fits)
}
