package timeseries

import (
	"math"
	"testing"

	"diggsim/internal/digg"
	"diggsim/internal/rng"
)

// syntheticStory builds a promoted story whose post-promotion votes
// arrive at an exactly exponentially decaying rate with the given
// half-life (minutes).
func syntheticStory(t *testing.T, halfLife float64) *digg.Story {
	t.Helper()
	s := &digg.Story{Submitter: 0, SubmittedAt: 0, Promoted: true, PromotedAt: 100}
	s.Votes = append(s.Votes, digg.Vote{Voter: 0, At: 0})
	// Queue phase: one vote every 10 minutes.
	voter := digg.UserID(1)
	for at := digg.Minutes(10); at < 100; at += 10 {
		s.Votes = append(s.Votes, digg.Vote{Voter: voter, At: at})
		voter++
	}
	// Front-page phase: per-minute votes = floor(rate) plus a Bernoulli
	// draw on the fractional part, so the expected count tracks
	// A * 2^(-t/HL) exactly even while the rate exceeds one.
	r := rng.New(1)
	const initialRate = 2.0
	for dt := 0.0; dt < 4000; dt++ {
		rate := initialRate * math.Exp2(-dt/halfLife)
		n := int(rate)
		if r.Bool(rate - float64(n)) {
			n++
		}
		for k := 0; k < n; k++ {
			s.Votes = append(s.Votes, digg.Vote{Voter: voter, At: 100 + digg.Minutes(dt)})
			voter++
		}
	}
	return s
}

func TestCumulative(t *testing.T) {
	s := &digg.Story{SubmittedAt: 50}
	s.Votes = []digg.Vote{{At: 50}, {At: 60}, {At: 120}}
	ts, votes, err := Cumulative(s, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 11 {
		t.Fatalf("samples = %d", len(ts))
	}
	if votes[0] != 1 { // submitter vote at t=0
		t.Errorf("votes[0] = %v", votes[0])
	}
	if votes[1] != 2 { // second vote 10 minutes in
		t.Errorf("votes[1] = %v", votes[1])
	}
	if votes[10] != 3 {
		t.Errorf("votes[10] = %v", votes[10])
	}
	if _, _, err := Cumulative(s, 0, 100); err == nil {
		t.Error("step=0 accepted")
	}
}

func TestRates(t *testing.T) {
	s := &digg.Story{SubmittedAt: 0}
	for i := 0; i < 60; i++ {
		s.Votes = append(s.Votes, digg.Vote{At: digg.Minutes(i)})
	}
	rates, err := Rates(s, 30, 90)
	if err != nil {
		t.Fatal(err)
	}
	if len(rates) != 3 {
		t.Fatalf("bins = %d", len(rates))
	}
	// One vote per minute for the first 60 minutes...
	if !almost(rates[0], 1, 0.05) || !almost(rates[1], 1, 0.05) {
		t.Errorf("early rates = %v", rates)
	}
	if rates[2] != 0 {
		t.Errorf("late rate = %v", rates[2])
	}
	if _, err := Rates(s, -1, 10); err == nil {
		t.Error("negative binWidth accepted")
	}
}

func TestFitNoveltyDecayRecoversHalfLife(t *testing.T) {
	const halfLife = 1440 // one day, Wu & Huberman's value
	s := syntheticStory(t, halfLife)
	fit, err := FitNoveltyDecay(s, 240, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.HalfLife-halfLife) > 0.25*halfLife {
		t.Errorf("HalfLife = %v want ~%v", fit.HalfLife, halfLife)
	}
	if fit.R2 < 0.5 {
		t.Errorf("R2 = %v", fit.R2)
	}
	if fit.InitialRate <= 0 {
		t.Errorf("InitialRate = %v", fit.InitialRate)
	}
	if fit.Bins < 3 {
		t.Errorf("Bins = %d", fit.Bins)
	}
}

func TestFitNoveltyDecayErrors(t *testing.T) {
	unpromoted := &digg.Story{}
	if _, err := FitNoveltyDecay(unpromoted, 60, 1000); err == nil {
		t.Error("unpromoted story accepted")
	}
	s := syntheticStory(t, 1440)
	if _, err := FitNoveltyDecay(s, 0, 1000); err == nil {
		t.Error("binWidth=0 accepted")
	}
	// Too few bins.
	sparse := &digg.Story{Promoted: true, PromotedAt: 0,
		Votes: []digg.Vote{{At: 0}, {At: 1}}}
	if _, err := FitNoveltyDecay(sparse, 60, 120); err == nil {
		t.Error("sparse story accepted")
	}
	// Growing rate must be rejected.
	growing := &digg.Story{Promoted: true, PromotedAt: 0}
	voter := digg.UserID(0)
	for bin := 0; bin < 5; bin++ {
		for k := 0; k < (bin+1)*(bin+1); k++ {
			growing.Votes = append(growing.Votes, digg.Vote{Voter: voter, At: digg.Minutes(bin*100 + k%100)})
			voter++
		}
	}
	if _, err := FitNoveltyDecay(growing, 100, 500); err == nil {
		t.Error("growing rate accepted as decay")
	}
}

func TestSaturationTime(t *testing.T) {
	s := &digg.Story{SubmittedAt: 100}
	for i := 0; i < 10; i++ {
		s.Votes = append(s.Votes, digg.Vote{At: digg.Minutes(100 + i*10)})
	}
	half, err := SaturationTime(s, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if half != 40 { // 5th vote at minute 140
		t.Errorf("half-saturation = %v want 40", half)
	}
	full, err := SaturationTime(s, 1)
	if err != nil || full != 90 {
		t.Errorf("full saturation = %v, %v", full, err)
	}
	if _, err := SaturationTime(s, 0); err == nil {
		t.Error("frac=0 accepted")
	}
	if _, err := SaturationTime(&digg.Story{}, 0.5); err == nil {
		t.Error("empty story accepted")
	}
}

func TestMedianHalfLife(t *testing.T) {
	stories := []*digg.Story{
		syntheticStory(t, 1000),
		syntheticStory(t, 2000),
		{}, // unpromoted: skipped
	}
	med, n := MedianHalfLife(stories, 240, 4000)
	if n != 2 {
		t.Fatalf("fits = %d", n)
	}
	if med < 800 || med > 2600 {
		t.Errorf("median half-life = %v", med)
	}
	if med, n := MedianHalfLife(nil, 240, 4000); n != 0 || !math.IsNaN(med) {
		t.Errorf("empty input: %v, %d", med, n)
	}
}

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
