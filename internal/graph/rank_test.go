package graph

import (
	"math"
	"testing"

	"diggsim/internal/rng"
)

func TestPageRankUniformOnCycle(t *testing.T) {
	// Directed cycle: perfectly symmetric, ranks equal.
	g := mustGraph(t, 4, [][2]NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	ranks, err := PageRank(g, 0.85, 1e-12, 200)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range ranks {
		if math.Abs(r-0.25) > 1e-9 {
			t.Errorf("rank[%d] = %v want 0.25", i, r)
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	r := rng.New(1)
	g, err := PreferentialAttachment(r, 500, 3, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	ranks, err := PageRank(g, 0.85, 1e-10, 200)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range ranks {
		if v < 0 {
			t.Fatal("negative rank")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("ranks sum to %v", sum)
	}
}

func TestPageRankFavorsWatched(t *testing.T) {
	// Star: 1..9 all watch 0. Node 0 should dominate.
	b := NewBuilder(10)
	for i := 1; i < 10; i++ {
		b.AddEdge(NodeID(i), 0)
	}
	g := b.Build()
	ranks, err := PageRank(g, 0.85, 1e-12, 200)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 10; i++ {
		if ranks[0] <= ranks[i] {
			t.Fatalf("hub rank %v not above leaf rank %v", ranks[0], ranks[i])
		}
	}
}

func TestPageRankDanglingMass(t *testing.T) {
	// 0 -> 1; 1 dangles. Mass must still sum to 1.
	g := mustGraph(t, 2, [][2]NodeID{{0, 1}})
	ranks, err := PageRank(g, 0.85, 1e-12, 500)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ranks[0]+ranks[1]-1) > 1e-6 {
		t.Errorf("mass leak: %v", ranks)
	}
	if ranks[1] <= ranks[0] {
		t.Error("watched node should outrank watcher")
	}
}

func TestPageRankErrors(t *testing.T) {
	g := mustGraph(t, 2, [][2]NodeID{{0, 1}})
	if _, err := PageRank(g, 1.0, 0, 0); err == nil {
		t.Error("d=1 accepted")
	}
	if _, err := PageRank(g, -0.1, 0, 0); err == nil {
		t.Error("negative damping accepted")
	}
	empty := NewBuilder(0).Build()
	ranks, err := PageRank(empty, 0.85, 0, 0)
	if err != nil || ranks != nil {
		t.Errorf("empty graph: %v, %v", ranks, err)
	}
}

func TestSamplePathStats(t *testing.T) {
	// Chain 0->1->2->3 plus isolated 4.
	g := mustGraph(t, 5, [][2]NodeID{{0, 1}, {1, 2}, {2, 3}})
	st := SamplePathStats(g, []NodeID{0})
	// From 0: distances 1,2,3 to nodes 1-3; node 4 unreachable.
	if st.MaxDistance != 3 {
		t.Errorf("MaxDistance = %d", st.MaxDistance)
	}
	if math.Abs(st.MeanDistance-2) > 1e-12 {
		t.Errorf("MeanDistance = %v", st.MeanDistance)
	}
	if math.Abs(st.ReachableFraction-0.75) > 1e-12 {
		t.Errorf("ReachableFraction = %v", st.ReachableFraction)
	}
	// Invalid sources are skipped.
	st = SamplePathStats(g, []NodeID{-1, 99})
	if st.ReachableFraction != 0 || st.MaxDistance != 0 {
		t.Errorf("invalid sources: %+v", st)
	}
}

func TestSubgraph(t *testing.T) {
	g := mustGraph(t, 5, [][2]NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	sub, orig := Subgraph(g, []NodeID{1, 2, 3, 1, 99})
	if sub.NumNodes() != 3 {
		t.Fatalf("subgraph nodes = %d", sub.NumNodes())
	}
	if len(orig) != 3 || orig[0] != 1 || orig[1] != 2 || orig[2] != 3 {
		t.Errorf("orig mapping = %v", orig)
	}
	// Edges 1->2 and 2->3 survive (as 0->1, 1->2); 0->1 and 3->4 dropped.
	if sub.NumEdges() != 2 || !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) {
		t.Errorf("subgraph edges wrong: %v", sub.Edges())
	}
}

func TestSubgraphEmpty(t *testing.T) {
	g := mustGraph(t, 3, [][2]NodeID{{0, 1}})
	sub, orig := Subgraph(g, nil)
	if sub.NumNodes() != 0 || len(orig) != 0 {
		t.Error("empty keep set should give empty subgraph")
	}
}

func BenchmarkPageRank(b *testing.B) {
	r := rng.New(3)
	g, _ := PreferentialAttachment(r, 10000, 4, 0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PageRank(g, 0.85, 1e-8, 100); err != nil {
			b.Fatal(err)
		}
	}
}
