package graph

import (
	"errors"

	"diggsim/internal/rng"
)

// ErdosRenyi generates a directed G(n, p) graph: each ordered pair
// (u, v), u != v, is an edge independently with probability p. It
// returns an error if n < 0 or p is outside [0, 1].
func ErdosRenyi(r *rng.RNG, n int, p float64) (*Graph, error) {
	if n < 0 {
		return nil, errors.New("graph: ErdosRenyi requires n >= 0")
	}
	if p < 0 || p > 1 {
		return nil, errors.New("graph: ErdosRenyi requires 0 <= p <= 1")
	}
	b := NewBuilder(n)
	if p == 0 || n < 2 {
		return b.Build(), nil
	}
	// Geometric skipping over the n*(n-1) possible ordered pairs keeps
	// sparse generation O(edges) instead of O(n^2).
	total := int64(n) * int64(n-1)
	pos := int64(-1)
	for {
		skip := int64(r.Geometric(p))
		pos += skip + 1
		if pos >= total {
			break
		}
		u := pos / int64(n-1)
		off := pos % int64(n-1)
		v := off
		if v >= u {
			v++
		}
		if err := b.AddEdge(NodeID(u), NodeID(v)); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// PreferentialAttachment generates a directed scale-free graph with n
// nodes using a Barabási–Albert-style process adapted to Digg's fan
// semantics: each new node watches m existing nodes chosen with
// probability proportional to (fan count + 1), so popular users
// accumulate fans (in-degree follows a power law). Additionally each
// new node is watched back by each chosen target with probability
// reciprocity, modeling mutual-fan relationships.
func PreferentialAttachment(r *rng.RNG, n, m int, reciprocity float64) (*Graph, error) {
	if n < 0 || m < 1 {
		return nil, errors.New("graph: PreferentialAttachment requires n >= 0, m >= 1")
	}
	if reciprocity < 0 || reciprocity > 1 {
		return nil, errors.New("graph: reciprocity must be in [0, 1]")
	}
	b := NewBuilder(n)
	if n < 2 {
		return b.Build(), nil
	}
	// targets holds one entry per (fan-edge + smoothing) endpoint; sampling
	// uniformly from it implements preferential attachment.
	targets := make([]NodeID, 0, 2*n*m)
	for seed := 0; seed < m+1 && seed < n; seed++ {
		targets = append(targets, NodeID(seed)) // +1 smoothing entry
	}
	start := m + 1
	if start > n {
		start = n
	}
	chosen := make([]NodeID, 0, m)
	for u := start; u < n; u++ {
		// chosen is kept as a slice (not a map) so that iteration order —
		// and therefore the evolving targets pool — is deterministic for
		// a fixed seed.
		chosen = chosen[:0]
		for len(chosen) < m && len(chosen) < u {
			t := targets[r.Intn(len(targets))]
			if int(t) >= u || containsNode(chosen, t) {
				continue
			}
			chosen = append(chosen, t)
		}
		for _, t := range chosen {
			if err := b.AddEdge(NodeID(u), t); err != nil {
				return nil, err
			}
			targets = append(targets, t) // t gained a fan
			if r.Bool(reciprocity) {
				if err := b.AddEdge(t, NodeID(u)); err != nil {
					return nil, err
				}
			}
		}
		targets = append(targets, NodeID(u)) // smoothing entry for u
	}
	return b.Build(), nil
}

func containsNode(s []NodeID, v NodeID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// ConfigurationModel generates a directed graph whose in-degree sequence
// approximates inDegrees: each node u receives inDegrees[u] fan stubs,
// and fans are assigned by shuffling watcher stubs uniformly. Self-loops
// and duplicate edges are dropped, so realized degrees can be slightly
// below the requested ones. Out-degrees are drawn from the same pool,
// matching the paper's observation that active users both have and are
// fans.
func ConfigurationModel(r *rng.RNG, inDegrees []int) (*Graph, error) {
	n := len(inDegrees)
	b := NewBuilder(n)
	var stubs []NodeID // one entry per desired incoming edge
	for u, d := range inDegrees {
		if d < 0 {
			return nil, errors.New("graph: ConfigurationModel requires non-negative degrees")
		}
		for i := 0; i < d; i++ {
			stubs = append(stubs, NodeID(u))
		}
	}
	for _, target := range stubs {
		// Watcher chosen preferentially by desired degree, which keeps
		// the watcher distribution heavy-tailed too.
		watcher := stubs[r.Intn(len(stubs))]
		if watcher == target {
			watcher = NodeID(r.Intn(n))
		}
		if err := b.AddEdge(watcher, target); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// ModularConfig configures Modular graph generation.
type ModularConfig struct {
	Communities  int     // number of communities (>= 1)
	NodesPerComm int     // nodes in each community (>= 1)
	IntraDegree  float64 // mean number of intra-community friends per node
	InterDegree  float64 // mean number of cross-community friends per node
}

// Modular generates a community-structured directed graph per §6 of the
// paper (cascading dynamics in modular networks): dense within blocks,
// sparse across them.
func Modular(r *rng.RNG, cfg ModularConfig) (*Graph, error) {
	if cfg.Communities < 1 || cfg.NodesPerComm < 1 {
		return nil, errors.New("graph: Modular requires >= 1 community and node per community")
	}
	if cfg.IntraDegree < 0 || cfg.InterDegree < 0 {
		return nil, errors.New("graph: Modular requires non-negative degrees")
	}
	n := cfg.Communities * cfg.NodesPerComm
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		comm := u / cfg.NodesPerComm
		commStart := comm * cfg.NodesPerComm
		// Intra-community edges.
		kIntra := r.Poisson(cfg.IntraDegree)
		for i := 0; i < kIntra; i++ {
			v := commStart + r.Intn(cfg.NodesPerComm)
			if v == u {
				continue
			}
			if err := b.AddEdge(NodeID(u), NodeID(v)); err != nil {
				return nil, err
			}
		}
		// Inter-community edges.
		if cfg.Communities > 1 {
			kInter := r.Poisson(cfg.InterDegree)
			for i := 0; i < kInter; i++ {
				v := r.Intn(n)
				if v/cfg.NodesPerComm == comm {
					continue
				}
				if err := b.AddEdge(NodeID(u), NodeID(v)); err != nil {
					return nil, err
				}
			}
		}
	}
	return b.Build(), nil
}

// CommunityOf returns the community index of node u for a graph built by
// Modular with the given config.
func (cfg ModularConfig) CommunityOf(u NodeID) int {
	return int(u) / cfg.NodesPerComm
}
