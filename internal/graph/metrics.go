package graph

import (
	"math"
	"sort"
)

// InDegreeDistribution returns the count of nodes having each fan count.
func InDegreeDistribution(g *Graph) map[int]int {
	out := make(map[int]int)
	for u := NodeID(0); int(u) < g.NumNodes(); u++ {
		out[g.InDegree(u)]++
	}
	return out
}

// OutDegreeDistribution returns the count of nodes having each friend
// count.
func OutDegreeDistribution(g *Graph) map[int]int {
	out := make(map[int]int)
	for u := NodeID(0); int(u) < g.NumNodes(); u++ {
		out[g.OutDegree(u)]++
	}
	return out
}

// MeanDegree returns the mean out-degree (== mean in-degree).
func MeanDegree(g *Graph) float64 {
	if g.NumNodes() == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(g.NumNodes())
}

// BFSFrom returns the hop distance from src to every reachable node
// following outgoing edges; unreachable nodes map to -1.
func BFSFrom(g *Graph, src NodeID) []int {
	dist := make([]int, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	if !g.valid(src) {
		return dist
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Friends(u) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// WeaklyConnectedComponents labels each node with a component id
// (ignoring edge direction) and returns the labels plus component count.
func WeaklyConnectedComponents(g *Graph) (labels []int, count int) {
	labels = make([]int, g.NumNodes())
	for i := range labels {
		labels[i] = -1
	}
	for start := NodeID(0); int(start) < g.NumNodes(); start++ {
		if labels[start] >= 0 {
			continue
		}
		labels[start] = count
		stack := []NodeID{start}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range g.Friends(u) {
				if labels[v] < 0 {
					labels[v] = count
					stack = append(stack, v)
				}
			}
			for _, v := range g.Fans(u) {
				if labels[v] < 0 {
					labels[v] = count
					stack = append(stack, v)
				}
			}
		}
		count++
	}
	return labels, count
}

// LargestComponentSize returns the size of the largest weakly connected
// component, or 0 for an empty graph.
func LargestComponentSize(g *Graph) int {
	labels, count := WeaklyConnectedComponents(g)
	if count == 0 {
		return 0
	}
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	best := 0
	for _, s := range sizes {
		if s > best {
			best = s
		}
	}
	return best
}

// ClusteringCoefficient returns the local clustering coefficient of u
// treating the graph as undirected: the fraction of pairs of neighbors
// of u that are themselves connected (in either direction). Nodes with
// fewer than two neighbors have coefficient 0.
func ClusteringCoefficient(g *Graph, u NodeID) float64 {
	nbrs := undirectedNeighbors(g, u)
	k := len(nbrs)
	if k < 2 {
		return 0
	}
	links := 0
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if g.HasEdge(nbrs[i], nbrs[j]) || g.HasEdge(nbrs[j], nbrs[i]) {
				links++
			}
		}
	}
	return 2 * float64(links) / float64(k*(k-1))
}

// MeanClustering returns the average local clustering coefficient over
// all nodes (0 for an empty graph).
func MeanClustering(g *Graph) float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	sum := 0.0
	for u := NodeID(0); int(u) < n; u++ {
		sum += ClusteringCoefficient(g, u)
	}
	return sum / float64(n)
}

func undirectedNeighbors(g *Graph, u NodeID) []NodeID {
	seen := make(map[NodeID]struct{})
	for _, v := range g.Friends(u) {
		seen[v] = struct{}{}
	}
	for _, v := range g.Fans(u) {
		seen[v] = struct{}{}
	}
	out := make([]NodeID, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TopByInDegree returns up to k node IDs sorted by descending fan count
// (ties broken by ascending ID). This is how the reproduction ranks "top
// users" structurally.
func TopByInDegree(g *Graph, k int) []NodeID {
	ids := make([]NodeID, g.NumNodes())
	for i := range ids {
		ids[i] = NodeID(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		da, db := g.InDegree(ids[a]), g.InDegree(ids[b])
		if da != db {
			return da > db
		}
		return ids[a] < ids[b]
	})
	if k > len(ids) {
		k = len(ids)
	}
	if k < 0 {
		k = 0
	}
	return ids[:k]
}

// KCore returns the set of nodes in the k-core of the undirected version
// of g: the maximal subgraph where every node has at least k undirected
// neighbors within the subgraph.
func KCore(g *Graph, k int) []NodeID {
	n := g.NumNodes()
	deg := make([]int, n)
	for u := NodeID(0); int(u) < n; u++ {
		deg[u] = len(undirectedNeighbors(g, u))
	}
	removed := make([]bool, n)
	queue := []NodeID{}
	for u := 0; u < n; u++ {
		if deg[u] < k {
			removed[u] = true
			queue = append(queue, NodeID(u))
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range undirectedNeighbors(g, u) {
			if removed[v] {
				continue
			}
			deg[v]--
			if deg[v] < k {
				removed[v] = true
				queue = append(queue, v)
			}
		}
	}
	var core []NodeID
	for u := 0; u < n; u++ {
		if !removed[u] {
			core = append(core, NodeID(u))
		}
	}
	return core
}

// DegreeAssortativity returns the Pearson correlation between the
// out-degree of the source and in-degree of the target over all edges —
// a quick structural fingerprint used in tests. Returns 0 when the
// graph has no edges or zero variance on either side.
func DegreeAssortativity(g *Graph) float64 {
	m := g.NumEdges()
	if m == 0 {
		return 0
	}
	var sx, sy, sxx, syy, sxy float64
	for u := NodeID(0); int(u) < g.NumNodes(); u++ {
		du := float64(g.OutDegree(u))
		for _, v := range g.Friends(u) {
			dv := float64(g.InDegree(v))
			sx += du
			sy += dv
			sxx += du * du
			syy += dv * dv
			sxy += du * dv
		}
	}
	fm := float64(m)
	cov := sxy/fm - (sx/fm)*(sy/fm)
	vx := sxx/fm - (sx/fm)*(sx/fm)
	vy := syy/fm - (sy/fm)*(sy/fm)
	if vx <= 0 || vy <= 0 {
		return 0
	}
	return cov / (math.Sqrt(vx) * math.Sqrt(vy))
}
