// Package graph implements the directed social graph substrate for the
// Digg reproduction.
//
// Digg's friendship relation is asymmetric: when user A lists user B as
// a friend, A watches B's activity. Following the paper's terminology,
// an edge A -> B means "A is a fan of B" is read on the *incoming* side:
// B's fans are the users watching B. We store edges as
// (watcher -> watched); Friends(u) returns who u watches (outgoing) and
// Fans(u) returns who watches u (incoming).
//
// The package offers a mutable Builder for construction and an immutable
// compact Graph (CSR adjacency) for analysis, plus generators for the
// random-graph families the paper's §6 discusses (Erdős–Rényi,
// preferential attachment, configuration model, modular graphs).
package graph

import (
	"errors"
	"fmt"
	"slices"
	"sort"
)

// NodeID identifies a node (user). IDs are dense indices [0, N).
type NodeID int32

// Graph is an immutable directed graph in compressed sparse row form.
// An edge u -> v means u watches v ("u is a fan of v", "v is a friend
// of u" in Digg terms).
type Graph struct {
	n int
	// CSR over outgoing edges (friends).
	outIndex []int32
	outEdges []NodeID
	// CSR over incoming edges (fans).
	inIndex []int32
	inEdges []NodeID
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.outEdges) }

// Friends returns the nodes u watches (outgoing neighbors). The slice
// aliases internal storage and must not be modified.
func (g *Graph) Friends(u NodeID) []NodeID {
	if !g.valid(u) {
		return nil
	}
	return g.outEdges[g.outIndex[u]:g.outIndex[u+1]]
}

// Fans returns the nodes watching u (incoming neighbors). The slice
// aliases internal storage and must not be modified.
func (g *Graph) Fans(u NodeID) []NodeID {
	if !g.valid(u) {
		return nil
	}
	return g.inEdges[g.inIndex[u]:g.inIndex[u+1]]
}

// OutDegree returns the number of friends of u (users u watches).
func (g *Graph) OutDegree(u NodeID) int { return len(g.Friends(u)) }

// InDegree returns the number of fans of u.
func (g *Graph) InDegree(u NodeID) int { return len(g.Fans(u)) }

// HasEdge reports whether the directed edge u -> v exists. Neighbor
// lists are sorted, so this is a binary search.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if !g.valid(u) || !g.valid(v) {
		return false
	}
	adj := g.Friends(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

func (g *Graph) valid(u NodeID) bool { return u >= 0 && int(u) < g.n }

// Builder accumulates edges and produces an immutable Graph. The zero
// value is ready to use; nodes are created implicitly by AddEdge or
// explicitly by EnsureNodes.
//
// Edges are stored as an append-only slice — AddEdge is a few
// nanoseconds and allocation-free once the slice has grown — and
// duplicates are removed during Build, which constructs both CSR
// directions by counting sort. Graph generators add tens of thousands
// of edges per corpus, so builder throughput is on the corpus
// generation hot path.
type Builder struct {
	n     int
	edges []edgeKey
}

type edgeKey struct{ from, to NodeID }

// NewBuilder returns a Builder pre-sized for n nodes.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// EnsureNodes grows the node count to at least n.
func (b *Builder) EnsureNodes(n int) {
	if n > b.n {
		b.n = n
	}
}

// NumNodes returns the current node count.
func (b *Builder) NumNodes() int { return b.n }

// NumEdges returns the number of distinct edges added so far. It
// dedups a sorted copy, so it is O(E log E) — fine for tests and
// tools; the generation hot path never calls it.
func (b *Builder) NumEdges() int {
	if len(b.edges) == 0 {
		return 0
	}
	tmp := append([]edgeKey(nil), b.edges...)
	sortEdges(tmp)
	count := 1
	for i := 1; i < len(tmp); i++ {
		if tmp[i] != tmp[i-1] {
			count++
		}
	}
	return count
}

// AddEdge records the directed edge from -> to (from watches to).
// Self-loops and duplicates are ignored. Negative IDs are an error.
func (b *Builder) AddEdge(from, to NodeID) error {
	if from < 0 || to < 0 {
		return fmt.Errorf("graph: negative node id (%d -> %d)", from, to)
	}
	if from == to {
		return nil
	}
	if int(from) >= b.n {
		b.n = int(from) + 1
	}
	if int(to) >= b.n {
		b.n = int(to) + 1
	}
	b.edges = append(b.edges, edgeKey{from, to})
	return nil
}

// HasEdge reports whether the edge has been added. Linear in the number
// of edges; for fast lookups Build the Graph and use Graph.HasEdge.
func (b *Builder) HasEdge(from, to NodeID) bool {
	for _, e := range b.edges {
		if e.from == from && e.to == to {
			return true
		}
	}
	return false
}

// sortEdges orders edges by (from, to).
func sortEdges(edges []edgeKey) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
}

// Build produces the immutable Graph. The Builder remains usable and
// further edges can be added for a later Build.
//
// The out-CSR is built by counting sort over the edge endpoints with a
// per-adjacency sort and in-place dedup; the in-CSR is then scattered
// from the deduped out-CSR, which visits edges in (from, to) order so
// every fan list comes out sorted with no comparison sort at all.
func (b *Builder) Build() *Graph {
	n := b.n
	g := &Graph{
		n:        n,
		outIndex: make([]int32, n+1),
		inIndex:  make([]int32, n+1),
	}
	m := len(b.edges)
	out := make([]NodeID, m)
	start := make([]int32, n+1)
	for _, e := range b.edges {
		start[e.from+1]++
	}
	for i := 1; i <= n; i++ {
		start[i] += start[i-1]
	}
	pos := make([]int32, n)
	copy(pos, start[:n])
	for _, e := range b.edges {
		out[pos[e.from]] = e.to
		pos[e.from]++
	}
	// Sort each adjacency and compact duplicates. The write cursor w
	// never passes the read position, so compaction is in place.
	w := int32(0)
	for u := 0; u < n; u++ {
		adj := out[start[u]:start[u+1]]
		slices.Sort(adj)
		g.outIndex[u] = w
		prev := NodeID(-1)
		for _, v := range adj {
			if v == prev {
				continue
			}
			out[w] = v
			w++
			prev = v
		}
	}
	g.outIndex[n] = w
	g.outEdges = out[:w]
	// In-CSR from the deduped out-CSR.
	for _, v := range g.outEdges {
		g.inIndex[v+1]++
	}
	for i := 1; i <= n; i++ {
		g.inIndex[i] += g.inIndex[i-1]
	}
	in := make([]NodeID, w)
	inPos := pos // reuse: same length n
	copy(inPos, g.inIndex[:n])
	for u := NodeID(0); int(u) < n; u++ {
		for _, v := range g.Friends(u) {
			in[inPos[v]] = u
			inPos[v]++
		}
	}
	g.inEdges = in
	return g
}

// FromEdgeList builds a graph over n nodes from explicit (from, to)
// pairs. It returns an error on negative IDs.
func FromEdgeList(n int, edges [][2]NodeID) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// Edges returns all directed edges in deterministic (from, to) order.
func (g *Graph) Edges() [][2]NodeID {
	out := make([][2]NodeID, 0, g.NumEdges())
	for u := NodeID(0); int(u) < g.n; u++ {
		for _, v := range g.Friends(u) {
			out = append(out, [2]NodeID{u, v})
		}
	}
	return out
}

// Reverse returns the graph with every edge direction flipped.
func (g *Graph) Reverse() *Graph {
	return &Graph{
		n:        g.n,
		outIndex: g.inIndex,
		outEdges: g.inEdges,
		inIndex:  g.outIndex,
		inEdges:  g.outEdges,
	}
}

// ErrNodeRange is returned when an operation references a node outside
// [0, NumNodes).
var ErrNodeRange = errors.New("graph: node id out of range")
