package graph

import (
	"errors"
	"math"
)

// PageRank computes the stationary influence of each node with damping
// d, iterating until the L1 change drops below tol or maxIters passes
// complete. Rank flows along the fan direction (from watcher to
// watched): users watched by influential users become influential,
// which matches how attention propagates through the Friends interface.
// Dangling mass (users watching nobody) is redistributed uniformly.
func PageRank(g *Graph, d float64, tol float64, maxIters int) ([]float64, error) {
	if d < 0 || d >= 1 {
		return nil, errors.New("graph: PageRank damping must be in [0, 1)")
	}
	if tol <= 0 {
		tol = 1e-9
	}
	if maxIters <= 0 {
		maxIters = 100
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, nil
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	for iter := 0; iter < maxIters; iter++ {
		base := (1 - d) / float64(n)
		dangling := 0.0
		for u := 0; u < n; u++ {
			if g.OutDegree(NodeID(u)) == 0 {
				dangling += rank[u]
			}
			next[u] = base
		}
		danglingShare := d * dangling / float64(n)
		for u := 0; u < n; u++ {
			next[u] += danglingShare
		}
		for u := 0; u < n; u++ {
			out := g.Friends(NodeID(u))
			if len(out) == 0 {
				continue
			}
			share := d * rank[u] / float64(len(out))
			for _, v := range out {
				next[v] += share
			}
		}
		delta := 0.0
		for u := 0; u < n; u++ {
			delta += math.Abs(next[u] - rank[u])
		}
		rank, next = next, rank
		if delta < tol {
			break
		}
	}
	return rank, nil
}

// PathStats summarizes shortest-path structure sampled from a set of
// source nodes.
type PathStats struct {
	// MeanDistance is the mean finite hop distance over sampled pairs.
	MeanDistance float64
	// MaxDistance is the largest finite distance seen (a lower bound on
	// the directed diameter).
	MaxDistance int
	// ReachableFraction is the fraction of sampled (source, target)
	// pairs with a finite directed path.
	ReachableFraction float64
}

// SamplePathStats runs BFS from each source and aggregates distances to
// all other nodes. Sources outside the graph are skipped; an empty or
// single-node graph yields zeros.
func SamplePathStats(g *Graph, sources []NodeID) PathStats {
	var stats PathStats
	totalPairs, reachable := 0, 0
	sumDist := 0
	for _, s := range sources {
		if !g.valid(s) {
			continue
		}
		dist := BFSFrom(g, s)
		for v, d := range dist {
			if NodeID(v) == s {
				continue
			}
			totalPairs++
			if d >= 0 {
				reachable++
				sumDist += d
				if d > stats.MaxDistance {
					stats.MaxDistance = d
				}
			}
		}
	}
	if reachable > 0 {
		stats.MeanDistance = float64(sumDist) / float64(reachable)
	}
	if totalPairs > 0 {
		stats.ReachableFraction = float64(reachable) / float64(totalPairs)
	}
	return stats
}

// Subgraph returns the induced subgraph over keep (deduplicated), along
// with the mapping from new ids to original ids. Edges with either
// endpoint outside keep are dropped.
func Subgraph(g *Graph, keep []NodeID) (*Graph, []NodeID) {
	newID := make(map[NodeID]NodeID, len(keep))
	var origOf []NodeID
	for _, u := range keep {
		if !g.valid(u) {
			continue
		}
		if _, dup := newID[u]; dup {
			continue
		}
		newID[u] = NodeID(len(origOf))
		origOf = append(origOf, u)
	}
	b := NewBuilder(len(origOf))
	for _, u := range origOf {
		for _, v := range g.Friends(u) {
			if nv, ok := newID[v]; ok {
				// Errors impossible here: ids are dense and non-negative.
				_ = b.AddEdge(newID[u], nv)
			}
		}
	}
	return b.Build(), origOf
}
